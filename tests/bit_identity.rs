//! Determinism guarantee of the parallel runtime: because every task
//! writes a disjoint tile set and the kernels themselves are deterministic,
//! the factorization result must be **bit-identical** to the sequential
//! run no matter how many workers execute it or in which order the
//! scheduler dispatches the ready set.

use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::kernels::FactorState;
use tileqr::runtime::{parallel_factor, PoolConfig, SchedulePolicy};
use tileqr::{Matrix, TiledMatrix};

fn factor_sequential(a: &Matrix<f64>, b: usize, order: EliminationOrder) -> FactorState<f64> {
    let tiled = TiledMatrix::from_matrix(a, b).unwrap();
    let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
    let mut st = FactorState::new(tiled);
    st.run_all(&g).unwrap();
    st
}

#[test]
fn parallel_runs_bit_identical_to_sequential_across_the_sweep() {
    let a = tileqr::gen::random_matrix::<f64>(48, 48, 4242);
    let b = 8;
    for order in [EliminationOrder::FlatTs, EliminationOrder::BinaryTt] {
        let seq = factor_sequential(&a, b, order);
        let seq_tiles = seq.tiles().to_matrix();
        let seq_r = seq.r_matrix();
        for workers in [1usize, 2, 4, 8] {
            for policy in [SchedulePolicy::Fifo, SchedulePolicy::CriticalPath] {
                let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
                let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
                let st = parallel_factor(
                    FactorState::new(tiled),
                    &g,
                    PoolConfig {
                        workers,
                        policy,
                        ..PoolConfig::default()
                    },
                )
                .unwrap();
                // Bit-identical, not approximately equal: `==` on the raw
                // f64 storage.
                assert_eq!(
                    st.tiles().to_matrix(),
                    seq_tiles,
                    "{order:?} workers={workers} {policy:?}: factored tiles diverged"
                );
                assert_eq!(
                    st.r_matrix(),
                    seq_r,
                    "{order:?} workers={workers} {policy:?}: R diverged"
                );
            }
        }
    }
}

#[test]
fn tall_matrix_sweep_is_bit_identical() {
    // Tall grid: exercises the TT tree merges under contention.
    let a = tileqr::gen::random_matrix::<f64>(64, 16, 77);
    let b = 8;
    for order in [EliminationOrder::FlatTs, EliminationOrder::BinaryTt] {
        let seq = factor_sequential(&a, b, order);
        let seq_tiles = seq.tiles().to_matrix();
        for workers in [2usize, 8] {
            for policy in [SchedulePolicy::Fifo, SchedulePolicy::CriticalPath] {
                let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
                let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
                let st = parallel_factor(
                    FactorState::new(tiled),
                    &g,
                    PoolConfig {
                        workers,
                        policy,
                        ..PoolConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    st.tiles().to_matrix(),
                    seq_tiles,
                    "{order:?} workers={workers} {policy:?}"
                );
            }
        }
    }
}
