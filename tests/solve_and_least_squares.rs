//! Linear-system and least-squares solving through the tiled QR
//! factorization — the application that motivates QR in the paper's
//! introduction (Ax = b via Eqs. 2–3).

use tileqr::gen;
use tileqr::ops::{matmul, matvec};
use tileqr::prelude::*;

#[test]
fn square_solve_recovers_solution() {
    for n in [10, 33, 64] {
        let a = gen::diagonally_dominant::<f64>(n, 1);
        let x_true = gen::random_vector::<f64>(n, 2);
        let b = matvec(&a, &x_true).unwrap();
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(16)).unwrap();
        let x = f.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "n={n}: {xi} vs {ti}");
        }
    }
}

#[test]
fn least_squares_minimizes_residual() {
    let a = gen::random_matrix::<f64>(60, 12, 3);
    let b = gen::random_vector::<f64>(60, 4);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let x = f.solve(&b).unwrap();
    let ax = matvec(&a, &x).unwrap();
    let base: f64 = ax
        .iter()
        .zip(&b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    // Perturbing x in any coordinate direction must not reduce the
    // residual — x is the minimizer.
    for dim in [0, 5, 11] {
        for delta in [1e-3, -1e-3] {
            let mut xp = x.clone();
            xp[dim] += delta;
            let axp = matvec(&a, &xp).unwrap();
            let perturbed: f64 = axp
                .iter()
                .zip(&b)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
            assert!(perturbed >= base - 1e-12, "dim {dim} delta {delta}");
        }
    }
}

#[test]
fn least_squares_matches_normal_equations() {
    let a = gen::random_matrix::<f64>(40, 8, 5);
    let b = gen::random_vector::<f64>(40, 6);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let x = f.solve(&b).unwrap();
    // Solve A^T A y = A^T b densely via the reference QR and compare.
    let ata = matmul(&a.transpose(), &a).unwrap();
    let atb = matvec(&a.transpose(), &b).unwrap();
    let y = tileqr::kernels::reference::qr_solve(&ata, &atb).unwrap();
    for (xi, yi) in x.iter().zip(&y) {
        assert!((xi - yi).abs() < 1e-8, "{xi} vs {yi}");
    }
}

#[test]
fn multiple_rhs_consistent_with_single() {
    let a = gen::diagonally_dominant::<f64>(20, 7);
    let b = gen::random_matrix::<f64>(20, 4, 8);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let xs = f.solve_matrix(&b).unwrap();
    for j in 0..4 {
        let xj = f.solve(b.col(j)).unwrap();
        for i in 0..20 {
            assert!((xs[(i, j)] - xj[i]).abs() < 1e-10);
        }
    }
}

#[test]
fn singular_system_reports_error() {
    let a = Matrix::<f64>::zeros(8, 8);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    assert!(f.solve(&[1.0; 8]).is_err());
}

#[test]
fn rhs_length_checked() {
    let a = gen::diagonally_dominant::<f64>(8, 9);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    assert!(f.solve(&[1.0; 7]).is_err());
}

#[test]
fn polynomial_fit_use_case() {
    // Fit y = 2 + 3t - 0.5t² from noisy samples — the classic data-analysis
    // workload the paper's introduction cites for QR decomposition.
    let samples = 50;
    let ts: Vec<f64> = (0..samples).map(|i| i as f64 / 10.0).collect();
    let noise = gen::random_vector::<f64>(samples, 10);
    let a = Matrix::from_fn(samples, 3, |i, j| ts[i].powi(j as i32));
    let y: Vec<f64> = ts
        .iter()
        .zip(&noise)
        .map(|(&t, &e)| 2.0 + 3.0 * t - 0.5 * t * t + 1e-3 * e)
        .collect();
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let coeff = f.solve(&y).unwrap();
    assert!((coeff[0] - 2.0).abs() < 1e-2);
    assert!((coeff[1] - 3.0).abs() < 1e-2);
    assert!((coeff[2] + 0.5).abs() < 1e-2);
}
