//! Degenerate inputs, non-finite data, and boundary conditions.

use tileqr::ops;
use tileqr::prelude::*;

#[test]
fn empty_matrix_factorizes_vacuously() {
    let a = Matrix::<f64>::zeros(0, 0);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    assert_eq!(f.r().dims(), (0, 0));
    assert_eq!(f.dims(), (0, 0));
}

#[test]
fn single_column_matrix() {
    let a = Matrix::from_fn(7, 1, |i, _| (i + 1) as f64);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let r = f.r();
    // |r11| = ||a||.
    let norm = ops::nrm2(a.col(0));
    assert!((r[(0, 0)].abs() - norm).abs() < 1e-12);
    for i in 1..7 {
        assert_eq!(r[(i, 0)], 0.0);
    }
}

#[test]
fn nan_input_does_not_panic() {
    let mut a = tileqr::gen::random_matrix::<f64>(12, 12, 1);
    a[(3, 4)] = f64::NAN;
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    // Garbage in, garbage out — but no panic, and the poison is visible.
    assert!(!f.r().all_finite());
}

#[test]
fn infinite_input_does_not_panic() {
    let mut a = tileqr::gen::random_matrix::<f64>(8, 8, 2);
    a[(0, 0)] = f64::INFINITY;
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    assert!(!f.r().all_finite());
}

#[test]
fn tiny_values_do_not_underflow_to_garbage() {
    let a = tileqr::gen::random_matrix::<f64>(10, 10, 3).scaled(1e-160);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let q = f.q().unwrap();
    let r = f.r();
    assert!(q.all_finite() && r.all_finite());
    // Reconstruct at the original scale.
    let qr = ops::matmul(&q, &r).unwrap();
    let diff = qr.sub(&a).unwrap();
    assert!(ops::frobenius_norm(&diff) <= 1e-14 * ops::frobenius_norm(&a).max(1e-300));
}

#[test]
fn huge_values_do_not_overflow() {
    let a = tileqr::gen::random_matrix::<f64>(10, 10, 4).scaled(1e150);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    assert!(f.r().all_finite());
    assert!(f.q().unwrap().all_finite());
}

#[test]
fn solve_with_zero_rhs_gives_zero() {
    let a = tileqr::gen::diagonally_dominant::<f64>(9, 5);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let x = f.solve(&[0.0; 9]).unwrap();
    assert!(x.iter().all(|&v| v.abs() < 1e-300));
}

#[test]
fn apply_q_to_zero_width_matrix() {
    let a = tileqr::gen::random_matrix::<f64>(8, 8, 6);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let c = Matrix::<f64>::zeros(8, 0);
    let out = f.apply_qt(&c).unwrap();
    assert_eq!(out.dims(), (8, 0));
}

#[test]
fn repeated_factorization_of_q_stays_orthogonal() {
    // Factor Q itself: R must be (nearly) identity up to signs.
    let a = tileqr::gen::random_matrix::<f64>(16, 16, 7);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let q = f.q().unwrap();
    let f2 = TiledQr::factor(&q, &QrOptions::new().tile_size(4)).unwrap();
    let r2 = f2.r();
    for i in 0..16 {
        assert!((r2[(i, i)].abs() - 1.0).abs() < 1e-12, "diag {i}");
        for j in i + 1..16 {
            assert!(r2[(i, j)].abs() < 1e-12, "off-diag ({i},{j})");
        }
    }
}

#[test]
fn workers_zero_uses_all_cores_and_is_correct() {
    let a = tileqr::gen::random_matrix::<f64>(32, 32, 8);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8).workers(0)).unwrap();
    let q = f.q().unwrap();
    assert!(ops::relative_residual(&a, &q, &f.r()).unwrap() < 1e-13);
}

#[test]
fn mismatched_apply_rows_rejected() {
    let a = tileqr::gen::random_matrix::<f64>(8, 8, 9);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let c = Matrix::<f64>::zeros(9, 2);
    assert!(f.apply_qt(&c).is_err());
    assert!(f.apply_q(&c).is_err());
}
