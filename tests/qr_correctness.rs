//! End-to-end correctness of the tiled QR factorization across shapes,
//! tile sizes, elimination orders and precisions, cross-checked against
//! the reference (unblocked Householder) implementation.

use tileqr::gen;
use tileqr::kernels::{reference, validate};
use tileqr::ops::{matmul, orthogonality_defect, relative_residual};
use tileqr::prelude::*;

fn check_factorization(n_rows: usize, n_cols: usize, opts: &QrOptions, seed: u64) {
    let a = gen::random_matrix::<f64>(n_rows, n_cols, seed);
    let f = TiledQr::factor(&a, opts).unwrap();
    let q = f.q().unwrap();
    let r = f.r();
    let report = validate::check_qr(&a, &q, &r).unwrap();
    let tol = validate::qr_tolerance::<f64>(n_rows, n_cols);
    assert!(
        report.passes(tol),
        "{n_rows}x{n_cols} tile={} tree={:?}: {report:?} (tol {tol:e})",
        opts.get_tile_size(),
        opts.get_tree()
    );
}

#[test]
fn square_matrices_all_orders() {
    for order in [
        EliminationOrder::FlatTs,
        EliminationOrder::FlatTt,
        EliminationOrder::BinaryTt,
    ] {
        for n in [8, 16, 24, 48] {
            check_factorization(n, n, &QrOptions::new().tile_size(8).order(order), 1);
        }
    }
}

#[test]
fn tall_matrices() {
    for (m, n) in [(32, 8), (64, 16), (40, 24), (100, 4)] {
        check_factorization(m, n, &QrOptions::new().tile_size(8), 2);
    }
}

#[test]
fn sizes_not_multiple_of_tile() {
    for n in [5, 13, 21, 37, 50] {
        check_factorization(n, n, &QrOptions::new().tile_size(8), 3);
    }
}

#[test]
fn tile_size_sweep() {
    for b in [2, 3, 4, 7, 16, 32] {
        check_factorization(33, 33, &QrOptions::new().tile_size(b), 4);
    }
}

#[test]
fn tile_larger_than_matrix() {
    check_factorization(10, 10, &QrOptions::new().tile_size(64), 5);
}

#[test]
fn one_by_one() {
    let a = Matrix::from_rows(&[&[-3.0f64]]).unwrap();
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
    let r = f.r();
    assert!((r[(0, 0)].abs() - 3.0).abs() < 1e-15);
    let q = f.q().unwrap();
    assert!((q[(0, 0)].abs() - 1.0).abs() < 1e-15);
}

#[test]
fn r_matches_reference_in_magnitude() {
    // R is unique up to row signs for full-rank A; compare |R| entries.
    let a = gen::random_matrix::<f64>(32, 32, 6);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let r_tiled = f.r();
    let (_, r_ref) = reference::householder_qr(&a).unwrap();
    for j in 0..32 {
        for i in 0..=j {
            assert!(
                (r_tiled[(i, j)].abs() - r_ref[(i, j)].abs()).abs() < 1e-10,
                "({i},{j}): {} vs {}",
                r_tiled[(i, j)],
                r_ref[(i, j)]
            );
        }
    }
}

#[test]
fn ill_conditioned_hilbert_still_backward_stable() {
    // Hilbert matrices are terribly conditioned; backward stability of
    // Householder QR must still deliver a tiny residual (the *forward*
    // error may be large — that is the matrix's fault, not ours).
    let a = gen::hilbert::<f64>(24);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let q = f.q().unwrap();
    assert!(relative_residual(&a, &q, &f.r()).unwrap() < 1e-13);
    assert!(orthogonality_defect(&q).unwrap() < 1e-13);
}

#[test]
fn rank_deficient_matrix_factors_cleanly() {
    let a = gen::low_rank::<f64>(24, 24, 3, 7);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let q = f.q().unwrap();
    let r = f.r();
    assert!(relative_residual(&a, &q, &r).unwrap() < 1e-12);
    // Rank deficiency shows up as (near-)zero trailing diagonal entries.
    let tiny = (4..24).filter(|&i| r[(i, i)].abs() < 1e-10).count();
    assert!(tiny >= 18, "expected ~21 negligible pivots, got {tiny}");
}

#[test]
fn wide_dynamic_range_entries() {
    let a = gen::wide_dynamic_range::<f64>(24, 24, 8);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let q = f.q().unwrap();
    assert!(q.all_finite());
    assert!(relative_residual(&a, &q, &f.r()).unwrap() < 1e-12);
}

#[test]
fn f32_precision_end_to_end() {
    let a = gen::random_matrix::<f32>(32, 32, 9);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let q = f.q().unwrap();
    let r = f.r();
    assert!(relative_residual(&a, &q, &r).unwrap() < 1e-4);
    assert!(orthogonality_defect(&q).unwrap() < 1e-4);
}

#[test]
fn parallel_and_sequential_bitwise_equal() {
    for workers in [2, 4, 8] {
        let a = gen::random_matrix::<f64>(40, 40, 10);
        let seq = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let par = TiledQr::factor(&a, &QrOptions::new().tile_size(8).workers(workers)).unwrap();
        assert_eq!(seq.r(), par.r(), "workers={workers}");
    }
}

#[test]
fn q_times_r_equals_a_for_tt_orders_with_padding() {
    // Padding + TT trees at once — the trickiest corner.
    let a = gen::random_matrix::<f64>(27, 27, 11);
    for order in [EliminationOrder::FlatTt, EliminationOrder::BinaryTt] {
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8).order(order)).unwrap();
        let qr = matmul(&f.q().unwrap(), &f.r()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11), "{order:?}");
    }
}
