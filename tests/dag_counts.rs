//! Paper Table I: the number of tiles operated per step for a remaining
//! `M x N` panel, cross-checked against the exact DAG.

use tileqr::dag::{counts, EliminationOrder, StepClass, TaskGraph};

#[test]
fn table1_formulas_hold_for_every_panel() {
    // Walk a real factorization DAG panel by panel and verify the paper's
    // accounting identities: T+E tasks = M, UT+UE tasks = M(N-1).
    let (mt, nt) = (9, 7);
    let g = TaskGraph::build(mt, nt, EliminationOrder::FlatTs);
    for k in 0..mt.min(nt) {
        let m = mt - k;
        let n = nt - k;
        let (t1_t, t1_e, t1_ut, t1_ue) = counts::paper_table1(m, n);
        assert_eq!(t1_t, m);
        assert_eq!(t1_e, m);
        assert_eq!(t1_ut, m * (n - 1));
        assert_eq!(t1_ue, m * (n - 1));

        let mut te = 0;
        let mut upd = 0;
        for task in g.tasks().iter().filter(|t| t.panel() == k) {
            match task.class() {
                StepClass::Triangulation | StepClass::Elimination => te += 1,
                StepClass::UpdateTriangulation | StepClass::UpdateElimination => upd += 1,
            }
        }
        assert_eq!(te, m, "panel {k}: T+E tasks");
        assert_eq!(upd, m * (n - 1), "panel {k}: UT+UE tasks");
    }
}

#[test]
fn exact_counts_match_dag_for_many_shapes() {
    for (m, n) in [(1, 1), (2, 3), (7, 7), (12, 5), (5, 12), (20, 20)] {
        let exact = counts::exact_panel_counts(m, n);
        let from_dag = counts::panel_counts_from_dag(m, n);
        assert_eq!(exact, from_dag, "{m}x{n}");
        assert!(counts::table1_consistent(m, n));
    }
}

#[test]
fn total_task_count_closed_form() {
    for (m, n) in [(4, 4), (10, 6), (6, 10), (16, 16)] {
        let g = TaskGraph::build(m, n, EliminationOrder::FlatTs);
        assert_eq!(g.len(), counts::total_ts_tasks(m, n), "{m}x{n}");
    }
}

#[test]
fn class_totals_reconcile() {
    let g = TaskGraph::build(10, 10, EliminationOrder::FlatTs);
    let (t, e, ut, ue) = counts::class_totals(&g);
    // One GEQRT per panel; eliminations sum over panels of (M-k-1).
    assert_eq!(t, 10);
    assert_eq!(e, (0..10).map(|k| 10 - k - 1).sum::<usize>());
    assert_eq!(ut, (0..10).map(|k| 10 - k - 1).sum::<usize>());
    assert_eq!(
        ue,
        (0..10).map(|k| (10 - k - 1) * (10 - k - 1)).sum::<usize>()
    );
}
