//! Schema snapshot suite for the Chrome `trace_event` exporter: the
//! emitted JSON must stay valid, carry a stable field set per event
//! type, and keep a monotone `ts` stream — for traces from the real
//! pool and from the simulator alike (the two sides share one
//! [`tileqr::obs::Trace`] model, so one exporter serves both).

use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::hetero::{assign, engine, plan, profiles, DistributionStrategy, MainDevicePolicy};
use tileqr::obs::{chrome, EventKind, Trace};
use tileqr::prelude::*;
use tileqr::runtime::TraceConfig;

/// A real-pool trace of a fixed 32x32 / tile-4 factorization.
fn real_trace() -> (Trace, usize) {
    let a = tileqr::gen::random_matrix::<f64>(32, 32, 0xC0FFEE);
    let opts = QrOptions::new()
        .tile_size(4)
        .workers(3)
        .tracing(TraceConfig::enabled());
    let (qr, report) = TiledQr::factor_traced(&a, &opts).unwrap();
    (report.trace.unwrap(), qr.graph().len())
}

/// A simulator trace on the paper's testbed — the same plan the
/// `schedule_gantt` example renders.
fn sim_trace() -> (Trace, usize) {
    let nt = 8;
    let platform = profiles::paper_testbed(16);
    let hp = plan::plan_with(
        &platform,
        nt,
        nt,
        MainDevicePolicy::Auto,
        DistributionStrategy::GuideArray,
        Some(platform.num_devices()),
    );
    let graph = TaskGraph::build(nt, nt, EliminationOrder::FlatTs);
    let assignment = assign::assign_tasks(&graph, &hp.distribution, hp.policy);
    let (_, timeline) = engine::simulate_traced(&graph, &platform, &assignment);
    let lanes: Vec<String> = (0..platform.num_devices())
        .map(|d| platform.device(d).name.clone())
        .collect();
    (Trace::from_timeline(&timeline, &lanes), graph.len())
}

/// Assert the stable schema contract on one exported document.
fn assert_schema(json: &str, trace: &Trace) {
    chrome::validate(json).expect("exporter must emit valid JSON");

    // Envelope snapshot.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(json.ends_with("\n]}"));

    // One thread_name metadata record per lane, before any timed event.
    let first_x = json.find("\"ph\":\"X\"").unwrap_or(json.len());
    for lane in &trace.lanes {
        let needle = format!("\"args\":{{\"name\":\"{lane}\"}}");
        let at = json
            .find(&needle)
            .unwrap_or_else(|| panic!("missing thread_name metadata for lane {lane}"));
        assert!(at < first_x, "lane metadata must precede spans");
    }
    assert_eq!(
        json.matches("\"ph\":\"M\"").count(),
        trace.lanes.len(),
        "exactly one metadata record per lane"
    );

    // Every complete event carries the full span field set, in order —
    // a change to any field name or ordering is a schema break.
    let mut x_lines = 0;
    for line in json.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
        x_lines += 1;
        let mut cursor = 0;
        for field in chrome::SPAN_FIELDS {
            let needle = format!("\"{field}\":");
            let at = line[cursor..]
                .find(&needle)
                .unwrap_or_else(|| panic!("span event missing/reordered {field:?}: {line}"));
            cursor += at + needle.len();
        }
    }
    assert_eq!(x_lines, trace.spans.len(), "one X event per span");

    // Every instant carries the instant field set.
    let mut i_lines = 0;
    for line in json.lines().filter(|l| l.contains("\"ph\":\"i\"")) {
        i_lines += 1;
        let mut cursor = 0;
        for field in chrome::INSTANT_FIELDS {
            let needle = format!("\"{field}\":");
            let at = line[cursor..]
                .find(&needle)
                .unwrap_or_else(|| panic!("instant event missing/reordered {field:?}: {line}"));
            cursor += at + needle.len();
        }
    }
    assert_eq!(i_lines, trace.events.len(), "one i event per instant");

    // The ts stream is monotone non-decreasing — Perfetto requires it
    // per track, the exporter guarantees it globally.
    let ts = chrome::extract_timestamps(json);
    assert_eq!(ts.len(), trace.spans.len() + trace.events.len());
    for w in ts.windows(2) {
        assert!(w[0] <= w[1], "ts regressed: {} then {}", w[0], w[1]);
    }
}

#[test]
fn real_pool_export_matches_schema() {
    let (trace, tasks) = real_trace();
    assert_eq!(trace.compute_span_count(), tasks);
    let json = chrome::export(&trace);
    assert_schema(&json, &trace);
    // Spot-check roundtrip content: dispatch instants surface in JSON.
    assert_eq!(
        json.matches("\"name\":\"dispatch\"").count(),
        trace.events_of(EventKind::Dispatch).count()
    );
}

#[test]
fn simulator_export_matches_schema() {
    let (trace, tasks) = sim_trace();
    assert_eq!(trace.compute_span_count(), tasks);
    trace.validate(false).unwrap();
    let json = chrome::export(&trace);
    assert_schema(&json, &trace);
}

#[test]
fn compute_only_export_is_the_sim_view_of_a_real_run() {
    // Filtering a real trace to compute spans yields a document with the
    // same shape as a simulator export: one X event per task, no
    // lifecycle instants.
    let (trace, tasks) = real_trace();
    let json = chrome::export_compute_only(&trace);
    chrome::validate(&json).unwrap();
    assert_eq!(json.matches("\"ph\":\"X\"").count(), tasks);
    assert_eq!(json.matches("\"ph\":\"i\"").count(), 0);
    assert_eq!(json.matches("\"cat\":\"compute\"").count(), tasks);
}

#[test]
fn validator_rejects_malformed_documents() {
    let (trace, _) = sim_trace();
    let json = chrome::export(&trace);
    assert!(
        chrome::validate(&json[..json.len() - 1]).is_err(),
        "truncated"
    );
    assert!(chrome::validate(&json.replacen(':', ";", 1)).is_err());
    assert!(chrome::validate("").is_err());
    assert!(chrome::validate("[1,2,").is_err());
}
