//! Validate the fast column-granularity simulator against the exact
//! task-level discrete-event simulator on grids where both run.

use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::hetero::{
    assign, engine, fastsim, plan, profiles, DistributionStrategy, MainDevicePolicy,
};

fn both_makespans(nt: usize, force_p: usize) -> (f64, f64) {
    let p = profiles::paper_testbed(16);
    let hp = plan::plan_with(
        &p,
        nt,
        nt,
        MainDevicePolicy::Fixed(0),
        DistributionStrategy::GuideArray,
        Some(force_p),
    );
    let g = TaskGraph::build(nt, nt, EliminationOrder::FlatTs);
    let a = assign::assign_tasks(&g, &hp.distribution, hp.policy);
    let exact = engine::simulate(&g, &p, &a).makespan_us;
    let fast = fastsim::simulate_fast(&p, &hp, nt, nt).makespan_us;
    (exact, fast)
}

#[test]
fn fast_sim_tracks_exact_sim_within_factor_three() {
    // The two simulators model transfers at different granularities
    // (streamed per-task messages vs batched per-panel copies), so exact
    // agreement is not expected — same order of magnitude is the contract.
    for (nt, p) in [(8, 1), (8, 3), (16, 2), (24, 4), (32, 3)] {
        let (exact, fast) = both_makespans(nt, p);
        let ratio = fast / exact;
        assert!(
            (0.33..=3.0).contains(&ratio),
            "nt={nt} p={p}: fast {fast:.0}us vs exact {exact:.0}us (ratio {ratio:.2})"
        );
    }
}

#[test]
fn simulators_agree_on_device_scaling_direction() {
    // Both must say three devices beat one on a big-enough grid. The
    // exact simulator streams per-task messages, so its bus costs more
    // and its crossover sits later (nt ≈ 170) than the batched fast
    // simulator's (nt ≈ 90, Table III) — at nt = 200 both are past it.
    let (e1, f1) = both_makespans(200, 1);
    let (e3, f3) = both_makespans(200, 3);
    assert!(e3 < e1, "exact: {e3} !< {e1}");
    assert!(f3 < f1, "fast: {f3} !< {f1}");
    // And both must say one device wins on a small grid.
    let (e1s, f1s) = both_makespans(8, 1);
    let (e3s, f3s) = both_makespans(8, 3);
    assert!(e1s < e3s, "exact small: {e1s} !< {e3s}");
    assert!(f1s < f3s, "fast small: {f1s} !< {f3s}");
}

#[test]
fn simulators_agree_on_size_scaling() {
    let (e_small, f_small) = both_makespans(8, 3);
    let (e_big, f_big) = both_makespans(32, 3);
    assert!(e_big > e_small);
    assert!(f_big > f_small);
    // Growth factors within a factor of 3 of each other.
    let ge = e_big / e_small;
    let gf = f_big / f_small;
    assert!(
        (ge / gf).abs() > 0.33 && (ge / gf) < 3.0,
        "growth mismatch: exact x{ge:.1} vs fast x{gf:.1}"
    );
}

#[test]
fn both_charge_zero_comm_for_single_device() {
    let p = profiles::paper_testbed(16);
    let hp = plan::plan_with(
        &p,
        12,
        12,
        MainDevicePolicy::Fixed(0),
        DistributionStrategy::GuideArray,
        Some(1),
    );
    let g = TaskGraph::build(12, 12, EliminationOrder::FlatTs);
    let a = assign::assign_tasks(&g, &hp.distribution, hp.policy);
    assert_eq!(engine::simulate(&g, &p, &a).bytes_transferred, 0);
    assert_eq!(fastsim::simulate_fast(&p, &hp, 12, 12).bytes_transferred, 0);
}

#[test]
fn busy_times_match_exactly_between_simulators() {
    // Compute (busy) time is schedule-independent: same kernels on the
    // same devices. The two simulators must agree to rounding.
    let p = profiles::paper_testbed(16);
    let hp = plan::plan_with(
        &p,
        20,
        20,
        MainDevicePolicy::Fixed(0),
        DistributionStrategy::GuideArray,
        Some(3),
    );
    let g = TaskGraph::build(20, 20, EliminationOrder::FlatTs);
    let a = assign::assign_tasks(&g, &hp.distribution, hp.policy);
    let exact = engine::simulate(&g, &p, &a);
    let fast = fastsim::simulate_fast(&p, &hp, 20, 20);
    for d in 0..p.num_devices() {
        let (eb, fb) = (exact.device_busy_us[d], fast.device_busy_us[d]);
        assert!(
            (eb - fb).abs() <= 1e-6 * eb.max(1.0),
            "device {d}: exact busy {eb} vs fast busy {fb}"
        );
    }
}
