//! The full planning pipeline (Algorithms 2 → 3 → 4) on the paper's
//! testbed, and the headline behaviours of each evaluation section.

use tileqr::hetero::{
    device_count, fastsim, main_select, plan, profiles, DistributionStrategy, MainDevicePolicy,
};

#[test]
fn paper_pipeline_on_testbed() {
    let p = profiles::paper_testbed(16);
    let nt = 400; // 6400²
    let hp = plan::plan(&p, nt, nt);
    // §VI-B: the GTX580 is the main computing device.
    assert_eq!(hp.main, 0);
    // Column 0 stays on the main device (Alg. 4).
    assert_eq!(hp.distribution.owner(0), 0);
    // The guide array gives GTX680s more columns than the GTX580.
    let c580 = hp.distribution.columns_owned(0, 1, nt);
    let c680 = hp.distribution.columns_owned(1, 1, nt);
    assert!(c680 > c580);
}

#[test]
fn device_count_crossovers_are_monotone() {
    // Table III: as the matrix grows the optimal device count never
    // shrinks — 1 GPU, then 2, then 3.
    let gpus = profiles::testbed_subset(3, false, 16);
    let mut last_p = 0;
    let mut seen = Vec::new();
    for size in (160..=4000).step_by(160) {
        let nt = size / 16;
        let sel = device_count::select_device_count(&gpus, 0, nt, nt);
        assert!(
            sel.p >= last_p,
            "optimal p regressed from {last_p} to {} at size {size}",
            sel.p
        );
        last_p = sel.p;
        seen.push(sel.p);
    }
    assert_eq!(*seen.first().unwrap(), 1, "smallest size uses 1 GPU");
    assert_eq!(*seen.last().unwrap(), 3, "largest size uses 3 GPUs");
    assert!(seen.contains(&2), "a 2-GPU band must exist in between");
}

#[test]
fn predicted_optimum_matches_simulated_optimum_mostly() {
    // Table III's claim: argmin of the predicted T(p) matches the actual
    // fastest p. Near crossovers the two can disagree by one size step, so
    // require agreement on a clear majority of sizes.
    let gpus = profiles::testbed_subset(3, false, 16);
    let mut agree = 0;
    let mut total = 0;
    for size in (160..=4000).step_by(320) {
        let nt = size / 16;
        let sel = device_count::select_device_count(&gpus, 0, nt, nt);
        let mut best_actual = (f64::INFINITY, 0usize);
        for p in 1..=3 {
            let hp = plan::plan_with(
                &gpus,
                nt,
                nt,
                MainDevicePolicy::Fixed(0),
                DistributionStrategy::GuideArray,
                Some(p),
            );
            let t = fastsim::simulate_fast(&gpus, &hp, nt, nt).makespan_us;
            if t < best_actual.0 {
                best_actual = (t, p);
            }
        }
        total += 1;
        if sel.p == best_actual.1 {
            agree += 1;
        }
    }
    assert!(
        agree * 3 >= total * 2,
        "prediction matched simulation on only {agree}/{total} sizes"
    );
}

#[test]
fn main_device_ordering_of_fig9() {
    // Fig. 9 at a large size: GTX580-main <= GTX680-main < CPU-main, and
    // CPU-main is dramatically worse.
    let p = profiles::paper_testbed(16);
    let nt = 600; // 9600²
    let time_for = |policy| {
        let hp = plan::plan_with(
            &p,
            nt,
            nt,
            policy,
            DistributionStrategy::GuideArray,
            Some(4),
        );
        fastsim::simulate_fast(&p, &hp, nt, nt).makespan_s()
    };
    let d580 = time_for(MainDevicePolicy::Fixed(0));
    let d680 = time_for(MainDevicePolicy::Fixed(1));
    let dcpu = time_for(MainDevicePolicy::Fixed(3));
    // In our calibration the 580/680 margin is compressed to low single
    // digits (see EXPERIMENTS.md); the CPU gap is the robust signal.
    assert!(d580 <= d680 * 1.05, "580 {d580} !<= ~680 {d680}");
    assert!(
        dcpu > 3.0 * d580,
        "CPU-main must be far slower: {dcpu} vs {d580}"
    );
    // Algorithm 2 agrees with the measurement.
    assert_eq!(main_select::select_main_device(&p, nt, nt).device, 0);
}

#[test]
fn distribution_strategies_ordering_of_fig10() {
    // Fig. 10 at a large size: guide array <= cores-based <= even.
    let p = profiles::paper_testbed(16);
    let nt = 1000; // 16000²
    let time_for = |strategy| {
        let hp = plan::plan_with(&p, nt, nt, MainDevicePolicy::Fixed(0), strategy, Some(4));
        fastsim::simulate_fast(&p, &hp, nt, nt).makespan_s()
    };
    let guide = time_for(DistributionStrategy::GuideArray);
    let cores = time_for(DistributionStrategy::CoresProportional);
    let even = time_for(DistributionStrategy::Even);
    // Guide and cores-based land close together in our calibration (see
    // EXPERIMENTS.md); guide must never lose materially, and even must
    // lose clearly (the paper's 21%).
    assert!(guide <= cores * 1.05, "guide {guide} !<= ~cores {cores}");
    assert!(
        even > guide * 1.15,
        "even {even} must clearly lose to guide {guide}"
    );
    assert!(cores < even, "cores {cores} !< even {even}");
}

#[test]
fn scalability_of_fig8() {
    // Fig. 8: for a fixed size, adding devices (4 -> 516 -> 2052 -> 3588
    // cores) reduces the runtime.
    let nt = 400; // 6400²
    let mut last = f64::INFINITY;
    for n_gpus in 0..=3 {
        let p = profiles::testbed_subset(n_gpus, true, 16);
        let hp = plan::plan_with(
            &p,
            nt,
            nt,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(p.num_devices()),
        );
        let t = fastsim::simulate_fast(&p, &hp, nt, nt).makespan_s();
        assert!(
            t < last,
            "adding devices must help at 6400²: {t} !< {last} ({n_gpus} GPUs)"
        );
        last = t;
    }
}
