//! Property suite for the log-bucketed latency histograms
//! (`tileqr_obs::hist`): bucket monotonicity, exact count conservation,
//! quantile ordering, and merge-equals-union — each checked over
//! seeded [`Rng64`] sample sweeps rather than a handful of fixed points.

use tileqr_dag::TaskKind;
use tileqr_matrix::Rng64;
use tileqr_obs::{
    bucket_bounds, bucket_of, KernelHistograms, LatencyHistogram, Phase, Span, Trace, NUM_BUCKETS,
};

/// Draw a duration spread across many decades: a random bucket first,
/// then a random offset inside it, so small and huge values are equally
/// likely (uniform u64 draws would almost never exercise low buckets).
fn sample_ns(rng: &mut Rng64) -> u64 {
    let bucket = (rng.next_u64() % 40) as usize; // up to ~18 minutes
    let (lo, hi) = bucket_bounds(bucket);
    lo + rng.next_u64() % (hi - lo)
}

#[test]
fn bucket_of_is_monotone_and_bounds_partition() {
    // Monotone: a larger duration never maps to a smaller bucket.
    let mut rng = Rng64::seed_from_u64(0xB0);
    for _ in 0..10_000 {
        let a = sample_ns(&mut rng);
        let b = sample_ns(&mut rng);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            bucket_of(lo) <= bucket_of(hi),
            "bucket_of({lo}) > bucket_of({hi})"
        );
    }
    // Bounds tile the u64 range with no gaps or overlap, and every
    // value lands inside its own bucket's bounds.
    for i in 0..NUM_BUCKETS - 1 {
        let (_, hi) = bucket_bounds(i);
        let (next_lo, _) = bucket_bounds(i + 1);
        assert_eq!(hi, next_lo, "bucket {i} must abut bucket {}", i + 1);
    }
    for _ in 0..10_000 {
        let v = sample_ns(&mut rng);
        let (lo, hi) = bucket_bounds(bucket_of(v));
        assert!(
            lo <= v && (v < hi || hi == u64::MAX),
            "{v} outside [{lo},{hi})"
        );
    }
}

#[test]
fn counts_are_conserved_exactly() {
    for seed in 0..20u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let n = 1 + (rng.next_u64() % 5_000) as usize;
        let mut h = LatencyHistogram::new();
        for _ in 0..n {
            h.record_ns(sample_ns(&mut rng));
        }
        assert_eq!(h.count(), n as u64, "seed {seed}");
        assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            n as u64,
            "seed {seed}: bucket sum must equal samples recorded"
        );
    }
}

#[test]
fn quantiles_are_ordered_and_bounded() {
    for seed in 100..120u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut h = LatencyHistogram::new();
        let mut exact = Vec::new();
        for _ in 0..(1 + rng.next_u64() % 2_000) {
            let v = sample_ns(&mut rng);
            exact.push(v);
            h.record_ns(v);
        }
        let min = h.min_us().unwrap();
        let max = h.max_us().unwrap();
        let mut prev = min;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile_us(q).unwrap();
            assert!(v >= prev - 1e-12, "seed {seed}: quantile({q}) regressed");
            assert!(
                (min..=max).contains(&v),
                "seed {seed}: quantile({q})={v} outside [{min},{max}]"
            );
            prev = v;
        }
        // The estimate is log-resolution: it may not exceed 2x the true
        // quantile (and never undershoots the true rank's bucket).
        exact.sort_unstable();
        let true_p50 = exact[(exact.len() - 1) / 2] as f64 / 1e3;
        let est_p50 = h.p50_us().unwrap();
        assert!(
            est_p50 <= (true_p50 * 2.0).max(max.min(true_p50 + 2e-3)),
            "seed {seed}: p50 estimate {est_p50} vs exact {true_p50}"
        );
    }
}

#[test]
fn merge_equals_histogram_of_union() {
    for seed in 200..220u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let (mut h1, mut h2, mut union) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..(rng.next_u64() % 3_000) {
            let v = sample_ns(&mut rng);
            if i % 3 == 0 {
                h1.record_ns(v);
            } else {
                h2.record_ns(v);
            }
            union.record_ns(v);
        }
        let mut merged = h1.clone();
        merged.merge(&h2);
        assert_eq!(merged, union, "seed {seed}: merge(h1,h2) != hist(s1∪s2)");
        // Merge is symmetric.
        let mut other_way = h2.clone();
        other_way.merge(&h1);
        assert_eq!(other_way, union, "seed {seed}: merge must commute");
    }
}

#[test]
fn merging_an_empty_histogram_is_identity() {
    let mut rng = Rng64::seed_from_u64(7);
    let mut h = LatencyHistogram::new();
    for _ in 0..256 {
        h.record_ns(sample_ns(&mut rng));
    }
    let before = h.clone();
    h.merge(&LatencyHistogram::new());
    assert_eq!(h, before);
}

/// Synthetic single-lane trace of `n` compute spans with seeded kinds
/// and durations.
fn synth_trace(seed: u64, n: usize, task_base: usize) -> Trace {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut trace = Trace {
        lanes: vec!["lane0".to_string()],
        ..Trace::default()
    };
    let mut t = 0.0;
    for idx in 0..n {
        let kind = match rng.next_u64() % 6 {
            0 => TaskKind::Geqrt { i: 0, k: 0 },
            1 => TaskKind::Unmqr { i: 0, j: 1, k: 0 },
            2 => TaskKind::Tsqrt { p: 0, i: 1, k: 0 },
            3 => TaskKind::Tsmqr {
                p: 0,
                i: 1,
                j: 1,
                k: 0,
            },
            4 => TaskKind::Ttqrt { p: 0, i: 1, k: 0 },
            _ => TaskKind::Ttmqr {
                p: 0,
                i: 1,
                j: 1,
                k: 0,
            },
        };
        let dur = sample_ns(&mut rng) as f64 / 1e3;
        trace.spans.push(Span {
            task: task_base + idx,
            kind,
            lane: 0,
            phase: Phase::Compute,
            attempt: 0,
            start_us: t,
            end_us: t + dur,
        });
        t += dur;
    }
    trace
}

#[test]
fn kernel_histograms_merge_kind_by_kind() {
    // The union law lifted to the per-kernel array: merging histograms
    // of two traces equals the histogram of the concatenated trace.
    for seed in 300..310u64 {
        let t1 = synth_trace(seed, 200, 0);
        let t2 = synth_trace(seed.wrapping_mul(31).wrapping_add(1), 150, 200);
        let mut both = t1.clone();
        both.spans.extend(t2.spans.iter().cloned());

        let mut merged = KernelHistograms::from_trace(&t1);
        merged.merge(&KernelHistograms::from_trace(&t2));
        let union = KernelHistograms::from_trace(&both);
        assert_eq!(merged, union, "seed {seed}");
        assert_eq!(merged.total(), 350);
        // Per-kind counts also conserve exactly.
        let per_kind_sum: u64 = (0..tileqr_obs::NUM_KINDS)
            .map(|i| merged.kind(i).count())
            .sum();
        assert_eq!(per_kind_sum, 350, "seed {seed}");
    }
}
