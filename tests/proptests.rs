//! Property-based tests over the core invariants.

use proptest::prelude::*;
use tileqr::dag::{counts, critical_path, topo, EliminationOrder, TaskGraph};
use tileqr::hetero::{guide, ratio};
use tileqr::kernels::validate;
use tileqr::ops;
use tileqr::prelude::*;

fn arbitrary_matrix(m: usize, n: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-100.0f64..100.0, m * n)
        .prop_map(move |data| Matrix::from_col_major(m, n, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qr_is_backward_stable_on_random_input(
        a in (4usize..28).prop_flat_map(|n| (Just(n), arbitrary_matrix(n, n))),
        b in 2usize..9,
    ) {
        let (n, a) = a;
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(b)).unwrap();
        let q = f.q().unwrap();
        let r = f.r();
        let report = validate::check_qr(&a, &q, &r).unwrap();
        // Scale-invariant backward error bound.
        prop_assert!(report.passes(validate::qr_tolerance::<f64>(n, n) * 10.0),
            "n={n} b={b}: {report:?}");
    }

    #[test]
    fn r_diagonal_dominates_determinant(
        a in arbitrary_matrix(12, 12),
    ) {
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
        // |det A| computed from R must be finite and non-negative.
        let d = f.det_abs().unwrap();
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn solve_then_multiply_round_trips(
        x in proptest::collection::vec(-10.0f64..10.0, 12),
    ) {
        // Well-conditioned A: solving A x = b recovers x.
        let a = tileqr::gen::diagonally_dominant::<f64>(12, 99);
        let b = ops::matvec(&a, &x).unwrap();
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
        let got = f.solve(&b).unwrap();
        for (g, want) in got.iter().zip(&x) {
            prop_assert!((g - want).abs() < 1e-8);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dag_is_always_acyclic_and_complete(
        mt in 1usize..12,
        nt in 1usize..12,
        which in 0usize..3,
    ) {
        let order = [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ][which];
        let g = TaskGraph::build(mt, nt, order);
        prop_assert!(topo::is_acyclic(&g));
        // Every non-source task has a pred; sources are GEQRTs.
        for id in g.sources() {
            let is_geqrt = matches!(g.task(id), tileqr::dag::TaskKind::Geqrt { .. });
            prop_assert!(is_geqrt);
        }
        // Parallelism profile conserves tasks.
        let profile = topo::parallelism_profile(&g);
        prop_assert_eq!(profile.iter().sum::<usize>(), g.len());
        // Critical path length bounded by task count.
        let cp = critical_path::critical_path_length(&g, |_| 1.0);
        prop_assert!(cp as usize <= g.len());
    }

    #[test]
    fn ts_task_count_closed_form(mt in 1usize..16, nt in 1usize..16) {
        let g = TaskGraph::build(mt, nt, EliminationOrder::FlatTs);
        prop_assert_eq!(g.len(), counts::total_ts_tasks(mt, nt));
    }

    #[test]
    fn guide_array_preserves_ratios(
        ratios in proptest::collection::vec(0u64..20, 1..6),
    ) {
        prop_assume!(ratios.iter().any(|&r| r > 0));
        let devices: Vec<usize> = (0..ratios.len()).collect();
        let g = guide::generate_guide_array(&devices, &ratios);
        let total: u64 = ratios.iter().sum();
        prop_assert_eq!(g.len() as u64, total);
        for (d, &r) in devices.iter().zip(&ratios) {
            prop_assert_eq!(g.iter().filter(|&&x| x == *d).count() as u64, r);
        }
    }

    #[test]
    fn integer_ratio_preserves_ordering(
        t in proptest::collection::vec(0.0f64..1000.0, 2..6),
    ) {
        prop_assume!(t.iter().any(|&x| x > 1.0));
        let r = ratio::integer_ratio(&t);
        prop_assert_eq!(r.len(), t.len());
        for i in 0..t.len() {
            for j in 0..t.len() {
                if t[i] > t[j] {
                    // Faster devices never get a *smaller* ratio.
                    prop_assert!(r[i] >= r[j],
                        "throughputs {:?} -> ratios {:?}", t, r);
                }
            }
        }
    }

    #[test]
    fn nrm2_is_scale_invariant(
        v in proptest::collection::vec(-1.0f64..1.0, 1..20),
        scale in 1.0f64..1e6,
    ) {
        let base = ops::nrm2(&v);
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let got = ops::nrm2(&scaled);
        prop_assert!((got - base * scale).abs() <= 1e-10 * (base * scale).max(1.0));
    }

    #[test]
    fn transpose_involution(a in arbitrary_matrix(7, 5)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gemm_matches_matvec(
        a in arbitrary_matrix(6, 4),
        x in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let xm = Matrix::from_col_major(4, 1, x.clone()).unwrap();
        let via_gemm = ops::matmul(&a, &xm).unwrap();
        let via_matvec = ops::matvec(&a, &x).unwrap();
        for i in 0..6 {
            prop_assert!((via_gemm[(i, 0)] - via_matvec[i]).abs() < 1e-10);
        }
    }
}
