//! Property-style tests over the core invariants, swept across
//! deterministic seeded random inputs (the breadth of the previous
//! proptest suite, without the external dependency).

use tileqr::dag::{counts, critical_path, topo, EliminationOrder, TaskGraph};
use tileqr::hetero::{guide, ratio};
use tileqr::kernels::validate;
use tileqr::ops;
use tileqr::prelude::*;
use tileqr_matrix::Rng64;

fn seeded_matrix(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = Rng64::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9)
            .wrapping_add((m * 1000 + n) as u64),
    );
    Matrix::from_fn(m, n, |_, _| rng.range_f64(-100.0, 100.0))
}

#[test]
fn qr_is_backward_stable_on_random_input() {
    for case in 0..24u64 {
        let mut rng = Rng64::seed_from_u64(100 + case);
        let n = rng.range_i64(4, 27) as usize;
        let b = rng.range_i64(2, 8) as usize;
        let a = seeded_matrix(n, n, 1000 + case);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(b)).unwrap();
        let q = f.q().unwrap();
        let r = f.r();
        let report = validate::check_qr(&a, &q, &r).unwrap();
        // Scale-invariant backward error bound.
        assert!(
            report.passes(validate::qr_tolerance::<f64>(n, n) * 10.0),
            "n={n} b={b}: {report:?}"
        );
    }
}

#[test]
fn r_diagonal_dominates_determinant() {
    for case in 0..24u64 {
        let a = seeded_matrix(12, 12, 2000 + case);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
        // |det A| computed from R must be finite and non-negative.
        let d = f.det_abs().unwrap();
        assert!(d.is_finite(), "case {case}");
        assert!(d >= 0.0, "case {case}");
    }
}

#[test]
fn solve_then_multiply_round_trips() {
    for case in 0..24u64 {
        let mut rng = Rng64::seed_from_u64(3000 + case);
        let x: Vec<f64> = (0..12).map(|_| rng.range_f64(-10.0, 10.0)).collect();
        // Well-conditioned A: solving A x = b recovers x.
        let a = tileqr::gen::diagonally_dominant::<f64>(12, 99);
        let b = ops::matvec(&a, &x).unwrap();
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
        let got = f.solve(&b).unwrap();
        for (g, want) in got.iter().zip(&x) {
            assert!((g - want).abs() < 1e-8, "case {case}");
        }
    }
}

#[test]
fn dag_is_always_acyclic_and_complete() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(4000 + case);
        let mt = rng.range_i64(1, 11) as usize;
        let nt = rng.range_i64(1, 11) as usize;
        let order = [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ][rng.range_i64(0, 2) as usize];
        let g = TaskGraph::build(mt, nt, order);
        assert!(topo::is_acyclic(&g), "{mt}x{nt} {order:?}");
        // Every non-source task has a pred; sources are GEQRTs.
        for id in g.sources() {
            assert!(
                matches!(g.task(id), tileqr::dag::TaskKind::Geqrt { .. }),
                "{mt}x{nt} {order:?}"
            );
        }
        // Parallelism profile conserves tasks.
        let profile = topo::parallelism_profile(&g);
        assert_eq!(profile.iter().sum::<usize>(), g.len());
        // Critical path length bounded by task count.
        let cp = critical_path::critical_path_length(&g, |_| 1.0);
        assert!(cp as usize <= g.len());
    }
}

#[test]
fn ts_task_count_closed_form() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(5000 + case);
        let mt = rng.range_i64(1, 15) as usize;
        let nt = rng.range_i64(1, 15) as usize;
        let g = TaskGraph::build(mt, nt, EliminationOrder::FlatTs);
        assert_eq!(g.len(), counts::total_ts_tasks(mt, nt), "{mt}x{nt}");
    }
}

#[test]
fn guide_array_preserves_ratios() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(6000 + case);
        let len = rng.range_i64(1, 5) as usize;
        let mut ratios: Vec<u64> = (0..len).map(|_| rng.range_i64(0, 19) as u64).collect();
        if ratios.iter().all(|&r| r == 0) {
            ratios[0] = 1;
        }
        let devices: Vec<usize> = (0..ratios.len()).collect();
        let g = guide::generate_guide_array(&devices, &ratios);
        let total: u64 = ratios.iter().sum();
        assert_eq!(g.len() as u64, total, "case {case}");
        for (d, &r) in devices.iter().zip(&ratios) {
            assert_eq!(g.iter().filter(|&&x| x == *d).count() as u64, r);
        }
    }
}

#[test]
fn integer_ratio_preserves_ordering() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(7000 + case);
        let len = rng.range_i64(2, 5) as usize;
        let mut t: Vec<f64> = (0..len).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        if !t.iter().any(|&x| x > 1.0) {
            t[0] = 2.0;
        }
        let r = ratio::integer_ratio(&t);
        assert_eq!(r.len(), t.len());
        for i in 0..t.len() {
            for j in 0..t.len() {
                if t[i] > t[j] {
                    // Faster devices never get a *smaller* ratio.
                    assert!(r[i] >= r[j], "throughputs {t:?} -> ratios {r:?}");
                }
            }
        }
    }
}

#[test]
fn nrm2_is_scale_invariant() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(8000 + case);
        let len = rng.range_i64(1, 19) as usize;
        let v: Vec<f64> = (0..len).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let scale = rng.range_f64(1.0, 1e6);
        let base = ops::nrm2(&v);
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let got = ops::nrm2(&scaled);
        assert!(
            (got - base * scale).abs() <= 1e-10 * (base * scale).max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn transpose_involution() {
    for case in 0..64u64 {
        let a = seeded_matrix(7, 5, 9000 + case);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn gemm_matches_matvec() {
    for case in 0..64u64 {
        let a = seeded_matrix(6, 4, 10_000 + case);
        let mut rng = Rng64::seed_from_u64(11_000 + case);
        let x: Vec<f64> = (0..4).map(|_| rng.range_f64(-10.0, 10.0)).collect();
        let xm = Matrix::from_col_major(4, 1, x.clone()).unwrap();
        let via_gemm = ops::matmul(&a, &xm).unwrap();
        let via_matvec = ops::matvec(&a, &x).unwrap();
        for i in 0..6 {
            assert!(
                (via_gemm[(i, 0)] - via_matvec[i]).abs() < 1e-10,
                "case {case}"
            );
        }
    }
}
