//! Calibration acceptance suite: the `calibrate` module must recover a
//! ground-truth [`DeviceProfile`] from recorded spans within 10% per
//! kernel class, and its sim-vs-real report must close the loop — a
//! simulator calibrated from a run's own spans re-predicts that run's
//! makespan.

use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::hetero::{engine, profiles, DeviceKind, Link, Platform, SimConfig, StepTimes};
use tileqr::obs::{
    fit_step_times, fitted_profile, profile_error, samples_from_trace, sim_vs_real, KernelSample,
    Trace,
};
use tileqr::prelude::*;
use tileqr::runtime::TraceConfig;

const TILE_SIZES: [usize; 4] = [8, 16, 24, 32];

/// Simulate one single-device run of an `nt`x`nt` tile grid at tile
/// size `b` and return its span samples.
fn simulated_samples(
    truth: &tileqr::hetero::DeviceProfile,
    b: usize,
    nt: usize,
) -> Vec<KernelSample> {
    let platform = Platform::new(
        vec![truth.clone()],
        Link::pcie2_x16(),
        SimConfig {
            tile_size: b,
            elem_bytes: 8,
        },
    );
    let graph = TaskGraph::build(nt, nt, EliminationOrder::FlatTs);
    let assignment = vec![0usize; graph.len()];
    let (_, timeline) = engine::simulate_traced(&graph, &platform, &assignment);
    let trace = Trace::from_timeline(&timeline, std::slice::from_ref(&truth.name));
    assert_eq!(trace.compute_span_count(), graph.len());
    samples_from_trace(&trace, b)
}

#[test]
fn fit_recovers_ground_truth_profile_from_simulated_spans() {
    // The acceptance bound is 10% per kernel class; on noise-free
    // simulated spans the fit should be essentially exact.
    for truth in [profiles::gtx580(), profiles::cpu_i7_3820()] {
        let mut samples = Vec::new();
        for &b in &TILE_SIZES {
            samples.extend(simulated_samples(&truth, b, 5));
        }
        let fitted =
            fit_step_times(&samples).unwrap_or_else(|| panic!("{}: fit failed", truth.name));
        let err = profile_error(&fitted, &truth.times, &TILE_SIZES);
        assert!(
            err.iter().all(|&e| e < 0.10),
            "{}: per-class relative error {err:?} exceeds 10%",
            truth.name
        );
        // Interpolation between sampled sizes also holds.
        let interp = profile_error(&fitted, &truth.times, &[12, 20, 28]);
        assert!(
            interp.iter().all(|&e| e < 0.10),
            "{}: {interp:?}",
            truth.name
        );
    }
}

#[test]
fn fit_fails_gracefully_below_three_tile_sizes() {
    let truth = profiles::cpu_i7_3820();
    let mut samples = simulated_samples(&truth, 8, 4);
    samples.extend(simulated_samples(&truth, 16, 4));
    assert!(
        fit_step_times(&samples).is_none(),
        "two distinct tile sizes cannot pin three coefficients"
    );
}

#[test]
fn calibrated_simulator_repredicts_the_run_it_was_fitted_from() {
    // Closed loop on a CPU profile: record a simulated run, fit a
    // profile from its spans, replay through sim_vs_real on the same
    // core count — the makespans must agree within the 10% bound.
    let truth = profiles::cpu_i7_3820();
    let mut samples = Vec::new();
    for &b in &TILE_SIZES {
        samples.extend(simulated_samples(&truth, b, 6));
    }
    let fitted = fit_step_times(&samples).unwrap();

    let b = 16;
    let nt = 6;
    let platform = Platform::new(
        vec![truth.clone()],
        Link::pcie2_x16(),
        SimConfig {
            tile_size: b,
            elem_bytes: 8,
        },
    );
    let graph = TaskGraph::build(nt, nt, EliminationOrder::FlatTs);
    let assignment = vec![0usize; graph.len()];
    let (stats, timeline) = engine::simulate_traced(&graph, &platform, &assignment);
    let trace = Trace::from_timeline(&timeline, std::slice::from_ref(&truth.name));

    let report = sim_vs_real(&trace, &graph, truth.cores, b, fitted);
    assert!((report.real_makespan_us - stats.makespan_us).abs() < 1e-6);
    assert!(report.sim_makespan_us > 0.0);
    assert!(report.real_compute_us > 0.0);
    // Busy time sums across the device's parallel slots, so it is
    // bounded by slots x makespan, not by the makespan itself.
    assert!(report.sim_busy_max_us > 0.0);
    assert!(report.sim_busy_max_us <= report.sim_makespan_us * truth.cores as f64 + 1e-6);
    assert!(
        report.makespan_rel_error().abs() < 0.10,
        "calibrated replay off by {:.1}% (real {:.1} µs, sim {:.1} µs)",
        100.0 * report.makespan_rel_error(),
        report.real_makespan_us,
        report.sim_makespan_us
    );
}

#[test]
fn sim_vs_real_reports_on_a_real_pool_run() {
    // Calibrate from real measured spans across three tile sizes, then
    // score the cost model against the real 2-worker run. Wall-clock on
    // shared CI is noisy, so only sanity bounds are asserted — the
    // point is that the report is produced and internally consistent.
    let n = 64;
    let workers = 2;
    let mut samples = Vec::new();
    let mut scored = None;
    for b in [4usize, 8, 16] {
        let a = tileqr::gen::random_matrix::<f64>(n, n, 0xCA11B);
        let opts = QrOptions::new()
            .tile_size(b)
            .workers(workers)
            .tracing(TraceConfig::enabled());
        let (qr, report) = TiledQr::factor_traced(&a, &opts).unwrap();
        let trace = report.trace.unwrap();
        samples.extend(samples_from_trace(&trace, b));
        if b == 8 {
            scored = Some((trace, qr.graph().clone()));
        }
    }
    let fitted = fit_step_times(&samples).expect("three tile sizes fitted");
    let (trace, graph) = scored.unwrap();
    let report = sim_vs_real(&trace, &graph, workers, 8, fitted);

    assert!(report.real_makespan_us > 0.0);
    assert!(report.sim_makespan_us > 0.0);
    assert!(report.real_compute_us > 0.0);
    assert!(report.makespan_rel_error().is_finite());
    // The fitted profile slots straight into the planners.
    let dev = fitted_profile("host", DeviceKind::Cpu, workers, fitted);
    assert_eq!(dev.cores, workers);
    eprintln!(
        "sim-vs-real: real {:.1} µs, sim {:.1} µs, error {:+.1}%",
        report.real_makespan_us,
        report.sim_makespan_us,
        100.0 * report.makespan_rel_error()
    );
}

#[test]
fn profile_error_is_zero_against_itself() {
    let truth: StepTimes = profiles::gtx580().times;
    assert_eq!(profile_error(&truth, &truth, &TILE_SIZES), [0.0, 0.0, 0.0]);
}
