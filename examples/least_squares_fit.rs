//! Least-squares curve fitting via tiled QR — the data-analysis workload
//! the paper's introduction motivates ("solving some systems of linear
//! equations … widely used in data analysis of various domains").
//!
//! Fits a cubic polynomial to noisy samples of a known function and
//! reports the recovered coefficients.
//!
//! ```text
//! cargo run --release --example least_squares_fit
//! ```

use tileqr::ops;
use tileqr::prelude::*;

fn main() {
    // Ground truth: y = 1.5 - 2t + 0.3t^2 + 0.01t^3, sampled with noise.
    let truth = [1.5, -2.0, 0.3, 0.01];
    let samples = 2000;
    let degree = truth.len();

    let ts: Vec<f64> = (0..samples)
        .map(|i| i as f64 * 20.0 / samples as f64)
        .collect();
    let noise = tileqr::gen::random_vector::<f64>(samples, 123);
    let y: Vec<f64> = ts
        .iter()
        .zip(&noise)
        .map(|(&t, &e)| {
            truth
                .iter()
                .enumerate()
                .map(|(p, c)| c * t.powi(p as i32))
                .sum::<f64>()
                + 0.05 * e
        })
        .collect();

    // Vandermonde design matrix: tall and skinny, the QR sweet spot.
    let a = Matrix::from_fn(samples, degree, |i, j| ts[i].powi(j as i32));

    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(32)).expect("factor");
    let coeff = f.solve(&y).expect("solve");

    println!("cubic fit from {samples} noisy samples:");
    for (p, (got, want)) in coeff.iter().zip(&truth).enumerate() {
        println!("  c{p}: fitted {got:+.4}   true {want:+.4}");
        assert!((got - want).abs() < 0.05, "coefficient c{p} off");
    }

    // Report the fit quality.
    let yhat = ops::matvec(&a, &coeff).expect("matvec");
    let rss: f64 = yhat.iter().zip(&y).map(|(p, q)| (p - q) * (p - q)).sum();
    println!("  residual sum of squares: {:.4}", rss);
    println!("OK");
}
