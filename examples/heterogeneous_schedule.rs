//! Plan a tiled QR on the paper's CPU + 3-GPU testbed and walk through
//! what each of the paper's three optimizations decided.
//!
//! ```text
//! cargo run --release --example heterogeneous_schedule [matrix_size]
//! ```

use tileqr::hetero::{self, profiles};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3200);

    let platform = profiles::paper_testbed(16);
    println!("platform (paper Table II):");
    for (i, d) in platform.devices().iter().enumerate() {
        println!(
            "  device {i}: {:<12} {:>5} cores, update throughput {:.2} tiles/us",
            d.name,
            d.cores,
            d.update_throughput(16)
        );
    }

    let run = hetero::plan_and_simulate(&platform, n);
    let plan = &run.plan;

    println!(
        "\nplanning a {n}x{n} tiled QR (grid {}x{}):",
        run.grid.0, run.grid.1
    );

    // Algorithm 2: main computing device.
    let main_dev = platform.device(plan.main);
    println!(
        "  [Alg 2] main computing device: {} (device {})",
        main_dev.name, plan.main
    );
    if let Some(sel) = &plan.main_selection {
        println!(
            "          candidates passing the T/E-before-updates test: {:?}",
            sel.candidates
        );
    }

    // Algorithm 3: number of devices.
    if let Some(count) = &plan.count_selection {
        println!(
            "  [Alg 3] participating devices: {} of {}",
            count.p,
            platform.num_devices()
        );
        for pred in &count.predictions {
            println!(
                "          p={}  Top={:>10.1}us  Tcomm={:>9.1}us  T(p)={:>10.1}us{}",
                pred.p,
                pred.top_us,
                pred.tcomm_us,
                pred.total_us(),
                if pred.p == count.p { "  <- chosen" } else { "" }
            );
        }
    }

    // Algorithm 4: distribution guide array.
    let guide = plan.distribution.guide();
    let names: Vec<&str> = guide
        .iter()
        .map(|&d| platform.device(d).name.as_str())
        .collect();
    println!(
        "  [Alg 4] distribution guide array ({} entries): {:?}",
        guide.len(),
        names
    );

    // Simulated execution.
    println!("\nsimulated execution:");
    println!("  makespan: {:.4} s", run.stats.makespan_s());
    println!(
        "  communication share: {:.1}%",
        100.0 * run.stats.comm_fraction()
    );
    for (i, d) in platform.devices().iter().enumerate() {
        // Busy time is lane-time (kernel-seconds); normalize by the
        // device's kernel slots for a 0–100% utilization figure.
        let slots = d.slots(platform.config().tile_size) as f64;
        let util = run.stats.utilization(i) / slots;
        println!(
            "  {:<12} busy {:>12.1} us lane-time  ({} tile kernels, {:.0}% of {} lanes)",
            d.name,
            run.stats.device_busy_us[i],
            run.stats.tasks_per_device[i],
            100.0 * util,
            slots
        );
    }
    println!("OK");
}
