//! Visualize a heterogeneous tiled-QR schedule: run the exact task-level
//! simulator with tracing, convert the timeline into the unified
//! observability [`Span`](tileqr::obs::Span) model, and print a text
//! Gantt chart per device (T = triangulation, E = elimination,
//! u/U = updates, . = idle).
//!
//! ```text
//! cargo run --release --example schedule_gantt [tile_grid] [width]
//! ```

use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::hetero::{assign, engine, plan, profiles, DistributionStrategy, MainDevicePolicy};
use tileqr::obs::Trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let nt: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);

    let platform = profiles::paper_testbed(16);
    let hp = plan::plan_with(
        &platform,
        nt,
        nt,
        MainDevicePolicy::Auto,
        DistributionStrategy::GuideArray,
        Some(platform.num_devices()),
    );
    let graph = TaskGraph::build(nt, nt, EliminationOrder::FlatTs);
    let assignment = assign::assign_tasks(&graph, &hp.distribution, hp.policy);

    let (stats, timeline) = engine::simulate_traced(&graph, &platform, &assignment);

    // The same unified model the real pool records into — one Compute
    // span per kernel, one lane per device.
    let lane_names: Vec<String> = (0..platform.num_devices())
        .map(|d| platform.device(d).name.clone())
        .collect();
    let trace = Trace::from_timeline(&timeline, &lane_names);
    // Multi-slot devices legitimately overlap spans within a lane.
    trace
        .validate(false)
        .expect("simulator trace is well-formed");
    assert_eq!(trace.compute_span_count(), graph.len());

    println!(
        "tiled QR of a {0}x{0} tile grid ({1} tasks) on the paper's testbed",
        nt,
        graph.len()
    );
    println!(
        "main device: {} | makespan {:.2} ms | comm share {:.1}%\n",
        platform.device(hp.main).name,
        stats.makespan_us / 1e3,
        100.0 * stats.comm_fraction()
    );

    print!("{}", trace.gantt(width));
    println!("\nlegend: T triangulation, E elimination, u/U updates, . idle");
    for d in 0..platform.num_devices() {
        println!(
            "dev{d} = {:<12} {:>5} kernels, peak concurrency {:>4} (of {} slots)",
            platform.device(d).name,
            stats.tasks_per_device[d],
            timeline.peak_concurrency(d),
            platform.device(d).slots(16)
        );
    }
    println!("OK");
}
