//! Tile-size auto-tuning, two ways:
//!
//! 1. the Song et al. (ICS'12) baseline — probe a small matrix at several
//!    tile sizes on the simulated heterogeneous testbed and pick the
//!    fastest (kept as `autotune::tune_tile_size`, deprecated), and
//! 2. the unified path — `autotune::tune_plan` sweeps the same candidates
//!    through the calibrated plan selector, choosing the elimination tree
//!    jointly with the tile size over one device's measured curves.
//!
//! ```text
//! cargo run --release --example tile_size_autotune [probe_size]
//! ```

use tileqr::hetero::{autotune, profiles};

fn main() {
    let probe: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1280);

    let candidates = [4usize, 8, 12, 16, 20, 24, 28, 32, 48, 64];
    println!("probing a {probe}x{probe} matrix at tile sizes {candidates:?} ...");

    #[allow(deprecated)] // the Song et al. baseline, kept for comparison
    let result = autotune::tune_tile_size(profiles::paper_testbed, probe, &candidates);
    println!("\nSong-style heterogeneous probe sweep:");
    println!(" tile |  simulated time");
    for (b, secs) in &result.probes {
        let marker = if *b == result.best_tile {
            "  <- best"
        } else {
            ""
        };
        println!("{b:>5} |  {secs:>10.5} s{marker}");
    }

    println!("\nauto-tuned tile size: {}", result.best_tile);
    println!("paper's fixed choice: 16 (\"because the number of cores of the CPU and GPUs are the power of 2\")");
    let fixed = result
        .probes
        .iter()
        .find(|(b, _)| *b == 16)
        .map(|&(_, t)| t);
    if let (Some(fixed), Some(&(_, best))) = (
        fixed,
        result.probes.iter().find(|(b, _)| *b == result.best_tile),
    ) {
        println!(
            "auto-tuned vs fixed-16: {:+.1}%",
            100.0 * (best / fixed - 1.0)
        );
    }

    // The unified path: same TuneResult, but the sweep runs through the
    // plan selector over one calibrated device profile and tunes the
    // elimination tree jointly with the tile size. The service-level
    // online tuner (tileqr::TunedQrService) feeds *measured* profiles
    // into this same selector.
    let device = profiles::paper_testbed(16).device(0).clone();
    let unified = autotune::tune_plan(&device, probe, &candidates);
    println!("\nunified selector sweep on {} alone:", device.name);
    println!(" tile |  predicted time (best tree)");
    for (b, secs) in &unified.probes {
        let marker = if *b == unified.best_tile {
            "  <- best"
        } else {
            ""
        };
        println!("{b:>5} |  {secs:>10.5} s{marker}");
    }
    println!("unified-tuned tile size: {}", unified.best_tile);
    println!("OK");
}
