//! Tile-size auto-tuning (the Song et al. baseline from the paper's
//! related work, §VII): probe a small matrix at several tile sizes on the
//! simulated testbed, pick the fastest, and compare against the paper's
//! fixed choice of 16.
//!
//! ```text
//! cargo run --release --example tile_size_autotune [probe_size]
//! ```

use tileqr::hetero::{autotune, profiles};

fn main() {
    let probe: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1280);

    let candidates = [4usize, 8, 12, 16, 20, 24, 28, 32, 48, 64];
    println!("probing a {probe}x{probe} matrix at tile sizes {candidates:?} ...");

    let result = autotune::tune_tile_size(profiles::paper_testbed, probe, &candidates);
    println!("\n tile |  simulated time");
    for (b, secs) in &result.probes {
        let marker = if *b == result.best_tile {
            "  <- best"
        } else {
            ""
        };
        println!("{b:>5} |  {secs:>10.5} s{marker}");
    }

    println!("\nauto-tuned tile size: {}", result.best_tile);
    println!("paper's fixed choice: 16 (\"because the number of cores of the CPU and GPUs are the power of 2\")");
    let fixed = result
        .probes
        .iter()
        .find(|(b, _)| *b == 16)
        .map(|&(_, t)| t);
    if let (Some(fixed), Some(&(_, best))) = (
        fixed,
        result.probes.iter().find(|(b, _)| *b == result.best_tile),
    ) {
        println!(
            "auto-tuned vs fixed-16: {:+.1}%",
            100.0 * (best / fixed - 1.0)
        );
    }
    println!("OK");
}
