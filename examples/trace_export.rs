//! Trace a real parallel factorization and export it as Chrome
//! `trace_event` JSON (loadable in Perfetto or `chrome://tracing`),
//! alongside per-kernel latency percentiles and a sim-vs-real
//! calibration report.
//!
//! ```text
//! cargo run --release --example trace_export [n] [tile] [workers] [out.trace.json]
//! ```

use tileqr::obs::{chrome, KernelHistograms};
use tileqr::prelude::*;
use tileqr::runtime::TraceConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let out = args
        .next()
        .unwrap_or_else(|| "tileqr.trace.json".to_string());

    let a = tileqr::gen::random_matrix::<f64>(n, n, 42);
    let opts = QrOptions::new()
        .tile_size(b)
        .workers(workers)
        .schedule(SchedulePolicy::CriticalPath)
        .tracing(TraceConfig::enabled());
    let (qr, report) = TiledQr::factor_traced(&a, &opts).expect("factorization");
    let trace = report.trace.as_ref().expect("tracing was enabled");

    println!(
        "factored {n}x{n} (tile {b}) on {workers} workers: {} tasks in {:.2} ms",
        qr.graph().len(),
        report.elapsed.as_secs_f64() * 1e3
    );
    assert_eq!(
        trace.compute_span_count(),
        qr.graph().len(),
        "one compute span per DAG task"
    );

    println!("\nper-kernel latency percentiles:");
    print!("{}", KernelHistograms::from_trace(trace).summary());

    let json = chrome::export(trace);
    chrome::validate(&json).expect("exporter emits valid JSON");
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "\nwrote {} ({} spans, {} events, {} lanes) — open in Perfetto",
        out,
        trace.spans.len(),
        trace.events.len(),
        trace.lanes.len()
    );
    println!("OK");
}
