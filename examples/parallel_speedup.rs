//! Real parallel speedup of the tiled QR DAG on host threads, using the
//! manager/computing-thread runtime (paper Fig. 7's structure).
//!
//! ```text
//! cargo run --release --example parallel_speedup [matrix_size] [tile_size]
//! ```

use std::time::Instant;
use tileqr::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(768);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let a = tileqr::gen::random_matrix::<f64>(n, n, 2024);
    let max_workers = std::thread::available_parallelism().map_or(4, |v| v.get());

    println!(
        "tiled QR of a {n}x{n} matrix, tile size {b} ({}x{} tiles):",
        n / b,
        n / b
    );

    let mut baseline = 0.0f64;
    let mut workers = 1usize;
    let mut reference_r: Option<Matrix<f64>> = None;
    while workers <= max_workers {
        let started = Instant::now();
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(b).workers(workers))
            .expect("factorization failed");
        let secs = started.elapsed().as_secs_f64();
        if workers == 1 {
            baseline = secs;
        }
        match &reference_r {
            None => reference_r = Some(f.r()),
            Some(r) => assert_eq!(r, &f.r(), "parallel result differs from sequential"),
        }
        println!(
            "  {workers:>2} worker(s): {secs:>7.3} s   speedup {:>5.2}x",
            baseline / secs
        );
        workers *= 2;
    }
    println!("OK (all worker counts produced bit-identical factors)");
}
