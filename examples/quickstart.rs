//! Quickstart: factor a matrix, inspect the factors, verify the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tileqr::kernels::validate;
use tileqr::ops;
use tileqr::prelude::*;

fn main() {
    // A 300x300 random matrix (seeded, so runs are reproducible).
    let n = 300;
    let a = tileqr::gen::random_matrix::<f64>(n, n, 42);

    // Factor with the paper's defaults (tile size 16, TS elimination).
    let f = TiledQr::factor(&a, &QrOptions::new()).expect("factorization failed");

    // Materialize both factors.
    let q = f.q().expect("Q formation failed");
    let r = f.r();

    // Validate: backward error, orthogonality, triangularity.
    let report = validate::check_qr(&a, &q, &r).expect("validation failed");
    println!("tiled QR of a {n}x{n} matrix");
    println!("  ||A - QR||_F / (||A||_F * n) = {:.3e}", report.residual);
    println!(
        "  ||Q^T Q - I||_F / n          = {:.3e}",
        report.orthogonality
    );
    println!(
        "  max |R| below diagonal       = {:.3e}",
        report.max_below_diagonal
    );
    assert!(report.passes(validate::qr_tolerance::<f64>(n, n)));

    // Use the factorization: solve A x = b.
    let x_true = tileqr::gen::random_vector::<f64>(n, 7);
    let b = ops::matvec(&a, &x_true).expect("matvec");
    let x = f.solve(&b).expect("solve failed");
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("  solve max error              = {err:.3e}");

    println!("OK");
}
