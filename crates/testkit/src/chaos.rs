//! Seeded chaos storms against a live [`QrService`].
//!
//! A *storm* is a reproducible burst of concurrent jobs where each job
//! draws one disturbance from a seeded stream — worker panic, transient
//! kernel failure, scripted stall (with the watchdog armed), NaN at
//! submission, NaN injected mid-run, cooperative cancel, an already
//! expired deadline, or nothing at all — plus a saturation probe against
//! a bounded admission gate. [`run_storm`] drives the storm end to end
//! and asserts the service's global lifecycle invariants:
//!
//! * **No job is lost or hung**: every submitted handle resolves within
//!   a generous bound, and `jobs_completed + jobs_failed` accounts for
//!   every admitted job after a clean drain.
//! * **Unaffected jobs are unaffected**: every successful output is
//!   bit-identical to the sequential factorization of the same matrix,
//!   no matter what happened to its neighbours.
//! * **Counters tell the truth**: observed `Cancelled` /
//!   `DeadlineExceeded` / mid-run `NumericalBreakdown` errors equal the
//!   service's `jobs_cancelled` / `jobs_shed` / `poison_detected`
//!   lifecycle counters, and injected stalls force at least one
//!   watchdog retirement.
//!
//! Storms are pure functions of [`ChaosConfig::seed`]: a CI failure
//! reproduces locally from the seed printed in the event log.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tileqr_dag::{EliminationOrder, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::rng::Rng64;
use tileqr_matrix::{Matrix, TiledMatrix};
use tileqr_runtime::service::WaitTimeout;
use tileqr_runtime::{
    FaultTolerance, JobHandle, JobSpec, QrService, ScriptedFaults, ServiceConfig, ServiceError,
    ServiceStats,
};

/// How long a storm waits for any single handle before declaring the
/// job hung. Generous: storms use tiny matrices, so even heavily
/// disturbed jobs resolve in milliseconds.
const RESOLVE_BOUND: Duration = Duration::from_secs(30);

/// Configuration of one chaos storm.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed of the disturbance stream; equal seeds replay exactly.
    pub seed: u64,
    /// Worker threads of the service under storm.
    pub workers: usize,
    /// Jobs submitted by the storm.
    pub jobs: usize,
    /// Tile size of every job.
    pub tile: usize,
    /// Admission bound (`0` = unbounded). Bounded storms exercise
    /// blocking backpressure plus a `try_submit` saturation probe.
    pub max_in_flight: usize,
    /// Watchdog bound. Storms that draw stalls need this armed; the
    /// injected stall sleeps several multiples of it.
    pub stall_timeout: Option<Duration>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            workers: 2,
            jobs: 6,
            tile: 8,
            max_in_flight: 0,
            stall_timeout: Some(Duration::from_millis(25)),
        }
    }
}

/// The disturbance one storm job draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disturbance {
    /// No injection: the job must succeed bit-identically.
    Clean,
    /// Worker panic on the first attempt of a random task.
    Panic,
    /// Transient kernel error on the first attempt of a random task.
    Transient,
    /// Scripted stall long enough to trip the watchdog.
    Stall,
    /// NaN planted in the input matrix (rejected at submission).
    PoisonSubmit,
    /// NaN injected into a panel-factor output mid-run (caught at the
    /// commit fence).
    PoisonMidRun,
    /// Cooperative cancel racing completion.
    Cancel,
    /// Deadline already expired at submission (deterministic shed).
    Deadline,
}

impl Disturbance {
    /// Stable lowercase name for event logs.
    pub fn name(self) -> &'static str {
        match self {
            Disturbance::Clean => "clean",
            Disturbance::Panic => "panic",
            Disturbance::Transient => "transient",
            Disturbance::Stall => "stall",
            Disturbance::PoisonSubmit => "poison_submit",
            Disturbance::PoisonMidRun => "poison_midrun",
            Disturbance::Cancel => "cancel",
            Disturbance::Deadline => "deadline",
        }
    }
}

/// How one storm job resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Successful result, verified bit-identical to the sequential run.
    Identical,
    /// `ServiceError::Cancelled`.
    Cancelled,
    /// `ServiceError::DeadlineExceeded`.
    Shed,
    /// `ServiceError::NumericalBreakdown` (submission or mid-run).
    Poisoned,
}

impl Outcome {
    /// Stable lowercase name for event logs.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Identical => "identical",
            Outcome::Cancelled => "cancelled",
            Outcome::Shed => "shed",
            Outcome::Poisoned => "poisoned",
        }
    }
}

/// One storm job's ledger entry.
#[derive(Debug, Clone)]
pub struct StormEvent {
    /// Storm seed (repeated per event so a log line is self-contained).
    pub seed: u64,
    /// Job index within the storm.
    pub job: usize,
    /// Matrix dimension (`n x n`).
    pub n: usize,
    /// Disturbance the job drew.
    pub disturbance: Disturbance,
    /// How the job resolved.
    pub outcome: Outcome,
}

/// Everything a storm observed, for assertions and artifact logs.
#[derive(Debug)]
pub struct StormReport {
    /// The storm's seed.
    pub seed: u64,
    /// Per-job ledger in submission order.
    pub events: Vec<StormEvent>,
    /// Saturation probes rejected with `ServiceError::Saturated`.
    pub saturation_rejections: u64,
    /// Final service stats after the drain.
    pub stats: ServiceStats,
}

impl StormReport {
    /// Event log as JSON lines (one object per storm event), suitable
    /// for appending to a CI artifact.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"seed\":{},\"job\":{},\"n\":{},\"disturbance\":\"{}\",\"outcome\":\"{}\"}}\n",
                e.seed,
                e.job,
                e.n,
                e.disturbance.name(),
                e.outcome.name()
            ));
        }
        out
    }

    /// Count of events with a given outcome.
    pub fn count(&self, outcome: Outcome) -> u64 {
        self.events.iter().filter(|e| e.outcome == outcome).count() as u64
    }
}

/// Sequential ground truth, cached per `(n, seed)` across storms.
pub struct GroundTruth {
    cache: HashMap<(usize, u64), Matrix<f64>>,
    tile: usize,
}

impl GroundTruth {
    /// Empty cache for a given tile size.
    pub fn new(tile: usize) -> Self {
        GroundTruth {
            cache: HashMap::new(),
            tile,
        }
    }

    /// Final tile state of the sequential factorization of
    /// `random_matrix(n, n, seed)`.
    pub fn tiles(&mut self, n: usize, seed: u64) -> &Matrix<f64> {
        let tile = self.tile;
        self.cache.entry((n, seed)).or_insert_with(|| {
            let a = random_matrix::<f64>(n, n, seed);
            let tiled = TiledMatrix::from_matrix(&a, tile).unwrap();
            let g = TaskGraph::build(
                tiled.tile_rows(),
                tiled.tile_cols(),
                EliminationOrder::FlatTs,
            );
            let mut st = FactorState::new(tiled);
            st.run_all(&g).unwrap();
            st.tiles().to_matrix()
        })
    }
}

/// Matrix dimensions the storm draws from (kept tiny: chaos coverage
/// comes from storm count, not job size).
const SIZES: [usize; 3] = [16, 24, 32];

/// Matrix seeds the storm draws from — a small pool so the sequential
/// ground-truth cache stays hot across hundreds of jobs.
const MATRIX_SEEDS: [u64; 4] = [9001, 9002, 9003, 9004];

fn pick<T: Copy>(rng: &mut Rng64, options: &[T]) -> T {
    options[rng.range_i64(0, options.len() as i64 - 1) as usize]
}

/// Number of tasks in the FlatTs DAG of an `n x n` matrix at tile size
/// `b` (used to aim scripted faults at a random but valid task).
fn dag_len(n: usize, b: usize) -> usize {
    let t = n.div_ceil(b);
    TaskGraph::build(t, t, EliminationOrder::FlatTs).len()
}

/// Run one seeded storm and assert the global lifecycle invariants.
/// Panics (failing the calling test) on any violation.
pub fn run_storm(cfg: &ChaosConfig, truth: &mut GroundTruth) -> StormReport {
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: cfg.workers,
        max_in_flight: cfg.max_in_flight,
        fault_tolerance: FaultTolerance {
            stall_timeout: cfg.stall_timeout,
            ..FaultTolerance::default()
        },
        ..ServiceConfig::default()
    });

    let stall_armed = cfg.stall_timeout.is_some();
    let menu: &[Disturbance] = if stall_armed {
        &[
            Disturbance::Clean,
            Disturbance::Panic,
            Disturbance::Transient,
            Disturbance::Stall,
            Disturbance::PoisonSubmit,
            Disturbance::PoisonMidRun,
            Disturbance::Cancel,
            Disturbance::Deadline,
        ]
    } else {
        &[
            Disturbance::Clean,
            Disturbance::Panic,
            Disturbance::Transient,
            Disturbance::PoisonSubmit,
            Disturbance::PoisonMidRun,
            Disturbance::Cancel,
            Disturbance::Deadline,
        ]
    };

    struct Pending {
        job: usize,
        n: usize,
        seed: u64,
        disturbance: Disturbance,
        handle: JobHandle<f64>,
    }
    let mut pending: Vec<Pending> = Vec::new();
    let mut events: Vec<StormEvent> = Vec::new();
    let mut stalls_injected = 0u64;
    let mut saturation_rejections = 0u64;

    for job in 0..cfg.jobs {
        let n = pick(&mut rng, &SIZES);
        let mseed = pick(&mut rng, &MATRIX_SEEDS);
        let disturbance = pick(&mut rng, menu);
        let mut a = random_matrix::<f64>(n, n, mseed);
        let target = rng.range_i64(0, dag_len(n, cfg.tile) as i64 - 1) as usize;
        let mut spec = JobSpec::factor(a.clone()).tile_size(cfg.tile);
        match disturbance {
            Disturbance::Clean | Disturbance::Cancel => {}
            Disturbance::Panic => {
                spec = spec.faults(Arc::new(ScriptedFaults::new().panic_on(target, 1)));
            }
            Disturbance::Transient => {
                spec = spec.faults(Arc::new(ScriptedFaults::new().fail_on(target, 1)));
            }
            Disturbance::Stall => {
                let bound = cfg.stall_timeout.expect("stall storms arm the watchdog");
                spec = spec.faults(Arc::new(ScriptedFaults::new().stall_on(
                    target,
                    1,
                    bound * 4,
                )));
                stalls_injected += 1;
            }
            Disturbance::PoisonSubmit => {
                let i = rng.range_i64(0, n as i64 - 1) as usize;
                let j = rng.range_i64(0, n as i64 - 1) as usize;
                a.set(i, j, f64::NAN).unwrap();
                spec = JobSpec::factor(a.clone()).tile_size(cfg.tile);
            }
            Disturbance::PoisonMidRun => {
                // Task 0 is always a panel factor (the first GEQRT), so
                // the corruption hits the commit-fence scan.
                spec = spec.faults(Arc::new(ScriptedFaults::new().poison_on(0, 1)));
            }
            Disturbance::Deadline => {
                spec = spec.deadline(Duration::ZERO);
            }
        }
        match svc.submit(spec) {
            Ok(handle) => {
                if disturbance == Disturbance::Cancel {
                    handle.cancel();
                }
                pending.push(Pending {
                    job,
                    n,
                    seed: mseed,
                    disturbance,
                    handle,
                });
            }
            Err(ServiceError::NumericalBreakdown { task: None, .. })
                if disturbance == Disturbance::PoisonSubmit =>
            {
                events.push(StormEvent {
                    seed: cfg.seed,
                    job,
                    n,
                    disturbance,
                    outcome: Outcome::Poisoned,
                });
            }
            Err(e) => panic!("storm {}: job {job} submit failed: {e}", cfg.seed),
        }
        // Saturation probe: under a bounded gate, fire an extra
        // non-blocking submission that is allowed to bounce.
        if cfg.max_in_flight > 0 && rng.chance(0.5) {
            let probe = random_matrix::<f64>(16, 16, MATRIX_SEEDS[0]);
            match svc.try_submit(JobSpec::factor(probe).tile_size(cfg.tile)) {
                Ok(h) => pending.push(Pending {
                    job,
                    n: 16,
                    seed: MATRIX_SEEDS[0],
                    disturbance: Disturbance::Clean,
                    handle: h,
                }),
                Err(ServiceError::Saturated {
                    in_flight,
                    max_in_flight,
                }) => {
                    assert_eq!(
                        max_in_flight, cfg.max_in_flight,
                        "storm {}: saturation payload mismatch",
                        cfg.seed
                    );
                    assert!(in_flight >= max_in_flight);
                    saturation_rejections += 1;
                }
                Err(e) => panic!("storm {}: probe failed unexpectedly: {e}", cfg.seed),
            }
        }
    }

    // Every handle must resolve within the bound — a hung job fails the
    // storm long before the suite's own timeout would.
    for p in pending {
        let resolved = match p.handle.wait_timeout(RESOLVE_BOUND) {
            Ok(r) => r,
            Err(WaitTimeout) => panic!(
                "storm {}: job {} ({}) hung past {RESOLVE_BOUND:?}",
                cfg.seed,
                p.job,
                p.disturbance.name()
            ),
        };
        let outcome = match resolved {
            Ok(result) => {
                let got = result.output.factor().state.tiles().to_matrix();
                assert_eq!(
                    &got,
                    truth.tiles(p.n, p.seed),
                    "storm {}: job {} ({}) diverged from the sequential run",
                    cfg.seed,
                    p.job,
                    p.disturbance.name()
                );
                Outcome::Identical
            }
            Err(ServiceError::Cancelled) => {
                assert_eq!(
                    p.disturbance,
                    Disturbance::Cancel,
                    "storm {}: job {} cancelled without a cancel request",
                    cfg.seed,
                    p.job
                );
                Outcome::Cancelled
            }
            Err(ServiceError::DeadlineExceeded { .. }) => {
                assert_eq!(
                    p.disturbance,
                    Disturbance::Deadline,
                    "storm {}: job {} shed without a deadline",
                    cfg.seed,
                    p.job
                );
                Outcome::Shed
            }
            Err(ServiceError::NumericalBreakdown { task: Some(t), .. }) => {
                assert_eq!(
                    p.disturbance,
                    Disturbance::PoisonMidRun,
                    "storm {}: job {} poisoned without an injection",
                    cfg.seed,
                    p.job
                );
                assert_eq!(t, 0, "poison was scripted on task 0");
                Outcome::Poisoned
            }
            Err(e) => panic!(
                "storm {}: job {} ({}) failed unexpectedly: {e}",
                cfg.seed,
                p.job,
                p.disturbance.name()
            ),
        };
        events.push(StormEvent {
            seed: cfg.seed,
            job: p.job,
            n: p.n,
            disturbance: p.disturbance,
            outcome,
        });
    }

    // Clean drain, then audit the books.
    let stats = svc.shutdown();
    let report = StormReport {
        seed: cfg.seed,
        events,
        saturation_rejections,
        stats,
    };
    let s = &report.stats;
    assert_eq!(
        s.jobs_completed,
        report.count(Outcome::Identical),
        "storm {}: completion counter drifted from observed results",
        cfg.seed
    );
    assert_eq!(
        s.jobs_completed + s.jobs_failed,
        s.jobs_submitted,
        "storm {}: drain lost jobs ({} + {} != {})",
        cfg.seed,
        s.jobs_completed,
        s.jobs_failed,
        s.jobs_submitted
    );
    assert_eq!(
        s.lifecycle.jobs_cancelled,
        report.count(Outcome::Cancelled),
        "storm {}: jobs_cancelled drifted",
        cfg.seed
    );
    assert_eq!(
        s.lifecycle.jobs_shed,
        report.count(Outcome::Shed),
        "storm {}: jobs_shed drifted",
        cfg.seed
    );
    // Submission-time poison never reaches the manager, so the counter
    // tracks only mid-run detections.
    let midrun = report
        .events
        .iter()
        .filter(|e| e.disturbance == Disturbance::PoisonMidRun && e.outcome == Outcome::Poisoned)
        .count() as u64;
    assert_eq!(
        s.lifecycle.poison_detected, midrun,
        "storm {}: poison_detected drifted",
        cfg.seed
    );
    if stalls_injected > 0 {
        assert!(
            s.lifecycle.watchdog_retirements >= 1,
            "storm {}: {stalls_injected} stalls injected but the watchdog never fired",
            cfg.seed
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_replay_from_their_seed() {
        let cfg = ChaosConfig {
            seed: 77,
            jobs: 4,
            ..ChaosConfig::default()
        };
        let mut truth = GroundTruth::new(cfg.tile);
        let a = run_storm(&cfg, &mut truth);
        let b = run_storm(&cfg, &mut truth);
        let key = |r: &StormReport| {
            let mut evs: Vec<(usize, &'static str, &'static str)> = r
                .events
                .iter()
                .map(|e| (e.job, e.disturbance.name(), e.outcome.name()))
                .collect();
            evs.sort_unstable();
            evs
        };
        // Disturbance draws are seed-determined; outcomes may differ only
        // where the spec races (cancel vs completion).
        let da: Vec<_> = key(&a).iter().map(|e| (e.0, e.1)).collect();
        let db: Vec<_> = key(&b).iter().map(|e| (e.0, e.1)).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn jsonl_is_one_object_per_event() {
        let cfg = ChaosConfig {
            seed: 78,
            jobs: 3,
            ..ChaosConfig::default()
        };
        let mut truth = GroundTruth::new(cfg.tile);
        let r = run_storm(&cfg, &mut truth);
        let log = r.to_jsonl();
        assert_eq!(log.lines().count(), r.events.len());
        for line in log.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"disturbance\""));
        }
    }
}
