//! Deterministic testkit for the tiled-QR stack.
//!
//! The runtime, simulator and schedulers are all *deterministic given
//! their inputs* — but the space of inputs a production run can see
//! (thread interleavings, device misbehavior, pathological matrices) is
//! far larger than what unit tests naturally cover. This crate closes
//! the gap with three instruments:
//!
//! * [`explorer`] — a virtual `k`-worker scheduler that drives
//!   [`tileqr_kernels::exec::SharedFactorState`] through seeded and
//!   adversarial dispatch/completion interleavings and hands back the
//!   final state for bit-identity comparison against the sequential
//!   factorization. Hundreds of distinct legal schedules per test, each
//!   fully reproducible from a seed.
//! * fault injection — [`tileqr_sim::FaultPlan`] scenarios (device
//!   slowdown spikes, bus stalls and storms, transient kernel failures)
//!   replayed through the discrete-event engine, with the paper's
//!   Alg. 2/3 selections re-evaluated on degraded device profiles.
//! * [`oracle`] — condition-scaled residual / orthogonality bounds and a
//!   differential `R`-factor check against the reference Householder
//!   path, for an adversarial matrix family (graded, near-rank-deficient,
//!   Hilbert-like, huge/tiny scale).
//! * [`chaos`] — seeded disturbance storms (panics, stalls, cancels,
//!   deadline sheds, NaN injections, saturation) against a live
//!   [`tileqr_runtime::QrService`], asserting the end-to-end lifecycle
//!   invariants: no job lost or hung, unaffected jobs bit-identical,
//!   lifecycle counters consistent with observed outcomes.
//!
//! The integration suites live under `tests/` and read two environment
//! variables so CI can sweep configurations without recompiling:
//! `TILEQR_TESTKIT_WORKERS` (comma-separated worker counts) and
//! `TILEQR_TESTKIT_POLICY` (`fifo`, `critical_path`, or `both`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod explorer;
pub mod oracle;

use tileqr_runtime::SchedulePolicy;

/// Worker counts the integration suites should sweep. Reads
/// `TILEQR_TESTKIT_WORKERS` (e.g. `"1,2,4"`); defaults to `[1, 2, 4]`.
pub fn workers_under_test() -> Vec<usize> {
    match std::env::var("TILEQR_TESTKIT_WORKERS") {
        Ok(s) => s
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad TILEQR_TESTKIT_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// Schedule policies the integration suites should sweep. Reads
/// `TILEQR_TESTKIT_POLICY` (`fifo`, `critical_path` or `both`); defaults
/// to both.
pub fn policies_under_test() -> Vec<SchedulePolicy> {
    match std::env::var("TILEQR_TESTKIT_POLICY").as_deref() {
        Ok("fifo") => vec![SchedulePolicy::Fifo],
        Ok("critical_path") => vec![SchedulePolicy::CriticalPath],
        Ok("both") | Err(_) => vec![SchedulePolicy::Fifo, SchedulePolicy::CriticalPath],
        Ok(other) => panic!("bad TILEQR_TESTKIT_POLICY {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_ci_matrix() {
        // CI sets the env vars per job; the in-process default is the
        // full matrix (serial tests must not mutate the environment).
        if std::env::var("TILEQR_TESTKIT_WORKERS").is_err() {
            assert_eq!(workers_under_test(), vec![1, 2, 4]);
        }
        if std::env::var("TILEQR_TESTKIT_POLICY").is_err() {
            assert_eq!(policies_under_test().len(), 2);
        }
    }
}
