//! Numerical oracles: condition-scaled correctness bounds for a QR run.
//!
//! Householder QR is backward stable: `‖A − QR‖ / ‖A‖` and `‖QᵀQ − I‖`
//! are `O(ε·poly(n))` *independently of conditioning*, while the computed
//! `R` itself drifts from the reference `R` by `O(ε·κ₂(A))`. The oracles
//! encode exactly that split: the residual/orthogonality budget grows
//! only logarithmically with the condition estimate (headroom for the
//! norm inflation of graded and wide-dynamic-range matrices), whereas the
//! differential `R` check against the reference Householder path scales
//! linearly with `κ`.

use tileqr_kernels::reference::householder_qr;
use tileqr_kernels::validate::{check_qr, qr_tolerance, QrReport};
use tileqr_matrix::{Matrix, Result};

/// Verdict of the oracle suite for one factorization.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The raw residual / orthogonality / triangularity metrics.
    pub report: QrReport<f64>,
    /// The condition-scaled bound the metrics were held to.
    pub tolerance: f64,
    /// Condition estimate used for the scaling (`1.0` when unknown).
    pub kappa: f64,
    /// Max entrywise `|R| − |R_ref|` deviation, relative to `‖A‖_F`
    /// (`None` when the differential check was skipped).
    pub r_deviation: Option<f64>,
}

impl OracleReport {
    /// `true` when every checked metric met its bound.
    pub fn passes(&self) -> bool {
        self.report.passes(self.tolerance)
            && self
                .r_deviation
                .map_or(true, |d| d <= differential_tolerance(self.kappa))
    }
}

/// Residual/orthogonality budget for an `m x n` factorization of a
/// matrix with condition estimate `kappa`: the backward-stability
/// tolerance of the kernels crate, widened by `1 + log10(κ)`. Backward
/// error does not grow with κ in exact theory, but extreme grading
/// inflates the *computed norms* the metrics divide by, so a modest
/// logarithmic allowance keeps the oracle sharp without false alarms.
pub fn condition_scaled_tolerance(m: usize, n: usize, kappa: f64) -> f64 {
    let base: f64 = qr_tolerance(m, n);
    base * (1.0 + kappa.max(1.0).log10())
}

/// Budget for the differential `|R|` comparison: forward error in `R` is
/// `O(ε·κ)`, so the bound scales linearly with the condition estimate.
pub fn differential_tolerance(kappa: f64) -> f64 {
    100.0 * f64::EPSILON * kappa.max(1.0)
}

/// Run the full oracle suite on a computed factorization `A ≈ Q R`.
///
/// `kappa` is the caller's condition estimate (pass `None` when
/// unavailable — bounds then assume a well-conditioned matrix). The
/// differential check recomputes the factorization through the reference
/// Householder path and compares `|R|` entrywise (absolute values,
/// because the sign of each row of `R` is a free choice the two
/// algorithms make independently).
pub fn verify_qr(
    a: &Matrix<f64>,
    q: &Matrix<f64>,
    r: &Matrix<f64>,
    kappa: Option<f64>,
) -> Result<OracleReport> {
    let (m, n) = a.dims();
    let kappa = kappa.unwrap_or(1.0);
    let report = check_qr(a, q, r)?;
    let tolerance = condition_scaled_tolerance(m, n, kappa);

    // Differential check only while ε·κ still leaves the bound meaningful.
    let r_deviation = if kappa < 1e12 {
        let (_, r_ref) = householder_qr(a)?;
        let scale = tileqr_matrix::ops::frobenius_norm(a).max(f64::MIN_POSITIVE);
        let mut worst = 0.0f64;
        for i in 0..n.min(m) {
            for j in 0..n {
                let dev = (r[(i, j)].abs() - r_ref[(i, j)].abs()).abs();
                worst = worst.max(dev / scale);
            }
        }
        Some(worst)
    } else {
        None
    };

    Ok(OracleReport {
        report,
        tolerance,
        kappa,
        r_deviation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::random_matrix;

    #[test]
    fn reference_factorization_passes_its_own_oracle() {
        let a = random_matrix::<f64>(24, 24, 1);
        let (q, r) = householder_qr(&a).unwrap();
        let rep = verify_qr(&a, &q, &r, Some(50.0)).unwrap();
        assert!(rep.passes(), "{rep:?}");
        assert!(rep.r_deviation.unwrap() == 0.0, "self-comparison is exact");
    }

    #[test]
    fn corrupted_r_is_rejected() {
        let a = random_matrix::<f64>(16, 16, 2);
        let (q, mut r) = householder_qr(&a).unwrap();
        r[(3, 7)] += 1e-3;
        let rep = verify_qr(&a, &q, &r, Some(50.0)).unwrap();
        assert!(!rep.passes(), "{rep:?}");
    }

    #[test]
    fn tolerance_scales_with_condition() {
        let base = condition_scaled_tolerance(32, 32, 1.0);
        let hard = condition_scaled_tolerance(32, 32, 1e10);
        assert!(hard > base);
        assert!(hard < base * 20.0, "growth stays logarithmic");
        assert!(differential_tolerance(1e8) > differential_tolerance(1.0));
    }

    #[test]
    fn ill_conditioned_skips_differential() {
        let a = random_matrix::<f64>(8, 8, 3);
        let (q, r) = householder_qr(&a).unwrap();
        let rep = verify_qr(&a, &q, &r, Some(1e15)).unwrap();
        assert!(rep.r_deviation.is_none());
        assert!(rep.passes());
    }
}
