//! Deterministic schedule exploration.
//!
//! The parallel runtime guarantees a *bit-identical* result for every
//! legal dispatch/completion interleaving, because tasks write disjoint
//! tile sets and the kernels themselves are deterministic. Real thread
//! pools only ever sample a handful of interleavings per run, and always
//! the "natural" ones. This module replays the same three-phase
//! stage/compute/commit protocol on a **virtual** `k`-worker machine
//! whose two free choices — *which ready task to dispatch* and *which
//! in-flight task finishes next* — are driven by a seeded RNG or an
//! adversarial rule. Every exploration is reproducible from its
//! [`ExploreStrategy`] alone.

use tileqr_dag::{EliminationOrder, EliminationTree, TaskGraph, TaskId, TaskKind};
use tileqr_kernels::exec::{FactorState, SharedFactorState};
use tileqr_matrix::{Matrix, Result, Rng64, TiledMatrix};
use tileqr_runtime::SchedulePolicy;

/// How the virtual machine resolves its two nondeterministic choices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExploreStrategy {
    /// Dispatch per `policy` (FIFO or highest bottom level first);
    /// the *completion* order among in-flight tasks is a seeded random
    /// permutation — the honest model of workers racing to finish.
    Seeded {
        /// RNG seed for the completion choices.
        seed: u64,
        /// Dispatch-side ordering of the ready set.
        policy: SchedulePolicy,
    },
    /// Dispatch the ready task with the *lowest* bottom level (the exact
    /// inverse of the critical-path heuristic) and complete in-flight
    /// tasks newest-first — the worst schedule a priority bug could
    /// produce.
    ReversePriority,
    /// Dispatch the ready task whose home column is farthest from the
    /// previously dispatched one — maximal loss of locality/affinity.
    AntiAffinity,
    /// One virtual worker draining the ready set newest-first, so the
    /// oldest ready tasks starve as long as legally possible.
    LifoStarvation,
}

impl ExploreStrategy {
    fn workers_cap(self, workers: usize) -> usize {
        match self {
            ExploreStrategy::LifoStarvation => 1,
            _ => workers.max(1),
        }
    }
}

/// Outcome of one explored interleaving.
#[derive(Debug)]
pub struct Exploration {
    /// Order in which tasks committed — the schedule's fingerprint.
    pub completion_order: Vec<TaskId>,
    /// Final factorization state, reassembled for comparison.
    pub state: FactorState<f64>,
}

impl Exploration {
    /// Compact order fingerprint for distinct-interleaving counting.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the completion order: collision-safe enough to
        // count distinct schedules among a few hundred.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &t in &self.completion_order {
            h ^= t as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Per-task weight mirroring the kernel flop counts the runtime uses for
/// its critical-path priorities (GEQRT 2b³/3, elimination 2b³ class
/// weights collapse to constants since every task shares the tile size).
fn flop_weight(task: TaskKind) -> f64 {
    match task {
        TaskKind::Geqrt { .. } => 2.0 / 3.0,
        TaskKind::Unmqr { .. } => 2.0,
        TaskKind::Tsqrt { .. } | TaskKind::Ttqrt { .. } => 2.0 / 3.0,
        TaskKind::Tsmqr { .. } | TaskKind::Ttmqr { .. } => 4.0,
    }
}

/// Run one interleaving of `graph` over `tiles` on a virtual
/// `workers`-slot machine. Returns the reassembled state and the
/// completion order.
pub fn explore(
    tiles: TiledMatrix<f64>,
    graph: &TaskGraph,
    workers: usize,
    strategy: ExploreStrategy,
) -> Result<Exploration> {
    let cap = strategy.workers_cap(workers);
    let priorities = tileqr_dag::critical_path::bottom_levels(graph, flop_weight);
    let shared = SharedFactorState::new(FactorState::new(tiles));

    let mut indegree: Vec<usize> = graph.indegrees();
    let mut ready: Vec<TaskId> = graph.sources();
    // In-flight tasks, oldest first: (task id, staged inputs).
    let mut in_flight: Vec<(TaskId, tileqr_kernels::exec::StagedTask<f64>)> = Vec::new();
    let mut completion_order = Vec::with_capacity(graph.len());
    let mut rng = match strategy {
        ExploreStrategy::Seeded { seed, .. } => Rng64::seed_from_u64(seed),
        _ => Rng64::seed_from_u64(0),
    };
    let mut last_column: usize = 0;

    while completion_order.len() < graph.len() {
        // Fill the virtual worker slots.
        while in_flight.len() < cap && !ready.is_empty() {
            let pick = pick_dispatch(strategy, &ready, &priorities, graph, last_column);
            // `remove` keeps `ready` in arrival order, which the FIFO and
            // LIFO strategies depend on.
            let task = ready.remove(pick);
            last_column = graph.task(task).home_column();
            let staged = shared.stage(graph.task(task))?;
            in_flight.push((task, staged));
        }
        debug_assert!(!in_flight.is_empty(), "legal DAG never wedges");

        // Choose which in-flight task "finishes" next.
        let done_idx = match strategy {
            ExploreStrategy::Seeded { .. } => (rng.next_u64() % in_flight.len() as u64) as usize,
            ExploreStrategy::ReversePriority => in_flight.len() - 1,
            _ => 0,
        };
        let (task, staged) = in_flight.remove(done_idx);
        shared.commit(staged.compute()?);
        completion_order.push(task);
        for &s in graph.succs(task) {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }

    Ok(Exploration {
        completion_order,
        state: shared.into_state(),
    })
}

fn pick_dispatch(
    strategy: ExploreStrategy,
    ready: &[TaskId],
    priorities: &[f64],
    graph: &TaskGraph,
    last_column: usize,
) -> usize {
    match strategy {
        ExploreStrategy::Seeded { policy, .. } => match policy {
            SchedulePolicy::Fifo => 0,
            SchedulePolicy::CriticalPath => argbest(ready, |t| priorities[t]),
        },
        ExploreStrategy::ReversePriority => argbest(ready, |t| -priorities[t]),
        ExploreStrategy::AntiAffinity => argbest(ready, |t| {
            (graph.task(t).home_column() as f64 - last_column as f64).abs()
        }),
        ExploreStrategy::LifoStarvation => ready.len() - 1,
    }
}

/// Index of the ready task maximizing `score`, ties toward the lower
/// task id so every strategy stays deterministic.
fn argbest(ready: &[TaskId], score: impl Fn(TaskId) -> f64) -> usize {
    let mut best = 0;
    for idx in 1..ready.len() {
        let (s, t) = (score(ready[idx]), ready[idx]);
        let (bs, bt) = (score(ready[best]), ready[best]);
        if s > bs || (s == bs && t < bt) {
            best = idx;
        }
    }
    best
}

/// Convenience wrapper: tile `a`, explore one interleaving, and return
/// it alongside the sequential reference state for bit-identity checks.
pub fn explore_vs_sequential(
    a: &Matrix<f64>,
    tile_size: usize,
    order: EliminationOrder,
    workers: usize,
    strategy: ExploreStrategy,
) -> Result<(Exploration, FactorState<f64>)> {
    explore_tree_vs_sequential(a, tile_size, order.into(), workers, strategy)
}

/// Tree-generic [`explore_vs_sequential`]: any member of the elimination
/// zoo, including the TSQR fast-path DAG on tall-skinny grids.
pub fn explore_tree_vs_sequential(
    a: &Matrix<f64>,
    tile_size: usize,
    tree: EliminationTree,
    workers: usize,
    strategy: ExploreStrategy,
) -> Result<(Exploration, FactorState<f64>)> {
    let tiled = TiledMatrix::from_matrix(a, tile_size)?;
    let graph = TaskGraph::build_tree(tiled.tile_rows(), tiled.tile_cols(), tree);
    let mut reference = FactorState::new(tiled.clone());
    reference.run_all(&graph)?;
    let explored = explore(tiled, &graph, workers, strategy)?;
    Ok((explored, reference))
}

/// Assert an exploration reproduced the sequential factorization
/// *bitwise*: every tile and every `T` factor.
pub fn assert_bit_identical(explored: &FactorState<f64>, reference: &FactorState<f64>) {
    assert_eq!(
        explored.tiles().to_matrix(),
        reference.tiles().to_matrix(),
        "tiles diverged from the sequential factorization"
    );
    assert_eq!(
        explored.r_matrix(),
        reference.r_matrix(),
        "R factor diverged from the sequential factorization"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::random_matrix;

    #[test]
    fn every_strategy_is_bit_identical_to_sequential() {
        let a = random_matrix::<f64>(24, 24, 77);
        for strategy in [
            ExploreStrategy::Seeded {
                seed: 3,
                policy: SchedulePolicy::Fifo,
            },
            ExploreStrategy::Seeded {
                seed: 3,
                policy: SchedulePolicy::CriticalPath,
            },
            ExploreStrategy::ReversePriority,
            ExploreStrategy::AntiAffinity,
            ExploreStrategy::LifoStarvation,
        ] {
            let (exp, reference) =
                explore_vs_sequential(&a, 8, EliminationOrder::FlatTs, 3, strategy).unwrap();
            let expected = TaskGraph::build(3, 3, EliminationOrder::FlatTs).len();
            assert_eq!(exp.completion_order.len(), expected);
            assert_bit_identical(&exp.state, &reference);
        }
    }

    #[test]
    fn seeded_replay_is_exact_and_seed_sensitive() {
        let a = random_matrix::<f64>(32, 32, 5);
        let run = |seed| {
            let strategy = ExploreStrategy::Seeded {
                seed,
                policy: SchedulePolicy::Fifo,
            };
            explore_vs_sequential(&a, 8, EliminationOrder::FlatTs, 4, strategy)
                .unwrap()
                .0
        };
        assert_eq!(run(9).completion_order, run(9).completion_order);
        // Distinct seeds explore distinct interleavings (for this size the
        // schedule space is astronomically larger than two).
        assert_ne!(run(1).completion_order, run(2).completion_order);
        assert_ne!(run(1).fingerprint(), run(2).fingerprint());
    }

    #[test]
    fn starvation_runs_single_slot() {
        let a = random_matrix::<f64>(16, 16, 8);
        let (exp, reference) = explore_vs_sequential(
            &a,
            8,
            EliminationOrder::FlatTs,
            8,
            ExploreStrategy::LifoStarvation,
        )
        .unwrap();
        assert_bit_identical(&exp.state, &reference);
    }
}
