//! Worker-failure recovery through the full parallel runtime.
//!
//! Every scenario scripts faults at exact `(task, attempt)` coordinates
//! with [`ScriptedFaults`], runs the fault-tolerant pool across the CI
//! worker/policy sweep, and holds the recovered factorization to **bit
//! identity** with the sequential path — recovery must be invisible in
//! the numbers, visible only in the [`RunReport`] counters. The commit
//! protocol makes that possible: a requeued attempt stages the same
//! immutable inputs its predecessor saw (no conflicting writer can run
//! before the task commits), so the duplicate computes the identical
//! tiles and the first result wins.

use std::time::Duration;
use tileqr::{QrOptions, TiledQr};
use tileqr_dag::{EliminationOrder, EliminationTree, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::{Matrix, TiledMatrix};
use tileqr_runtime::{
    parallel_factor_ft, FaultTolerance, PoolConfig, RunReport, RuntimeError, ScriptedFaults,
};
use tileqr_testkit::oracle::verify_qr;
use tileqr_testkit::{policies_under_test, workers_under_test};

/// Sequential ground truth: factored tile matrix plus the task graph.
fn sequential(a: &Matrix<f64>, b: usize) -> (TiledMatrix<f64>, TaskGraph, Matrix<f64>) {
    let tiled = TiledMatrix::from_matrix(a, b).unwrap();
    let g = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let mut seq = FactorState::new(tiled.clone());
    seq.run_all(&g).unwrap();
    let m = seq.tiles().to_matrix();
    (tiled, g, m)
}

fn ft_run(
    tiled: &TiledMatrix<f64>,
    g: &TaskGraph,
    workers: usize,
    policy: tileqr_runtime::SchedulePolicy,
    ft: FaultTolerance,
    injector: &ScriptedFaults,
) -> Result<(FactorState<f64>, RunReport), RuntimeError> {
    parallel_factor_ft(
        FactorState::new(tiled.clone()),
        g,
        PoolConfig {
            workers,
            policy,
            ..PoolConfig::default()
        },
        Some(ft),
        Some(injector),
    )
}

#[test]
fn panic_recovery_is_bit_identical_across_the_sweep() {
    let a = random_matrix::<f64>(32, 32, 0xF1);
    let (tiled, g, seq) = sequential(&a, 8);
    for workers in workers_under_test().into_iter().filter(|&w| w >= 2) {
        for policy in policies_under_test() {
            // One panic mid-graph: kills its worker, task requeues.
            let victim = g.len() / 2;
            let inj = ScriptedFaults::new().panic_on(victim, 1);
            let (state, report) =
                ft_run(&tiled, &g, workers, policy, FaultTolerance::default(), &inj)
                    .expect("recovery must succeed");
            assert_eq!(
                state.tiles().to_matrix(),
                seq,
                "workers={workers} policy={policy:?}: recovered factors must be bit-identical"
            );
            assert_eq!(report.worker_deaths, 1, "workers={workers}");
            assert_eq!(report.requeues, 1);
            assert_eq!(report.retries, 1);
            assert_eq!(report.total_tasks(), g.len() as u64);
        }
    }
}

#[test]
fn multiple_panics_and_transients_recover_together() {
    let a = random_matrix::<f64>(40, 24, 0xF2);
    let (tiled, g, seq) = sequential(&a, 8);
    let last = g.len() - 1;
    for workers in workers_under_test().into_iter().filter(|&w| w >= 2) {
        for policy in policies_under_test() {
            // A panic early, transient failures in the middle and on the
            // final task — the pool must survive losing a worker *and*
            // burning retries elsewhere in the same run.
            let inj = ScriptedFaults::new()
                .panic_on(1, 1)
                .fail_on(g.len() / 3, 2)
                .fail_on(last, 1);
            let ft = FaultTolerance {
                max_attempts: 4,
                ..FaultTolerance::default()
            };
            let (state, report) = ft_run(&tiled, &g, workers, policy, ft, &inj)
                .expect("mixed faults within budget must recover");
            assert_eq!(state.tiles().to_matrix(), seq, "workers={workers}");
            assert_eq!(report.worker_deaths, 1);
            assert_eq!(report.retries, 4, "1 panic + 2 + 1 transients");
        }
    }
}

#[test]
fn recovery_is_bit_identical_for_every_elimination_tree() {
    // Requeued TTQRT/TTMQR attempts must replay as invisibly as the TS
    // kernels do: a panic plus a transient per tree, held to bit
    // identity against that tree's own sequential run.
    let a = random_matrix::<f64>(40, 16, 0xF6);
    let mut trees = EliminationTree::zoo();
    trees.push(EliminationTree::Tsqr(2));
    for tree in trees {
        let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
        let g = TaskGraph::build_tree(tiled.tile_rows(), tiled.tile_cols(), tree);
        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();
        let expect = seq.tiles().to_matrix();
        for policy in policies_under_test() {
            let inj = ScriptedFaults::new()
                .panic_on(g.len() / 2, 1)
                .fail_on(g.len() - 1, 1);
            let ft = FaultTolerance {
                max_attempts: 3,
                ..FaultTolerance::default()
            };
            let (state, report) =
                ft_run(&tiled, &g, 4, policy, ft, &inj).expect("recovery must succeed");
            assert_eq!(
                state.tiles().to_matrix(),
                expect,
                "tree={tree} policy={policy:?}"
            );
            assert_eq!(report.worker_deaths, 1, "tree={tree}");
            assert_eq!(report.retries, 2, "tree={tree}: panic + transient");
        }
    }
}

#[test]
fn stalled_worker_is_retired_by_watchdog_and_run_recovers() {
    let a = random_matrix::<f64>(24, 24, 0xF3);
    let (tiled, g, seq) = sequential(&a, 8);
    let ft = FaultTolerance {
        stall_timeout: Some(Duration::from_millis(50)),
        ..FaultTolerance::default()
    };
    for workers in [2usize, 4] {
        let inj = ScriptedFaults::new().stall_on(2, 1, Duration::from_millis(400));
        let (state, report) = ft_run(
            &tiled,
            &g,
            workers,
            tileqr_runtime::SchedulePolicy::Fifo,
            ft,
            &inj,
        )
        .expect("watchdog recovery must succeed");
        assert_eq!(state.tiles().to_matrix(), seq, "workers={workers}");
        assert!(report.worker_deaths >= 1, "stalled worker retired");
        assert!(report.requeues >= 1);
    }
}

#[test]
fn exhausted_retry_budget_is_a_structured_error_not_a_hang() {
    let a = random_matrix::<f64>(16, 16, 0xF4);
    let (tiled, g, _) = sequential(&a, 8);
    let inj = ScriptedFaults::new().fail_on(0, 99);
    let ft = FaultTolerance {
        max_attempts: 2,
        ..FaultTolerance::default()
    };
    let err = ft_run(
        &tiled,
        &g,
        2,
        tileqr_runtime::SchedulePolicy::Fifo,
        ft,
        &inj,
    )
    .expect_err("budget must run out");
    match err {
        RuntimeError::RetriesExhausted { task, attempts, .. } => {
            assert_eq!(task, 0);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn recovered_factorization_passes_the_numerical_oracle() {
    // End-to-end through the public API: the fault-tolerant option (no
    // injector there — this exercises the preserving-stage + manager-
    // commit machinery on a clean run) must produce factors that pass the
    // condition-scaled oracle, not merely match bits.
    let a = random_matrix::<f64>(48, 48, 0xF5);
    for workers in workers_under_test().into_iter().filter(|&w| w >= 2) {
        let f = TiledQr::factor(
            &a,
            &QrOptions::new()
                .tile_size(8)
                .workers(workers)
                .fault_tolerance(FaultTolerance::default()),
        )
        .unwrap();
        let rep = verify_qr(&a, &f.q().unwrap(), &f.r(), None).unwrap();
        assert!(rep.passes(), "workers={workers}: {rep:?}");
    }
}
