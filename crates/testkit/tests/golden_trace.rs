//! Golden-trace suite: lock down the observability layer's guarantees
//! on the *real* pool, swept across worker counts and schedule policies
//! (`TILEQR_TESTKIT_WORKERS` / `TILEQR_TESTKIT_POLICY`).
//!
//! For a fixed seed and tile geometry, every traced run must produce a
//! trace that is
//!
//! 1. **complete** — exactly one committed compute span per DAG task,
//!    with per-kernel-class span counts matching [`counts::class_totals`],
//! 2. **well-nested** — per task attempt, stage ends before compute
//!    starts and compute ends before commit starts,
//! 3. **sequential per lane** — spans on one worker lane never overlap,
//! 4. **recovery-faithful** — retry/requeue/worker-death events appear
//!    iff faults were injected.

use std::collections::BTreeSet;
use tileqr_dag::{counts, EliminationOrder, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::TiledMatrix;
use tileqr_obs::{kind_index, EventKind, Phase, Trace, TraceConfig};
use tileqr_runtime::{
    parallel_factor_ft, parallel_factor_ordered, DispatchOrder, FaultTolerance, PoolConfig,
    ScriptedFaults,
};
use tileqr_testkit::{policies_under_test, workers_under_test};

const N: usize = 32;
const B: usize = 4;
const SEED: u64 = 424_242;

fn fixture() -> (TiledMatrix<f64>, TaskGraph) {
    let a = tileqr_matrix::gen::random_matrix::<f64>(N, N, SEED);
    let tiled = TiledMatrix::from_matrix(&a, B).unwrap();
    let g = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    (tiled, g)
}

/// The completeness contract: one compute span per DAG task, and the
/// per-class breakdown matches the graph's analytic totals.
fn assert_complete(trace: &Trace, g: &TaskGraph) {
    let tasks: BTreeSet<usize> = trace.phase_spans(Phase::Compute).map(|s| s.task).collect();
    assert_eq!(tasks.len(), g.len(), "every task computed exactly once");
    assert_eq!(
        trace.compute_span_count(),
        g.len(),
        "no duplicate compute spans"
    );
    let (t, e, ut, ue) = counts::class_totals(g);
    let mut per_kind = [0usize; tileqr_obs::NUM_KINDS];
    for s in trace.phase_spans(Phase::Compute) {
        per_kind[kind_index(s.kind)] += 1;
    }
    // kind_index order: geqrt, unmqr, tsqrt, tsmqr, ttqrt, ttmqr.
    assert_eq!(per_kind[0], t, "GEQRT count");
    assert_eq!(per_kind[1], ut, "UNMQR count");
    assert_eq!(per_kind[2] + per_kind[4], e, "TSQRT+TTQRT count");
    assert_eq!(per_kind[3] + per_kind[5], ue, "TSMQR+TTMQR count");
}

#[test]
fn golden_traces_across_workers_and_policies() {
    let (tiled, g) = fixture();
    for &workers in &workers_under_test() {
        for &policy in &policies_under_test() {
            // `parallel_factor_ordered` runs the real manager loop even
            // at one worker, so the single-lane golden trace exercises
            // the same recording paths as the multi-worker runs.
            let (_, report) = parallel_factor_ordered(
                FactorState::new(tiled.clone()),
                &g,
                PoolConfig {
                    workers,
                    policy,
                    trace: TraceConfig::enabled(),
                    ..PoolConfig::default()
                },
                DispatchOrder::Policy(policy),
            )
            .unwrap();
            let trace = report
                .trace
                .as_ref()
                .unwrap_or_else(|| panic!("workers={workers} {policy:?}: trace missing"));

            assert_complete(trace, &g);
            trace
                .validate(true)
                .unwrap_or_else(|e| panic!("workers={workers} {policy:?}: {e}"));
            assert_eq!(
                trace.lanes.len(),
                workers + 1,
                "one lane per worker plus the manager"
            );
            assert_eq!(trace.dropped, 0, "default capacity never overwrites");
            assert_eq!(
                trace.hot_path_reallocations, 0,
                "hot path allocates nothing"
            );

            // Scheduling instants: each task becomes ready exactly once
            // and is dispatched exactly once on a clean run.
            assert_eq!(trace.events_of(EventKind::Ready).count(), g.len());
            assert_eq!(trace.events_of(EventKind::Dispatch).count(), g.len());

            // Fast-path runs stage and commit on the worker: both phases
            // present for every task.
            assert_eq!(trace.phase_spans(Phase::Stage).count(), g.len());
            assert_eq!(trace.phase_spans(Phase::Commit).count(), g.len());

            // Clean runs carry zero recovery events.
            for kind in [EventKind::Retry, EventKind::Requeue, EventKind::WorkerDeath] {
                assert_eq!(
                    trace.events_of(kind).count(),
                    0,
                    "workers={workers} {policy:?}: unexpected {kind:?}"
                );
            }
        }
    }
}

#[test]
fn golden_trace_ft_clean_run_has_no_recovery_events() {
    let (tiled, g) = fixture();
    for &workers in &workers_under_test() {
        if workers < 2 {
            continue; // the recovering pool needs a real pool
        }
        let (_, report) = parallel_factor_ft(
            FactorState::new(tiled.clone()),
            &g,
            PoolConfig {
                workers,
                trace: TraceConfig::enabled(),
                ..PoolConfig::default()
            },
            Some(FaultTolerance::default()),
            None,
        )
        .unwrap();
        let trace = report.trace.as_ref().unwrap();
        assert_complete(trace, &g);
        trace.validate(true).unwrap();
        // Fault-tolerant commits happen on the manager lane.
        let manager = trace.lanes.len() - 1;
        assert!(
            trace.phase_spans(Phase::Commit).all(|s| s.lane == manager),
            "ft commits are fenced on the manager"
        );
        assert_eq!(trace.phase_spans(Phase::Commit).count(), g.len());
        for kind in [EventKind::Retry, EventKind::Requeue, EventKind::WorkerDeath] {
            assert_eq!(trace.events_of(kind).count(), 0);
        }
    }
}

#[test]
fn golden_trace_records_retries_iff_faults_injected() {
    let (tiled, g) = fixture();
    // Two scripted transient failures: attempt 0 of two tasks errors
    // before staging, so the retried attempts are the only compute spans.
    let faults = ScriptedFaults::new().fail_on(1, 1).fail_on(g.len() / 2, 1);
    let (_, report) = parallel_factor_ft(
        FactorState::new(tiled),
        &g,
        PoolConfig {
            workers: 2,
            trace: TraceConfig::enabled(),
            ..PoolConfig::default()
        },
        Some(FaultTolerance::default()),
        Some(&faults),
    )
    .unwrap();
    let trace = report.trace.as_ref().unwrap();
    assert_complete(trace, &g);
    trace.validate(true).unwrap();
    assert_eq!(
        trace.events_of(EventKind::Retry).count(),
        2,
        "one retry instant per injected transient failure"
    );
    assert_eq!(report.retries, 2, "report and trace agree");
    // Transient failures kill no workers.
    assert_eq!(trace.events_of(EventKind::WorkerDeath).count(), 0);
    // The retried tasks carry attempt 1 on their compute span.
    for victim in [1, g.len() / 2] {
        let attempts: Vec<u32> = trace
            .phase_spans(Phase::Compute)
            .filter(|s| s.task == victim)
            .map(|s| s.attempt)
            .collect();
        assert_eq!(attempts, vec![1], "task {victim} computed on attempt 1");
    }
}

#[test]
fn golden_trace_worker_death_leaves_marker() {
    let (tiled, g) = fixture();
    let victim = g.len() / 3;
    let faults = ScriptedFaults::new().panic_on(victim, 1);
    let (_, report) = parallel_factor_ft(
        FactorState::new(tiled),
        &g,
        PoolConfig {
            workers: 3,
            trace: TraceConfig::enabled(),
            ..PoolConfig::default()
        },
        Some(FaultTolerance::default()),
        Some(&faults),
    )
    .unwrap();
    let trace = report.trace.as_ref().unwrap();
    assert_complete(trace, &g);
    trace.validate(true).unwrap();
    assert_eq!(trace.events_of(EventKind::WorkerDeath).count(), 1);
    assert_eq!(trace.events_of(EventKind::Requeue).count(), 1);
    assert_eq!(trace.events_of(EventKind::Retry).count(), 1);
    let requeue = trace.events_of(EventKind::Requeue).next().unwrap();
    assert_eq!(requeue.task, Some(victim));
}

#[test]
fn traced_and_untraced_runs_factor_identically() {
    let (tiled, g) = fixture();
    let plain = parallel_factor_ordered(
        FactorState::new(tiled.clone()),
        &g,
        PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        },
        DispatchOrder::Policy(Default::default()),
    )
    .unwrap()
    .0;
    let traced = parallel_factor_ordered(
        FactorState::new(tiled),
        &g,
        PoolConfig {
            workers: 2,
            trace: TraceConfig::enabled(),
            ..PoolConfig::default()
        },
        DispatchOrder::Policy(Default::default()),
    )
    .unwrap()
    .0;
    assert_eq!(
        plain.tiles().to_matrix(),
        traced.tiles().to_matrix(),
        "observing the run must not change it"
    );
}
