//! Bit-identity of the zero-allocation hot path.
//!
//! The workspace arena changed *where* kernel scratch lives, and packing
//! changed *how* reflector blocks are traversed — neither may change a
//! single bit of the output. Every test here runs the factorization with
//! reused per-worker arenas ([`WorkspacePolicy::PerWorker`]) and with
//! per-call scratch ([`WorkspacePolicy::PerCall`], the seed's allocation
//! behaviour) across the CI worker/policy sweep, then holds the full
//! factored tile matrix **and every stored `T` factor** (panel factors
//! via [`FactorState::geqrt_panel_factor`], elimination factors via
//! [`FactorState::elim_factor_any`]) to byte identity with the sequential
//! ground truth — with and without injected faults.

use tileqr_dag::{EliminationOrder, EliminationTree, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_kernels::WorkspacePolicy;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::{Matrix, TiledMatrix};
use tileqr_runtime::{
    parallel_factor_ft, parallel_factor_traced, FaultTolerance, PoolConfig, ScriptedFaults,
};
use tileqr_testkit::{policies_under_test, workers_under_test};

/// Sequential ground truth (which itself runs on a reused arena).
fn sequential(a: &Matrix<f64>, b: usize) -> (TiledMatrix<f64>, TaskGraph, FactorState<f64>) {
    let tiled = TiledMatrix::from_matrix(a, b).unwrap();
    let g = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let mut seq = FactorState::new(tiled.clone());
    seq.run_all(&g).unwrap();
    (tiled, g, seq)
}

/// Assert that two factor states carry byte-identical tiles, panel
/// factors, and elimination factors.
fn assert_factors_identical(got: &FactorState<f64>, want: &FactorState<f64>, ctx: &str) {
    assert_eq!(
        got.tiles().to_matrix(),
        want.tiles().to_matrix(),
        "{ctx}: factored tiles must be bit-identical"
    );
    let (mt, nt) = (want.tiles().tile_rows(), want.tiles().tile_cols());
    for i in 0..mt {
        for k in 0..nt {
            assert_eq!(
                got.geqrt_panel_factor(i, k),
                want.geqrt_panel_factor(i, k),
                "{ctx}: panel T factor ({i},{k}) must be bit-identical"
            );
            assert_eq!(
                got.elim_factor_any(i, k),
                want.elim_factor_any(i, k),
                "{ctx}: elimination T factor ({i},{k}) must be bit-identical"
            );
        }
    }
}

#[test]
fn arena_runs_match_the_sequential_path_bitwise() {
    // Rectangular on purpose: exercises TSQRT/TSMQR rows below the
    // diagonal as well as the panel chain.
    let a = random_matrix::<f64>(40, 32, 0xA1);
    let (tiled, g, seq) = sequential(&a, 8);
    for workers in workers_under_test() {
        for policy in policies_under_test() {
            for workspace in [WorkspacePolicy::PerWorker, WorkspacePolicy::PerCall] {
                let (state, report) = parallel_factor_traced(
                    FactorState::new(tiled.clone()),
                    &g,
                    PoolConfig {
                        workers,
                        policy,
                        workspace,
                        ..PoolConfig::default()
                    },
                )
                .expect("factorization");
                let ctx = format!("workers={workers} policy={policy:?} workspace={workspace:?}");
                assert_factors_identical(&state, &seq, &ctx);
                assert_eq!(
                    report.counters.workspace_resizes, 0,
                    "{ctx}: pre-sized arenas must never regrow"
                );
            }
        }
    }
}

#[test]
fn arena_runs_with_fault_injection_stay_bit_identical() {
    let a = random_matrix::<f64>(32, 32, 0xA2);
    let (tiled, g, seq) = sequential(&a, 8);
    for workers in workers_under_test().into_iter().filter(|&w| w >= 2) {
        for policy in policies_under_test() {
            for workspace in [WorkspacePolicy::PerWorker, WorkspacePolicy::PerCall] {
                // A worker death plus transient kernel failures: requeued
                // attempts re-run on a *different* worker's arena, which
                // must be invisible in the factors.
                let inj = ScriptedFaults::new()
                    .panic_on(g.len() / 2, 1)
                    .fail_on(g.len() / 4, 1)
                    .fail_on(g.len() - 1, 1);
                let (state, report) = parallel_factor_ft(
                    FactorState::new(tiled.clone()),
                    &g,
                    PoolConfig {
                        workers,
                        policy,
                        workspace,
                        ..PoolConfig::default()
                    },
                    Some(FaultTolerance {
                        max_attempts: 4,
                        ..FaultTolerance::default()
                    }),
                    Some(&inj),
                )
                .expect("recovery must succeed");
                let ctx = format!("workers={workers} policy={policy:?} workspace={workspace:?}");
                assert_factors_identical(&state, &seq, &ctx);
                assert!(report.retries >= 2, "{ctx}: the injected faults must fire");
                assert_eq!(
                    report.counters.cow_clones, 0,
                    "{ctx}: ft staging clones are deliberate copies, never counted COW falls"
                );
                assert_eq!(report.counters.workspace_resizes, 0, "{ctx}");
            }
        }
    }
}

#[test]
fn arena_runs_stay_bit_identical_for_every_elimination_tree() {
    // The TT and TSQR trees route through TTQRT/TTMQR kernels whose
    // scratch shapes differ from the TS chain — the arena must serve
    // them all without changing a bit.
    let a = random_matrix::<f64>(40, 16, 0xA5);
    let mut trees = EliminationTree::zoo();
    trees.push(EliminationTree::Tsqr(2));
    for tree in trees {
        let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
        let g = TaskGraph::build_tree(tiled.tile_rows(), tiled.tile_cols(), tree);
        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();
        for workers in workers_under_test() {
            for workspace in [WorkspacePolicy::PerWorker, WorkspacePolicy::PerCall] {
                let (state, report) = parallel_factor_traced(
                    FactorState::new(tiled.clone()),
                    &g,
                    PoolConfig {
                        workers,
                        workspace,
                        ..PoolConfig::default()
                    },
                )
                .expect("factorization");
                let ctx = format!("tree={tree} workers={workers} workspace={workspace:?}");
                assert_factors_identical(&state, &seq, &ctx);
                assert_eq!(report.counters.workspace_resizes, 0, "{ctx}");
            }
        }
    }
}

#[test]
fn inner_blocked_arena_runs_match_sequential_bitwise() {
    let a = random_matrix::<f64>(32, 32, 0xA3);
    let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
    let g = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let mut seq = FactorState::with_inner_block(tiled.clone(), 4);
    seq.run_all(&g).unwrap();
    for workers in workers_under_test() {
        for policy in policies_under_test() {
            for workspace in [WorkspacePolicy::PerWorker, WorkspacePolicy::PerCall] {
                let (state, _) = parallel_factor_traced(
                    FactorState::with_inner_block(tiled.clone(), 4),
                    &g,
                    PoolConfig {
                        workers,
                        policy,
                        workspace,
                        ..PoolConfig::default()
                    },
                )
                .expect("factorization");
                let ctx =
                    format!("ib=4 workers={workers} policy={policy:?} workspace={workspace:?}");
                assert_factors_identical(&state, &seq, &ctx);
            }
        }
    }
}

#[test]
fn counters_are_clean_on_uniquely_owned_input() {
    // Unlike the sweeps above (which share `tiled` and therefore pay one
    // counted COW copy per tile), a moved-in, uniquely-owned input must
    // run the entire factorization without a single fallback clone.
    let a = random_matrix::<f64>(48, 48, 0xA4);
    for workers in workers_under_test() {
        let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
        let g = TaskGraph::build(
            tiled.tile_rows(),
            tiled.tile_cols(),
            EliminationOrder::FlatTs,
        );
        let (_, report) = parallel_factor_traced(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers,
                ..PoolConfig::default()
            },
        )
        .expect("factorization");
        assert_eq!(report.cow_clones(), 0, "workers={workers}");
        assert!(
            report.counters.is_clean(),
            "workers={workers}: {:?}",
            report.counters
        );
        assert!(
            report.counters.workspace_bytes > 0 || workers == 0,
            "workers={workers}: sized arenas must report their footprint"
        );
    }
}
