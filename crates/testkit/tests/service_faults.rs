//! Fault injection on the service path. [`ScriptedFaults`] scripts
//! panics, transient kernel failures, and stalls at exact `(task,
//! attempt)` coordinates *per job*: a worker panic mid-job must charge
//! only the victim job's retry budget, every other in-flight job must
//! complete bit-identically with clean counters, and the victim's
//! [`RunReport`] must attribute the recovery (`worker_deaths`,
//! `retries`, `requeues`) to the right job. The service always stages
//! non-destructively behind a commit fence, so recovery works at any
//! worker count — including a single worker that dies and is respawned.

use std::sync::Arc;
use std::time::Duration;
use tileqr::runtime::{
    FaultTolerance, JobSpec, QrService, RuntimeError, ScriptedFaults, ServiceConfig, ServiceError,
};
use tileqr_dag::{EliminationOrder, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::{Matrix, TiledMatrix};
use tileqr_testkit::workers_under_test;

/// Sequential ground truth for one job.
fn sequential(a: &Matrix<f64>, b: usize) -> Matrix<f64> {
    let tiled = TiledMatrix::from_matrix(a, b).unwrap();
    let g = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let mut seq = FactorState::new(tiled);
    seq.run_all(&g).unwrap();
    seq.tiles().to_matrix()
}

/// A worker panic mid-job kills only that job's attempt: the victim
/// retries to a bit-identical result with `worker_deaths == 1`, while
/// concurrent clean jobs finish with zeroed recovery counters.
#[test]
fn panic_charges_only_the_victim_job() {
    for workers in workers_under_test() {
        let svc = QrService::<f64>::start(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });

        let a_victim = random_matrix::<f64>(24, 24, 11);
        let a_clean = random_matrix::<f64>(24, 24, 12);
        let a_transient = random_matrix::<f64>(24, 24, 13);
        let want_victim = sequential(&a_victim, 8);
        let want_clean = sequential(&a_clean, 8);
        let want_transient = sequential(&a_transient, 8);

        let h_victim = svc
            .submit(
                JobSpec::factor(a_victim)
                    .tile_size(8)
                    .faults(Arc::new(ScriptedFaults::new().panic_on(1, 1))),
            )
            .unwrap();
        let h_clean = svc.submit(JobSpec::factor(a_clean).tile_size(8)).unwrap();
        let h_transient = svc
            .submit(
                JobSpec::factor(a_transient)
                    .tile_size(8)
                    .faults(Arc::new(ScriptedFaults::new().fail_on(2, 1))),
            )
            .unwrap();

        let victim = h_victim.wait().unwrap();
        assert_eq!(
            victim.output.factor().state.tiles().to_matrix(),
            want_victim,
            "recovery must be numerically invisible (workers={workers})"
        );
        assert_eq!(victim.report.worker_deaths, 1, "panic attributed to victim");
        assert!(victim.report.retries >= 1, "panicked attempt must retry");
        assert!(victim.report.requeues >= 1);

        let clean = h_clean.wait().unwrap();
        assert_eq!(clean.output.factor().state.tiles().to_matrix(), want_clean);
        assert_eq!(
            clean.report.worker_deaths, 0,
            "clean job blamed for a death"
        );
        assert_eq!(clean.report.retries, 0, "clean job charged a retry");
        assert_eq!(clean.report.requeues, 0);

        let transient = h_transient.wait().unwrap();
        assert_eq!(
            transient.output.factor().state.tiles().to_matrix(),
            want_transient
        );
        assert_eq!(
            transient.report.worker_deaths, 0,
            "kernel error is not a death"
        );
        assert_eq!(
            transient.report.retries, 1,
            "one scripted transient, one retry"
        );

        svc.shutdown();
    }
}

/// Retry-budget exhaustion fails exactly the faulted job — as a
/// structured [`RuntimeError::RetriesExhausted`] — while a concurrent
/// clean job on the same pool completes bit-identically.
#[test]
fn budget_exhaustion_is_isolated_per_job() {
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        fault_tolerance: FaultTolerance {
            max_attempts: 2,
            ..FaultTolerance::default()
        },
        ..ServiceConfig::default()
    });

    let a_doomed = random_matrix::<f64>(24, 24, 21);
    let a_clean = random_matrix::<f64>(40, 24, 22);
    let want_clean = sequential(&a_clean, 8);

    let h_doomed = svc
        .submit(
            JobSpec::factor(a_doomed)
                .tile_size(8)
                .faults(Arc::new(ScriptedFaults::new().fail_on(0, 99))),
        )
        .unwrap();
    let h_clean = svc.submit(JobSpec::factor(a_clean).tile_size(8)).unwrap();

    match h_doomed.wait() {
        Err(ServiceError::Runtime(RuntimeError::RetriesExhausted { task, attempts, .. })) => {
            assert_eq!(task, 0);
            assert_eq!(attempts, 2, "budget was max_attempts = 2");
        }
        Err(other) => panic!("expected RetriesExhausted, got {other}"),
        Ok(_) => panic!("doomed job must not succeed"),
    }
    let clean = h_clean.wait().unwrap();
    assert_eq!(clean.output.factor().state.tiles().to_matrix(), want_clean);
    assert_eq!(clean.report.retries, 0);

    let stats = svc.shutdown();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 1);
}

/// Repeated panics across several jobs at once: the pool respawns
/// every dead worker, all victims recover bit-identically, and each
/// report blames exactly its own scripted death.
#[test]
fn concurrent_panics_all_recover_with_correct_attribution() {
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for i in 0..4u64 {
        let a = random_matrix::<f64>(32, 24, 30 + i);
        expected.push(sequential(&a, 8));
        handles.push(
            svc.submit(
                JobSpec::factor(a)
                    .tile_size(8)
                    // Each job panics a different task's first attempt.
                    .faults(Arc::new(ScriptedFaults::new().panic_on(i as usize, 1))),
            )
            .unwrap(),
        );
    }
    for (h, want) in handles.into_iter().zip(expected) {
        let res = h.wait().unwrap();
        assert_eq!(res.output.factor().state.tiles().to_matrix(), want);
        assert_eq!(res.report.worker_deaths, 1, "exactly the scripted death");
    }
    svc.shutdown();
}

/// Without `stall_timeout` configured there is no watchdog: a scripted
/// stall delays its job but is not an error — the stalled job and its
/// neighbours all complete with no deaths and no retries. (With the
/// watchdog armed the same stall is retired and requeued; see
/// `watchdog_retires_stalled_worker_and_requeues`.)
#[test]
fn stalls_delay_but_do_not_fail() {
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let a_slow = random_matrix::<f64>(24, 24, 41);
    let a_fast = random_matrix::<f64>(24, 24, 42);
    let want_slow = sequential(&a_slow, 8);
    let want_fast = sequential(&a_fast, 8);

    let h_slow = svc
        .submit(JobSpec::factor(a_slow).tile_size(8).faults(Arc::new(
            ScriptedFaults::new().stall_on(0, 1, Duration::from_millis(30)),
        )))
        .unwrap();
    let h_fast = svc.submit(JobSpec::factor(a_fast).tile_size(8)).unwrap();

    let slow = h_slow.wait().unwrap();
    assert_eq!(slow.output.factor().state.tiles().to_matrix(), want_slow);
    assert_eq!(slow.report.worker_deaths, 0);
    assert_eq!(slow.report.retries, 0, "a stall is not a retry");

    let fast = h_fast.wait().unwrap();
    assert_eq!(fast.output.factor().state.tiles().to_matrix(), want_fast);
    svc.shutdown();
}

/// The documented v1 gap is closed: with `stall_timeout` armed, a
/// scripted stall is *retired* — the worker is respawned, the task
/// requeued exactly once through the retry path — and the victim still
/// completes bit-identically while a clean neighbour is untouched.
/// Zero jobs lost.
#[test]
fn watchdog_retires_stalled_worker_and_requeues() {
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        fault_tolerance: FaultTolerance {
            stall_timeout: Some(Duration::from_millis(30)),
            ..FaultTolerance::default()
        },
        ..ServiceConfig::default()
    });
    let a_stuck = random_matrix::<f64>(24, 24, 51);
    let a_clean = random_matrix::<f64>(24, 24, 52);
    let want_stuck = sequential(&a_stuck, 8);
    let want_clean = sequential(&a_clean, 8);

    // The stall sleeps 10x the watchdog bound, so retirement is
    // guaranteed to fire long before the stalled thread wakes.
    let h_stuck = svc
        .submit(JobSpec::factor(a_stuck).tile_size(8).faults(Arc::new(
            ScriptedFaults::new().stall_on(0, 1, Duration::from_millis(300)),
        )))
        .unwrap();
    let h_clean = svc.submit(JobSpec::factor(a_clean).tile_size(8)).unwrap();

    let stuck = h_stuck.wait().unwrap();
    assert_eq!(stuck.output.factor().state.tiles().to_matrix(), want_stuck);
    assert!(
        stuck.report.worker_deaths >= 1,
        "retirement must be attributed to the victim job"
    );
    assert!(
        stuck.report.requeues >= 1,
        "the stalled task must have been requeued"
    );

    let clean = h_clean.wait().unwrap();
    assert_eq!(clean.output.factor().state.tiles().to_matrix(), want_clean);
    assert_eq!(clean.report.worker_deaths, 0, "neighbour untouched");
    assert_eq!(clean.report.retries, 0);

    let stats = svc.shutdown();
    assert!(
        stats.lifecycle.watchdog_retirements >= 1,
        "watchdog retirement must be counted service-wide"
    );
    assert_eq!(stats.jobs_completed, 2, "zero jobs lost");
    assert_eq!(stats.jobs_failed, 0);
}

/// Cancel-vs-complete race, swept at every task index: a job briefly
/// stalled at task `k` is cancelled mid-run. Whichever side wins, the
/// handle must resolve — either `Cancelled` or a bit-identical success —
/// and the books must balance (every job counted exactly once).
#[test]
fn cancel_vs_complete_race_at_every_task_index() {
    let a = random_matrix::<f64>(24, 24, 61);
    let want = sequential(&a, 8);
    let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
    let tasks = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    )
    .len();

    let mut cancelled = 0u64;
    let mut completed = 0u64;
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for k in 0..tasks {
        // A short stall at task k parks the job mid-DAG so the cancel
        // lands at a different execution depth on every iteration.
        let h = svc
            .submit(JobSpec::factor(a.clone()).tile_size(8).faults(Arc::new(
                ScriptedFaults::new().stall_on(k, 1, Duration::from_millis(5)),
            )))
            .unwrap();
        std::thread::sleep(Duration::from_millis(1));
        h.cancel();
        match h.wait() {
            Ok(res) => {
                assert_eq!(
                    res.output.factor().state.tiles().to_matrix(),
                    want,
                    "completion won the race at task {k} but diverged"
                );
                completed += 1;
            }
            Err(ServiceError::Cancelled) => cancelled += 1,
            Err(other) => panic!("race at task {k} resolved as unexpected error: {other}"),
        }
    }
    let stats = svc.shutdown();
    assert_eq!(stats.jobs_completed, completed);
    assert_eq!(stats.lifecycle.jobs_cancelled, cancelled);
    assert_eq!(
        completed + cancelled,
        tasks as u64,
        "every raced job resolved exactly once"
    );
}

/// Completion-wins determinism: cancelling *after* the result has been
/// received is a pure no-op — nothing is counted and nothing breaks.
#[test]
fn cancel_after_completion_is_noop() {
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let a = random_matrix::<f64>(24, 24, 62);
    let want = sequential(&a, 8);
    let h = svc.submit(JobSpec::factor(a).tile_size(8)).unwrap();
    // Redeem through the non-consuming path so the handle survives to
    // issue the late cancel.
    let res = match h.wait_timeout(Duration::from_secs(30)) {
        Ok(r) => r.unwrap(),
        Err(_) => panic!("job hung"),
    };
    assert_eq!(res.output.factor().state.tiles().to_matrix(), want);
    h.cancel();
    let stats = svc.shutdown();
    assert_eq!(stats.lifecycle.jobs_cancelled, 0);
    assert_eq!(stats.jobs_completed, 1);
}
