//! Tree-generic bit-identity and numerical-oracle sweep.
//!
//! The runtime's bit-identity guarantee — every legal interleaving
//! commits the same factorization — must hold for *every* member of the
//! elimination-tree zoo, not just the paper's flat TS chain: the TT
//! trees introduce `TTQRT`/`TTMQR` tasks with different read/write
//! shapes, and the TSQR fast path emits a domain-major program order.
//! These tests drive 100+ distinct fingerprinted interleavings per
//! tree × schedule policy through the virtual explorer, then hold each
//! tree's factors to the condition-scaled numerical oracles over the
//! adversarial generator family.

use std::collections::HashSet;

use tileqr::{QrOptions, TiledQr, TreePolicy};
use tileqr_dag::EliminationTree;
use tileqr_matrix::gen::{graded, hilbert_like, near_rank_deficient, random_matrix};
use tileqr_matrix::Matrix;
use tileqr_runtime::SchedulePolicy;
use tileqr_testkit::explorer::{assert_bit_identical, explore_tree_vs_sequential, ExploreStrategy};
use tileqr_testkit::oracle::verify_qr;
use tileqr_testkit::workers_under_test;

/// The full sweep: geometry-generic zoo plus the TSQR fast path (the
/// test matrix is 6 x 2 tiles, so `Tsqr` takes the dedicated builder).
fn trees_under_test() -> Vec<EliminationTree> {
    let mut trees = EliminationTree::zoo();
    trees.push(EliminationTree::Tsqr(EliminationTree::tsqr_domain(6)));
    trees
}

#[test]
fn hundred_plus_distinct_interleavings_per_tree_and_policy() {
    // 48 x 16 at b = 8: a 6 x 2 tall-skinny tile grid — the geometry the
    // TSQR fast path exists for, with enough trailing work that every
    // tree's schedule space is large.
    let a = random_matrix::<f64>(48, 16, 0x7EE);
    for tree in trees_under_test() {
        for policy in [SchedulePolicy::Fifo, SchedulePolicy::CriticalPath] {
            let mut fingerprints = HashSet::new();
            let mut seed = 0u64;
            while fingerprints.len() < 100 {
                assert!(
                    seed < 800,
                    "{tree} {policy:?}: schedule space collapsed \
                     ({} distinct after {seed} seeds)",
                    fingerprints.len()
                );
                let (exp, reference) = explore_tree_vs_sequential(
                    &a,
                    8,
                    tree,
                    4,
                    ExploreStrategy::Seeded { seed, policy },
                )
                .unwrap();
                fingerprints.insert(exp.fingerprint());
                assert_bit_identical(&exp.state, &reference);
                seed += 1;
            }
        }
    }
}

#[test]
fn adversarial_strategies_are_bit_identical_for_every_tree() {
    let a = random_matrix::<f64>(48, 16, 0x7EF);
    for tree in trees_under_test() {
        for workers in workers_under_test() {
            for strategy in [
                ExploreStrategy::ReversePriority,
                ExploreStrategy::AntiAffinity,
                ExploreStrategy::LifoStarvation,
            ] {
                let (exp, reference) =
                    explore_tree_vs_sequential(&a, 8, tree, workers, strategy).unwrap();
                assert_bit_identical(&exp.state, &reference);
            }
        }
    }
}

/// Adversarial generators with externally-known condition estimates
/// (the matrices are rectangular, so R-based estimation is unavailable).
fn adversarial_family() -> Vec<(&'static str, Matrix<f64>, f64)> {
    vec![
        ("graded", graded(48, 16, 1e-2, 0x31), 1e8),
        (
            "near-rank-deficient",
            near_rank_deficient(48, 16, 8, 1e-10, 0x32),
            1e12,
        ),
        ("hilbert-like", hilbert_like(48, 16, 1.0, 0x33), 1e16),
    ]
}

#[test]
fn every_tree_passes_condition_scaled_oracles() {
    for tree in trees_under_test() {
        for (name, a, kappa) in adversarial_family() {
            let f = TiledQr::factor(
                &a,
                &QrOptions::new()
                    .tile_size(8)
                    .tree(TreePolicy::Fixed(tree))
                    .workers(2),
            )
            .unwrap();
            let rep = verify_qr(&a, &f.q().unwrap(), &f.r(), Some(kappa)).unwrap();
            assert!(rep.passes(), "{tree} on {name}: {rep:?}");
        }
    }
}

#[test]
fn every_tree_is_parallel_deterministic_through_the_public_api() {
    // Same tree, different worker counts: the R factor is bitwise stable.
    let a = random_matrix::<f64>(48, 16, 0x34);
    for tree in trees_under_test() {
        let opts = QrOptions::new().tile_size(8).tree(TreePolicy::Fixed(tree));
        let seq = TiledQr::factor(&a, &opts).unwrap().r();
        for workers in workers_under_test() {
            let par = TiledQr::factor(&a, &opts.workers(workers)).unwrap().r();
            assert_eq!(par, seq, "{tree} diverged at {workers} workers");
        }
    }
}

#[test]
fn trees_agree_with_each_other_numerically() {
    // Different trees compute *different* Householder products, so their
    // R factors agree only up to column signs — |R| must match within a
    // forward-error bound, which catches any tree building a wrong DAG.
    let a = random_matrix::<f64>(48, 16, 0x35);
    let reference = TiledQr::factor(&a, &QrOptions::new().tile_size(8))
        .unwrap()
        .r();
    let scale = tileqr_matrix::ops::frobenius_norm(&a);
    for tree in trees_under_test() {
        let r = TiledQr::factor(
            &a,
            &QrOptions::new().tile_size(8).tree(TreePolicy::Fixed(tree)),
        )
        .unwrap()
        .r();
        for i in 0..16 {
            for j in 0..16 {
                let dev = (r[(i, j)].abs() - reference[(i, j)].abs()).abs() / scale;
                assert!(dev < 1e-13, "{tree}: |R[{i}][{j}]| deviates by {dev:e}");
            }
        }
    }
}
