//! Edge-case geometry through the full parallel runtime.
//!
//! Non-square, single-tile and tall-skinny (p×1 tile grid) matrices
//! exercise the degenerate corners of the DAG (no TS/TT updates, no
//! eliminations, single panel) across worker counts and both schedule
//! policies — each run held to bit-identity with the sequential path and
//! to the numerical oracle.

use tileqr::{QrOptions, TiledQr};
use tileqr_dag::EliminationOrder;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::Matrix;
use tileqr_testkit::oracle::verify_qr;
use tileqr_testkit::{policies_under_test, workers_under_test};

/// (label, rows, cols, tile size) — every degenerate grid shape:
/// single tile (1×1 grid), tall-skinny (p×1 grid), single tile row
/// (1×q grid is impossible for QR since rows ≥ cols, so 2×2 smallest
/// square), padded odd sizes, and strongly rectangular grids.
fn edge_geometries() -> Vec<(&'static str, usize, usize, usize)> {
    vec![
        ("single-tile-exact", 8, 8, 8),
        ("single-tile-padded", 5, 3, 8),
        ("tall-skinny-4x1", 32, 8, 8),
        ("tall-skinny-padded", 29, 6, 8),
        ("tall-skinny-deep", 64, 8, 8),
        ("non-square-2x1-ratio", 48, 24, 8),
        ("non-square-odd", 37, 19, 8),
        ("square-padded", 27, 27, 8),
        ("tile-bigger-than-matrix", 6, 4, 16),
    ]
}

#[test]
fn edge_geometries_are_bit_identical_across_workers_and_policies() {
    for (name, m, n, b) in edge_geometries() {
        let a = random_matrix::<f64>(m, n, m as u64 * 31 + n as u64);
        let seq = TiledQr::factor(&a, &QrOptions::new().tile_size(b)).unwrap();
        let seq_r = seq.r();
        for workers in workers_under_test().into_iter().chain([8]) {
            for policy in policies_under_test() {
                let opts = QrOptions::new()
                    .tile_size(b)
                    .workers(workers)
                    .schedule(policy);
                let f = TiledQr::factor(&a, &opts).unwrap();
                assert_eq!(
                    f.r(),
                    seq_r,
                    "{name}: diverged at {workers} workers, {policy:?}"
                );
            }
        }
    }
}

#[test]
fn edge_geometries_pass_the_oracle() {
    for (name, m, n, b) in edge_geometries() {
        let a = random_matrix::<f64>(m, n, 7 * m as u64 + n as u64);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(b).workers(4)).unwrap();
        let q = f.q().unwrap();
        let r = f.r();
        assert_eq!(q.dims(), (m, m), "{name}");
        assert_eq!(r.dims(), (m, n), "{name}");
        let rep = verify_qr(&a, &q, &r, None).unwrap();
        assert!(rep.passes(), "{name}: {rep:?}");
    }
}

#[test]
fn edge_geometries_survive_all_elimination_orders() {
    for (name, m, n, b) in edge_geometries() {
        let a = random_matrix::<f64>(m, n, 13 * m as u64 + n as u64);
        for order in [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ] {
            let opts = QrOptions::new().tile_size(b).order(order);
            let seq_r = TiledQr::factor(&a, &opts).unwrap().r();
            let par = TiledQr::factor(&a, &opts.workers(4)).unwrap();
            assert_eq!(par.r(), seq_r, "{name} {order:?}");
        }
    }
}

#[test]
fn tall_skinny_solves_least_squares() {
    // The p×1 tile-grid case end to end: factor, apply Qᵀ, solve.
    let a = random_matrix::<f64>(64, 8, 3);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8).workers(4)).unwrap();
    let b: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
    let x = f.solve(&b).unwrap();
    // Normal equations residual: Aᵀ(Ax − b) ≈ 0.
    let ax = tileqr_matrix::ops::matvec(&a, &x).unwrap();
    let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
    for v in tileqr_matrix::ops::matvec(&a.transpose(), &resid).unwrap() {
        assert!(v.abs() < 1e-10, "{v}");
    }
}

#[test]
fn single_tile_is_a_plain_householder_panel() {
    // One GEQRT and nothing else — the runtime's degenerate fast path.
    let a = random_matrix::<f64>(8, 8, 5);
    for workers in [1usize, 2, 8] {
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8).workers(workers)).unwrap();
        assert_eq!(f.graph().len(), 1);
        let rep = verify_qr(&a, &f.q().unwrap(), &f.r(), None).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }
}

#[test]
fn oversubscribed_workers_handle_tiny_graphs() {
    // More workers than tasks: threads must park and exit cleanly.
    let a = random_matrix::<f64>(16, 8, 6);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8).workers(16)).unwrap();
    let seq = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    assert_eq!(f.r(), seq.r());
    let id = Matrix::<f64>::identity(16);
    assert_eq!(f.apply_q(&id).unwrap().dims(), (16, 16));
}
