//! The calibration loop's scheduling half: measured-cost priorities and
//! online drift re-weighting may change *when* tasks run, never *what*
//! they compute.
//!
//! Three layers of evidence:
//!
//! 1. **Bit identity** — factors under [`CostModel::Calibrated`]
//!    priorities, and under mid-run drift re-weighting, are byte-equal
//!    to the sequential run across the workers × policies × trees
//!    sweep.
//! 2. **Drift triggering** — the [`DriftDetector`] fed durations shaped
//!    by simulator [`FaultPlan`] slowdown windows fires on sustained
//!    drift, stays quiet on clean runs, and damps isolated spikes.
//! 3. **Simulator goldens** — on synthetic multi-core profiles the
//!    deterministic list scheduler shows critical-path-by-measured-µs
//!    makespans no worse than FIFO and no worse than
//!    critical-path-by-flops on the reference grids.

use tileqr::dag::{
    bottom_levels, list_makespan, ClassCosts, CostCurve, CostModel, EliminationOrder,
    EliminationTree, ListOrder, TaskGraph, TaskKind, TreePolicy,
};
use tileqr::runtime::DriftConfig;
use tileqr::{QrOptions, TiledQr};
use tileqr_kernels::flops;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::Matrix;
use tileqr_obs::DriftDetector;
use tileqr_sim::FaultPlan;
use tileqr_testkit::{policies_under_test, workers_under_test};

/// A measured-cost profile where update kernels are far cheaper per
/// flop than panel kernels — the regime where flop weights and
/// measured weights rank the DAG differently.
fn measured_costs() -> ClassCosts {
    let c = |c0: f64, c2: f64| CostCurve { c0, c1: 0.0, c2 };
    ClassCosts {
        triangulation: c(4.0, 0.012),
        elimination: c(4.0, 0.012),
        update: c(2.0, 0.001),
    }
}

fn sequential(a: &Matrix<f64>, b: usize, tree: EliminationTree) -> Matrix<f64> {
    TiledQr::factor(
        &a.clone(),
        &QrOptions::new().tile_size(b).tree(TreePolicy::Fixed(tree)),
    )
    .unwrap()
    .state()
    .tiles()
    .to_matrix()
}

/// Calibrated weights across workers × policies × trees: bit identity.
#[test]
fn calibrated_weights_bit_identical_across_sweep() {
    let a = random_matrix::<f64>(40, 40, 91);
    let b = 8;
    let trees = [
        EliminationTree::Flat,
        EliminationTree::Binary,
        EliminationTree::Greedy,
    ];
    let model = CostModel::Calibrated(measured_costs());
    for tree in trees {
        let want = sequential(&a, b, tree);
        for workers in workers_under_test() {
            for policy in policies_under_test() {
                let got = TiledQr::factor(
                    &a,
                    &QrOptions::new()
                        .tile_size(b)
                        .tree(TreePolicy::Fixed(tree))
                        .workers(workers)
                        .schedule(policy)
                        .cost_model(model),
                )
                .unwrap();
                assert_eq!(
                    got.state().tiles().to_matrix(),
                    want,
                    "calibrated priorities changed bits (workers={workers}, policy={policy:?}, tree={tree:?})"
                );
            }
        }
    }
}

/// Mid-run drift re-weighting: a wildly mis-scaled model forces the
/// detector to fire and the ready queue to re-rank, and the factors
/// still match the sequential run byte for byte.
#[test]
fn drift_reweighting_preserves_bits() {
    let a = random_matrix::<f64>(64, 64, 17);
    let b = 8;
    let want = sequential(&a, b, EliminationTree::Flat);
    // Expected microseconds 1000x above reality: every committed kernel
    // lands far below the model, so the detector fires in the recovery
    // direction as soon as a class clears the sample floor.
    let mis_scaled = CostModel::Calibrated(measured_costs().scaled([1000.0, 1000.0, 1000.0]));
    let mut fired_anywhere = false;
    for workers in workers_under_test() {
        for policy in policies_under_test() {
            let (got, report) = TiledQr::factor_traced(
                &a,
                &QrOptions::new()
                    .tile_size(b)
                    .workers(workers)
                    .schedule(policy)
                    .cost_model(mis_scaled)
                    .drift(DriftConfig::on()),
            )
            .unwrap();
            assert_eq!(
                got.state().tiles().to_matrix(),
                want,
                "drift re-weighting changed bits (workers={workers}, policy={policy:?})"
            );
            if workers != 1 {
                fired_anywhere |= report.drift_reweights > 0;
            } else {
                assert_eq!(
                    report.drift_reweights, 0,
                    "the inline single-worker path has no drift machinery"
                );
            }
        }
    }
    if workers_under_test().iter().any(|&w| w != 1) {
        assert!(
            fired_anywhere,
            "a 1000x mis-scaled model must trigger at least one re-weight on a real pool"
        );
    }
}

// ---- Drift-trigger unit layer: FaultPlan-shaped durations. ----

/// Feed the detector `count` samples per class whose durations are the
/// expected per-class mean stretched by the fault plan's slowdown at
/// evenly spaced instants across `[0, horizon_us)`.
fn feed_faulted(
    detector: &mut DriftDetector,
    expected_us: [f64; 3],
    faults: &FaultPlan,
    count: usize,
    horizon_us: f64,
) {
    for i in 0..count {
        let now = horizon_us * i as f64 / count as f64;
        let slow = faults.effective_slowdown(0, now);
        for (class, &us) in expected_us.iter().enumerate() {
            detector.record(class, us * slow);
        }
    }
}

fn expected_us(b: usize) -> [f64; 3] {
    measured_costs().expected_us(b)
}

/// A clean run (no faults) never fires.
#[test]
fn detector_quiet_on_clean_run() {
    let exp = expected_us(8);
    let mut det = DriftDetector::new(DriftConfig::on(), exp);
    feed_faulted(&mut det, exp, &FaultPlan::none(), 64, 10_000.0);
    assert_eq!(det.check(), None, "clean run must not fire");
    assert_eq!(det.fires(), 0);
}

/// A sustained 4x device slowdown fires once the sample floor clears.
#[test]
fn detector_fires_on_sustained_slowdown() {
    let exp = expected_us(8);
    let cfg = DriftConfig::on();
    let mut det = DriftDetector::new(cfg, exp);
    let faults = FaultPlan::none().with_device_slowdown(0, 0.0, 1e12, 4.0);
    feed_faulted(&mut det, exp, &faults, cfg.min_samples as usize, 10_000.0);
    let ratios = det.check().expect("sustained 4x drift must fire");
    for r in ratios {
        assert!(
            (r - 4.0).abs() < 0.5,
            "re-weight ratio should track the injected slowdown, got {ratios:?}"
        );
    }
    // Damping: the same drift does not re-fire from an empty window.
    assert_eq!(det.check(), None, "must not re-fire without new samples");
}

/// A short spike window inside an otherwise clean run is damped by the
/// windowed mean and never fires.
#[test]
fn detector_damps_isolated_spike() {
    let exp = expected_us(8);
    let cfg = DriftConfig::on();
    let mut det = DriftDetector::new(cfg, exp);
    // 64 samples over 10ms; the 8x spike covers ~1/16 of the horizon,
    // so the per-class mean stays under the 2x threshold.
    let faults = FaultPlan::none().with_device_slowdown(0, 4_000.0, 4_625.0, 8.0);
    feed_faulted(&mut det, exp, &faults, 64, 10_000.0);
    assert_eq!(det.check(), None, "one spike among many must be damped");
}

// ---- Simulator goldens: measured beats (or ties) flops. ----

fn flop_weight(b: usize) -> impl Fn(TaskKind) -> f64 + Copy {
    move |t| match t {
        TaskKind::Geqrt { .. } => flops::geqrt_flops(b) as f64,
        TaskKind::Unmqr { .. } => flops::unmqr_flops(b) as f64,
        TaskKind::Tsqrt { .. } => flops::tsqrt_flops(b) as f64,
        TaskKind::Tsmqr { .. } => flops::tsmqr_flops(b) as f64,
        TaskKind::Ttqrt { .. } => flops::ttqrt_flops(b) as f64,
        TaskKind::Ttmqr { .. } => flops::ttmqr_flops(b) as f64,
    }
}

/// On the reference grids at 4 and 16 simulated cores, critical path
/// ranked by measured microseconds is never worse than FIFO and never
/// worse than critical path ranked by flops — the whole point of
/// feeding calibration back into the scheduler.
#[test]
fn measured_priorities_golden_on_reference_grids() {
    let b = 16;
    let costs = measured_costs();
    let dur = |k: TaskKind| costs.cost_us(k, b);
    for (mt, nt) in [(8usize, 8usize), (32, 2)] {
        let graph = TaskGraph::build(mt, nt, EliminationOrder::FlatTs);
        let flop_pri = bottom_levels(&graph, flop_weight(b));
        let cal_pri = bottom_levels(&graph, dur);
        for workers in [4usize, 16] {
            let fifo = list_makespan(&graph, workers, ListOrder::Fifo, dur);
            let cp_flops = list_makespan(&graph, workers, ListOrder::Priority(&flop_pri), dur);
            let cp_measured = list_makespan(&graph, workers, ListOrder::Priority(&cal_pri), dur);
            assert!(
                cp_measured <= fifo + 1e-9,
                "{mt}x{nt}/{workers}w: measured CP {cp_measured} worse than FIFO {fifo}"
            );
            assert!(
                cp_measured <= cp_flops + 1e-9,
                "{mt}x{nt}/{workers}w: measured CP {cp_measured} worse than flop CP {cp_flops}"
            );
        }
    }
    // And the gap is real somewhere: on the 8x8 grid at 4 workers the
    // measured ranking strictly beats both baselines (golden values
    // pinned by the deterministic scheduler).
    let graph = TaskGraph::build(8, 8, EliminationOrder::FlatTs);
    let dur4 = |k: TaskKind| costs.cost_us(k, b);
    let fifo = list_makespan(&graph, 4, ListOrder::Fifo, dur4);
    let cal_pri = bottom_levels(&graph, dur4);
    let cp_measured = list_makespan(&graph, 4, ListOrder::Priority(&cal_pri), dur4);
    let flop_pri = bottom_levels(&graph, flop_weight(b));
    let cp_flops = list_makespan(&graph, 4, ListOrder::Priority(&flop_pri), dur4);
    assert!(
        cp_measured < cp_flops && cp_flops < fifo,
        "expected a strict win on 8x8/4w: measured {cp_measured}, flops {cp_flops}, fifo {fifo}"
    );
}
