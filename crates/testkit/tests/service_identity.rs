//! Service-path bit-identity: every job factored through a resident
//! [`QrService`] must produce **bit-identical** factors to the same
//! matrix factored sequentially — across worker counts, schedule
//! policies, concurrent job counts, and with small-job batching on or
//! off. The service interleaves many job DAGs through one shared ready
//! queue, so this is the strongest statement that per-job
//! `SharedFactorState` isolation plus the fenced commit protocol keep
//! jobs from perturbing each other's numbers.

use tileqr::runtime::{JobOutput, JobSpec, PriorityClass, QrService, ServiceConfig};
use tileqr::{QrOptions, TiledQr};
use tileqr_dag::{EliminationOrder, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::{Matrix, TiledMatrix};
use tileqr_testkit::{policies_under_test, workers_under_test};

/// Sequential ground truth for one job: the factored tile matrix.
fn sequential(a: &Matrix<f64>, b: usize, order: EliminationOrder) -> Matrix<f64> {
    let tiled = TiledMatrix::from_matrix(a, b).unwrap();
    let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
    let mut seq = FactorState::new(tiled);
    seq.run_all(&g).unwrap();
    seq.tiles().to_matrix()
}

/// Mixed-size workload: job `i` cycles through square, rectangular,
/// tall-skinny, and non-tile-multiple shapes so concurrent DAGs differ
/// in depth and width.
fn job_matrix(i: u64) -> (Matrix<f64>, usize, EliminationOrder) {
    let shapes = [
        (24, 24, EliminationOrder::FlatTs),
        (40, 16, EliminationOrder::FlatTt),
        (16, 16, EliminationOrder::FlatTs),
        (33, 20, EliminationOrder::BinaryTt),
    ];
    let (m, n, order) = shapes[(i % 4) as usize];
    (random_matrix::<f64>(m, n, 1000 + i), 8, order)
}

/// The acceptance sweep: workers x policies x {1, 4, 16} concurrent
/// mixed-size jobs, every factor bit-identical to the sequential run.
#[test]
fn service_factor_bit_identical_across_sweep() {
    for workers in workers_under_test() {
        for policy in policies_under_test() {
            for &jobs in &[1usize, 4, 16] {
                let svc = QrService::<f64>::start(ServiceConfig {
                    workers,
                    policy,
                    ..ServiceConfig::default()
                });
                let mut handles = Vec::new();
                let mut expected = Vec::new();
                for i in 0..jobs as u64 {
                    let (a, b, order) = job_matrix(i);
                    expected.push(sequential(&a, b, order));
                    let spec = JobSpec::factor(a).tile_size(b).order(order);
                    handles.push(svc.submit(spec).unwrap());
                }
                for (h, want) in handles.into_iter().zip(expected) {
                    let res = h.wait().unwrap();
                    let got = res.output.factor().state.tiles().to_matrix();
                    assert_eq!(
                        got, want,
                        "service factor diverged (workers={workers}, policy={policy:?}, jobs={jobs})"
                    );
                }
                let stats = svc.shutdown();
                assert_eq!(stats.jobs_completed, jobs as u64);
                assert_eq!(stats.jobs_failed, 0);
            }
        }
    }
}

/// Sub-threshold jobs routed through the composite-batch path must be
/// bit-identical to the same jobs run unbatched (and to the sequential
/// reference). `batch_max_jobs <= 1` disables batching entirely.
#[test]
fn batched_small_jobs_bit_identical_to_unbatched() {
    // 8x8 (1 task) and 16x8 (2 tasks) at b=8 are both under the
    // default batch_max_tasks = 4 threshold.
    let specs: Vec<(Matrix<f64>, usize)> = (0..8u64)
        .map(|i| {
            let m = if i % 2 == 0 { 8 } else { 16 };
            (random_matrix::<f64>(m, 8, 2000 + i), 8)
        })
        .collect();
    let expected: Vec<Matrix<f64>> = specs
        .iter()
        .map(|(a, b)| sequential(a, *b, EliminationOrder::FlatTs))
        .collect();

    for &batch_max_jobs in &[1usize, 8] {
        let svc = QrService::<f64>::start(ServiceConfig {
            workers: 2,
            batch_max_jobs,
            ..ServiceConfig::default()
        });
        let handles: Vec<_> = specs
            .iter()
            .map(|(a, b)| {
                svc.submit(JobSpec::factor(a.clone()).tile_size(*b))
                    .unwrap()
            })
            .collect();
        for (h, want) in handles.into_iter().zip(&expected) {
            let res = h.wait().unwrap();
            let got = res.output.factor().state.tiles().to_matrix();
            assert_eq!(&got, want, "batching={} diverged", batch_max_jobs > 1);
            assert_eq!(
                res.batched,
                batch_max_jobs > 1,
                "batch routing flag wrong for batch_max_jobs={batch_max_jobs}"
            );
        }
        let stats = svc.shutdown();
        if batch_max_jobs > 1 {
            assert_eq!(stats.jobs_batched, 8, "all sub-threshold jobs should batch");
            assert!(stats.batches >= 1);
        } else {
            assert_eq!(stats.jobs_batched, 0, "batching disabled must not batch");
        }
    }
}

/// Solve and Q-apply jobs must match the direct single-matrix
/// [`TiledQr`] path exactly: the epilogue replays the same Householder
/// program in the same order, so even floating point agrees bitwise.
#[test]
fn solve_and_apply_jobs_match_direct_path() {
    let a = random_matrix::<f64>(32, 16, 31);
    let rhs: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
    let c = random_matrix::<f64>(32, 3, 77);

    let direct = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
    let x_direct = direct.solve(&rhs).unwrap();
    let qtc_direct = direct.apply_qt(&c).unwrap();
    let qc_direct = direct.apply_q(&c).unwrap();

    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let h_solve = svc
        .submit(JobSpec::solve(a.clone(), rhs.clone()).tile_size(8))
        .unwrap();
    let h_qt = svc
        .submit(JobSpec::apply_qt(a.clone(), c.clone()).tile_size(8))
        .unwrap();
    let h_q = svc
        .submit(JobSpec::apply_q(a.clone(), c.clone()).tile_size(8))
        .unwrap();

    match h_solve.wait().unwrap().output {
        JobOutput::Solved { x, factor } => {
            assert_eq!(x, x_direct, "service solve must be bit-identical");
            assert_eq!(factor.r_matrix(), direct.r());
        }
        other => panic!("expected Solved, got {:?} variant", variant_name(&other)),
    }
    match h_qt.wait().unwrap().output {
        JobOutput::Applied { c: qtc, .. } => assert_eq!(qtc, qtc_direct),
        other => panic!("expected Applied, got {:?} variant", variant_name(&other)),
    }
    match h_q.wait().unwrap().output {
        JobOutput::Applied { c: qc, .. } => assert_eq!(qc, qc_direct),
        other => panic!("expected Applied, got {:?} variant", variant_name(&other)),
    }
    svc.shutdown();
}

fn variant_name<T: tileqr::Scalar>(o: &JobOutput<T>) -> &'static str {
    match o {
        JobOutput::Factored(_) => "Factored",
        JobOutput::Solved { .. } => "Solved",
        JobOutput::Applied { .. } => "Applied",
    }
}

/// The single-matrix API routed through a resident service
/// ([`TiledQr::factor_on`] + [`QrOptions::to_service_config`]) is
/// bit-identical to the standalone factorization.
#[test]
fn factor_on_matches_standalone_factor() {
    let a = random_matrix::<f64>(48, 32, 5);
    let opts = QrOptions::new().tile_size(8).workers(2);

    let standalone = TiledQr::factor(&a, &opts).unwrap();

    let svc = QrService::<f64>::start(opts.to_service_config());
    let (via_service, report) = TiledQr::factor_on(&svc, &a, &opts).unwrap();
    svc.shutdown();

    assert_eq!(
        via_service.state().tiles().to_matrix(),
        standalone.state().tiles().to_matrix()
    );
    assert_eq!(via_service.r(), standalone.r());
    assert_eq!(report.total_tasks(), via_service.graph().len() as u64);
}

/// Priority classes never change the numbers — only scheduling order.
#[test]
fn priority_classes_bit_identical() {
    let a = random_matrix::<f64>(40, 24, 9);
    let want = sequential(&a, 8, EliminationOrder::FlatTs);
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = [
        PriorityClass::Bulk,
        PriorityClass::Standard,
        PriorityClass::Interactive,
    ]
    .into_iter()
    .map(|class| {
        svc.submit(JobSpec::factor(a.clone()).tile_size(8).priority(class))
            .unwrap()
    })
    .collect();
    for h in handles {
        let res = h.wait().unwrap();
        assert_eq!(res.output.factor().state.tiles().to_matrix(), want);
    }
    svc.shutdown();
}
