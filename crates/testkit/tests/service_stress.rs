//! Deterministic service stress: mixed job sizes under seeded
//! adversarial arrival orders. Asserts the service-level liveness and
//! fairness contracts — no deadlock, no starvation (every priority
//! class completes), bounded fair-share queueing delay, backpressure
//! that unblocks, and drain-on-shutdown with zero lost jobs — while
//! holding every factor to bit identity with the sequential path.

use tileqr::runtime::{JobSpec, PriorityClass, QrService, ServiceConfig, ServiceError};
use tileqr_dag::{EliminationOrder, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::{Matrix, Rng64, TiledMatrix};
use tileqr_testkit::workers_under_test;

/// Sequential ground truth for one job.
fn sequential(a: &Matrix<f64>, b: usize) -> Matrix<f64> {
    let tiled = TiledMatrix::from_matrix(a, b).unwrap();
    let g = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let mut seq = FactorState::new(tiled);
    seq.run_all(&g).unwrap();
    seq.tiles().to_matrix()
}

/// The three stress shapes at b=8: single-tile (1 task), tall-skinny
/// 8x1 tiles (8 tasks), and a full 8x8-tile DAG (204 tasks).
fn stress_shape(kind: usize, seed: u64) -> Matrix<f64> {
    match kind {
        0 => random_matrix::<f64>(8, 8, seed),
        1 => random_matrix::<f64>(64, 8, seed),
        _ => random_matrix::<f64>(64, 64, seed),
    }
}

/// Deterministic Fisher-Yates shuffle driven by [`Rng64`].
fn shuffle<T>(v: &mut [T], rng: &mut Rng64) {
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Mixed sizes, adversarial (seed-shuffled) arrival orders, all three
/// priority classes in flight at once: everything completes — no
/// deadlock, no starved class — and every factor is bit-identical.
#[test]
fn adversarial_arrival_orders_complete_bit_identical() {
    let classes = [
        PriorityClass::Bulk,
        PriorityClass::Standard,
        PriorityClass::Interactive,
    ];
    for workers in workers_under_test() {
        for trial in 0..3u64 {
            let mut rng = Rng64::seed_from_u64(0x5EED ^ trial);
            // 15 jobs: five of each shape, classes round-robined so
            // every class contains every shape.
            let mut jobs: Vec<(usize, u64, PriorityClass)> = (0..15u64)
                .map(|i| {
                    (
                        (i % 3) as usize,
                        4000 + 100 * trial + i,
                        classes[(i / 5) as usize],
                    )
                })
                .collect();
            shuffle(&mut jobs, &mut rng);

            let svc = QrService::<f64>::start(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            });
            let mut handles = Vec::new();
            let mut expected = Vec::new();
            let mut want_class = Vec::new();
            for &(kind, seed, class) in &jobs {
                let a = stress_shape(kind, seed);
                expected.push(sequential(&a, 8));
                want_class.push(class);
                handles.push(
                    svc.submit(JobSpec::factor(a).tile_size(8).priority(class))
                        .unwrap(),
                );
            }
            let mut done_per_class = [0usize; 3];
            for ((h, want), class) in handles.into_iter().zip(expected).zip(want_class) {
                let res = h.wait().unwrap_or_else(|e| {
                    panic!("job failed (workers={workers}, trial={trial}): {e}")
                });
                assert_eq!(res.output.factor().state.tiles().to_matrix(), want);
                assert_eq!(res.class, class);
                done_per_class[match class {
                    PriorityClass::Interactive => 0,
                    PriorityClass::Standard => 1,
                    PriorityClass::Bulk => 2,
                }] += 1;
            }
            assert_eq!(done_per_class, [5, 5, 5], "a priority class starved");
            let stats = svc.shutdown();
            assert_eq!(stats.jobs_completed, 15);
            assert_eq!(stats.jobs_failed, 0);
        }
    }
}

/// Weighted fair-share bound: an interactive job arriving behind a
/// bulk flood starts within a bounded number of dispatches. A newcomer
/// enters at the minimum backlogged virtual time, so each backlogged
/// job can overtake it at most once (its vtime then advances past the
/// newcomer's), plus one task per worker already being dispatched —
/// giving delay <= backlog + workers. We assert the K=2 budget.
#[test]
fn fair_share_bounds_interactive_queue_delay() {
    let workers = 2;
    let svc = QrService::<f64>::start(ServiceConfig {
        workers,
        batch_max_jobs: 1, // disable batching: the bound is per-DAG-dispatch
        ..ServiceConfig::default()
    });

    // Flood: 8 bulk 8x8-tile jobs (204 tasks each).
    let bulk: Vec<_> = (0..8u64)
        .map(|i| {
            svc.submit(
                JobSpec::factor(stress_shape(2, 6000 + i))
                    .tile_size(8)
                    .priority(PriorityClass::Bulk),
            )
            .unwrap()
        })
        .collect();

    // Latecomers: 4 interactive jobs submitted into the flood.
    let interactive: Vec<_> = (0..4u64)
        .map(|i| {
            svc.submit(
                JobSpec::factor(stress_shape(1, 7000 + i))
                    .tile_size(8)
                    .priority(PriorityClass::Interactive),
            )
            .unwrap()
        })
        .collect();

    for h in interactive {
        let res = h.wait().unwrap();
        let budget = 2 * (res.backlog_at_submit + workers as u64) + 2;
        assert!(
            res.dispatch_delay_tasks <= budget,
            "interactive job waited {} dispatches behind a backlog of {} (budget {})",
            res.dispatch_delay_tasks,
            res.backlog_at_submit,
            budget
        );
    }
    for h in bulk {
        h.wait().unwrap(); // the flood itself must not starve either
    }
    svc.shutdown();
}

/// Admission backpressure: a blocking submit over capacity parks the
/// caller and wakes it once a slot frees — it must complete, not
/// deadlock, and `try_submit` must report saturation in the interim.
#[test]
fn backpressure_blocks_then_unblocks() {
    let svc = QrService::<f64>::start(ServiceConfig {
        workers: 1,
        max_in_flight: 1,
        ..ServiceConfig::default()
    });
    let first = svc
        .submit(JobSpec::factor(stress_shape(2, 8100)).tile_size(8))
        .unwrap();
    // With the slot held, non-blocking admission refuses (the slot
    // frees asynchronously, so allow the race where it already did).
    match svc.try_submit(JobSpec::factor(stress_shape(0, 8101)).tile_size(8)) {
        Err(ServiceError::Saturated {
            in_flight,
            max_in_flight,
        }) => {
            assert_eq!((in_flight, max_in_flight), (1, 1));
        }
        Ok(h) => {
            h.wait().unwrap();
        }
        Err(e) => panic!("unexpected admission error: {e}"),
    }
    // A blocking submit from another thread parks until `first` drains.
    std::thread::scope(|s| {
        let t = s.spawn(|| {
            svc.submit(JobSpec::factor(stress_shape(1, 8102)).tile_size(8))
                .unwrap()
                .wait()
        });
        first.wait().unwrap();
        t.join().unwrap().unwrap();
    });
    svc.shutdown();
}

/// Drain-on-shutdown: shutting down immediately after a burst of
/// mixed submissions (including batchable smalls) loses nothing —
/// every handle resolves with a correct result.
#[test]
fn shutdown_drains_all_in_flight_jobs() {
    for workers in workers_under_test() {
        let svc = QrService::<f64>::start(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for i in 0..12u64 {
            let a = stress_shape((i % 3) as usize, 9000 + i);
            expected.push(sequential(&a, 8));
            handles.push(svc.submit(JobSpec::factor(a).tile_size(8)).unwrap());
        }
        let stats = svc.shutdown(); // drains, does not abandon
        assert_eq!(
            stats.jobs_completed, 12,
            "lost jobs on drain (workers={workers})"
        );
        assert_eq!(stats.jobs_failed, 0);
        for (h, want) in handles.into_iter().zip(expected) {
            let res = h.wait().expect("drained job must still resolve");
            assert_eq!(res.output.factor().state.tiles().to_matrix(), want);
        }
    }
}
