//! Property tests for device-count selection (paper Alg. 3, Eqs. 10–11).
//!
//! The central invariant: the selected `p` is a true argmin of the model
//! — Alg. 3 never returns a device count the model itself scores worse
//! than some smaller count. Plus the structural facts Table III depends
//! on: communication cost grows with `p`, a lone device never pays for
//! the bus, and large matrices justify at least as many devices as small
//! ones.

use tileqr_sched::device_count::{ordered_devices, select_device_count, tcomm_us_grid, top_us};
use tileqr_sched::main_select::select_main_device;
use tileqr_sim::profiles;

#[test]
fn chosen_p_is_never_beaten_by_a_smaller_p() {
    for b in [8, 16, 32] {
        let platform = profiles::paper_testbed(b);
        for size in [2usize, 4, 8, 16, 32, 64, 128] {
            let main = select_main_device(&platform, size, size).device;
            let sel = select_device_count(&platform, main, size, size);
            let chosen = sel.predictions[sel.p - 1].total_us();
            for pred in &sel.predictions[..sel.p - 1] {
                assert!(
                    chosen <= pred.total_us(),
                    "b={b} size={size}: chose p={} ({chosen}) though p={} scores {}",
                    sel.p,
                    pred.p,
                    pred.total_us()
                );
            }
        }
    }
}

#[test]
fn chosen_p_is_global_argmin_of_the_predictions() {
    let platform = profiles::paper_testbed(16);
    for size in [3usize, 6, 12, 24, 48, 96] {
        let main = select_main_device(&platform, size, size).device;
        let sel = select_device_count(&platform, main, size, size);
        let best = sel
            .predictions
            .iter()
            .min_by(|a, b| a.total_us().total_cmp(&b.total_us()))
            .unwrap();
        assert_eq!(sel.p, best.p);
        assert_eq!(sel.devices, best.devices);
    }
}

#[test]
fn selected_count_does_not_shrink_as_the_matrix_grows() {
    // Table III's qualitative shape: more tiles never justify fewer
    // devices on a fixed platform.
    let platform = profiles::paper_testbed(16);
    let mut prev = 0usize;
    for size in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let main = select_main_device(&platform, size, size).device;
        let sel = select_device_count(&platform, main, size, size);
        assert!(
            sel.p >= prev,
            "size {size}: p fell from {prev} to {}",
            sel.p
        );
        prev = sel.p;
    }
    assert!(prev > 1, "large matrices must engage multiple devices");
}

#[test]
fn tcomm_is_monotone_in_device_count_and_free_for_one() {
    let platform = profiles::paper_testbed(16);
    let ordered = ordered_devices(&platform, 0);
    for size in [8usize, 32, 96] {
        let mut prev = tcomm_us_grid(&platform, &ordered[..1], size, size);
        assert_eq!(prev, 0.0, "a lone device never touches the bus");
        for p in 2..=ordered.len() {
            let t = tcomm_us_grid(&platform, &ordered[..p], size, size);
            assert!(t > prev, "Tcomm not increasing at p={p}, size={size}");
            prev = t;
        }
    }
}

#[test]
fn predictions_cover_every_prefix_exactly_once() {
    let platform = profiles::paper_testbed(16);
    let sel = select_device_count(&platform, 0, 16, 16);
    assert_eq!(sel.predictions.len(), platform.num_devices());
    for (idx, pred) in sel.predictions.iter().enumerate() {
        assert_eq!(pred.p, idx + 1);
        assert_eq!(pred.devices.len(), pred.p);
        assert_eq!(pred.devices[0], 0, "main leads every prefix");
        assert!(pred.top_us > 0.0);
        assert!(pred.total_us() >= pred.top_us);
    }
}

#[test]
fn single_device_platform_degenerates_cleanly() {
    let platform = profiles::testbed_subset(1, false, 16);
    assert_eq!(platform.num_devices(), 1);
    let sel = select_device_count(&platform, 0, 20, 20);
    assert_eq!(sel.p, 1);
    assert_eq!(sel.devices, vec![0]);
    assert_eq!(sel.predictions.len(), 1);
    assert_eq!(sel.predictions[0].tcomm_us, 0.0);
}

#[test]
fn top_reflects_work_growth() {
    // Eq. 10 sanity: more tiles mean more predicted operation time, for
    // any fixed device prefix.
    let platform = profiles::paper_testbed(16);
    let ordered = ordered_devices(&platform, 0);
    for p in 1..=ordered.len() {
        let small = top_us(&platform, &ordered[..p], 8, 8);
        let large = top_us(&platform, &ordered[..p], 32, 32);
        assert!(large > small, "Top not growing with size at p={p}");
    }
}
