//! Chaos suite: many seeded disturbance storms against live services.
//!
//! Each storm submits a burst of jobs where every job draws one
//! disturbance (panic / transient failure / stall / NaN at submit / NaN
//! mid-run / cancel / expired deadline / none) and [`run_storm`] asserts
//! the global invariants — no job lost or hung, every handle resolves,
//! unaffected jobs bit-identical to the sequential factorization,
//! lifecycle counters consistent with observed outcomes, clean drain.
//!
//! Environment knobs:
//! * `TILEQR_TESTKIT_WORKERS` — worker counts to sweep (CI matrix).
//! * `TILEQR_CHAOS_LOG` — if set, the per-event JSONL ledger of every
//!   storm is appended to this path (uploaded as a CI artifact so a
//!   failure's seed and disturbance draw survive the run).

use std::io::Write;
use tileqr_testkit::chaos::{ChaosConfig, Disturbance, GroundTruth, Outcome, StormReport};
use tileqr_testkit::{chaos::run_storm, workers_under_test};

fn append_log(reports: &[StormReport]) {
    let Ok(path) = std::env::var("TILEQR_CHAOS_LOG") else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("open chaos log {path:?}: {e}"));
    for r in reports {
        f.write_all(r.to_jsonl().as_bytes())
            .expect("write chaos log");
    }
}

/// The headline storm sweep: ≥50 seeded storms per worker count, with
/// the watchdog armed so stall disturbances are on the menu.
#[test]
fn fifty_storms_hold_the_invariants() {
    let workers = workers_under_test();
    let storms_per_worker = 50usize.div_ceil(workers.len()).max(13);
    let mut truth = GroundTruth::new(8);
    let mut reports = Vec::new();
    let mut total = 0usize;
    for (wi, &w) in workers.iter().enumerate() {
        for s in 0..storms_per_worker {
            let cfg = ChaosConfig {
                seed: 1_000 * (wi as u64 + 1) + s as u64,
                workers: w,
                jobs: 6,
                ..ChaosConfig::default()
            };
            reports.push(run_storm(&cfg, &mut truth));
            total += 1;
        }
    }
    assert!(total >= 50, "need at least 50 storms, ran {total}");
    // The sweep must actually exercise every disturbance class at least
    // once — a menu that silently stopped being drawn would turn the
    // suite into a clean-path test.
    for d in [
        Disturbance::Clean,
        Disturbance::Panic,
        Disturbance::Transient,
        Disturbance::Stall,
        Disturbance::PoisonSubmit,
        Disturbance::PoisonMidRun,
        Disturbance::Cancel,
        Disturbance::Deadline,
    ] {
        let drawn = reports
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|e| e.disturbance == d)
            .count();
        assert!(
            drawn > 0,
            "disturbance {:?} never drawn across the sweep",
            d
        );
    }
    append_log(&reports);
}

/// Saturation storms: a bounded admission gate under the same
/// disturbance mix, plus non-blocking probes that are allowed to bounce
/// with a structured `Saturated` payload. Backpressure (blocking
/// submits) and shedding must coexist without losing a job.
#[test]
fn bounded_gate_storms_shed_and_drain_cleanly() {
    let mut truth = GroundTruth::new(8);
    let mut reports = Vec::new();
    for s in 0..10u64 {
        let cfg = ChaosConfig {
            seed: 5_000 + s,
            workers: 2,
            jobs: 8,
            max_in_flight: 2,
            ..ChaosConfig::default()
        };
        reports.push(run_storm(&cfg, &mut truth));
    }
    // With 8 jobs against 2 slots, at least one probe across ten storms
    // must have seen the gate closed.
    let bounced: u64 = reports.iter().map(|r| r.saturation_rejections).sum();
    assert!(bounced > 0, "saturation probes never bounced");
    append_log(&reports);
}

/// Watchdog-off storms: without `stall_timeout` the stall disturbance
/// leaves the menu, and every other lifecycle path must still hold.
#[test]
fn storms_without_watchdog_still_drain() {
    let mut truth = GroundTruth::new(8);
    let mut reports = Vec::new();
    for s in 0..8u64 {
        let cfg = ChaosConfig {
            seed: 7_000 + s,
            workers: 2,
            jobs: 6,
            stall_timeout: None,
            ..ChaosConfig::default()
        };
        let r = run_storm(&cfg, &mut truth);
        assert_eq!(r.stats.lifecycle.watchdog_retirements, 0);
        assert!(r.events.iter().all(|e| e.disturbance != Disturbance::Stall));
        reports.push(r);
    }
    append_log(&reports);
}

/// Aggregated sanity over a smaller sweep: cancels resolve as cancelled
/// or identical (the race is legal), everything else is deterministic.
#[test]
fn cancel_races_resolve_one_of_two_ways() {
    let mut truth = GroundTruth::new(8);
    for s in 0..6u64 {
        let cfg = ChaosConfig {
            seed: 11_000 + s,
            workers: 4,
            jobs: 8,
            ..ChaosConfig::default()
        };
        let r = run_storm(&cfg, &mut truth);
        for e in r
            .events
            .iter()
            .filter(|e| e.disturbance == Disturbance::Cancel)
        {
            assert!(
                matches!(e.outcome, Outcome::Cancelled | Outcome::Identical),
                "cancel resolved as {:?}",
                e.outcome
            );
        }
    }
}
