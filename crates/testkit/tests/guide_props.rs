//! Property tests for the distribution guide array (paper Alg. 4).
//!
//! Seeded sweeps over random device/ratio configurations assert the three
//! structural properties the paper's Eq. 12 distribution relies on:
//! exact ratio-proportional counts, cyclic coverage of every column, and
//! prefix proportionality (the greedy max-remaining-ratio construction
//! never lets any device fall more than one appearance behind its share).

use tileqr_matrix::Rng64;
use tileqr_sched::distribution::DistributionStrategy;
use tileqr_sched::guide::{column_owner, generate_guide_array};
use tileqr_sched::plan::{plan_degraded, MainDevicePolicy};
use tileqr_sim::{profiles, DeviceId};

fn random_config(rng: &mut Rng64) -> (Vec<DeviceId>, Vec<u64>) {
    let n = rng.range_i64(1, 7) as usize;
    let devices: Vec<DeviceId> = (0..n).collect();
    let ratio: Vec<u64> = (0..n).map(|_| rng.range_i64(0, 9) as u64).collect();
    (devices, ratio)
}

#[test]
fn counts_match_ratios_exactly() {
    let mut rng = Rng64::seed_from_u64(0xA11);
    for _ in 0..200 {
        let (devices, ratio) = random_config(&mut rng);
        let g = generate_guide_array(&devices, &ratio);
        let total: u64 = ratio.iter().sum();
        assert_eq!(g.len() as u64, total);
        for (d, &share) in devices.iter().zip(&ratio) {
            let count = g.iter().filter(|&&x| x == *d).count() as u64;
            assert_eq!(count, share, "device {d} in {ratio:?}");
        }
    }
}

#[test]
fn cyclic_coverage_reaches_every_participating_device() {
    let mut rng = Rng64::seed_from_u64(0xB22);
    for _ in 0..200 {
        let (devices, ratio) = random_config(&mut rng);
        let g = generate_guide_array(&devices, &ratio);
        if g.is_empty() {
            continue; // all-zero ratios: no participants, nothing to cover
        }
        // Any window of `len` consecutive columns hits every device with a
        // nonzero ratio (Eq. 12 wraps modulo the array length).
        let participants: Vec<DeviceId> = devices
            .iter()
            .zip(&ratio)
            .filter(|(_, &r)| r > 0)
            .map(|(&d, _)| d)
            .collect();
        for start in [0usize, 3, g.len(), 5 * g.len() + 1] {
            for &p in &participants {
                let hit = (start..start + g.len()).any(|c| column_owner(&g, c) == p);
                assert!(hit, "device {p} starved in window at {start}");
            }
        }
    }
}

#[test]
fn prefix_counts_stay_ratio_proportional() {
    let mut rng = Rng64::seed_from_u64(0xC33);
    for _ in 0..200 {
        let (devices, ratio) = random_config(&mut rng);
        let g = generate_guide_array(&devices, &ratio);
        let total: u64 = ratio.iter().sum();
        if total == 0 {
            continue;
        }
        // Greedy max-remaining keeps every device within one appearance of
        // its proportional share in every prefix.
        for prefix in 1..=g.len() {
            for (idx, &d) in devices.iter().enumerate() {
                let count = g[..prefix].iter().filter(|&&x| x == d).count() as f64;
                let share = prefix as f64 * ratio[idx] as f64 / total as f64;
                assert!(
                    (count - share).abs() <= devices.len() as f64,
                    "device {d} prefix {prefix}: count {count} vs share {share} ({ratio:?})"
                );
            }
        }
    }
}

#[test]
fn degenerate_single_device_owns_everything() {
    for ratio in [1u64, 3, 17] {
        let g = generate_guide_array(&[5], &[ratio]);
        assert_eq!(g.len() as u64, ratio);
        assert!(g.iter().all(|&d| d == 5));
        for c in 0..50 {
            assert_eq!(column_owner(&g, c), 5);
        }
    }
}

#[test]
fn deterministic_construction() {
    // Same inputs, same array — Alg. 4 has no hidden state.
    let devices = [0, 1, 2, 3];
    let ratio = [4u64, 7, 1, 3];
    assert_eq!(
        generate_guide_array(&devices, &ratio),
        generate_guide_array(&devices, &ratio)
    );
}

#[test]
fn paper_worked_example_holds() {
    // §IV-C: ratios 2:3:1 yield {1, 0, 1, 0, 1, 2}.
    assert_eq!(
        generate_guide_array(&[0, 1, 2], &[2, 3, 1]),
        vec![1, 0, 1, 0, 1, 2]
    );
}

#[test]
fn blacklisting_down_to_one_survivor_yields_a_valid_single_device_guide() {
    // Satellite of the re-planning path: when a device blacklist leaves a
    // single survivor, Alg. 4 must degenerate to a guide that maps every
    // column — including column 0 — to that survivor, never to an empty
    // or mixed array.
    let p = profiles::paper_testbed(16);
    let n = p.num_devices();
    for survivor in 0..n {
        let exclude: Vec<DeviceId> = (0..n).filter(|&d| d != survivor).collect();
        let plan = plan_degraded(
            &p,
            40,
            40,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            None,
            &exclude,
        );
        assert_eq!(plan.main, survivor);
        assert_eq!(plan.participants, vec![survivor]);
        let g = plan.distribution.guide();
        assert!(
            !g.is_empty(),
            "survivor {survivor}: guide must not be empty"
        );
        assert!(
            g.iter().all(|&d| d == survivor),
            "survivor {survivor}: {g:?}"
        );
        for j in 0..40 {
            assert_eq!(plan.distribution.owner(j), survivor);
        }
    }
}

#[test]
fn random_blacklists_never_leak_excluded_devices_into_the_guide() {
    // Seeded sweep over random exclusion subsets (always leaving at least
    // one survivor), random grid shapes and every distribution strategy:
    // the guide array and every column owner must come from the survivor
    // set, and every survivor with a nonzero share must appear.
    let p = profiles::paper_testbed(16);
    let n = p.num_devices();
    let strategies = [
        DistributionStrategy::GuideArray,
        DistributionStrategy::GuideArrayBalanced,
        DistributionStrategy::CoresProportional,
        DistributionStrategy::Even,
    ];
    let mut rng = Rng64::seed_from_u64(0xD44);
    for round in 0..100 {
        let keep = (rng.next_u64() % n as u64) as usize;
        let mask = rng.range_i64(0, (1 << n) - 1) as usize & !(1 << keep); // ≥1 survivor
        let exclude: Vec<DeviceId> = (0..n).filter(|&d| mask & (1 << d) != 0).collect();
        let nt = rng.range_i64(2, 60) as usize;
        let mt = nt + rng.range_i64(0, 20) as usize;
        let strategy = strategies[round % strategies.len()];
        let plan = plan_degraded(&p, mt, nt, MainDevicePolicy::Auto, strategy, None, &exclude);
        assert!(!exclude.contains(&plan.main));
        for &d in plan.distribution.guide() {
            assert!(
                !exclude.contains(&d),
                "round {round}: excluded device {d} in guide {:?} (exclude {exclude:?})",
                plan.distribution.guide()
            );
        }
        for j in 0..nt {
            assert!(!exclude.contains(&plan.distribution.owner(j)));
        }
    }
}
