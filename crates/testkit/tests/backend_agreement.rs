//! Cross-backend agreement for the microkernel dispatch layer.
//!
//! The kernels crate ships two microkernel backends (safe scalar-blocked,
//! and AVX2+FMA intrinsics behind the `simd` cargo feature). They are
//! *not* bit-identical to each other — FMA contracts rounding steps — so
//! the contract is split in two:
//!
//! 1. **Within a backend**: repeated factorizations are bit-identical
//!    (the workspace-identity sweep already holds this across worker
//!    counts; here it is held across repeated runs with each backend
//!    pinned).
//! 2. **Across backends**: the computed `R` factors agree within the
//!    condition-scaled differential budget of [`tileqr_testkit::oracle`],
//!    and both backends pass the full residual/orthogonality oracles.
//!
//! In a default (no-`simd`) build, forcing the `Simd` backend is a no-op
//! and the cross-backend checks degenerate to exact self-comparison —
//! still a valid (if trivial) instance of the contract, so the same test
//! binary runs in both CI legs.

use std::sync::Mutex;
use tileqr::kernels::micro::{self, Backend};
use tileqr::{QrOptions, TiledQr};
use tileqr_matrix::gen::{graded, random_matrix};
use tileqr_matrix::Matrix;
use tileqr_testkit::oracle::{differential_tolerance, verify_qr};

/// `force_backend` is process-global; serialize every test that pins it.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn factor_r(a: &Matrix<f64>, b: usize) -> (Matrix<f64>, Matrix<f64>) {
    let f = TiledQr::factor(a, &QrOptions::new().tile_size(b).workers(1)).unwrap();
    (f.q().unwrap(), f.r())
}

fn family() -> Vec<(&'static str, Matrix<f64>, f64)> {
    vec![
        ("random-24", random_matrix::<f64>(24, 24, 71), 1e3),
        ("random-odd-30x18", random_matrix::<f64>(30, 18, 72), 1e3),
        ("graded-40", graded(40, 40, 1e-2, 73), 1e6),
    ]
}

#[test]
fn each_backend_is_bit_deterministic() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    for backend in [Backend::Blocked, Backend::Simd] {
        micro::force_backend(Some(backend));
        for (name, a, _) in family() {
            for b in [5usize, 8] {
                let (q1, r1) = factor_r(&a, b);
                let (q2, r2) = factor_r(&a, b);
                assert_eq!(r1, r2, "{name} b={b}: R must repeat bit-identically");
                assert_eq!(q1, q2, "{name} b={b}: Q must repeat bit-identically");
            }
        }
    }
    micro::force_backend(None);
}

#[test]
fn backends_agree_within_condition_scaled_budgets() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    for (name, a, kappa) in family() {
        for b in [5usize, 8] {
            micro::force_backend(Some(Backend::Blocked));
            let (qs, rs) = factor_r(&a, b);
            micro::force_backend(Some(Backend::Simd));
            let (qv, rv) = factor_r(&a, b);
            micro::force_backend(None);

            // Both backends must independently pass the full oracles.
            let rep_s = verify_qr(&a, &qs, &rs, Some(kappa)).unwrap();
            assert!(rep_s.passes(), "{name} b={b} blocked: {rep_s:?}");
            let rep_v = verify_qr(&a, &qv, &rv, Some(kappa)).unwrap();
            assert!(rep_v.passes(), "{name} b={b} simd: {rep_v:?}");

            // And agree with each other within the κ-linear budget.
            let scale = tileqr_matrix::ops::frobenius_norm(&a).max(f64::MIN_POSITIVE);
            let tol = differential_tolerance(kappa);
            let (m, n) = rs.dims();
            for i in 0..m {
                for j in 0..n {
                    let dev = (rs[(i, j)] - rv[(i, j)]).abs() / scale;
                    assert!(
                        dev <= tol,
                        "{name} b={b}: R[{i},{j}] backend deviation {dev:e} > {tol:e}"
                    );
                }
            }
        }
    }
}

/// The backend choice is observable through `active_backend` and must
/// round-trip through the force hook.
#[test]
fn force_hook_round_trips() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    micro::force_backend(Some(Backend::Blocked));
    assert_eq!(micro::active_backend(), Backend::Blocked);
    micro::force_backend(None);
    let detected = micro::active_backend();
    if cfg!(feature = "simd") {
        // Whatever detection says, it must be stable call to call.
        assert_eq!(micro::active_backend(), detected);
    } else {
        assert_eq!(detected, Backend::Blocked, "default build has one backend");
    }
}
