//! The calibration loop's service half: online probing, plan selection
//! from measured profiles, persistence, and warm starts.
//!
//! - Profile **round-trip**: a fitted profile saved to the JSON store
//!   and loaded back drives *identical* selector decisions.
//! - **Warm start**: a second service pointed at the first one's store
//!   runs every job tuned — zero probes — and its plans match the ones
//!   the first service converged to.
//! - **Accounting**: [`ServiceStats::probe_jobs`] /
//!   [`ServiceStats::tuned_jobs`] count the transition per shape class.
//! - **Bit identity**: probe and tuned jobs alike match the sequential
//!   run of the same plan.

use std::path::PathBuf;
use tileqr::dag::TreePolicy;
use tileqr::runtime::{SchedulePolicy, ServiceConfig};
use tileqr::{JobPlan, QrOptions, TiledQr, TunedQrService, TunerConfig};
use tileqr_matrix::gen::random_matrix;
use tileqr_obs::ProfileStore;
use tileqr_sched::select::select_plan;
use tileqr_sim::{DeviceKind, DeviceProfile, KernelTiming, StepTimes};

/// A unique scratch path per test (the suites run in one process; the
/// names must not collide).
fn scratch_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tileqr-autotune-{tag}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn synthetic_profile(cores: usize) -> DeviceProfile {
    let t = |c0: f64, c2: f64| KernelTiming { c0, c1: 0.0, c2 };
    DeviceProfile {
        name: format!("synthetic-{cores}c"),
        kind: DeviceKind::Cpu,
        cores,
        times: StepTimes {
            triangulation: t(2.0, 0.004),
            elimination: t(2.0, 0.004),
            update: t(2.0, 0.006),
        },
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        policy: SchedulePolicy::CriticalPath,
        ..ServiceConfig::default()
    }
}

fn tuner(tiles: &[usize], path: Option<PathBuf>) -> TunerConfig {
    TunerConfig {
        probe_tiles: tiles.to_vec(),
        profile_path: path,
    }
}

/// Save → load → identical selector decisions, across several shapes
/// and candidate sets.
#[test]
fn profile_round_trip_preserves_selector_decisions() {
    let path = scratch_path("roundtrip");
    let profile = synthetic_profile(4);
    let mut store = ProfileStore::new();
    store.insert("256x128", profile.clone());
    store.save(&path).unwrap();

    let loaded_store = ProfileStore::load(&path).unwrap();
    let loaded = loaded_store.get("256x128").expect("key survives");
    assert_eq!(loaded, &profile, "profile must round-trip exactly");

    for (rows, cols) in [(256usize, 128usize), (512, 64), (96, 96)] {
        for tiles in [&[8usize, 16, 32][..], &[16, 32, 64][..]] {
            let a = select_plan(&profile, rows, cols, tiles);
            let b = select_plan(loaded, rows, cols, tiles);
            assert_eq!(
                a, b,
                "selector diverged after round-trip ({rows}x{cols}, tiles {tiles:?})"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// First service probes, fits, persists; second service warm-starts
/// tuned with zero probe jobs and makes the same plans.
#[test]
fn warm_start_skips_probing() {
    let path = scratch_path("warmstart");
    let a = random_matrix::<f64>(48, 48, 23);
    let tiles = [4usize, 8, 16];

    // Cold service: three probes fit the profile and write the store.
    let cold: TunedQrService<f64> =
        TunedQrService::start_with(service_config(), tuner(&tiles, Some(path.clone())));
    for _ in 0..3 {
        let (_, _, plan) = cold.factor(&a).unwrap();
        assert!(matches!(plan, JobPlan::Probe { .. }), "got {plan:?}");
    }
    let cold_selection = cold.selection_for(48, 48).expect("profile fitted");
    let cold_stats = cold.shutdown();
    assert_eq!(cold_stats.probe_jobs, 3);
    assert_eq!(cold_stats.tuned_jobs, 0);
    assert!(path.exists(), "fitted profile must persist to the store");

    // Warm service: the same path, no probes, identical plan.
    let warm: TunedQrService<f64> =
        TunedQrService::start_with(service_config(), tuner(&tiles, Some(path.clone())));
    let preview = warm.plan_for(48, 48);
    assert!(
        matches!(preview, JobPlan::Tuned { .. }),
        "warm start must plan tuned immediately, got {preview:?}"
    );
    let warm_selection = warm.selection_for(48, 48).expect("profile loaded");
    assert_eq!(
        warm_selection, cold_selection,
        "the loaded profile must reproduce the fitted service's plan"
    );
    let (_, _, plan) = warm.factor(&a).unwrap();
    assert!(matches!(plan, JobPlan::Tuned { .. }), "got {plan:?}");
    let warm_stats = warm.shutdown();
    assert_eq!(warm_stats.probe_jobs, 0, "warm start must never probe");
    assert_eq!(warm_stats.tuned_jobs, 1);
    let _ = std::fs::remove_file(&path);
}

/// Probe and tuned jobs both produce factors bit-identical to the
/// sequential run of the same (tile, tree) plan; the stats counters
/// track the per-shape transition.
#[test]
fn tuned_jobs_bit_identical_and_counted() {
    let a = random_matrix::<f64>(40, 40, 5);
    let svc: TunedQrService<f64> =
        TunedQrService::start_with(service_config(), tuner(&[4, 8, 16], None));
    for round in 0..5 {
        let (f, _, plan) = svc.factor(&a).unwrap();
        let (tile, tree) = match plan {
            JobPlan::Probe { tile_size } => (tile_size, None),
            JobPlan::Tuned { tile_size, tree } => (tile_size, Some(tree)),
            JobPlan::Standard => panic!("round {round}: shape should fit from 3 probes"),
        };
        let mut opts = QrOptions::new().tile_size(tile);
        if let Some(tree) = tree {
            opts = opts.tree(TreePolicy::Fixed(tree));
        }
        let seq = TiledQr::factor(&a, &opts).unwrap();
        assert_eq!(
            f.state().tiles().to_matrix(),
            seq.state().tiles().to_matrix(),
            "round {round} ({plan:?}) diverged from sequential"
        );
    }
    let stats = svc.shutdown();
    assert_eq!(stats.probe_jobs, 3, "one probe per candidate tile");
    assert_eq!(stats.tuned_jobs, 2, "remaining jobs run tuned");
    assert_eq!(stats.jobs_completed, 5);
    assert_eq!(stats.jobs_failed, 0);
}

/// Shapes tune independently: probing one shape class does not spend
/// the other's probe budget, and each converges on its own.
#[test]
fn shape_classes_tune_independently() {
    let sq = random_matrix::<f64>(48, 48, 31);
    let tall = random_matrix::<f64>(64, 32, 32);
    let svc: TunedQrService<f64> =
        TunedQrService::start_with(service_config(), tuner(&[4, 8, 16], None));
    for _ in 0..3 {
        let (_, _, p1) = svc.factor(&sq).unwrap();
        assert!(matches!(p1, JobPlan::Probe { .. }));
        let (_, _, p2) = svc.factor(&tall).unwrap();
        assert!(matches!(p2, JobPlan::Probe { .. }));
    }
    assert!(svc.profile_for(48, 48).is_some(), "square shape fitted");
    assert!(svc.profile_for(64, 32).is_some(), "tall shape fitted");
    let (_, _, p1) = svc.factor(&sq).unwrap();
    let (_, _, p2) = svc.factor(&tall).unwrap();
    assert!(matches!(p1, JobPlan::Tuned { .. }));
    assert!(matches!(p2, JobPlan::Tuned { .. }));
    let stats = svc.shutdown();
    assert_eq!(stats.probe_jobs, 6);
    assert_eq!(stats.tuned_jobs, 2);
}
