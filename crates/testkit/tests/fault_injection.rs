//! Fault-injection suite: how the paper's schedules degrade when the
//! hardware misbehaves.
//!
//! Three layers are exercised: the discrete-event engine replaying
//! [`FaultPlan`]s (spikes, stalls, storms, transient kernel failures),
//! the Alg. 2 main-device selection re-run against persistently degraded
//! profiles, and the Alg. 3 device-count model under the same
//! degradation. In every case the assertion is *graceful degradation*:
//! selections stay valid, makespans move monotonically with fault
//! magnitude, and no fault ever deadlocks or loses work.

use tileqr_dag::{EliminationOrder, TaskGraph};
use tileqr_sched::assign::assign_tasks;
use tileqr_sched::device_count::select_device_count;
use tileqr_sched::main_select::select_main_device;
use tileqr_sched::Distribution;
use tileqr_sim::engine::{simulate, simulate_with_faults};
use tileqr_sim::profiles;
use tileqr_sim::{DeviceId, FaultPlan, Link, Platform, SimConfig};

fn testbed_assignment(g: &TaskGraph, platform: &Platform) -> Vec<DeviceId> {
    let main = select_main_device(platform, g.tile_rows(), g.tile_cols()).device;
    let devices: Vec<DeviceId> = (0..platform.num_devices()).collect();
    let dist = Distribution::build(
        platform,
        main,
        &devices,
        tileqr_sched::DistributionStrategy::GuideArray,
    );
    assign_tasks(g, &dist, tileqr_sched::MainDevicePolicy::Auto)
}

fn degraded_testbed(slow_device: usize, factor: f64, tile_size: usize) -> Platform {
    let mut devices = vec![
        profiles::gtx580(),
        profiles::gtx680(),
        profiles::gtx680(),
        profiles::cpu_i7_3820(),
    ];
    devices[slow_device] = devices[slow_device].slowed(factor);
    Platform::new(
        devices,
        Link::pcie2_x16(),
        SimConfig {
            tile_size,
            elem_bytes: 4,
        },
    )
}

#[test]
fn device_slowdown_degrades_makespan_monotonically() {
    let g = TaskGraph::build(8, 8, EliminationOrder::FlatTs);
    let platform = profiles::paper_testbed(16);
    let assignment = testbed_assignment(&g, &platform);
    let clean = simulate(&g, &platform, &assignment).makespan_us;
    let mut prev = clean;
    for slow in [2.0, 4.0, 16.0] {
        // Spike every device the whole run: strictly worse than before.
        let mut plan = FaultPlan::none();
        for d in 0..platform.num_devices() {
            plan = plan.with_device_slowdown(d, 0.0, f64::MAX, slow);
        }
        let s = simulate_with_faults(&g, &platform, &assignment, &plan);
        assert!(s.makespan_us > prev, "slowdown {slow} not monotone");
        assert!(
            s.makespan_us <= clean * slow + 1e-6,
            "uniform slowdown bounded by the factor itself"
        );
        prev = s.makespan_us;
    }
}

#[test]
fn link_faults_degrade_predictably() {
    let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
    let platform = profiles::paper_testbed(16);
    let assignment = testbed_assignment(&g, &platform);
    let clean = simulate(&g, &platform, &assignment);
    assert!(
        clean.transfer_count > 0,
        "multi-device run must communicate"
    );

    // A stall window delays but never drops transfers.
    let stalled = simulate_with_faults(
        &g,
        &platform,
        &assignment,
        &FaultPlan::none().with_link_stall(0.0, 10_000.0),
    );
    assert!(stalled.makespan_us > clean.makespan_us);
    assert_eq!(stalled.bytes_transferred, clean.bytes_transferred);
    assert_eq!(stalled.transfer_count, clean.transfer_count);

    // Storm cost grows with per-transfer latency.
    let mut prev = clean.bus_busy_us;
    for extra in [10.0, 100.0, 1000.0] {
        let s = simulate_with_faults(
            &g,
            &platform,
            &assignment,
            &FaultPlan::none().with_link_storm(0.0, f64::MAX, extra),
        );
        assert!(s.bus_busy_us > prev, "storm {extra} not monotone");
        prev = s.bus_busy_us;
    }
}

#[test]
fn transient_kernel_failures_conserve_work() {
    let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
    let platform = profiles::paper_testbed(16);
    let assignment = testbed_assignment(&g, &platform);
    let clean = simulate(&g, &platform, &assignment);

    let mut plan = FaultPlan::none();
    let mut injected = 0;
    for t in (0..g.len()).step_by(7) {
        plan = plan.with_kernel_failures(t, 1 + t % 2);
        injected += 1 + t % 2;
    }
    let s = simulate_with_faults(&g, &platform, &assignment, &plan);
    assert_eq!(s.retry_count as usize, injected);
    let done: u64 = s.tasks_per_device.iter().sum();
    assert_eq!(done as usize, g.len(), "every task still commits once");
    assert!(s.makespan_us >= clean.makespan_us);
    assert!(s.total_compute_us() > clean.total_compute_us());
}

#[test]
fn alg2_selection_shifts_off_a_degraded_main_device() {
    let b = 16;
    let fresh = profiles::paper_testbed(b);
    let baseline = select_main_device(&fresh, 16, 16);
    assert_eq!(baseline.device, 0, "paper picks the GTX580 when healthy");

    // Slow the GTX580's kernels far down: it can no longer keep the T/E
    // chain ahead of the others' updates, so Alg. 2 must abandon it.
    let degraded = degraded_testbed(0, 64.0, b);
    let sel = select_main_device(&degraded, 16, 16);
    assert_ne!(sel.device, 0, "degraded device kept main duty");
    assert!(sel.device < degraded.num_devices());
    assert!(
        sel.candidates.is_empty() || sel.candidates.contains(&sel.device),
        "selection must come from the candidate set when one exists"
    );
}

#[test]
fn alg2_selection_remains_valid_across_degradation_levels() {
    let b = 16;
    for slow_device in 0..4 {
        for factor in [1.0, 2.0, 8.0, 32.0] {
            let platform = degraded_testbed(slow_device, factor, b);
            let sel = select_main_device(&platform, 12, 12);
            assert!(sel.device < platform.num_devices());
            assert!(
                sel.candidates.is_empty() || sel.candidates.contains(&sel.device),
                "device {slow_device} x{factor}: invalid selection"
            );
        }
    }
}

#[test]
fn alg3_choice_stays_argmin_under_degradation() {
    let b = 16;
    for factor in [1.0, 4.0, 16.0] {
        let platform = degraded_testbed(1, factor, b);
        let main = select_main_device(&platform, 32, 32).device;
        let sel = select_device_count(&platform, main, 32, 32);
        let chosen = sel.predictions[sel.p - 1].total_us();
        for pred in &sel.predictions {
            assert!(
                chosen <= pred.total_us(),
                "x{factor}: p={} scores {} but chose p={} at {}",
                pred.p,
                pred.total_us(),
                sel.p,
                chosen
            );
        }
        assert_eq!(sel.devices.len(), sel.p);
        assert_eq!(sel.devices[0], main, "main device always participates");
    }
}

#[test]
fn alg3_predictions_worsen_as_participants_degrade() {
    // Degrading a *participating* device must not make the model predict
    // a faster run for the prefix containing it.
    let b = 16;
    let healthy = profiles::paper_testbed(b);
    let main = select_main_device(&healthy, 24, 24).device;
    let healthy_sel = select_device_count(&healthy, main, 24, 24);

    let degraded = degraded_testbed(1, 8.0, b);
    let degraded_sel = select_device_count(&degraded, main, 24, 24);
    // Compare predictions at equal p where device 1 participates.
    for (h, d) in healthy_sel
        .predictions
        .iter()
        .zip(&degraded_sel.predictions)
    {
        if d.devices.contains(&1) && h.devices == d.devices {
            assert!(
                d.total_us() >= h.total_us() - 1e-9,
                "p={}: degradation predicted a speedup",
                d.p
            );
        }
    }
}

#[test]
fn fault_runs_replay_bit_exactly() {
    let g = TaskGraph::build(7, 7, EliminationOrder::FlatTs);
    let platform = profiles::paper_testbed(16);
    let assignment = testbed_assignment(&g, &platform);
    let plan = FaultPlan::none()
        .with_device_slowdown(0, 500.0, 2500.0, 3.0)
        .with_link_stall(1000.0, 1800.0)
        .with_link_storm(0.0, 4000.0, 15.0)
        .with_kernel_failures(3, 2);
    let a = simulate_with_faults(&g, &platform, &assignment, &plan);
    let b = simulate_with_faults(&g, &platform, &assignment, &plan);
    assert_eq!(a, b);
    assert_eq!(a.retry_count, 2);
}
