//! Tentpole suite: seeded + adversarial schedule exploration.
//!
//! The runtime's correctness claim is that *every* legal interleaving of
//! the task DAG commits a bit-identical factorization. These tests drive
//! well over a hundred distinct interleavings per schedule policy through
//! the virtual explorer, plus adversarial dispatch orders through the
//! real thread pool, and hold each one to bit-identity against the
//! sequential factorization.

use std::collections::HashSet;

use tileqr_dag::{EliminationOrder, TaskGraph};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::gen::random_matrix;
use tileqr_matrix::TiledMatrix;
use tileqr_runtime::{parallel_factor_ordered, DispatchOrder, PoolConfig, SchedulePolicy};
use tileqr_testkit::explorer::{
    assert_bit_identical, explore, explore_vs_sequential, ExploreStrategy,
};
use tileqr_testkit::{policies_under_test, workers_under_test};

const N: usize = 32;
const B: usize = 8;

fn sequential_reference(a: &tileqr_matrix::Matrix<f64>) -> (FactorState<f64>, TaskGraph) {
    let tiled = TiledMatrix::from_matrix(a, B).unwrap();
    let graph = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let mut state = FactorState::new(tiled);
    state.run_all(&graph).unwrap();
    (state, graph)
}

#[test]
fn hundred_plus_distinct_seeded_interleavings_per_policy() {
    let a = random_matrix::<f64>(N, N, 4242);
    let (reference, graph) = sequential_reference(&a);
    let tiled = TiledMatrix::from_matrix(&a, B).unwrap();

    for policy in policies_under_test() {
        let mut fingerprints = HashSet::new();
        let mut seed = 0u64;
        // Distinct interleavings, not merely distinct seeds: keep drawing
        // until 100 unique completion orders have been exercised.
        while fingerprints.len() < 100 {
            assert!(seed < 400, "schedule space collapsed for {policy:?}");
            let exp = explore(
                tiled.clone(),
                &graph,
                4,
                ExploreStrategy::Seeded { seed, policy },
            )
            .unwrap();
            fingerprints.insert(exp.fingerprint());
            assert_bit_identical(&exp.state, &reference);
            seed += 1;
        }
    }
}

#[test]
fn adversarial_strategies_are_bit_identical_across_worker_counts() {
    let a = random_matrix::<f64>(N, N, 99);
    for workers in workers_under_test() {
        for strategy in [
            ExploreStrategy::ReversePriority,
            ExploreStrategy::AntiAffinity,
            ExploreStrategy::LifoStarvation,
        ] {
            let (exp, reference) =
                explore_vs_sequential(&a, B, EliminationOrder::FlatTs, workers, strategy).unwrap();
            assert_bit_identical(&exp.state, &reference);
        }
    }
}

#[test]
fn exploration_covers_binary_tree_elimination_too() {
    let a = random_matrix::<f64>(48, 24, 17);
    for order in [EliminationOrder::FlatTt, EliminationOrder::BinaryTt] {
        for seed in 0..25 {
            let strategy = ExploreStrategy::Seeded {
                seed,
                policy: SchedulePolicy::CriticalPath,
            };
            let (exp, reference) = explore_vs_sequential(&a, B, order, 3, strategy).unwrap();
            assert_bit_identical(&exp.state, &reference);
        }
    }
}

#[test]
fn real_pool_honors_adversarial_dispatch_orders() {
    let a = random_matrix::<f64>(N, N, 1234);
    let (reference, graph) = sequential_reference(&a);
    let expect_r = reference.r_matrix();

    for workers in workers_under_test() {
        let orders = [
            DispatchOrder::Lifo,
            DispatchOrder::ReversePriority,
            DispatchOrder::Seeded(workers as u64),
            DispatchOrder::Policy(SchedulePolicy::Fifo),
            DispatchOrder::Policy(SchedulePolicy::CriticalPath),
        ];
        for order in orders {
            let tiled = TiledMatrix::from_matrix(&a, B).unwrap();
            let (state, report) = parallel_factor_ordered(
                FactorState::new(tiled),
                &graph,
                PoolConfig {
                    workers,
                    policy: order.base_policy(),
                    ..PoolConfig::default()
                },
                order,
            )
            .unwrap();
            let run: u64 = report.tasks_per_worker.iter().sum();
            assert_eq!(run as usize, graph.len());
            assert_eq!(
                state.r_matrix(),
                expect_r,
                "order {} diverged at {workers} workers",
                order.name()
            );
        }
    }
}

#[test]
fn pool_seeded_orders_sample_many_interleavings_safely() {
    // Spray seeds through the real pool: no deadlock, no divergence.
    let a = random_matrix::<f64>(N, N, 31);
    let (reference, graph) = sequential_reference(&a);
    let expect_r = reference.r_matrix();
    for seed in 0..20 {
        let tiled = TiledMatrix::from_matrix(&a, B).unwrap();
        let (state, _) = parallel_factor_ordered(
            FactorState::new(tiled),
            &graph,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::Fifo,
                ..PoolConfig::default()
            },
            DispatchOrder::Seeded(seed),
        )
        .unwrap();
        assert_eq!(state.r_matrix(), expect_r, "seed {seed} diverged");
    }
}
