//! Tree-structure property suite: every member of the elimination-tree
//! zoo, over grid geometries up to 12 x 12, held to the structural
//! invariants tiled QR correctness rests on —
//!
//! 1. every subdiagonal tile is eliminated exactly once,
//! 2. dependency edges are respected in topological replay and cover
//!    every data hazard the tasks' read/write sets induce,
//! 3. `dag::counts::tree_counts` predicts the exact per-kernel task
//!    counts of the built DAG,
//! 4. unit-weight critical paths on `p x 1` panels match the
//!    Bouwmeester-style closed forms per tree (flat `p`, binary
//!    `1 + ceil(log2 p)`, greedy likewise, Fibonacci in between), and
//!    the TSQR fast path beats the flat chain.

use std::collections::HashMap;

use tileqr_dag::counts::{class_totals, tree_counts};
use tileqr_dag::critical_path::critical_path_length;
use tileqr_dag::topo::{is_acyclic, topological_order};
use tileqr_dag::{EliminationTree, TaskGraph, TaskKind};

/// Every tree the suite sweeps: the geometry-generic zoo plus TSQR
/// domains (valid on any grid via the plateau fallback).
fn all_trees() -> Vec<EliminationTree> {
    let mut trees = EliminationTree::zoo();
    trees.push(EliminationTree::Tsqr(2));
    trees.push(EliminationTree::Tsqr(4));
    trees
}

/// Geometry grid: tall, square, and wide tile shapes up to 12 x 12.
fn geometries() -> Vec<(usize, usize)> {
    vec![
        (1, 1),
        (2, 1),
        (12, 1),
        (7, 2),
        (12, 2),
        (4, 4),
        (9, 5),
        (12, 12),
        (3, 8),
        (2, 12),
    ]
}

#[test]
fn every_subdiagonal_tile_eliminated_exactly_once() {
    for tree in all_trees() {
        for (mt, nt) in geometries() {
            let g = TaskGraph::build_tree(mt, nt, tree);
            let mut eliminated: HashMap<(usize, usize), usize> = HashMap::new();
            for t in g.tasks() {
                if let TaskKind::Tsqrt { i, k, .. } | TaskKind::Ttqrt { i, k, .. } = *t {
                    *eliminated.entry((i, k)).or_default() += 1;
                }
            }
            let kmax = mt.min(nt);
            for k in 0..kmax {
                for i in (k + 1)..mt {
                    assert_eq!(
                        eliminated.get(&(i, k)).copied().unwrap_or(0),
                        1,
                        "{tree} {mt}x{nt}: tile ({i},{k}) elimination count"
                    );
                }
            }
            let expected: usize = (0..kmax).map(|k| mt - k - 1).sum();
            assert_eq!(
                eliminated.values().sum::<usize>(),
                expected,
                "{tree} {mt}x{nt}"
            );
        }
    }
}

#[test]
fn topological_replay_respects_every_edge() {
    for tree in all_trees() {
        for (mt, nt) in geometries() {
            let g = TaskGraph::build_tree(mt, nt, tree);
            assert!(is_acyclic(&g), "{tree} {mt}x{nt}: cycle");
            // Program order must itself be a valid schedule, and the
            // Kahn order must agree edge-wise.
            for id in 0..g.len() {
                for &p in g.preds(id) {
                    assert!(p < id, "{tree} {mt}x{nt}: edge {p}->{id} points backward");
                }
            }
            let order = topological_order(&g);
            let mut pos = vec![0usize; g.len()];
            for (rank, &t) in order.iter().enumerate() {
                pos[t] = rank;
            }
            for id in 0..g.len() {
                for &s in g.succs(id) {
                    assert!(
                        pos[id] < pos[s],
                        "{tree} {mt}x{nt}: replay ran {s} before its dep {id}"
                    );
                }
            }
        }
    }
}

#[test]
fn edges_cover_every_data_hazard() {
    // Any two tasks touching a common tile, at least one writing, must be
    // ordered by a dependency path — otherwise some interleaving races.
    for tree in all_trees() {
        for (mt, nt) in [(6, 1), (5, 3), (4, 4), (8, 2)] {
            let g = TaskGraph::build_tree(mt, nt, tree);
            let n = g.len();
            // reach[i] = bitset of tasks reachable from i (ids > i only,
            // since edges always point forward).
            let words = n.div_ceil(64);
            let mut reach = vec![vec![0u64; words]; n];
            for i in (0..n).rev() {
                for &s in g.succs(i) {
                    reach[i][s / 64] |= 1 << (s % 64);
                    let (head, tail) = reach.split_at_mut(s);
                    for (w, r) in head[i].iter_mut().zip(&tail[0]) {
                        *w |= r;
                    }
                }
            }
            let sets: Vec<_> = g.tasks().iter().map(|t| (t.reads(), t.writes())).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    let hazard = sets[i]
                        .1
                        .iter()
                        .any(|c| sets[j].0.contains(c) || sets[j].1.contains(c))
                        || sets[j].1.iter().any(|c| sets[i].0.contains(c));
                    if hazard {
                        assert!(
                            reach[i][j / 64] & (1 << (j % 64)) != 0,
                            "{tree} {mt}x{nt}: tasks {i} and {j} share a tile \
                             with a write but have no dependency path"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn tree_counts_are_exact_on_the_geometry_grid() {
    for tree in all_trees() {
        for (mt, nt) in geometries() {
            let g = TaskGraph::build_tree(mt, nt, tree);
            let c = tree_counts(mt, nt, tree);
            let count = |f: fn(&TaskKind) -> bool| g.tasks().iter().filter(|t| f(t)).count();
            assert_eq!(
                count(|t| matches!(t, TaskKind::Geqrt { .. })),
                c.geqrt,
                "{tree} {mt}x{nt}"
            );
            assert_eq!(
                count(|t| matches!(t, TaskKind::Unmqr { .. })),
                c.unmqr,
                "{tree} {mt}x{nt}"
            );
            assert_eq!(
                count(|t| matches!(t, TaskKind::Tsqrt { .. })),
                c.tsqrt,
                "{tree} {mt}x{nt}"
            );
            assert_eq!(
                count(|t| matches!(t, TaskKind::Ttqrt { .. })),
                c.ttqrt,
                "{tree} {mt}x{nt}"
            );
            assert_eq!(
                count(|t| matches!(t, TaskKind::Tsmqr { .. })),
                c.tsmqr,
                "{tree} {mt}x{nt}"
            );
            assert_eq!(
                count(|t| matches!(t, TaskKind::Ttmqr { .. })),
                c.ttmqr,
                "{tree} {mt}x{nt}"
            );
            assert_eq!(c.total(), g.len(), "{tree} {mt}x{nt}");
            assert_eq!(c.class_totals(), class_totals(&g), "{tree} {mt}x{nt}");
        }
    }
}

/// Unit-weight critical path of a tree's DAG on a `p x 1` grid.
fn unit_cp(tree: EliminationTree, p: usize) -> usize {
    let g = TaskGraph::build_tree(p, 1, tree);
    critical_path_length(&g, |_| 1.0).round() as usize
}

#[test]
fn p_by_one_critical_paths_match_closed_forms() {
    // Independent references, not `unit_depth` itself: the flat chain is
    // GEQRT + (p-1) serial merges; the balanced trees replace the chain
    // with ceil(log2 p) rounds.
    let log2c = |p: usize| (usize::BITS - (p - 1).leading_zeros()) as usize;
    for p in [1usize, 2, 3, 4, 6, 8, 12, 16, 32] {
        assert_eq!(unit_cp(EliminationTree::Flat, p), p, "flat p={p}");
        assert_eq!(unit_cp(EliminationTree::FlatTt, p), p, "flat-tt p={p}");
        let expect_bal = if p == 1 { 1 } else { 1 + log2c(p) };
        assert_eq!(
            unit_cp(EliminationTree::Binary, p),
            expect_bal,
            "binary p={p}"
        );
        assert_eq!(
            unit_cp(EliminationTree::Greedy, p),
            expect_bal,
            "greedy p={p}"
        );
        // Fibonacci sits between the balanced trees and the flat chain.
        let fib = unit_cp(EliminationTree::Fibonacci, p);
        assert!(expect_bal <= fib && fib <= p, "fibonacci p={p}: {fib}");
        // Every tree's DAG critical path equals its merge-schedule depth.
        for tree in all_trees() {
            assert_eq!(unit_cp(tree, p), tree.unit_depth(p), "{tree} p={p}");
        }
    }
}

#[test]
fn tsqr_fast_path_shortens_the_critical_path() {
    for p in [4usize, 8, 16, 32] {
        let d = EliminationTree::tsqr_domain(p);
        let tsqr = TaskGraph::build_tsqr(p, 1, d);
        let flat = TaskGraph::build_tree(p, 1, EliminationTree::Flat);
        let cp_tsqr = critical_path_length(&tsqr, |_| 1.0);
        let cp_flat = critical_path_length(&flat, |_| 1.0);
        assert!(
            cp_tsqr < cp_flat,
            "p={p}: tsqr cp {cp_tsqr} !< flat cp {cp_flat}"
        );
    }
}
