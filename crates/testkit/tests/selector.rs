//! Selector golden tests: the geometry-aware tree auto-selection of
//! `tileqr_sched::select` against independently computed sim minima.
//!
//! A synthetic [`DeviceProfile`] fixes the per-kernel timing curves, so
//! the "measured" best tree for a geometry is the makespan minimum over
//! the candidate zoo computed *directly* by the discrete-event engine in
//! this test — the selector must pick it (or land within 10% of it),
//! deterministically, across tall-skinny, square, and wide tile grids.

use tileqr::prelude::*;
use tileqr_dag::{EliminationTree, TaskGraph, TreePolicy};
use tileqr_matrix::gen::random_matrix;
use tileqr_obs::calibrate::{fit_step_times, fitted_profile, KernelSample};
use tileqr_sched::select::{
    candidate_trees, choose_tree, predict_makespan_us, select_tree, tree_selector,
};
use tileqr_sim::{
    engine, DeviceKind, DeviceProfile, KernelClass, KernelTiming, Link, Platform, SimConfig,
    StepTimes,
};

fn synthetic_profile(cores: usize) -> DeviceProfile {
    let t = |c0: f64, c2: f64| KernelTiming { c0, c1: 0.0, c2 };
    DeviceProfile {
        name: format!("golden-{cores}c"),
        kind: DeviceKind::Cpu,
        cores,
        times: StepTimes {
            triangulation: t(2.0, 0.004),
            elimination: t(2.0, 0.004),
            update: t(2.0, 0.006),
        },
    }
}

/// Independent oracle: makespan of `tree` on the geometry, computed by
/// driving the sim engine directly (no selector code involved).
fn measured_makespan(
    profile: &DeviceProfile,
    mt: usize,
    nt: usize,
    b: usize,
    tree: EliminationTree,
) -> f64 {
    let g = TaskGraph::build_tree(mt, nt, tree);
    let platform = Platform::new(
        vec![profile.clone()],
        Link::pcie2_x16(),
        SimConfig {
            tile_size: b,
            elem_bytes: 8,
        },
    );
    engine::simulate(&g, &platform, &vec![0; g.len()]).makespan_us
}

/// Geometry grid from the issue: tall-skinny `p x 1..2`, square, wide.
fn geometry_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (16, 1, 16),
        (32, 1, 16),
        (12, 2, 16),
        (8, 8, 16),
        (12, 12, 8),
        (2, 8, 16),
        (4, 12, 8),
    ]
}

#[test]
fn predicted_winner_matches_measured_min_tree() {
    for cores in [1usize, 4, 16] {
        let profile = synthetic_profile(cores);
        for (mt, nt, b) in geometry_grid() {
            let sel = select_tree(&profile, mt, nt, b);
            let measured_best = candidate_trees(mt, nt)
                .into_iter()
                .map(|t| (measured_makespan(&profile, mt, nt, b, t), t))
                .min_by(|x, y| x.0.total_cmp(&y.0))
                .unwrap();
            // The selector's pick must be the measured minimum, or within
            // 10% of it (ties between trees with identical DAG shapes are
            // broken by task count + label, both fine).
            let picked = measured_makespan(&profile, mt, nt, b, sel.best.tree);
            assert!(
                picked <= measured_best.0 * 1.10,
                "cores={cores} {mt}x{nt}@b{b}: picked {} at {picked}us, \
                 measured best {} at {}us",
                sel.best.tree,
                measured_best.1,
                measured_best.0
            );
        }
    }
}

#[test]
fn prediction_is_deterministic_per_tree_and_profile() {
    let profile = synthetic_profile(4);
    for (mt, nt, b) in geometry_grid() {
        for tree in candidate_trees(mt, nt) {
            let a = predict_makespan_us(&profile, mt, nt, b, tree);
            let b2 = predict_makespan_us(&profile, mt, nt, b, tree);
            assert_eq!(a.to_bits(), b2.to_bits(), "{tree} {mt}x{nt}");
        }
        let s1 = select_tree(&profile, mt, nt, b);
        let s2 = select_tree(&profile, mt, nt, b);
        assert_eq!(s1, s2, "ranking must be reproducible at {mt}x{nt}");
    }
}

#[test]
fn serial_and_parallel_profiles_disagree_as_theory_predicts() {
    // One core: minimal total work wins (flat). Sixteen cores on a tall
    // panel: a log-depth tree wins. The selector must see the crossover.
    let tall = (32usize, 1usize, 16usize);
    let serial = select_tree(&synthetic_profile(1), tall.0, tall.1, tall.2);
    assert_eq!(
        serial.best.tree,
        EliminationTree::Flat,
        "{:?}",
        serial.ranked
    );
    let parallel = select_tree(&synthetic_profile(16), tall.0, tall.1, tall.2);
    assert_ne!(
        parallel.best.tree,
        EliminationTree::Flat,
        "{:?}",
        parallel.ranked
    );
    assert!(parallel.best.unit_depth_hint() < tall.0, "log-depth winner");
}

/// Helper extension so the crossover test reads cleanly.
trait DepthHint {
    fn unit_depth_hint(&self) -> usize;
}
impl DepthHint for tileqr_sched::select::TreeScore {
    fn unit_depth_hint(&self) -> usize {
        self.tree.unit_depth(self.grid.0)
    }
}

#[test]
fn auto_policy_degrades_without_a_calibration_profile() {
    // No profile anywhere: core options resolve Auto via the geometry
    // heuristic, and the factorization still passes end to end.
    assert_eq!(
        choose_tree(None, TreePolicy::Auto, 16, 1, 16),
        EliminationTree::default_for(16, 1)
    );
    let a = random_matrix::<f64>(96, 16, 0x51);
    let f = TiledQr::factor(&a, &QrOptions::new().tile_size(16).tree(TreePolicy::Auto)).unwrap();
    assert!(matches!(f.graph().tree(), EliminationTree::Tsqr(_)));
    let q = f.q().unwrap();
    let rep = tileqr_testkit::oracle::verify_qr(&a, &q, &f.r(), None).unwrap();
    assert!(rep.passes(), "{rep:?}");
}

#[test]
fn calibrated_pipeline_feeds_the_service_selector() {
    // obs::calibrate -> DeviceProfile -> sched::select::tree_selector ->
    // QrService per-job planning: the full Auto path, end to end. The
    // samples are synthetic but follow a c0 + c2*b^3 law, so the fit is
    // exact and the resulting profile deterministic.
    let mut samples = Vec::new();
    for class in [
        KernelClass::Triangulation,
        KernelClass::Elimination,
        KernelClass::Update,
    ] {
        for b in [8usize, 16, 32] {
            let b3 = (b as f64).powi(3);
            samples.push(KernelSample {
                class,
                tile_size: b,
                duration_us: 2.0 + 0.004 * b3,
            });
        }
    }
    let times = fit_step_times(&samples).expect("three tile sizes per class fit");
    let profile = fitted_profile("calibrated", DeviceKind::Cpu, 8, times);
    let expected = select_tree(&profile, 12, 2, 8).best.tree;

    let service = QrService::<f64>::start_with_tree_selector(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        tree_selector(profile),
    );
    let a = random_matrix::<f64>(96, 16, 0x52);
    let h = service
        .submit(JobSpec::factor(a).tile_size(8).tree(TreePolicy::Auto))
        .unwrap();
    let result = h.wait().unwrap();
    let tileqr::runtime::JobOutput::Factored(f) = result.output else {
        panic!("expected factored output");
    };
    assert_eq!(
        f.graph.tree(),
        expected,
        "service must plan with the calibrated selector"
    );
    service.shutdown();
}
