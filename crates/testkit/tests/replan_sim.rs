//! Mid-run device dropout and re-planning, end to end in the simulator.
//!
//! The contract under test: when a [`FaultPlan`] kills a participating
//! device mid-run, the adaptive simulator re-runs Algorithms 2–4 over the
//! survivors at the next panel boundary, migrates the dead device's
//! columns, and finishes — with a makespan strictly better than the
//! no-replan baseline, which (by construction of device death) is
//! infinite whenever a dead device still owns columns. A dead device that
//! owns nothing is ignored silently: re-planning for a corpse nobody uses
//! would only churn the schedule.

use tileqr_sched::distribution::DistributionStrategy;
use tileqr_sched::fastsim::simulate_fast;
use tileqr_sched::plan::{plan, plan_degraded, MainDevicePolicy};
use tileqr_sched::replan::{simulate_adaptive, ReplanPolicy};
use tileqr_sched::HeteroPlan;
use tileqr_sim::{profiles, DeviceId, FaultPlan, Platform};

fn auto_plan(nt: usize) -> (Platform, HeteroPlan) {
    let p = profiles::paper_testbed(16);
    let plan = plan(&p, nt, nt);
    (p, plan)
}

/// Devices the schedule actually depends on: column owners plus the main
/// (T/E) device.
fn active_devices(plan: &HeteroPlan, nt: usize) -> Vec<DeviceId> {
    let mut active: Vec<DeviceId> = (0..nt).map(|j| plan.distribution.owner(j)).collect();
    active.push(plan.main);
    active.sort_unstable();
    active.dedup();
    active
}

#[test]
fn dropout_of_each_active_device_triggers_replan_that_beats_baseline() {
    // nt = 200 is the smallest square grid where Alg. 3 picks all three
    // GPUs on the paper testbed, so every dropout case is exercised.
    let nt = 200;
    let (p, plan) = auto_plan(nt);
    let healthy = simulate_fast(&p, &plan, nt, nt).makespan_us;
    let active = active_devices(&plan, nt);
    assert!(active.len() >= 2, "testbed plan must be multi-device");

    for &dead in &active {
        let faults = FaultPlan::none().with_device_death(dead, healthy * 0.35);
        let adaptive = simulate_adaptive(&p, &plan, nt, nt, &faults, &ReplanPolicy::default());
        let baseline = simulate_adaptive(&p, &plan, nt, nt, &faults, &ReplanPolicy::disabled());

        assert!(
            adaptive.stats.replan_count >= 1,
            "device {dead}: dropout must trigger a re-plan"
        );
        assert!(
            adaptive.stats.makespan_us.is_finite(),
            "device {dead}: adaptive run must finish"
        );
        assert!(
            baseline.stats.makespan_us.is_infinite(),
            "device {dead}: a dead active device stalls the baseline forever"
        );
        assert!(adaptive.stats.makespan_us < baseline.stats.makespan_us);

        // The re-selected plan must exclude the corpse everywhere.
        let ev = adaptive.replans.last().unwrap();
        assert!(ev.excluded.contains(&dead));
        assert_ne!(ev.main, dead, "dead device re-selected as main");
        assert!(!ev.participants.contains(&dead));
        assert!(adaptive.plan.excluded.contains(&dead));
        assert!(adaptive
            .plan
            .distribution
            .guide()
            .iter()
            .all(|&d| d != dead));
    }
}

#[test]
fn dead_bystander_devices_are_ignored_silently() {
    // Small grids plan onto a single GPU, leaving three bystanders.
    let nt = 40;
    let (p, plan) = auto_plan(nt);
    let active = active_devices(&plan, nt);
    let bystanders: Vec<DeviceId> = (0..p.num_devices())
        .filter(|d| !active.contains(d))
        .collect();
    let healthy = simulate_fast(&p, &plan, nt, nt);
    for dead in bystanders {
        let faults = FaultPlan::none().with_device_death(dead, 0.0);
        let run = simulate_adaptive(&p, &plan, nt, nt, &faults, &ReplanPolicy::default());
        assert_eq!(run.stats.replan_count, 0, "bystander {dead} must not churn");
        assert_eq!(run.stats, healthy, "bystander death is invisible");
    }
}

#[test]
fn migration_cost_is_charged_and_bounded() {
    let nt = 150;
    let (p, plan) = auto_plan(nt);
    let healthy = simulate_fast(&p, &plan, nt, nt);
    // Kill a non-main active device (an update workhorse owning columns).
    let dead = *active_devices(&plan, nt)
        .iter()
        .find(|&&d| d != plan.main)
        .expect("multi-device plan");
    let faults = FaultPlan::none().with_device_death(dead, healthy.makespan_us * 0.4);
    let run = simulate_adaptive(&p, &plan, nt, nt, &faults, &ReplanPolicy::default());

    assert!(run.stats.migrated_bytes > 0, "column moves must be charged");
    assert!(
        run.stats.migrated_bytes <= run.stats.bytes_transferred,
        "migration is a subset of bus traffic"
    );
    let event_total: u64 = run.replans.iter().map(|e| e.migrated_bytes).sum();
    assert_eq!(event_total, run.stats.migrated_bytes);
}

#[test]
fn replan_makespan_degrades_gracefully_with_death_time() {
    // The later the device dies, the less work needs re-distributing;
    // dying later must never be meaningfully worse than dying earlier,
    // and losing a device must never beat the healthy run by more than
    // schedule noise (the re-plan runs Alg. 3 afresh, which can shave a
    // few percent off a predictor-guided initial choice).
    let nt = 150;
    let (p, plan) = auto_plan(nt);
    let healthy = simulate_fast(&p, &plan, nt, nt).makespan_us;
    let dead = *active_devices(&plan, nt)
        .iter()
        .find(|&&d| d != plan.main)
        .expect("multi-device plan");
    let mut prev = f64::INFINITY;
    for frac in [0.1, 0.5, 0.9] {
        let faults = FaultPlan::none().with_device_death(dead, healthy * frac);
        let run = simulate_adaptive(&p, &plan, nt, nt, &faults, &ReplanPolicy::default());
        assert!(run.stats.makespan_us.is_finite());
        assert!(
            run.stats.makespan_us >= healthy * 0.9,
            "frac {frac}: losing a device cannot make the run much faster \
             ({} vs healthy {healthy})",
            run.stats.makespan_us
        );
        assert!(
            run.stats.makespan_us <= prev * 1.05,
            "dying later (frac {frac}) should not be much worse than dying earlier"
        );
        prev = run.stats.makespan_us;
    }
}

#[test]
fn degraded_planning_after_blacklist_matches_direct_plan_on_survivors() {
    // Re-planning with devices {0,2} dead must agree with planning from
    // scratch on the survivor platform modulo device numbering — the
    // exclusion path is a restriction, not a different algorithm.
    let p = profiles::paper_testbed(16);
    let degraded = plan_degraded(
        &p,
        100,
        100,
        MainDevicePolicy::Auto,
        DistributionStrategy::GuideArray,
        None,
        &[0, 2],
    );
    assert!(!degraded.participants.contains(&0));
    assert!(!degraded.participants.contains(&2));
    // Survivors are device 1 (GTX680) and 3 (CPU): the GPU must be main.
    assert_eq!(degraded.main, 1);
    let stats = simulate_fast(&p, &degraded, 100, 100);
    assert!(stats.makespan_us.is_finite() && stats.makespan_us > 0.0);
}
