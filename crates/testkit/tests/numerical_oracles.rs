//! Numerical-oracle suite: the tiled factorization against
//! condition-scaled residual bounds over an adversarial matrix family.
//!
//! Every matrix below is factored through the full stack (sequential and
//! parallel runtime) and held to the oracles of
//! [`tileqr_testkit::oracle`]: backward-stability residuals scaled by a
//! logarithmic condition allowance, plus a differential `|R|` comparison
//! against the reference Householder path with a `κ`-linear budget.

use tileqr::{QrOptions, TiledQr};
use tileqr_matrix::gen::{
    graded, hilbert, hilbert_like, near_rank_deficient, scaled_random, wide_dynamic_range,
};
use tileqr_matrix::Matrix;
use tileqr_testkit::oracle::{condition_scaled_tolerance, verify_qr};
use tileqr_testkit::workers_under_test;

/// The adversarial family: name, matrix, and an optional externally-known
/// condition estimate for the cases where the R-based power iteration is
/// unreliable (numerically singular R).
fn adversarial_family() -> Vec<(&'static str, Matrix<f64>, Option<f64>)> {
    vec![
        ("graded-1e-2", graded(48, 48, 1e-2, 11), None),
        ("graded-tall", graded(64, 32, 1e-1, 12), Some(1e8)),
        (
            "near-rank-deficient",
            near_rank_deficient(40, 40, 8, 1e-10, 13),
            Some(1e12),
        ),
        ("hilbert-12", hilbert(12), None),
        ("hilbert-like", hilbert_like(40, 40, 1.0, 14), Some(1e16)),
        ("huge-scale", scaled_random(40, 40, 100, 15), None),
        ("tiny-scale", scaled_random(40, 40, -100, 16), None),
        ("wide-range", wide_dynamic_range(32, 32, 17), None),
    ]
}

fn factor(a: &Matrix<f64>, workers: usize) -> TiledQr<f64> {
    TiledQr::factor(a, &QrOptions::new().tile_size(8).workers(workers)).unwrap()
}

#[test]
fn adversarial_family_passes_condition_scaled_oracles() {
    for (name, a, kappa_hint) in adversarial_family() {
        let f = factor(&a, 1);
        let kappa = kappa_hint.or_else(|| {
            f.condition_estimate()
                .ok()
                .map(|k: f64| if k.is_finite() { k } else { 1e16 })
        });
        let q = f.q().unwrap();
        let r = f.r();
        let rep = verify_qr(&a, &q, &r, kappa).unwrap();
        assert!(rep.passes(), "{name}: {rep:?}");
    }
}

#[test]
fn parallel_runs_match_oracles_at_every_worker_count() {
    for (name, a, kappa_hint) in adversarial_family() {
        let seq_r = factor(&a, 1).r();
        for workers in workers_under_test() {
            let f = factor(&a, workers);
            // Parallel execution is bit-identical, so the sequential
            // oracle verdict transfers wholesale; check the premise.
            assert_eq!(f.r(), seq_r, "{name} diverged at {workers} workers");
        }
        let _ = kappa_hint;
    }
}

#[test]
fn oracle_rejects_a_corrupted_factorization() {
    // The family must not pass vacuously: break one R and watch it fail.
    let a = graded::<f64>(32, 32, 1e-2, 21);
    let f = factor(&a, 1);
    let q = f.q().unwrap();
    let mut r = f.r();
    r[(4, 9)] += 1e-2 * r.max_abs();
    let rep = verify_qr(&a, &q, &r, Some(1e4)).unwrap();
    assert!(!rep.passes(), "corruption went unnoticed: {rep:?}");
}

#[test]
fn residuals_stay_condition_independent() {
    // Backward error must NOT grow with κ: the ill-conditioned members
    // keep roughly the same residual as a random well-conditioned one.
    let easy = tileqr_matrix::gen::random_matrix::<f64>(40, 40, 30);
    let fe = factor(&easy, 1);
    let easy_rep = verify_qr(&easy, &fe.q().unwrap(), &fe.r(), Some(100.0)).unwrap();

    let hard = hilbert::<f64>(12);
    let fh = factor(&hard, 1);
    let hard_rep = verify_qr(&hard, &fh.q().unwrap(), &fh.r(), Some(1e16)).unwrap();

    let base = condition_scaled_tolerance(40, 40, 1.0);
    assert!(easy_rep.report.residual < base);
    assert!(
        hard_rep.report.residual < base * 10.0,
        "residual should not track κ: {hard_rep:?}"
    );
}

#[test]
fn extreme_scales_factor_without_overflow() {
    for exp in [-120, -100, 100, 120] {
        let a = scaled_random::<f64>(24, 24, exp, (exp + 200) as u64);
        let f = factor(&a, 2);
        let r = f.r();
        assert!(r.all_finite(), "R overflowed at scale 1e{exp}");
        let q = f.q().unwrap();
        assert!(q.all_finite(), "Q overflowed at scale 1e{exp}");
        let rep = verify_qr(&a, &q, &r, None).unwrap();
        assert!(rep.passes(), "scale 1e{exp}: {rep:?}");
    }
}
