//! Per-kernel timing models.

use tileqr_dag::{StepClass, TaskKind};

/// The three timing curves of the paper's Fig. 4: triangulation (T),
/// elimination (E), and the updates (UT and UE, which the paper plots as a
/// single curve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// `GEQRT`.
    Triangulation,
    /// `TSQRT` / `TTQRT`.
    Elimination,
    /// `UNMQR` / `TSMQR` / `TTMQR` (one shared curve, as in Fig. 4).
    Update,
}

impl KernelClass {
    /// Map a DAG task to its timing curve.
    pub fn of(task: TaskKind) -> KernelClass {
        match task.class() {
            StepClass::Triangulation => KernelClass::Triangulation,
            StepClass::Elimination => KernelClass::Elimination,
            StepClass::UpdateTriangulation | StepClass::UpdateElimination => KernelClass::Update,
        }
    }
}

/// Kernel latency model `t(b) = c0 + c1·b² + c2·b³` microseconds for one
/// tile kernel at tile size `b`.
///
/// The cubic term tracks the `O(b³)` kernel flops, the quadratic term the
/// `O(b²)` memory traffic, and the constant the launch overhead (dominant
/// on GPUs at small tiles — visible as the flat left end of every Fig. 4
/// curve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Launch/setup overhead, microseconds.
    pub c0: f64,
    /// Memory-traffic coefficient, microseconds per `b²`.
    pub c1: f64,
    /// Arithmetic coefficient, microseconds per `b³`.
    pub c2: f64,
}

impl KernelTiming {
    /// Latency in microseconds of one tile kernel at tile size `b`.
    pub fn time_us(&self, b: usize) -> f64 {
        let b = b as f64;
        self.c0 + self.c1 * b * b + self.c2 * b * b * b
    }
}

/// The full per-device timing table (one curve per [`KernelClass`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTimes {
    /// Triangulation curve.
    pub triangulation: KernelTiming,
    /// Elimination curve.
    pub elimination: KernelTiming,
    /// Update curve (UT and UE).
    pub update: KernelTiming,
}

impl StepTimes {
    /// Latency of `class` at tile size `b`, microseconds.
    pub fn time_us(&self, class: KernelClass, b: usize) -> f64 {
        match class {
            KernelClass::Triangulation => self.triangulation.time_us(b),
            KernelClass::Elimination => self.elimination.time_us(b),
            KernelClass::Update => self.update.time_us(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_dominates_at_large_tiles() {
        let t = KernelTiming {
            c0: 20.0,
            c1: 0.02,
            c2: 0.019,
        };
        let r = t.time_us(56) / t.time_us(28);
        assert!(r > 6.0 && r < 8.5, "expected near-cubic growth, got {r}");
    }

    #[test]
    fn overhead_dominates_at_small_tiles() {
        let t = KernelTiming {
            c0: 20.0,
            c1: 0.02,
            c2: 0.019,
        };
        assert!(t.time_us(4) < 1.2 * t.c0);
    }

    #[test]
    fn class_mapping() {
        assert_eq!(
            KernelClass::of(TaskKind::Geqrt { i: 0, k: 0 }),
            KernelClass::Triangulation
        );
        assert_eq!(
            KernelClass::of(TaskKind::Tsqrt { p: 0, i: 1, k: 0 }),
            KernelClass::Elimination
        );
        assert_eq!(
            KernelClass::of(TaskKind::Ttqrt { p: 0, i: 1, k: 0 }),
            KernelClass::Elimination
        );
        assert_eq!(
            KernelClass::of(TaskKind::Unmqr { i: 0, j: 1, k: 0 }),
            KernelClass::Update
        );
        assert_eq!(
            KernelClass::of(TaskKind::Tsmqr {
                p: 0,
                i: 1,
                j: 1,
                k: 0
            }),
            KernelClass::Update
        );
    }
}
