//! Calibrated device profiles for the paper's testbed (Table II).
//!
//! The timing coefficients are fitted so that each device's T/E/update
//! curves pass close to the paper's Fig. 4 measurements over tile sizes
//! 4–28 (values in microseconds, eyeballed from the published plots):
//!
//! | device  | curve | b=16 (model) | b=28 (model) | Fig. 4 @28 (approx) |
//! |---------|-------|--------------|--------------|----------------------|
//! | GTX580  | T     | ~103         | ~453         | ~450                 |
//! | GTX580  | E     | ~81          | ~348         | ~350                 |
//! | GTX580  | UT/UE | ~28          | ~97          | ~100                 |
//! | GTX680  | T     | ~150         | ~674         | ~650                 |
//! | GTX680  | E     | ~114         | ~505         | ~500                 |
//! | GTX680  | UT/UE | ~35          | ~120         | ~120                 |
//! | CPU     | T     | ~547         | ~2742        | ~2700                |
//! | CPU     | E     | ~450         | ~2242        | ~2200                |
//! | CPU     | UT/UE | ~146         | ~697         | ~700                 |
//!
//! The relative facts the paper's algorithms rely on all hold: the GTX580
//! has the fastest T/E kernels (so it is selected as the main computing
//! device, §VI-B), the GTX680's 1536 cores give it the highest *update
//! throughput* despite slower individual kernels, and the CPU is an order
//! of magnitude slower per kernel with only 4-way parallelism.

use crate::device::{DeviceKind, DeviceProfile};
use crate::link::Link;
use crate::platform::{Platform, SimConfig};
use crate::timing::{KernelTiming, StepTimes};

/// NVIDIA GTX580: 512 cores, fastest per-kernel times (Fig. 4a).
pub fn gtx580() -> DeviceProfile {
    DeviceProfile {
        name: "GTX580".to_string(),
        kind: DeviceKind::Gpu,
        cores: 512,
        times: StepTimes {
            triangulation: KernelTiming {
                c0: 20.0,
                c1: 0.020,
                c2: 0.0190,
            },
            elimination: KernelTiming {
                c0: 18.0,
                c1: 0.015,
                c2: 0.0145,
            },
            update: KernelTiming {
                c0: 12.0,
                c1: 0.005,
                c2: 0.0037,
            },
        },
    }
}

/// NVIDIA GTX680: 1536 cores, slower per kernel but highest update
/// throughput (Fig. 4b).
pub fn gtx680() -> DeviceProfile {
    DeviceProfile {
        name: "GTX680".to_string(),
        kind: DeviceKind::Gpu,
        cores: 1536,
        times: StepTimes {
            triangulation: KernelTiming {
                c0: 25.0,
                c1: 0.030,
                c2: 0.0285,
            },
            elimination: KernelTiming {
                c0: 22.0,
                c1: 0.020,
                c2: 0.0213,
            },
            update: KernelTiming {
                c0: 14.0,
                c1: 0.007,
                c2: 0.0046,
            },
        },
    }
}

/// Intel i7-3820 running the PLASMA kernels: 4 cores (Fig. 4c).
pub fn cpu_i7_3820() -> DeviceProfile {
    DeviceProfile {
        name: "CPU-i7-3820".to_string(),
        kind: DeviceKind::Cpu,
        cores: 4,
        times: StepTimes {
            triangulation: KernelTiming {
                c0: 30.0,
                c1: 0.100,
                c2: 0.1200,
            },
            elimination: KernelTiming {
                c0: 28.0,
                c1: 0.080,
                c2: 0.0980,
            },
            update: KernelTiming {
                c0: 15.0,
                c1: 0.030,
                c2: 0.0300,
            },
        },
    }
}

/// Hypothetical Intel Xeon Phi coprocessor — the "other computing
/// devices" the paper's introduction cites and its future work proposes
/// extending to (§VIII). 61 in-order cores with 4-way SMT behave like a
/// very wide CPU: per-kernel latencies between CPU and GPU, parallelism
/// modelled as 244 hardware threads. This profile is *not* calibrated to
/// measurements (the paper has none); it exists to exercise the
/// algorithms on a third device class.
pub fn xeon_phi() -> DeviceProfile {
    DeviceProfile {
        name: "XeonPhi-5110P".to_string(),
        kind: DeviceKind::Cpu,
        cores: 244,
        times: StepTimes {
            triangulation: KernelTiming {
                c0: 35.0,
                c1: 0.060,
                c2: 0.0600,
            },
            elimination: KernelTiming {
                c0: 32.0,
                c1: 0.050,
                c2: 0.0500,
            },
            update: KernelTiming {
                c0: 16.0,
                c1: 0.015,
                c2: 0.0150,
            },
        },
    }
}

/// The paper's full evaluation node (Table II): one CPU, one GTX580 and
/// two GTX680s. Device order: `[GTX580, GTX680, GTX680, CPU]`.
pub fn paper_testbed(tile_size: usize) -> Platform {
    Platform::new(
        vec![gtx580(), gtx680(), gtx680(), cpu_i7_3820()],
        Link::pcie2_x16(),
        SimConfig {
            tile_size,
            elem_bytes: 4, // the paper generates random *float* data (§V)
        },
    )
}

/// Subsets used in the scalability experiment (Fig. 8): the CPU plus the
/// first `n_gpus` GPUs of the testbed, preserving the paper's device order
/// (GTX580 first, then the GTX680s).
pub fn testbed_subset(n_gpus: usize, with_cpu: bool, tile_size: usize) -> Platform {
    let mut devices = Vec::new();
    let gpus = [gtx580(), gtx680(), gtx680()];
    devices.extend(gpus.into_iter().take(n_gpus));
    if with_cpu {
        devices.push(cpu_i7_3820());
    }
    Platform::new(
        devices,
        Link::pcie2_x16(),
        SimConfig {
            tile_size,
            elem_bytes: 4,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::KernelClass;

    #[test]
    fn fig4_anchor_points() {
        // Model values at b = 28 must be within 10% of the Fig. 4 readings.
        let anchors = [
            (gtx580(), 453.0, 348.0, 97.0),
            (gtx680(), 674.0, 505.0, 120.0),
            (cpu_i7_3820(), 2742.0, 2242.0, 697.0),
        ];
        for (dev, t, e, u) in anchors {
            let close = |x: f64, y: f64| (x - y).abs() / y < 0.10;
            assert!(close(dev.kernel_time_us(KernelClass::Triangulation, 28), t));
            assert!(close(dev.kernel_time_us(KernelClass::Elimination, 28), e));
            assert!(close(dev.kernel_time_us(KernelClass::Update, 28), u));
        }
    }

    #[test]
    fn te_slower_than_updates_everywhere() {
        // Fig. 4: on every device the T and E curves sit above UT/UE.
        for dev in [gtx580(), gtx680(), cpu_i7_3820()] {
            for b in [4, 8, 12, 16, 20, 24, 28] {
                let t = dev.kernel_time_us(KernelClass::Triangulation, b);
                let e = dev.kernel_time_us(KernelClass::Elimination, b);
                let u = dev.kernel_time_us(KernelClass::Update, b);
                assert!(t > e && e > u, "{}: b={b}: {t} {e} {u}", dev.name);
            }
        }
    }

    #[test]
    fn paper_testbed_layout() {
        let p = paper_testbed(16);
        assert_eq!(p.num_devices(), 4);
        assert_eq!(p.device(0).name, "GTX580");
        assert_eq!(p.device(3).kind, DeviceKind::Cpu);
        assert_eq!(p.total_cores(), 512 + 1536 + 1536 + 4);
    }

    #[test]
    fn subset_sizes_match_fig8_core_counts() {
        // Fig. 8 x-axis: 4, 516, 2052, 3588 cores.
        assert_eq!(testbed_subset(0, true, 16).total_cores(), 4);
        assert_eq!(testbed_subset(1, true, 16).total_cores(), 516);
        assert_eq!(testbed_subset(2, true, 16).total_cores(), 2052);
        assert_eq!(testbed_subset(3, true, 16).total_cores(), 3588);
    }
}
