//! PCIe interconnect model.

/// Host-mediated PCIe link shared by all devices (paper Fig. 1).
///
/// The CPU cannot access GPU memory directly and vice versa (§I), so every
/// inter-device transfer crosses the PCIe bus through host memory. The
/// simulator serializes all transfers on one bus resource — the worst-case
/// but simplest contention model, matching the serialized sum over devices
/// in the paper's Eq. 11.
///
/// Two overhead regimes are modelled, reflecting how a CUDA-era runtime
/// actually moves data:
///
/// * **streamed messages** ([`Link::message_time_us`]) — small per-kernel
///   outputs pushed through an async copy stream pay a small per-message
///   overhead ([`Link::message_latency_us`]); the exact task-level
///   simulator uses this for its per-task transfers,
/// * **batched transfers** ([`Link::batch_time_us`]) — a per-panel
///   `cudaMemcpy` of the aggregated Q data pays the full driver/DMA setup
///   ([`Link::batch_latency_us`]); the analytic Eq. 10–11 predictor and the
///   panel-granularity fast simulator use this, and it is the term that
///   makes using fewer devices optimal for small matrices (Table III) and
///   communication a ~25% share for small matrices (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Effective bandwidth in bytes per microsecond (B/µs == MB/s ÷ 1).
    pub bandwidth_bytes_per_us: f64,
    /// Setup latency of one batched (per-panel) transfer, microseconds.
    pub batch_latency_us: f64,
    /// Overhead of one streamed per-kernel message, microseconds.
    pub message_latency_us: f64,
}

impl Link {
    /// PCI Express 2.0 x16 with realistic efficiency: ~6 GB/s effective,
    /// ~80 µs batched-copy setup (2013-era driver with host staging),
    /// ~3 µs per streamed message.
    pub fn pcie2_x16() -> Self {
        Link {
            bandwidth_bytes_per_us: 6000.0,
            batch_latency_us: 80.0,
            message_latency_us: 3.0,
        }
    }

    /// Time for one streamed per-kernel message of `bytes`, microseconds.
    pub fn message_time_us(&self, bytes: u64) -> f64 {
        self.message_latency_us + bytes as f64 / self.bandwidth_bytes_per_us
    }

    /// Time for one batched transfer of `bytes`, microseconds.
    pub fn batch_time_us(&self, bytes: u64) -> f64 {
        self.batch_latency_us + bytes as f64 / self.bandwidth_bytes_per_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floors() {
        let l = Link::pcie2_x16();
        assert!(l.message_time_us(0) >= l.message_latency_us);
        assert!(l.batch_time_us(0) >= l.batch_latency_us);
        assert!(l.batch_latency_us > l.message_latency_us);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let l = Link::pcie2_x16();
        let t = l.batch_time_us(60_000_000); // 60 MB
        assert!((t - (80.0 + 10_000.0)).abs() < 1.0);
        // Both regimes converge for huge payloads.
        let ratio = l.batch_time_us(60_000_000) / l.message_time_us(60_000_000);
        assert!((ratio - 1.0).abs() < 0.01);
    }

    #[test]
    fn monotone_in_size() {
        let l = Link::pcie2_x16();
        assert!(l.message_time_us(2000) > l.message_time_us(1000));
        assert!(l.batch_time_us(2000) > l.batch_time_us(1000));
    }
}
