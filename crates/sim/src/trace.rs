//! Execution timeline recording and text-Gantt rendering.
//!
//! [`engine::simulate_traced`] returns, alongside the usual stats, the
//! `(start, end, device, task)` interval of every kernel and every bus
//! transfer — the raw material for utilization analysis and for eyeballing
//! schedules the way the paper's authors would have profiled theirs.
//!
//! [`engine::simulate_traced`]: crate::engine::simulate_traced

use crate::device::DeviceId;
use tileqr_dag::{TaskId, TaskKind};

/// One executed kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// Task id within the graph.
    pub task: TaskId,
    /// Task kind.
    pub kind: TaskKind,
    /// Executing device.
    pub device: DeviceId,
    /// Start time, µs.
    pub start_us: f64,
    /// End time, µs.
    pub end_us: f64,
}

/// One bus transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSpan {
    /// Producing task.
    pub producer: TaskId,
    /// Destination device.
    pub dest: DeviceId,
    /// Bytes moved.
    pub bytes: u64,
    /// Start time on the bus, µs.
    pub start_us: f64,
    /// End time, µs.
    pub end_us: f64,
}

/// Full execution timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Every kernel execution, in completion order.
    pub tasks: Vec<TaskSpan>,
    /// Every bus transfer, in issue order.
    pub transfers: Vec<TransferSpan>,
}

impl Timeline {
    /// Spans executed by one device, in start order.
    pub fn device_spans(&self, dev: DeviceId) -> Vec<TaskSpan> {
        let mut v: Vec<TaskSpan> = self
            .tasks
            .iter()
            .copied()
            .filter(|s| s.device == dev)
            .collect();
        v.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        v
    }

    /// Peak number of concurrently running kernels on a device (must never
    /// exceed its slot count — asserted by tests).
    pub fn peak_concurrency(&self, dev: DeviceId) -> usize {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for s in self.tasks.iter().filter(|s| s.device == dev) {
            events.push((s.start_us, 1));
            events.push((s.end_us, -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }

    /// Render a coarse text Gantt chart: one row per device, `width`
    /// character columns spanning `[0, makespan]`, each cell showing the
    /// step class that dominates that time bucket (`.` = idle).
    pub fn gantt(&self, num_devices: usize, width: usize) -> String {
        let makespan = self
            .tasks
            .iter()
            .map(|s| s.end_us)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut out = String::new();
        for dev in 0..num_devices {
            let mut row = vec!['.'; width];
            for s in self.tasks.iter().filter(|s| s.device == dev) {
                let a = ((s.start_us / makespan) * width as f64) as usize;
                let b = (((s.end_us / makespan) * width as f64).ceil() as usize).min(width);
                let ch = match s.kind.class().shorthand() {
                    "T" => 'T',
                    "E" => 'E',
                    "UT" => 'u',
                    _ => 'U',
                };
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    // Later-starting kernels overwrite; fine for a sketch.
                    *cell = ch;
                }
            }
            out.push_str(&format!("dev{dev} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task: TaskId, device: DeviceId, start: f64, end: f64) -> TaskSpan {
        TaskSpan {
            task,
            kind: TaskKind::Geqrt { i: 0, k: 0 },
            device,
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn peak_concurrency_counts_overlaps() {
        let tl = Timeline {
            tasks: vec![
                span(0, 0, 0.0, 10.0),
                span(1, 0, 5.0, 15.0),
                span(2, 0, 6.0, 8.0),
                span(3, 1, 0.0, 100.0),
            ],
            transfers: vec![],
        };
        assert_eq!(tl.peak_concurrency(0), 3);
        assert_eq!(tl.peak_concurrency(1), 1);
        assert_eq!(tl.peak_concurrency(2), 0);
    }

    #[test]
    fn device_spans_sorted() {
        let tl = Timeline {
            tasks: vec![span(0, 0, 5.0, 6.0), span(1, 0, 1.0, 2.0)],
            transfers: vec![],
        };
        let spans = tl.device_spans(0);
        assert!(spans[0].start_us < spans[1].start_us);
    }

    #[test]
    fn gantt_renders_rows() {
        let tl = Timeline {
            tasks: vec![span(0, 0, 0.0, 50.0), span(1, 1, 50.0, 100.0)],
            transfers: vec![],
        };
        let g = tl.gantt(2, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('T'));
        assert!(lines[1].ends_with('T'));
        assert!(lines[1].contains('.'));
    }
}
