//! Fault injection for the discrete-event simulator.
//!
//! The paper's schedules assume devices and the PCIe bus behave exactly as
//! profiled. Real accelerators do not: thermal throttling slows a GPU for
//! a stretch, driver contention stalls the bus, and a kernel launch
//! occasionally fails and is retried. This module describes such
//! misbehavior as a deterministic [`FaultPlan`] the engine replays, so a
//! test can ask *how a predicted schedule degrades* — and assert the
//! degradation is graceful (monotone in fault magnitude, never a deadlock,
//! work conservation intact).
//!
//! Four fault classes cover the simulated resources:
//!
//! * [`DeviceFault`] — a slowdown spike on one [`DeviceId`]: every kernel
//!   *starting* inside the window runs `slowdown`× longer,
//! * [`LinkFault`] — bus misbehavior: a [`LinkFault::Stall`] blocks the
//!   bus until the window ends; a [`LinkFault::Storm`] adds per-transfer
//!   setup latency (a serialization storm of tiny driver transactions),
//! * [`KernelFault`] — transient failure of one task: its first
//!   `failures` attempts burn the full kernel duration and produce
//!   nothing, then the retry hook re-queues it on the same device,
//! * [`DeviceDeath`] — permanent loss of a device: from `at_us` on its
//!   kernels never finish ([`FaultPlan::effective_slowdown`] returns
//!   `+∞`), so any plan that keeps routing work to it predicts an
//!   infinite makespan — the signal the re-planner reacts to.
//!
//! Everything is pure data and replayed deterministically — a failing
//! seed reproduces from the plan alone.

use crate::device::DeviceId;
use tileqr_dag::TaskId;

/// A per-device slowdown spike (e.g. thermal throttling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFault {
    /// Affected device.
    pub device: DeviceId,
    /// Window start, microseconds of simulated time.
    pub start_us: f64,
    /// Window end, microseconds.
    pub end_us: f64,
    /// Duration multiplier (`>= 1.0`) for kernels starting in the window.
    pub slowdown: f64,
}

/// Bus misbehavior over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// The bus is unavailable for the whole window: any transfer that
    /// would start inside it waits until the window ends.
    Stall {
        /// Window start, microseconds.
        start_us: f64,
        /// Window end, microseconds.
        end_us: f64,
    },
    /// Serialization storm: every transfer starting inside the window pays
    /// `extra_latency_us` of additional setup time.
    Storm {
        /// Window start, microseconds.
        start_us: f64,
        /// Window end, microseconds.
        end_us: f64,
        /// Extra per-transfer latency, microseconds.
        extra_latency_us: f64,
    },
}

/// Permanent loss of a device (driver crash, card falling off the bus).
/// From `at_us` on, the device executes nothing: every kernel assigned to
/// it takes forever, which is how the simulators model "this schedule
/// never finishes unless ownership moves off the dead device".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDeath {
    /// Device that dies.
    pub device: DeviceId,
    /// Time of death, microseconds of simulated time.
    pub at_us: f64,
}

/// Transient failure of one task's kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelFault {
    /// The task whose kernel misbehaves.
    pub task: TaskId,
    /// Number of attempts that fail before one succeeds. Each failed
    /// attempt occupies its device slot for the full kernel duration.
    pub failures: usize,
}

/// A complete, deterministic fault scenario for one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Device slowdown spikes.
    pub device_faults: Vec<DeviceFault>,
    /// Bus stalls and storms.
    pub link_faults: Vec<LinkFault>,
    /// Transient kernel failures.
    pub kernel_faults: Vec<KernelFault>,
    /// Permanent device losses.
    pub device_deaths: Vec<DeviceDeath>,
}

impl FaultPlan {
    /// A plan that injects nothing — simulating with it must reproduce the
    /// fault-free run exactly.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a device slowdown spike (builder style).
    pub fn with_device_slowdown(
        mut self,
        device: DeviceId,
        start_us: f64,
        end_us: f64,
        slowdown: f64,
    ) -> Self {
        assert!(slowdown >= 1.0, "slowdown must not speed the device up");
        assert!(end_us >= start_us);
        self.device_faults.push(DeviceFault {
            device,
            start_us,
            end_us,
            slowdown,
        });
        self
    }

    /// Add a bus stall window (builder style).
    pub fn with_link_stall(mut self, start_us: f64, end_us: f64) -> Self {
        assert!(end_us >= start_us);
        self.link_faults.push(LinkFault::Stall { start_us, end_us });
        self
    }

    /// Add a serialization storm (builder style).
    pub fn with_link_storm(mut self, start_us: f64, end_us: f64, extra_latency_us: f64) -> Self {
        assert!(end_us >= start_us);
        assert!(extra_latency_us >= 0.0);
        self.link_faults.push(LinkFault::Storm {
            start_us,
            end_us,
            extra_latency_us,
        });
        self
    }

    /// Add a transient kernel failure (builder style).
    pub fn with_kernel_failures(mut self, task: TaskId, failures: usize) -> Self {
        self.kernel_faults.push(KernelFault { task, failures });
        self
    }

    /// Kill `device` permanently at `at_us` (builder style).
    pub fn with_device_death(mut self, device: DeviceId, at_us: f64) -> Self {
        assert!(at_us >= 0.0);
        self.device_deaths.push(DeviceDeath { device, at_us });
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.device_faults.is_empty()
            && self.link_faults.is_empty()
            && self.kernel_faults.is_empty()
            && self.device_deaths.is_empty()
    }

    /// Combined slowdown multiplier for a kernel starting on `device` at
    /// time `now` (overlapping spikes multiply).
    pub fn slowdown_at(&self, device: DeviceId, now: f64) -> f64 {
        self.device_faults
            .iter()
            .filter(|f| f.device == device && f.start_us <= now && now < f.end_us)
            .map(|f| f.slowdown)
            .product()
    }

    /// Earliest time at or after `start` when the bus is not stalled.
    pub fn bus_available_at(&self, start: f64) -> f64 {
        // Stall windows can chain (one window ends inside another), so
        // iterate to a fixed point; each pass can only move forward.
        let mut t = start;
        loop {
            let mut moved = false;
            for f in &self.link_faults {
                if let LinkFault::Stall { start_us, end_us } = *f {
                    if start_us <= t && t < end_us {
                        t = end_us;
                        moved = true;
                    }
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// Extra setup latency for a transfer starting at `start`.
    pub fn transfer_overhead_at(&self, start: f64) -> f64 {
        self.link_faults
            .iter()
            .map(|f| match *f {
                LinkFault::Storm {
                    start_us,
                    end_us,
                    extra_latency_us,
                } if start_us <= start && start < end_us => extra_latency_us,
                _ => 0.0,
            })
            .sum()
    }

    /// Time of death of `device`, if the plan kills it (earliest wins when
    /// several deaths target the same device).
    pub fn death_time(&self, device: DeviceId) -> Option<f64> {
        self.device_deaths
            .iter()
            .filter(|d| d.device == device)
            .map(|d| d.at_us)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// `true` if `device` is dead at time `now`.
    pub fn device_dead_at(&self, device: DeviceId, now: f64) -> bool {
        self.death_time(device).is_some_and(|t| t <= now)
    }

    /// Duration multiplier a kernel starting on `device` at `now` actually
    /// experiences: the spike product, or `+∞` once the device is dead —
    /// dead devices never finish anything, so a schedule that still routes
    /// work to one predicts an infinite makespan.
    pub fn effective_slowdown(&self, device: DeviceId, now: f64) -> f64 {
        if self.device_dead_at(device, now) {
            f64::INFINITY
        } else {
            self.slowdown_at(device, now)
        }
    }

    /// Number of failing attempts injected for `task`.
    pub fn failures_for(&self, task: TaskId) -> usize {
        self.kernel_faults
            .iter()
            .filter(|f| f.task == task)
            .map(|f| f.failures)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_transparent() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.slowdown_at(0, 123.0), 1.0);
        assert_eq!(p.bus_available_at(50.0), 50.0);
        assert_eq!(p.transfer_overhead_at(50.0), 0.0);
        assert_eq!(p.failures_for(3), 0);
    }

    #[test]
    fn slowdown_windows_compose() {
        let p = FaultPlan::none()
            .with_device_slowdown(1, 0.0, 100.0, 2.0)
            .with_device_slowdown(1, 50.0, 150.0, 3.0);
        assert_eq!(p.slowdown_at(1, 10.0), 2.0);
        assert_eq!(p.slowdown_at(1, 75.0), 6.0);
        assert_eq!(p.slowdown_at(1, 120.0), 3.0);
        assert_eq!(p.slowdown_at(1, 200.0), 1.0);
        assert_eq!(p.slowdown_at(0, 75.0), 1.0, "other devices unaffected");
    }

    #[test]
    fn stall_windows_chain() {
        let p = FaultPlan::none()
            .with_link_stall(0.0, 100.0)
            .with_link_stall(90.0, 200.0);
        assert_eq!(p.bus_available_at(10.0), 200.0);
        assert_eq!(p.bus_available_at(200.0), 200.0);
    }

    #[test]
    fn storm_adds_latency_inside_window_only() {
        let p = FaultPlan::none().with_link_storm(100.0, 200.0, 25.0);
        assert_eq!(p.transfer_overhead_at(50.0), 0.0);
        assert_eq!(p.transfer_overhead_at(150.0), 25.0);
        assert_eq!(p.transfer_overhead_at(200.0), 0.0, "end exclusive");
    }

    #[test]
    fn kernel_failures_accumulate_per_task() {
        let p = FaultPlan::none()
            .with_kernel_failures(4, 2)
            .with_kernel_failures(4, 1);
        assert_eq!(p.failures_for(4), 3);
        assert_eq!(p.failures_for(5), 0);
    }

    #[test]
    fn death_is_permanent_and_per_device() {
        let p = FaultPlan::none().with_device_death(1, 500.0);
        assert!(!p.is_empty());
        assert_eq!(p.death_time(1), Some(500.0));
        assert_eq!(p.death_time(0), None);
        assert!(!p.device_dead_at(1, 499.9));
        assert!(p.device_dead_at(1, 500.0));
        assert!(p.device_dead_at(1, 1e12));
        assert_eq!(p.effective_slowdown(1, 400.0), 1.0);
        assert_eq!(p.effective_slowdown(1, 600.0), f64::INFINITY);
        assert_eq!(p.effective_slowdown(0, 600.0), 1.0);
    }

    #[test]
    fn earliest_death_wins() {
        let p = FaultPlan::none()
            .with_device_death(2, 900.0)
            .with_device_death(2, 300.0);
        assert_eq!(p.death_time(2), Some(300.0));
    }

    #[test]
    #[should_panic]
    fn speedup_rejected() {
        let _ = FaultPlan::none().with_device_slowdown(0, 0.0, 1.0, 0.5);
    }
}
