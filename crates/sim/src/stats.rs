//! Simulation result accounting.

use crate::device::DeviceId;

/// Outcome of one simulated tiled-QR run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// End-to-end makespan, microseconds.
    pub makespan_us: f64,
    /// Per-device busy time (sum of kernel durations), microseconds.
    pub device_busy_us: Vec<f64>,
    /// Total time the PCIe bus spent moving data, microseconds.
    pub bus_busy_us: f64,
    /// Total bytes moved across the bus.
    pub bytes_transferred: u64,
    /// Number of bus transfers.
    pub transfer_count: u64,
    /// Per-device task counts.
    pub tasks_per_device: Vec<u64>,
    /// Kernel attempts that failed and were retried (always 0 without a
    /// [`crate::FaultPlan`]).
    pub retry_count: u64,
    /// Mid-run re-planning events (Alg. 2/3/4 re-run at a panel boundary
    /// after a device death or degradation). Always 0 for non-adaptive
    /// simulations.
    pub replan_count: u64,
    /// Bytes moved solely to migrate column ownership at replan
    /// boundaries (a subset of `bytes_transferred`).
    pub migrated_bytes: u64,
}

impl SimStats {
    /// Fresh zeroed stats for `n` devices.
    pub fn new(n: usize) -> Self {
        SimStats {
            makespan_us: 0.0,
            device_busy_us: vec![0.0; n],
            bus_busy_us: 0.0,
            bytes_transferred: 0,
            transfer_count: 0,
            tasks_per_device: vec![0; n],
            retry_count: 0,
            replan_count: 0,
            migrated_bytes: 0,
        }
    }

    /// Total compute time summed over devices (the "Calculation" bar of the
    /// paper's Fig. 5).
    pub fn total_compute_us(&self) -> f64 {
        self.device_busy_us.iter().sum()
    }

    /// Fraction of `compute + communication` spent communicating — the
    /// quantity Fig. 5 plots (both bars normalized to their sum).
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_compute_us() + self.bus_busy_us;
        if total == 0.0 {
            0.0
        } else {
            self.bus_busy_us / total
        }
    }

    /// Utilization of one device: busy (lane-)time over makespan. With
    /// multi-slot devices this counts *average busy lanes* and can exceed
    /// 1; divide by the device's slot count for a 0–1 figure.
    pub fn utilization(&self, dev: DeviceId) -> f64 {
        if self.makespan_us == 0.0 {
            0.0
        } else {
            self.device_busy_us[dev] / self.makespan_us
        }
    }

    /// Makespan in seconds (the unit of Figs. 6, 8, 9, 10).
    pub fn makespan_s(&self) -> f64 {
        self.makespan_us / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_sums() {
        let mut s = SimStats::new(2);
        s.device_busy_us = vec![30.0, 50.0];
        s.bus_busy_us = 20.0;
        s.makespan_us = 100.0;
        assert_eq!(s.total_compute_us(), 80.0);
        assert!((s.comm_fraction() - 0.2).abs() < 1e-12);
        assert!((s.utilization(1) - 0.5).abs() < 1e-12);
        assert!((s.makespan_s() - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn zero_safe() {
        let s = SimStats::new(1);
        assert_eq!(s.comm_fraction(), 0.0);
        assert_eq!(s.utilization(0), 0.0);
    }
}
