//! Platform = devices + interconnect + run configuration.

use crate::device::{DeviceId, DeviceProfile};
use crate::link::Link;
use crate::timing::KernelClass;
use tileqr_dag::TaskKind;

/// Simulation-wide constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Tile side length `b` (the paper uses 16).
    pub tile_size: usize,
    /// Bytes per matrix element (4 = `float`, as in the paper; 8 = `double`).
    pub elem_bytes: usize,
}

impl SimConfig {
    /// Bytes of one `b x b` tile.
    pub fn tile_bytes(&self) -> u64 {
        (self.tile_size * self.tile_size * self.elem_bytes) as u64
    }
}

/// A simulated heterogeneous node.
#[derive(Debug, Clone)]
pub struct Platform {
    devices: Vec<DeviceProfile>,
    link: Link,
    config: SimConfig,
    /// Per-device memory capacity in bytes (None = unbounded, the paper's
    /// working assumption: "Our current work assumes that there is no
    /// problem about memory size", §VIII).
    device_memory: Vec<Option<u64>>,
}

impl Platform {
    /// Assemble a platform. Panics on an empty device list or zero tile
    /// size.
    pub fn new(devices: Vec<DeviceProfile>, link: Link, config: SimConfig) -> Self {
        assert!(!devices.is_empty(), "platform needs at least one device");
        assert!(config.tile_size > 0, "tile size must be positive");
        let n = devices.len();
        Platform {
            devices,
            link,
            config,
            device_memory: vec![None; n],
        }
    }

    /// Set per-device memory capacities (bytes); `None` entries are
    /// unbounded. Addresses the paper's future-work point on very large
    /// matrices: [`Platform::memory_feasible`] checks whether a
    /// distribution's working set fits.
    pub fn with_device_memory(mut self, capacities: Vec<Option<u64>>) -> Self {
        assert_eq!(capacities.len(), self.devices.len());
        self.device_memory = capacities;
        self
    }

    /// Memory capacity of device `id` (None = unbounded).
    pub fn device_memory(&self, id: DeviceId) -> Option<u64> {
        self.device_memory[id]
    }

    /// Bytes device `id` must hold to own `columns` tile columns of an
    /// `mt`-row grid, plus one panel column of factors in flight.
    pub fn working_set_bytes(&self, mt: usize, columns: usize) -> u64 {
        let col = mt as u64 * self.config.tile_bytes();
        // Owned columns + the broadcast V/T factors of the active panel.
        columns as u64 * col + 3 * col
    }

    /// `true` when every device's working set for the given per-device
    /// column counts fits its memory.
    pub fn memory_feasible(&self, mt: usize, columns_per_device: &[usize]) -> bool {
        assert_eq!(columns_per_device.len(), self.devices.len());
        self.device_memory
            .iter()
            .zip(columns_per_device)
            .all(|(cap, &cols)| match cap {
                None => true,
                Some(bytes) => self.working_set_bytes(mt, cols) <= *bytes,
            })
    }

    /// Observed-profile copy of this platform: device `d`'s timing
    /// coefficients are scaled by `factors[d]` (`1.0` leaves the profile
    /// untouched). This is what mid-run re-planning feeds to Alg. 2/3/4 —
    /// the platform *as measured*, with degraded devices slowed to their
    /// observed throughput.
    pub fn observed(&self, factors: &[f64]) -> Platform {
        assert_eq!(factors.len(), self.devices.len());
        let devices = self
            .devices
            .iter()
            .zip(factors)
            .map(|(d, &f)| if f > 1.0 { d.slowed(f) } else { d.clone() })
            .collect();
        Platform {
            devices,
            link: self.link,
            config: self.config,
            device_memory: self.device_memory.clone(),
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Borrow device `id`.
    pub fn device(&self, id: DeviceId) -> &DeviceProfile {
        &self.devices[id]
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// The PCIe bus.
    pub fn link(&self) -> Link {
        self.link
    }

    /// Run configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Total cores across all devices (the x-axis of Fig. 8).
    pub fn total_cores(&self) -> usize {
        self.devices.iter().map(|d| d.cores).sum()
    }

    /// Execution time of `task` on device `dev`, microseconds.
    pub fn task_time_us(&self, dev: DeviceId, task: TaskKind) -> f64 {
        self.devices[dev].kernel_time_us(KernelClass::of(task), self.config.tile_size)
    }

    /// Bytes shipped when the output of `task` crosses the bus. Factor
    /// kernels ship their Householder block plus the `T` factor (2 tiles'
    /// worth — the paper's "Q matrices"); update kernels ship the updated
    /// tile.
    pub fn output_bytes(&self, task: TaskKind) -> u64 {
        match task {
            TaskKind::Geqrt { .. } | TaskKind::Tsqrt { .. } | TaskKind::Ttqrt { .. } => {
                2 * self.config.tile_bytes()
            }
            TaskKind::Unmqr { .. } | TaskKind::Tsmqr { .. } | TaskKind::Ttmqr { .. } => {
                self.config.tile_bytes()
            }
        }
    }

    /// Bus time for one streamed per-kernel message of `bytes`,
    /// microseconds (used by the exact task-level simulator).
    pub fn transfer_time_us(&self, bytes: u64) -> f64 {
        self.link.message_time_us(bytes)
    }

    /// Bus time for one batched per-panel transfer of `bytes`, microseconds
    /// (used by the Eq. 10–11 predictor and the fast panel simulator).
    pub fn batch_transfer_time_us(&self, bytes: u64) -> f64 {
        self.link.batch_time_us(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn tile_bytes() {
        let c = SimConfig {
            tile_size: 16,
            elem_bytes: 4,
        };
        assert_eq!(c.tile_bytes(), 1024);
    }

    #[test]
    fn factor_outputs_are_double_sized() {
        let p = profiles::paper_testbed(16);
        let f = p.output_bytes(TaskKind::Geqrt { i: 0, k: 0 });
        let u = p.output_bytes(TaskKind::Tsmqr {
            p: 0,
            i: 1,
            j: 1,
            k: 0,
        });
        assert_eq!(f, 2 * u);
    }

    #[test]
    fn task_time_uses_device_curves() {
        let p = profiles::paper_testbed(16);
        let t_gpu = p.task_time_us(0, TaskKind::Geqrt { i: 0, k: 0 });
        let t_cpu = p.task_time_us(3, TaskKind::Geqrt { i: 0, k: 0 });
        assert!(t_cpu > t_gpu);
    }

    #[test]
    fn memory_feasibility() {
        let p =
            profiles::paper_testbed(16).with_device_memory(vec![Some(1 << 20), None, None, None]);
        // 1 MiB on device 0: a 16-row grid column is 16 KiB; ~60 columns fit.
        assert!(p.memory_feasible(16, &[10, 1000, 1000, 0]));
        assert!(!p.memory_feasible(16, &[100, 0, 0, 0]));
        // Unbounded devices always fit, but even a column-less bounded
        // device must hold the in-flight panel factors (3 columns' worth).
        assert!(p.memory_feasible(16, &[0, 100_000, 0, 0]));
        assert!(!p.memory_feasible(1000, &[0, 100_000, 0, 0]));
    }

    #[test]
    fn working_set_scales_with_columns_and_rows() {
        let p = profiles::paper_testbed(16);
        assert!(p.working_set_bytes(10, 5) < p.working_set_bytes(10, 6));
        assert!(p.working_set_bytes(10, 5) < p.working_set_bytes(20, 5));
    }

    #[test]
    #[should_panic]
    fn empty_platform_panics() {
        let _ = Platform::new(
            vec![],
            Link::pcie2_x16(),
            SimConfig {
                tile_size: 16,
                elem_bytes: 4,
            },
        );
    }
}
