//! Task-level discrete-event simulation engine.
//!
//! Executes a [`TaskGraph`] on a [`Platform`] under a fixed task → device
//! assignment:
//!
//! * each device runs up to [`DeviceProfile::slots`] concurrent tile
//!   kernels; excess ready work queues FIFO (lowest task id first, so runs
//!   are bit-for-bit deterministic),
//! * when a task's output is consumed on another device, its bytes cross
//!   the shared PCIe bus; transfers are pushed as soon as the producer
//!   finishes, deduplicated per `(producer, destination device)` exactly
//!   like the paper's post-T/E broadcasts (§IV-D), and serialized FIFO on
//!   the bus,
//! * a task starts only when all predecessors have finished *and* every
//!   cross-device input has arrived.
//!
//! [`DeviceProfile::slots`]: crate::DeviceProfile::slots

use crate::device::DeviceId;
use crate::fault::FaultPlan;
use crate::platform::Platform;
use crate::stats::SimStats;
use crate::trace::{TaskSpan, Timeline, TransferSpan};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tileqr_dag::{TaskGraph, TaskId};

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    TaskDone(TaskId),
    /// A transient-fault attempt burned its duration and produced nothing;
    /// the retry hook re-queues the task on its device.
    TaskAttemptFailed(TaskId),
    TransferDone(TaskId, DeviceId),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap via BinaryHeap<Reverse<_>> — here plain
        // ascending order; the heap wraps in Reverse.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
enum TransferState {
    InFlight { waiters: Vec<TaskId> },
    Done,
}

/// Simulate the execution of `g` where task `t` runs on
/// `assignment[t]`. Returns the full [`SimStats`].
///
/// Panics if `assignment.len() != g.len()` or any device id is out of
/// range.
pub fn simulate(g: &TaskGraph, platform: &Platform, assignment: &[DeviceId]) -> SimStats {
    simulate_impl(g, platform, assignment, None, &FaultPlan::none())
}

/// [`simulate`], additionally recording the full execution [`Timeline`]
/// (every kernel span and every bus transfer).
pub fn simulate_traced(
    g: &TaskGraph,
    platform: &Platform,
    assignment: &[DeviceId],
) -> (SimStats, Timeline) {
    let mut timeline = Timeline::default();
    let stats = simulate_impl(
        g,
        platform,
        assignment,
        Some(&mut timeline),
        &FaultPlan::none(),
    );
    (stats, timeline)
}

/// [`simulate`] under an injected [`FaultPlan`]: device slowdown spikes
/// stretch kernels starting in their window, bus stalls/storms delay
/// transfers, and transient kernel failures burn full-duration attempts
/// before the retry succeeds. With [`FaultPlan::none`] the result is
/// bit-identical to [`simulate`].
pub fn simulate_with_faults(
    g: &TaskGraph,
    platform: &Platform,
    assignment: &[DeviceId],
    faults: &FaultPlan,
) -> SimStats {
    simulate_impl(g, platform, assignment, None, faults)
}

fn simulate_impl(
    g: &TaskGraph,
    platform: &Platform,
    assignment: &[DeviceId],
    mut trace: Option<&mut Timeline>,
    faults: &FaultPlan,
) -> SimStats {
    assert_eq!(assignment.len(), g.len(), "one device per task required");
    let ndev = platform.num_devices();
    assert!(
        assignment.iter().all(|&d| d < ndev),
        "assignment references unknown device"
    );
    let b = platform.config().tile_size;
    let slots: Vec<usize> = (0..ndev).map(|d| platform.device(d).slots(b)).collect();

    let mut stats = SimStats::new(ndev);
    let mut remaining_preds = g.indegrees();
    // Cross-device inputs still in flight, per task.
    let mut missing_inputs = vec![0usize; g.len()];
    let mut deps_done = vec![false; g.len()];
    let mut transfers: HashMap<(TaskId, DeviceId), TransferState> = HashMap::new();

    let mut ready: Vec<BinaryHeap<Reverse<TaskId>>> =
        (0..ndev).map(|_| BinaryHeap::new()).collect();
    let mut busy = vec![0usize; ndev];
    let mut bus_free = 0.0f64;

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut makespan = 0.0f64;

    macro_rules! push_event {
        ($time:expr, $kind:expr) => {{
            heap.push(Reverse(Event {
                time: $time,
                seq,
                kind: $kind,
            }));
            seq += 1;
        }};
    }

    // Remaining failing attempts injected per task (usually all zero).
    let mut attempts_left: Vec<usize> = (0..g.len()).map(|t| faults.failures_for(t)).collect();

    // Dispatch as much queued work as device `d` has free slots for.
    macro_rules! dispatch {
        ($d:expr, $now:expr) => {{
            let d = $d;
            while busy[d] < slots[d] {
                let Some(Reverse(t)) = ready[d].pop() else {
                    break;
                };
                busy[d] += 1;
                let dur = platform.task_time_us(d, g.task(t)) * faults.effective_slowdown(d, $now);
                stats.device_busy_us[d] += dur;
                let will_fail = attempts_left[t] > 0;
                if will_fail {
                    attempts_left[t] -= 1;
                } else {
                    stats.tasks_per_device[d] += 1;
                }
                if let Some(tl) = trace.as_deref_mut() {
                    tl.tasks.push(TaskSpan {
                        task: t,
                        kind: g.task(t),
                        device: d,
                        start_us: $now,
                        end_us: $now + dur,
                    });
                }
                let kind = if will_fail {
                    EventKind::TaskAttemptFailed(t)
                } else {
                    EventKind::TaskDone(t)
                };
                push_event!($now + dur, kind);
            }
        }};
    }

    // A task whose dependencies are satisfied: figure out which of its
    // cross-device inputs are still missing; enqueue when none are.
    macro_rules! on_deps_done {
        ($t:expr, $now:expr) => {{
            let t = $t;
            deps_done[t] = true;
            let dest = assignment[t];
            let mut missing = 0usize;
            for &p in g.preds(t) {
                if assignment[p] != dest {
                    match transfers.get_mut(&(p, dest)) {
                        Some(TransferState::Done) => {}
                        Some(TransferState::InFlight { waiters }) => {
                            waiters.push(t);
                            missing += 1;
                        }
                        None => unreachable!("transfer pushed at producer finish"),
                    }
                }
            }
            if missing == 0 {
                ready[dest].push(Reverse(t));
                dispatch!(dest, $now);
            } else {
                missing_inputs[t] = missing;
            }
        }};
    }

    // Seed: sources have no preds, hence no transfers.
    for t in g.sources() {
        deps_done[t] = true;
        ready[assignment[t]].push(Reverse(t));
    }
    for d in 0..ndev {
        dispatch!(d, 0.0);
    }

    while let Some(Reverse(ev)) = heap.pop() {
        let now = ev.time;
        makespan = makespan.max(now);
        match ev.kind {
            EventKind::TaskDone(t) => {
                let d = assignment[t];
                busy[d] -= 1;

                // Push-broadcast this output to every other device that
                // will consume it (deduplicated), as the paper does after
                // each T and E step.
                let bytes = platform.output_bytes(g.task(t));
                let mut dests: Vec<DeviceId> = g
                    .succs(t)
                    .iter()
                    .map(|&s| assignment[s])
                    .filter(|&dd| dd != d)
                    .collect();
                dests.sort_unstable();
                dests.dedup();
                for dest in dests {
                    let start = faults.bus_available_at(bus_free.max(now));
                    let dur = platform.transfer_time_us(bytes) + faults.transfer_overhead_at(start);
                    bus_free = start + dur;
                    stats.bus_busy_us += dur;
                    stats.bytes_transferred += bytes;
                    stats.transfer_count += 1;
                    if let Some(tl) = trace.as_deref_mut() {
                        tl.transfers.push(TransferSpan {
                            producer: t,
                            dest,
                            bytes,
                            start_us: start,
                            end_us: bus_free,
                        });
                    }
                    transfers.insert((t, dest), TransferState::InFlight { waiters: vec![] });
                    push_event!(bus_free, EventKind::TransferDone(t, dest));
                }

                for &s in g.succs(t) {
                    remaining_preds[s] -= 1;
                    if remaining_preds[s] == 0 {
                        on_deps_done!(s, now);
                    }
                }
                dispatch!(d, now);
            }
            EventKind::TaskAttemptFailed(t) => {
                // Retry hook: free the slot, count the retry, and re-queue
                // the task on its assigned device.
                let d = assignment[t];
                busy[d] -= 1;
                stats.retry_count += 1;
                ready[d].push(Reverse(t));
                dispatch!(d, now);
            }
            EventKind::TransferDone(p, dest) => {
                let state = transfers
                    .insert((p, dest), TransferState::Done)
                    .expect("transfer must be in flight");
                if let TransferState::InFlight { waiters } = state {
                    for t in waiters {
                        missing_inputs[t] -= 1;
                        if missing_inputs[t] == 0 && deps_done[t] {
                            ready[dest].push(Reverse(t));
                        }
                    }
                    dispatch!(dest, now);
                }
            }
        }
    }

    debug_assert!(
        remaining_preds.iter().all(|&r| r == 0),
        "simulation finished with blocked tasks"
    );
    stats.makespan_us = makespan;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use tileqr_dag::{EliminationOrder, StepClass, TaskGraph};

    fn all_on(g: &TaskGraph, dev: DeviceId) -> Vec<DeviceId> {
        vec![dev; g.len()]
    }

    /// Paper-style assignment: T/E on device 0, updates round-robin by
    /// column over all devices.
    fn column_cyclic(g: &TaskGraph, ndev: usize) -> Vec<DeviceId> {
        g.tasks()
            .iter()
            .map(|t| {
                if t.class().is_main_device_work() {
                    0
                } else {
                    t.home_column() % ndev
                }
            })
            .collect()
    }

    #[test]
    fn single_task_single_device() {
        let g = TaskGraph::build(1, 1, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let s = simulate(&g, &p, &all_on(&g, 0));
        let expect = p.task_time_us(0, g.task(0));
        assert!((s.makespan_us - expect).abs() < 1e-9);
        assert_eq!(s.transfer_count, 0);
        assert_eq!(s.tasks_per_device[0], 1);
    }

    #[test]
    fn single_device_has_no_communication() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let s = simulate(&g, &p, &all_on(&g, 1));
        assert_eq!(s.bus_busy_us, 0.0);
        assert_eq!(s.bytes_transferred, 0);
        assert_eq!(s.tasks_per_device[1] as usize, g.len());
    }

    #[test]
    fn makespan_at_least_critical_path_and_at_most_serial() {
        let g = TaskGraph::build(5, 5, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let assign = all_on(&g, 0);
        let s = simulate(&g, &p, &assign);
        let cp = tileqr_dag::critical_path::critical_path_length(&g, |t| p.task_time_us(0, t));
        let serial: f64 = g.tasks().iter().map(|&t| p.task_time_us(0, t)).sum();
        assert!(s.makespan_us >= cp - 1e-6, "{} < {}", s.makespan_us, cp);
        assert!(s.makespan_us <= serial + 1e-6);
        assert!(s.makespan_us < serial, "slots must give some overlap");
    }

    #[test]
    fn cross_device_assignment_produces_transfers() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let s = simulate(&g, &p, &column_cyclic(&g, 3));
        assert!(s.transfer_count > 0);
        assert!(s.bus_busy_us > 0.0);
        // Every device got some work.
        assert!(s.tasks_per_device[..3].iter().all(|&c| c > 0));
    }

    #[test]
    fn deterministic_replay() {
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 4);
        let s1 = simulate(&g, &p, &a);
        let s2 = simulate(&g, &p, &a);
        assert_eq!(s1, s2);
    }

    #[test]
    fn faster_device_finishes_sooner() {
        let g = TaskGraph::build(5, 5, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let on_gpu = simulate(&g, &p, &all_on(&g, 0));
        let on_cpu = simulate(&g, &p, &all_on(&g, 3));
        assert!(on_gpu.makespan_us < on_cpu.makespan_us);
    }

    #[test]
    fn busy_time_equals_task_durations() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 2);
        let s = simulate(&g, &p, &a);
        let mut expect = vec![0.0f64; p.num_devices()];
        for (t, &d) in g.tasks().iter().zip(&a) {
            expect[d] += p.task_time_us(d, *t);
        }
        for (got, want) in s.device_busy_us.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn comm_fraction_bounded_and_positive() {
        // At task granularity (streamed messages) the comm share is a
        // modest, well-bounded fraction; the strong small-vs-large decrease
        // of Fig. 5 comes from the batched per-panel transfers and is
        // asserted against the fast simulator in the sched crate.
        let p = profiles::paper_testbed(16);
        let g = TaskGraph::build(12, 12, EliminationOrder::FlatTs);
        let f = simulate(&g, &p, &column_cyclic(&g, 4)).comm_fraction();
        assert!(f > 0.0 && f < 0.5, "comm fraction {f}");
    }

    #[test]
    fn class_counts_preserved() {
        let g = TaskGraph::build(5, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 4);
        let s = simulate(&g, &p, &a);
        let total: u64 = s.tasks_per_device.iter().sum();
        assert_eq!(total as usize, g.len());
        // Main-device work stayed on device 0.
        let te = g
            .tasks()
            .iter()
            .filter(|t| matches!(t.class(), StepClass::Triangulation | StepClass::Elimination))
            .count();
        assert!(s.tasks_per_device[0] as usize >= te);
    }

    #[test]
    fn traced_run_matches_untraced_and_respects_slots() {
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 4);
        let plain = simulate(&g, &p, &a);
        let (stats, tl) = simulate_traced(&g, &p, &a);
        assert_eq!(plain, stats);
        assert_eq!(tl.tasks.len(), g.len());
        assert_eq!(tl.transfers.len() as u64, stats.transfer_count);
        for d in 0..p.num_devices() {
            let peak = tl.peak_concurrency(d);
            assert!(
                peak <= p.device(d).slots(16),
                "device {d}: peak {peak} exceeds slots"
            );
        }
        // Every span respects its task's duration.
        for s in &tl.tasks {
            let dur = p.task_time_us(s.device, s.kind);
            assert!((s.end_us - s.start_us - dur).abs() < 1e-9);
        }
        // Bus transfers never overlap (single serialized bus).
        for w in tl.transfers.windows(2) {
            assert!(w[1].start_us >= w[0].end_us - 1e-9);
        }
    }

    #[test]
    fn empty_fault_plan_is_transparent() {
        let g = TaskGraph::build(5, 5, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 3);
        let plain = simulate(&g, &p, &a);
        let faulted = simulate_with_faults(&g, &p, &a, &crate::FaultPlan::none());
        assert_eq!(plain, faulted);
        assert_eq!(faulted.retry_count, 0);
    }

    #[test]
    fn device_slowdown_stretches_makespan_monotonically() {
        let g = TaskGraph::build(5, 5, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = all_on(&g, 0);
        let base = simulate(&g, &p, &a).makespan_us;
        let mut prev = base;
        for slow in [1.5, 3.0, 10.0] {
            let plan = crate::FaultPlan::none().with_device_slowdown(0, 0.0, f64::MAX, slow);
            let s = simulate_with_faults(&g, &p, &a, &plan);
            assert!(s.makespan_us > prev, "slowdown {slow} did not degrade");
            // A whole-run slowdown of the only busy device scales the
            // makespan by at most the slowdown factor.
            assert!(s.makespan_us <= base * slow + 1e-6);
            prev = s.makespan_us;
        }
    }

    #[test]
    fn link_stall_delays_only_communicating_runs() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let stall = crate::FaultPlan::none().with_link_stall(0.0, 50_000.0);
        // Single-device run never touches the bus: stall is invisible.
        let solo = simulate_with_faults(&g, &p, &all_on(&g, 0), &stall);
        assert_eq!(solo, simulate(&g, &p, &all_on(&g, 0)));
        // Cross-device run must wait out the stall.
        let a = column_cyclic(&g, 3);
        let faulted = simulate_with_faults(&g, &p, &a, &stall);
        let clean = simulate(&g, &p, &a);
        assert!(faulted.makespan_us > clean.makespan_us);
        assert!(faulted.makespan_us >= 50_000.0);
        assert_eq!(faulted.bytes_transferred, clean.bytes_transferred);
    }

    #[test]
    fn link_storm_inflates_bus_time() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 3);
        let clean = simulate(&g, &p, &a);
        let storm = crate::FaultPlan::none().with_link_storm(0.0, f64::MAX, 40.0);
        let s = simulate_with_faults(&g, &p, &a, &storm);
        let expect = clean.bus_busy_us + 40.0 * clean.transfer_count as f64;
        assert!((s.bus_busy_us - expect).abs() < 1e-6);
        assert!(s.makespan_us >= clean.makespan_us);
    }

    #[test]
    fn transient_kernel_failures_retry_and_complete() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 2);
        let clean = simulate(&g, &p, &a);
        // Fail the first task (a GEQRT on the critical path) twice and a
        // mid-graph task once.
        let plan = crate::FaultPlan::none()
            .with_kernel_failures(0, 2)
            .with_kernel_failures(g.len() / 2, 1);
        let s = simulate_with_faults(&g, &p, &a, &plan);
        assert_eq!(s.retry_count, 3);
        // Work conservation: every task still completes exactly once.
        let total: u64 = s.tasks_per_device.iter().sum();
        assert_eq!(total as usize, g.len());
        assert!(s.makespan_us > clean.makespan_us);
        // Burned attempts show up as extra busy time.
        assert!(s.total_compute_us() > clean.total_compute_us());
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let a = column_cyclic(&g, 4);
        let plan = crate::FaultPlan::none()
            .with_device_slowdown(1, 1000.0, 5000.0, 4.0)
            .with_link_stall(2000.0, 3000.0)
            .with_kernel_failures(7, 1);
        let s1 = simulate_with_faults(&g, &p, &a, &plan);
        let s2 = simulate_with_faults(&g, &p, &a, &plan);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic]
    fn wrong_assignment_length_panics() {
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);
        let p = profiles::paper_testbed(16);
        let _ = simulate(&g, &p, &[0]);
    }
}
