//! Simulated compute devices.

use crate::timing::{KernelClass, StepTimes};

/// Index of a device within a [`crate::Platform`].
pub type DeviceId = usize;

/// Broad device class — determines the intra-device parallelism model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Multicore CPU: each core runs one whole tile kernel, so the device
    /// executes up to `cores` concurrent tile kernels.
    Cpu,
    /// CUDA-style GPU: a batched kernel launch processes many tiles at
    /// once. The simulator represents a batch of `n` tiles as `n`
    /// concurrent tile-tasks capped at `cores · OVERSUB / tile_size` slots
    /// (see [`GPU_OVERSUBSCRIPTION`](crate::device::GPU_OVERSUBSCRIPTION)).
    Gpu,
}

/// SIMT oversubscription of GPU tile kernels: a well-batched update kernel
/// keeps several warps in flight per tile's worth of cores, hiding memory
/// latency. The value is calibrated jointly with the link model so that
/// (a) aggregate GPU throughput lands within an order of magnitude of the
/// paper's end-to-end rates (Fig. 8), (b) the communication share falls
/// with matrix size (Fig. 5), and (c) the device-count crossovers of
/// Table III appear at small-to-mid matrix sizes — while single-kernel
/// latencies stay on the Fig. 4 curves.
pub const GPU_OVERSUBSCRIPTION: usize = 8;

/// A simulated compute device: identity, parallelism and the Fig. 4-style
/// timing curves.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name (e.g. "GTX580").
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Number of parallel cores (paper: 4 / 512 / 1536).
    pub cores: usize,
    /// Per-kernel timing curves.
    pub times: StepTimes,
}

impl DeviceProfile {
    /// Number of tile kernels the device can run concurrently at tile size
    /// `b` (the paper's "parallelism" of a device, §III-B).
    pub fn slots(&self, b: usize) -> usize {
        match self.kind {
            DeviceKind::Cpu => self.cores.max(1),
            DeviceKind::Gpu => (self.cores * GPU_OVERSUBSCRIPTION / b.max(1)).max(1),
        }
    }

    /// Latency of one `class` kernel at tile size `b`, microseconds.
    pub fn kernel_time_us(&self, class: KernelClass, b: usize) -> f64 {
        self.times.time_us(class, b)
    }

    /// Update throughput in tiles per microsecond at tile size `b`
    /// (`slots / update_latency`) — the paper's "number of tiles that can
    /// be updated in a unit time" used to build the distribution guide
    /// array (Alg. 4).
    pub fn update_throughput(&self, b: usize) -> f64 {
        self.slots(b) as f64 / self.kernel_time_us(KernelClass::Update, b)
    }

    /// A persistently degraded copy of this device: every timing
    /// coefficient scaled by `factor` (`>= 1.0`), so all kernels run
    /// `factor`× slower. This is the *steady-state* counterpart of a
    /// [`crate::DeviceFault`] spike — feed it to the Alg. 2/3 predictors
    /// to ask how the paper's selections shift when a device misbehaves
    /// for a whole run.
    pub fn slowed(&self, factor: f64) -> DeviceProfile {
        assert!(factor >= 1.0, "degradation must not speed the device up");
        let scale = |t: &StepTimes| StepTimes {
            triangulation: scale_timing(t.triangulation, factor),
            elimination: scale_timing(t.elimination, factor),
            update: scale_timing(t.update, factor),
        };
        DeviceProfile {
            name: format!("{}-slow{factor}", self.name),
            kind: self.kind,
            cores: self.cores,
            times: scale(&self.times),
        }
    }
}

fn scale_timing(t: crate::timing::KernelTiming, factor: f64) -> crate::timing::KernelTiming {
    crate::timing::KernelTiming {
        c0: t.c0 * factor,
        c1: t.c1 * factor,
        c2: t.c2 * factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn gpu_slots_scale_inverse_with_tile() {
        let g = profiles::gtx580();
        assert_eq!(g.slots(16), 512 * GPU_OVERSUBSCRIPTION / 16);
        assert_eq!(g.slots(32), 512 * GPU_OVERSUBSCRIPTION / 32);
        assert_eq!(g.slots(16), 2 * g.slots(32));
        assert!(g.slots(10_000_000) >= 1, "slots never hit zero");
    }

    #[test]
    fn cpu_slots_equal_cores() {
        let c = profiles::cpu_i7_3820();
        assert_eq!(c.slots(16), 4);
        assert_eq!(c.slots(64), 4);
    }

    #[test]
    fn gtx680_has_more_update_throughput_than_gtx580() {
        // The paper's premise (§VI-B): GTX680 is slower per kernel but its
        // 1536 cores make it the better update device.
        let g580 = profiles::gtx580();
        let g680 = profiles::gtx680();
        assert!(
            g680.kernel_time_us(KernelClass::Elimination, 16)
                > g580.kernel_time_us(KernelClass::Elimination, 16),
            "680 must be slower per elimination kernel"
        );
        assert!(
            g680.update_throughput(16) > g580.update_throughput(16),
            "680 must have higher update throughput"
        );
    }

    #[test]
    fn cpu_is_slowest_everywhere() {
        let cpu = profiles::cpu_i7_3820();
        for dev in [profiles::gtx580(), profiles::gtx680()] {
            for class in [
                KernelClass::Triangulation,
                KernelClass::Elimination,
                KernelClass::Update,
            ] {
                assert!(cpu.kernel_time_us(class, 16) > dev.kernel_time_us(class, 16));
            }
            assert!(cpu.update_throughput(16) < dev.update_throughput(16));
        }
    }
}
