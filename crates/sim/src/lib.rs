//! Discrete-event simulator of a CPU + multi-GPU heterogeneous node.
//!
//! The paper evaluates on real hardware (an i7-3820 plus one GTX580 and two
//! GTX680 GPUs on a PCIe bus). This crate substitutes that testbed with a
//! simulator whose inputs are exactly the quantities the paper's
//! optimization algorithms consume:
//!
//! * per-device, per-kernel tile times — polynomial models *calibrated to
//!   the paper's Fig. 4 curves* ([`profiles`]),
//! * per-device update parallelism (how many tile updates a device batches
//!   concurrently),
//! * a host-mediated PCIe link with latency + bandwidth, serialized as a
//!   single shared bus ([`Link`]),
//! * non-preemptive device slots (a device runs at most `slots` kernel
//!   instances at once; queued work waits — §I of the paper).
//!
//! [`engine::simulate`] executes a full tiled-QR [`tileqr_dag::TaskGraph`]
//! under a task→device assignment and reports makespan, per-device busy
//! time and bus (communication) time — the raw material for Figs. 5–10 and
//! Table III.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
pub mod engine;
pub mod fault;
mod link;
mod platform;
pub mod profiles;
pub mod stats;
mod timing;
pub mod trace;

pub use device::{DeviceId, DeviceKind, DeviceProfile, GPU_OVERSUBSCRIPTION};
pub use fault::{DeviceDeath, DeviceFault, FaultPlan, KernelFault, LinkFault};
pub use link::Link;
pub use platform::{Platform, SimConfig};
pub use stats::SimStats;
pub use timing::{KernelClass, KernelTiming, StepTimes};
pub use trace::{TaskSpan, Timeline, TransferSpan};
