//! The user-facing factorization object.

use crate::options::QrOptions;
use tileqr_dag::TaskGraph;
use tileqr_kernels::exec::{apply_q_dense, apply_qt_dense, FactorState};
use tileqr_matrix::{Matrix, MatrixError, Result, Scalar, TiledMatrix};
use tileqr_runtime::service::{JobOutput, JobSpec, QrService};
use tileqr_runtime::{parallel_factor_ft, parallel_factor_traced, PoolConfig, RunReport};

/// A completed tiled QR factorization `A = Q R`.
///
/// `Q` is held implicitly as Householder blocks inside the factored tiles;
/// [`TiledQr::q`] materializes it, [`TiledQr::apply_qt`] /
/// [`TiledQr::apply_q`] apply it without materializing, and
/// [`TiledQr::solve`] uses it for linear systems and least-squares
/// problems (the paper's motivating use, Eqs. 2–3).
#[derive(Debug, Clone)]
pub struct TiledQr<T: Scalar> {
    state: FactorState<T>,
    graph: TaskGraph,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> TiledQr<T> {
    /// Factor `a` (requires `rows >= cols`).
    pub fn factor(a: &Matrix<T>, opts: &QrOptions) -> Result<Self> {
        Self::factor_traced(a, opts).map(|(f, _)| f)
    }

    /// [`TiledQr::factor`] returning the runtime's [`RunReport`]
    /// alongside the factorization. With [`QrOptions::tracing`] enabled
    /// the report carries the run's unified lifecycle trace
    /// (`report.trace`), ready for Chrome-trace export, latency
    /// histograms, or calibration via the `obs` module.
    pub fn factor_traced(a: &Matrix<T>, opts: &QrOptions) -> Result<(Self, RunReport)> {
        let (rows, cols) = a.dims();
        if rows < cols {
            return Err(MatrixError::DimensionMismatch {
                op: "TiledQr::factor (needs rows >= cols)",
                lhs: (rows, cols),
                rhs: (cols, cols),
            });
        }
        let tiled = TiledMatrix::from_matrix(a, opts.get_tile_size())?;
        let tree = opts
            .get_tree()
            .resolve(tiled.tile_rows(), tiled.tile_cols());
        let graph = TaskGraph::build_tree(tiled.tile_rows(), tiled.tile_cols(), tree);
        let state = match opts.get_inner_block() {
            Some(ib) => FactorState::with_inner_block(tiled, ib),
            None => FactorState::new(tiled),
        };
        let config = PoolConfig {
            workers: opts.get_workers(),
            policy: opts.get_schedule(),
            trace: opts.get_tracing(),
            workspace: opts.get_workspace(),
            cost: opts.get_cost_model(),
            drift: opts.get_drift(),
        };
        let (state, report) = match opts.get_fault_tolerance() {
            // A single worker runs inline either way, so fault tolerance
            // only engages the recovering pool on a real pool.
            Some(ft) if opts.get_workers() != 1 => {
                parallel_factor_ft(state, &graph, config, Some(ft), None)
                    .map_err(MatrixError::from)?
            }
            _ => parallel_factor_traced(state, &graph, config)?,
        };
        Ok((
            TiledQr {
                state,
                graph,
                rows,
                cols,
            },
            report,
        ))
    }

    /// Factor `a` through a resident [`QrService`] — the single-matrix
    /// path expressed as a one-job service call. The job inherits the
    /// tile size, elimination-tree policy, and inner block from `opts` (worker
    /// count, schedule policy, and fault tolerance are properties of the
    /// service itself — see [`QrOptions::to_service_config`]). Blocks
    /// until the service completes the job; the returned [`RunReport`]
    /// covers this job alone.
    pub fn factor_on(
        service: &QrService<T>,
        a: &Matrix<T>,
        opts: &QrOptions,
    ) -> Result<(Self, RunReport)> {
        let mut spec = JobSpec::factor(a.clone())
            .tile_size(opts.get_tile_size())
            .tree(opts.get_tree())
            .cost_model(opts.get_cost_model());
        if let Some(ib) = opts.get_inner_block() {
            spec = spec.inner_block(ib);
        }
        let handle = service.submit(spec).map_err(MatrixError::from)?;
        let result = handle.wait().map_err(MatrixError::from)?;
        let report = result.report;
        let JobOutput::Factored(f) = result.output else {
            return Err(MatrixError::Runtime {
                reason: "service returned a non-factor output for a factor job".to_string(),
            });
        };
        Ok((Self::from_job(f), report))
    }

    /// Wrap a completed service factor job (crate-internal: the
    /// service and tuner paths both end here).
    pub(crate) fn from_job(f: tileqr_runtime::service::FactoredJob<T>) -> Self {
        TiledQr {
            state: f.state,
            graph: f.graph,
            rows: f.rows,
            cols: f.cols,
        }
    }

    /// Original (unpadded) dimensions of the factored matrix.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The task graph the factorization executed.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The internal factor state (tiles + reflector factors).
    pub fn state(&self) -> &FactorState<T> {
        &self.state
    }

    /// The upper-triangular factor `R` (`rows x cols`, unpadded).
    pub fn r(&self) -> Matrix<T> {
        let full = self.state.r_matrix();
        // r_matrix returns the unpadded dims already.
        debug_assert_eq!(full.dims(), (self.rows, self.cols));
        full
    }

    /// Materialize the orthogonal factor `Q` (`rows x rows`).
    pub fn q(&self) -> Result<Matrix<T>> {
        let (pm, _) = self.state.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&self.state, &self.graph, &mut q)?;
        q.submatrix(0, 0, self.rows, self.rows)
    }

    /// Compute `Qᵀ c` for a dense `c` with `rows` rows, without forming `Q`.
    pub fn apply_qt(&self, c: &Matrix<T>) -> Result<Matrix<T>> {
        let padded = self.pad_rows(c)?;
        let mut work = padded;
        apply_qt_dense(&self.state, &self.graph, &mut work)?;
        work.submatrix(0, 0, self.rows, c.cols())
    }

    /// Compute `Q c` for a dense `c` with `rows` rows, without forming `Q`.
    pub fn apply_q(&self, c: &Matrix<T>) -> Result<Matrix<T>> {
        let padded = self.pad_rows(c)?;
        let mut work = padded;
        apply_q_dense(&self.state, &self.graph, &mut work)?;
        work.submatrix(0, 0, self.rows, c.cols())
    }

    fn pad_rows(&self, c: &Matrix<T>) -> Result<Matrix<T>> {
        if c.rows() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "apply_q/apply_qt (row count)",
                lhs: (self.rows, 0),
                rhs: c.dims(),
            });
        }
        let (pm, _) = self.state.tiles().padded_dims();
        let mut out = Matrix::zeros(pm, c.cols());
        out.set_submatrix(0, 0, c)?;
        Ok(out)
    }

    /// Solve `A x = b` (square `A`) or the least-squares problem
    /// `min ‖A x − b‖₂` (tall `A`): `x = R⁻¹ (Qᵀ b)₁..ₙ` (paper Eqs. 2–3).
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        if b.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "solve (rhs length)",
                lhs: (self.rows, 1),
                rhs: (b.len(), 1),
            });
        }
        let bm = Matrix::from_col_major(self.rows, 1, b.to_vec())?;
        let qtb = self.apply_qt(&bm)?;
        let r_sq = self.r().submatrix(0, 0, self.cols, self.cols)?;
        tileqr_matrix::ops::solve_upper_triangular(&r_sq, &qtb.as_slice()[..self.cols])
    }

    /// Solve against multiple right-hand sides at once.
    pub fn solve_matrix(&self, b: &Matrix<T>) -> Result<Matrix<T>> {
        let qtb = self.apply_qt(b)?;
        let r_sq = self.r().submatrix(0, 0, self.cols, self.cols)?;
        let top = qtb.submatrix(0, 0, self.cols, b.cols())?;
        tileqr_matrix::ops::solve_upper_triangular_matrix(&r_sq, &top)
    }

    /// Estimate the 2-norm condition number of a square `A` from its `R`
    /// factor (`κ₂(A) = κ₂(R)` since `Q` is orthogonal), by power
    /// iteration with triangular solves. Errors on exactly singular `R`.
    pub fn condition_estimate(&self) -> Result<T> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare {
                dims: (self.rows, self.cols),
            });
        }
        let r = self.r();
        tileqr_matrix::ops::triangular_condition_est(&r, 30)
    }

    /// Absolute value of `det(A)` for square `A`: the product of `|R|`'s
    /// diagonal (`|det Q| = 1`).
    pub fn det_abs(&self) -> Result<T> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare {
                dims: (self.rows, self.cols),
            });
        }
        let r = self.r();
        let mut d = T::ONE;
        for i in 0..self.cols {
            d *= r[(i, i)].abs();
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::{diagonally_dominant, random_matrix, random_vector};
    use tileqr_matrix::ops::{matmul, matvec, orthogonality_defect, relative_residual};

    #[test]
    fn factor_and_reconstruct() {
        let a = random_matrix::<f64>(40, 40, 1);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let q = f.q().unwrap();
        let r = f.r();
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-14);
        assert!(orthogonality_defect(&q).unwrap() < 1e-13);
    }

    #[test]
    fn non_divisible_sizes_padded_transparently() {
        // 37 is not a multiple of 8: exercises the padding path end to end.
        let a = random_matrix::<f64>(37, 37, 2);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let q = f.q().unwrap();
        assert_eq!(q.dims(), (37, 37));
        let r = f.r();
        assert_eq!(r.dims(), (37, 37));
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-13);
        assert!(orthogonality_defect(&q).unwrap() < 1e-13);
    }

    #[test]
    fn tall_matrix_least_squares() {
        let a = random_matrix::<f64>(50, 20, 3);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let b = random_vector::<f64>(50, 4);
        let x = f.solve(&b).unwrap();
        // Normal equations: A^T (A x - b) = 0.
        let ax = matvec(&a, &x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        for v in matvec(&a.transpose(), &resid).unwrap() {
            assert!(v.abs() < 1e-10, "{v}");
        }
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = random_matrix::<f64>(5, 9, 5);
        assert!(TiledQr::factor(&a, &QrOptions::default()).is_err());
    }

    #[test]
    fn solve_square_system() {
        let a = diagonally_dominant::<f64>(33, 6);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(16)).unwrap();
        let x_true = random_vector::<f64>(33, 7);
        let b = matvec(&a, &x_true).unwrap();
        let x = f.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = diagonally_dominant::<f64>(24, 8);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let xs = random_matrix::<f64>(24, 3, 9);
        let b = matmul(&a, &xs).unwrap();
        let solved = f.solve_matrix(&b).unwrap();
        assert!(solved.approx_eq(&xs, 1e-8));
    }

    #[test]
    fn apply_without_materializing_matches_explicit() {
        let a = random_matrix::<f64>(24, 24, 10);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let c = random_matrix::<f64>(24, 5, 11);
        let q = f.q().unwrap();
        let expect = matmul(&q.transpose(), &c).unwrap();
        let got = f.apply_qt(&c).unwrap();
        assert!(got.approx_eq(&expect, 1e-11));
        let expect2 = matmul(&q, &c).unwrap();
        let got2 = f.apply_q(&c).unwrap();
        assert!(got2.approx_eq(&expect2, 1e-11));
    }

    #[test]
    fn det_abs_of_identity_like() {
        let a = Matrix::<f64>::identity(12).scaled(2.0);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
        let d = f.det_abs().unwrap();
        assert!((d - 2f64.powi(12)).abs() / 2f64.powi(12) < 1e-12);
    }

    #[test]
    fn condition_estimate_tracks_known_conditioning() {
        // Well conditioned: diagonally dominant.
        let good = diagonally_dominant::<f64>(24, 20);
        let fg = TiledQr::factor(&good, &QrOptions::new().tile_size(8)).unwrap();
        let kg = fg.condition_estimate().unwrap();
        assert!(kg < 100.0, "κ={kg}");
        // Badly conditioned: Hilbert.
        let bad = tileqr_matrix::gen::hilbert::<f64>(12);
        let fb = TiledQr::factor(&bad, &QrOptions::new().tile_size(4)).unwrap();
        let kb = fb.condition_estimate().unwrap();
        assert!(kb > 1e8, "Hilbert κ={kb}");
        // Rectangular rejected.
        let rect = random_matrix::<f64>(10, 4, 21);
        let fr = TiledQr::factor(&rect, &QrOptions::new().tile_size(4)).unwrap();
        assert!(fr.condition_estimate().is_err());
    }

    #[test]
    fn det_requires_square() {
        let a = random_matrix::<f64>(10, 4, 12);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(4)).unwrap();
        assert!(f.det_abs().is_err());
        assert!(f.solve(&[0.0; 3]).is_err());
    }

    #[test]
    fn parallel_option_produces_same_factor() {
        let a = random_matrix::<f64>(48, 48, 13);
        let seq = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let par = TiledQr::factor(&a, &QrOptions::new().tile_size(8).workers(4)).unwrap();
        assert_eq!(seq.r(), par.r());
    }

    #[test]
    fn fault_tolerant_option_produces_same_factor() {
        use tileqr_runtime::FaultTolerance;
        let a = random_matrix::<f64>(48, 48, 13);
        let seq = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
        let ft = TiledQr::factor(
            &a,
            &QrOptions::new()
                .tile_size(8)
                .workers(4)
                .fault_tolerance(FaultTolerance::default()),
        )
        .unwrap();
        assert_eq!(seq.r(), ft.r(), "recovery-capable path stays bit-exact");
    }

    #[test]
    fn inner_blocked_option_factorizes_correctly() {
        let a = random_matrix::<f64>(32, 32, 15);
        let f = TiledQr::factor(&a, &QrOptions::new().tile_size(8).inner_block(4)).unwrap();
        let q = f.q().unwrap();
        let r = f.r();
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-13);
        assert!(orthogonality_defect(&q).unwrap() < 1e-13);
        // Solves work off the inner-blocked factors too.
        let x_true = random_vector::<f64>(32, 16);
        let b = matvec(&a, &x_true).unwrap();
        let x = f.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7);
        }
    }

    #[test]
    fn workspace_policies_produce_identical_factors() {
        use tileqr_kernels::WorkspacePolicy;
        let a = random_matrix::<f64>(40, 40, 16);
        let base = QrOptions::new().tile_size(8).workers(3);
        let pw = TiledQr::factor(&a, &base.workspace(WorkspacePolicy::PerWorker)).unwrap();
        let pc = TiledQr::factor(&a, &base.workspace(WorkspacePolicy::PerCall)).unwrap();
        assert_eq!(pw.r(), pc.r(), "scratch strategy must not change bits");
    }

    #[test]
    fn run_report_counters_surface_through_core() {
        let a = random_matrix::<f64>(32, 32, 17);
        let (_, report) =
            TiledQr::factor_traced(&a, &QrOptions::new().tile_size(8).workers(2)).unwrap();
        assert_eq!(report.cow_clones(), 0);
        assert_eq!(report.counters.workspace_resizes, 0);
        assert!(report.counters.workspace_bytes > 0);
    }

    #[test]
    fn one_shot_qr_helper() {
        let a = random_matrix::<f64>(32, 32, 14);
        let (q, r) = crate::qr(&a).unwrap();
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-13);
    }
}
