//! # tileqr — Tiled QR decomposition for heterogeneous systems
//!
//! A from-scratch Rust reproduction of *"Tiled QR Decomposition and Its
//! Optimization on CPU and GPU Computing System"* (Kim & Park, ICPP 2013).
//!
//! The crate has two faces:
//!
//! 1. **Numerics** — a complete tiled QR factorization built on
//!    hand-written Householder kernels (`GEQRT`, `UNMQR`, `TSQRT`,
//!    `TSMQR`, and the tree-variant `TTQRT`/`TTMQR`), runnable
//!    sequentially or on a manager/worker thread pool:
//!
//!    ```
//!    use tileqr::prelude::*;
//!
//!    let a = tileqr::gen::random_matrix::<f64>(64, 64, 7);
//!    let qr = TiledQr::factor(&a, &QrOptions::new().tile_size(8)).unwrap();
//!    let (q, r) = (qr.q().unwrap(), qr.r());
//!    let residual = tileqr::ops::relative_residual(&a, &q, &r).unwrap();
//!    assert!(residual < 1e-13);
//!    ```
//!
//! 2. **Heterogeneous scheduling** — the paper's three optimizations
//!    (main-device selection, device-count optimization via
//!    `T(p) = Top(p) + Tcomm(p)`, and guide-array tile distribution),
//!    evaluated on a calibrated simulator of the paper's CPU + 3-GPU
//!    testbed ([`hetero`], re-exporting `tileqr-sched` / `tileqr-sim`).
//!
//! See `DESIGN.md` in the repository root for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod factor;
pub mod hetero;
mod options;
pub mod tune;

pub use factor::TiledQr;
pub use options::QrOptions;
pub use tune::{JobPlan, TunedQrService, TunerConfig};

pub use tileqr_dag::{EliminationOrder, EliminationTree, TreePolicy};
pub use tileqr_matrix::{Matrix, MatrixError, Rng64, Scalar, TiledMatrix};

/// Workload generators (re-export of `tileqr-matrix`'s `gen` module).
pub use tileqr_matrix::gen;
/// BLAS-like dense operations (re-export of `tileqr-matrix`'s `ops`).
pub use tileqr_matrix::ops;

/// Low-level tile kernels, for users composing their own algorithms.
pub mod kernels {
    pub use tileqr_kernels::exec::{apply_q_dense, apply_qt_dense, FactorState, PanelFactor};
    pub use tileqr_kernels::flops;
    pub use tileqr_kernels::micro;
    pub use tileqr_kernels::reference;
    pub use tileqr_kernels::validate;
    pub use tileqr_kernels::{
        geqrt, geqrt_apply, geqrt_apply_ws, geqrt_ib, geqrt_ib_apply, geqrt_ib_apply_ws,
        geqrt_ib_ws, geqrt_ws, larfg, tsmqr, tsmqr_apply, tsmqr_apply_ws, tsqrt, tsqrt_ws, ttmqr,
        ttmqr_apply, ttmqr_apply_ws, ttqrt, ttqrt_ws, unmqr, unmqr_ws, ApplySide,
        HouseholderReflector, Workspace, WorkspacePolicy,
    };
}

/// Task-graph construction and analysis (re-export of `tileqr-dag`).
pub mod dag {
    pub use tileqr_dag::*;
}

/// Parallel runtime (re-export of `tileqr-runtime`).
pub mod runtime {
    pub use tileqr_runtime::{
        parallel_factor, parallel_factor_ft, parallel_factor_ordered, parallel_factor_traced,
        DispatchOrder, FaultInjector, FaultTolerance, InjectedFault, NoFaults, PoolConfig,
        ReadyQueue, ReadyTracker, RunReport, RuntimeError, SchedulePolicy, ScriptedFaults,
        TraceConfig,
    };
    pub use tileqr_runtime::{ClassCosts, CostCurve, CostModel, DriftConfig};
    pub use tileqr_runtime::{
        FactoredJob, JobHandle, JobId, JobOutput, JobResult, JobSpec, JobTuning, PriorityClass,
        QrService, ServiceConfig, ServiceError, ServiceStats, TreeSelector, WaitTimeout,
    };
}

/// Unified observability: lifecycle traces over the real pool and the
/// simulator, Chrome-trace export, per-kernel latency histograms, and
/// sim-vs-real calibration (re-export of `tileqr-obs`).
pub mod obs {
    pub use tileqr_obs::*;
}

/// Convenience one-shot QR: factor `a` with default options and return
/// `(Q, R)` such that `A = Q R`.
pub fn qr<T: Scalar>(a: &Matrix<T>) -> tileqr_matrix::Result<(Matrix<T>, Matrix<T>)> {
    let f = TiledQr::factor(a, &QrOptions::default())?;
    Ok((f.q()?, f.r()))
}

/// Everything most users need.
pub mod prelude {
    pub use crate::{qr, QrOptions, TiledQr, TunedQrService};
    pub use tileqr_dag::{EliminationOrder, EliminationTree, TreePolicy};
    pub use tileqr_matrix::{Matrix, Scalar, TiledMatrix};
    pub use tileqr_runtime::{
        FaultTolerance, JobSpec, PriorityClass, QrService, SchedulePolicy, ServiceConfig,
    };
}
