//! Service-level online autotuning.
//!
//! [`TunedQrService`] wraps a resident [`QrService`] with a per-shape
//! profile cache that closes the calibration loop end to end:
//!
//! 1. The **first jobs** of each `(rows, cols)` shape class run as
//!    *calibration probes* — one per candidate tile size, tagged
//!    [`JobTuning::Probe`] — and their per-class kernel timings
//!    ([`tileqr_runtime::JobResult::class_compute_us`]) are folded into a
//!    sample set.
//! 2. Once three distinct tile sizes have produced samples for every
//!    kernel class, the curves are fit
//!    ([`tileqr_obs::fit_step_times`]) into a calibrated
//!    [`DeviceProfile`] and the shape flips to *tuned*.
//! 3. **Every later job** of that shape resolves its plan from the
//!    measured profile: `tileqr_sched::select::select_plan` sweeps
//!    `(tile size, elimination tree)` candidates through the
//!    discrete-event simulator and the winner runs with
//!    [`CostModel::Calibrated`] priorities, tagged [`JobTuning::Tuned`].
//! 4. Fitted profiles **persist** as JSON
//!    ([`tileqr_obs::ProfileStore`]): point `TILEQR_PROFILE` (or
//!    [`TunerConfig::profile_path`]) at a store file and later services
//!    warm-start tuned — zero probe jobs for known shapes.
//!
//! This unifies the Song-style probe tuner (`tileqr::hetero::autotune`)
//! with the geometry-aware tree selector into one tuning path over real
//! measurements: the probe *is* the calibration run, and the sweep is a
//! simulation over fitted curves instead of repeated real runs.
//!
//! Probing is a scheduling concern only — probe jobs produce exactly the
//! same bit-exact factors as tuned or standard jobs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::factor::TiledQr;
use tileqr_dag::{EliminationTree, TreePolicy};
use tileqr_matrix::{Matrix, MatrixError, Result, Scalar};
use tileqr_obs::{
    cost_model, default_profile_path, fit_step_times, fitted_profile, KernelSample, ProfileStore,
};
use tileqr_runtime::service::{
    JobOutput, JobResult, JobSpec, JobTuning, QrService, ServiceConfig, ServiceStats,
};
use tileqr_runtime::{CostModel, RunReport};
use tileqr_sched::select::{select_plan, Selection};
use tileqr_sim::{DeviceKind, DeviceProfile, KernelClass};

/// Knobs for the online tuner.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Tile sizes probed per shape class *and* swept by the plan
    /// selector once calibrated. At least three distinct sizes are
    /// needed before the per-class cubic curves can be fit.
    pub probe_tiles: Vec<usize>,
    /// Explicit profile-store path. `None` falls back to the
    /// `TILEQR_PROFILE` environment variable
    /// ([`tileqr_obs::default_profile_path`]); if neither is set,
    /// profiles live only in memory.
    pub profile_path: Option<PathBuf>,
}

impl Default for TunerConfig {
    /// Probe tiles `[8, 16, 32]` (the paper's tile size bracketed one
    /// octave each way), persistence from the environment.
    fn default() -> Self {
        TunerConfig {
            probe_tiles: vec![8, 16, 32],
            profile_path: None,
        }
    }
}

/// What the tuner knows about one `(rows, cols)` shape class.
enum ShapeEntry {
    /// Still collecting probe samples.
    Probing {
        samples: Vec<KernelSample>,
        probed: Vec<usize>,
    },
    /// Calibrated: plans resolve from this fitted profile.
    Ready { profile: DeviceProfile },
}

/// The plan one job runs under (resolved at submit time).
#[derive(Debug, Clone, PartialEq)]
pub enum JobPlan {
    /// Calibration probe at a fixed tile size (flat tree, flop costs).
    Probe {
        /// Tile size being probed.
        tile_size: usize,
    },
    /// Measured plan: selector-chosen tile size and tree, calibrated
    /// priorities.
    Tuned {
        /// Selector-chosen tile size.
        tile_size: usize,
        /// Selector-chosen elimination tree.
        tree: EliminationTree,
    },
    /// Probes exhausted without a fittable profile (degenerate shapes
    /// that never exercise all kernel classes); runs with defaults.
    Standard,
}

/// A resident [`QrService`] with an online per-shape autotuner in front
/// of it — see the [module docs](self) for the calibration loop.
pub struct TunedQrService<T: Scalar> {
    service: QrService<T>,
    shapes: Mutex<HashMap<(usize, usize), ShapeEntry>>,
    probe_tiles: Vec<usize>,
    path: Option<PathBuf>,
    cores: usize,
}

impl<T: Scalar> TunedQrService<T> {
    /// Start the service with default tuner knobs (probe tiles
    /// `[8, 16, 32]`, persistence from `TILEQR_PROFILE`).
    pub fn start(config: ServiceConfig) -> Self {
        Self::start_with(config, TunerConfig::default())
    }

    /// Start the service with explicit tuner knobs. Loads the profile
    /// store (if a path resolves and the file parses) so shapes
    /// calibrated by earlier runs warm-start tuned.
    pub fn start_with(config: ServiceConfig, tuner: TunerConfig) -> Self {
        assert!(
            !tuner.probe_tiles.is_empty(),
            "need at least one probe tile"
        );
        let cores = config.effective_workers().max(1);
        let path = tuner.profile_path.or_else(default_profile_path);
        let mut shapes = HashMap::new();
        if let Some(p) = &path {
            if let Ok(store) = ProfileStore::load(p) {
                for (key, profile) in store.entries {
                    if let Some(shape) = parse_shape_key(&key) {
                        shapes.insert(shape, ShapeEntry::Ready { profile });
                    }
                }
            }
        }
        TunedQrService {
            service: QrService::start(config),
            shapes: Mutex::new(shapes),
            probe_tiles: tuner.probe_tiles,
            path,
            cores,
        }
    }

    /// The wrapped service, for submitting untuned jobs alongside.
    pub fn service(&self) -> &QrService<T> {
        &self.service
    }

    /// Fitted profile for a shape class, once calibrated.
    pub fn profile_for(&self, rows: usize, cols: usize) -> Option<DeviceProfile> {
        match self.shapes.lock().unwrap().get(&(rows, cols)) {
            Some(ShapeEntry::Ready { profile }) => Some(profile.clone()),
            _ => None,
        }
    }

    /// The full selector ranking a tuned shape's next job would plan
    /// from (`None` while the shape is still probing).
    pub fn selection_for(&self, rows: usize, cols: usize) -> Option<Selection> {
        self.profile_for(rows, cols)
            .map(|p| select_plan(&p, rows, cols, &self.probe_tiles))
    }

    /// The plan the *next* `factor` call of this shape would run under
    /// (does not consume a probe slot).
    pub fn plan_for(&self, rows: usize, cols: usize) -> JobPlan {
        match self.shapes.lock().unwrap().get(&(rows, cols)) {
            Some(ShapeEntry::Ready { profile }) => {
                let best = select_plan(profile, rows, cols, &self.probe_tiles).best;
                JobPlan::Tuned {
                    tile_size: best.tile_size,
                    tree: best.tree,
                }
            }
            Some(ShapeEntry::Probing { probed, .. }) => {
                match self.probe_tiles.iter().find(|b| !probed.contains(b)) {
                    Some(&b) => JobPlan::Probe { tile_size: b },
                    None => JobPlan::Standard,
                }
            }
            None => JobPlan::Probe {
                tile_size: self.probe_tiles[0],
            },
        }
    }

    /// Factor `a` through the tuned service (blocking). Returns the
    /// factorization, the job's [`RunReport`], and the plan it ran
    /// under.
    pub fn factor(&self, a: &Matrix<T>) -> Result<(TiledQr<T>, RunReport, JobPlan)> {
        let (rows, cols) = a.dims();
        let plan = self.claim_plan(rows, cols);
        let spec = match &plan {
            JobPlan::Probe { tile_size } => JobSpec::factor(a.clone())
                .tile_size(*tile_size)
                .tuning(JobTuning::Probe),
            JobPlan::Tuned { tile_size, tree } => {
                let profile = self
                    .profile_for(rows, cols)
                    .expect("tuned plan implies a fitted profile");
                JobSpec::factor(a.clone())
                    .tile_size(*tile_size)
                    .tree(TreePolicy::Fixed(*tree))
                    .cost_model(cost_model(&profile))
                    .tuning(JobTuning::Tuned)
            }
            JobPlan::Standard => JobSpec::factor(a.clone()),
        };
        let handle = self.service.submit(spec).map_err(MatrixError::from)?;
        let result = handle.wait().map_err(MatrixError::from)?;
        if let JobPlan::Probe { tile_size } = plan {
            self.absorb_probe(rows, cols, tile_size, &result);
        }
        let report = result.report;
        let JobOutput::Factored(f) = result.output else {
            return Err(MatrixError::Runtime {
                reason: "service returned a non-factor output for a factor job".to_string(),
            });
        };
        Ok((TiledQr::from_job(f), report, plan))
    }

    /// Snapshot of the wrapped service's counters (probe vs tuned job
    /// counts live in [`ServiceStats::probe_jobs`] /
    /// [`ServiceStats::tuned_jobs`]).
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Drain and stop the wrapped service.
    pub fn shutdown(self) -> ServiceStats {
        self.service.shutdown()
    }

    /// Resolve (and claim, for probes) the plan for one submission.
    fn claim_plan(&self, rows: usize, cols: usize) -> JobPlan {
        let mut shapes = self.shapes.lock().unwrap();
        let entry = shapes
            .entry((rows, cols))
            .or_insert_with(|| ShapeEntry::Probing {
                samples: Vec::new(),
                probed: Vec::new(),
            });
        match entry {
            ShapeEntry::Ready { profile } => {
                let best = select_plan(profile, rows, cols, &self.probe_tiles).best;
                JobPlan::Tuned {
                    tile_size: best.tile_size,
                    tree: best.tree,
                }
            }
            ShapeEntry::Probing { probed, .. } => {
                match self.probe_tiles.iter().find(|b| !probed.contains(b)) {
                    Some(&b) => {
                        probed.push(b);
                        JobPlan::Probe { tile_size: b }
                    }
                    None => JobPlan::Standard,
                }
            }
        }
    }

    /// Fold one probe job's per-class means into the shape's sample set
    /// and fit a profile once enough distinct tile sizes reported.
    fn absorb_probe(&self, rows: usize, cols: usize, b: usize, result: &JobResult<T>) {
        let mut shapes = self.shapes.lock().unwrap();
        let Some(ShapeEntry::Probing { samples, .. }) = shapes.get_mut(&(rows, cols)) else {
            return;
        };
        let classes = [
            KernelClass::Triangulation,
            KernelClass::Elimination,
            KernelClass::Update,
        ];
        for (slot, class) in classes.into_iter().enumerate() {
            let n = result.class_tasks[slot];
            if n > 0 {
                samples.push(KernelSample {
                    class,
                    tile_size: b,
                    duration_us: result.class_compute_us[slot] / n as f64,
                });
            }
        }
        if let Some(times) = fit_step_times(samples) {
            let profile = fitted_profile(
                &format!("tuned-{rows}x{cols}"),
                DeviceKind::Cpu,
                self.cores,
                times,
            );
            self.persist(rows, cols, &profile);
            shapes.insert((rows, cols), ShapeEntry::Ready { profile });
        }
    }

    /// Best-effort write-through of a freshly fitted profile.
    fn persist(&self, rows: usize, cols: usize, profile: &DeviceProfile) {
        let Some(path) = &self.path else { return };
        let mut store = ProfileStore::load(path).unwrap_or_default();
        store.insert(&format!("{rows}x{cols}"), profile.clone());
        let _ = store.save(path);
    }
}

/// Parse a `"RxC"` store key back into a shape class.
fn parse_shape_key(key: &str) -> Option<(usize, usize)> {
    let (r, c) = key.split_once('x')?;
    Some((r.parse().ok()?, c.parse().ok()?))
}

/// A calibrated-cost [`CostModel`] for a shape class, once tuned —
/// convenience for driving plain [`TiledQr::factor`] runs (or the pool)
/// from a service-fitted profile.
pub fn tuned_cost_model(service_profile: &DeviceProfile) -> CostModel {
    cost_model(service_profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_runtime::SchedulePolicy;

    fn service() -> TunedQrService<f64> {
        let config = ServiceConfig {
            workers: 2,
            policy: SchedulePolicy::CriticalPath,
            ..ServiceConfig::default()
        };
        TunedQrService::start_with(
            config,
            TunerConfig {
                probe_tiles: vec![4, 8, 16],
                profile_path: None,
            },
        )
    }

    #[test]
    fn probes_then_tunes_one_shape_class() {
        let svc = service();
        let a = random_matrix::<f64>(48, 48, 7);
        // Three probes (one per candidate tile), each bit-exact against
        // a sequential run of the same plan.
        for round in 0..3 {
            let (f, _, plan) = svc.factor(&a).unwrap();
            let JobPlan::Probe { tile_size } = plan else {
                panic!("round {round} should probe, got {plan:?}");
            };
            let seq = TiledQr::factor(&a, &crate::QrOptions::new().tile_size(tile_size)).unwrap();
            assert_eq!(f.r(), seq.r(), "probe jobs stay bit-exact");
        }
        // Fourth job runs tuned off the fitted profile.
        let profile = svc.profile_for(48, 48).expect("profile fitted");
        assert!(profile.cores >= 1);
        let (f, _, plan) = svc.factor(&a).unwrap();
        let JobPlan::Tuned { tile_size, tree } = plan else {
            panic!("expected a tuned plan, got {plan:?}");
        };
        let seq = TiledQr::factor(
            &a,
            &crate::QrOptions::new()
                .tile_size(tile_size)
                .tree(TreePolicy::Fixed(tree)),
        )
        .unwrap();
        assert_eq!(f.r(), seq.r(), "tuned jobs stay bit-exact");
        let stats = svc.shutdown();
        assert_eq!(stats.probe_jobs, 3);
        assert_eq!(stats.tuned_jobs, 1);
    }

    #[test]
    fn plan_preview_does_not_consume_probe_slots() {
        let svc = service();
        assert_eq!(svc.plan_for(48, 48), JobPlan::Probe { tile_size: 4 });
        assert_eq!(
            svc.plan_for(48, 48),
            JobPlan::Probe { tile_size: 4 },
            "preview must not claim the slot"
        );
        svc.shutdown();
    }

    #[test]
    fn store_key_parses_shapes() {
        assert_eq!(parse_shape_key("256x128"), Some((256, 128)));
        assert_eq!(parse_shape_key("junk"), None);
        assert_eq!(parse_shape_key("12x"), None);
    }
}
