//! Heterogeneous-system facade: plan and simulate tiled QR on a CPU+GPU
//! node.
//!
//! Re-exports the scheduling (`tileqr-sched`) and simulation (`tileqr-sim`)
//! crates and adds a one-call entry point reproducing the paper's full
//! pipeline: Algorithm 2 (main device) → Algorithm 3 (device count) →
//! Algorithm 4 (guide-array distribution) → simulated execution.

pub use tileqr_sched::{
    assign, autotune, device_count, distribution, fastsim, guide, main_select, plan, ratio, replan,
    rowblock, select, AdaptiveRun, Distribution, DistributionStrategy, HeteroPlan,
    MainDevicePolicy, ReplanEvent, ReplanPolicy, Selection, TreeScore,
};
pub use tileqr_sim::{
    engine, profiles, DeviceId, DeviceKind, DeviceProfile, FaultPlan, KernelClass, KernelTiming,
    Link, Platform, SimConfig, SimStats, StepTimes,
};

/// Outcome of planning + simulating one heterogeneous tiled-QR run.
#[derive(Debug, Clone)]
pub struct HeteroRun {
    /// The plan the paper's algorithms produced.
    pub plan: HeteroPlan,
    /// Simulated execution statistics.
    pub stats: SimStats,
    /// Tile grid dimensions the run used.
    pub grid: (usize, usize),
}

/// Plan (Algorithms 2–4) and simulate a tiled QR of an `n x n` matrix on
/// `platform`, using the platform's configured tile size.
///
/// This is the "everything on defaults" path of the paper; the experiment
/// harness in `tileqr-bench` uses the lower-level pieces to build each
/// figure's baselines.
pub fn plan_and_simulate(platform: &Platform, n: usize) -> HeteroRun {
    plan_and_simulate_shape(platform, n, n)
}

/// [`plan_and_simulate`] for rectangular matrices (`rows >= cols` for a
/// QR factorization; tall-and-skinny panels are the classic case).
pub fn plan_and_simulate_shape(platform: &Platform, rows: usize, cols: usize) -> HeteroRun {
    let b = platform.config().tile_size;
    let mt = rows.div_ceil(b).max(1);
    let nt = cols.div_ceil(b).max(1);
    let plan = plan::plan(platform, mt, nt);
    let stats = fastsim::simulate_fast(platform, &plan, mt, nt);
    HeteroRun {
        plan,
        stats,
        grid: (mt, nt),
    }
}

/// Plan an `n x n` run, then simulate it under `faults` with mid-run
/// re-planning per `policy` — the fault-tolerant counterpart of
/// [`plan_and_simulate`]. With an empty fault plan the statistics match
/// the healthy run bit for bit.
pub fn plan_and_simulate_faulted(
    platform: &Platform,
    n: usize,
    faults: &FaultPlan,
    policy: &ReplanPolicy,
) -> AdaptiveRun {
    let b = platform.config().tile_size;
    let t = n.div_ceil(b).max(1);
    let initial = plan::plan(platform, t, t);
    replan::simulate_adaptive(platform, &initial, t, t, faults, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_paper_testbed() {
        let p = profiles::paper_testbed(16);
        let run = plan_and_simulate(&p, 3200);
        assert_eq!(run.grid, (200, 200));
        assert_eq!(run.plan.main, 0, "GTX580 main");
        assert!(run.stats.makespan_us > 0.0);
    }

    #[test]
    fn bigger_problems_take_longer() {
        let p = profiles::paper_testbed(16);
        let a = plan_and_simulate(&p, 1600).stats.makespan_s();
        let b = plan_and_simulate(&p, 6400).stats.makespan_s();
        assert!(b > a);
    }

    #[test]
    fn non_divisible_size_rounds_up() {
        let p = profiles::paper_testbed(16);
        let run = plan_and_simulate(&p, 100);
        assert_eq!(run.grid, (7, 7));
    }

    #[test]
    fn faulted_run_with_no_faults_matches_healthy() {
        let p = profiles::paper_testbed(16);
        let healthy = plan_and_simulate(&p, 1600);
        let run = plan_and_simulate_faulted(&p, 1600, &FaultPlan::none(), &ReplanPolicy::default());
        assert_eq!(run.stats, healthy.stats);
        assert_eq!(run.stats.replan_count, 0);
    }

    #[test]
    fn faulted_run_survives_a_device_death() {
        let p = profiles::paper_testbed(16);
        let healthy = plan_and_simulate(&p, 1600);
        let dead = healthy.plan.participants[0];
        let faults = FaultPlan::none().with_device_death(dead, healthy.stats.makespan_us * 0.4);
        let run = plan_and_simulate_faulted(&p, 1600, &faults, &ReplanPolicy::default());
        assert!(run.stats.replan_count >= 1);
        assert!(run.stats.makespan_us.is_finite());
        assert!(run.plan.excluded.contains(&dead));
    }

    #[test]
    fn tall_and_skinny_shape() {
        let p = profiles::paper_testbed(16);
        let run = plan_and_simulate_shape(&p, 6400, 640);
        assert_eq!(run.grid, (400, 40));
        assert!(run.stats.makespan_us > 0.0);
        // A tall panel is cheaper than the full square of its height.
        let square = plan_and_simulate(&p, 6400);
        assert!(run.stats.makespan_us < square.stats.makespan_us);
    }
}
