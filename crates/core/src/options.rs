//! Factorization options.

use tileqr_dag::{CostModel, EliminationOrder, TreePolicy};
use tileqr_kernels::WorkspacePolicy;
use tileqr_runtime::{DriftConfig, FaultTolerance, SchedulePolicy, ServiceConfig, TraceConfig};

/// Options controlling a [`crate::TiledQr`] factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QrOptions {
    tile_size: usize,
    tree: TreePolicy,
    workers: usize,
    schedule: SchedulePolicy,
    fault_tolerance: Option<FaultTolerance>,
    tracing: TraceConfig,
    inner_block: Option<usize>,
    workspace: WorkspacePolicy,
    cost: CostModel,
    drift: DriftConfig,
}

impl Default for QrOptions {
    /// Tile size 16 (the paper's choice, §V), TS elimination, sequential,
    /// FIFO dispatch, tracing off, full-tile inner blocking, per-worker
    /// scratch arenas.
    fn default() -> Self {
        QrOptions {
            tile_size: 16,
            tree: TreePolicy::default(),
            workers: 1,
            schedule: SchedulePolicy::Fifo,
            fault_tolerance: None,
            tracing: TraceConfig::default(),
            inner_block: None,
            workspace: WorkspacePolicy::default(),
            cost: CostModel::default(),
            drift: DriftConfig::default(),
        }
    }
}

impl QrOptions {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tile side length `b`. The paper uses 16; larger tiles amortize
    /// per-kernel overhead on the host at the cost of less parallelism.
    pub fn tile_size(mut self, b: usize) -> Self {
        assert!(b > 0, "tile size must be positive");
        self.tile_size = b;
        self
    }

    /// Elimination order (TS flat chain by default; TT trees shorten the
    /// critical path of tall matrices). Shorthand for
    /// [`tree`](Self::tree) with the corresponding fixed
    /// [`tileqr_dag::EliminationTree`]; kept for the paper-vocabulary API.
    pub fn order(mut self, order: EliminationOrder) -> Self {
        self.tree = TreePolicy::Fixed(order.into());
        self
    }

    /// Elimination-tree policy: pin a specific
    /// [`tileqr_dag::EliminationTree`] from the zoo (flat, binary,
    /// Fibonacci, greedy, plateau, TSQR), or let [`TreePolicy::Auto`]
    /// pick per geometry — the TSQR reduction tree on tall-skinny grids,
    /// greedy on very tall ones, the flat TS chain otherwise.
    pub fn tree(mut self, policy: TreePolicy) -> Self {
        self.tree = policy;
        self
    }

    /// Number of computing threads; `1` runs sequentially, `0` uses every
    /// available core.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Dispatch policy for the parallel runtime: FIFO (default) or
    /// critical-path-priority. Irrelevant when `workers == 1`; the two
    /// policies produce bit-identical factors either way.
    pub fn schedule(mut self, policy: SchedulePolicy) -> Self {
        self.schedule = policy;
        self
    }

    /// Enable fault-tolerant execution: worker panics and kernel errors
    /// are retried within `ft`'s budget instead of failing the run, and
    /// stalled workers are retired by the watchdog. Costs one tile-clone
    /// per task staging (so requeues are possible) plus manager-side
    /// commits; the factors remain bit-identical to the sequential run.
    /// Irrelevant when `workers == 1`.
    pub fn fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.fault_tolerance = Some(ft);
        self
    }

    /// Record a lifecycle trace of the run: per-worker
    /// stage/compute/commit spans plus manager scheduling instants,
    /// surfaced through [`crate::TiledQr::factor_traced`]'s
    /// [`tileqr_runtime::RunReport::trace`]. Off by default — a disabled
    /// config costs nothing on the execution hot path.
    pub fn tracing(mut self, trace: TraceConfig) -> Self {
        self.tracing = trace;
        self
    }

    /// Inner block size `ib` for `GEQRT` panels (PLASMA-style). `None`
    /// (the default) factors each tile with one full-tile `T` factor;
    /// `Some(ib)` with `ib < b` stores one factor per `ib`-column panel,
    /// trading slightly more apply work for smaller working sets. Clamped
    /// to `[1, b]` at execution.
    pub fn inner_block(mut self, ib: usize) -> Self {
        assert!(ib > 0, "inner block must be positive");
        self.inner_block = Some(ib);
        self
    }

    /// Kernel-scratch strategy for the execution hot path:
    /// [`WorkspacePolicy::PerWorker`] (default) reuses one pre-sized arena
    /// per computing thread — zero steady-state heap allocations —
    /// while [`WorkspacePolicy::PerCall`] re-allocates scratch in every
    /// kernel invocation (the baseline behaviour, kept for comparison).
    /// Both produce bit-identical factors.
    pub fn workspace(mut self, policy: WorkspacePolicy) -> Self {
        self.workspace = policy;
        self
    }

    /// Task-cost model for scheduling priorities:
    /// [`CostModel::Flops`] (default) ranks by kernel flop counts, while
    /// [`CostModel::Calibrated`] ranks by measured microseconds from
    /// fitted per-class timing curves (`tileqr::obs::cost_model` derives
    /// one from a calibrated device profile). Affects only dispatch
    /// order; the factors stay bit-identical.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Online drift re-weighting: with a calibrated cost model, the
    /// runtime compares live kernel durations against the model at panel
    /// boundaries and re-ranks the remaining DAG once the damped
    /// threshold is crossed. Off by default; requires
    /// [`cost_model`](Self::cost_model) with calibrated curves to have
    /// any effect.
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.drift = drift;
        self
    }

    /// Configured tile size.
    pub fn get_tile_size(&self) -> usize {
        self.tile_size
    }

    /// Configured elimination-tree policy.
    pub fn get_tree(&self) -> TreePolicy {
        self.tree
    }

    /// Configured worker count (`0` = all cores).
    pub fn get_workers(&self) -> usize {
        self.workers
    }

    /// Configured dispatch policy.
    pub fn get_schedule(&self) -> SchedulePolicy {
        self.schedule
    }

    /// Configured fault-tolerance bounds (`None` = fail fast).
    pub fn get_fault_tolerance(&self) -> Option<FaultTolerance> {
        self.fault_tolerance
    }

    /// Configured tracing (disabled by default).
    pub fn get_tracing(&self) -> TraceConfig {
        self.tracing
    }

    /// Configured inner block (`None` = full-tile factors).
    pub fn get_inner_block(&self) -> Option<usize> {
        self.inner_block
    }

    /// Configured workspace policy.
    pub fn get_workspace(&self) -> WorkspacePolicy {
        self.workspace
    }

    /// Configured cost model ([`CostModel::Flops`] by default).
    pub fn get_cost_model(&self) -> CostModel {
        self.cost
    }

    /// Configured drift re-weighting (disabled by default).
    pub fn get_drift(&self) -> DriftConfig {
        self.drift
    }

    /// Derive a resident-service configuration from these options: the
    /// worker count, schedule policy, workspace policy, and (if set)
    /// fault-tolerance budget carry over; admission and batching bounds
    /// take the service defaults. Pair with
    /// [`TiledQr::factor_on`](crate::TiledQr::factor_on) to route the
    /// single-matrix path through one long-lived
    /// [`QrService`](tileqr_runtime::QrService).
    pub fn to_service_config(&self) -> ServiceConfig {
        ServiceConfig {
            workers: self.workers,
            policy: self.schedule,
            fault_tolerance: self.fault_tolerance.unwrap_or_default(),
            workspace: self.workspace,
            cost: self.cost,
            drift: self.drift,
            ..ServiceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = QrOptions::default();
        assert_eq!(o.get_tile_size(), 16);
        assert_eq!(
            o.get_tree(),
            TreePolicy::Fixed(tileqr_dag::EliminationTree::Flat)
        );
        assert_eq!(o.get_workers(), 1);
        assert_eq!(o.get_schedule(), SchedulePolicy::Fifo);
        assert_eq!(o.get_fault_tolerance(), None, "fail fast by default");
        assert!(!o.get_tracing().enabled, "tracing off by default");
        assert_eq!(o.get_inner_block(), None, "full-tile factors by default");
        assert_eq!(o.get_workspace(), WorkspacePolicy::PerWorker);
    }

    #[test]
    fn memory_knobs() {
        let o = QrOptions::new()
            .inner_block(4)
            .workspace(WorkspacePolicy::PerCall);
        assert_eq!(o.get_inner_block(), Some(4));
        assert_eq!(o.get_workspace(), WorkspacePolicy::PerCall);
    }

    #[test]
    #[should_panic]
    fn zero_inner_block_rejected() {
        let _ = QrOptions::new().inner_block(0);
    }

    #[test]
    fn tracing_knob() {
        let o = QrOptions::new().tracing(TraceConfig::enabled());
        assert!(o.get_tracing().enabled);
    }

    #[test]
    fn fault_tolerance_knob() {
        let ft = FaultTolerance::default();
        let o = QrOptions::new().workers(4).fault_tolerance(ft);
        assert_eq!(o.get_fault_tolerance(), Some(ft));
    }

    #[test]
    fn builder_chains() {
        let o = QrOptions::new()
            .tile_size(32)
            .order(EliminationOrder::BinaryTt)
            .workers(0)
            .schedule(SchedulePolicy::CriticalPath);
        assert_eq!(o.get_tile_size(), 32);
        assert_eq!(
            o.get_tree(),
            TreePolicy::Fixed(tileqr_dag::EliminationTree::Binary)
        );
        assert_eq!(o.get_workers(), 0);
        assert_eq!(o.get_schedule(), SchedulePolicy::CriticalPath);
    }

    #[test]
    fn tree_knob() {
        use tileqr_dag::EliminationTree;
        let o = QrOptions::new().tree(TreePolicy::Auto);
        assert_eq!(o.get_tree(), TreePolicy::Auto);
        let o = o.tree(TreePolicy::Fixed(EliminationTree::Greedy));
        assert_eq!(o.get_tree(), TreePolicy::Fixed(EliminationTree::Greedy));
    }

    #[test]
    #[should_panic]
    fn zero_tile_rejected() {
        let _ = QrOptions::new().tile_size(0);
    }

    #[test]
    fn cost_and_drift_knobs_flow_into_service_config() {
        use tileqr_dag::{ClassCosts, CostCurve};
        let costs = ClassCosts {
            triangulation: CostCurve {
                c0: 2.0,
                c1: 0.0,
                c2: 0.004,
            },
            elimination: CostCurve {
                c0: 2.0,
                c1: 0.0,
                c2: 0.004,
            },
            update: CostCurve {
                c0: 2.0,
                c1: 0.0,
                c2: 0.006,
            },
        };
        let o = QrOptions::new()
            .cost_model(CostModel::Calibrated(costs))
            .drift(DriftConfig::on());
        assert_eq!(o.get_cost_model(), CostModel::Calibrated(costs));
        assert!(o.get_drift().enabled);
        let sc = o.to_service_config();
        assert_eq!(sc.cost, CostModel::Calibrated(costs));
        assert!(sc.drift.enabled);
        // Defaults stay inert.
        let d = QrOptions::default();
        assert_eq!(d.get_cost_model(), CostModel::Flops);
        assert!(!d.get_drift().enabled);
    }
}
