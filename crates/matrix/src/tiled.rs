//! Tiled matrix layout.
//!
//! Tiled QR decomposition (paper §II-B) divides the input matrix into square
//! tiles; each tile is processed by one kernel invocation on one device.
//! [`TiledMatrix`] owns an `mt x nt` grid of [`Matrix`] tiles, zero-padding
//! the right/bottom edges when the global dimensions are not multiples of
//! the tile size, and remembers the true dimensions so the padding can be
//! stripped on reassembly.
//!
//! Tiles are reference-counted ([`Arc`]): a parallel runtime hands a tile
//! to a reader as a pointer clone instead of an `O(b²)` deep copy, and
//! in-place mutation goes through [`Arc::make_mut`], which only copies when
//! the tile is actually shared (copy-on-write). Sequential callers see the
//! same `tile()` / `tile_mut()` API as before.

use crate::{Matrix, MatrixError, Result, Scalar};
use std::sync::Arc;

/// A matrix partitioned into square tiles of side `tile_size`.
#[derive(Clone, Debug, PartialEq)]
pub struct TiledMatrix<T: Scalar> {
    tile_size: usize,
    /// Number of tile rows.
    mt: usize,
    /// Number of tile columns.
    nt: usize,
    /// True (unpadded) row count.
    rows: usize,
    /// True (unpadded) column count.
    cols: usize,
    /// Row-major grid of shared tiles: `tiles[i * nt + j]`.
    tiles: Vec<Arc<Matrix<T>>>,
}

impl<T: Scalar> TiledMatrix<T> {
    /// Partition `a` into square tiles of side `tile_size`, zero-padding the
    /// final tile row/column when the dimensions are not exact multiples.
    pub fn from_matrix(a: &Matrix<T>, tile_size: usize) -> Result<Self> {
        if tile_size == 0 {
            return Err(MatrixError::BadTileSize { tile: tile_size });
        }
        let (rows, cols) = a.dims();
        let mt = rows.div_ceil(tile_size).max(1);
        let nt = cols.div_ceil(tile_size).max(1);
        let mut tiles = Vec::with_capacity(mt * nt);
        for ti in 0..mt {
            for tj in 0..nt {
                let r0 = ti * tile_size;
                let c0 = tj * tile_size;
                let tile = Matrix::from_fn(tile_size, tile_size, |i, j| {
                    let (gi, gj) = (r0 + i, c0 + j);
                    if gi < rows && gj < cols {
                        a[(gi, gj)]
                    } else if gi == gj {
                        // Unit diagonal on the padded region keeps a padded
                        // square matrix nonsingular, so R stays invertible
                        // and solves on padded systems work unchanged.
                        T::ONE
                    } else {
                        T::ZERO
                    }
                });
                tiles.push(Arc::new(tile));
            }
        }
        Ok(TiledMatrix {
            tile_size,
            mt,
            nt,
            rows,
            cols,
            tiles,
        })
    }

    /// All-zero tiled matrix of logical shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize, tile_size: usize) -> Result<Self> {
        Self::from_matrix(&Matrix::zeros(rows, cols), tile_size)
    }

    /// Reassemble the dense matrix, stripping edge padding.
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut a = Matrix::zeros(self.rows, self.cols);
        for ti in 0..self.mt {
            for tj in 0..self.nt {
                let tile = self.tile(ti, tj);
                let r0 = ti * self.tile_size;
                let c0 = tj * self.tile_size;
                for j in 0..self.tile_size {
                    let gj = c0 + j;
                    if gj >= self.cols {
                        break;
                    }
                    for i in 0..self.tile_size {
                        let gi = r0 + i;
                        if gi >= self.rows {
                            break;
                        }
                        a[(gi, gj)] = tile[(i, j)];
                    }
                }
            }
        }
        a
    }

    /// Tile side length.
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Number of tile rows (`mt`).
    #[inline]
    pub fn tile_rows(&self) -> usize {
        self.mt
    }

    /// Number of tile columns (`nt`).
    #[inline]
    pub fn tile_cols(&self) -> usize {
        self.nt
    }

    /// True (unpadded) dense dimensions.
    #[inline]
    pub fn dense_dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Padded dense dimensions (`mt * b`, `nt * b`).
    #[inline]
    pub fn padded_dims(&self) -> (usize, usize) {
        (self.mt * self.tile_size, self.nt * self.tile_size)
    }

    /// Borrow tile `(i, j)`.
    #[inline]
    pub fn tile(&self, i: usize, j: usize) -> &Matrix<T> {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        &self.tiles[i * self.nt + j]
    }

    /// Shared handle to tile `(i, j)` — a pointer clone, never a data copy.
    #[inline]
    pub fn tile_shared(&self, i: usize, j: usize) -> Arc<Matrix<T>> {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        Arc::clone(&self.tiles[i * self.nt + j])
    }

    /// Mutably borrow tile `(i, j)`. Copy-on-write: only clones the tile
    /// data if an `Arc` handle from [`tile_shared`](Self::tile_shared) is
    /// still alive elsewhere.
    #[inline]
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Matrix<T> {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        Arc::make_mut(&mut self.tiles[i * self.nt + j])
    }

    /// Replace tile `(i, j)` wholesale.
    pub fn set_tile(&mut self, i: usize, j: usize, tile: Matrix<T>) {
        assert_eq!(tile.dims(), (self.tile_size, self.tile_size));
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        self.tiles[i * self.nt + j] = Arc::new(tile);
    }

    /// Replace tile `(i, j)` with an already-shared handle (pointer swap).
    pub fn set_tile_shared(&mut self, i: usize, j: usize, tile: Arc<Matrix<T>>) {
        assert_eq!(tile.dims(), (self.tile_size, self.tile_size));
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        self.tiles[i * self.nt + j] = tile;
    }

    /// Swap tile `(i, j)` with `replacement` and return the previous handle.
    /// Both directions are pointer moves; no tile data is touched.
    pub fn swap_tile_shared(
        &mut self,
        i: usize,
        j: usize,
        replacement: Arc<Matrix<T>>,
    ) -> Arc<Matrix<T>> {
        assert_eq!(replacement.dims(), (self.tile_size, self.tile_size));
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        std::mem::replace(&mut self.tiles[i * self.nt + j], replacement)
    }

    /// Borrow two distinct tiles mutably (e.g. the `[A1; A2]` pair consumed
    /// by TSQRT/TSMQR). Panics if the coordinates coincide.
    pub fn two_tiles_mut(
        &mut self,
        a: (usize, usize),
        b: (usize, usize),
    ) -> (&mut Matrix<T>, &mut Matrix<T>) {
        assert!(a != b, "tiles must be distinct");
        assert!(a.0 < self.mt && a.1 < self.nt && b.0 < self.mt && b.1 < self.nt);
        let ia = a.0 * self.nt + a.1;
        let ib = b.0 * self.nt + b.1;
        if ia < ib {
            let (lo, hi) = self.tiles.split_at_mut(ib);
            (Arc::make_mut(&mut lo[ia]), Arc::make_mut(&mut hi[0]))
        } else {
            let (lo, hi) = self.tiles.split_at_mut(ia);
            let second = Arc::make_mut(&mut lo[ib]);
            (Arc::make_mut(&mut hi[0]), second)
        }
    }

    /// Iterate over `(tile_row, tile_col, &tile)`.
    pub fn iter_tiles(&self) -> impl Iterator<Item = (usize, usize, &Matrix<T>)> {
        let nt = self.nt;
        self.tiles
            .iter()
            .enumerate()
            .map(move |(k, t)| (k / nt, k % nt, t.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn seq_matrix(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| (i * n + j) as f64 + 1.0)
    }

    #[test]
    fn exact_tiling_round_trip() {
        let a = seq_matrix(8, 8);
        let t = TiledMatrix::from_matrix(&a, 4).unwrap();
        assert_eq!(t.tile_rows(), 2);
        assert_eq!(t.tile_cols(), 2);
        assert_eq!(t.padded_dims(), (8, 8));
        assert_eq!(t.to_matrix(), a);
    }

    #[test]
    fn padded_tiling_round_trip() {
        let a = seq_matrix(5, 7);
        let t = TiledMatrix::from_matrix(&a, 4).unwrap();
        assert_eq!(t.tile_rows(), 2);
        assert_eq!(t.tile_cols(), 2);
        assert_eq!(t.dense_dims(), (5, 7));
        assert_eq!(t.padded_dims(), (8, 8));
        assert_eq!(t.to_matrix(), a);
    }

    #[test]
    fn padding_has_unit_diagonal() {
        let a = seq_matrix(5, 5);
        let t = TiledMatrix::from_matrix(&a, 4).unwrap();
        // Global (6,6) is padding on the diagonal of the (1,1) tile.
        let corner = t.tile(1, 1);
        assert_eq!(corner[(2, 2)], 1.0); // global (6,6)
        assert_eq!(corner[(2, 3)], 0.0); // global (6,7), off-diagonal padding
        assert_eq!(corner[(0, 0)], a[(4, 4)]);
    }

    #[test]
    fn tile_indexing_matches_layout() {
        let a = seq_matrix(4, 4);
        let t = TiledMatrix::from_matrix(&a, 2).unwrap();
        assert_eq!(t.tile(0, 0)[(0, 0)], a[(0, 0)]);
        assert_eq!(t.tile(0, 1)[(0, 0)], a[(0, 2)]);
        assert_eq!(t.tile(1, 0)[(1, 1)], a[(3, 1)]);
        assert_eq!(t.tile(1, 1)[(1, 1)], a[(3, 3)]);
    }

    #[test]
    fn zero_tile_size_rejected() {
        let a = seq_matrix(2, 2);
        assert!(matches!(
            TiledMatrix::from_matrix(&a, 0),
            Err(MatrixError::BadTileSize { tile: 0 })
        ));
    }

    #[test]
    fn set_and_mutate_tiles() {
        let a = seq_matrix(4, 4);
        let mut t = TiledMatrix::from_matrix(&a, 2).unwrap();
        t.tile_mut(0, 0)[(0, 0)] = -1.0;
        assert_eq!(t.to_matrix()[(0, 0)], -1.0);
        t.set_tile(1, 1, Matrix::identity(2));
        assert_eq!(t.to_matrix()[(2, 2)], 1.0);
        assert_eq!(t.to_matrix()[(3, 2)], 0.0);
    }

    #[test]
    fn two_tiles_mut_disjoint_both_orders() {
        let a = seq_matrix(4, 4);
        let mut t = TiledMatrix::from_matrix(&a, 2).unwrap();
        {
            let (x, y) = t.two_tiles_mut((0, 0), (1, 0));
            x[(0, 0)] = -5.0;
            y[(0, 0)] = -6.0;
        }
        assert_eq!(t.tile(0, 0)[(0, 0)], -5.0);
        assert_eq!(t.tile(1, 0)[(0, 0)], -6.0);
        let (y, x) = t.two_tiles_mut((1, 0), (0, 0));
        assert_eq!(y[(0, 0)], -6.0);
        assert_eq!(x[(0, 0)], -5.0);
    }

    #[test]
    #[should_panic]
    fn two_tiles_mut_same_tile_panics() {
        let a = seq_matrix(4, 4);
        let mut t = TiledMatrix::from_matrix(&a, 2).unwrap();
        let _ = t.two_tiles_mut((0, 0), (0, 0));
    }

    #[test]
    fn iter_tiles_visits_grid() {
        let a = seq_matrix(4, 6);
        let t = TiledMatrix::from_matrix(&a, 2).unwrap();
        let coords: Vec<(usize, usize)> = t.iter_tiles().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(coords.len(), 6);
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[5], (1, 2));
    }

    #[test]
    fn shared_tiles_are_pointer_clones() {
        let a = seq_matrix(4, 4);
        let t = TiledMatrix::from_matrix(&a, 2).unwrap();
        let h1 = t.tile_shared(0, 1);
        let h2 = t.tile_shared(0, 1);
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(h1[(0, 0)], a[(0, 2)]);
    }

    #[test]
    fn tile_mut_copies_only_when_shared() {
        let a = seq_matrix(4, 4);
        let mut t = TiledMatrix::from_matrix(&a, 2).unwrap();
        let reader = t.tile_shared(0, 0);
        // Copy-on-write: the live reader keeps seeing the old value.
        t.tile_mut(0, 0)[(0, 0)] = -9.0;
        assert_eq!(reader[(0, 0)], a[(0, 0)]);
        assert_eq!(t.tile(0, 0)[(0, 0)], -9.0);
        drop(reader);
        // Unshared now: mutation must not reallocate.
        let before = t.tile_shared(0, 0);
        drop(before);
        t.tile_mut(0, 0)[(0, 1)] = -8.0;
        assert_eq!(t.tile(0, 0)[(0, 1)], -8.0);
    }

    #[test]
    fn swap_tile_shared_round_trips() {
        let a = seq_matrix(4, 4);
        let mut t = TiledMatrix::from_matrix(&a, 2).unwrap();
        let fresh = Arc::new(Matrix::identity(2));
        let old = t.swap_tile_shared(1, 1, Arc::clone(&fresh));
        assert_eq!(old[(1, 1)], a[(3, 3)]);
        assert!(Arc::ptr_eq(&t.tile_shared(1, 1), &fresh));
    }

    #[test]
    fn single_tile_case() {
        let a = seq_matrix(3, 3);
        let t = TiledMatrix::from_matrix(&a, 8).unwrap();
        assert_eq!(t.tile_rows(), 1);
        assert_eq!(t.tile_cols(), 1);
        assert_eq!(t.to_matrix(), a);
    }
}
