//! Minimal deterministic pseudo-random number generator.
//!
//! The workspace needs reproducible random workloads (the paper evaluates
//! on "random floating point numbers", §V) but nothing cryptographic, so we
//! carry our own generator instead of an external crate: SplitMix64 for
//! seeding and xoshiro256++ for the stream — both public-domain algorithms
//! with excellent statistical quality and a few nanoseconds per draw.
//!
//! Streams are stable across platforms and releases: tests and benches that
//! hard-code a seed always see the same matrix.

/// Deterministic 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed the generator. Equal seeds yield equal streams forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, as
        // recommended by the xoshiro authors (never all-zero).
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of the raw draw).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive on both ends).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per draw,
        // irrelevant for workload generation.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128 as i64
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng64::seed_from_u64(9);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..10_000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
