//! Dense linear-algebra substrate for the `tileqr` workspace.
//!
//! This crate provides the storage and element-wise machinery that the tiled
//! QR kernels are built on:
//!
//! * [`Matrix`] — an owned, column-major dense matrix generic over
//!   [`Scalar`] (`f32`/`f64`),
//! * [`MatrixViewMut`] — a borrowed column-major view over workspace
//!   scratch, so kernels can reuse one arena instead of allocating,
//! * BLAS-like operations ([`ops`]) — `gemm`, triangular solves, norms,
//! * a tiled layout ([`TiledMatrix`]) that splits a matrix into square tiles
//!   as required by tiled QR decomposition,
//! * deterministic workload generators ([`gen`]) used by tests, examples and
//!   the benchmark harness.
//!
//! Everything is written from scratch: no BLAS/LAPACK bindings are used
//! anywhere in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
pub mod gen;
pub mod ops;
pub mod rng;
mod scalar;
mod tiled;
mod view;

pub use dense::Matrix;
pub use error::MatrixError;
pub use rng::Rng64;
pub use scalar::Scalar;
pub use tiled::TiledMatrix;
pub use view::MatrixViewMut;

/// Convenient result alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;
