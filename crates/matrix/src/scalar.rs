//! Floating-point element trait.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real floating-point scalar usable as a matrix element.
///
/// Implemented for `f32` and `f64`. The trait collects exactly the
/// operations the QR kernels need (field arithmetic, square root, absolute
/// value, sign transfer) so that every kernel in the workspace is generic
/// over precision.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + PartialOrd
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (neither NaN nor infinite).
    fn is_finite(self) -> bool;
    /// Largest of `self` and `other` (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smallest of `self` and `other`.
    fn min(self, other: Self) -> Self;
    /// Lossless-ish conversion from `f64` (used by generators and constants).
    fn from_f64(v: f64) -> Self;
    /// Conversion to `f64` (used by norms reported to the harness).
    fn to_f64(self) -> f64;
    /// Hypotenuse `sqrt(self^2 + other^2)` computed without undue overflow.
    fn hypot(self, other: Self) -> Self;
    /// `self` with the sign of `sign` (LAPACK `sign` transfer; `sign == 0`
    /// counts as positive).
    fn copysign(self, sign: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                if self < other {
                    self
                } else {
                    other
                }
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
            #[inline]
            fn copysign(self, sign: Self) -> Self {
                if sign >= 0.0 {
                    self.abs()
                } else {
                    -self.abs()
                }
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!(f32::ONE, 1.0f32);
    }

    #[test]
    fn copysign_zero_is_positive() {
        assert_eq!(3.0f64.copysign(0.0), 3.0);
        assert_eq!(3.0f64.copysign(-1.0), -3.0);
        assert_eq!((-3.0f64).copysign(1.0), 3.0);
    }

    #[test]
    fn hypot_matches_std() {
        assert!((Scalar::hypot(3.0f64, 4.0) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn max_min() {
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
    }
}
