//! Deterministic workload generators.
//!
//! The paper evaluates on "random floating point numbers" (§V). These
//! helpers produce seeded random matrices plus a few structured matrices
//! used by the test suite to probe conditioning edge cases. Randomness
//! comes from the in-tree [`Rng64`] generator, so the streams are stable
//! across platforms and never pull in an external crate.

use crate::rng::Rng64;
use crate::{Matrix, Scalar};

/// Uniform random matrix with entries in `[-1, 1)`, reproducible from `seed`.
pub fn random_matrix<T: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<T> {
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| T::from_f64(rng.range_f64(-1.0, 1.0)))
}

/// Random vector with entries in `[-1, 1)`, reproducible from `seed`.
pub fn random_vector<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|_| T::from_f64(rng.range_f64(-1.0, 1.0)))
        .collect()
}

/// Diagonally dominant random matrix (well conditioned: `n` added to the
/// diagonal of a uniform random matrix).
pub fn diagonally_dominant<T: Scalar>(n: usize, seed: u64) -> Matrix<T> {
    let mut a = random_matrix::<T>(n, n, seed);
    for i in 0..n {
        a[(i, i)] += T::from_f64(n as f64);
    }
    a
}

/// Hilbert matrix `H[i][j] = 1 / (i + j + 1)` — a classic severely
/// ill-conditioned test case.
pub fn hilbert<T: Scalar>(n: usize) -> Matrix<T> {
    Matrix::from_fn(n, n, |i, j| T::from_f64(1.0 / ((i + j + 1) as f64)))
}

/// Rank-deficient matrix: a random `m x k` times a random `k x n` product,
/// so the result has rank at most `k`.
pub fn low_rank<T: Scalar>(m: usize, n: usize, k: usize, seed: u64) -> Matrix<T> {
    let a = random_matrix::<T>(m, k, seed);
    let b = random_matrix::<T>(k, n, seed.wrapping_add(1));
    crate::ops::matmul(&a, &b).expect("conforming shapes by construction")
}

/// Matrix whose elements span many orders of magnitude
/// (`a_ij ∈ ±[1e-8, 1e8]`), to exercise the scaled-norm paths.
pub fn wide_dynamic_range<T: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<T> {
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| {
        let exp = rng.range_i64(-8, 8) as i32;
        let mantissa = rng.range_f64(1.0, 10.0);
        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
        T::from_f64(sign * mantissa * 10f64.powi(exp))
    })
}

/// Graded matrix: row `i` of a uniform random matrix scaled by
/// `decay^i`, so row norms fall geometrically. Graded matrices are a
/// classic stress test for Householder QR because the trailing rows carry
/// information many orders of magnitude below the leading ones.
pub fn graded<T: Scalar>(m: usize, n: usize, decay: f64, seed: u64) -> Matrix<T> {
    assert!(decay > 0.0 && decay <= 1.0, "decay must lie in (0, 1]");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut a = Matrix::from_fn(m, n, |_, _| T::from_f64(rng.range_f64(-1.0, 1.0)));
    let mut scale = 1.0;
    for i in 0..m {
        for j in 0..n {
            a[(i, j)] *= T::from_f64(scale);
        }
        scale *= decay;
    }
    a
}

/// Nearly rank-deficient matrix: a rank-`k` product plus a uniform random
/// perturbation of magnitude `eps`, so the trailing `min(m,n) - k`
/// singular values are ~`eps` instead of exactly zero. With a small `eps`
/// this sits right at the edge QR must handle: numerically singular but
/// with no exact zero pivot.
pub fn near_rank_deficient<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    eps: f64,
    seed: u64,
) -> Matrix<T> {
    assert!(eps >= 0.0);
    let mut a = low_rank::<T>(m, n, k, seed);
    let mut rng = Rng64::seed_from_u64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
    for v in a.as_mut_slice() {
        *v += T::from_f64(eps * rng.range_f64(-1.0, 1.0));
    }
    a
}

/// Shifted-Cauchy ("Hilbert-like") matrix `a_ij = 1 / (x_i + y_j)` with
/// seeded node perturbations. The Hilbert matrix is the `shift = 1`,
/// unperturbed special case; jittering the nodes gives a whole family of
/// severely ill-conditioned, non-symmetric, possibly rectangular matrices
/// instead of the single classic instance.
pub fn hilbert_like<T: Scalar>(m: usize, n: usize, shift: f64, seed: u64) -> Matrix<T> {
    assert!(shift > 0.0, "shift must keep all denominators positive");
    let mut rng = Rng64::seed_from_u64(seed);
    // Nodes stay strictly increasing: x_i ∈ [i, i + 1/2), y_j ∈ [j, j + 1/2).
    let xs: Vec<f64> = (0..m).map(|i| i as f64 + rng.range_f64(0.0, 0.5)).collect();
    let ys: Vec<f64> = (0..n).map(|j| j as f64 + rng.range_f64(0.0, 0.5)).collect();
    Matrix::from_fn(m, n, |i, j| {
        T::from_f64(1.0 / (xs[i] + ys[j] + shift - 1.0))
    })
}

/// Uniform random matrix scaled by `10^scale_exp` — probes overflow /
/// underflow behavior of the factorization at huge (`scale_exp = 100`)
/// and tiny (`scale_exp = -100`) magnitudes, where naive norm
/// computations square themselves out of range.
pub fn scaled_random<T: Scalar>(m: usize, n: usize, scale_exp: i32, seed: u64) -> Matrix<T> {
    let s = 10f64.powi(scale_exp);
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| T::from_f64(s * rng.range_f64(-1.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::frobenius_norm;

    #[test]
    fn random_is_reproducible() {
        let a = random_matrix::<f64>(5, 5, 42);
        let b = random_matrix::<f64>(5, 5, 42);
        assert_eq!(a, b);
        let c = random_matrix::<f64>(5, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_in_range() {
        let a = random_matrix::<f64>(10, 10, 7);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn random_vector_reproducible() {
        assert_eq!(random_vector::<f64>(8, 3), random_vector::<f64>(8, 3));
    }

    #[test]
    fn diagonally_dominant_diagonal() {
        let n = 6;
        let a = diagonally_dominant::<f64>(n, 1);
        for i in 0..n {
            assert!(a[(i, i)].abs() > (n as f64) - 1.0);
        }
    }

    #[test]
    fn hilbert_values() {
        let h = hilbert::<f64>(3);
        assert!((h[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((h[(1, 1)] - 1.0 / 3.0).abs() < 1e-15);
        assert!((h[(2, 2)] - 0.2).abs() < 1e-15);
        assert_eq!(h, h.transpose());
    }

    #[test]
    fn low_rank_has_dependent_columns() {
        // rank <= 2 means any 3x3 minor-ish check: verify via residual of
        // projecting col 3 onto cols {0,1,2}: cheap sanity only — exact rank
        // tests live in the kernels crate where QR is available.
        let a = low_rank::<f64>(6, 6, 2, 9);
        assert_eq!(a.dims(), (6, 6));
        assert!(frobenius_norm(&a) > 0.0);
    }

    #[test]
    fn graded_rows_decay_geometrically() {
        let m = 8;
        let decay = 1e-2;
        let a = graded::<f64>(m, 6, decay, 5);
        let row_norm = |i: usize| (0..6).map(|j| a[(i, j)] * a[(i, j)]).sum::<f64>().sqrt();
        for i in 1..m {
            assert!(
                row_norm(i) < row_norm(i - 1) * decay * 10.0,
                "row {i} not graded"
            );
        }
        assert!(a.all_finite());
        assert_eq!(a, graded::<f64>(m, 6, decay, 5), "reproducible");
    }

    #[test]
    #[should_panic]
    fn graded_rejects_growth() {
        let _ = graded::<f64>(4, 4, 1.5, 0);
    }

    #[test]
    fn near_rank_deficient_is_a_perturbed_product() {
        let base = low_rank::<f64>(6, 6, 2, 9);
        let a = near_rank_deficient::<f64>(6, 6, 2, 1e-10, 9);
        let mut diff: f64 = 0.0;
        for i in 0..6 {
            for j in 0..6 {
                diff = diff.max((a[(i, j)] - base[(i, j)]).abs());
            }
        }
        assert!(diff > 0.0, "perturbation applied");
        assert!(diff <= 1e-10, "perturbation bounded by eps, got {diff}");
        // eps = 0 degenerates to the exact low-rank matrix.
        assert_eq!(near_rank_deficient::<f64>(6, 6, 2, 0.0, 9), base);
    }

    #[test]
    fn hilbert_like_generalizes_hilbert() {
        let a = hilbert_like::<f64>(5, 7, 1.0, 31);
        assert_eq!(a.dims(), (5, 7));
        assert!(a.all_finite());
        assert!(a.as_slice().iter().all(|&v| v > 0.0));
        // Entries decay away from the top-left corner along each row.
        for i in 0..5 {
            for j in 1..7 {
                assert!(a[(i, j)] < a[(i, j - 1)]);
            }
        }
        assert_ne!(
            a,
            hilbert_like::<f64>(5, 7, 1.0, 32),
            "seed moves the nodes"
        );
    }

    #[test]
    fn scaled_random_hits_requested_magnitude() {
        let huge = scaled_random::<f64>(6, 6, 100, 2);
        assert!(huge.max_abs() > 1e98);
        assert!(huge.all_finite());
        let tiny = scaled_random::<f64>(6, 6, -100, 2);
        assert!(tiny.max_abs() < 1e-98);
        assert!(tiny.max_abs() > 0.0);
    }

    #[test]
    fn wide_dynamic_range_spans() {
        let a = wide_dynamic_range::<f64>(20, 20, 11);
        let max = a.max_abs();
        let min = a
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 1e6, "expected wide spread, got {max} / {min}");
        assert!(a.all_finite());
    }
}
