//! Deterministic workload generators.
//!
//! The paper evaluates on "random floating point numbers" (§V). These
//! helpers produce seeded random matrices plus a few structured matrices
//! used by the test suite to probe conditioning edge cases. Randomness
//! comes from the in-tree [`Rng64`] generator, so the streams are stable
//! across platforms and never pull in an external crate.

use crate::rng::Rng64;
use crate::{Matrix, Scalar};

/// Uniform random matrix with entries in `[-1, 1)`, reproducible from `seed`.
pub fn random_matrix<T: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<T> {
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| T::from_f64(rng.range_f64(-1.0, 1.0)))
}

/// Random vector with entries in `[-1, 1)`, reproducible from `seed`.
pub fn random_vector<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|_| T::from_f64(rng.range_f64(-1.0, 1.0)))
        .collect()
}

/// Diagonally dominant random matrix (well conditioned: `n` added to the
/// diagonal of a uniform random matrix).
pub fn diagonally_dominant<T: Scalar>(n: usize, seed: u64) -> Matrix<T> {
    let mut a = random_matrix::<T>(n, n, seed);
    for i in 0..n {
        a[(i, i)] += T::from_f64(n as f64);
    }
    a
}

/// Hilbert matrix `H[i][j] = 1 / (i + j + 1)` — a classic severely
/// ill-conditioned test case.
pub fn hilbert<T: Scalar>(n: usize) -> Matrix<T> {
    Matrix::from_fn(n, n, |i, j| T::from_f64(1.0 / ((i + j + 1) as f64)))
}

/// Rank-deficient matrix: a random `m x k` times a random `k x n` product,
/// so the result has rank at most `k`.
pub fn low_rank<T: Scalar>(m: usize, n: usize, k: usize, seed: u64) -> Matrix<T> {
    let a = random_matrix::<T>(m, k, seed);
    let b = random_matrix::<T>(k, n, seed.wrapping_add(1));
    crate::ops::matmul(&a, &b).expect("conforming shapes by construction")
}

/// Matrix whose elements span many orders of magnitude
/// (`a_ij ∈ ±[1e-8, 1e8]`), to exercise the scaled-norm paths.
pub fn wide_dynamic_range<T: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<T> {
    let mut rng = Rng64::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| {
        let exp = rng.range_i64(-8, 8) as i32;
        let mantissa = rng.range_f64(1.0, 10.0);
        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
        T::from_f64(sign * mantissa * 10f64.powi(exp))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::frobenius_norm;

    #[test]
    fn random_is_reproducible() {
        let a = random_matrix::<f64>(5, 5, 42);
        let b = random_matrix::<f64>(5, 5, 42);
        assert_eq!(a, b);
        let c = random_matrix::<f64>(5, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_in_range() {
        let a = random_matrix::<f64>(10, 10, 7);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn random_vector_reproducible() {
        assert_eq!(random_vector::<f64>(8, 3), random_vector::<f64>(8, 3));
    }

    #[test]
    fn diagonally_dominant_diagonal() {
        let n = 6;
        let a = diagonally_dominant::<f64>(n, 1);
        for i in 0..n {
            assert!(a[(i, i)].abs() > (n as f64) - 1.0);
        }
    }

    #[test]
    fn hilbert_values() {
        let h = hilbert::<f64>(3);
        assert!((h[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((h[(1, 1)] - 1.0 / 3.0).abs() < 1e-15);
        assert!((h[(2, 2)] - 0.2).abs() < 1e-15);
        assert_eq!(h, h.transpose());
    }

    #[test]
    fn low_rank_has_dependent_columns() {
        // rank <= 2 means any 3x3 minor-ish check: verify via residual of
        // projecting col 3 onto cols {0,1,2}: cheap sanity only — exact rank
        // tests live in the kernels crate where QR is available.
        let a = low_rank::<f64>(6, 6, 2, 9);
        assert_eq!(a.dims(), (6, 6));
        assert!(frobenius_norm(&a) > 0.0);
    }

    #[test]
    fn wide_dynamic_range_spans() {
        let a = wide_dynamic_range::<f64>(20, 20, 11);
        let max = a.max_abs();
        let min = a
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 1e6, "expected wide spread, got {max} / {min}");
        assert!(a.all_finite());
    }
}
