//! BLAS-like dense operations.
//!
//! Free functions over [`Matrix`], mirroring the small subset of BLAS /
//! LAPACK auxiliary routines that the tiled QR kernels need. Tiles fit in
//! L1/L2 at the paper's sizes, so the win is not cache blocking but keeping
//! the innermost loops branch-free: [`gemm`] dispatches once on its two
//! [`Trans`] flags to one of four monomorphized column-major microkernels
//! (`NN`/`TN`/`NT`/`TT`) whose inner loops are contiguous slice `axpy`/`dot`
//! sweeps with no per-element index arithmetic or transpose branch, which
//! the compiler autovectorizes.
//!
//! Microkernel invariants:
//! * the inner loop always walks *columns* of the stored operands
//!   (column-major contiguity) — transposed reads are restructured as
//!   column dots (`TN`), scalar-hoisted row walks (`NT`), or a row gather
//!   into a stack buffer (`TT`), never strided inner loops;
//! * `beta == 0` writes `C` without reading it (BLAS convention: existing
//!   `NaN`/garbage in `C` must not leak through `0 * C`);
//! * shape validation happens once at dispatch; kernels use
//!   `debug_assert`-checked slices only.

use crate::{Matrix, MatrixError, Result, Scalar};

/// Transposition selector for [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Dimensions of `a` after applying this transposition.
    fn dims_of<T: Scalar>(self, a: &Matrix<T>) -> (usize, usize) {
        match self {
            Trans::No => a.dims(),
            Trans::Yes => (a.cols(), a.rows()),
        }
    }
}

/// Prepare a `C` column for accumulation: `c *= beta`, with `beta == 0`
/// overwriting (never reading) per BLAS convention.
#[inline]
fn scale_col<T: Scalar>(beta: T, c: &mut [T]) {
    if beta == T::ZERO {
        c.fill(T::ZERO);
    } else if beta != T::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
}

/// `C = alpha * A * B + beta * C`: rank-1 column sweeps, `axpy` over
/// contiguous columns of `A` with the `B` scalar hoisted out.
fn gemm_nn<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let ka = a.cols();
    for j in 0..c.cols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        scale_col(beta, ccol);
        for (p, &bpj) in bcol.iter().enumerate().take(ka) {
            axpy(alpha * bpj, a.col(p), ccol);
        }
    }
}

/// `C = alpha * Aᵀ * B + beta * C`: each output element is a `dot` of two
/// contiguous columns (column `i` of `A` against column `j` of `B`).
fn gemm_tn<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    for j in 0..c.cols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        if beta == T::ZERO {
            for (i, ci) in ccol.iter_mut().enumerate() {
                *ci = alpha * dot(a.col(i), bcol);
            }
        } else {
            for (i, ci) in ccol.iter_mut().enumerate() {
                *ci = alpha * dot(a.col(i), bcol) + beta * *ci;
            }
        }
    }
}

/// `C = alpha * A * Bᵀ + beta * C`: column sweeps over `A` with the strided
/// `B[j, p]` read hoisted to one scalar load per sweep.
fn gemm_nt<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let ka = a.cols();
    for j in 0..c.cols() {
        let ccol = c.col_mut(j);
        scale_col(beta, ccol);
        for p in 0..ka {
            axpy(alpha * b[(j, p)], a.col(p), ccol);
        }
    }
}

/// `C = alpha * Aᵀ * Bᵀ + beta * C`: row `j` of `B` is gathered once into a
/// contiguous buffer, then each output element is a column `dot`.
fn gemm_tt<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let ka = b.cols();
    let mut brow = vec![T::ZERO; ka];
    for j in 0..c.cols() {
        for (p, bp) in brow.iter_mut().enumerate() {
            *bp = b[(j, p)];
        }
        let ccol = c.col_mut(j);
        if beta == T::ZERO {
            for (i, ci) in ccol.iter_mut().enumerate() {
                *ci = alpha * dot(a.col(i), &brow);
            }
        } else {
            for (i, ci) in ccol.iter_mut().enumerate() {
                *ci = alpha * dot(a.col(i), &brow) + beta * *ci;
            }
        }
    }
}

/// General matrix multiply-accumulate: `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes must satisfy `op(A): m x k`, `op(B): k x n`, `C: m x n`. The
/// `(ta, tb)` pair is dispatched once to a branch-free microkernel (see the
/// module docs for the per-variant loop structure).
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    ta: Trans,
    b: &Matrix<T>,
    tb: Trans,
    beta: T,
    c: &mut Matrix<T>,
) -> Result<()> {
    let (m, ka) = ta.dims_of(a);
    let (kb, n) = tb.dims_of(b);
    if ka != kb {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm (inner)",
            lhs: ta.dims_of(a),
            rhs: tb.dims_of(b),
        });
    }
    if c.dims() != (m, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm (output)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }
    match (ta, tb) {
        (Trans::No, Trans::No) => gemm_nn(alpha, a, b, beta, c),
        (Trans::Yes, Trans::No) => gemm_tn(alpha, a, b, beta, c),
        (Trans::No, Trans::Yes) => gemm_nt(alpha, a, b, beta, c),
        (Trans::Yes, Trans::Yes) => gemm_tt(alpha, a, b, beta, c),
    }
    Ok(())
}

/// Convenience product `A * B` (fresh allocation).
pub fn matmul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(T::ONE, a, Trans::No, b, Trans::No, T::ZERO, &mut c)?;
    Ok(c)
}

/// Convenience product `Aᵀ * B` (fresh allocation).
pub fn matmul_tn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm(T::ONE, a, Trans::Yes, b, Trans::No, T::ZERO, &mut c)?;
    Ok(c)
}

/// Matrix-vector product `y = A x` (fresh allocation).
pub fn matvec<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Result<Vec<T>> {
    if a.cols() != x.len() {
        return Err(MatrixError::DimensionMismatch {
            op: "matvec",
            lhs: a.dims(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![T::ZERO; a.rows()];
    for (j, &xj) in x.iter().enumerate() {
        let col = a.col(j);
        for (yi, &aij) in y.iter_mut().zip(col) {
            *yi += aij * xj;
        }
    }
    Ok(y)
}

/// Dot product of two equal-length slices.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// `y += alpha * x` over slices.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice, guarded against overflow by scaling.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    let scale = x.iter().fold(T::ZERO, |acc, v| Scalar::max(acc, v.abs()));
    if scale == T::ZERO {
        return T::ZERO;
    }
    let ssq: T = x
        .iter()
        .map(|&v| {
            let s = v / scale;
            s * s
        })
        .sum();
    scale * ssq.sqrt()
}

/// Frobenius norm `sqrt(sum a_ij^2)`.
pub fn frobenius_norm<T: Scalar>(a: &Matrix<T>) -> T {
    nrm2(a.as_slice())
}

/// Maximum absolute column sum (operator 1-norm).
pub fn one_norm<T: Scalar>(a: &Matrix<T>) -> T {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|v| v.abs()).sum::<T>())
        .fold(T::ZERO, Scalar::max)
}

/// Maximum absolute row sum (operator infinity-norm).
pub fn inf_norm<T: Scalar>(a: &Matrix<T>) -> T {
    let mut sums = vec![T::ZERO; a.rows()];
    for j in 0..a.cols() {
        for (s, &v) in sums.iter_mut().zip(a.col(j)) {
            *s += v.abs();
        }
    }
    sums.into_iter().fold(T::ZERO, Scalar::max)
}

/// Solve `R x = b` for upper-triangular `R` by back substitution.
///
/// `R` must be square; errors with [`MatrixError::Singular`] on a zero
/// diagonal entry.
pub fn solve_upper_triangular<T: Scalar>(r: &Matrix<T>, b: &[T]) -> Result<Vec<T>> {
    if !r.is_square() {
        return Err(MatrixError::NotSquare { dims: r.dims() });
    }
    if r.rows() != b.len() {
        return Err(MatrixError::DimensionMismatch {
            op: "solve_upper_triangular",
            lhs: r.dims(),
            rhs: (b.len(), 1),
        });
    }
    let n = r.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in i + 1..n {
            acc -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d == T::ZERO {
            return Err(MatrixError::Singular { index: i });
        }
        x[i] = acc / d;
    }
    Ok(x)
}

/// Solve `R X = B` column-by-column for upper-triangular `R`.
pub fn solve_upper_triangular_matrix<T: Scalar>(r: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    let mut x = Matrix::zeros(b.rows(), b.cols());
    for j in 0..b.cols() {
        let xj = solve_upper_triangular(r, b.col(j))?;
        x.col_mut(j).copy_from_slice(&xj);
    }
    Ok(x)
}

/// Solve `L x = b` for lower-triangular `L` by forward substitution.
pub fn solve_lower_triangular<T: Scalar>(l: &Matrix<T>, b: &[T]) -> Result<Vec<T>> {
    if !l.is_square() {
        return Err(MatrixError::NotSquare { dims: l.dims() });
    }
    if l.rows() != b.len() {
        return Err(MatrixError::DimensionMismatch {
            op: "solve_lower_triangular",
            lhs: l.dims(),
            rhs: (b.len(), 1),
        });
    }
    let n = l.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l[(i, j)] * x[j];
        }
        let d = l[(i, i)];
        if d == T::ZERO {
            return Err(MatrixError::Singular { index: i });
        }
        x[i] = acc / d;
    }
    Ok(x)
}

/// Relative factorization residual `||A - QR||_F / (||A||_F * max(m, n))`.
///
/// This is the standard LAPACK-style backward-error metric used throughout
/// the test suite; values around machine epsilon indicate a backward-stable
/// factorization.
pub fn relative_residual<T: Scalar>(a: &Matrix<T>, q: &Matrix<T>, r: &Matrix<T>) -> Result<T> {
    let qr = matmul(q, r)?;
    let diff = a.sub(&qr)?;
    let denom = frobenius_norm(a) * T::from_f64(a.rows().max(a.cols()) as f64);
    if denom == T::ZERO {
        return Ok(frobenius_norm(&diff));
    }
    Ok(frobenius_norm(&diff) / denom)
}

/// Orthogonality defect `||QᵀQ - I||_F / n`.
pub fn orthogonality_defect<T: Scalar>(q: &Matrix<T>) -> Result<T> {
    let qtq = matmul_tn(q, q)?;
    let n = qtq.rows();
    let diff = qtq.sub(&Matrix::identity(n))?;
    Ok(frobenius_norm(&diff) / T::from_f64(n.max(1) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn gemm_basic() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.approx_eq(&m(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn gemm_transposes() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = m(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]); // 3x2
                                                             // A^T: 3x2, B^T: 2x3 -> C 3x3
        let mut c = Matrix::zeros(3, 3);
        gemm(1.0, &a, Trans::Yes, &b, Trans::Yes, 0.0, &mut c).unwrap();
        let expect = matmul(&a.transpose(), &b.transpose()).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::<f64>::identity(2);
        let b = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::filled(2, 2, 1.0);
        gemm(2.0, &a, Trans::No, &b, Trans::No, 3.0, &mut c).unwrap();
        assert!(c.approx_eq(&m(&[&[5.0, 7.0], &[9.0, 11.0]]), 1e-12));
    }

    #[test]
    fn gemm_shape_errors() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let mut c = Matrix::<f64>::zeros(2, 3);
        assert!(gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c).is_err());
        let b2 = Matrix::<f64>::zeros(3, 3);
        let mut c_bad = Matrix::<f64>::zeros(3, 3);
        assert!(gemm(1.0, &a, Trans::No, &b2, Trans::No, 0.0, &mut c_bad).is_err());
    }

    /// Naive reference used to cross-check every microkernel variant.
    fn gemm_ref(
        alpha: f64,
        a: &Matrix<f64>,
        ta: Trans,
        b: &Matrix<f64>,
        tb: Trans,
        beta: f64,
        c: &mut Matrix<f64>,
    ) {
        let at = |i: usize, p: usize| match ta {
            Trans::No => a[(i, p)],
            Trans::Yes => a[(p, i)],
        };
        let bt = |p: usize, j: usize| match tb {
            Trans::No => b[(p, j)],
            Trans::Yes => b[(j, p)],
        };
        let ka = match ta {
            Trans::No => a.cols(),
            Trans::Yes => a.rows(),
        };
        for j in 0..c.cols() {
            for i in 0..c.rows() {
                let mut acc = 0.0;
                for p in 0..ka {
                    acc += at(i, p) * bt(p, j);
                }
                let old = if beta == 0.0 { 0.0 } else { beta * c[(i, j)] };
                c[(i, j)] = alpha * acc + old;
            }
        }
    }

    #[test]
    fn microkernels_match_reference() {
        use crate::gen::random_matrix;
        let (m_, n_, k_) = (5, 7, 4);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => random_matrix::<f64>(m_, k_, 1),
                Trans::Yes => random_matrix::<f64>(k_, m_, 1),
            };
            let b = match tb {
                Trans::No => random_matrix::<f64>(k_, n_, 2),
                Trans::Yes => random_matrix::<f64>(n_, k_, 2),
            };
            for beta in [0.0, 1.0, 2.5] {
                let seed_c = random_matrix::<f64>(m_, n_, 3);
                let mut got = seed_c.clone();
                let mut want = seed_c.clone();
                gemm(1.25, &a, ta, &b, tb, beta, &mut got).unwrap();
                gemm_ref(1.25, &a, ta, &b, tb, beta, &mut want);
                assert!(
                    got.approx_eq(&want, 1e-12),
                    "mismatch for ({ta:?},{tb:?}) beta={beta}"
                );
            }
        }
    }

    #[test]
    fn gemm_beta_zero_never_reads_c() {
        let a = Matrix::<f64>::identity(2);
        let b = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let mut c = Matrix::filled(2, 2, f64::NAN);
            gemm(1.0, &a, ta, &b, tb, 0.0, &mut c).unwrap();
            assert!(c.all_finite(), "beta=0 leaked NaN for ({ta:?},{tb:?})");
        }
    }

    #[test]
    fn matvec_and_dot() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = matvec(&a, &[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(matvec(&a, &[1.0]).is_err());
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn nrm2_robust() {
        assert_eq!(nrm2::<f64>(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // huge values must not overflow
        let big = 1e200;
        let n = nrm2(&[big, big]);
        assert!((n / big - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let a = m(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert!((frobenius_norm(&a) - (30.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(one_norm(&a), 6.0);
        assert_eq!(inf_norm(&a), 7.0);
    }

    #[test]
    fn back_substitution() {
        let r = m(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let x = solve_upper_triangular(&r, &[4.0, 8.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        let singular = m(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert!(matches!(
            solve_upper_triangular(&singular, &[1.0, 1.0]),
            Err(MatrixError::Singular { index: 1 })
        ));
        assert!(solve_upper_triangular(&r, &[1.0]).is_err());
        assert!(solve_upper_triangular(&Matrix::zeros(2, 3), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn forward_substitution() {
        let l = m(&[&[2.0, 0.0], &[1.0, 4.0]]);
        let x = solve_lower_triangular(&l, &[4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-14);
        assert!((x[1] - 1.75).abs() < 1e-14);
    }

    #[test]
    fn matrix_triangular_solve() {
        let r = m(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let b = m(&[&[5.0, 8.0], &[6.0, 9.0]]);
        let x = solve_upper_triangular_matrix(&r, &b).unwrap();
        let back = matmul(&r, &x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn residual_metrics_identity() {
        let a = Matrix::<f64>::identity(4);
        let q = Matrix::<f64>::identity(4);
        let r = Matrix::<f64>::identity(4);
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-15);
        assert!(orthogonality_defect(&q).unwrap() < 1e-15);
    }

    #[test]
    fn residual_detects_error() {
        let a = Matrix::<f64>::identity(3);
        let q = Matrix::<f64>::identity(3);
        let r = Matrix::<f64>::identity(3).scaled(2.0);
        assert!(relative_residual(&a, &q, &r).unwrap() > 0.1);
        assert!(orthogonality_defect(&r).unwrap() > 0.1);
    }
}

/// Estimate the spectral norm `‖A‖₂` by power iteration on `AᵀA`
/// (deterministic start vector, `iters` rounds — a dozen suffice for the
/// 2–3 digits diagnostics need).
pub fn spectral_norm_est<T: Scalar>(a: &Matrix<T>, iters: usize) -> T {
    let (m, n) = a.dims();
    if m == 0 || n == 0 {
        return T::ZERO;
    }
    // Deterministic pseudo-random start to avoid pathological orthogonality.
    let mut v: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i * 2654435761 % 1000) as f64) / 1000.0 + 0.1))
        .collect();
    let mut sigma = T::ZERO;
    for _ in 0..iters.max(1) {
        let nv = nrm2(&v);
        if nv == T::ZERO {
            return T::ZERO;
        }
        for x in &mut v {
            *x /= nv;
        }
        let av = matvec(a, &v).expect("dims checked");
        sigma = nrm2(&av);
        // v <- A^T (A v)
        let mut next = vec![T::ZERO; n];
        for (j, nx) in next.iter_mut().enumerate() {
            *nx = dot(a.col(j), &av);
        }
        v = next;
    }
    sigma
}

/// Estimate the 2-norm condition number of an upper-triangular `R`:
/// `σ_max(R) · σ_max(R⁻¹)`, both by power iteration (the latter applies
/// `R⁻¹`/`R⁻ᵀ` through triangular solves, never forming the inverse).
/// Returns `Err(Singular)` when a zero pivot makes `R` exactly singular.
pub fn triangular_condition_est<T: Scalar>(r: &Matrix<T>, iters: usize) -> Result<T> {
    if !r.is_square() {
        return Err(MatrixError::NotSquare { dims: r.dims() });
    }
    let n = r.rows();
    if n == 0 {
        return Ok(T::ONE);
    }
    let sigma_max = spectral_norm_est(r, iters);
    // Power iteration for sigma_max(R^{-1}) via v <- R^{-T} R^{-1} v.
    let rt = r.transpose();
    let mut v: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i * 40503 % 997) as f64) / 997.0 + 0.1))
        .collect();
    let mut inv_sigma = T::ZERO;
    for _ in 0..iters.max(1) {
        let nv = nrm2(&v);
        if nv == T::ZERO {
            break;
        }
        for x in &mut v {
            *x /= nv;
        }
        let y = solve_upper_triangular(r, &v)?;
        inv_sigma = nrm2(&y);
        v = solve_lower_triangular(&rt, &y)?;
    }
    Ok(sigma_max * inv_sigma)
}

#[cfg(test)]
mod estimation_tests {
    use super::*;
    use crate::gen;

    #[test]
    fn spectral_norm_of_identity() {
        let i = Matrix::<f64>::identity(6);
        let s = spectral_norm_est(&i, 20);
        assert!((s - 1.0).abs() < 1e-10, "{s}");
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let mut d = Matrix::<f64>::zeros(4, 4);
        for (i, v) in [3.0, -7.0, 1.0, 0.5].into_iter().enumerate() {
            d[(i, i)] = v;
        }
        let s = spectral_norm_est(&d, 40);
        assert!((s - 7.0).abs() < 1e-6, "{s}");
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius() {
        let a = gen::random_matrix::<f64>(10, 10, 3);
        let s = spectral_norm_est(&a, 30);
        assert!(s <= frobenius_norm(&a) + 1e-9);
        assert!(s > 0.0);
    }

    #[test]
    fn condition_of_identity_is_one() {
        let i = Matrix::<f64>::identity(8);
        let k = triangular_condition_est(&i, 20).unwrap();
        assert!((k - 1.0).abs() < 1e-9, "{k}");
    }

    #[test]
    fn condition_of_scaled_diagonal() {
        let mut r = Matrix::<f64>::identity(5);
        r[(0, 0)] = 100.0;
        r[(4, 4)] = 0.01;
        let k = triangular_condition_est(&r, 60).unwrap();
        assert!((k - 10_000.0).abs() / 10_000.0 < 0.01, "{k}");
    }

    #[test]
    fn singular_r_reports_error() {
        let mut r = Matrix::<f64>::identity(3);
        r[(1, 1)] = 0.0;
        assert!(triangular_condition_est(&r, 5).is_err());
    }

    #[test]
    fn condition_rejects_rectangular() {
        let r = Matrix::<f64>::zeros(3, 4);
        assert!(triangular_condition_est(&r, 5).is_err());
    }
}
