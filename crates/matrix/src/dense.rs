//! Owned, column-major dense matrix.

use crate::{MatrixError, Result, Scalar};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense matrix stored in column-major order (like Fortran / LAPACK).
///
/// Element `(i, j)` lives at `data[i + j * rows]`. Column-major storage is
/// chosen because the Householder kernels sweep down columns, and it matches
/// the convention of the PLASMA kernels the paper builds on.
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Matrix of shape `rows x cols` with every element equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Construct from a column-major element buffer.
    ///
    /// Fails with [`MatrixError::BadDataLength`] when `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::BadDataLength {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Construct from nested row slices (row-major convenience, used in tests).
    pub fn from_rows(rows: &[&[T]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if rows.iter().any(|row| row.len() != c) {
            return Err(MatrixError::BadDataLength {
                expected: c,
                actual: rows.iter().map(|row| row.len()).max().unwrap_or(0),
            });
        }
        Ok(Self::from_fn(r, c, |i, j| rows[i][j]))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checked element read.
    pub fn get(&self, i: usize, j: usize) -> Result<T> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (i, j),
                dims: self.dims(),
            });
        }
        Ok(self.data[i + j * self.rows])
    }

    /// Checked element write.
    pub fn set(&mut self, i: usize, j: usize, v: T) -> Result<()> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (i, j),
                dims: self.dims(),
            });
        }
        let r = self.rows;
        self.data[i + j * r] = v;
        Ok(())
    }

    /// Borrow the underlying column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Borrow two distinct columns mutably at once (needed by in-place
    /// column updates in the kernels).
    pub fn two_cols_mut(&mut self, a: usize, b: usize) -> (&mut [T], &mut [T]) {
        assert!(a != b, "columns must be distinct");
        assert!(a < self.cols && b < self.cols);
        let r = self.rows;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * r);
            (&mut lo[a * r..(a + 1) * r], &mut hi[..r])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * r);
            let bcol = &mut lo[b * r..(b + 1) * r];
            (&mut hi[..r], bcol)
        }
    }

    /// Copy of row `i` as a vector.
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Extract the contiguous submatrix of shape `nr x nc` whose top-left
    /// corner is `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Result<Matrix<T>> {
        if r0 + nr > self.rows || c0 + nc > self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (r0 + nr, c0 + nc),
                dims: self.dims(),
            });
        }
        Ok(Matrix::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)]))
    }

    /// Overwrite the block with top-left corner `(r0, c0)` by `block`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix<T>) -> Result<()> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (r0 + block.rows, c0 + block.cols),
                dims: self.dims(),
            });
        }
        for j in 0..block.cols {
            for i in 0..block.rows {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
        Ok(())
    }

    /// Upper-triangular copy (elements strictly below the diagonal zeroed).
    pub fn upper_triangular(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i <= j {
                self[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Lower-triangular copy with ones on the diagonal and the strictly
    /// lower part of `self` (LAPACK "unit lower" extraction, used to pull
    /// Householder vectors out of a factored tile).
    pub fn unit_lower(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i == j {
                T::ONE
            } else if i > j {
                self[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Element-wise sum. Errors on shape mismatch.
    pub fn add(&self, other: &Matrix<T>) -> Result<Matrix<T>> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference. Errors on shape mismatch.
    pub fn sub(&self, other: &Matrix<T>) -> Result<Matrix<T>> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        other: &Matrix<T>,
        op: &'static str,
        f: impl Fn(T, T) -> T,
    ) -> Result<Matrix<T>> {
        if self.dims() != other.dims() {
            return Err(MatrixError::DimensionMismatch {
                op,
                lhs: self.dims(),
                rhs: other.dims(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scale every element by `s` in place.
    pub fn scale_mut(&mut self, s: T) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: T) -> Matrix<T> {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Maximum absolute element (`max |a_ij|`), zero for empty matrices.
    pub fn max_abs(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |acc, &v| Scalar::max(acc, v.abs()))
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Position `(i, j)` of the first non-finite element in column-major
    /// order, or `None` when [`all_finite`](Self::all_finite) holds. Used
    /// by poison scans to report *where* a NaN/Inf entered.
    pub fn first_non_finite(&self) -> Option<(usize, usize)> {
        self.data
            .iter()
            .position(|v| !v.is_finite())
            .map(|k| (k % self.rows, k / self.rows))
    }

    /// `true` when `max |self - other| <= tol` and shapes match.
    pub fn approx_eq(&self, other: &Matrix<T>, tol: T) -> bool {
        self.dims() == other.dims()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Iterate over `(i, j, value)` triples in column-major order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let rows = self.rows;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k % rows, k / rows, v))
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        let r = self.rows;
        &mut self.data[i + j * r]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(2, 3);
        assert_eq!(z.dims(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::<f64>::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // data = [a00, a10, a01, a11]
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn bad_data_length_rejected() {
        assert!(matches!(
            Matrix::<f64>::from_col_major(2, 2, vec![1.0; 3]),
            Err(MatrixError::BadDataLength {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        let t = m.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn ragged_rows_rejected() {
        let r1: &[f64] = &[1.0, 2.0];
        let r2: &[f64] = &[3.0];
        assert!(Matrix::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn get_set_checked() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        m.set(1, 1, 5.0).unwrap();
        assert_eq!(m.get(1, 1).unwrap(), 5.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn submatrix_and_set_submatrix() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 2, 2, 2).unwrap();
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(1, 1)], m[(2, 3)]);
        let mut z = Matrix::<f64>::zeros(4, 4);
        z.set_submatrix(2, 2, &s).unwrap();
        assert_eq!(z[(2, 2)], m[(1, 2)]);
        assert!(z.set_submatrix(3, 3, &s).is_err());
        assert!(m.submatrix(3, 3, 2, 2).is_err());
    }

    #[test]
    fn triangular_extractions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let u = m.upper_triangular();
        assert_eq!(u[(1, 0)], 0.0);
        assert_eq!(u[(0, 1)], 2.0);
        let l = m.unit_lower();
        assert_eq!(l[(0, 0)], 1.0);
        assert_eq!(l[(1, 1)], 1.0);
        assert_eq!(l[(1, 0)], 3.0);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let c = a.add(&b).unwrap();
        assert_eq!(c[(0, 0)], 2.0);
        let d = c.sub(&b).unwrap();
        assert!(d.approx_eq(&a, 0.0));
        let e = a.scaled(2.0);
        assert_eq!(e[(1, 1)], 8.0);
        assert!(a.add(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + 10 * j) as f64);
        {
            let (c0, c2) = m.two_cols_mut(0, 2);
            c0[0] = -1.0;
            c2[2] = -2.0;
        }
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(2, 2)], -2.0);
        let (c2, c1) = m.two_cols_mut(2, 1);
        assert_eq!(c2[2], -2.0);
        assert_eq!(c1[0], 10.0);
    }

    #[test]
    #[should_panic]
    fn two_cols_mut_same_col_panics() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        let _ = m.two_cols_mut(1, 1);
    }

    #[test]
    fn max_abs_and_finite() {
        let m = Matrix::from_rows(&[&[-5.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
        assert!(m.all_finite());
        let mut n = m.clone();
        n[(0, 0)] = f64::NAN;
        assert!(!n.all_finite());
    }

    #[test]
    fn first_non_finite_reports_position() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        assert_eq!(m.first_non_finite(), None);
        m[(2, 1)] = f64::INFINITY;
        m[(0, 3)] = f64::NAN;
        // Column-major order: (2, 1) comes before (0, 3).
        assert_eq!(m.first_non_finite(), Some((2, 1)));
    }

    #[test]
    fn iter_indexed_covers_all() {
        let m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        let mut count = 0;
        for (i, j, v) in m.iter_indexed() {
            assert_eq!(v, (i + 10 * j) as f64);
            count += 1;
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn row_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn debug_formatting_does_not_panic() {
        let m = Matrix::<f64>::from_fn(10, 10, |i, j| (i * j) as f64);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains("..."));
    }
}
