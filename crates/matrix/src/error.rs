//! Error type shared by the matrix substrate.

use std::fmt;

/// Errors produced by matrix construction and the BLAS-like operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands whose dimensions must agree did not.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand.
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Offending dimensions.
        dims: (usize, usize),
    },
    /// A triangular solve hit a (numerically) zero pivot.
    Singular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// An element access was out of bounds.
    OutOfBounds {
        /// Requested index.
        index: (usize, usize),
        /// Actual dimensions.
        dims: (usize, usize),
    },
    /// A constructor received data whose length disagrees with the shape.
    BadDataLength {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A tile size of zero (or otherwise unusable) was requested.
    BadTileSize {
        /// Requested tile size.
        tile: usize,
    },
    /// The parallel runtime failed for a non-numerical reason (worker
    /// panic, retry budget exhausted, pool shutdown). Carries the
    /// runtime's own diagnostic rendered to text so this crate stays
    /// independent of the runtime layer.
    Runtime {
        /// Human-readable description of the runtime failure.
        reason: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::NotSquare { dims } => {
                write!(f, "matrix must be square, got {}x{}", dims.0, dims.1)
            }
            MatrixError::Singular { index } => {
                write!(f, "singular triangular factor: zero pivot at {index}")
            }
            MatrixError::OutOfBounds { index, dims } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, dims.0, dims.1
            ),
            MatrixError::BadDataLength { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape ({expected} expected)"
                )
            }
            MatrixError::BadTileSize { tile } => write!(f, "invalid tile size {tile}"),
            MatrixError::Runtime { reason } => write!(f, "runtime failure: {reason}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains("2x3"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MatrixError::Singular { index: 3 });
        assert!(e.to_string().contains("pivot at 3"));
    }
}
