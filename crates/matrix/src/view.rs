//! Borrowed column-major matrix view over externally owned storage.
//!
//! [`MatrixViewMut`] gives kernel scratch blocks (the `W = VᵀC` work
//! matrix, packed reflector panels) the same column-major access API as
//! [`Matrix`](crate::Matrix) without owning an allocation: the backing
//! slice comes from a reusable workspace arena, so resizing a view between
//! kernel invocations is a reinterpretation of the same buffer, not a heap
//! round trip.

use crate::Scalar;
use std::ops::{Index, IndexMut};

/// Mutable column-major matrix view over a borrowed slice.
///
/// Element `(i, j)` lives at `data[i + j * rows]`, exactly like
/// [`Matrix`](crate::Matrix); the slice length must equal `rows * cols`.
/// The view does not initialize its storage — callers that read before
/// writing must [`fill`](Self::fill) first.
pub struct MatrixViewMut<'a, T: Scalar> {
    rows: usize,
    cols: usize,
    data: &'a mut [T],
}

impl<'a, T: Scalar> MatrixViewMut<'a, T> {
    /// Wrap `data` as a `rows x cols` column-major matrix.
    ///
    /// Panics if the slice length disagrees with the shape; views are
    /// internal scratch whose sizes are computed, never user input.
    pub fn new(rows: usize, cols: usize, data: &'a mut [T]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "view shape {rows}x{cols} needs {} elements, got {}",
            rows * cols,
            data.len()
        );
        MatrixViewMut { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a contiguous mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// The whole backing storage as one column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.data
    }
}

impl<T: Scalar> Index<(usize, usize)> for MatrixViewMut<'_, T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for MatrixViewMut<'_, T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i + j * self.rows]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_matrix() {
        let mut buf = vec![0.0f64; 6];
        let mut v = MatrixViewMut::new(2, 3, &mut buf);
        v[(0, 0)] = 1.0;
        v[(1, 2)] = 5.0;
        assert_eq!(v.col(0), &[1.0, 0.0]);
        assert_eq!(v.col(2), &[0.0, 5.0]);
        assert_eq!(buf, vec![1.0, 0.0, 0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn col_mut_is_contiguous() {
        let mut buf = vec![0.0f64; 4];
        let mut v = MatrixViewMut::new(2, 2, &mut buf);
        v.col_mut(1).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(v[(0, 1)], 3.0);
        assert_eq!(v[(1, 1)], 4.0);
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut buf = vec![7.0f64; 6];
        let mut v = MatrixViewMut::new(3, 2, &mut buf);
        v.fill(0.0);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "view shape")]
    fn wrong_length_panics() {
        let mut buf = vec![0.0f64; 5];
        let _ = MatrixViewMut::new(2, 3, &mut buf);
    }
}
