//! Task vocabulary of tiled QR.

/// Index of a task within its [`crate::TaskGraph`].
pub type TaskId = usize;

/// Tile coordinate `(tile_row, tile_col)` in the tile grid.
pub type TileCoord = (usize, usize);

/// The four step classes of the paper (§II-B), used for accounting and for
/// routing work between the main computing device and update devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepClass {
    /// Triangulation (T).
    Triangulation,
    /// Elimination (E).
    Elimination,
    /// Update for triangulation (UT).
    UpdateTriangulation,
    /// Update for elimination (UE).
    UpdateElimination,
}

impl StepClass {
    /// Paper shorthand: "T", "E", "UT" or "UE".
    pub fn shorthand(self) -> &'static str {
        match self {
            StepClass::Triangulation => "T",
            StepClass::Elimination => "E",
            StepClass::UpdateTriangulation => "UT",
            StepClass::UpdateElimination => "UE",
        }
    }

    /// `true` for the non-update (critical-path) classes T and E, which the
    /// paper routes to the main computing device.
    pub fn is_main_device_work(self) -> bool {
        matches!(self, StepClass::Triangulation | StepClass::Elimination)
    }
}

/// One tiled-QR kernel invocation.
///
/// `k` is always the panel (iteration) index. The TS variant only ever uses
/// pivot row `p == k`; the TT tree variants merge arbitrary row pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// `GEQRT` on tile `(i, k)` (in TS mode only `i == k` occurs).
    Geqrt {
        /// Tile row holding the tile being triangulated.
        i: usize,
        /// Panel index (also the tile column).
        k: usize,
    },
    /// `UNMQR`: apply the factor of `Geqrt { i, k }` to tile `(i, j)`.
    Unmqr {
        /// Tile row of the factored tile.
        i: usize,
        /// Tile column being updated (`j > k`).
        j: usize,
        /// Panel index.
        k: usize,
    },
    /// `TSQRT`: eliminate full tile `(i, k)` against triangular tile `(p, k)`.
    Tsqrt {
        /// Pivot tile row (TS mode: `p == k`).
        p: usize,
        /// Tile row being eliminated (`i > p`).
        i: usize,
        /// Panel index.
        k: usize,
    },
    /// `TSMQR`: apply the factor of `Tsqrt { p, i, k }` to tiles `(p, j)`
    /// and `(i, j)`.
    Tsmqr {
        /// Pivot tile row.
        p: usize,
        /// Eliminated tile row.
        i: usize,
        /// Tile column being updated (`j > k`).
        j: usize,
        /// Panel index.
        k: usize,
    },
    /// `TTQRT`: eliminate *triangular* tile `(i, k)` against triangular
    /// tile `(p, k)` (tree variants only).
    Ttqrt {
        /// Pivot tile row.
        p: usize,
        /// Eliminated tile row (`i > p`).
        i: usize,
        /// Panel index.
        k: usize,
    },
    /// `TTMQR`: apply the factor of `Ttqrt { p, i, k }` to tiles `(p, j)`
    /// and `(i, j)`.
    Ttmqr {
        /// Pivot tile row.
        p: usize,
        /// Eliminated tile row.
        i: usize,
        /// Tile column being updated.
        j: usize,
        /// Panel index.
        k: usize,
    },
}

impl TaskKind {
    /// Paper step class of this task.
    pub fn class(self) -> StepClass {
        match self {
            TaskKind::Geqrt { .. } => StepClass::Triangulation,
            TaskKind::Unmqr { .. } => StepClass::UpdateTriangulation,
            TaskKind::Tsqrt { .. } | TaskKind::Ttqrt { .. } => StepClass::Elimination,
            TaskKind::Tsmqr { .. } | TaskKind::Ttmqr { .. } => StepClass::UpdateElimination,
        }
    }

    /// Panel (iteration) index `k`.
    pub fn panel(self) -> usize {
        match self {
            TaskKind::Geqrt { k, .. }
            | TaskKind::Unmqr { k, .. }
            | TaskKind::Tsqrt { k, .. }
            | TaskKind::Tsmqr { k, .. }
            | TaskKind::Ttqrt { k, .. }
            | TaskKind::Ttmqr { k, .. } => k,
        }
    }

    /// The tile column this task's *output data* lives in — used by the
    /// scheduler to decide which device executes it (the paper distributes
    /// whole tile columns, Eq. 12).
    pub fn home_column(self) -> usize {
        match self {
            TaskKind::Geqrt { k, .. } | TaskKind::Tsqrt { k, .. } | TaskKind::Ttqrt { k, .. } => k,
            TaskKind::Unmqr { j, .. } | TaskKind::Tsmqr { j, .. } | TaskKind::Ttmqr { j, .. } => j,
        }
    }

    /// Tiles this task reads but does not modify.
    pub fn reads(self) -> Vec<TileCoord> {
        match self {
            TaskKind::Geqrt { .. } | TaskKind::Tsqrt { .. } | TaskKind::Ttqrt { .. } => vec![],
            TaskKind::Unmqr { i, k, .. } => vec![(i, k)],
            TaskKind::Tsmqr { i, k, .. } | TaskKind::Ttmqr { i, k, .. } => vec![(i, k)],
        }
    }

    /// Tiles this task modifies.
    pub fn writes(self) -> Vec<TileCoord> {
        match self {
            TaskKind::Geqrt { i, k } => vec![(i, k)],
            TaskKind::Unmqr { i, j, .. } => vec![(i, j)],
            TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => vec![(p, k), (i, k)],
            TaskKind::Tsmqr { p, i, j, .. } | TaskKind::Ttmqr { p, i, j, .. } => {
                vec![(p, j), (i, j)]
            }
        }
    }

    /// Compact display used in traces: e.g. `T(2,2)`, `E(2,5,2)`,
    /// `UE(2,5,7,2)`.
    pub fn label(self) -> String {
        match self {
            TaskKind::Geqrt { i, k } => format!("T({i},{k})"),
            TaskKind::Unmqr { i, j, k } => format!("UT({i},{j},{k})"),
            TaskKind::Tsqrt { p, i, k } => format!("E({p},{i},{k})"),
            TaskKind::Tsmqr { p, i, j, k } => format!("UE({p},{i},{j},{k})"),
            TaskKind::Ttqrt { p, i, k } => format!("Ett({p},{i},{k})"),
            TaskKind::Ttmqr { p, i, j, k } => format!("UEtt({p},{i},{j},{k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_map_to_paper_steps() {
        assert_eq!(
            TaskKind::Geqrt { i: 0, k: 0 }.class(),
            StepClass::Triangulation
        );
        assert_eq!(
            TaskKind::Tsqrt { p: 0, i: 1, k: 0 }.class(),
            StepClass::Elimination
        );
        assert_eq!(
            TaskKind::Ttqrt { p: 0, i: 1, k: 0 }.class(),
            StepClass::Elimination
        );
        assert_eq!(
            TaskKind::Unmqr { i: 0, j: 1, k: 0 }.class(),
            StepClass::UpdateTriangulation
        );
        assert_eq!(
            TaskKind::Tsmqr {
                p: 0,
                i: 1,
                j: 2,
                k: 0
            }
            .class(),
            StepClass::UpdateElimination
        );
    }

    #[test]
    fn main_device_work_split() {
        assert!(StepClass::Triangulation.is_main_device_work());
        assert!(StepClass::Elimination.is_main_device_work());
        assert!(!StepClass::UpdateTriangulation.is_main_device_work());
        assert!(!StepClass::UpdateElimination.is_main_device_work());
    }

    #[test]
    fn access_sets_are_disjoint_reads_writes() {
        let t = TaskKind::Tsmqr {
            p: 0,
            i: 2,
            j: 3,
            k: 0,
        };
        let reads = t.reads();
        let writes = t.writes();
        assert_eq!(reads, vec![(2, 0)]);
        assert_eq!(writes, vec![(0, 3), (2, 3)]);
        assert!(reads.iter().all(|r| !writes.contains(r)));
    }

    #[test]
    fn home_column_is_output_column() {
        assert_eq!(TaskKind::Geqrt { i: 1, k: 1 }.home_column(), 1);
        assert_eq!(TaskKind::Unmqr { i: 1, j: 4, k: 1 }.home_column(), 4);
        assert_eq!(
            TaskKind::Tsmqr {
                p: 1,
                i: 2,
                j: 5,
                k: 1
            }
            .home_column(),
            5
        );
    }

    #[test]
    fn labels_match_paper_shorthand() {
        assert_eq!(TaskKind::Geqrt { i: 0, k: 0 }.label(), "T(0,0)");
        assert_eq!(StepClass::UpdateElimination.shorthand(), "UE");
    }
}
