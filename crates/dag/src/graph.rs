//! DAG construction from per-tile read/write sets.

use crate::task::{TaskId, TaskKind, TileCoord};
use std::collections::HashMap;

/// Which elimination order the DAG encodes.
///
/// The paper exclusively uses [`EliminationOrder::FlatTs`] (its Fig. 2–3:
/// one `GEQRT` per panel and a sequential chain of `TSQRT`s down the
/// column). The TT orders are the standard tree extensions (Bouwmeester et
/// al., SC'11) included for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EliminationOrder {
    /// One `GEQRT` then a sequential `TSQRT` chain (the paper's algorithm).
    FlatTs,
    /// `GEQRT` on every panel tile, then a sequential `TTQRT` chain.
    FlatTt,
    /// `GEQRT` on every panel tile, then a binary `TTQRT` reduction tree —
    /// the shortest critical path for tall panels.
    BinaryTt,
}

/// The tiled-QR task DAG.
///
/// Tasks are stored in program order; edges are derived from tile-level
/// data-flow (read-after-write, write-after-read, write-after-write), which
/// reproduces exactly the dependence structure of the paper's Fig. 3.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    mt: usize,
    nt: usize,
    order: EliminationOrder,
    tasks: Vec<TaskKind>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
}

/// Per-tile data-flow state used during construction.
#[derive(Default)]
struct TileFlow {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Incremental DAG builder: push tasks in program order and edges appear
/// from the declared tile accesses.
struct Builder {
    tasks: Vec<TaskKind>,
    preds: Vec<Vec<TaskId>>,
    flow: HashMap<TileCoord, TileFlow>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            tasks: Vec::new(),
            preds: Vec::new(),
            flow: HashMap::new(),
        }
    }

    fn push(&mut self, kind: TaskKind) -> TaskId {
        let id = self.tasks.len();
        let mut preds: Vec<TaskId> = Vec::new();
        for tile in kind.reads() {
            let f = self.flow.entry(tile).or_default();
            if let Some(w) = f.last_writer {
                preds.push(w);
            }
            f.readers_since_write.push(id);
        }
        for tile in kind.writes() {
            let f = self.flow.entry(tile).or_default();
            if let Some(w) = f.last_writer {
                preds.push(w);
            }
            preds.extend(f.readers_since_write.iter().copied());
            f.last_writer = Some(id);
            f.readers_since_write.clear();
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        self.tasks.push(kind);
        self.preds.push(preds);
        id
    }

    fn finish(self, mt: usize, nt: usize, order: EliminationOrder) -> TaskGraph {
        let mut succs = vec![Vec::new(); self.tasks.len()];
        for (id, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                succs[p].push(id);
            }
        }
        TaskGraph {
            mt,
            nt,
            order,
            tasks: self.tasks,
            preds: self.preds,
            succs,
        }
    }
}

impl TaskGraph {
    /// Build the DAG for an `mt x nt` tile grid with the given elimination
    /// order. Panics if the grid is empty.
    pub fn build(mt: usize, nt: usize, order: EliminationOrder) -> Self {
        assert!(mt > 0 && nt > 0, "empty tile grid");
        let mut b = Builder::new();
        let kmax = mt.min(nt);
        match order {
            EliminationOrder::FlatTs => {
                for k in 0..kmax {
                    b.push(TaskKind::Geqrt { i: k, k });
                    for j in k + 1..nt {
                        b.push(TaskKind::Unmqr { i: k, j, k });
                    }
                    for i in k + 1..mt {
                        b.push(TaskKind::Tsqrt { p: k, i, k });
                        for j in k + 1..nt {
                            b.push(TaskKind::Tsmqr { p: k, i, j, k });
                        }
                    }
                }
            }
            EliminationOrder::FlatTt => {
                for k in 0..kmax {
                    for i in k..mt {
                        b.push(TaskKind::Geqrt { i, k });
                        for j in k + 1..nt {
                            b.push(TaskKind::Unmqr { i, j, k });
                        }
                    }
                    for i in k + 1..mt {
                        b.push(TaskKind::Ttqrt { p: k, i, k });
                        for j in k + 1..nt {
                            b.push(TaskKind::Ttmqr { p: k, i, j, k });
                        }
                    }
                }
            }
            EliminationOrder::BinaryTt => {
                for k in 0..kmax {
                    for i in k..mt {
                        b.push(TaskKind::Geqrt { i, k });
                        for j in k + 1..nt {
                            b.push(TaskKind::Unmqr { i, j, k });
                        }
                    }
                    // Binary reduction over rows k..mt.
                    let mut stride = 1;
                    while k + stride < mt {
                        let mut p = k;
                        while p + stride < mt {
                            let i = p + stride;
                            b.push(TaskKind::Ttqrt { p, i, k });
                            for j in k + 1..nt {
                                b.push(TaskKind::Ttmqr { p, i, j, k });
                            }
                            p += 2 * stride;
                        }
                        stride *= 2;
                    }
                }
            }
        }
        b.finish(mt, nt, order)
    }

    /// Number of tile rows.
    pub fn tile_rows(&self) -> usize {
        self.mt
    }

    /// Number of tile columns.
    pub fn tile_cols(&self) -> usize {
        self.nt
    }

    /// The elimination order this DAG was built with.
    pub fn order(&self) -> EliminationOrder {
        self.order
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the graph has no tasks (never happens for valid grids).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task kind of `id`.
    pub fn task(&self, id: TaskId) -> TaskKind {
        self.tasks[id]
    }

    /// All tasks in program order.
    pub fn tasks(&self) -> &[TaskKind] {
        &self.tasks
    }

    /// Direct predecessors of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id]
    }

    /// Direct successors of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    /// In-degree vector (predecessor counts), the ready-tracking state used
    /// by every executor in the workspace.
    pub fn indegrees(&self) -> Vec<usize> {
        self.preds.iter().map(Vec::len).collect()
    }

    /// Ids of tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// Ids of tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.succs[i].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepClass;

    #[test]
    fn three_by_three_ts_matches_paper_fig2() {
        // Paper Fig. 2: a 3x3 grid runs 3 panels; panel k has
        // 1 GEQRT, (3-k-1) TSQRT, (3-k-1) UNMQR, (3-k-1)^2 TSMQR.
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let count = |c: StepClass| g.tasks().iter().filter(|t| t.class() == c).count();
        assert_eq!(count(StepClass::Triangulation), 3);
        assert_eq!(count(StepClass::Elimination), 2 + 1);
        assert_eq!(count(StepClass::UpdateTriangulation), 2 + 1);
        assert_eq!(count(StepClass::UpdateElimination), 4 + 1);
        assert_eq!(g.len(), 3 + 3 + 3 + 5);
    }

    #[test]
    fn first_geqrt_is_sole_source_in_ts() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let sources = g.sources();
        assert_eq!(sources, vec![0]);
        assert_eq!(g.task(0), TaskKind::Geqrt { i: 0, k: 0 });
    }

    #[test]
    fn fig3_dependencies_present() {
        // Check the canonical edges of the paper's Fig. 3 on a 3x3 grid:
        // T(0) -> UT(0,j), T(0) -> E(0,1,0), E chain, E -> UE, UE -> next T.
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let find = |kind: TaskKind| {
            g.tasks()
                .iter()
                .position(|&t| t == kind)
                .unwrap_or_else(|| panic!("missing {kind:?}"))
        };
        let t0 = find(TaskKind::Geqrt { i: 0, k: 0 });
        let ut01 = find(TaskKind::Unmqr { i: 0, j: 1, k: 0 });
        let e010 = find(TaskKind::Tsqrt { p: 0, i: 1, k: 0 });
        let e020 = find(TaskKind::Tsqrt { p: 0, i: 2, k: 0 });
        let ue0110 = find(TaskKind::Tsmqr {
            p: 0,
            i: 1,
            j: 1,
            k: 0,
        });
        let ue0210 = find(TaskKind::Tsmqr {
            p: 0,
            i: 2,
            j: 1,
            k: 0,
        });
        let t1 = find(TaskKind::Geqrt { i: 1, k: 1 });

        assert!(g.preds(ut01).contains(&t0), "T -> UT");
        assert!(g.preds(e010).contains(&t0), "T -> E (chain head)");
        assert!(g.preds(e020).contains(&e010), "E -> E (sequential chain)");
        assert!(g.preds(ue0110).contains(&e010), "E -> UE");
        assert!(g.preds(ue0110).contains(&ut01), "UT -> UE (row tile)");
        // Next-panel GEQRT waits for the last update of tile (1,1).
        assert!(g.preds(t1).contains(&ue0110) || g.preds(t1).contains(&ue0210));
    }

    #[test]
    fn single_tile_grid() {
        let g = TaskGraph::build(1, 1, EliminationOrder::FlatTs);
        assert_eq!(g.len(), 1);
        assert_eq!(g.task(0), TaskKind::Geqrt { i: 0, k: 0 });
        assert!(g.preds(0).is_empty());
        assert!(g.succs(0).is_empty());
    }

    #[test]
    fn tall_grid_counts() {
        // 5x2 grid, TS: panel 0: 1 T + 4 E + 1 UT + 4 UE; panel 1: 1 T + 3 E.
        let g = TaskGraph::build(5, 2, EliminationOrder::FlatTs);
        assert_eq!(g.len(), (1 + 4 + 1 + 4) + (1 + 3));
    }

    #[test]
    fn wide_grid_counts() {
        // 2x5 grid, TS: panel 0: 1 T + 1 E + 4 UT + 4 UE; panel 1: 1 T + 3 UT.
        let g = TaskGraph::build(2, 5, EliminationOrder::FlatTs);
        assert_eq!(g.len(), (1 + 1 + 4 + 4) + (1 + 3));
    }

    #[test]
    fn binary_tt_has_log_depth_eliminations() {
        // 8 rows, 1 column: flat TS needs a 7-long chain; binary TT pairs
        // rows in 3 rounds (4 + 2 + 1 TTQRTs).
        let g = TaskGraph::build(8, 1, EliminationOrder::BinaryTt);
        let ttqrts: Vec<_> = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Ttqrt { .. }))
            .collect();
        assert_eq!(ttqrts.len(), 7);
        let geqrts = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Geqrt { .. }))
            .count();
        assert_eq!(geqrts, 8);
    }

    #[test]
    fn flat_tt_counts() {
        let g = TaskGraph::build(4, 1, EliminationOrder::FlatTt);
        let geqrts = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Geqrt { .. }))
            .count();
        assert_eq!(geqrts, 4);
        let tts = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Ttqrt { .. }))
            .count();
        assert_eq!(tts, 3);
    }

    #[test]
    fn succs_mirror_preds() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        for id in 0..g.len() {
            for &p in g.preds(id) {
                assert!(g.succs(p).contains(&id));
            }
            for &s in g.succs(id) {
                assert!(g.preds(s).contains(&id));
            }
        }
    }

    #[test]
    fn edges_point_forward_in_program_order() {
        // Program order is a valid topological order by construction.
        for order in [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ] {
            let g = TaskGraph::build(5, 4, order);
            for id in 0..g.len() {
                for &p in g.preds(id) {
                    assert!(p < id, "{order:?}: back edge {p} -> {id}");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_grid_panics() {
        let _ = TaskGraph::build(0, 3, EliminationOrder::FlatTs);
    }
}
