//! DAG construction from per-tile read/write sets.

use crate::task::{TaskId, TaskKind, TileCoord};
use crate::tree::{EliminationTree, MergeKind};
use std::collections::HashMap;

/// Which elimination order the DAG encodes.
///
/// The paper exclusively uses [`EliminationOrder::FlatTs`] (its Fig. 2–3:
/// one `GEQRT` per panel and a sequential chain of `TSQRT`s down the
/// column). The TT orders are the standard tree extensions (Bouwmeester et
/// al., SC'11) included for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EliminationOrder {
    /// One `GEQRT` then a sequential `TSQRT` chain (the paper's algorithm).
    FlatTs,
    /// `GEQRT` on every panel tile, then a sequential `TTQRT` chain.
    FlatTt,
    /// `GEQRT` on every panel tile, then a binary `TTQRT` reduction tree —
    /// the shortest critical path for tall panels.
    BinaryTt,
}

/// The tiled-QR task DAG.
///
/// Tasks are stored in program order; edges are derived from tile-level
/// data-flow (read-after-write, write-after-read, write-after-write), which
/// reproduces exactly the dependence structure of the paper's Fig. 3.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    mt: usize,
    nt: usize,
    tree: EliminationTree,
    tasks: Vec<TaskKind>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
}

/// Per-tile data-flow state used during construction.
#[derive(Default)]
struct TileFlow {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Incremental DAG builder: push tasks in program order and edges appear
/// from the declared tile accesses.
struct Builder {
    tasks: Vec<TaskKind>,
    preds: Vec<Vec<TaskId>>,
    flow: HashMap<TileCoord, TileFlow>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            tasks: Vec::new(),
            preds: Vec::new(),
            flow: HashMap::new(),
        }
    }

    fn push(&mut self, kind: TaskKind) -> TaskId {
        let id = self.tasks.len();
        let mut preds: Vec<TaskId> = Vec::new();
        for tile in kind.reads() {
            let f = self.flow.entry(tile).or_default();
            if let Some(w) = f.last_writer {
                preds.push(w);
            }
            f.readers_since_write.push(id);
        }
        for tile in kind.writes() {
            let f = self.flow.entry(tile).or_default();
            if let Some(w) = f.last_writer {
                preds.push(w);
            }
            preds.extend(f.readers_since_write.iter().copied());
            f.last_writer = Some(id);
            f.readers_since_write.clear();
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        self.tasks.push(kind);
        self.preds.push(preds);
        id
    }

    fn finish(self, mt: usize, nt: usize, tree: EliminationTree) -> TaskGraph {
        let mut succs = vec![Vec::new(); self.tasks.len()];
        for (id, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                succs[p].push(id);
            }
        }
        TaskGraph {
            mt,
            nt,
            tree,
            tasks: self.tasks,
            preds: self.preds,
            succs,
        }
    }
}

impl TaskGraph {
    /// Build the DAG for an `mt x nt` tile grid with one of the legacy
    /// elimination orders — a thin wrapper over [`TaskGraph::build_tree`]
    /// that emits the *identical* task sequence the pre-zoo builders
    /// produced. Panics if the grid is empty.
    pub fn build(mt: usize, nt: usize, order: EliminationOrder) -> Self {
        Self::build_tree(mt, nt, order.into())
    }

    /// Build the DAG for an `mt x nt` tile grid with any tree from the
    /// elimination zoo. Per panel `k` the builder emits one `GEQRT` (plus
    /// its `UNMQR` row updates) for every panel row that is not a TS
    /// victim, then the tree's merge rounds in order — so program order
    /// is always a valid topological order. [`EliminationTree::Tsqr`] on
    /// a grid of at most two tile columns dispatches to the dedicated
    /// [`TaskGraph::build_tsqr`] fast path; on wider grids it falls back
    /// to the (semantically identical) generic plateau construction.
    /// Panics if the grid is empty.
    pub fn build_tree(mt: usize, nt: usize, tree: EliminationTree) -> Self {
        assert!(mt > 0 && nt > 0, "empty tile grid");
        if let EliminationTree::Tsqr(d) = tree {
            if nt <= 2 {
                return Self::build_tsqr_impl(mt, nt, d);
            }
        }
        let mut b = Builder::new();
        let kmax = mt.min(nt);
        for k in 0..kmax {
            let m = mt - k;
            let ts_victim = tree.ts_victims(m);
            for (li, &is_ts_victim) in ts_victim.iter().enumerate() {
                if is_ts_victim {
                    continue;
                }
                let i = k + li;
                b.push(TaskKind::Geqrt { i, k });
                for j in k + 1..nt {
                    b.push(TaskKind::Unmqr { i, j, k });
                }
            }
            for round in tree.rounds(m) {
                for op in round {
                    let p = k + op.pivot;
                    let i = k + op.victim;
                    match op.kind {
                        MergeKind::Ts => {
                            b.push(TaskKind::Tsqrt { p, i, k });
                            for j in k + 1..nt {
                                b.push(TaskKind::Tsmqr { p, i, j, k });
                            }
                        }
                        MergeKind::Tt => {
                            b.push(TaskKind::Ttqrt { p, i, k });
                            for j in k + 1..nt {
                                b.push(TaskKind::Ttmqr { p, i, j, k });
                            }
                        }
                    }
                }
            }
        }
        b.finish(mt, nt, tree)
    }

    /// Dedicated TSQR fast path for tall-skinny grids (`nt <= 2`): builds
    /// the reduction tree *directly* — per panel, `GEQRT` each domain
    /// head, run each domain's `TSQRT` chain to completion, then binary
    /// TT-merge the domain heads — instead of driving the general
    /// per-round panel machinery. The resulting DAG has exactly the task
    /// set and dependence structure of [`EliminationTree::Plateau`]`(d)`
    /// (only the program order differs: domain-major instead of
    /// round-major). Panics if the grid is empty or has more than two
    /// tile columns.
    pub fn build_tsqr(mt: usize, nt: usize, d: usize) -> Self {
        assert!(
            nt <= 2,
            "TSQR fast path requires a tall-skinny grid (nt <= 2)"
        );
        assert!(mt > 0 && nt > 0, "empty tile grid");
        Self::build_tsqr_impl(mt, nt, d)
    }

    fn build_tsqr_impl(mt: usize, nt: usize, d: usize) -> Self {
        assert!(d > 0, "zero TSQR domain size");
        let mut b = Builder::new();
        let kmax = mt.min(nt);
        for k in 0..kmax {
            let m = mt - k;
            let heads: Vec<usize> = (0..m).step_by(d).collect();
            // Triangularize every domain head.
            for &h in &heads {
                let i = k + h;
                b.push(TaskKind::Geqrt { i, k });
                for j in k + 1..nt {
                    b.push(TaskKind::Unmqr { i, j, k });
                }
            }
            // Run each domain's TS chain to completion, domain-major.
            for &h in &heads {
                let p = k + h;
                for t in 1..d {
                    if h + t >= m {
                        break;
                    }
                    let i = k + h + t;
                    b.push(TaskKind::Tsqrt { p, i, k });
                    for j in k + 1..nt {
                        b.push(TaskKind::Tsmqr { p, i, j, k });
                    }
                }
            }
            // Binary reduction tree over the domain heads.
            let mut stride = 1;
            while stride < heads.len() {
                let mut hp = 0;
                while hp + stride < heads.len() {
                    let p = k + heads[hp];
                    let i = k + heads[hp + stride];
                    b.push(TaskKind::Ttqrt { p, i, k });
                    for j in k + 1..nt {
                        b.push(TaskKind::Ttmqr { p, i, j, k });
                    }
                    hp += 2 * stride;
                }
                stride *= 2;
            }
        }
        b.finish(mt, nt, EliminationTree::Tsqr(d))
    }

    /// Number of tile rows.
    pub fn tile_rows(&self) -> usize {
        self.mt
    }

    /// Number of tile columns.
    pub fn tile_cols(&self) -> usize {
        self.nt
    }

    /// The elimination tree this DAG was built with.
    pub fn tree(&self) -> EliminationTree {
        self.tree
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the graph has no tasks (never happens for valid grids).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task kind of `id`.
    pub fn task(&self, id: TaskId) -> TaskKind {
        self.tasks[id]
    }

    /// All tasks in program order.
    pub fn tasks(&self) -> &[TaskKind] {
        &self.tasks
    }

    /// Direct predecessors of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id]
    }

    /// Direct successors of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    /// In-degree vector (predecessor counts), the ready-tracking state used
    /// by every executor in the workspace.
    pub fn indegrees(&self) -> Vec<usize> {
        self.preds.iter().map(Vec::len).collect()
    }

    /// Ids of tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// Ids of tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.succs[i].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepClass;

    #[test]
    fn three_by_three_ts_matches_paper_fig2() {
        // Paper Fig. 2: a 3x3 grid runs 3 panels; panel k has
        // 1 GEQRT, (3-k-1) TSQRT, (3-k-1) UNMQR, (3-k-1)^2 TSMQR.
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let count = |c: StepClass| g.tasks().iter().filter(|t| t.class() == c).count();
        assert_eq!(count(StepClass::Triangulation), 3);
        assert_eq!(count(StepClass::Elimination), 2 + 1);
        assert_eq!(count(StepClass::UpdateTriangulation), 2 + 1);
        assert_eq!(count(StepClass::UpdateElimination), 4 + 1);
        assert_eq!(g.len(), 3 + 3 + 3 + 5);
    }

    #[test]
    fn first_geqrt_is_sole_source_in_ts() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let sources = g.sources();
        assert_eq!(sources, vec![0]);
        assert_eq!(g.task(0), TaskKind::Geqrt { i: 0, k: 0 });
    }

    #[test]
    fn fig3_dependencies_present() {
        // Check the canonical edges of the paper's Fig. 3 on a 3x3 grid:
        // T(0) -> UT(0,j), T(0) -> E(0,1,0), E chain, E -> UE, UE -> next T.
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let find = |kind: TaskKind| {
            g.tasks()
                .iter()
                .position(|&t| t == kind)
                .unwrap_or_else(|| panic!("missing {kind:?}"))
        };
        let t0 = find(TaskKind::Geqrt { i: 0, k: 0 });
        let ut01 = find(TaskKind::Unmqr { i: 0, j: 1, k: 0 });
        let e010 = find(TaskKind::Tsqrt { p: 0, i: 1, k: 0 });
        let e020 = find(TaskKind::Tsqrt { p: 0, i: 2, k: 0 });
        let ue0110 = find(TaskKind::Tsmqr {
            p: 0,
            i: 1,
            j: 1,
            k: 0,
        });
        let ue0210 = find(TaskKind::Tsmqr {
            p: 0,
            i: 2,
            j: 1,
            k: 0,
        });
        let t1 = find(TaskKind::Geqrt { i: 1, k: 1 });

        assert!(g.preds(ut01).contains(&t0), "T -> UT");
        assert!(g.preds(e010).contains(&t0), "T -> E (chain head)");
        assert!(g.preds(e020).contains(&e010), "E -> E (sequential chain)");
        assert!(g.preds(ue0110).contains(&e010), "E -> UE");
        assert!(g.preds(ue0110).contains(&ut01), "UT -> UE (row tile)");
        // Next-panel GEQRT waits for the last update of tile (1,1).
        assert!(g.preds(t1).contains(&ue0110) || g.preds(t1).contains(&ue0210));
    }

    #[test]
    fn single_tile_grid() {
        let g = TaskGraph::build(1, 1, EliminationOrder::FlatTs);
        assert_eq!(g.len(), 1);
        assert_eq!(g.task(0), TaskKind::Geqrt { i: 0, k: 0 });
        assert!(g.preds(0).is_empty());
        assert!(g.succs(0).is_empty());
    }

    #[test]
    fn tall_grid_counts() {
        // 5x2 grid, TS: panel 0: 1 T + 4 E + 1 UT + 4 UE; panel 1: 1 T + 3 E.
        let g = TaskGraph::build(5, 2, EliminationOrder::FlatTs);
        assert_eq!(g.len(), (1 + 4 + 1 + 4) + (1 + 3));
    }

    #[test]
    fn wide_grid_counts() {
        // 2x5 grid, TS: panel 0: 1 T + 1 E + 4 UT + 4 UE; panel 1: 1 T + 3 UT.
        let g = TaskGraph::build(2, 5, EliminationOrder::FlatTs);
        assert_eq!(g.len(), (1 + 1 + 4 + 4) + (1 + 3));
    }

    #[test]
    fn binary_tt_has_log_depth_eliminations() {
        // 8 rows, 1 column: flat TS needs a 7-long chain; binary TT pairs
        // rows in 3 rounds (4 + 2 + 1 TTQRTs).
        let g = TaskGraph::build(8, 1, EliminationOrder::BinaryTt);
        let ttqrts: Vec<_> = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Ttqrt { .. }))
            .collect();
        assert_eq!(ttqrts.len(), 7);
        let geqrts = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Geqrt { .. }))
            .count();
        assert_eq!(geqrts, 8);
    }

    #[test]
    fn flat_tt_counts() {
        let g = TaskGraph::build(4, 1, EliminationOrder::FlatTt);
        let geqrts = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Geqrt { .. }))
            .count();
        assert_eq!(geqrts, 4);
        let tts = g
            .tasks()
            .iter()
            .filter(|t| matches!(t, TaskKind::Ttqrt { .. }))
            .count();
        assert_eq!(tts, 3);
    }

    #[test]
    fn succs_mirror_preds() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        for id in 0..g.len() {
            for &p in g.preds(id) {
                assert!(g.succs(p).contains(&id));
            }
            for &s in g.succs(id) {
                assert!(g.preds(s).contains(&id));
            }
        }
    }

    #[test]
    fn edges_point_forward_in_program_order() {
        // Program order is a valid topological order by construction.
        for order in [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ] {
            let g = TaskGraph::build(5, 4, order);
            for id in 0..g.len() {
                for &p in g.preds(id) {
                    assert!(p < id, "{order:?}: back edge {p} -> {id}");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_grid_panics() {
        let _ = TaskGraph::build(0, 3, EliminationOrder::FlatTs);
    }

    fn zoo_plus_tsqr() -> Vec<EliminationTree> {
        let mut trees = EliminationTree::zoo();
        trees.push(EliminationTree::Tsqr(2));
        trees
    }

    #[test]
    fn legacy_build_records_converted_tree() {
        let g = TaskGraph::build(4, 4, EliminationOrder::BinaryTt);
        assert_eq!(g.tree(), EliminationTree::Binary);
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        assert_eq!(g.tree(), EliminationTree::Flat);
    }

    #[test]
    fn every_tree_edges_point_forward() {
        for tree in zoo_plus_tsqr() {
            for (mt, nt) in [(1, 1), (5, 1), (6, 2), (5, 4), (4, 6)] {
                let g = TaskGraph::build_tree(mt, nt, tree);
                assert_eq!(g.tree(), tree);
                for id in 0..g.len() {
                    for &p in g.preds(id) {
                        assert!(p < id, "{tree}: back edge {p} -> {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn tsqr_fast_path_matches_plateau_dag() {
        // Same task multiset and same edge set; only program order
        // (domain-major vs round-major) differs.
        for (mt, nt, d) in [(8, 1, 3), (8, 2, 3), (12, 2, 4), (5, 1, 2), (3, 2, 8)] {
            let fast = TaskGraph::build_tsqr(mt, nt, d);
            let generic = {
                // Force the generic builder by asking for Plateau.
                TaskGraph::build_tree(mt, nt, EliminationTree::Plateau(d))
            };
            assert_eq!(fast.len(), generic.len());
            let index_of = |g: &TaskGraph| {
                g.tasks()
                    .iter()
                    .enumerate()
                    .map(|(id, &t)| (t, id))
                    .collect::<HashMap<_, _>>()
            };
            let fi = index_of(&fast);
            let gi = index_of(&generic);
            assert_eq!(fi.len(), fast.len(), "duplicate tasks in fast path");
            let edge_set = |g: &TaskGraph, idx: &HashMap<TaskKind, usize>| {
                let mut edges: Vec<(usize, usize)> = Vec::new();
                for id in 0..g.len() {
                    for &p in g.preds(id) {
                        edges.push((idx[&g.task(p)], idx[&g.task(id)]));
                    }
                }
                edges.sort_unstable();
                edges
            };
            // Map both graphs' edges through the *generic* task->index map
            // so they are comparable.
            let fast_edges: Vec<(usize, usize)> = {
                let mut edges: Vec<(usize, usize)> = Vec::new();
                for id in 0..fast.len() {
                    for &p in fast.preds(id) {
                        edges.push((gi[&fast.task(p)], gi[&fast.task(id)]));
                    }
                }
                edges.sort_unstable();
                edges
            };
            let generic_edges = edge_set(&generic, &gi);
            assert_eq!(fast_edges, generic_edges, "mt={mt} nt={nt} d={d}");
            let _ = fi;
        }
    }

    #[test]
    fn tsqr_fast_path_beats_flat_critical_path() {
        // The acceptance metric: fewer unit critical-path steps than the
        // paper's flat chain on p x 1 tall-skinny grids.
        for p in [4, 8, 16, 32] {
            let flat = TaskGraph::build_tree(p, 1, EliminationTree::Flat);
            let tsqr = TaskGraph::build_tsqr(p, 1, EliminationTree::tsqr_domain(p));
            let unit = |_: TaskKind| 1.0;
            let flat_cp = crate::critical_path::critical_path_length(&flat, unit);
            let tsqr_cp = crate::critical_path::critical_path_length(&tsqr, unit);
            assert!(tsqr_cp < flat_cp, "p={p}: tsqr {tsqr_cp} !< flat {flat_cp}");
        }
    }

    #[test]
    #[should_panic]
    fn tsqr_fast_path_rejects_wide_grids() {
        let _ = TaskGraph::build_tsqr(8, 3, 2);
    }

    #[test]
    fn tsqr_tree_falls_back_to_plateau_on_wide_grids() {
        // build_tree with Tsqr on nt > 2 uses the generic plateau path
        // instead of panicking (service robustness).
        let g = TaskGraph::build_tree(6, 4, EliminationTree::Tsqr(2));
        let p = TaskGraph::build_tree(6, 4, EliminationTree::Plateau(2));
        assert_eq!(g.len(), p.len());
        assert_eq!(g.tasks(), p.tasks());
    }
}
