//! Deterministic list-scheduling makespan simulator.
//!
//! A minimal discrete-event replay of the runtime's manager loop: `w`
//! identical workers, a ready set ordered either FIFO (by readiness) or
//! by static priority, each task occupying one worker for its modelled
//! duration. It exists to answer scheduling questions *about the order
//! itself* — e.g. "does critical-path priority under calibrated weights
//! beat FIFO on this grid?" — without threads, noise, or a full platform
//! model, so goldens can assert makespan inequalities exactly.
//!
//! Every tie (ready order, completion order) breaks by task id, so the
//! simulation is a pure function of its inputs.

use crate::graph::TaskGraph;
use crate::task::TaskKind;

/// Ready-set ordering replayed by [`list_makespan`].
#[derive(Debug, Clone, Copy)]
pub enum ListOrder<'a> {
    /// Dispatch in readiness order (the runtime's FIFO policy).
    Fifo,
    /// Dispatch the ready task with the highest priority (ties to the
    /// lower task id) — the runtime's critical-path policy when fed
    /// bottom-level priorities.
    Priority(&'a [f64]),
}

/// Simulated makespan of `graph` on `workers` identical workers, where
/// task `t` runs for `duration(kind)` time units. Returns 0 for an empty
/// graph; panics when `workers == 0`.
pub fn list_makespan(
    graph: &TaskGraph,
    workers: usize,
    order: ListOrder<'_>,
    duration: impl Fn(TaskKind) -> f64,
) -> f64 {
    assert!(workers > 0, "need at least one worker");
    let n = graph.len();
    if n == 0 {
        return 0.0;
    }
    if let ListOrder::Priority(p) = order {
        assert_eq!(p.len(), n, "one priority per task");
    }

    let mut remaining_preds: Vec<usize> = graph.indegrees();
    // Ready pool: FIFO keeps arrival order; priority scans for the max.
    let mut ready: Vec<usize> = (0..n).filter(|&t| remaining_preds[t] == 0).collect();
    // Running tasks as (finish_time, task id); at most `workers` entries,
    // so linear scans stay cheap.
    let mut running: Vec<(f64, usize)> = Vec::with_capacity(workers);
    let mut now = 0.0f64;
    let mut done = 0usize;

    while done < n {
        // Fill idle workers from the ready pool.
        while running.len() < workers && !ready.is_empty() {
            let pick = match order {
                ListOrder::Fifo => 0,
                ListOrder::Priority(p) => {
                    let mut best = 0;
                    for (i, &t) in ready.iter().enumerate() {
                        let (bt, bp) = (ready[best], p[ready[best]]);
                        // Higher priority wins; ties go to the lower id.
                        if p[t] > bp || (p[t] == bp && t < bt) {
                            best = i;
                        }
                    }
                    best
                }
            };
            let task = ready.remove(pick);
            running.push((now + duration(graph.task(task)).max(0.0), task));
        }
        // Advance to the next completion (earliest finish, ties by id).
        let idx = running
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(i, _)| i)
            .expect("non-empty running set while tasks remain");
        let (finish, task) = running.swap_remove(idx);
        now = finish;
        done += 1;
        for &s in graph.succs(task) {
            remaining_preds[s] -= 1;
            if remaining_preds[s] == 0 {
                ready.push(s);
            }
        }
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::bottom_levels;
    use crate::graph::EliminationOrder;

    fn unit(_: TaskKind) -> f64 {
        1.0
    }

    #[test]
    fn serial_makespan_is_total_work() {
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let m = list_makespan(&g, 1, ListOrder::Fifo, unit);
        assert_eq!(m, g.len() as f64);
    }

    #[test]
    fn more_workers_never_hurt_with_unit_tasks() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let m1 = list_makespan(&g, 1, ListOrder::Fifo, unit);
        let m4 = list_makespan(&g, 4, ListOrder::Fifo, unit);
        assert!(m4 <= m1);
        // Cannot beat the critical path.
        let cp = crate::critical_path::critical_path_length(&g, |_| 1.0);
        assert!(m4 >= cp);
    }

    #[test]
    fn deterministic_per_input() {
        let g = TaskGraph::build(5, 4, EliminationOrder::FlatTs);
        let levels = bottom_levels(&g, |_| 1.0);
        let a = list_makespan(&g, 3, ListOrder::Priority(&levels), unit);
        let b = list_makespan(&g, 3, ListOrder::Priority(&levels), unit);
        assert_eq!(a, b);
    }

    #[test]
    fn priority_matches_fifo_bound_on_serial_device() {
        // One worker executes the same total work regardless of order.
        let g = TaskGraph::build(4, 3, EliminationOrder::FlatTs);
        let levels = bottom_levels(&g, |_| 1.0);
        let f = list_makespan(&g, 1, ListOrder::Fifo, unit);
        let p = list_makespan(&g, 1, ListOrder::Priority(&levels), unit);
        assert_eq!(f, p);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = TaskGraph::build(1, 1, EliminationOrder::FlatTs);
        // A 1x1 grid has exactly one task; exercise the non-empty floor.
        assert_eq!(list_makespan(&g, 2, ListOrder::Fifo, unit), 1.0);
    }
}
