//! Task-graph substrate for tiled QR decomposition.
//!
//! The tiled QR algorithm is a DAG of four task kinds (paper §II-B and
//! Fig. 3): triangulation (T/`GEQRT`), update-for-triangulation
//! (UT/`UNMQR`), elimination (E/`TSQRT` or `TTQRT`) and
//! update-for-elimination (UE/`TSMQR` or `TTMQR`). This crate builds that
//! DAG for the TS (flat chain, the paper's variant) and TT (reduction tree)
//! elimination orders, derives dependencies automatically from per-tile
//! read/write sets, and offers the analyses the scheduler and experiments
//! need: topological iteration, ready-set simulation, per-step task counts
//! (paper Table I) and weighted critical paths.
//!
//! The crate is deliberately free of numerics — it is pure scheduling
//! vocabulary shared by the sequential driver, the parallel runtime and the
//! heterogeneous simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod counts;
pub mod critical_path;
pub mod export;
mod graph;
pub mod listsim;
mod task;
pub mod topo;
pub mod tree;

pub use cost::{class_slot, ClassCosts, CostCurve, CostModel};
pub use critical_path::bottom_levels;
pub use graph::{EliminationOrder, TaskGraph};
pub use listsim::{list_makespan, ListOrder};
pub use task::{StepClass, TaskId, TaskKind, TileCoord};
pub use tree::{EliminationTree, MergeKind, MergeOp, TreePolicy};
