//! The elimination-tree zoo: panel-reduction shapes for tiled QR.
//!
//! A panel of `m` tile rows is reduced to one triangular tile by `m - 1`
//! pairwise *merges*, each either a TS merge (`TSQRT`: triangular pivot
//! absorbs a full square victim) or a TT merge (`TTQRT`: triangular pivot
//! absorbs a triangular victim). Which pairs merge, and in which parallel
//! *rounds*, is the elimination tree — the single structural degree of
//! freedom of tiled QR (Bouwmeester et al., "Tiled QR factorization
//! algorithms"). This module enumerates the classical family:
//!
//! * [`EliminationTree::Flat`] — the paper's TS chain: one `GEQRT`, then
//!   every subdiagonal row is TS-merged into the pivot sequentially.
//!   Minimal task count, linear critical path.
//! * [`EliminationTree::FlatTt`] — `GEQRT` everywhere, sequential TT
//!   chain. The degenerate tree kept for ablations.
//! * [`EliminationTree::Binary`] — `GEQRT` everywhere, stride-doubling
//!   TT reduction: `1 + ⌈log₂ m⌉` unit critical path, the shortest.
//! * [`EliminationTree::Greedy`] — each round TT-kills the bottom
//!   `⌊alive/2⌋` rows against the rows directly above them. Same
//!   log-depth as binary on one panel, but it eliminates bottom rows as
//!   early as possible, which pipelines consecutive panels better on
//!   `p × q` grids (Bouwmeester's asymptotically optimal choice).
//! * [`EliminationTree::Fibonacci`] — like greedy but round `r` kills at
//!   most `F_r` rows (`1, 1, 2, 3, 5, …`), the weighted-ideal schedule
//!   when an elimination costs ~1 round-trip and the panel drains at
//!   Fibonacci rate.
//! * [`EliminationTree::Plateau`]`(k)` — TS domains of size `k`: each
//!   domain head `GEQRT`s and TS-absorbs its `k - 1` rows as a chain,
//!   then a binary TT tree merges the domain heads. `Plateau(1)` is
//!   `Binary`; `Plateau(m)` is `Flat`.
//! * [`EliminationTree::Tsqr`]`(d)` — the dedicated tall-skinny fast
//!   path: semantically a `Plateau(d)` reduction, but for grids of at
//!   most two tile columns [`crate::TaskGraph::build_tree`] emits the
//!   reduction tree directly (domain chains then the head tree) instead
//!   of running the general per-round panel machinery.
//!
//! Every tree produces the *same factorization bits for its own DAG* —
//! the runtime guarantees bit-identity across schedules of one DAG, and
//! the testkit holds each tree to the same κ-scaled numerical oracles.

/// How a [`MergeOp`] combines two panel rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeKind {
    /// `TSQRT`: the victim row is a full square tile (never `GEQRT`ed).
    Ts,
    /// `TTQRT`: the victim row was triangularized first (`GEQRT` or an
    /// earlier merge), so only its upper triangle is annihilated.
    Tt,
}

/// One pairwise merge in a panel's elimination schedule: `pivot` absorbs
/// `victim`. Row indices are panel-local (`0` is the diagonal row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MergeOp {
    /// Surviving row (always `< victim`).
    pub pivot: usize,
    /// Eliminated row; never referenced again within the panel.
    pub victim: usize,
    /// TS or TT merge.
    pub kind: MergeKind,
}

/// A panel-reduction shape from the elimination-tree zoo (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EliminationTree {
    /// TS chain (the paper's algorithm): 1 `GEQRT`, sequential `TSQRT`s.
    Flat,
    /// Sequential `TTQRT` chain with `GEQRT` on every row.
    FlatTt,
    /// Stride-doubling binary `TTQRT` tree.
    Binary,
    /// Fibonacci-capped bottom-half elimination.
    Fibonacci,
    /// Bottom-half-per-round elimination (asymptotically optimal).
    Greedy,
    /// TS domains of size `k` merged by a binary TT tree (`k >= 1`).
    Plateau(usize),
    /// Tall-skinny TSQR fast path with domain size `d` (`d >= 1`):
    /// `Plateau(d)` semantics, direct reduction-tree construction for
    /// grids with at most two tile columns.
    Tsqr(usize),
}

impl EliminationTree {
    /// The round-based merge schedule for a panel of `m` rows: rounds run
    /// in order, ops within a round touch pairwise-disjoint rows and may
    /// run in parallel. Every row `1..m` appears as a victim exactly
    /// once; a TS victim is never a pivot and never `GEQRT`ed.
    ///
    /// Panics on `m == 0` or a zero domain size.
    pub fn rounds(&self, m: usize) -> Vec<Vec<MergeOp>> {
        assert!(m > 0, "empty panel");
        match *self {
            EliminationTree::Flat => (1..m)
                .map(|v| {
                    vec![MergeOp {
                        pivot: 0,
                        victim: v,
                        kind: MergeKind::Ts,
                    }]
                })
                .collect(),
            EliminationTree::FlatTt => (1..m)
                .map(|v| {
                    vec![MergeOp {
                        pivot: 0,
                        victim: v,
                        kind: MergeKind::Tt,
                    }]
                })
                .collect(),
            EliminationTree::Binary => binary_rounds(&(0..m).collect::<Vec<_>>()),
            EliminationTree::Greedy => bottom_rounds(m, |_, alive| alive / 2),
            EliminationTree::Fibonacci => {
                // F_r caps the kill count of round r: 1, 1, 2, 3, 5, …
                let (mut fa, mut fb) = (1usize, 1usize);
                bottom_rounds(m, move |round, alive| {
                    if round > 1 {
                        let next = fa.saturating_add(fb);
                        fa = fb;
                        fb = next;
                    }
                    fa.min(alive / 2)
                })
            }
            EliminationTree::Plateau(k) | EliminationTree::Tsqr(k) => plateau_rounds(m, k),
        }
    }

    /// `true` for each panel-local row that is some TS merge's victim —
    /// exactly the rows that must *not* be triangularized by `GEQRT`.
    pub fn ts_victims(&self, m: usize) -> Vec<bool> {
        let mut v = vec![false; m];
        for round in self.rounds(m) {
            for op in round {
                if op.kind == MergeKind::Ts {
                    v[op.victim] = true;
                }
            }
        }
        v
    }

    /// Unit-weight critical-path length of a single `m`-row panel
    /// (every `GEQRT`/merge counted as one step) — the Bouwmeester
    /// closed forms:
    ///
    /// * `Flat`/`FlatTt`: `m`
    /// * `Binary`/`Greedy`: `1 + ⌈log₂ m⌉`
    /// * `Fibonacci`: `1 +` the number of Fibonacci-capped rounds
    /// * `Plateau(k)`/`Tsqr(k)`: `1 + (min(k, m) − 1) + ⌈log₂ ⌈m/k⌉⌉`
    ///
    /// Equals `1 + rounds(m).len()` for every tree (each round chains on
    /// the previous one through a shared row).
    pub fn unit_depth(&self, m: usize) -> usize {
        assert!(m > 0, "empty panel");
        match *self {
            EliminationTree::Flat | EliminationTree::FlatTt => m,
            EliminationTree::Binary | EliminationTree::Greedy => 1 + ceil_log2(m),
            EliminationTree::Fibonacci => 1 + self.rounds(m).len(),
            EliminationTree::Plateau(k) | EliminationTree::Tsqr(k) => {
                assert!(k > 0, "zero domain size");
                1 + (k.min(m) - 1) + ceil_log2(m.div_ceil(k))
            }
        }
    }

    /// Stable lowercase label for artifacts and trace metadata
    /// (`"flat"`, `"binary"`, `"plateau4"`, `"tsqr3"`, …).
    pub fn label(&self) -> String {
        match *self {
            EliminationTree::Flat => "flat".into(),
            EliminationTree::FlatTt => "flat_tt".into(),
            EliminationTree::Binary => "binary".into(),
            EliminationTree::Fibonacci => "fibonacci".into(),
            EliminationTree::Greedy => "greedy".into(),
            EliminationTree::Plateau(k) => format!("plateau{k}"),
            EliminationTree::Tsqr(d) => format!("tsqr{d}"),
        }
    }

    /// The canonical zoo members valid on *every* grid geometry (no
    /// [`EliminationTree::Tsqr`], which the fast-path builder restricts
    /// to `nt <= 2`; push it yourself for tall-skinny sweeps).
    pub fn zoo() -> Vec<EliminationTree> {
        vec![
            EliminationTree::Flat,
            EliminationTree::FlatTt,
            EliminationTree::Binary,
            EliminationTree::Fibonacci,
            EliminationTree::Greedy,
            EliminationTree::Plateau(2),
            EliminationTree::Plateau(4),
        ]
    }

    /// Worker-agnostic default TSQR domain size for `mt` tile rows:
    /// `⌈√mt⌉` balances the in-domain TS chain against the head tree
    /// when the worker count is unknown (a calibrated selector does
    /// better).
    pub fn tsqr_domain(mt: usize) -> usize {
        ((mt as f64).sqrt().ceil() as usize).max(1)
    }

    /// Geometry heuristic used when [`TreePolicy::Auto`] has no
    /// calibration profile: tall-skinny grids (`nt <= 2`) take the TSQR
    /// fast path, markedly tall grids take `Greedy`, everything else the
    /// paper's `Flat` chain.
    pub fn default_for(mt: usize, nt: usize) -> EliminationTree {
        if nt <= 2 && mt >= 4 {
            EliminationTree::Tsqr(Self::tsqr_domain(mt))
        } else if mt >= 4 * nt {
            EliminationTree::Greedy
        } else {
            EliminationTree::Flat
        }
    }
}

impl std::fmt::Display for EliminationTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl From<crate::EliminationOrder> for EliminationTree {
    fn from(order: crate::EliminationOrder) -> Self {
        match order {
            crate::EliminationOrder::FlatTs => EliminationTree::Flat,
            crate::EliminationOrder::FlatTt => EliminationTree::FlatTt,
            crate::EliminationOrder::BinaryTt => EliminationTree::Binary,
        }
    }
}

/// How a factorization chooses its elimination tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreePolicy {
    /// Use exactly this tree.
    Fixed(EliminationTree),
    /// Pick per geometry: a calibrated selector (`sched::select`) when
    /// one is wired in, otherwise [`EliminationTree::default_for`].
    Auto,
}

impl Default for TreePolicy {
    /// The paper's TS chain.
    fn default() -> Self {
        TreePolicy::Fixed(EliminationTree::Flat)
    }
}

impl TreePolicy {
    /// Resolve to a concrete tree for an `mt × nt` grid without a
    /// calibration profile (the "sane default" degradation of `Auto`).
    pub fn resolve(self, mt: usize, nt: usize) -> EliminationTree {
        match self {
            TreePolicy::Fixed(tree) => tree,
            TreePolicy::Auto => EliminationTree::default_for(mt, nt),
        }
    }
}

/// `⌈log₂ x⌉` for `x >= 1`.
fn ceil_log2(x: usize) -> usize {
    x.next_power_of_two().trailing_zeros() as usize
}

/// Stride-doubling binary TT reduction over the surviving `rows`.
fn binary_rounds(rows: &[usize]) -> Vec<Vec<MergeOp>> {
    let mut rounds = Vec::new();
    let mut stride = 1;
    while stride < rows.len() {
        let mut ops = Vec::new();
        let mut p = 0;
        while p + stride < rows.len() {
            ops.push(MergeOp {
                pivot: rows[p],
                victim: rows[p + stride],
                kind: MergeKind::Tt,
            });
            p += 2 * stride;
        }
        rounds.push(ops);
        stride *= 2;
    }
    rounds
}

/// Bottom-block TT elimination: round `r` (1-based) kills the bottom
/// `kills(r, alive)` surviving rows, each against the surviving row the
/// same distance above the block (so all pivots sit above all victims
/// and the round's rows are pairwise disjoint).
fn bottom_rounds(m: usize, mut kills: impl FnMut(usize, usize) -> usize) -> Vec<Vec<MergeOp>> {
    let mut alive: Vec<usize> = (0..m).collect();
    let mut rounds = Vec::new();
    let mut round = 1;
    while alive.len() > 1 {
        let n = alive.len();
        let s = kills(round, n).clamp(1, n / 2);
        let ops = (0..s)
            .map(|j| MergeOp {
                pivot: alive[n - 2 * s + j],
                victim: alive[n - s + j],
                kind: MergeKind::Tt,
            })
            .collect();
        alive.truncate(n - s);
        rounds.push(ops);
        round += 1;
    }
    rounds
}

/// TS domains of size `k` (chains, rounds interleaved across domains)
/// followed by a binary TT tree over the domain heads.
fn plateau_rounds(m: usize, k: usize) -> Vec<Vec<MergeOp>> {
    assert!(k > 0, "zero domain size");
    let heads: Vec<usize> = (0..m).step_by(k).collect();
    let mut rounds = Vec::new();
    for j in 1..k {
        let ops: Vec<MergeOp> = heads
            .iter()
            .filter(|&&h| h + j < m)
            .map(|&h| MergeOp {
                pivot: h,
                victim: h + j,
                kind: MergeKind::Ts,
            })
            .collect();
        if ops.is_empty() {
            break;
        }
        rounds.push(ops);
    }
    rounds.extend(binary_rounds(&heads));
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_trees() -> Vec<EliminationTree> {
        let mut zoo = EliminationTree::zoo();
        zoo.push(EliminationTree::Tsqr(3));
        zoo
    }

    #[test]
    fn every_row_killed_exactly_once() {
        for tree in all_trees() {
            for m in 1..=24 {
                let mut killed = vec![0usize; m];
                let mut dead = vec![false; m];
                for round in tree.rounds(m) {
                    let mut touched = std::collections::HashSet::new();
                    for op in &round {
                        assert!(op.pivot < op.victim, "{tree}: pivot below victim");
                        assert!(!dead[op.pivot], "{tree}: dead pivot reused");
                        assert!(!dead[op.victim], "{tree}: double kill");
                        assert!(touched.insert(op.pivot), "{tree}: pivot clash in round");
                        assert!(touched.insert(op.victim), "{tree}: victim clash in round");
                        killed[op.victim] += 1;
                    }
                    // Deaths land after the whole round (intra-round ops
                    // are concurrent).
                    for op in &round {
                        dead[op.victim] = true;
                    }
                }
                assert!(!dead[0], "{tree}: diagonal row must survive");
                assert_eq!(killed[0], 0, "{tree}: diagonal row killed");
                for (row, &count) in killed.iter().enumerate().skip(1) {
                    assert_eq!(count, 1, "{tree} m={m}: row {row} killed {count}x");
                }
            }
        }
    }

    #[test]
    fn ts_victims_are_never_pivots() {
        for tree in all_trees() {
            for m in 1..=24 {
                let ts = tree.ts_victims(m);
                for op in tree.rounds(m).into_iter().flatten() {
                    assert!(!ts[op.pivot], "{tree}: TS victim used as pivot");
                }
            }
        }
    }

    #[test]
    fn unit_depth_matches_round_count() {
        for tree in all_trees() {
            for m in 1..=32 {
                assert_eq!(tree.unit_depth(m), 1 + tree.rounds(m).len(), "{tree} m={m}");
            }
        }
    }

    #[test]
    fn closed_form_depths() {
        assert_eq!(EliminationTree::Flat.unit_depth(8), 8);
        assert_eq!(EliminationTree::Binary.unit_depth(8), 4);
        assert_eq!(EliminationTree::Greedy.unit_depth(8), 4);
        // Fibonacci kills 1,1,2 then the ⌊alive/2⌋ cap bites: 2,1 —
        // five rounds for m = 8.
        assert_eq!(EliminationTree::Fibonacci.unit_depth(8), 6);
        // Plateau(4) on 8 rows: 3-chain + 1 head merge.
        assert_eq!(EliminationTree::Plateau(4).unit_depth(8), 5);
        // Degenerate ends of the plateau family.
        for m in 1..=16 {
            assert_eq!(
                EliminationTree::Plateau(1).unit_depth(m),
                EliminationTree::Binary.unit_depth(m)
            );
            assert_eq!(
                EliminationTree::Plateau(m).unit_depth(m),
                EliminationTree::Flat.unit_depth(m)
            );
        }
    }

    #[test]
    fn greedy_and_fibonacci_sit_between_binary_and_flat() {
        for m in 2..=32 {
            let flat = EliminationTree::Flat.unit_depth(m);
            let binary = EliminationTree::Binary.unit_depth(m);
            for tree in [EliminationTree::Greedy, EliminationTree::Fibonacci] {
                let d = tree.unit_depth(m);
                assert!(d >= binary && d <= flat, "{tree} m={m}: {d}");
            }
        }
    }

    #[test]
    fn tsqr_is_plateau() {
        for m in 1..=20 {
            assert_eq!(
                EliminationTree::Tsqr(3).rounds(m),
                EliminationTree::Plateau(3).rounds(m)
            );
        }
    }

    #[test]
    fn auto_policy_heuristics() {
        // Tall-skinny: TSQR fast path.
        assert!(matches!(
            TreePolicy::Auto.resolve(16, 1),
            EliminationTree::Tsqr(_)
        ));
        assert!(matches!(
            TreePolicy::Auto.resolve(12, 2),
            EliminationTree::Tsqr(_)
        ));
        // Markedly tall: greedy.
        assert_eq!(TreePolicy::Auto.resolve(16, 4), EliminationTree::Greedy);
        // Square / mildly tall: the paper's flat chain.
        assert_eq!(TreePolicy::Auto.resolve(8, 8), EliminationTree::Flat);
        assert_eq!(TreePolicy::Auto.resolve(2, 1), EliminationTree::Flat);
        // Fixed is identity.
        assert_eq!(
            TreePolicy::Fixed(EliminationTree::Fibonacci).resolve(100, 1),
            EliminationTree::Fibonacci
        );
        assert_eq!(TreePolicy::default().resolve(5, 5), EliminationTree::Flat);
    }

    #[test]
    fn legacy_order_conversion() {
        use crate::EliminationOrder;
        assert_eq!(
            EliminationTree::from(EliminationOrder::FlatTs),
            EliminationTree::Flat
        );
        assert_eq!(
            EliminationTree::from(EliminationOrder::FlatTt),
            EliminationTree::FlatTt
        );
        assert_eq!(
            EliminationTree::from(EliminationOrder::BinaryTt),
            EliminationTree::Binary
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EliminationTree::Plateau(4).label(), "plateau4");
        assert_eq!(EliminationTree::Tsqr(2).label(), "tsqr2");
        assert_eq!(EliminationTree::Greedy.to_string(), "greedy");
    }

    #[test]
    #[should_panic]
    fn zero_plateau_domain_panics() {
        let _ = EliminationTree::Plateau(0).rounds(4);
    }
}
