//! Topological iteration and ready-set simulation over a [`TaskGraph`].

use crate::{TaskGraph, TaskId};
use std::collections::VecDeque;

/// A topological order of the graph (Kahn's algorithm, FIFO tie-break, so
/// the result is deterministic and equals program order for our builders).
pub fn topological_order(g: &TaskGraph) -> Vec<TaskId> {
    let mut indeg = g.indegrees();
    let mut queue: VecDeque<TaskId> = g.sources().into();
    let mut out = Vec::with_capacity(g.len());
    while let Some(id) = queue.pop_front() {
        out.push(id);
        for &s in g.succs(id) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    out
}

/// `true` when the graph is acyclic (every task is reachable by Kahn's
/// algorithm). Our builders guarantee this; the check exists for tests and
/// for hand-built graphs.
pub fn is_acyclic(g: &TaskGraph) -> bool {
    topological_order(g).len() == g.len()
}

/// Maximum-parallelism profile: runs the DAG with an infinite number of
/// workers where every task takes one time unit, returning the number of
/// tasks executed at each step. The profile length is the unit-weight
/// critical-path length; its maximum is the peak task parallelism —
/// the quantity that motivates giving update steps to wide devices
/// (paper §III-A/B).
pub fn parallelism_profile(g: &TaskGraph) -> Vec<usize> {
    let mut indeg = g.indegrees();
    let mut frontier: Vec<TaskId> = g.sources();
    let mut profile = Vec::new();
    while !frontier.is_empty() {
        profile.push(frontier.len());
        let mut next = Vec::new();
        for &id in &frontier {
            for &s in g.succs(id) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    next.push(s);
                }
            }
        }
        frontier = next;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EliminationOrder;

    #[test]
    fn topo_order_respects_edges() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let order = topological_order(&g);
        assert_eq!(order.len(), g.len());
        let mut pos = vec![0usize; g.len()];
        for (idx, &id) in order.iter().enumerate() {
            pos[id] = idx;
        }
        for id in 0..g.len() {
            for &p in g.preds(id) {
                assert!(pos[p] < pos[id]);
            }
        }
    }

    #[test]
    fn builders_are_acyclic() {
        for order in [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ] {
            assert!(is_acyclic(&TaskGraph::build(6, 5, order)));
        }
    }

    #[test]
    fn profile_sums_to_task_count() {
        let g = TaskGraph::build(5, 5, EliminationOrder::FlatTs);
        let profile = parallelism_profile(&g);
        assert_eq!(profile.iter().sum::<usize>(), g.len());
        assert_eq!(profile[0], 1, "only the first GEQRT is initially ready");
    }

    #[test]
    fn wider_grids_expose_more_parallelism() {
        let narrow = parallelism_profile(&TaskGraph::build(4, 4, EliminationOrder::FlatTs));
        let wide = parallelism_profile(&TaskGraph::build(8, 8, EliminationOrder::FlatTs));
        assert!(
            wide.iter().max().unwrap() > narrow.iter().max().unwrap(),
            "peak parallelism must grow with grid size"
        );
    }

    #[test]
    fn binary_tree_shortens_profile_on_tall_grid() {
        let flat = parallelism_profile(&TaskGraph::build(16, 1, EliminationOrder::FlatTs));
        let tree = parallelism_profile(&TaskGraph::build(16, 1, EliminationOrder::BinaryTt));
        assert!(
            tree.len() < flat.len(),
            "binary tree depth {} !< flat chain depth {}",
            tree.len(),
            flat.len()
        );
    }
}
