//! Graphviz export of task DAGs (for papers, docs and debugging — the
//! paper's Fig. 3 is exactly such a rendering).

use crate::{StepClass, TaskGraph};
use std::fmt::Write;

/// Render the DAG in Graphviz DOT format. Node labels use the paper's
/// shorthand (`T`, `E`, `UT`, `UE`); each step class gets its own color.
pub fn to_dot(g: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph tiled_qr {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [style=filled, fontname=\"monospace\"];");
    for (id, task) in g.tasks().iter().enumerate() {
        let color = match task.class() {
            StepClass::Triangulation => "gold",
            StepClass::Elimination => "salmon",
            StepClass::UpdateTriangulation => "lightblue",
            StepClass::UpdateElimination => "lightgreen",
        };
        let _ = writeln!(
            out,
            "  n{id} [label=\"{}\", fillcolor={color}];",
            task.label()
        );
    }
    for id in 0..g.len() {
        for &s in g.succs(id) {
            let _ = writeln!(out, "  n{id} -> n{s};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EliminationOrder;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for id in 0..g.len() {
            assert!(dot.contains(&format!("n{id} [label=")));
        }
        let edge_count = dot.matches(" -> ").count();
        let expect: usize = (0..g.len()).map(|i| g.succs(i).len()).sum();
        assert_eq!(edge_count, expect);
    }

    #[test]
    fn labels_use_paper_shorthand() {
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);
        let dot = to_dot(&g);
        assert!(dot.contains("T(0,0)"));
        assert!(dot.contains("E(0,1,0)"));
    }
}
