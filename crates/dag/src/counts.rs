//! Task-count formulas (paper Table I) and exact DAG cross-checks.
//!
//! Table I of the paper reports, for a remaining panel of `M` tile rows by
//! `N` tile columns, the number of tiles operated per step:
//!
//! | Step | Count        |
//! |------|--------------|
//! | T    | `M`          |
//! | E    | `M`          |
//! | UT   | `M × (N−1)`  |
//! | UE   | `M × (N−1)`  |
//!
//! The paper's model merges the panel column's T+E work as `M` tile
//! operations each (1 `GEQRT` + `M−1` `TSQRT`s touch `M` tiles) and lumps
//! update work as `M(N−1)` (`N−1` `UNMQR` + `(M−1)(N−1)` `TSMQR` =
//! `M(N−1)` update tasks). These coarse counts feed the `#tile` terms of
//! the device-count cost model (Eq. 10). [`exact_panel_counts`] gives the
//! exact kernel-level numbers; [`paper_table1`] the paper's reported ones.

use crate::{EliminationOrder, StepClass, TaskGraph};

/// Exact kernel counts for one TS panel over a remaining `M x N` tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelCounts {
    /// `GEQRT` invocations (always 1).
    pub geqrt: usize,
    /// `TSQRT` invocations (`M − 1`).
    pub tsqrt: usize,
    /// `UNMQR` invocations (`N − 1`).
    pub unmqr: usize,
    /// `TSMQR` invocations (`(M − 1)(N − 1)`).
    pub tsmqr: usize,
}

impl PanelCounts {
    /// Total kernel invocations in the panel.
    pub fn total(&self) -> usize {
        self.geqrt + self.tsqrt + self.unmqr + self.tsmqr
    }
}

/// Exact kernel counts for the first panel of a remaining `m x n` grid.
pub fn exact_panel_counts(m: usize, n: usize) -> PanelCounts {
    assert!(m > 0 && n > 0);
    PanelCounts {
        geqrt: 1,
        tsqrt: m - 1,
        unmqr: n - 1,
        tsmqr: (m - 1) * (n - 1),
    }
}

/// The paper's Table I values `(T, E, UT, UE)` for a remaining `m x n` grid.
pub fn paper_table1(m: usize, n: usize) -> (usize, usize, usize, usize) {
    (m, m, m * (n - 1), m * (n - 1))
}

/// Total kernel invocations of a full TS tiled QR on an `mt x nt` grid
/// (closed form, cross-checked against the DAG builder in tests).
pub fn total_ts_tasks(mt: usize, nt: usize) -> usize {
    let kmax = mt.min(nt);
    (0..kmax)
        .map(|k| exact_panel_counts(mt - k, nt - k).total())
        .sum()
}

/// Count tasks of each step class in a built graph: `(T, E, UT, UE)`.
pub fn class_totals(g: &TaskGraph) -> (usize, usize, usize, usize) {
    let mut t = 0;
    let mut e = 0;
    let mut ut = 0;
    let mut ue = 0;
    for task in g.tasks() {
        match task.class() {
            StepClass::Triangulation => t += 1,
            StepClass::Elimination => e += 1,
            StepClass::UpdateTriangulation => ut += 1,
            StepClass::UpdateElimination => ue += 1,
        }
    }
    (t, e, ut, ue)
}

/// Sanity helper used by the Table I reproduction: verifies that the paper's
/// coarse per-panel counts and the exact kernel counts agree on their sums
/// (`T + E = M` column tasks, `UT + UE = M(N−1)` update tasks).
pub fn table1_consistent(m: usize, n: usize) -> bool {
    let exact = exact_panel_counts(m, n);
    let (_t, e, _ut, ue) = paper_table1(m, n);
    exact.geqrt + exact.tsqrt == e && exact.unmqr + exact.tsmqr == ue
}

/// Exact per-panel counts read off a freshly built DAG (used to cross-check
/// the closed forms).
pub fn panel_counts_from_dag(m: usize, n: usize) -> PanelCounts {
    let g = TaskGraph::build(m, n, EliminationOrder::FlatTs);
    let mut c = PanelCounts {
        geqrt: 0,
        tsqrt: 0,
        unmqr: 0,
        tsmqr: 0,
    };
    for task in g.tasks().iter().filter(|t| t.panel() == 0) {
        match task.class() {
            StepClass::Triangulation => c.geqrt += 1,
            StepClass::Elimination => c.tsqrt += 1,
            StepClass::UpdateTriangulation => c.unmqr += 1,
            StepClass::UpdateElimination => c.tsmqr += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_dag() {
        for (m, n) in [(1, 1), (3, 3), (5, 2), (2, 5), (8, 8)] {
            assert_eq!(exact_panel_counts(m, n), panel_counts_from_dag(m, n));
            let g = TaskGraph::build(m, n, EliminationOrder::FlatTs);
            assert_eq!(g.len(), total_ts_tasks(m, n));
        }
    }

    #[test]
    fn paper_table1_sums_match_exact() {
        for (m, n) in [(1, 1), (2, 2), (4, 7), (10, 10), (100, 50)] {
            assert!(table1_consistent(m, n), "inconsistent at {m}x{n}");
        }
    }

    #[test]
    fn table1_values() {
        assert_eq!(paper_table1(5, 4), (5, 5, 15, 15));
        assert_eq!(paper_table1(1, 1), (1, 1, 0, 0));
    }

    #[test]
    fn class_totals_sum_to_len() {
        let g = TaskGraph::build(6, 4, EliminationOrder::FlatTs);
        let (t, e, ut, ue) = class_totals(&g);
        assert_eq!(t + e + ut + ue, g.len());
        assert_eq!(t, 4, "one GEQRT per panel");
    }
}
