//! Task-count formulas (paper Table I) and exact DAG cross-checks.
//!
//! Table I of the paper reports, for a remaining panel of `M` tile rows by
//! `N` tile columns, the number of tiles operated per step:
//!
//! | Step | Count        |
//! |------|--------------|
//! | T    | `M`          |
//! | E    | `M`          |
//! | UT   | `M × (N−1)`  |
//! | UE   | `M × (N−1)`  |
//!
//! The paper's model merges the panel column's T+E work as `M` tile
//! operations each (1 `GEQRT` + `M−1` `TSQRT`s touch `M` tiles) and lumps
//! update work as `M(N−1)` (`N−1` `UNMQR` + `(M−1)(N−1)` `TSMQR` =
//! `M(N−1)` update tasks). These coarse counts feed the `#tile` terms of
//! the device-count cost model (Eq. 10). [`exact_panel_counts`] gives the
//! exact kernel-level numbers; [`paper_table1`] the paper's reported ones.

use crate::tree::MergeKind;
use crate::{EliminationOrder, EliminationTree, StepClass, TaskGraph};

/// Exact kernel counts for one TS panel over a remaining `M x N` tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelCounts {
    /// `GEQRT` invocations (always 1).
    pub geqrt: usize,
    /// `TSQRT` invocations (`M − 1`).
    pub tsqrt: usize,
    /// `UNMQR` invocations (`N − 1`).
    pub unmqr: usize,
    /// `TSMQR` invocations (`(M − 1)(N − 1)`).
    pub tsmqr: usize,
}

impl PanelCounts {
    /// Total kernel invocations in the panel.
    pub fn total(&self) -> usize {
        self.geqrt + self.tsqrt + self.unmqr + self.tsmqr
    }
}

/// Exact kernel counts for the first panel of a remaining `m x n` grid.
pub fn exact_panel_counts(m: usize, n: usize) -> PanelCounts {
    assert!(m > 0 && n > 0);
    PanelCounts {
        geqrt: 1,
        tsqrt: m - 1,
        unmqr: n - 1,
        tsmqr: (m - 1) * (n - 1),
    }
}

/// The paper's Table I values `(T, E, UT, UE)` for a remaining `m x n` grid.
pub fn paper_table1(m: usize, n: usize) -> (usize, usize, usize, usize) {
    (m, m, m * (n - 1), m * (n - 1))
}

/// Total kernel invocations of a full TS tiled QR on an `mt x nt` grid
/// (closed form, cross-checked against the DAG builder in tests).
pub fn total_ts_tasks(mt: usize, nt: usize) -> usize {
    let kmax = mt.min(nt);
    (0..kmax)
        .map(|k| exact_panel_counts(mt - k, nt - k).total())
        .sum()
}

/// Count tasks of each step class in a built graph: `(T, E, UT, UE)`.
pub fn class_totals(g: &TaskGraph) -> (usize, usize, usize, usize) {
    let mut t = 0;
    let mut e = 0;
    let mut ut = 0;
    let mut ue = 0;
    for task in g.tasks() {
        match task.class() {
            StepClass::Triangulation => t += 1,
            StepClass::Elimination => e += 1,
            StepClass::UpdateTriangulation => ut += 1,
            StepClass::UpdateElimination => ue += 1,
        }
    }
    (t, e, ut, ue)
}

/// Sanity helper used by the Table I reproduction: verifies that the paper's
/// coarse per-panel counts and the exact kernel counts agree on their sums
/// (`T + E = M` column tasks, `UT + UE = M(N−1)` update tasks).
pub fn table1_consistent(m: usize, n: usize) -> bool {
    let exact = exact_panel_counts(m, n);
    let (_t, e, _ut, ue) = paper_table1(m, n);
    exact.geqrt + exact.tsqrt == e && exact.unmqr + exact.tsmqr == ue
}

/// Exact per-panel counts read off a freshly built DAG (used to cross-check
/// the closed forms).
pub fn panel_counts_from_dag(m: usize, n: usize) -> PanelCounts {
    let g = TaskGraph::build(m, n, EliminationOrder::FlatTs);
    let mut c = PanelCounts {
        geqrt: 0,
        tsqrt: 0,
        unmqr: 0,
        tsmqr: 0,
    };
    for task in g.tasks().iter().filter(|t| t.panel() == 0) {
        match task.class() {
            StepClass::Triangulation => c.geqrt += 1,
            StepClass::Elimination => c.tsqrt += 1,
            StepClass::UpdateTriangulation => c.unmqr += 1,
            StepClass::UpdateElimination => c.tsmqr += 1,
        }
    }
    c
}

/// Exact per-kernel task counts of an arbitrary elimination tree on an
/// `mt x nt` grid, computed from the tree's merge schedule *without*
/// building the DAG (cross-checked against the builder in the testkit's
/// tree-property suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCounts {
    /// `GEQRT` invocations (one per non-TS-victim panel row).
    pub geqrt: usize,
    /// `UNMQR` invocations (`geqrt` rows × trailing columns).
    pub unmqr: usize,
    /// `TSQRT` invocations (TS merges).
    pub tsqrt: usize,
    /// `TTQRT` invocations (TT merges).
    pub ttqrt: usize,
    /// `TSMQR` invocations (TS merges × trailing columns).
    pub tsmqr: usize,
    /// `TTMQR` invocations (TT merges × trailing columns).
    pub ttmqr: usize,
}

impl TreeCounts {
    /// Total kernel invocations.
    pub fn total(&self) -> usize {
        self.geqrt + self.unmqr + self.tsqrt + self.ttqrt + self.tsmqr + self.ttmqr
    }

    /// Step-class totals `(T, E, UT, UE)` in the paper's vocabulary.
    pub fn class_totals(&self) -> (usize, usize, usize, usize) {
        (
            self.geqrt,
            self.tsqrt + self.ttqrt,
            self.unmqr,
            self.tsmqr + self.ttmqr,
        )
    }
}

/// Exact kernel counts for a full tiled QR with `tree` on an `mt x nt`
/// grid. Every panel of `m` remaining rows contributes exactly `m - 1`
/// eliminations regardless of tree shape; the tree only moves kernels
/// between the TS and TT columns and sets the `GEQRT` count.
pub fn tree_counts(mt: usize, nt: usize, tree: EliminationTree) -> TreeCounts {
    assert!(mt > 0 && nt > 0);
    let mut c = TreeCounts {
        geqrt: 0,
        unmqr: 0,
        tsqrt: 0,
        ttqrt: 0,
        tsmqr: 0,
        ttmqr: 0,
    };
    let kmax = mt.min(nt);
    for k in 0..kmax {
        let m = mt - k;
        let trailing = nt - k - 1;
        let mut ts = 0;
        let mut tt = 0;
        for op in tree.rounds(m).into_iter().flatten() {
            match op.kind {
                MergeKind::Ts => ts += 1,
                MergeKind::Tt => tt += 1,
            }
        }
        debug_assert_eq!(ts + tt, m - 1, "every subdiagonal row merged once");
        let geqrt = m - ts;
        c.geqrt += geqrt;
        c.unmqr += geqrt * trailing;
        c.tsqrt += ts;
        c.ttqrt += tt;
        c.tsmqr += ts * trailing;
        c.ttmqr += tt * trailing;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskKind;

    #[test]
    fn closed_forms_match_dag() {
        for (m, n) in [(1, 1), (3, 3), (5, 2), (2, 5), (8, 8)] {
            assert_eq!(exact_panel_counts(m, n), panel_counts_from_dag(m, n));
            let g = TaskGraph::build(m, n, EliminationOrder::FlatTs);
            assert_eq!(g.len(), total_ts_tasks(m, n));
        }
    }

    #[test]
    fn paper_table1_sums_match_exact() {
        for (m, n) in [(1, 1), (2, 2), (4, 7), (10, 10), (100, 50)] {
            assert!(table1_consistent(m, n), "inconsistent at {m}x{n}");
        }
    }

    #[test]
    fn table1_values() {
        assert_eq!(paper_table1(5, 4), (5, 5, 15, 15));
        assert_eq!(paper_table1(1, 1), (1, 1, 0, 0));
    }

    #[test]
    fn class_totals_sum_to_len() {
        let g = TaskGraph::build(6, 4, EliminationOrder::FlatTs);
        let (t, e, ut, ue) = class_totals(&g);
        assert_eq!(t + e + ut + ue, g.len());
        assert_eq!(t, 4, "one GEQRT per panel");
    }

    #[test]
    fn tree_counts_match_dag_per_kind() {
        let mut trees = EliminationTree::zoo();
        trees.push(EliminationTree::Tsqr(2));
        for tree in trees {
            for (mt, nt) in [(1, 1), (6, 1), (6, 2), (5, 4), (3, 6), (8, 8)] {
                let g = TaskGraph::build_tree(mt, nt, tree);
                let c = tree_counts(mt, nt, tree);
                let count = |f: fn(&TaskKind) -> bool| g.tasks().iter().filter(|t| f(t)).count();
                assert_eq!(count(|t| matches!(t, TaskKind::Geqrt { .. })), c.geqrt);
                assert_eq!(count(|t| matches!(t, TaskKind::Unmqr { .. })), c.unmqr);
                assert_eq!(count(|t| matches!(t, TaskKind::Tsqrt { .. })), c.tsqrt);
                assert_eq!(count(|t| matches!(t, TaskKind::Ttqrt { .. })), c.ttqrt);
                assert_eq!(count(|t| matches!(t, TaskKind::Tsmqr { .. })), c.tsmqr);
                assert_eq!(count(|t| matches!(t, TaskKind::Ttmqr { .. })), c.ttmqr);
                assert_eq!(c.total(), g.len(), "{tree} {mt}x{nt}");
                assert_eq!(c.class_totals(), class_totals(&g));
            }
        }
    }

    #[test]
    fn flat_tree_counts_reduce_to_paper_forms() {
        for (mt, nt) in [(3, 3), (5, 2), (2, 5), (8, 8)] {
            let c = tree_counts(mt, nt, EliminationTree::Flat);
            assert_eq!(c.total(), total_ts_tasks(mt, nt));
            assert_eq!(c.ttqrt, 0);
            assert_eq!(c.ttmqr, 0);
            assert_eq!(c.geqrt, mt.min(nt), "one GEQRT per panel");
        }
    }
}
