//! Pluggable task-cost models for scheduling priorities.
//!
//! Bottom-level priorities ([`crate::bottom_levels`]) are only as good as
//! the per-task weights they sum. The flop model is a safe default but
//! ignores launch overhead and memory traffic, which is exactly why
//! critical-path priority can lose to FIFO on a real host. A [`CostModel`]
//! makes the weight source explicit: either the flop counts, or a
//! *calibrated* set of per-class timing curves ([`ClassCosts`]) fitted
//! from measured kernel spans (`obs::calibrate` produces them from a
//! `DeviceProfile`).
//!
//! The types here are pure `Copy` data with no simulator dependency, so
//! every layer — `PoolConfig`, `ServiceConfig`, `QrOptions` — can carry a
//! model without growing its dependency graph. Curves follow the paper's
//! Fig. 4 form `t(b) = c0 + c1·b² + c2·b³` microseconds.

use crate::task::{StepClass, TaskKind};

/// One timing curve `t(b) = c0 + c1·b² + c2·b³` (microseconds), the
/// dependency-free mirror of the simulator's `KernelTiming`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostCurve {
    /// Launch/setup overhead, microseconds.
    pub c0: f64,
    /// Memory-traffic coefficient, microseconds per `b²`.
    pub c1: f64,
    /// Arithmetic coefficient, microseconds per `b³`.
    pub c2: f64,
}

impl CostCurve {
    /// Predicted latency at tile size `b`, microseconds.
    pub fn eval_us(&self, b: usize) -> f64 {
        let b = b as f64;
        self.c0 + self.c1 * b * b + self.c2 * b * b * b
    }

    /// The curve scaled by a uniform factor (used by drift re-weighting:
    /// an observed slowdown multiplies the whole curve).
    pub fn scaled(&self, factor: f64) -> CostCurve {
        CostCurve {
            c0: self.c0 * factor,
            c1: self.c1 * factor,
            c2: self.c2 * factor,
        }
    }
}

/// Calibrated per-class cost curves: one per timing class of the paper's
/// Fig. 4 (triangulation, elimination, and a shared update curve — UT
/// and UE plot as one line there, and the simulator models them the same
/// way).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassCosts {
    /// `GEQRT` curve.
    pub triangulation: CostCurve,
    /// `TSQRT` / `TTQRT` curve.
    pub elimination: CostCurve,
    /// `UNMQR` / `TSMQR` / `TTMQR` curve (shared).
    pub update: CostCurve,
}

/// Index of a [`StepClass`] into the three-curve table: 0 triangulation,
/// 1 elimination, 2 update (UT and UE share slot 2).
pub fn class_slot(class: StepClass) -> usize {
    match class {
        StepClass::Triangulation => 0,
        StepClass::Elimination => 1,
        StepClass::UpdateTriangulation | StepClass::UpdateElimination => 2,
    }
}

impl ClassCosts {
    /// The curve a [`StepClass`] bills to.
    pub fn curve(&self, class: StepClass) -> CostCurve {
        match class_slot(class) {
            0 => self.triangulation,
            1 => self.elimination,
            _ => self.update,
        }
    }

    /// Predicted cost of one task at tile size `b`, microseconds.
    pub fn cost_us(&self, kind: TaskKind, b: usize) -> f64 {
        self.curve(kind.class()).eval_us(b)
    }

    /// Expected per-task latency of each class slot at tile size `b`
    /// (`[triangulation, elimination, update]` µs) — the drift detector's
    /// baseline.
    pub fn expected_us(&self, b: usize) -> [f64; 3] {
        [
            self.triangulation.eval_us(b),
            self.elimination.eval_us(b),
            self.update.eval_us(b),
        ]
    }

    /// Costs with each class curve scaled by its slot's factor (drift
    /// re-weighting applies the observed per-class slowdown ratios).
    pub fn scaled(&self, factors: [f64; 3]) -> ClassCosts {
        ClassCosts {
            triangulation: self.triangulation.scaled(factors[0]),
            elimination: self.elimination.scaled(factors[1]),
            update: self.update.scaled(factors[2]),
        }
    }
}

/// Where bottom-level task weights come from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CostModel {
    /// Kernel flop counts (the seed behaviour): cheap, portable, blind to
    /// launch overhead and memory traffic.
    #[default]
    Flops,
    /// Measured microseconds from calibrated per-class curves; makes
    /// `SchedulePolicy::CriticalPath` rank by predicted wall time.
    Calibrated(ClassCosts),
}

impl CostModel {
    /// Stable lowercase name for logs and bench artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            CostModel::Flops => "flops",
            CostModel::Calibrated(_) => "calibrated",
        }
    }

    /// The calibrated curves, when present.
    pub fn class_costs(&self) -> Option<ClassCosts> {
        match self {
            CostModel::Flops => None,
            CostModel::Calibrated(c) => Some(*c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> ClassCosts {
        ClassCosts {
            triangulation: CostCurve {
                c0: 2.0,
                c1: 0.0,
                c2: 0.004,
            },
            elimination: CostCurve {
                c0: 2.0,
                c1: 0.0,
                c2: 0.004,
            },
            update: CostCurve {
                c0: 2.0,
                c1: 0.0,
                c2: 0.006,
            },
        }
    }

    #[test]
    fn curve_matches_fig4_form() {
        let c = CostCurve {
            c0: 20.0,
            c1: 0.02,
            c2: 0.019,
        };
        let b = 16.0;
        assert!((c.eval_us(16) - (20.0 + 0.02 * b * b + 0.019 * b * b * b)).abs() < 1e-12);
        let s = c.scaled(3.0);
        assert!((s.eval_us(16) - 3.0 * c.eval_us(16)).abs() < 1e-9);
    }

    #[test]
    fn update_classes_share_one_curve() {
        let c = costs();
        let ut = TaskKind::Unmqr { i: 0, j: 1, k: 0 };
        let ue = TaskKind::Tsmqr {
            p: 0,
            i: 1,
            j: 1,
            k: 0,
        };
        assert_eq!(c.cost_us(ut, 16), c.cost_us(ue, 16));
        assert_eq!(class_slot(StepClass::UpdateTriangulation), 2);
        assert_eq!(class_slot(StepClass::UpdateElimination), 2);
        assert_eq!(class_slot(StepClass::Triangulation), 0);
        assert_eq!(class_slot(StepClass::Elimination), 1);
    }

    #[test]
    fn scaled_applies_per_slot() {
        let c = costs().scaled([2.0, 3.0, 4.0]);
        assert!((c.triangulation.eval_us(8) - 2.0 * costs().triangulation.eval_us(8)).abs() < 1e-9);
        assert!((c.elimination.eval_us(8) - 3.0 * costs().elimination.eval_us(8)).abs() < 1e-9);
        assert!((c.update.eval_us(8) - 4.0 * costs().update.eval_us(8)).abs() < 1e-9);
    }

    #[test]
    fn model_names_and_extraction() {
        assert_eq!(CostModel::Flops.name(), "flops");
        assert_eq!(CostModel::default(), CostModel::Flops);
        let m = CostModel::Calibrated(costs());
        assert_eq!(m.name(), "calibrated");
        assert_eq!(m.class_costs(), Some(costs()));
        assert_eq!(CostModel::Flops.class_costs(), None);
    }
}
