//! Weighted critical-path analysis.

use crate::{TaskGraph, TaskId, TaskKind};

/// Length of the longest path through the DAG where each task's duration
/// comes from `weight`. With `|_| 1.0` this is the unit-depth of the graph;
/// with a device timing model it lower-bounds any schedule's makespan.
pub fn critical_path_length(g: &TaskGraph, weight: impl Fn(TaskKind) -> f64) -> f64 {
    finish_times(g, weight).into_iter().fold(0.0, f64::max)
}

/// Earliest-finish time of every task under infinite parallelism.
pub fn finish_times(g: &TaskGraph, weight: impl Fn(TaskKind) -> f64) -> Vec<f64> {
    // Program order is topological for our builders, but recompute a safe
    // order so hand-built graphs also work.
    let order = crate::topo::topological_order(g);
    let mut finish = vec![0.0f64; g.len()];
    for &id in &order {
        let start = g
            .preds(id)
            .iter()
            .map(|&p| finish[p])
            .fold(0.0f64, f64::max);
        finish[id] = start + weight(g.task(id));
    }
    finish
}

/// Bottom level of every task: the weighted length of the longest path
/// from the task (inclusive) to any sink. This is the classic static
/// list-scheduling priority — dispatching the highest bottom level first
/// keeps the DAG's critical path moving and is exactly the
/// "triangulation before updates" preference of the paper's Alg. 2,
/// derived from weights instead of hard-coded kernel classes.
pub fn bottom_levels(g: &TaskGraph, weight: impl Fn(TaskKind) -> f64) -> Vec<f64> {
    let order = crate::topo::topological_order(g);
    let mut level = vec![0.0f64; g.len()];
    for &id in order.iter().rev() {
        let tail = g.succs(id).iter().map(|&s| level[s]).fold(0.0f64, f64::max);
        level[id] = tail + weight(g.task(id));
    }
    level
}

/// The tasks on (one) critical path, from source to sink.
pub fn critical_path(g: &TaskGraph, weight: impl Fn(TaskKind) -> f64) -> Vec<TaskId> {
    let finish = finish_times(g, &weight);
    let mut cur = (0..g.len())
        .max_by(|&a, &b| finish[a].total_cmp(&finish[b]))
        .expect("non-empty graph");
    let mut path = vec![cur];
    while !g.preds(cur).is_empty() {
        cur = *g
            .preds(cur)
            .iter()
            .max_by(|&&a, &&b| finish[a].total_cmp(&finish[b]))
            .expect("non-empty preds");
        path.push(cur);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EliminationOrder, StepClass};

    #[test]
    fn unit_depth_of_single_task() {
        let g = TaskGraph::build(1, 1, EliminationOrder::FlatTs);
        assert_eq!(critical_path_length(&g, |_| 1.0), 1.0);
    }

    #[test]
    fn unit_depth_grows_with_grid() {
        let d3 = critical_path_length(&TaskGraph::build(3, 3, EliminationOrder::FlatTs), |_| 1.0);
        let d6 = critical_path_length(&TaskGraph::build(6, 6, EliminationOrder::FlatTs), |_| 1.0);
        assert!(d6 > d3);
    }

    #[test]
    fn path_is_connected_and_maximal() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let path = critical_path(&g, |_| 1.0);
        assert_eq!(path.len() as f64, critical_path_length(&g, |_| 1.0));
        for w in path.windows(2) {
            assert!(g.preds(w[1]).contains(&w[0]));
        }
        assert!(g.preds(path[0]).is_empty());
    }

    #[test]
    fn weights_shift_the_path_through_expensive_tasks() {
        // Make eliminations enormously expensive: the critical path must be
        // dominated by E tasks.
        let g = TaskGraph::build(5, 5, EliminationOrder::FlatTs);
        let w = |t: TaskKind| match t.class() {
            StepClass::Elimination => 100.0,
            _ => 1.0,
        };
        let path = critical_path(&g, w);
        let e_count = path
            .iter()
            .filter(|&&id| g.task(id).class() == StepClass::Elimination)
            .count();
        assert!(
            e_count >= 4,
            "critical path should traverse the E chain, found {e_count} E tasks"
        );
    }

    #[test]
    fn bottom_levels_match_critical_path_length() {
        // max over sources of bottom level == critical path length, and
        // every edge must be monotone: pred level > succ level.
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let w = |t: TaskKind| match t.class() {
            StepClass::Triangulation => 3.0,
            StepClass::Elimination => 5.0,
            _ => 1.0,
        };
        let levels = bottom_levels(&g, w);
        let cpl = critical_path_length(&g, w);
        let max_level = levels.iter().copied().fold(0.0f64, f64::max);
        assert!((max_level - cpl).abs() < 1e-9, "{max_level} vs {cpl}");
        for id in 0..g.len() {
            for &s in g.succs(id) {
                assert!(
                    levels[id] > levels[s],
                    "bottom level must strictly decrease along edges"
                );
            }
        }
    }

    #[test]
    fn bottom_level_prefers_panel_factorization() {
        // The GEQRT unlocking a whole trailing submatrix must outrank the
        // bulk updates of the previous panel — the heart of critical-path
        // dispatch.
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let levels = bottom_levels(&g, |_| 1.0);
        let mut geqrt_level = None;
        let mut update_level = None;
        for (id, &level) in levels.iter().enumerate() {
            match g.task(id) {
                TaskKind::Geqrt { i: 1, k: 1 } => geqrt_level = Some(level),
                TaskKind::Tsmqr {
                    p: 0,
                    i: 5,
                    j: 5,
                    k: 0,
                } => update_level = Some(level),
                _ => {}
            }
        }
        let (gl, ul) = (geqrt_level.unwrap(), update_level.unwrap());
        assert!(
            gl > ul,
            "GEQRT(1,1) level {gl} must exceed trailing update {ul}"
        );
    }

    #[test]
    fn binary_tree_shortens_weighted_path() {
        let w = |_| 1.0;
        let flat = critical_path_length(&TaskGraph::build(32, 2, EliminationOrder::FlatTs), w);
        let tree = critical_path_length(&TaskGraph::build(32, 2, EliminationOrder::BinaryTt), w);
        assert!(tree < flat, "tree {tree} !< flat {flat}");
    }
}
