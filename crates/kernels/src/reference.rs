//! Reference (unblocked) Householder QR — the paper's Algorithm 1.
//!
//! This is the textbook column-by-column Householder factorization used as
//! ground truth for the tiled kernels, and as the single-device baseline
//! the GPU implementation in the paper is built from (§V).

use crate::householder::larfg;
use tileqr_matrix::{ops, Matrix, MatrixError, Result, Scalar};

/// Unblocked Householder QR factorization (LAPACK `geqrf` with nb = 1).
///
/// Factors `a` (`m x n`, `m >= n`) in place: `R` in the upper triangle,
/// Householder vectors below the diagonal. Returns the `n` reflector
/// scales `τ`.
pub fn geqrf<T: Scalar>(a: &mut Matrix<T>) -> Result<Vec<T>> {
    let (m, n) = a.dims();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrf (needs m >= n)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    let mut taus = Vec::with_capacity(n);
    for k in 0..n {
        let tau = {
            let ck = a.col_mut(k);
            let alpha = ck[k];
            let (head, tail) = ck.split_at_mut(k + 1);
            let h = larfg(alpha, tail);
            head[k] = h.beta;
            h.tau
        };
        if tau != T::ZERO {
            for j in k + 1..n {
                let (ck, cj) = a.two_cols_mut(k, j);
                let mut w = cj[k] + ops::dot(&ck[k + 1..], &cj[k + 1..]);
                w *= tau;
                cj[k] -= w;
                ops::axpy(-w, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }
        taus.push(tau);
    }
    Ok(taus)
}

/// Form the full `m x m` orthogonal factor `Q = H₀ H₁ ⋯ Hₙ₋₁` from a
/// [`geqrf`] factorization.
pub fn form_q<T: Scalar>(a: &Matrix<T>, taus: &[T]) -> Result<Matrix<T>> {
    let (m, n) = a.dims();
    if taus.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "form_q (tau count)",
            lhs: (m, n),
            rhs: (taus.len(), 1),
        });
    }
    let mut q = Matrix::identity(m);
    // Q = H_0 (H_1 (... H_{n-1} I)): apply reflectors back to front.
    for k in (0..n).rev() {
        apply_reflector_left(a, k, taus[k], &mut q);
    }
    Ok(q)
}

/// Apply `Qᵀ` from a [`geqrf`] factorization to `c` in place
/// (`c ← Qᵀ c = Hₙ₋₁ ⋯ H₀ c`).
pub fn apply_qt<T: Scalar>(a: &Matrix<T>, taus: &[T], c: &mut Matrix<T>) -> Result<()> {
    let (m, n) = a.dims();
    if taus.len() != n || c.rows() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "apply_qt (shapes)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }
    for (k, &tau) in taus.iter().enumerate() {
        apply_reflector_left(a, k, tau, c);
    }
    Ok(())
}

/// `c ← H_k c` for the reflector stored in column `k` of `a`
/// (H is symmetric so this serves both Q and Qᵀ sweeps).
fn apply_reflector_left<T: Scalar>(a: &Matrix<T>, k: usize, tau: T, c: &mut Matrix<T>) {
    if tau == T::ZERO {
        return;
    }
    let vk = a.col(k);
    for j in 0..c.cols() {
        let cj = c.col_mut(j);
        let mut w = cj[k] + ops::dot(&vk[k + 1..], &cj[k + 1..]);
        w *= tau;
        cj[k] -= w;
        ops::axpy(-w, &vk[k + 1..], &mut cj[k + 1..]);
    }
}

/// Convenience full QR: returns `(Q, R)` with `Q` `m x m` orthogonal and
/// `R` `m x n` upper trapezoidal such that `A = Q R`.
pub fn householder_qr<T: Scalar>(a: &Matrix<T>) -> Result<(Matrix<T>, Matrix<T>)> {
    let mut work = a.clone();
    let taus = geqrf(&mut work)?;
    let q = form_q(&work, &taus)?;
    let (m, n) = a.dims();
    let mut r = Matrix::zeros(m, n);
    for j in 0..n {
        for i in 0..=j.min(m - 1) {
            r[(i, j)] = work[(i, j)];
        }
    }
    Ok((q, r))
}

/// Solve the square system `A x = b` (or the least-squares problem when `A`
/// is tall) via Householder QR: `x = R⁻¹ Qᵀ b` (paper Eqs. 2–3).
pub fn qr_solve<T: Scalar>(a: &Matrix<T>, b: &[T]) -> Result<Vec<T>> {
    let (m, n) = a.dims();
    if b.len() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "qr_solve (rhs length)",
            lhs: (m, n),
            rhs: (b.len(), 1),
        });
    }
    let mut work = a.clone();
    let taus = geqrf(&mut work)?;
    let mut c = Matrix::from_col_major(m, 1, b.to_vec())?;
    apply_qt(&work, &taus, &mut c)?;
    // Back-substitute against the leading n x n block of R.
    let r = work.submatrix(0, 0, n, n)?.upper_triangular();
    solve_r(&r, &c.as_slice()[..n])
}

fn solve_r<T: Scalar>(r: &Matrix<T>, rhs: &[T]) -> Result<Vec<T>> {
    ops::solve_upper_triangular(r, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::{diagonally_dominant, random_matrix, random_vector};
    use tileqr_matrix::ops::{matmul, matvec, orthogonality_defect, relative_residual};

    #[test]
    fn square_qr_reconstructs() {
        let a = random_matrix::<f64>(10, 10, 1);
        let (q, r) = householder_qr(&a).unwrap();
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-14);
        assert!(orthogonality_defect(&q).unwrap() < 1e-14);
    }

    #[test]
    fn tall_qr_reconstructs() {
        let a = random_matrix::<f64>(12, 5, 2);
        let (q, r) = householder_qr(&a).unwrap();
        assert_eq!(q.dims(), (12, 12));
        assert_eq!(r.dims(), (12, 5));
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular_with_nonneg_signs_consistent() {
        let a = random_matrix::<f64>(6, 6, 3);
        let (_, r) = householder_qr(&a).unwrap();
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn apply_qt_zeroes_below_diagonal() {
        let a = random_matrix::<f64>(7, 7, 4);
        let mut work = a.clone();
        let taus = geqrf(&mut work).unwrap();
        let mut c = a.clone();
        apply_qt(&work, &taus, &mut c).unwrap();
        for j in 0..7 {
            for i in j + 1..7 {
                assert!(c[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_square_system() {
        let a = diagonally_dominant::<f64>(9, 5);
        let x_true = random_vector::<f64>(9, 6);
        let b = matvec(&a, &x_true).unwrap();
        let x = qr_solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal() {
        // For tall A, x minimizes ||Ax - b||; residual must be orthogonal to
        // the column space: A^T (Ax - b) = 0.
        let a = random_matrix::<f64>(10, 4, 7);
        let b = random_vector::<f64>(10, 8);
        let x = qr_solve(&a, &b).unwrap();
        let ax = matvec(&a, &x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let at_r = matvec(&a.transpose(), &resid).unwrap();
        for v in at_r {
            assert!(v.abs() < 1e-10, "normal equations violated: {v}");
        }
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let a = random_matrix::<f64>(4, 4, 9);
        assert!(qr_solve(&a, &[1.0; 3]).is_err());
    }

    #[test]
    fn geqrf_rejects_wide() {
        let mut a = Matrix::<f64>::zeros(2, 5);
        assert!(geqrf(&mut a).is_err());
    }

    #[test]
    fn form_q_checks_tau_count() {
        let mut a = random_matrix::<f64>(4, 4, 10);
        let taus = geqrf(&mut a).unwrap();
        assert!(form_q(&a, &taus[..2]).is_err());
    }

    #[test]
    fn singular_matrix_solve_fails_cleanly() {
        let a = Matrix::<f64>::zeros(3, 3);
        let res = qr_solve(&a, &[1.0, 2.0, 3.0]);
        assert!(res.is_err());
    }

    #[test]
    fn f32_precision_works() {
        let a = random_matrix::<f32>(8, 8, 11);
        let (q, r) = householder_qr(&a).unwrap();
        assert!(relative_residual(&a, &q, &r).unwrap() < 1e-5);
        assert!(orthogonality_defect(&q).unwrap() < 1e-5);
    }
}
