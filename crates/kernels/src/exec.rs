//! Task-level execution of a tiled QR factorization.
//!
//! [`FactorState`] owns the tiled matrix plus the accumulated reflector
//! factors and knows how to run one DAG task at a time. Execution is split
//! into three phases so a parallel runtime can hold the state lock only
//! briefly:
//!
//! 1. [`FactorState::stage`] — under the lock: move the written tiles out
//!    of the state, clone the (shared) read tiles,
//! 2. [`StagedTask::compute`] — no lock: run the kernel on owned data,
//! 3. [`FactorState::commit`] — under the lock: put results back.
//!
//! [`FactorState::execute`] chains the three for sequential use. After all
//! tasks of a [`TaskGraph`] have executed, the state holds `R` in the
//! upper triangles and the implicit `Q` in the Householder blocks;
//! [`apply_qt_dense`] / [`apply_q_dense`] replay the factor kernels over a
//! dense right-hand side in canonical program order, which is what makes
//! `Q` reconstruction independent of the (nondeterministic) parallel
//! schedule.

use crate::{geqrt, geqrt_apply, tsmqr_apply, tsqrt, ttmqr_apply, ttqrt, ApplySide};
use std::collections::HashMap;
use tileqr_dag::{TaskGraph, TaskKind};
use tileqr_matrix::{Matrix, MatrixError, Result, Scalar, TiledMatrix};

/// Mutable factorization state: the tiled matrix plus reflector factors.
#[derive(Debug, Clone)]
pub struct FactorState<T: Scalar> {
    tiles: TiledMatrix<T>,
    /// `T` factors of `GEQRT`, keyed by the factored tile `(i, k)`.
    geqrt_t: HashMap<(usize, usize), Matrix<T>>,
    /// `T` factors of `TSQRT`/`TTQRT`, keyed by `(p, i, k)`.
    elim_t: HashMap<(usize, usize, usize), Matrix<T>>,
}

/// A task whose inputs have been extracted and which is ready to compute
/// without touching the shared state.
pub struct StagedTask<T: Scalar> {
    task: TaskKind,
    inputs: Inputs<T>,
}

enum Inputs<T: Scalar> {
    /// GEQRT: the tile to factor (taken).
    Factor { tile: Matrix<T> },
    /// UNMQR: cloned factored tile + its T factor, plus the target (taken).
    Update {
        vr: Matrix<T>,
        tfac: Matrix<T>,
        c: Matrix<T>,
    },
    /// TSQRT/TTQRT: pivot and eliminated tiles (both taken).
    Elim { r1: Matrix<T>, a2: Matrix<T> },
    /// TSMQR/TTMQR: cloned V2 + T factor, plus both targets (taken).
    PairUpdate {
        v2: Matrix<T>,
        tfac: Matrix<T>,
        a1: Matrix<T>,
        a2: Matrix<T>,
    },
}

/// A finished task, ready to be committed back into the state.
pub struct CompletedTask<T: Scalar> {
    task: TaskKind,
    outputs: Outputs<T>,
}

enum Outputs<T: Scalar> {
    Factor { tile: Matrix<T>, tfac: Matrix<T> },
    Update { c: Matrix<T> },
    Elim {
        r1: Matrix<T>,
        a2: Matrix<T>,
        tfac: Matrix<T>,
    },
    PairUpdate { a1: Matrix<T>, a2: Matrix<T> },
}

impl<T: Scalar> FactorState<T> {
    /// Wrap a tiled matrix for factorization.
    pub fn new(tiles: TiledMatrix<T>) -> Self {
        FactorState {
            tiles,
            geqrt_t: HashMap::new(),
            elim_t: HashMap::new(),
        }
    }

    /// The (partially) factored tiles.
    pub fn tiles(&self) -> &TiledMatrix<T> {
        &self.tiles
    }

    /// Consume the state, returning the tiled matrix.
    pub fn into_tiles(self) -> TiledMatrix<T> {
        self.tiles
    }

    /// `T` factor of `GEQRT` on tile `(i, k)`, if computed.
    pub fn geqrt_factor(&self, i: usize, k: usize) -> Option<&Matrix<T>> {
        self.geqrt_t.get(&(i, k))
    }

    /// `T` factor of the elimination `(p, i, k)`, if computed.
    pub fn elim_factor(&self, p: usize, i: usize, k: usize) -> Option<&Matrix<T>> {
        self.elim_t.get(&(p, i, k))
    }

    fn take_tile(&mut self, i: usize, j: usize) -> Matrix<T> {
        let placeholder = Matrix::zeros(self.tiles.tile_size(), self.tiles.tile_size());
        std::mem::replace(self.tiles.tile_mut(i, j), placeholder)
    }

    /// Phase 1: extract this task's inputs (take written tiles, clone read
    /// tiles). Fails if a required reflector factor is missing — i.e. the
    /// caller violated the DAG order.
    pub fn stage(&mut self, task: TaskKind) -> Result<StagedTask<T>> {
        let missing = |_| MatrixError::DimensionMismatch {
            op: "stage: dependency factor missing (DAG order violated)",
            lhs: (0, 0),
            rhs: (0, 0),
        };
        let inputs = match task {
            TaskKind::Geqrt { i, k } => Inputs::Factor {
                tile: self.take_tile(i, k),
            },
            TaskKind::Unmqr { i, j, k } => {
                let tfac = self.geqrt_t.get(&(i, k)).ok_or(()).map_err(missing)?.clone();
                Inputs::Update {
                    vr: self.tiles.tile(i, k).clone(),
                    tfac,
                    c: self.take_tile(i, j),
                }
            }
            TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => Inputs::Elim {
                r1: self.take_tile(p, k),
                a2: self.take_tile(i, k),
            },
            TaskKind::Tsmqr { p, i, j, k } | TaskKind::Ttmqr { p, i, j, k } => {
                let tfac = self
                    .elim_t
                    .get(&(p, i, k))
                    .ok_or(())
                    .map_err(missing)?
                    .clone();
                Inputs::PairUpdate {
                    v2: self.tiles.tile(i, k).clone(),
                    tfac,
                    a1: self.take_tile(p, j),
                    a2: self.take_tile(i, j),
                }
            }
        };
        Ok(StagedTask { task, inputs })
    }

    /// Phase 3: write a completed task's outputs back.
    pub fn commit(&mut self, done: CompletedTask<T>) {
        match (done.task, done.outputs) {
            (TaskKind::Geqrt { i, k }, Outputs::Factor { tile, tfac }) => {
                self.tiles.set_tile(i, k, tile);
                self.geqrt_t.insert((i, k), tfac);
            }
            (TaskKind::Unmqr { i, j, .. }, Outputs::Update { c }) => {
                self.tiles.set_tile(i, j, c);
            }
            (
                TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k },
                Outputs::Elim { r1, a2, tfac },
            ) => {
                self.tiles.set_tile(p, k, r1);
                self.tiles.set_tile(i, k, a2);
                self.elim_t.insert((p, i, k), tfac);
            }
            (
                TaskKind::Tsmqr { p, i, j, .. } | TaskKind::Ttmqr { p, i, j, .. },
                Outputs::PairUpdate { a1, a2 },
            ) => {
                self.tiles.set_tile(p, j, a1);
                self.tiles.set_tile(i, j, a2);
            }
            _ => unreachable!("task/output kind mismatch"),
        }
    }

    /// Run one task start to finish (sequential convenience).
    pub fn execute(&mut self, task: TaskKind) -> Result<()> {
        let staged = self.stage(task)?;
        let done = staged.compute()?;
        self.commit(done);
        Ok(())
    }

    /// Run every task of `graph` in program order (which is topological
    /// for the built-in builders) — the sequential tiled QR driver.
    pub fn run_all(&mut self, graph: &TaskGraph) -> Result<()> {
        for &task in graph.tasks() {
            self.execute(task)?;
        }
        Ok(())
    }

    /// Assembled `R` factor: the upper-triangular result, dense, with the
    /// original (unpadded) dimensions.
    pub fn r_matrix(&self) -> Matrix<T> {
        let full = self.tiles.to_matrix();
        let (m, n) = full.dims();
        Matrix::from_fn(m, n, |i, j| if i <= j { full[(i, j)] } else { T::ZERO })
    }
}

impl<T: Scalar> StagedTask<T> {
    /// Phase 2: the actual kernel, on owned data — safe to run outside any
    /// lock.
    pub fn compute(self) -> Result<CompletedTask<T>> {
        let outputs = match (self.task, self.inputs) {
            (TaskKind::Geqrt { .. }, Inputs::Factor { mut tile }) => {
                let tfac = geqrt(&mut tile)?;
                Outputs::Factor { tile, tfac }
            }
            (TaskKind::Unmqr { .. }, Inputs::Update { vr, tfac, mut c }) => {
                geqrt_apply(&vr, &tfac, &mut c, ApplySide::Transpose)?;
                Outputs::Update { c }
            }
            (TaskKind::Tsqrt { .. }, Inputs::Elim { mut r1, mut a2 }) => {
                let tfac = tsqrt(&mut r1, &mut a2)?;
                Outputs::Elim { r1, a2, tfac }
            }
            (TaskKind::Ttqrt { .. }, Inputs::Elim { mut r1, mut a2 }) => {
                let tfac = ttqrt(&mut r1, &mut a2)?;
                Outputs::Elim { r1, a2, tfac }
            }
            (
                TaskKind::Tsmqr { .. },
                Inputs::PairUpdate {
                    v2,
                    tfac,
                    mut a1,
                    mut a2,
                },
            ) => {
                tsmqr_apply(&v2, &tfac, &mut a1, &mut a2, ApplySide::Transpose)?;
                Outputs::PairUpdate { a1, a2 }
            }
            (
                TaskKind::Ttmqr { .. },
                Inputs::PairUpdate {
                    v2,
                    tfac,
                    mut a1,
                    mut a2,
                },
            ) => {
                ttmqr_apply(&v2, &tfac, &mut a1, &mut a2, ApplySide::Transpose)?;
                Outputs::PairUpdate { a1, a2 }
            }
            _ => unreachable!("task/input kind mismatch"),
        };
        Ok(CompletedTask {
            task: self.task,
            outputs,
        })
    }

    /// The task this staging belongs to.
    pub fn task(&self) -> TaskKind {
        self.task
    }
}

/// Extract row-block `i` (a `b x cols` matrix) of a dense `c`.
fn row_block<T: Scalar>(c: &Matrix<T>, i: usize, b: usize) -> Matrix<T> {
    c.submatrix(i * b, 0, b, c.cols()).expect("row block in range")
}

fn set_row_block<T: Scalar>(c: &mut Matrix<T>, i: usize, block: &Matrix<T>) {
    let b = block.rows();
    c.set_submatrix(i * b, 0, block).expect("row block in range");
}

/// Apply `Qᵀ` of a completed factorization to a dense `c` whose row count
/// equals the *padded* row dimension of the factored matrix.
///
/// Replays the factor kernels in the canonical program order of `graph`.
pub fn apply_qt_dense<T: Scalar>(
    state: &FactorState<T>,
    graph: &TaskGraph,
    c: &mut Matrix<T>,
) -> Result<()> {
    let b = state.tiles.tile_size();
    check_rows(state, c)?;
    for &task in graph.tasks() {
        apply_factor_task(state, task, c, b, ApplySide::Transpose)?;
    }
    Ok(())
}

/// Apply `Q` (not transposed) of a completed factorization to a dense `c`:
/// the factor kernels replay in *reverse* program order with untransposed
/// block reflectors.
pub fn apply_q_dense<T: Scalar>(
    state: &FactorState<T>,
    graph: &TaskGraph,
    c: &mut Matrix<T>,
) -> Result<()> {
    let b = state.tiles.tile_size();
    check_rows(state, c)?;
    for &task in graph.tasks().iter().rev() {
        apply_factor_task(state, task, c, b, ApplySide::NoTranspose)?;
    }
    Ok(())
}

fn check_rows<T: Scalar>(state: &FactorState<T>, c: &Matrix<T>) -> Result<()> {
    let (pm, _) = state.tiles.padded_dims();
    if c.rows() != pm {
        return Err(MatrixError::DimensionMismatch {
            op: "apply_q (C rows must equal padded rows)",
            lhs: (pm, 0),
            rhs: c.dims(),
        });
    }
    Ok(())
}

fn apply_factor_task<T: Scalar>(
    state: &FactorState<T>,
    task: TaskKind,
    c: &mut Matrix<T>,
    b: usize,
    side: ApplySide,
) -> Result<()> {
    match task {
        TaskKind::Geqrt { i, k } => {
            let vr = state.tiles.tile(i, k);
            let tfac = state.geqrt_factor(i, k).ok_or(MatrixError::DimensionMismatch {
                op: "apply: GEQRT factor missing",
                lhs: (i, k),
                rhs: (0, 0),
            })?;
            let mut block = row_block(c, i, b);
            geqrt_apply(vr, tfac, &mut block, side)?;
            set_row_block(c, i, &block);
        }
        TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => {
            let v2 = state.tiles.tile(i, k);
            let tfac = state
                .elim_factor(p, i, k)
                .ok_or(MatrixError::DimensionMismatch {
                    op: "apply: elimination factor missing",
                    lhs: (i, k),
                    rhs: (0, 0),
                })?;
            let mut a1 = row_block(c, p, b);
            let mut a2 = row_block(c, i, b);
            if matches!(task, TaskKind::Tsqrt { .. }) {
                tsmqr_apply(v2, tfac, &mut a1, &mut a2, side)?;
            } else {
                ttmqr_apply(v2, tfac, &mut a1, &mut a2, side)?;
            }
            set_row_block(c, p, &a1);
            set_row_block(c, i, &a2);
        }
        // Update kernels touch only the factored matrix, not C.
        TaskKind::Unmqr { .. } | TaskKind::Tsmqr { .. } | TaskKind::Ttmqr { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::{matmul, orthogonality_defect};

    fn factor(
        n: usize,
        b: usize,
        order: EliminationOrder,
    ) -> (Matrix<f64>, FactorState<f64>, TaskGraph) {
        let a = random_matrix::<f64>(n, n, 42);
        let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
        let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
        let mut st = FactorState::new(tiled);
        st.run_all(&g).unwrap();
        (a, st, g)
    }

    fn form_q(st: &FactorState<f64>, g: &TaskGraph) -> Matrix<f64> {
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(st, g, &mut q).unwrap();
        q
    }

    #[test]
    fn tiled_qr_reconstructs_exact_grid() {
        let (a, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let q = form_q(&st, &g);
        let r_full = {
            // R on the padded grid.
            let full = st.tiles().to_matrix();
            Matrix::from_fn(12, 12, |i, j| if i <= j { full[(i, j)] } else { 0.0 })
        };
        let qr = matmul(&q, &r_full).unwrap();
        assert!(qr.approx_eq(&a, 1e-11), "QR != A");
        assert!(orthogonality_defect(&q).unwrap() < 1e-12);
    }

    #[test]
    fn tiled_qr_reconstructs_padded_grid() {
        // 10x10 with tile 4 -> padded to 12x12 with unit-diagonal padding.
        let a = random_matrix::<f64>(10, 10, 7);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let mut st = FactorState::new(tiled);
        st.run_all(&g).unwrap();
        let q = form_q(&st, &g);
        let full = st.tiles().to_matrix(); // 10x10 view
        let r = Matrix::from_fn(10, 10, |i, j| if i <= j { full[(i, j)] } else { 0.0 });
        // Compare on the unpadded block: Q's top-left 10x12 times padded R.
        let padded_r = {
            let mut pr = Matrix::zeros(12, 12);
            for j in 0..12 {
                for i in 0..=j {
                    // reconstruct from tiles directly
                    let tile = st.tiles().tile(i / 4, j / 4);
                    pr[(i, j)] = tile[(i % 4, j % 4)];
                }
            }
            pr
        };
        let qr = matmul(&q, &padded_r).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-11, "({i},{j})");
            }
        }
        let _ = r;
    }

    #[test]
    fn tt_orders_also_factorize() {
        for order in [EliminationOrder::FlatTt, EliminationOrder::BinaryTt] {
            let (a, st, g) = factor(16, 4, order);
            let q = form_q(&st, &g);
            let r = st.r_matrix();
            let qr = matmul(&q, &r).unwrap();
            assert!(qr.approx_eq(&a, 1e-11), "{order:?} failed");
        }
    }

    #[test]
    fn r_matches_reference_up_to_signs() {
        let (a, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let _ = g;
        let r_tiled = st.r_matrix();
        let (_, r_ref) = crate::reference::householder_qr(&a).unwrap();
        for j in 0..12 {
            for i in 0..=j {
                assert!(
                    (r_tiled[(i, j)].abs() - r_ref[(i, j)].abs()).abs() < 1e-10,
                    "|R| mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn apply_qt_then_q_round_trips() {
        let (_, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let c0 = random_matrix::<f64>(12, 3, 5);
        let mut c = c0.clone();
        apply_qt_dense(&st, &g, &mut c).unwrap();
        apply_q_dense(&st, &g, &mut c).unwrap();
        assert!(c.approx_eq(&c0, 1e-11));
    }

    #[test]
    fn qt_a_gives_r() {
        let (a, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let mut c = a.clone();
        apply_qt_dense(&st, &g, &mut c).unwrap();
        let r = st.r_matrix();
        assert!(c.approx_eq(&r, 1e-11));
    }

    #[test]
    fn stage_rejects_missing_factor() {
        let a = random_matrix::<f64>(8, 8, 1);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let mut st = FactorState::new(tiled);
        // UNMQR before its GEQRT: must fail cleanly.
        assert!(st
            .stage(TaskKind::Unmqr { i: 0, j: 1, k: 0 })
            .is_err());
    }

    #[test]
    fn apply_rejects_wrong_row_count() {
        let (_, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let mut c = Matrix::<f64>::zeros(9, 2);
        assert!(apply_qt_dense(&st, &g, &mut c).is_err());
    }

    #[test]
    fn staged_compute_outside_state_matches_execute() {
        let a = random_matrix::<f64>(8, 8, 3);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);

        let mut st1 = FactorState::new(tiled.clone());
        st1.run_all(&g).unwrap();

        let mut st2 = FactorState::new(tiled);
        for &t in g.tasks() {
            let staged = st2.stage(t).unwrap();
            let done = staged.compute().unwrap();
            st2.commit(done);
        }
        assert_eq!(st1.tiles().to_matrix(), st2.tiles().to_matrix());
    }
}
