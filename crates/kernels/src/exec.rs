//! Task-level execution of a tiled QR factorization.
//!
//! [`FactorState`] owns the tiled matrix plus the accumulated reflector
//! factors and knows how to run one DAG task at a time. Execution is split
//! into three phases so a parallel runtime can keep critical sections to a
//! few pointer swaps:
//!
//! 1. [`FactorState::stage`] — move the written tiles out of the state
//!    (pointer swap against a shared zero placeholder) and hand read tiles
//!    / `T` factors to the task as `Arc` clones — **no `O(b²)` copies**,
//! 2. [`StagedTask::compute`] — no shared state: run the kernel on owned
//!    (written) and `Arc`-shared (read) data,
//! 3. [`FactorState::commit`] — put results back (pointer swaps again).
//!
//! `T` factors live in pre-sized dense `Vec`s indexed by tile coordinate
//! rather than hash maps: a `GEQRT` factor is keyed by its panel tile
//! `(i, k)`, and an elimination factor by its eliminated tile `(i, k)` —
//! row `i` is eliminated exactly once per panel `k` in every supported
//! elimination order, so `(i, k)` determines the pivot `p` uniquely and the
//! pivot is stored alongside the factor.
//!
//! [`SharedFactorState`] is the parallel counterpart: the same data behind
//! *per-slot* mutexes so independent tasks stage and commit concurrently —
//! there is no whole-state lock anywhere.
//!
//! [`FactorState::execute`] chains the three phases for sequential use.
//! After all tasks of a [`TaskGraph`] have executed, the state holds `R` in
//! the upper triangles and the implicit `Q` in the Householder blocks;
//! [`apply_qt_dense`] / [`apply_q_dense`] replay the factor kernels over a
//! dense right-hand side in canonical program order, which is what makes
//! `Q` reconstruction independent of the (nondeterministic) parallel
//! schedule.

use crate::workspace::Workspace;
use crate::{
    geqrt_apply, geqrt_apply_ws, geqrt_ib_apply, geqrt_ib_apply_ws, geqrt_ib_ws, geqrt_ws,
    tsmqr_apply, tsmqr_apply_ws, tsqrt_ws, ttmqr_apply, ttmqr_apply_ws, ttqrt_ws, ApplySide,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tileqr_dag::{TaskGraph, TaskKind};
use tileqr_matrix::{Matrix, MatrixError, Result, Scalar, TiledMatrix};

/// Take ownership of an `Arc`'s payload. The DAG's WAR/WAW edges guarantee
/// the handle is unique when a writer stages a tile (all readers have
/// committed and dropped their clones), so this is normally a move; the
/// clone fallback only fires if an external handle is still alive, and
/// every such full-tile copy is counted — it is the copy-on-write slow
/// path the runtime surfaces as `RunReport::cow_clones`.
fn unwrap_or_clone<T: Scalar>(a: Arc<Matrix<T>>, cow: &AtomicU64) -> Matrix<T> {
    Arc::try_unwrap(a).unwrap_or_else(|arc| {
        cow.fetch_add(1, Ordering::Relaxed);
        (*arc).clone()
    })
}

/// The reflector `T` factor(s) of one `GEQRT` panel tile: a single
/// full-tile factor (inner block = tile size, the default) or PLASMA-style
/// per-panel factors from [`geqrt_ib`](crate::geqrt_ib).
#[derive(Debug, Clone, PartialEq)]
pub enum PanelFactor<T: Scalar> {
    /// One `b x b` factor covering the whole tile.
    Full(Matrix<T>),
    /// Inner-blocked factorization: one factor per `ib`-column panel.
    Blocked {
        /// Inner block size the tile was factored with.
        ib: usize,
        /// Per-panel upper-triangular factors, leftmost panel first.
        tfacs: Vec<Matrix<T>>,
    },
}

impl<T: Scalar> PanelFactor<T> {
    /// Apply this factor's `Q`/`Qᵀ` to `c`, borrowing scratch from `ws`.
    fn apply_ws(
        &self,
        vr: &Matrix<T>,
        c: &mut Matrix<T>,
        side: ApplySide,
        ws: &mut Workspace<T>,
    ) -> Result<()> {
        match self {
            PanelFactor::Full(t) => geqrt_apply_ws(vr, t, c, side, ws),
            PanelFactor::Blocked { ib, tfacs } => geqrt_ib_apply_ws(vr, tfacs, *ib, c, side, ws),
        }
    }

    /// Allocating variant of [`apply_ws`](Self::apply_ws) for cold paths.
    fn apply(&self, vr: &Matrix<T>, c: &mut Matrix<T>, side: ApplySide) -> Result<()> {
        match self {
            PanelFactor::Full(t) => geqrt_apply(vr, t, c, side),
            PanelFactor::Blocked { ib, tfacs } => geqrt_ib_apply(vr, tfacs, *ib, c, side),
        }
    }
}

/// An elimination `T` factor together with the pivot row it merged into.
#[derive(Debug, Clone)]
struct ElimFactor<T: Scalar> {
    p: usize,
    tfac: Arc<Matrix<T>>,
}

/// Mutable factorization state: the tiled matrix plus reflector factors.
#[derive(Debug)]
pub struct FactorState<T: Scalar> {
    tiles: TiledMatrix<T>,
    nt: usize,
    /// Inner block size handed to `GEQRT` (`ib == b` means one full-tile
    /// `T` factor, the default).
    ib: usize,
    /// `T` factors of `GEQRT`, dense-indexed by the factored tile `i*nt+k`.
    geqrt_t: Vec<Option<Arc<PanelFactor<T>>>>,
    /// `T` factors of `TSQRT`/`TTQRT`, dense-indexed by the *eliminated*
    /// tile `i*nt+k` (which determines the pivot `p`, stored alongside).
    elim_t: Vec<Option<ElimFactor<T>>>,
    /// Shared all-zero placeholder swapped in when a tile is staged out.
    empty: Arc<Matrix<T>>,
    /// Copy-on-write fallback counter: full-tile clones taken because an
    /// `Arc` that should have been unique was still shared.
    cow: Arc<AtomicU64>,
    /// Scratch arena for the sequential execution path.
    ws: Workspace<T>,
}

impl<T: Scalar> Clone for FactorState<T> {
    fn clone(&self) -> Self {
        FactorState {
            tiles: self.tiles.clone(),
            nt: self.nt,
            ib: self.ib,
            geqrt_t: self.geqrt_t.clone(),
            elim_t: self.elim_t.clone(),
            empty: Arc::clone(&self.empty),
            // The clone gets its own counter (seeded with the current
            // value) so two states never alias their slow-path accounting.
            cow: Arc::new(AtomicU64::new(self.cow.load(Ordering::Relaxed))),
            ws: self.ws.clone(),
        }
    }
}

/// A task whose inputs have been extracted and which is ready to compute
/// without touching the shared state.
pub struct StagedTask<T: Scalar> {
    task: TaskKind,
    inputs: Inputs<T>,
}

enum Inputs<T: Scalar> {
    /// GEQRT: the tile to factor (taken) and the inner block size.
    Factor { tile: Matrix<T>, ib: usize },
    /// UNMQR: shared factored tile + its T factor, plus the target (taken).
    Update {
        vr: Arc<Matrix<T>>,
        tfac: Arc<PanelFactor<T>>,
        c: Matrix<T>,
    },
    /// TSQRT/TTQRT: pivot and eliminated tiles (both taken).
    Elim { r1: Matrix<T>, a2: Matrix<T> },
    /// TSMQR/TTMQR: shared V2 + T factor, plus both targets (taken).
    PairUpdate {
        v2: Arc<Matrix<T>>,
        tfac: Arc<Matrix<T>>,
        a1: Matrix<T>,
        a2: Matrix<T>,
    },
}

/// A finished task, ready to be committed back into the state.
pub struct CompletedTask<T: Scalar> {
    task: TaskKind,
    outputs: Outputs<T>,
}

enum Outputs<T: Scalar> {
    Factor {
        tile: Matrix<T>,
        tfac: PanelFactor<T>,
    },
    Update {
        c: Matrix<T>,
    },
    Elim {
        r1: Matrix<T>,
        a2: Matrix<T>,
        tfac: Matrix<T>,
    },
    PairUpdate {
        a1: Matrix<T>,
        a2: Matrix<T>,
    },
}

fn missing_factor_err() -> MatrixError {
    MatrixError::DimensionMismatch {
        op: "stage: dependency factor missing (DAG order violated)",
        lhs: (0, 0),
        rhs: (0, 0),
    }
}

impl<T: Scalar> FactorState<T> {
    /// Wrap a tiled matrix for factorization with the default inner block
    /// (`ib = b`: one full-tile `T` factor per panel, the seed behaviour).
    pub fn new(tiles: TiledMatrix<T>) -> Self {
        let b = tiles.tile_size();
        Self::with_inner_block(tiles, b)
    }

    /// Wrap a tiled matrix for factorization with inner block size `ib`
    /// (clamped to `[1, b]`). `GEQRT` tasks factor in `ib`-column panels
    /// and store [`PanelFactor::Blocked`] factors; `ib == b` is the
    /// full-tile default.
    pub fn with_inner_block(tiles: TiledMatrix<T>, ib: usize) -> Self {
        let (mt, nt) = (tiles.tile_rows(), tiles.tile_cols());
        let b = tiles.tile_size();
        let ib = ib.clamp(1, b.max(1));
        FactorState {
            tiles,
            nt,
            ib,
            geqrt_t: vec![None; mt * nt],
            elim_t: vec![None; mt * nt],
            empty: Arc::new(Matrix::zeros(b, b)),
            cow: Arc::new(AtomicU64::new(0)),
            ws: Workspace::new(b, ib),
        }
    }

    /// The (partially) factored tiles.
    pub fn tiles(&self) -> &TiledMatrix<T> {
        &self.tiles
    }

    /// Consume the state, returning the tiled matrix.
    pub fn into_tiles(self) -> TiledMatrix<T> {
        self.tiles
    }

    /// Inner block size `GEQRT` tasks factor with.
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    /// How many copy-on-write fallback clones [`unwrap_or_clone`] took.
    /// Single-owner execution (sequential, or the pool's move-based
    /// staging) keeps this at 0; every increment is a full `O(b²)` tile
    /// copy that should not have happened.
    pub fn cow_clones(&self) -> u64 {
        self.cow.load(Ordering::Relaxed)
    }

    /// Bytes held by the sequential-path scratch arena.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// Scratch-arena growths since construction (0 in steady state).
    pub fn workspace_resizes(&self) -> u64 {
        self.ws.resizes()
    }

    /// `T` factor of `GEQRT` on tile `(i, k)`, if computed with the
    /// default full-tile inner blocking. Inner-blocked factors are reached
    /// through [`geqrt_panel_factor`](Self::geqrt_panel_factor).
    pub fn geqrt_factor(&self, i: usize, k: usize) -> Option<&Matrix<T>> {
        match self.geqrt_t[i * self.nt + k].as_deref() {
            Some(PanelFactor::Full(t)) => Some(t),
            _ => None,
        }
    }

    /// The full panel factor (single or inner-blocked) of tile `(i, k)`.
    pub fn geqrt_panel_factor(&self, i: usize, k: usize) -> Option<&PanelFactor<T>> {
        self.geqrt_t[i * self.nt + k].as_deref()
    }

    /// `T` factor of the elimination `(p, i, k)`, if computed.
    pub fn elim_factor(&self, p: usize, i: usize, k: usize) -> Option<&Matrix<T>> {
        match &self.elim_t[i * self.nt + k] {
            Some(e) if e.p == p => Some(&e.tfac),
            _ => None,
        }
    }

    /// Elimination factor of eliminated tile `(i, k)` with its pivot row,
    /// whatever the pivot was (used by bit-identity sweeps that compare
    /// every stored factor).
    pub fn elim_factor_any(&self, i: usize, k: usize) -> Option<(usize, &Matrix<T>)> {
        self.elim_t[i * self.nt + k]
            .as_ref()
            .map(|e| (e.p, &*e.tfac))
    }

    /// Move tile `(i, j)` out for writing: a pointer swap against the shared
    /// zero placeholder, then (normally) a move out of the unique `Arc`.
    fn take_tile(&mut self, i: usize, j: usize) -> Matrix<T> {
        let arc = self.tiles.swap_tile_shared(i, j, Arc::clone(&self.empty));
        unwrap_or_clone(arc, &self.cow)
    }

    /// Phase 1: extract this task's inputs (take written tiles, share read
    /// tiles). Fails if a required reflector factor is missing — i.e. the
    /// caller violated the DAG order.
    pub fn stage(&mut self, task: TaskKind) -> Result<StagedTask<T>> {
        let inputs = match task {
            TaskKind::Geqrt { i, k } => Inputs::Factor {
                tile: self.take_tile(i, k),
                ib: self.ib,
            },
            TaskKind::Unmqr { i, j, k } => {
                let tfac = self.geqrt_t[i * self.nt + k]
                    .as_ref()
                    .ok_or_else(missing_factor_err)?
                    .clone();
                Inputs::Update {
                    vr: self.tiles.tile_shared(i, k),
                    tfac,
                    c: self.take_tile(i, j),
                }
            }
            TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => Inputs::Elim {
                r1: self.take_tile(p, k),
                a2: self.take_tile(i, k),
            },
            TaskKind::Tsmqr { p, i, j, k } | TaskKind::Ttmqr { p, i, j, k } => {
                let tfac = match &self.elim_t[i * self.nt + k] {
                    Some(e) if e.p == p => Arc::clone(&e.tfac),
                    _ => return Err(missing_factor_err()),
                };
                Inputs::PairUpdate {
                    v2: self.tiles.tile_shared(i, k),
                    tfac,
                    a1: self.take_tile(p, j),
                    a2: self.take_tile(i, j),
                }
            }
        };
        Ok(StagedTask { task, inputs })
    }

    /// Phase 3: write a completed task's outputs back (pointer swaps).
    pub fn commit(&mut self, done: CompletedTask<T>) {
        match (done.task, done.outputs) {
            (TaskKind::Geqrt { i, k }, Outputs::Factor { tile, tfac }) => {
                self.tiles.set_tile(i, k, tile);
                self.geqrt_t[i * self.nt + k] = Some(Arc::new(tfac));
            }
            (TaskKind::Unmqr { i, j, .. }, Outputs::Update { c }) => {
                self.tiles.set_tile(i, j, c);
            }
            (
                TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k },
                Outputs::Elim { r1, a2, tfac },
            ) => {
                self.tiles.set_tile(p, k, r1);
                self.tiles.set_tile(i, k, a2);
                self.elim_t[i * self.nt + k] = Some(ElimFactor {
                    p,
                    tfac: Arc::new(tfac),
                });
            }
            (
                TaskKind::Tsmqr { p, i, j, .. } | TaskKind::Ttmqr { p, i, j, .. },
                Outputs::PairUpdate { a1, a2 },
            ) => {
                self.tiles.set_tile(p, j, a1);
                self.tiles.set_tile(i, j, a2);
            }
            _ => unreachable!("task/output kind mismatch"),
        }
    }

    /// Run one task start to finish (sequential convenience). Kernels
    /// borrow scratch from the state-owned arena, so the steady state
    /// performs no heap allocation beyond the task's `T`-factor output.
    pub fn execute(&mut self, task: TaskKind) -> Result<()> {
        let staged = self.stage(task)?;
        let done = staged.compute_with(&mut self.ws)?;
        self.commit(done);
        Ok(())
    }

    /// Run every task of `graph` in program order (which is topological
    /// for the built-in builders) — the sequential tiled QR driver.
    pub fn run_all(&mut self, graph: &TaskGraph) -> Result<()> {
        for &task in graph.tasks() {
            self.execute(task)?;
        }
        Ok(())
    }

    /// Assembled `R` factor: the upper-triangular result, dense, with the
    /// original (unpadded) dimensions.
    pub fn r_matrix(&self) -> Matrix<T> {
        let full = self.tiles.to_matrix();
        let (m, n) = full.dims();
        Matrix::from_fn(m, n, |i, j| if i <= j { full[(i, j)] } else { T::ZERO })
    }
}

/// Parallel factorization state: the same tiles and `T` factors as
/// [`FactorState`], each behind its **own** mutex so independent tasks
/// stage and commit concurrently. Every critical section is a pointer
/// swap or `Arc` clone — `O(1)`, never `O(b²)` — and no lock is ever held
/// across a kernel or while another slot is locked.
#[derive(Debug)]
pub struct SharedFactorState<T: Scalar> {
    /// Geometry template: an all-placeholder tiled matrix the `Arc`s swap
    /// back into on [`into_state`](Self::into_state).
    template: Mutex<TiledMatrix<T>>,
    nt: usize,
    ib: usize,
    tiles: Vec<Mutex<Arc<Matrix<T>>>>,
    geqrt_t: Vec<Mutex<Option<Arc<PanelFactor<T>>>>>,
    elim_t: Vec<Mutex<Option<ElimFactor<T>>>>,
    empty: Arc<Matrix<T>>,
    cow: Arc<AtomicU64>,
    /// Sequential-path arena, parked here so it round-trips through
    /// [`into_state`](Self::into_state); workers bring their own.
    ws: Workspace<T>,
}

impl<T: Scalar> SharedFactorState<T> {
    /// Split a sequential state into per-slot shared form.
    pub fn new(state: FactorState<T>) -> Self {
        let FactorState {
            mut tiles,
            nt,
            ib,
            geqrt_t,
            elim_t,
            empty,
            cow,
            ws,
        } = state;
        let mt = tiles.tile_rows();
        let mut slots = Vec::with_capacity(mt * nt);
        for i in 0..mt {
            for j in 0..nt {
                slots.push(Mutex::new(tiles.swap_tile_shared(i, j, Arc::clone(&empty))));
            }
        }
        SharedFactorState {
            template: Mutex::new(tiles),
            nt,
            ib,
            tiles: slots,
            geqrt_t: geqrt_t.into_iter().map(Mutex::new).collect(),
            elim_t: elim_t.into_iter().map(Mutex::new).collect(),
            empty,
            cow,
            ws,
        }
    }

    /// Reassemble the sequential state after all tasks have committed.
    pub fn into_state(self) -> FactorState<T> {
        let mut tiles = self.template.into_inner().expect("no poisoned slots");
        for (idx, slot) in self.tiles.into_iter().enumerate() {
            let arc = slot.into_inner().expect("no poisoned slots");
            tiles.set_tile_shared(idx / self.nt, idx % self.nt, arc);
        }
        FactorState {
            tiles,
            nt: self.nt,
            ib: self.ib,
            geqrt_t: self
                .geqrt_t
                .into_iter()
                .map(|m| m.into_inner().expect("no poisoned slots"))
                .collect(),
            elim_t: self
                .elim_t
                .into_iter()
                .map(|m| m.into_inner().expect("no poisoned slots"))
                .collect(),
            empty: self.empty,
            cow: self.cow,
            ws: self.ws,
        }
    }

    /// Inner block size `GEQRT` tasks factor with (workspace sizing input).
    pub fn inner_block(&self) -> usize {
        self.ib
    }

    /// Copy-on-write fallback clones taken so far (see
    /// [`FactorState::cow_clones`]).
    pub fn cow_clones(&self) -> u64 {
        self.cow.load(Ordering::Relaxed)
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.nt + j
    }

    /// Shared read of tile `(i, j)`: lock the slot, clone the pointer.
    fn read_tile(&self, i: usize, j: usize) -> Arc<Matrix<T>> {
        Arc::clone(
            &self.tiles[self.idx(i, j)]
                .lock()
                .expect("tile slot poisoned"),
        )
    }

    /// Take tile `(i, j)` for writing. The swap happens under the slot
    /// lock; the (normally free) `Arc` unwrap happens outside it.
    fn take_tile(&self, i: usize, j: usize) -> Matrix<T> {
        let arc = {
            let mut slot = self.tiles[self.idx(i, j)]
                .lock()
                .expect("tile slot poisoned");
            std::mem::replace(&mut *slot, Arc::clone(&self.empty))
        };
        unwrap_or_clone(arc, &self.cow)
    }

    /// Copy tile `(i, j)` for writing, leaving the slot's contents in
    /// place. Costs an `O(b²)` clone, which buys the fault-tolerant pool
    /// its requeue safety: if the attempt dies mid-kernel, the slot still
    /// holds the pre-task value and a retry stages clean inputs.
    fn clone_tile(&self, i: usize, j: usize) -> Matrix<T> {
        (*self.read_tile(i, j)).clone()
    }

    fn put_tile(&self, i: usize, j: usize, tile: Matrix<T>) {
        let arc = Arc::new(tile);
        *self.tiles[self.idx(i, j)]
            .lock()
            .expect("tile slot poisoned") = arc;
    }

    /// Phase 1 (parallel): identical contract to [`FactorState::stage`] but
    /// takes `&self` and locks only the slots this task touches.
    pub fn stage(&self, task: TaskKind) -> Result<StagedTask<T>> {
        let inputs = match task {
            TaskKind::Geqrt { i, k } => Inputs::Factor {
                tile: self.take_tile(i, k),
                ib: self.ib,
            },
            TaskKind::Unmqr { i, j, k } => {
                let tfac = self.geqrt_t[self.idx(i, k)]
                    .lock()
                    .expect("factor slot poisoned")
                    .as_ref()
                    .ok_or_else(missing_factor_err)?
                    .clone();
                Inputs::Update {
                    vr: self.read_tile(i, k),
                    tfac,
                    c: self.take_tile(i, j),
                }
            }
            TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => Inputs::Elim {
                r1: self.take_tile(p, k),
                a2: self.take_tile(i, k),
            },
            TaskKind::Tsmqr { p, i, j, k } | TaskKind::Ttmqr { p, i, j, k } => {
                let tfac = match &*self.elim_t[self.idx(i, k)]
                    .lock()
                    .expect("factor slot poisoned")
                {
                    Some(e) if e.p == p => Arc::clone(&e.tfac),
                    _ => return Err(missing_factor_err()),
                };
                Inputs::PairUpdate {
                    v2: self.read_tile(i, k),
                    tfac,
                    a1: self.take_tile(p, j),
                    a2: self.take_tile(i, j),
                }
            }
        };
        Ok(StagedTask { task, inputs })
    }

    /// Non-destructive variant of [`stage`](Self::stage): written tiles are
    /// *cloned* out instead of swapped out, so the shared state is left
    /// exactly as it was. An attempt staged this way can panic, stall, or
    /// fail mid-kernel and the task remains retryable — nothing is lost
    /// until [`commit`](Self::commit) swaps the outputs in. The fast path
    /// keeps the zero-copy [`stage`](Self::stage); this one trades an
    /// `O(b²)` copy per written tile (small next to the `O(b³)` kernel)
    /// for idempotent re-execution.
    pub fn stage_preserving(&self, task: TaskKind) -> Result<StagedTask<T>> {
        let inputs = match task {
            TaskKind::Geqrt { i, k } => Inputs::Factor {
                tile: self.clone_tile(i, k),
                ib: self.ib,
            },
            TaskKind::Unmqr { i, j, k } => {
                let tfac = self.geqrt_t[self.idx(i, k)]
                    .lock()
                    .expect("factor slot poisoned")
                    .as_ref()
                    .ok_or_else(missing_factor_err)?
                    .clone();
                Inputs::Update {
                    vr: self.read_tile(i, k),
                    tfac,
                    c: self.clone_tile(i, j),
                }
            }
            TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => Inputs::Elim {
                r1: self.clone_tile(p, k),
                a2: self.clone_tile(i, k),
            },
            TaskKind::Tsmqr { p, i, j, k } | TaskKind::Ttmqr { p, i, j, k } => {
                let tfac = match &*self.elim_t[self.idx(i, k)]
                    .lock()
                    .expect("factor slot poisoned")
                {
                    Some(e) if e.p == p => Arc::clone(&e.tfac),
                    _ => return Err(missing_factor_err()),
                };
                Inputs::PairUpdate {
                    v2: self.read_tile(i, k),
                    tfac,
                    a1: self.clone_tile(p, j),
                    a2: self.clone_tile(i, j),
                }
            }
        };
        Ok(StagedTask { task, inputs })
    }

    /// Phase 3 (parallel): write back under per-slot locks only.
    pub fn commit(&self, done: CompletedTask<T>) {
        match (done.task, done.outputs) {
            (TaskKind::Geqrt { i, k }, Outputs::Factor { tile, tfac }) => {
                self.put_tile(i, k, tile);
                *self.geqrt_t[self.idx(i, k)]
                    .lock()
                    .expect("factor slot poisoned") = Some(Arc::new(tfac));
            }
            (TaskKind::Unmqr { i, j, .. }, Outputs::Update { c }) => {
                self.put_tile(i, j, c);
            }
            (
                TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k },
                Outputs::Elim { r1, a2, tfac },
            ) => {
                self.put_tile(p, k, r1);
                self.put_tile(i, k, a2);
                *self.elim_t[self.idx(i, k)]
                    .lock()
                    .expect("factor slot poisoned") = Some(ElimFactor {
                    p,
                    tfac: Arc::new(tfac),
                });
            }
            (
                TaskKind::Tsmqr { p, i, j, .. } | TaskKind::Ttmqr { p, i, j, .. },
                Outputs::PairUpdate { a1, a2 },
            ) => {
                self.put_tile(p, j, a1);
                self.put_tile(i, j, a2);
            }
            _ => unreachable!("task/output kind mismatch"),
        }
    }
}

impl<T: Scalar> StagedTask<T> {
    /// Phase 2 with a throwaway workspace: allocates scratch on every call.
    /// Kept for API compatibility and cold paths; hot loops should thread a
    /// per-worker arena through [`compute_with`](Self::compute_with).
    pub fn compute(self) -> Result<CompletedTask<T>> {
        self.compute_with(&mut Workspace::minimal())
    }

    /// Phase 2: the actual kernel, on owned/shared data — runs without any
    /// lock. All scratch is borrowed from `ws`; once the arena has warmed
    /// up to the tile size, the only heap allocations left are the task's
    /// own `T`-factor outputs.
    pub fn compute_with(self, ws: &mut Workspace<T>) -> Result<CompletedTask<T>> {
        let outputs = match (self.task, self.inputs) {
            (TaskKind::Geqrt { .. }, Inputs::Factor { mut tile, ib }) => {
                let tfac = if ib >= tile.cols().min(tile.rows()) {
                    let n = tile.cols();
                    let mut t = Matrix::zeros(n, n);
                    geqrt_ws(&mut tile, &mut t, ws)?;
                    PanelFactor::Full(t)
                } else {
                    let tfacs = geqrt_ib_ws(&mut tile, ib, ws)?;
                    PanelFactor::Blocked { ib, tfacs }
                };
                Outputs::Factor { tile, tfac }
            }
            (TaskKind::Unmqr { .. }, Inputs::Update { vr, tfac, mut c }) => {
                tfac.apply_ws(&vr, &mut c, ApplySide::Transpose, ws)?;
                Outputs::Update { c }
            }
            (TaskKind::Tsqrt { .. }, Inputs::Elim { mut r1, mut a2 }) => {
                let n = r1.cols();
                let mut tfac = Matrix::zeros(n, n);
                tsqrt_ws(&mut r1, &mut a2, &mut tfac, ws)?;
                Outputs::Elim { r1, a2, tfac }
            }
            (TaskKind::Ttqrt { .. }, Inputs::Elim { mut r1, mut a2 }) => {
                let n = r1.cols();
                let mut tfac = Matrix::zeros(n, n);
                ttqrt_ws(&mut r1, &mut a2, &mut tfac, ws)?;
                Outputs::Elim { r1, a2, tfac }
            }
            (
                TaskKind::Tsmqr { .. },
                Inputs::PairUpdate {
                    v2,
                    tfac,
                    mut a1,
                    mut a2,
                },
            ) => {
                tsmqr_apply_ws(&v2, &tfac, &mut a1, &mut a2, ApplySide::Transpose, ws)?;
                Outputs::PairUpdate { a1, a2 }
            }
            (
                TaskKind::Ttmqr { .. },
                Inputs::PairUpdate {
                    v2,
                    tfac,
                    mut a1,
                    mut a2,
                },
            ) => {
                ttmqr_apply_ws(&v2, &tfac, &mut a1, &mut a2, ApplySide::Transpose, ws)?;
                Outputs::PairUpdate { a1, a2 }
            }
            _ => unreachable!("task/input kind mismatch"),
        };
        Ok(CompletedTask {
            task: self.task,
            outputs,
        })
    }

    /// The task this staging belongs to.
    pub fn task(&self) -> TaskKind {
        self.task
    }
}

impl<T: Scalar> CompletedTask<T> {
    /// The task these outputs belong to.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// Scan every output (written tiles *and* reflector `T` factors) for
    /// non-finite values and return the grid coordinates of the first
    /// poisoned tile, or `None` when the outputs are clean. A runtime can
    /// call this at its commit fence *before* the outputs touch shared
    /// state, so a NaN/Inf produced by one task never propagates into
    /// downstream tiles.
    pub fn first_non_finite(&self) -> Option<(usize, usize)> {
        let dirty = |m: &Matrix<T>| !m.all_finite();
        let panel_dirty = |p: &PanelFactor<T>| match p {
            PanelFactor::Full(t) => dirty(t),
            PanelFactor::Blocked { tfacs, .. } => tfacs.iter().any(&dirty),
        };
        match (&self.task, &self.outputs) {
            (TaskKind::Geqrt { i, k }, Outputs::Factor { tile, tfac }) => {
                (dirty(tile) || panel_dirty(tfac)).then_some((*i, *k))
            }
            (TaskKind::Unmqr { i, j, .. }, Outputs::Update { c }) => dirty(c).then_some((*i, *j)),
            (
                TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k },
                Outputs::Elim { r1, a2, tfac },
            ) => {
                if dirty(r1) {
                    Some((*p, *k))
                } else if dirty(a2) || dirty(tfac) {
                    Some((*i, *k))
                } else {
                    None
                }
            }
            (
                TaskKind::Tsmqr { p, i, j, .. } | TaskKind::Ttmqr { p, i, j, .. },
                Outputs::PairUpdate { a1, a2 },
            ) => {
                if dirty(a1) {
                    Some((*p, *j))
                } else if dirty(a2) {
                    Some((*i, *j))
                } else {
                    None
                }
            }
            _ => unreachable!("task/output kind mismatch"),
        }
    }

    /// Test seam: overwrite the first element of this task's first output
    /// tile with NaN, as if the kernel had numerically broken down. Used
    /// by fault injectors to exercise commit-fence poison detection.
    pub fn poison(&mut self) {
        let nan = T::from_f64(f64::NAN);
        let target = match &mut self.outputs {
            Outputs::Factor { tile, .. } => tile,
            Outputs::Update { c } => c,
            Outputs::Elim { r1, .. } => r1,
            Outputs::PairUpdate { a1, .. } => a1,
        };
        if let Some(v) = target.as_mut_slice().first_mut() {
            *v = nan;
        }
    }
}

/// Extract row-block `i` (a `b x cols` matrix) of a dense `c`.
fn row_block<T: Scalar>(c: &Matrix<T>, i: usize, b: usize) -> Matrix<T> {
    c.submatrix(i * b, 0, b, c.cols())
        .expect("row block in range")
}

fn set_row_block<T: Scalar>(c: &mut Matrix<T>, i: usize, block: &Matrix<T>) {
    let b = block.rows();
    c.set_submatrix(i * b, 0, block)
        .expect("row block in range");
}

/// Apply `Qᵀ` of a completed factorization to a dense `c` whose row count
/// equals the *padded* row dimension of the factored matrix.
///
/// Replays the factor kernels in the canonical program order of `graph`.
pub fn apply_qt_dense<T: Scalar>(
    state: &FactorState<T>,
    graph: &TaskGraph,
    c: &mut Matrix<T>,
) -> Result<()> {
    let b = state.tiles.tile_size();
    check_rows(state, c)?;
    for &task in graph.tasks() {
        apply_factor_task(state, task, c, b, ApplySide::Transpose)?;
    }
    Ok(())
}

/// Apply `Q` (not transposed) of a completed factorization to a dense `c`:
/// the factor kernels replay in *reverse* program order with untransposed
/// block reflectors.
pub fn apply_q_dense<T: Scalar>(
    state: &FactorState<T>,
    graph: &TaskGraph,
    c: &mut Matrix<T>,
) -> Result<()> {
    let b = state.tiles.tile_size();
    check_rows(state, c)?;
    for &task in graph.tasks().iter().rev() {
        apply_factor_task(state, task, c, b, ApplySide::NoTranspose)?;
    }
    Ok(())
}

fn check_rows<T: Scalar>(state: &FactorState<T>, c: &Matrix<T>) -> Result<()> {
    let (pm, _) = state.tiles.padded_dims();
    if c.rows() != pm {
        return Err(MatrixError::DimensionMismatch {
            op: "apply_q (C rows must equal padded rows)",
            lhs: (pm, 0),
            rhs: c.dims(),
        });
    }
    Ok(())
}

fn apply_factor_task<T: Scalar>(
    state: &FactorState<T>,
    task: TaskKind,
    c: &mut Matrix<T>,
    b: usize,
    side: ApplySide,
) -> Result<()> {
    match task {
        TaskKind::Geqrt { i, k } => {
            let vr = state.tiles.tile(i, k);
            let tfac = state
                .geqrt_panel_factor(i, k)
                .ok_or(MatrixError::DimensionMismatch {
                    op: "apply: GEQRT factor missing",
                    lhs: (i, k),
                    rhs: (0, 0),
                })?;
            let mut block = row_block(c, i, b);
            tfac.apply(vr, &mut block, side)?;
            set_row_block(c, i, &block);
        }
        TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => {
            let v2 = state.tiles.tile(i, k);
            let tfac = state
                .elim_factor(p, i, k)
                .ok_or(MatrixError::DimensionMismatch {
                    op: "apply: elimination factor missing",
                    lhs: (i, k),
                    rhs: (0, 0),
                })?;
            let mut a1 = row_block(c, p, b);
            let mut a2 = row_block(c, i, b);
            if matches!(task, TaskKind::Tsqrt { .. }) {
                tsmqr_apply(v2, tfac, &mut a1, &mut a2, side)?;
            } else {
                ttmqr_apply(v2, tfac, &mut a1, &mut a2, side)?;
            }
            set_row_block(c, p, &a1);
            set_row_block(c, i, &a2);
        }
        // Update kernels touch only the factored matrix, not C.
        TaskKind::Unmqr { .. } | TaskKind::Tsmqr { .. } | TaskKind::Ttmqr { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::{matmul, orthogonality_defect};

    fn factor(
        n: usize,
        b: usize,
        order: EliminationOrder,
    ) -> (Matrix<f64>, FactorState<f64>, TaskGraph) {
        let a = random_matrix::<f64>(n, n, 42);
        let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
        let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
        let mut st = FactorState::new(tiled);
        st.run_all(&g).unwrap();
        (a, st, g)
    }

    fn form_q(st: &FactorState<f64>, g: &TaskGraph) -> Matrix<f64> {
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(st, g, &mut q).unwrap();
        q
    }

    #[test]
    fn tiled_qr_reconstructs_exact_grid() {
        let (a, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let q = form_q(&st, &g);
        let r_full = {
            // R on the padded grid.
            let full = st.tiles().to_matrix();
            Matrix::from_fn(12, 12, |i, j| if i <= j { full[(i, j)] } else { 0.0 })
        };
        let qr = matmul(&q, &r_full).unwrap();
        assert!(qr.approx_eq(&a, 1e-11), "QR != A");
        assert!(orthogonality_defect(&q).unwrap() < 1e-12);
    }

    #[test]
    fn tiled_qr_reconstructs_padded_grid() {
        // 10x10 with tile 4 -> padded to 12x12 with unit-diagonal padding.
        let a = random_matrix::<f64>(10, 10, 7);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let mut st = FactorState::new(tiled);
        st.run_all(&g).unwrap();
        let q = form_q(&st, &g);
        let full = st.tiles().to_matrix(); // 10x10 view
        let r = Matrix::from_fn(10, 10, |i, j| if i <= j { full[(i, j)] } else { 0.0 });
        // Compare on the unpadded block: Q's top-left 10x12 times padded R.
        let padded_r = {
            let mut pr = Matrix::zeros(12, 12);
            for j in 0..12 {
                for i in 0..=j {
                    // reconstruct from tiles directly
                    let tile = st.tiles().tile(i / 4, j / 4);
                    pr[(i, j)] = tile[(i % 4, j % 4)];
                }
            }
            pr
        };
        let qr = matmul(&q, &padded_r).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-11, "({i},{j})");
            }
        }
        let _ = r;
    }

    #[test]
    fn tt_orders_also_factorize() {
        for order in [EliminationOrder::FlatTt, EliminationOrder::BinaryTt] {
            let (a, st, g) = factor(16, 4, order);
            let q = form_q(&st, &g);
            let r = st.r_matrix();
            let qr = matmul(&q, &r).unwrap();
            assert!(qr.approx_eq(&a, 1e-11), "{order:?} failed");
        }
    }

    #[test]
    fn r_matches_reference_up_to_signs() {
        let (a, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let _ = g;
        let r_tiled = st.r_matrix();
        let (_, r_ref) = crate::reference::householder_qr(&a).unwrap();
        for j in 0..12 {
            for i in 0..=j {
                assert!(
                    (r_tiled[(i, j)].abs() - r_ref[(i, j)].abs()).abs() < 1e-10,
                    "|R| mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn apply_qt_then_q_round_trips() {
        let (_, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let c0 = random_matrix::<f64>(12, 3, 5);
        let mut c = c0.clone();
        apply_qt_dense(&st, &g, &mut c).unwrap();
        apply_q_dense(&st, &g, &mut c).unwrap();
        assert!(c.approx_eq(&c0, 1e-11));
    }

    #[test]
    fn qt_a_gives_r() {
        let (a, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let mut c = a.clone();
        apply_qt_dense(&st, &g, &mut c).unwrap();
        let r = st.r_matrix();
        assert!(c.approx_eq(&r, 1e-11));
    }

    #[test]
    fn stage_rejects_missing_factor() {
        let a = random_matrix::<f64>(8, 8, 1);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let mut st = FactorState::new(tiled);
        // UNMQR before its GEQRT: must fail cleanly.
        assert!(st.stage(TaskKind::Unmqr { i: 0, j: 1, k: 0 }).is_err());
    }

    #[test]
    fn apply_rejects_wrong_row_count() {
        let (_, st, g) = factor(12, 4, EliminationOrder::FlatTs);
        let mut c = Matrix::<f64>::zeros(9, 2);
        assert!(apply_qt_dense(&st, &g, &mut c).is_err());
    }

    #[test]
    fn staged_compute_outside_state_matches_execute() {
        let a = random_matrix::<f64>(8, 8, 3);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);

        let mut st1 = FactorState::new(tiled.clone());
        st1.run_all(&g).unwrap();

        let mut st2 = FactorState::new(tiled);
        for &t in g.tasks() {
            let staged = st2.stage(t).unwrap();
            let done = staged.compute().unwrap();
            st2.commit(done);
        }
        assert_eq!(st1.tiles().to_matrix(), st2.tiles().to_matrix());
    }

    #[test]
    fn stage_shares_read_inputs_without_copy() {
        // The acceptance-criterion test: staging an update task must hand
        // the read tile and T factor out as pointer clones of the ones the
        // state holds — never deep copies.
        let a = random_matrix::<f64>(8, 8, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let mut st = FactorState::new(tiled);
        st.execute(TaskKind::Geqrt { i: 0, k: 0 }).unwrap();

        let staged = st.stage(TaskKind::Unmqr { i: 0, j: 1, k: 0 }).unwrap();
        match &staged.inputs {
            Inputs::Update { vr, tfac, .. } => {
                assert!(
                    Arc::ptr_eq(vr, &st.tiles().tile_shared(0, 0)),
                    "read tile must be Arc-shared, not copied"
                );
                let held = st.geqrt_t[0].as_ref().unwrap();
                assert!(
                    Arc::ptr_eq(tfac, held),
                    "T factor must be Arc-shared, not copied"
                );
            }
            _ => panic!("UNMQR staged wrong input kind"),
        }
        // Finish the task so the state stays consistent.
        let done = staged.compute().unwrap();
        st.commit(done);
    }

    #[test]
    fn take_tile_is_a_move_when_unshared() {
        // After all readers drop their handles, staging a written tile must
        // move the unique Arc payload, not clone it: the tile the writer
        // receives is the same allocation the state held.
        let a = random_matrix::<f64>(8, 8, 6);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let mut st = FactorState::new(tiled);
        let before = st.tiles().tile(0, 0).as_slice().as_ptr() as usize;
        let staged = st.stage(TaskKind::Geqrt { i: 0, k: 0 }).unwrap();
        match &staged.inputs {
            Inputs::Factor { tile, .. } => {
                // Same heap buffer: the payload was moved out of the unique
                // Arc, not cloned.
                assert_eq!(tile.as_slice().as_ptr() as usize, before);
            }
            _ => panic!("GEQRT staged wrong input kind"),
        }
        let done = staged.compute().unwrap();
        st.commit(done);
    }

    #[test]
    fn shared_state_matches_sequential() {
        for order in [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ] {
            let a = random_matrix::<f64>(16, 16, 9);
            let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
            let g = TaskGraph::build(4, 4, order);

            let mut seq = FactorState::new(tiled.clone());
            seq.run_all(&g).unwrap();

            let shared = SharedFactorState::new(FactorState::new(tiled));
            for &t in g.tasks() {
                let staged = shared.stage(t).unwrap();
                let done = staged.compute().unwrap();
                shared.commit(done);
            }
            let st = shared.into_state();
            assert_eq!(seq.tiles().to_matrix(), st.tiles().to_matrix());
            assert_eq!(seq.r_matrix(), st.r_matrix());
            // Factors must round-trip through the shared form too.
            assert!(st.geqrt_factor(0, 0).is_some());
        }
    }

    #[test]
    fn sequential_run_takes_no_cow_clones_and_no_resizes() {
        // The single-owner guarantee the PR is built on: a sequential
        // `run_all` never hits the copy-on-write fallback, and the arena
        // sized at construction never grows.
        for order in [
            EliminationOrder::FlatTs,
            EliminationOrder::FlatTt,
            EliminationOrder::BinaryTt,
        ] {
            let (_, st, _) = factor(16, 4, order);
            assert_eq!(st.cow_clones(), 0, "{order:?} hit the COW slow path");
            assert_eq!(st.workspace_resizes(), 0, "{order:?} grew the arena");
            assert!(st.workspace_bytes() > 0);
        }
    }

    #[test]
    fn external_handle_forces_counted_cow_clone() {
        let a = random_matrix::<f64>(8, 8, 11);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let mut st = FactorState::new(tiled);
        // Keep an external Arc alive across a staging of the same tile:
        // the writer can no longer move the payload and must copy.
        let external = st.tiles().tile_shared(0, 0);
        let staged = st.stage(TaskKind::Geqrt { i: 0, k: 0 }).unwrap();
        assert_eq!(st.cow_clones(), 1, "external handle must force a clone");
        drop(external);
        let done = staged.compute().unwrap();
        st.commit(done);
        // No further slow-path hits once the handle is gone.
        st.execute(TaskKind::Unmqr { i: 0, j: 1, k: 0 }).unwrap();
        assert_eq!(st.cow_clones(), 1);
    }

    #[test]
    fn inner_blocked_factorization_reconstructs() {
        let a = random_matrix::<f64>(16, 16, 13);
        let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);
        let mut st = FactorState::with_inner_block(tiled, 4);
        assert_eq!(st.inner_block(), 4);
        st.run_all(&g).unwrap();
        // Full-tile accessor must refuse blocked factors...
        assert!(st.geqrt_factor(0, 0).is_none());
        // ...while the panel accessor exposes them.
        assert!(matches!(
            st.geqrt_panel_factor(0, 0),
            Some(PanelFactor::Blocked { ib: 4, .. })
        ));
        let q = form_q(&st, &g);
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-11), "ib-blocked QR != A");
        assert!(orthogonality_defect(&q).unwrap() < 1e-12);
        assert_eq!(st.cow_clones(), 0);
        assert_eq!(st.workspace_resizes(), 0);
    }

    #[test]
    fn shared_state_counts_cow_and_round_trips_counters() {
        let a = random_matrix::<f64>(8, 8, 17);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);
        let shared = SharedFactorState::new(FactorState::new(tiled));
        for &t in g.tasks() {
            let staged = shared.stage(t).unwrap();
            let done = staged.compute().unwrap();
            shared.commit(done);
        }
        assert_eq!(shared.cow_clones(), 0);
        assert_eq!(shared.inner_block(), 4);
        let st = shared.into_state();
        assert_eq!(st.cow_clones(), 0);
    }
}
