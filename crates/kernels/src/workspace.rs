//! Reusable per-thread scratch arena for the tile kernels.
//!
//! Every kernel in this crate needs the same small set of scratch blocks:
//! a reflector-accumulation vector `z`, a `T`-application vector `tmp`,
//! and the `W = VᵀC` work block. The seed kernels allocated these with
//! `vec!`/`Matrix::zeros` on every invocation, which made the steady-state
//! hot path allocator-bound. A [`Workspace`] is sized once from the tile
//! geometry `(b, ib)` and handed to the `*_ws` kernel entry points, which
//! borrow slices out of it instead of allocating.
//!
//! Sizing (scalars, for tile size `b`, inner block `ib ≤ b`):
//!
//! | buffer | capacity | used by |
//! |--------|----------|---------|
//! | `z`    | `b`      | `geqrt_ws`/`tsqrt_ws`/`ttqrt_ws` reflector dot accumulation |
//! | `tmp`  | `b`      | `apply_tfac_in_place` (one column of `op(T)·W`) |
//! | `w`    | `b·b`    | the `W` block of every update kernel (`n × nc ≤ b × b` on the tile path) |
//!
//! (The microkernel rewrite removed the packed-panel buffer: the fused
//! column primitives of [`crate::micro`] read reflector columns in place,
//! column-major and unit-stride, so there is nothing left to pack.)
//!
//! Requests beyond the presized capacity (e.g. applying `Q` to a dense
//! right-hand side wider than one tile) grow the buffer and are counted in
//! [`resizes`](Workspace::resizes); on the tile-sized steady state that
//! counter stays at zero, which the `kernel_hotpath` bench asserts with a
//! counting allocator.

use tileqr_matrix::{MatrixViewMut, Scalar};

/// Who owns kernel scratch during parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkspacePolicy {
    /// One [`Workspace`] per worker thread, created before the task loop
    /// and reused for every kernel — the allocation-free steady state.
    #[default]
    PerWorker,
    /// A fresh workspace per task (the seed behaviour, kept as the
    /// explicit slow path for A/B measurement and leak hunting).
    PerCall,
}

/// Grow-once scratch arena backing the `*_ws` kernels.
#[derive(Debug, Clone)]
pub struct Workspace<T: Scalar> {
    z: Vec<T>,
    tmp: Vec<T>,
    w: Vec<T>,
    resizes: u64,
}

fn ensure<T: Scalar>(buf: &mut Vec<T>, len: usize, resizes: &mut u64) {
    if buf.len() < len {
        *resizes += 1;
        buf.resize(len, T::ZERO);
    }
}

impl<T: Scalar> Workspace<T> {
    /// Workspace presized for tiles of size `b` with inner block `ib`.
    ///
    /// `ib` never exceeds `b`, so every kernel's scratch is covered by the
    /// `b`/`b·b` capacities below; the parameter is part of the signature
    /// because it is the sizing contract the runtime plumbs through.
    pub fn new(b: usize, ib: usize) -> Self {
        debug_assert!(ib >= 1 && ib <= b.max(1), "inner block {ib} vs tile {b}");
        Workspace {
            z: vec![T::ZERO; b],
            tmp: vec![T::ZERO; b],
            w: vec![T::ZERO; b * b],
            resizes: 0,
        }
    }

    /// Empty workspace that grows on first use. This is what the
    /// allocating compatibility wrappers (`geqrt`, `tsmqr_apply`, …) pass,
    /// so the legacy API keeps its per-call allocation behaviour while
    /// sharing one code path with the `*_ws` variants.
    pub fn minimal() -> Self {
        Workspace {
            z: Vec::new(),
            tmp: Vec::new(),
            w: Vec::new(),
            resizes: 0,
        }
    }

    /// Reflector-accumulation vector of length `n` (the `z` of the factor
    /// kernels). Contents are unspecified; the kernels write before reading.
    pub fn reflector_scratch(&mut self, n: usize) -> &mut [T] {
        ensure(&mut self.z, n, &mut self.resizes);
        &mut self.z[..n]
    }

    /// Scratch for a factor kernel: the reflector-accumulation vector `z`
    /// plus a second length-`n` buffer (the `T`-column accumulator of the
    /// microkernel path, also reused for fused trailing-update weights).
    /// Contents are unspecified; the kernels write before reading.
    pub fn factor_scratch(&mut self, n: usize) -> (&mut [T], &mut [T]) {
        ensure(&mut self.z, n, &mut self.resizes);
        ensure(&mut self.tmp, n, &mut self.resizes);
        (&mut self.z[..n], &mut self.tmp[..n])
    }

    /// Scratch for an update kernel: the `wr × wc` work block `W` plus the
    /// length-`wr` column buffer for `op(T)·W`.
    pub fn apply_scratch(&mut self, wr: usize, wc: usize) -> (MatrixViewMut<'_, T>, &mut [T]) {
        ensure(&mut self.w, wr * wc, &mut self.resizes);
        ensure(&mut self.tmp, wr, &mut self.resizes);
        (
            MatrixViewMut::new(wr, wc, &mut self.w[..wr * wc]),
            &mut self.tmp[..wr],
        )
    }

    /// Total capacity currently held, in bytes.
    pub fn bytes(&self) -> usize {
        (self.z.capacity() + self.tmp.capacity() + self.w.capacity()) * std::mem::size_of::<T>()
    }

    /// How many times a scratch request outgrew the arena (0 in the sized
    /// steady state; each growth is one reallocation on the slow path).
    pub fn resizes(&self) -> u64 {
        self.resizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presized_requests_do_not_resize() {
        let mut ws = Workspace::<f64>::new(8, 4);
        for _ in 0..10 {
            let _ = ws.reflector_scratch(8);
            let _ = ws.factor_scratch(8);
            let _ = ws.apply_scratch(8, 8);
        }
        assert_eq!(ws.resizes(), 0);
    }

    #[test]
    fn oversized_request_grows_and_counts() {
        let mut ws = Workspace::<f64>::new(4, 4);
        {
            let (w, tmp) = ws.apply_scratch(4, 12);
            assert_eq!((w.rows(), w.cols()), (4, 12));
            assert_eq!(tmp.len(), 4);
        }
        assert_eq!(ws.resizes(), 1);
        // Second identical request is served from the grown buffer.
        let _ = ws.apply_scratch(4, 12);
        assert_eq!(ws.resizes(), 1);
    }

    #[test]
    fn minimal_starts_empty_and_grows() {
        let mut ws = Workspace::<f64>::minimal();
        let _ = ws.reflector_scratch(6);
        assert_eq!(ws.resizes(), 1);
        assert!(ws.bytes() >= 6 * std::mem::size_of::<f64>());
    }

    #[test]
    fn views_are_disjoint() {
        let mut ws = Workspace::<f64>::new(4, 2);
        let (mut w, tmp) = ws.apply_scratch(4, 3);
        w.fill(2.0);
        tmp.fill(3.0);
        assert!(w.as_slice().iter().all(|&x| x == 2.0));
        assert!(tmp.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn policy_default_is_per_worker() {
        assert_eq!(WorkspacePolicy::default(), WorkspacePolicy::PerWorker);
    }
}
