//! Reusable per-thread scratch arena for the tile kernels.
//!
//! Every kernel in this crate needs the same small set of scratch blocks:
//! a reflector-accumulation vector `z`, a `T`-application vector `tmp`,
//! the `W = VᵀC` work block, and (for the packed variants) a contiguous
//! copy of the reflector panel. The seed kernels allocated these with
//! `vec!`/`Matrix::zeros` on every invocation, which made the steady-state
//! hot path allocator-bound. A [`Workspace`] is sized once from the tile
//! geometry `(b, ib)` and handed to the `*_ws` kernel entry points, which
//! borrow slices out of it instead of allocating.
//!
//! Sizing (scalars, for tile size `b`, inner block `ib ≤ b`):
//!
//! | buffer | capacity | used by |
//! |--------|----------|---------|
//! | `z`    | `b`      | `geqrt_ws`/`tsqrt_ws`/`ttqrt_ws` reflector dot accumulation |
//! | `tmp`  | `b`      | `apply_tfac_in_place` (one column of `op(T)·W`) |
//! | `w`    | `b·b`    | the `W` block of every update kernel (`n × nc ≤ b × b` on the tile path) |
//! | `pack` | `b·b`    | packed `V2ᵀ` (TSMQR, `n × m2`) / packed panel (`(m−s) × ib ≤ b·ib`) |
//!
//! Requests beyond the presized capacity (e.g. applying `Q` to a dense
//! right-hand side wider than one tile) grow the buffer and are counted in
//! [`resizes`](Workspace::resizes); on the tile-sized steady state that
//! counter stays at zero, which the `kernel_hotpath` bench asserts with a
//! counting allocator.

use tileqr_matrix::{MatrixViewMut, Scalar};

/// Who owns kernel scratch during parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkspacePolicy {
    /// One [`Workspace`] per worker thread, created before the task loop
    /// and reused for every kernel — the allocation-free steady state.
    #[default]
    PerWorker,
    /// A fresh workspace per task (the seed behaviour, kept as the
    /// explicit slow path for A/B measurement and leak hunting).
    PerCall,
}

/// Grow-once scratch arena backing the `*_ws` kernels.
#[derive(Debug, Clone)]
pub struct Workspace<T: Scalar> {
    z: Vec<T>,
    tmp: Vec<T>,
    w: Vec<T>,
    pack: Vec<T>,
    resizes: u64,
}

fn ensure<T: Scalar>(buf: &mut Vec<T>, len: usize, resizes: &mut u64) {
    if buf.len() < len {
        *resizes += 1;
        buf.resize(len, T::ZERO);
    }
}

impl<T: Scalar> Workspace<T> {
    /// Workspace presized for tiles of size `b` with inner block `ib`.
    ///
    /// `ib` never exceeds `b`, so the packed-panel block is covered by the
    /// same `b·b` capacity as `W`; the parameter is part of the signature
    /// because it is the sizing contract the runtime plumbs through.
    pub fn new(b: usize, ib: usize) -> Self {
        debug_assert!(ib >= 1 && ib <= b.max(1), "inner block {ib} vs tile {b}");
        Workspace {
            z: vec![T::ZERO; b],
            tmp: vec![T::ZERO; b],
            w: vec![T::ZERO; b * b],
            pack: vec![T::ZERO; b * b],
            resizes: 0,
        }
    }

    /// Empty workspace that grows on first use. This is what the
    /// allocating compatibility wrappers (`geqrt`, `tsmqr_apply`, …) pass,
    /// so the legacy API keeps its per-call allocation behaviour while
    /// sharing one code path with the `*_ws` variants.
    pub fn minimal() -> Self {
        Workspace {
            z: Vec::new(),
            tmp: Vec::new(),
            w: Vec::new(),
            pack: Vec::new(),
            resizes: 0,
        }
    }

    /// Reflector-accumulation vector of length `n` (the `z` of the factor
    /// kernels). Contents are unspecified; the kernels write before reading.
    pub fn reflector_scratch(&mut self, n: usize) -> &mut [T] {
        ensure(&mut self.z, n, &mut self.resizes);
        &mut self.z[..n]
    }

    /// Scratch for an update kernel: the `wr × wc` work block `W` plus the
    /// length-`wr` column buffer for `op(T)·W`.
    pub fn apply_scratch(&mut self, wr: usize, wc: usize) -> (MatrixViewMut<'_, T>, &mut [T]) {
        ensure(&mut self.w, wr * wc, &mut self.resizes);
        ensure(&mut self.tmp, wr, &mut self.resizes);
        (
            MatrixViewMut::new(wr, wc, &mut self.w[..wr * wc]),
            &mut self.tmp[..wr],
        )
    }

    /// Scratch for a packed update kernel: the `pr × pc` packed reflector
    /// block, the `wr × wc` work block, and the `op(T)` column buffer.
    pub fn packed_apply_scratch(
        &mut self,
        pr: usize,
        pc: usize,
        wr: usize,
        wc: usize,
    ) -> (MatrixViewMut<'_, T>, MatrixViewMut<'_, T>, &mut [T]) {
        ensure(&mut self.pack, pr * pc, &mut self.resizes);
        ensure(&mut self.w, wr * wc, &mut self.resizes);
        ensure(&mut self.tmp, wr, &mut self.resizes);
        (
            MatrixViewMut::new(pr, pc, &mut self.pack[..pr * pc]),
            MatrixViewMut::new(wr, wc, &mut self.w[..wr * wc]),
            &mut self.tmp[..wr],
        )
    }

    /// Total capacity currently held, in bytes.
    pub fn bytes(&self) -> usize {
        (self.z.capacity() + self.tmp.capacity() + self.w.capacity() + self.pack.capacity())
            * std::mem::size_of::<T>()
    }

    /// How many times a scratch request outgrew the arena (0 in the sized
    /// steady state; each growth is one reallocation on the slow path).
    pub fn resizes(&self) -> u64 {
        self.resizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presized_requests_do_not_resize() {
        let mut ws = Workspace::<f64>::new(8, 4);
        for _ in 0..10 {
            let _ = ws.reflector_scratch(8);
            let _ = ws.apply_scratch(8, 8);
            let _ = ws.packed_apply_scratch(8, 8, 8, 8);
            let _ = ws.packed_apply_scratch(8, 4, 4, 8);
        }
        assert_eq!(ws.resizes(), 0);
    }

    #[test]
    fn oversized_request_grows_and_counts() {
        let mut ws = Workspace::<f64>::new(4, 4);
        {
            let (w, tmp) = ws.apply_scratch(4, 12);
            assert_eq!((w.rows(), w.cols()), (4, 12));
            assert_eq!(tmp.len(), 4);
        }
        assert_eq!(ws.resizes(), 1);
        // Second identical request is served from the grown buffer.
        let _ = ws.apply_scratch(4, 12);
        assert_eq!(ws.resizes(), 1);
    }

    #[test]
    fn minimal_starts_empty_and_grows() {
        let mut ws = Workspace::<f64>::minimal();
        let _ = ws.reflector_scratch(6);
        assert_eq!(ws.resizes(), 1);
        assert!(ws.bytes() >= 6 * std::mem::size_of::<f64>());
    }

    #[test]
    fn views_are_disjoint() {
        let mut ws = Workspace::<f64>::new(4, 2);
        let (mut p, mut w, tmp) = ws.packed_apply_scratch(4, 2, 4, 3);
        p.fill(1.0);
        w.fill(2.0);
        tmp.fill(3.0);
        assert!(p.as_slice().iter().all(|&x| x == 1.0));
        assert!(w.as_slice().iter().all(|&x| x == 2.0));
        assert!(tmp.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn policy_default_is_per_worker() {
        assert_eq!(WorkspacePolicy::default(), WorkspacePolicy::PerWorker);
    }
}
