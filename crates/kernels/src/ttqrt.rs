//! Triangle-on-top-of-triangle elimination kernel `TTQRT` and its update
//! `TTMQR`.
//!
//! The TT-flavoured elimination (paper §II-B3) reduces a pair of *already
//! triangulated* tiles: both `R1` and `R2` are upper triangular, and the
//! Householder vectors annihilating `R2` inherit its triangular profile
//! (column `k` only touches rows `0..=k` of the bottom tile). This is the
//! kernel used by tree-shaped elimination orders (Bouwmeester et al.); it
//! does the same amount of *eliminations* as TSQRT with roughly half the
//! arithmetic, and unlike TSQRT its updates to different row pairs commute,
//! which is what enables reduction trees.

use crate::geqrt::{apply_tfac_in_place, extend_tfac_col};
use crate::householder::larfg;
use crate::micro;
use crate::workspace::Workspace;
use crate::ApplySide;
use tileqr_matrix::{ops, Matrix, MatrixError, Result, Scalar};

/// Eliminate the upper-triangular tile `r2` against the upper-triangular
/// tile `r1` (PLASMA `CORE_ttqrt`).
///
/// Both tiles are `n x n`. On exit `r1` holds the merged triangular factor
/// and the upper triangle of `r2` stores the (triangular) Householder block
/// `V2`. Returns the `n x n` `T` factor with `Q = I − V T Vᵀ`,
/// `V = [I; V2]`.
///
/// Allocating convenience wrapper over [`ttqrt_ws`].
pub fn ttqrt<T: Scalar>(r1: &mut Matrix<T>, r2: &mut Matrix<T>) -> Result<Matrix<T>> {
    let n = r1.rows();
    let mut tfac = Matrix::zeros(n, n);
    ttqrt_ws(r1, r2, &mut tfac, &mut Workspace::minimal())?;
    Ok(tfac)
}

/// [`ttqrt`] with caller-provided output and scratch: the `T` factor is
/// written into `tfac` (shape `n x n`, overwritten) and the reflector
/// accumulation vector is borrowed from `ws` — no heap allocation.
pub fn ttqrt_ws<T: Scalar>(
    r1: &mut Matrix<T>,
    r2: &mut Matrix<T>,
    tfac: &mut Matrix<T>,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let n = r1.rows();
    if !r1.is_square() {
        return Err(MatrixError::NotSquare { dims: r1.dims() });
    }
    if r2.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "ttqrt (tile pair)",
            lhs: r1.dims(),
            rhs: r2.dims(),
        });
    }
    if tfac.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "ttqrt (T factor shape)",
            lhs: (n, n),
            rhs: tfac.dims(),
        });
    }
    tfac.as_mut_slice().fill(T::ZERO);
    let (z, wv) = ws.factor_scratch(n);

    for k in 0..n {
        // Column k of R2 is nonzero only in rows 0..=k.
        let alpha = r1[(k, k)];
        let tau = {
            let ck = &mut r2.col_mut(k)[..=k];
            let h = larfg(alpha, ck);
            r1[(k, k)] = h.beta;
            h.tau
        };

        // Fused trailing update: all column dots against v_k in one
        // register-blocked sweep over R2's prefix rows, then one fused
        // rank-1 update — the dots/axpys only ever touch rows 0..=k.
        if tau != T::ZERO && k + 1 < n {
            let nt = n - k - 1;
            let tail = &mut r2.as_mut_slice()[k * n..];
            let (vkc, rest) = tail.split_at_mut(n);
            let vk = &vkc[..=k];
            let wv = &mut wv[..nt];
            micro::dotf(vk, rest, n, nt, wv);
            for (t, wj) in wv.iter_mut().enumerate() {
                let j = k + 1 + t;
                *wj = (r1[(k, j)] + *wj) * tau;
                r1[(k, j)] -= *wj;
            }
            micro::rank1f_sub(vk, wv, rest, n, k + 1, nt);
        }

        tfac[(k, k)] = tau;
        if tau != T::ZERO && k > 0 {
            {
                // v_i is supported on rows 0..=i, a subset of v_k's
                // support: prefix-length column dots (triangular fused dot).
                let vk = &r2.col(k)[..=k];
                micro::dotf_tri(vk, r2.as_slice(), n, k, 1, &mut z[..k]);
            }
            extend_tfac_col(tfac, k, tau, z, wv);
        }
    }
    Ok(())
}

/// Apply the block reflector from [`ttqrt`] to a stacked pair `[a1; a2]`,
/// exploiting the triangular structure of `v2`.
///
/// Allocating convenience wrapper over [`ttmqr_apply_ws`].
pub fn ttmqr_apply<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    ttmqr_apply_ws(v2, tfac, a1, a2, side, &mut Workspace::minimal())
}

/// [`ttmqr_apply`] borrowing the `W` block and `op(T)` column buffer from
/// `ws` — no heap allocation. The triangular profile of `V2` already makes
/// every dot/axpy a contiguous prefix, so no packing is needed here.
pub fn ttmqr_apply_ws<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    side: ApplySide,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let n = tfac.rows();
    if v2.dims() != (n, n) || a1.rows() != n || a2.rows() != n || a1.cols() != a2.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "ttmqr (shapes)",
            lhs: v2.dims(),
            rhs: a1.dims(),
        });
    }
    let nc = a1.cols();
    let (mut w, tmp) = ws.apply_scratch(n, nc);

    // W = A1 + V2^T A2, with V2 upper triangular (column i supported on
    // rows 0..=i): fused triangular column dots, then A1 folded in.
    for jc in 0..nc {
        let a2c = a2.col(jc);
        let wc = w.col_mut(jc);
        micro::dotf_tri(a2c, v2.as_slice(), n, n, 1, wc);
        for (wi, &ai) in wc.iter_mut().zip(a1.col(jc)) {
            *wi += ai;
        }
    }

    apply_tfac_in_place(tfac, &mut w, tmp, side);

    // [A1; A2] -= [I; V2] W: fused triangular multi-column axpy sweep
    // over V2's stored prefixes.
    for jc in 0..nc {
        let wc = w.col(jc);
        ops::axpy(-T::ONE, wc, a1.col_mut(jc));
        micro::axpyf_tri_sub(wc, v2.as_slice(), n, n, 1, a2.col_mut(jc));
    }
    Ok(())
}

/// Update-for-elimination for TT factorizations: `[a1; a2] ← Qᵀ [a1; a2]`.
pub fn ttmqr<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
) -> Result<()> {
    ttmqr_apply(v2, tfac, a1, a2, ApplySide::Transpose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsqrt::tsqrt;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::matmul;

    fn vstack(top: &Matrix<f64>, bot: &Matrix<f64>) -> Matrix<f64> {
        Matrix::from_fn(top.rows() + bot.rows(), top.cols(), |i, j| {
            if i < top.rows() {
                top[(i, j)]
            } else {
                bot[(i - top.rows(), j)]
            }
        })
    }

    fn form_q(v2: &Matrix<f64>, tfac: &Matrix<f64>) -> Matrix<f64> {
        let n = tfac.rows();
        let mut q = Matrix::identity(2 * n);
        let mut top = q.submatrix(0, 0, n, 2 * n).unwrap();
        let mut bot = q.submatrix(n, 0, n, 2 * n).unwrap();
        ttmqr_apply(v2, tfac, &mut top, &mut bot, ApplySide::NoTranspose).unwrap();
        q.set_submatrix(0, 0, &top).unwrap();
        q.set_submatrix(n, 0, &bot).unwrap();
        q
    }

    fn random_upper(n: usize, seed: u64) -> Matrix<f64> {
        random_matrix::<f64>(n, n, seed).upper_triangular()
    }

    #[test]
    fn eliminates_triangular_pair() {
        let n = 6;
        let r1_0 = random_upper(n, 1);
        let r2_0 = random_upper(n, 2);
        let mut r1 = r1_0.clone();
        let mut r2 = r2_0.clone();
        let t = ttqrt(&mut r1, &mut r2).unwrap();

        let q = form_q(&r2, &t);
        let qt_s = matmul(&q.transpose(), &vstack(&r1_0, &r2_0)).unwrap();
        let expect = vstack(&r1.upper_triangular(), &Matrix::zeros(n, n));
        assert!(qt_s.approx_eq(&expect, 1e-12));
        assert!(r1.approx_eq(&r1.upper_triangular(), 1e-15));
    }

    #[test]
    fn v_stays_upper_triangular() {
        let n = 5;
        let mut r1 = random_upper(n, 3);
        let mut r2 = random_upper(n, 4);
        let _ = ttqrt(&mut r1, &mut r2).unwrap();
        for j in 0..n {
            for i in j + 1..n {
                assert_eq!(r2[(i, j)], 0.0, "V2 fill-in at ({i},{j})");
            }
        }
    }

    #[test]
    fn matches_tsqrt_result_up_to_signs() {
        // TTQRT and TSQRT on the same (triangular) input produce R factors
        // equal up to row signs; |R| must match.
        let n = 5;
        let r1_0 = random_upper(n, 5);
        let r2_0 = random_upper(n, 6);

        let mut r1a = r1_0.clone();
        let mut r2a = r2_0.clone();
        let _ = ttqrt(&mut r1a, &mut r2a).unwrap();

        let mut r1b = r1_0.clone();
        let mut r2b = r2_0.clone();
        let _ = tsqrt(&mut r1b, &mut r2b).unwrap();

        for j in 0..n {
            for i in 0..=j {
                assert!(
                    (r1a[(i, j)].abs() - r1b[(i, j)].abs()).abs() < 1e-11,
                    "|R| mismatch at ({i},{j}): {} vs {}",
                    r1a[(i, j)],
                    r1b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn ttmqr_matches_explicit_qt() {
        let n = 4;
        let mut r1 = random_upper(n, 7);
        let mut r2 = random_upper(n, 8);
        let t = ttqrt(&mut r1, &mut r2).unwrap();
        let q = form_q(&r2, &t);

        let c1_0 = random_matrix::<f64>(n, 3, 9);
        let c2_0 = random_matrix::<f64>(n, 3, 10);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        ttmqr(&r2, &t, &mut c1, &mut c2).unwrap();
        let expect = matmul(&q.transpose(), &vstack(&c1_0, &c2_0)).unwrap();
        assert!(vstack(&c1, &c2).approx_eq(&expect, 1e-12));
    }

    #[test]
    fn round_trip_q_qt() {
        let n = 4;
        let mut r1 = random_upper(n, 11);
        let mut r2 = random_upper(n, 12);
        let t = ttqrt(&mut r1, &mut r2).unwrap();
        let c1_0 = random_matrix::<f64>(n, 2, 13);
        let c2_0 = random_matrix::<f64>(n, 2, 14);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        ttmqr_apply(&r2, &t, &mut c1, &mut c2, ApplySide::NoTranspose).unwrap();
        ttmqr_apply(&r2, &t, &mut c1, &mut c2, ApplySide::Transpose).unwrap();
        assert!(c1.approx_eq(&c1_0, 1e-12));
        assert!(c2.approx_eq(&c2_0, 1e-12));
    }

    #[test]
    fn shape_errors() {
        let mut r1 = Matrix::<f64>::zeros(3, 4);
        let mut r2 = Matrix::<f64>::zeros(4, 4);
        assert!(ttqrt(&mut r1, &mut r2).is_err());
        let mut r1 = Matrix::<f64>::identity(3);
        assert!(ttqrt(&mut r1, &mut r2).is_err());

        let v2 = Matrix::<f64>::identity(4);
        let t = Matrix::<f64>::zeros(4, 4);
        let mut a1 = Matrix::<f64>::zeros(4, 2);
        let mut a2 = Matrix::<f64>::zeros(3, 2);
        assert!(ttmqr(&v2, &t, &mut a1, &mut a2).is_err());
    }

    #[test]
    fn zero_bottom_triangle_is_noop() {
        let n = 4;
        let r1_0 = random_upper(n, 15);
        let mut r1 = r1_0.clone();
        let mut r2 = Matrix::<f64>::zeros(n, n);
        let t = ttqrt(&mut r1, &mut r2).unwrap();
        assert!(r1.approx_eq(&r1_0, 1e-15));
        for i in 0..n {
            assert_eq!(t[(i, i)], 0.0);
        }
    }
}
