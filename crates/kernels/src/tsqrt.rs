//! Triangle-on-top-of-square elimination kernel `TSQRT` and its update
//! `TSMQR`.
//!
//! `TSQRT` (paper Eq. 7–8, the TS-flavoured elimination step) computes the
//! QR factorization of the stacked pair
//!
//! ```text
//! [ R1 ]        R1: n x n upper triangular (already triangulated tile)
//! [ A2 ]        A2: m2 x n full tile
//! ```
//!
//! exploiting the structure: reflector `k` is `[e_k; v_k]` where `v_k` is a
//! dense `m2`-vector, so the implicit `V` of the block reflector is
//! `[I; V2]` with `V2` stored in `A2`'s place. On exit `R1` holds the new
//! triangular factor and `A2` holds `V2`.
//!
//! `TSMQR` (paper Eq. 9) applies the resulting `Qᵀ` (or `Q`) to a stacked
//! pair of tiles `[A1; A2]` on the right — the "update for elimination".

use crate::geqrt::{apply_tfac_in_place, extend_tfac_col};
use crate::householder::larfg;
use crate::micro;
use crate::workspace::Workspace;
use crate::ApplySide;
use tileqr_matrix::{ops, Matrix, MatrixError, Result, Scalar};

/// Eliminate tile `a2` against the triangular tile `r1` (PLASMA
/// `CORE_tsqrt`).
///
/// `r1` is `n x n` (upper triangular on entry and exit); `a2` is `m2 x n`
/// and on exit stores the Householder block `V2`. Returns the `n x n`
/// upper-triangular `T` factor of the block reflector `Q = I − V T Vᵀ`
/// with `V = [I; V2]`.
///
/// Allocating convenience wrapper over [`tsqrt_ws`].
pub fn tsqrt<T: Scalar>(r1: &mut Matrix<T>, a2: &mut Matrix<T>) -> Result<Matrix<T>> {
    let n = r1.rows();
    let mut tfac = Matrix::zeros(n, n);
    tsqrt_ws(r1, a2, &mut tfac, &mut Workspace::minimal())?;
    Ok(tfac)
}

/// [`tsqrt`] with caller-provided output and scratch: the `T` factor is
/// written into `tfac` (shape `n x n`, overwritten) and the reflector
/// accumulation vector is borrowed from `ws` — no heap allocation.
pub fn tsqrt_ws<T: Scalar>(
    r1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    tfac: &mut Matrix<T>,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let n = r1.rows();
    if !r1.is_square() {
        return Err(MatrixError::NotSquare { dims: r1.dims() });
    }
    if a2.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "tsqrt (column count)",
            lhs: r1.dims(),
            rhs: a2.dims(),
        });
    }
    if tfac.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "tsqrt (T factor shape)",
            lhs: (n, n),
            rhs: tfac.dims(),
        });
    }
    tfac.as_mut_slice().fill(T::ZERO);
    let m2 = a2.rows();
    let (z, wv) = ws.factor_scratch(n);

    for k in 0..n {
        // Reflector annihilating a2[:, k] against the diagonal entry r1[k,k].
        let alpha = r1[(k, k)];
        let tau = {
            let ck = a2.col_mut(k);
            let h = larfg(alpha, ck);
            r1[(k, k)] = h.beta;
            h.tau
        };

        // Apply H_k to trailing columns of the stacked pair: fused column
        // dots for all the w_j at once, the (strided) r1 row-k heads folded
        // in scalar-wise, then one rank-1 fan-out over V2's columns.
        if tau != T::ZERO && k + 1 < n {
            let nt = n - k - 1;
            let tail = &mut a2.as_mut_slice()[k * m2..];
            let (vk, rest) = tail.split_at_mut(m2);
            let wv = &mut wv[..nt];
            micro::dotf(vk, rest, m2, nt, wv);
            for (t, wj) in wv.iter_mut().enumerate() {
                let j = k + 1 + t;
                *wj = (r1[(k, j)] + *wj) * tau;
                r1[(k, j)] -= *wj;
            }
            micro::rank1f_sub(vk, wv, rest, m2, m2, nt);
        }

        // Extend T: the top identity block contributes nothing to V_i^T v_k
        // for i != k, so z reduces to V2 inner products.
        tfac[(k, k)] = tau;
        if tau != T::ZERO && k > 0 {
            {
                let vk = a2.col(k);
                micro::dotf(vk, a2.as_slice(), m2, k, &mut z[..k]);
            }
            extend_tfac_col(tfac, k, tau, z, wv);
        }
    }
    Ok(())
}

/// Apply the block reflector from [`tsqrt`] to a stacked pair `[a1; a2]`.
///
/// `v2` is the Householder block stored where the eliminated tile was,
/// `tfac` the `T` factor. `a1` is `n x nc`, `a2` is `m2 x nc`.
///
/// Allocating convenience wrapper over [`tsmqr_apply_ws`].
pub fn tsmqr_apply<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    tsmqr_apply_ws(v2, tfac, a1, a2, side, &mut Workspace::minimal())
}

/// [`tsmqr_apply`] borrowing all scratch from `ws`. The `W = V2ᵀA2`
/// accumulation runs as fused register-blocked column dots straight off
/// the tile storage — `V2`'s columns are already contiguous and
/// L1-resident at tile sizes, so the seed's `V2ᵀ` pack pass was pure
/// overhead (it is what sank the small-`b` update kernels); the update
/// sweeps are fused multi-column axpys.
pub fn tsmqr_apply_ws<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    side: ApplySide,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let n = tfac.rows();
    if v2.cols() != n || a1.rows() != n || a2.rows() != v2.rows() || a1.cols() != a2.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "tsmqr (shapes)",
            lhs: v2.dims(),
            rhs: a1.dims(),
        });
    }
    let nc = a1.cols();
    let m2 = v2.rows();
    let (mut w, tmp) = ws.apply_scratch(n, nc);

    // W = [I; V2]^T [A1; A2] = A1 + V2ᵀA2: fused column dots of each A2
    // column against V2's (contiguous) columns, then A1 folded in.
    for jc in 0..nc {
        let a2c = a2.col(jc);
        let wc = w.col_mut(jc);
        micro::dotf(a2c, v2.as_slice(), m2, n, wc);
        for (wi, &ai) in wc.iter_mut().zip(a1.col(jc)) {
            *wi += ai;
        }
    }

    // W = op(T) W.
    apply_tfac_in_place(tfac, &mut w, tmp, side);

    // [A1; A2] -= [I; V2] W: A1 gets W subtracted directly; A2 takes one
    // fused multi-column axpy sweep per column.
    for jc in 0..nc {
        let wc = w.col(jc);
        ops::axpy(-T::ONE, wc, a1.col_mut(jc));
        micro::axpyf_sub(wc, v2.as_slice(), m2, n, a2.col_mut(jc));
    }
    Ok(())
}

/// Update-for-elimination step (paper Eq. 9): `[a1; a2] ← Qᵀ [a1; a2]`
/// using the factorization produced by [`tsqrt`].
pub fn tsmqr<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
) -> Result<()> {
    tsmqr_apply(v2, tfac, a1, a2, ApplySide::Transpose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geqrt::geqrt;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::{matmul, orthogonality_defect};

    /// Stack two equal-width matrices vertically.
    fn vstack(top: &Matrix<f64>, bot: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(top.cols(), bot.cols());
        Matrix::from_fn(top.rows() + bot.rows(), top.cols(), |i, j| {
            if i < top.rows() {
                top[(i, j)]
            } else {
                bot[(i - top.rows(), j)]
            }
        })
    }

    /// Explicitly form the (n+m2) x (n+m2) Q of a TSQRT factorization.
    fn form_q(v2: &Matrix<f64>, tfac: &Matrix<f64>) -> Matrix<f64> {
        let n = tfac.rows();
        let m2 = v2.rows();
        let total = n + m2;
        let mut q = Matrix::identity(total);
        // Apply Q to each block column of the identity via tsmqr_apply.
        let mut top = q.submatrix(0, 0, n, total).unwrap();
        let mut bot = q.submatrix(n, 0, m2, total).unwrap();
        tsmqr_apply(v2, tfac, &mut top, &mut bot, ApplySide::NoTranspose).unwrap();
        q.set_submatrix(0, 0, &top).unwrap();
        q.set_submatrix(n, 0, &bot).unwrap();
        q
    }

    #[test]
    fn eliminates_square_block() {
        let n = 6;
        // Build a triangulated top tile first.
        let mut top = random_matrix::<f64>(n, n, 1);
        let _ = geqrt(&mut top).unwrap();
        let r1_0 = top.upper_triangular();
        let a2_0 = random_matrix::<f64>(n, n, 2);

        let mut r1 = r1_0.clone();
        let mut a2 = a2_0.clone();
        let t = tsqrt(&mut r1, &mut a2).unwrap();

        // [R1_new; 0] must equal Q^T [R1_0; A2_0].
        let stacked = vstack(&r1_0, &a2_0);
        let q = form_q(&a2, &t);
        assert!(orthogonality_defect(&q).unwrap() < 1e-13);
        let qt_s = matmul(&q.transpose(), &stacked).unwrap();
        let expect = vstack(&r1.upper_triangular(), &Matrix::zeros(n, n));
        assert!(qt_s.approx_eq(&expect, 1e-12));
        // R1 stays upper triangular.
        assert!(r1.approx_eq(&r1.upper_triangular(), 1e-15));
    }

    #[test]
    fn qr_reconstructs_stack() {
        let n = 5;
        let mut top = random_matrix::<f64>(n, n, 3);
        let _ = geqrt(&mut top).unwrap();
        let r1_0 = top.upper_triangular();
        let a2_0 = random_matrix::<f64>(n, n, 4);

        let mut r1 = r1_0.clone();
        let mut a2 = a2_0.clone();
        let t = tsqrt(&mut r1, &mut a2).unwrap();
        let q = form_q(&a2, &t);
        let r_full = vstack(&r1, &Matrix::zeros(n, n));
        let qr = matmul(&q, &r_full).unwrap();
        assert!(qr.approx_eq(&vstack(&r1_0, &a2_0), 1e-12));
    }

    #[test]
    fn tall_bottom_tile() {
        // TSQRT also handles m2 != n bottom blocks (used by tall tiles).
        let n = 4;
        let m2 = 9;
        let mut r1 = random_matrix::<f64>(n, n, 5).upper_triangular();
        for i in 0..n {
            r1[(i, i)] += 2.0; // keep it comfortably nonsingular
        }
        let a2_0 = random_matrix::<f64>(m2, n, 6);
        let r1_0 = r1.clone();
        let mut a2 = a2_0.clone();
        let t = tsqrt(&mut r1, &mut a2).unwrap();
        let q = form_q(&a2, &t);
        let qr = matmul(&q, &vstack(&r1, &Matrix::zeros(m2, n))).unwrap();
        assert!(qr.approx_eq(&vstack(&r1_0, &a2_0), 1e-12));
    }

    #[test]
    fn tsmqr_matches_explicit_qt() {
        let n = 5;
        let mut r1 = random_matrix::<f64>(n, n, 7).upper_triangular();
        let mut a2 = random_matrix::<f64>(n, n, 8);
        let t = tsqrt(&mut r1, &mut a2).unwrap();
        let q = form_q(&a2, &t);

        let c1_0 = random_matrix::<f64>(n, 3, 9);
        let c2_0 = random_matrix::<f64>(n, 3, 10);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tsmqr(&a2, &t, &mut c1, &mut c2).unwrap();

        let expect = matmul(&q.transpose(), &vstack(&c1_0, &c2_0)).unwrap();
        assert!(vstack(&c1, &c2).approx_eq(&expect, 1e-12));
    }

    #[test]
    fn apply_q_then_qt_round_trip() {
        let n = 4;
        let mut r1 = random_matrix::<f64>(n, n, 11).upper_triangular();
        let mut a2 = random_matrix::<f64>(n, n, 12);
        let t = tsqrt(&mut r1, &mut a2).unwrap();
        let c1_0 = random_matrix::<f64>(n, 2, 13);
        let c2_0 = random_matrix::<f64>(n, 2, 14);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tsmqr_apply(&a2, &t, &mut c1, &mut c2, ApplySide::NoTranspose).unwrap();
        tsmqr_apply(&a2, &t, &mut c1, &mut c2, ApplySide::Transpose).unwrap();
        assert!(c1.approx_eq(&c1_0, 1e-12));
        assert!(c2.approx_eq(&c2_0, 1e-12));
    }

    #[test]
    fn shape_errors() {
        let mut rect = Matrix::<f64>::zeros(3, 4);
        let mut a2 = Matrix::<f64>::zeros(4, 4);
        assert!(tsqrt(&mut rect, &mut a2).is_err());
        let mut r1 = Matrix::<f64>::identity(3);
        assert!(tsqrt(&mut r1, &mut a2).is_err());

        let v2 = Matrix::<f64>::zeros(4, 4);
        let t = Matrix::<f64>::zeros(4, 4);
        let mut a1_bad = Matrix::<f64>::zeros(3, 2);
        let mut a2_ok = Matrix::<f64>::zeros(4, 2);
        assert!(tsmqr(&v2, &t, &mut a1_bad, &mut a2_ok).is_err());
        let mut a1_ok = Matrix::<f64>::zeros(4, 2);
        let mut a2_bad = Matrix::<f64>::zeros(5, 2);
        assert!(tsmqr(&v2, &t, &mut a1_ok, &mut a2_bad).is_err());
    }

    #[test]
    fn ws_variants_bit_identical_with_dirty_reuse() {
        // A reused workspace (never zeroed between calls) must reproduce
        // the fresh-scratch results byte for byte.
        let n = 6;
        let mut ws = Workspace::new(n, n);
        for seed in 0..5 {
            let r1_0 = random_matrix::<f64>(n, n, 20 + seed).upper_triangular();
            let a2_0 = random_matrix::<f64>(n, n, 40 + seed);

            let mut r1_ref = r1_0.clone();
            let mut a2_ref = a2_0.clone();
            let t_ref = tsqrt(&mut r1_ref, &mut a2_ref).unwrap();

            let mut r1 = r1_0.clone();
            let mut a2 = a2_0.clone();
            let mut t = Matrix::filled(n, n, f64::NAN);
            tsqrt_ws(&mut r1, &mut a2, &mut t, &mut ws).unwrap();
            assert_eq!(r1, r1_ref);
            assert_eq!(a2, a2_ref);
            assert_eq!(t, t_ref);

            let c1_0 = random_matrix::<f64>(n, 4, 60 + seed);
            let c2_0 = random_matrix::<f64>(n, 4, 80 + seed);
            let mut c1_ref = c1_0.clone();
            let mut c2_ref = c2_0.clone();
            tsmqr_apply(&a2, &t, &mut c1_ref, &mut c2_ref, ApplySide::Transpose).unwrap();
            let mut c1 = c1_0.clone();
            let mut c2 = c2_0.clone();
            tsmqr_apply_ws(&a2, &t, &mut c1, &mut c2, ApplySide::Transpose, &mut ws).unwrap();
            assert_eq!(c1, c1_ref);
            assert_eq!(c2, c2_ref);
        }
        assert_eq!(ws.resizes(), 0, "tile-sized workspace must not grow");
    }

    #[test]
    fn zero_bottom_tile_is_noop() {
        let n = 4;
        let r1_0 = random_matrix::<f64>(n, n, 15).upper_triangular();
        let mut r1 = r1_0.clone();
        let mut a2 = Matrix::<f64>::zeros(n, n);
        let t = tsqrt(&mut r1, &mut a2).unwrap();
        // Nothing to eliminate: R1 unchanged, taus zero.
        assert!(r1.approx_eq(&r1_0, 1e-15));
        for i in 0..n {
            assert_eq!(t[(i, i)], 0.0);
        }
    }
}
