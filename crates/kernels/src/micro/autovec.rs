//! AVX2 multiversioning of the default scalar-blocked backend (x86-64).
//!
//! The [`super::block::ScalarCore`] skeletons are deliberately written so
//! LLVM's autovectorizer can map the lane structure onto whatever vector
//! width the target allows. Under the default x86-64 target that is SSE2
//! (2 doubles); this module compiles the *same safe code* a second time
//! inside `#[target_feature(enable = "avx2")]` functions and dispatches to
//! it behind runtime detection, so the default backend runs 4-wide on any
//! AVX2 host without the `simd` cargo feature.
//!
//! **This is still the `Blocked` backend, bit for bit.** Vectorizing the
//! [`super::LANES`]-lane loops packs independent scalar operations into
//! vector lanes without changing any operand pairing or rounding, and
//! Rust never licenses `mul+add → fma` contraction (that requires
//! explicit `mul_add`/fast-math, neither of which appears in the scalar
//! core). So the AVX2 monomorphization produces results bit-identical to
//! the plain build — on hosts with and without AVX2 alike — and the
//! determinism contract of [`crate::micro`] is untouched. The `simd`
//! feature's hand-written FMA backend is the one that rounds differently.
//!
//! Unsafety here is the same two narrow kinds as `simd.rs` and nothing
//! else: `TypeId`-checked slice reinterpretation `&[T] → &[f64]`, and
//! calls into `#[target_feature]` functions after `is_x86_feature_detected!`.

use super::block::ScalarCore;
use super::{axpyf_impl, axpyf_lo_impl, axpyf_tri_impl};
use super::{dotf_impl, dotf_lo_impl, dotf_tri_impl, larf_head_impl, rank1f_impl};
use std::any::TypeId;
use std::sync::OnceLock;
use tileqr_matrix::Scalar;

/// Does the AVX2 monomorphization apply to element type `T` on this host?
///
/// True iff `T` is `f64` and the CPU reports AVX2. Not affected by
/// [`super::force_backend`]: this path *is* the `Blocked` backend (same
/// results to the bit), just compiled at a wider vector width.
pub(crate) fn enabled<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<f64>() && detect()
}

fn detect() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Reinterpret `&[T]` as `&[f64]`.
#[inline(always)]
#[allow(unsafe_code)]
pub(crate) fn cast<T: 'static>(x: &[T]) -> &[f64] {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
    // SAFETY: T is f64 (checked above): identical layout, alignment, and
    // bit-validity, so reinterpreting the same region is a no-op.
    unsafe { core::slice::from_raw_parts(x.as_ptr().cast::<f64>(), x.len()) }
}

/// Reinterpret `&mut [T]` as `&mut [f64]`.
#[inline(always)]
#[allow(unsafe_code)]
pub(crate) fn cast_mut<T: 'static>(x: &mut [T]) -> &mut [f64] {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
    // SAFETY: as in `cast`; the unique borrow is carried through.
    unsafe { core::slice::from_raw_parts_mut(x.as_mut_ptr().cast::<f64>(), x.len()) }
}

/// SAFETY-pattern note: every `unsafe { *_avx2(..) }` call below is
/// preceded by an `assert!(enabled::<T>())`, which implies AVX2 was
/// detected at runtime on this CPU. The inner functions contain only safe
/// code; `target_feature` is what makes the *call* unsafe.
macro_rules! gated {
    ($call:expr) => {{
        #[allow(unsafe_code)]
        // SAFETY: `enabled` (asserted by the caller one line up) verified
        // AVX2 via `is_x86_feature_detected!`.
        unsafe {
            $call
        }
    }};
}

pub(crate) fn dotf<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(dotf_avx2(cast(x), cast(ys), ld, n, cast_mut(out)))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn dotf_avx2(x: &[f64], ys: &[f64], ld: usize, n: usize, out: &mut [f64]) {
    dotf_impl::<f64, ScalarCore>(x, ys, ld, n, out)
}

pub(crate) fn dotf_tri<T: Scalar>(
    x: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    out: &mut [T],
) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(dotf_tri_avx2(cast(x), cast(ys), ld, n, len0, cast_mut(out)))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn dotf_tri_avx2(x: &[f64], ys: &[f64], ld: usize, n: usize, len0: usize, out: &mut [f64]) {
    dotf_tri_impl::<f64, ScalarCore>(x, ys, ld, n, len0, out)
}

pub(crate) fn dotf_lo<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(dotf_lo_avx2(cast(x), cast(ys), ld, n, cast_mut(out)))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn dotf_lo_avx2(x: &[f64], ys: &[f64], ld: usize, n: usize, out: &mut [f64]) {
    dotf_lo_impl::<f64, ScalarCore>(x, ys, ld, n, out)
}

pub(crate) fn axpyf_sub<T: Scalar>(alphas: &[T], ys: &[T], ld: usize, n: usize, y: &mut [T]) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(axpyf_sub_avx2(cast(alphas), cast(ys), ld, n, cast_mut(y)))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn axpyf_sub_avx2(alphas: &[f64], ys: &[f64], ld: usize, n: usize, y: &mut [f64]) {
    axpyf_impl::<f64, ScalarCore, true>(alphas, ys, ld, n, y)
}

pub(crate) fn axpyf_tri_add<T: Scalar>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(axpyf_tri_add_avx2(
        cast(alphas),
        cast(ys),
        ld,
        n,
        len0,
        cast_mut(y)
    ))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn axpyf_tri_add_avx2(
    alphas: &[f64],
    ys: &[f64],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [f64],
) {
    axpyf_tri_impl::<f64, ScalarCore, false>(alphas, ys, ld, n, len0, y)
}

pub(crate) fn axpyf_tri_sub<T: Scalar>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(axpyf_tri_sub_avx2(
        cast(alphas),
        cast(ys),
        ld,
        n,
        len0,
        cast_mut(y)
    ))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn axpyf_tri_sub_avx2(
    alphas: &[f64],
    ys: &[f64],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [f64],
) {
    axpyf_tri_impl::<f64, ScalarCore, true>(alphas, ys, ld, n, len0, y)
}

pub(crate) fn axpyf_lo_sub<T: Scalar>(alphas: &[T], ys: &[T], ld: usize, n: usize, y: &mut [T]) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(axpyf_lo_sub_avx2(
        cast(alphas),
        cast(ys),
        ld,
        n,
        cast_mut(y)
    ))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn axpyf_lo_sub_avx2(alphas: &[f64], ys: &[f64], ld: usize, n: usize, y: &mut [f64]) {
    axpyf_lo_impl::<f64, ScalarCore, true>(alphas, ys, ld, n, y)
}

pub(crate) fn rank1f_sub<T: Scalar>(
    x: &[T],
    w: &[T],
    ys: &mut [T],
    ld: usize,
    len: usize,
    n: usize,
) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(rank1f_sub_avx2(cast(x), cast(w), cast_mut(ys), ld, len, n))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn rank1f_sub_avx2(x: &[f64], w: &[f64], ys: &mut [f64], ld: usize, len: usize, n: usize) {
    rank1f_impl::<f64, ScalarCore>(x, w, ys, ld, len, n)
}

pub(crate) fn larf_head<T: Scalar>(vk: &[T], tau: T, cols: &mut [T], ld: usize, n: usize) {
    assert!(enabled::<T>(), "avx2 autovec path entered without gating");
    gated!(larf_head_avx2(
        cast(vk),
        tau.to_f64(),
        cast_mut(cols),
        ld,
        n
    ))
}

#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn larf_head_avx2(vk: &[f64], tau: f64, cols: &mut [f64], ld: usize, n: usize) {
    larf_head_impl::<f64, ScalarCore>(vk, tau, cols, ld, n)
}
