//! AVX2+FMA backend (`simd` cargo feature, x86-64, `f64` only).
//!
//! This file is the only place in the crate allowed to use `unsafe`
//! (the crate root carries `#![deny(unsafe_code)]`; each use here is an
//! item-scoped `#[allow]` with a SAFETY argument). Exactly two kinds of
//! unsafety appear:
//!
//! 1. **Slice reinterpretation** — the public primitives are generic over
//!    [`Scalar`], so the `f64`-only intrinsic path receives `&[T]` and
//!    casts to `&[f64]` after a `TypeId` equality check ([`enabled`]
//!    returns `false` for every other `T`, and each wrapper re-asserts).
//!    Same size, same alignment, same validity invariants: the cast is a
//!    no-op reinterpretation.
//! 2. **`#[target_feature]` calls** — the blocking skeletons from
//!    [`super`] are monomorphized inside `#[target_feature(enable =
//!    "avx2,fma")]` functions so the [`AvxCore`] register blocks inline
//!    into feature-enabled code. [`enabled`] gates every entry on
//!    `is_x86_feature_detected!`, so the CPU support precondition holds.
//!
//! Determinism: the instruction sequence is fixed per argument shape —
//! vector lanes accumulate in the same fixed pattern as the scalar
//! backend and reduce `(a0+a1)+(a2+a3)` (pairwise across 128-bit halves),
//! with scalar `mul_add` tails. Results differ from the `block` backend
//! by FMA rounding only.

use super::{axpyf_impl, axpyf_lo_impl, axpyf_tri_impl, Core};
use super::{dotf_impl, dotf_lo_impl, dotf_tri_impl, larf_head_impl, rank1f_impl};
use core::arch::x86_64::*;
use std::any::TypeId;
use std::sync::OnceLock;
use tileqr_matrix::Scalar;

/// Does the simd backend apply to element type `T` on this host right now?
///
/// True iff `T` is `f64`, the CPU reports AVX2+FMA, and the test hook
/// ([`super::force_backend`]) has not pinned the scalar backend.
pub(crate) fn enabled<T: 'static>() -> bool {
    if TypeId::of::<T>() != TypeId::of::<f64>() {
        return false;
    }
    match super::forced() {
        1 => false,
        _ => detect(),
    }
}

fn detect() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

/// Reinterpret `&[T]` as `&[f64]`.
#[inline(always)]
#[allow(unsafe_code)]
fn cast<T: 'static>(x: &[T]) -> &[f64] {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
    // SAFETY: T is f64 (checked above): identical layout, alignment, and
    // bit-validity, so reinterpreting the same region is a no-op.
    unsafe { core::slice::from_raw_parts(x.as_ptr().cast::<f64>(), x.len()) }
}

/// Reinterpret `&mut [T]` as `&mut [f64]`.
#[inline(always)]
#[allow(unsafe_code)]
fn cast_mut<T: 'static>(x: &mut [T]) -> &mut [f64] {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
    // SAFETY: as in `cast`; the unique borrow is carried through.
    unsafe { core::slice::from_raw_parts_mut(x.as_mut_ptr().cast::<f64>(), x.len()) }
}

// Each primitive gets a generic wrapper (re-checks [`enabled`] — one
// `TypeId` compare plus a cached feature probe — so the feature
// precondition of the inner call is locally guaranteed) and one
// `#[target_feature]` monomorphization of the shared blocking skeleton,
// so the [`AvxCore`] register blocks inline into feature-enabled code.

/// SAFETY-pattern note: every `unsafe { *_avx(..) }` call below is
/// preceded by an `assert!(enabled::<T>())`, which implies AVX2+FMA were
/// detected at runtime on this CPU.
macro_rules! gated {
    ($call:expr) => {{
        #[allow(unsafe_code)]
        // SAFETY: `enabled` (asserted by the caller one line up) verified
        // AVX2+FMA via `is_x86_feature_detected!`.
        unsafe {
            $call
        }
    }};
}

pub(crate) fn dotf<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(dotf_avx(cast(x), cast(ys), ld, n, cast_mut(out)))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn dotf_avx(x: &[f64], ys: &[f64], ld: usize, n: usize, out: &mut [f64]) {
    dotf_impl::<f64, AvxCore>(x, ys, ld, n, out)
}

pub(crate) fn dotf_tri<T: Scalar>(
    x: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    out: &mut [T],
) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(dotf_tri_avx(cast(x), cast(ys), ld, n, len0, cast_mut(out)))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn dotf_tri_avx(x: &[f64], ys: &[f64], ld: usize, n: usize, len0: usize, out: &mut [f64]) {
    dotf_tri_impl::<f64, AvxCore>(x, ys, ld, n, len0, out)
}

pub(crate) fn dotf_lo<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(dotf_lo_avx(cast(x), cast(ys), ld, n, cast_mut(out)))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn dotf_lo_avx(x: &[f64], ys: &[f64], ld: usize, n: usize, out: &mut [f64]) {
    dotf_lo_impl::<f64, AvxCore>(x, ys, ld, n, out)
}

pub(crate) fn axpyf_sub<T: Scalar>(alphas: &[T], ys: &[T], ld: usize, n: usize, y: &mut [T]) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(axpyf_sub_avx(cast(alphas), cast(ys), ld, n, cast_mut(y)))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn axpyf_sub_avx(alphas: &[f64], ys: &[f64], ld: usize, n: usize, y: &mut [f64]) {
    axpyf_impl::<f64, AvxCore, true>(alphas, ys, ld, n, y)
}

pub(crate) fn axpyf_tri_add<T: Scalar>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(axpyf_tri_add_avx(
        cast(alphas),
        cast(ys),
        ld,
        n,
        len0,
        cast_mut(y)
    ))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn axpyf_tri_add_avx(
    alphas: &[f64],
    ys: &[f64],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [f64],
) {
    axpyf_tri_impl::<f64, AvxCore, false>(alphas, ys, ld, n, len0, y)
}

pub(crate) fn axpyf_tri_sub<T: Scalar>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(axpyf_tri_sub_avx(
        cast(alphas),
        cast(ys),
        ld,
        n,
        len0,
        cast_mut(y)
    ))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn axpyf_tri_sub_avx(
    alphas: &[f64],
    ys: &[f64],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [f64],
) {
    axpyf_tri_impl::<f64, AvxCore, true>(alphas, ys, ld, n, len0, y)
}

pub(crate) fn axpyf_lo_sub<T: Scalar>(alphas: &[T], ys: &[T], ld: usize, n: usize, y: &mut [T]) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(axpyf_lo_sub_avx(cast(alphas), cast(ys), ld, n, cast_mut(y)))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn axpyf_lo_sub_avx(alphas: &[f64], ys: &[f64], ld: usize, n: usize, y: &mut [f64]) {
    axpyf_lo_impl::<f64, AvxCore, true>(alphas, ys, ld, n, y)
}

pub(crate) fn rank1f_sub<T: Scalar>(
    x: &[T],
    w: &[T],
    ys: &mut [T],
    ld: usize,
    len: usize,
    n: usize,
) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(rank1f_sub_avx(cast(x), cast(w), cast_mut(ys), ld, len, n))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn rank1f_sub_avx(x: &[f64], w: &[f64], ys: &mut [f64], ld: usize, len: usize, n: usize) {
    rank1f_impl::<f64, AvxCore>(x, w, ys, ld, len, n)
}

pub(crate) fn larf_head<T: Scalar>(vk: &[T], tau: T, cols: &mut [T], ld: usize, n: usize) {
    assert!(enabled::<T>(), "simd backend entered without gating");
    gated!(larf_head_avx(cast(vk), tau.to_f64(), cast_mut(cols), ld, n))
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)]
unsafe fn larf_head_avx(vk: &[f64], tau: f64, cols: &mut [f64], ld: usize, n: usize) {
    larf_head_impl::<f64, AvxCore>(vk, tau, cols, ld, n)
}

/// Register core in AVX2+FMA intrinsics: one `f64x4` accumulator per
/// column, FMA-contracted multiply-adds, scalar `mul_add` tails.
///
/// These methods contain `unsafe` intrinsic blocks that are only correct
/// on an AVX2+FMA CPU; they are reachable solely through the
/// `#[target_feature]` monomorphizations above, which [`enabled`] gates.
pub(crate) struct AvxCore;

/// Horizontal sum of a `f64x4`, fixed tree `(a0+a1)+(a2+a3)` via the
/// 128-bit halves.
#[inline(always)]
#[allow(unsafe_code)]
fn hsum(v: __m256d) -> f64 {
    // SAFETY: AVX intrinsics; callers run under `target_feature(avx2)`.
    unsafe {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let s = _mm_add_pd(lo, hi); // (a0+a2, a1+a3)
        let t = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
        _mm_cvtsd_f64(t)
    }
}

impl Core<f64> for AvxCore {
    #[inline(always)]
    #[allow(unsafe_code)]
    fn dot1(x: &[f64], c: &[f64]) -> f64 {
        let n = x.len();
        let c = &c[..n];
        // SAFETY: loads stay in-bounds (`i + 4 <= n` guards every 4-wide
        // load of slices of length >= n); AVX2+FMA per module contract.
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                let cv = _mm256_loadu_pd(c.as_ptr().add(i));
                acc = _mm256_fmadd_pd(xv, cv, acc);
                i += 4;
            }
            let mut s = hsum(acc);
            while i < n {
                s = x[i].mul_add(c[i], s);
                i += 1;
            }
            s
        }
    }

    #[inline(always)]
    #[allow(unsafe_code)]
    fn dot4(x: &[f64], c0: &[f64], c1: &[f64], c2: &[f64], c3: &[f64]) -> [f64; 4] {
        let n = x.len();
        let (c0, c1, c2, c3) = (&c0[..n], &c1[..n], &c2[..n], &c3[..n]);
        // SAFETY: as in `dot1`; each column slice has length >= n.
        unsafe {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(c0.as_ptr().add(i)), a0);
                a1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(c1.as_ptr().add(i)), a1);
                a2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(c2.as_ptr().add(i)), a2);
                a3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(c3.as_ptr().add(i)), a3);
                i += 4;
            }
            let mut s = [hsum(a0), hsum(a1), hsum(a2), hsum(a3)];
            while i < n {
                let xv = x[i];
                s[0] = xv.mul_add(c0[i], s[0]);
                s[1] = xv.mul_add(c1[i], s[1]);
                s[2] = xv.mul_add(c2[i], s[2]);
                s[3] = xv.mul_add(c3[i], s[3]);
                i += 1;
            }
            s
        }
    }

    #[inline(always)]
    #[allow(unsafe_code)]
    fn axpy1<const SUB: bool>(a: f64, c: &[f64], y: &mut [f64]) {
        let n = y.len();
        let c = &c[..n];
        let a = if SUB { -a } else { a };
        // SAFETY: in-bounds 4-wide loads/stores under `i + 4 <= n`.
        unsafe {
            let av = _mm256_set1_pd(a);
            let mut i = 0;
            while i + 4 <= n {
                let yv = _mm256_loadu_pd(y.as_ptr().add(i));
                let cv = _mm256_loadu_pd(c.as_ptr().add(i));
                _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_fmadd_pd(av, cv, yv));
                i += 4;
            }
            while i < n {
                y[i] = a.mul_add(c[i], y[i]);
                i += 1;
            }
        }
    }

    #[inline(always)]
    #[allow(unsafe_code)]
    fn axpy4<const SUB: bool>(
        a: [f64; 4],
        c0: &[f64],
        c1: &[f64],
        c2: &[f64],
        c3: &[f64],
        y: &mut [f64],
    ) {
        let n = y.len();
        let (c0, c1, c2, c3) = (&c0[..n], &c1[..n], &c2[..n], &c3[..n]);
        let s = if SUB { -1.0 } else { 1.0 };
        // SAFETY: in-bounds 4-wide loads/stores under `i + 4 <= n`.
        unsafe {
            let a0 = _mm256_set1_pd(s * a[0]);
            let a1 = _mm256_set1_pd(s * a[1]);
            let a2 = _mm256_set1_pd(s * a[2]);
            let a3 = _mm256_set1_pd(s * a[3]);
            let mut i = 0;
            while i + 4 <= n {
                let mut yv = _mm256_loadu_pd(y.as_ptr().add(i));
                yv = _mm256_fmadd_pd(a0, _mm256_loadu_pd(c0.as_ptr().add(i)), yv);
                yv = _mm256_fmadd_pd(a1, _mm256_loadu_pd(c1.as_ptr().add(i)), yv);
                yv = _mm256_fmadd_pd(a2, _mm256_loadu_pd(c2.as_ptr().add(i)), yv);
                yv = _mm256_fmadd_pd(a3, _mm256_loadu_pd(c3.as_ptr().add(i)), yv);
                _mm256_storeu_pd(y.as_mut_ptr().add(i), yv);
                i += 4;
            }
            while i < n {
                let mut t = y[i];
                t = (s * a[0]).mul_add(c0[i], t);
                t = (s * a[1]).mul_add(c1[i], t);
                t = (s * a[2]).mul_add(c2[i], t);
                t = (s * a[3]).mul_add(c3[i], t);
                y[i] = t;
                i += 1;
            }
        }
    }

    #[inline(always)]
    #[allow(unsafe_code)]
    fn rank1_1(x: &[f64], w: f64, c: &mut [f64]) {
        let n = c.len();
        let x = &x[..n];
        // SAFETY: in-bounds 4-wide loads/stores under `i + 4 <= n`.
        unsafe {
            let wv = _mm256_set1_pd(w);
            let mut i = 0;
            while i + 4 <= n {
                let cv = _mm256_loadu_pd(c.as_ptr().add(i));
                let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                _mm256_storeu_pd(c.as_mut_ptr().add(i), _mm256_fnmadd_pd(wv, xv, cv));
                i += 4;
            }
            while i < n {
                c[i] = (-w).mul_add(x[i], c[i]);
                i += 1;
            }
        }
    }

    #[inline(always)]
    #[allow(unsafe_code)]
    fn rank1_4(
        x: &[f64],
        w: [f64; 4],
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
        c3: &mut [f64],
    ) {
        let n = c0.len();
        let x = &x[..n];
        // SAFETY: in-bounds 4-wide loads/stores under `i + 4 <= n`; the
        // four column slices are disjoint by the skeleton's split_at_mut.
        unsafe {
            let w0 = _mm256_set1_pd(w[0]);
            let w1 = _mm256_set1_pd(w[1]);
            let w2 = _mm256_set1_pd(w[2]);
            let w3 = _mm256_set1_pd(w[3]);
            let mut i = 0;
            while i + 4 <= n {
                let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                let v0 = _mm256_loadu_pd(c0.as_ptr().add(i));
                let v1 = _mm256_loadu_pd(c1.as_ptr().add(i));
                let v2 = _mm256_loadu_pd(c2.as_ptr().add(i));
                let v3 = _mm256_loadu_pd(c3.as_ptr().add(i));
                _mm256_storeu_pd(c0.as_mut_ptr().add(i), _mm256_fnmadd_pd(w0, xv, v0));
                _mm256_storeu_pd(c1.as_mut_ptr().add(i), _mm256_fnmadd_pd(w1, xv, v1));
                _mm256_storeu_pd(c2.as_mut_ptr().add(i), _mm256_fnmadd_pd(w2, xv, v2));
                _mm256_storeu_pd(c3.as_mut_ptr().add(i), _mm256_fnmadd_pd(w3, xv, v3));
                i += 4;
            }
            while i < n {
                let xv = x[i];
                c0[i] = (-w[0]).mul_add(xv, c0[i]);
                c1[i] = (-w[1]).mul_add(xv, c1[i]);
                c2[i] = (-w[2]).mul_add(xv, c2[i]);
                c3[i] = (-w[3]).mul_add(xv, c3[i]);
                i += 1;
            }
        }
    }
}
