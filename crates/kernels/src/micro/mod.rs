//! Register-blocked microkernel layer shared by every tile kernel.
//!
//! The `_ws` kernels in this crate all reduce to a handful of level-1.5
//! BLAS shapes: fused multi-column dots (`W = VᵀC`), fused multi-column
//! axpys (`C -= V·W`), rank-1 fan-outs (the trailing update of a single
//! reflector), and their trapezoidal variants for the TT/TS tile
//! structures. The seed implementation ran each of these as one scalar
//! `dot`/`axpy` per column — a latency-bound chain of dependent adds that
//! LLVM cannot vectorize (strict FP semantics forbid reassociation).
//!
//! This module restructures those loops around two blocking levels:
//!
//! * **Register level** — dots carry [`LANES`] independent accumulators
//!   (the reduction tree is fixed: `(a0+a1)+(a2+a3)`), and all primitives
//!   fuse [`NR`] columns per pass so each load of the shared vector feeds
//!   `NR` multiply-adds. The fused loop bodies are branch-free and
//!   autovectorize on the safe backend.
//! * **Cache level** — the dense primitives walk long vectors in
//!   [`KC`]-element strips: one strip of the shared vector is reused
//!   across *all* columns while it is L1-resident (`(NR+1)·KC·8` bytes ≈
//!   20 KiB per working set, inside a 32 KiB L1d). Tile-shaped operands
//!   (`b ≤ 64`) fit in a single strip, so the strip loop only engages on
//!   the tall panels of `geqrt_ib_apply` and dense right-hand sides.
//!
//! Two backends sit behind one dispatch point:
//!
//! * `block` — safe scalar-blocked code, the default everywhere. On
//!   x86-64 hosts with AVX2 the same skeletons run through an
//!   `#[target_feature(enable = "avx2")]` monomorphization (`autovec`)
//!   picked by runtime detection — bit-identical results, just compiled
//!   at 4-wide vector width instead of the baseline SSE2.
//! * `simd` (cargo feature `simd`, x86-64 only) — `core::arch` AVX2+FMA
//!   intrinsics with runtime feature detection, `f64` only.
//!
//! `autovec.rs` and `simd.rs` are the only places in the crate that use
//! `unsafe` (see the crate-level `#![deny(unsafe_code)]` and the scoped,
//! documented allows in those two files).
//!
//! **Determinism contract**: for a fixed backend, every primitive
//! performs a fixed sequence of operations determined solely by the
//! argument shapes — results are bit-reproducible run to run and across
//! sequential/parallel executors (which is what the testkit bit-identity
//! sweeps assert). That contract is over *shapes*, not over one global
//! loop order: below [`NAIVE_MAX_WORK`] touched elements a primitive runs
//! a plain sequential per-column loop (the blocked machinery costs more
//! than it saves there), and at or above it the lane-blocked order with
//! the fixed `(a0+a1)+(a2+a3)` reduction tree applies. Both tiers are
//! chosen by shape alone, never by data or host. The two backends differ
//! from each other by rounding only (FMA contracts `a·b+c` to one
//! rounding; the scalar backend keeps two), so cross-backend agreement is
//! held to the condition-scaled oracle budgets instead of bit equality.
//!
//! All primitives take column-major panels as a base slice plus a column
//! stride `ld` (column `j` starts at `ys[j * ld]`), which lets kernels
//! pass tile storage directly without packing: at tile sizes the columns
//! are already contiguous and L1-resident, so a pack pass is pure
//! overhead (it is what caused the seed's `ttmqr b=8` regression).

use tileqr_matrix::Scalar;

#[cfg(target_arch = "x86_64")]
mod autovec;
mod block;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;

/// Columns fused per pass (the BLIS-style `axpyf`/`dotf` fuse factor).
pub const NR: usize = 4;
/// Independent accumulator lanes per dot product (breaks the FP add
/// latency chain; matches one AVX2 `f64x4` register on the simd backend).
pub const LANES: usize = 4;
/// L1 strip length (elements) for the dense primitives: `(NR+1)` slices
/// of `KC` f64s ≈ 20 KiB, sized to stay resident in a 32 KiB L1d.
pub const KC: usize = 512;

/// Which microkernel backend is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Safe scalar register-blocked code (autovectorized by LLVM).
    Blocked,
    /// AVX2+FMA intrinsics (`simd` cargo feature, x86-64, `f64` panels).
    Simd,
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
static FORCE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Backend that `f64` primitives will use for the next calls.
pub fn active_backend() -> Backend {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::enabled::<f64>() {
        return Backend::Simd;
    }
    Backend::Blocked
}

/// Test hook: pin the backend (`None` restores runtime detection).
///
/// Forcing [`Backend::Simd`] is a no-op unless the `simd` feature is
/// compiled in *and* the host supports AVX2+FMA; forcing
/// [`Backend::Blocked`] always works. Used by the backend-agreement
/// tests; not part of the stable API.
#[doc(hidden)]
pub fn force_backend(backend: Option<Backend>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        let v = match backend {
            None => 0,
            Some(Backend::Blocked) => 1,
            Some(Backend::Simd) => 2,
        };
        FORCE.store(v, std::sync::atomic::Ordering::Relaxed);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = backend;
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn forced() -> u8 {
    FORCE.load(std::sync::atomic::Ordering::Relaxed)
}

/// The register-level core a backend must provide. Slice lengths are
/// already matched by the blocking skeletons; implementations only fix
/// the accumulation order and instruction selection.
pub(crate) trait Core<T: Scalar> {
    /// `dot(x, c)` with [`LANES`] accumulators and a fixed reduction tree.
    fn dot1(x: &[T], c: &[T]) -> T;
    /// Four column dots sharing each load of `x`.
    fn dot4(x: &[T], c0: &[T], c1: &[T], c2: &[T], c3: &[T]) -> [T; 4];
    /// `y ∓= a · c` (SUB selects subtraction).
    fn axpy1<const SUB: bool>(a: T, c: &[T], y: &mut [T]);
    /// `y ∓= a0·c0 + a1·c1 + a2·c2 + a3·c3`, one pass over `y`.
    fn axpy4<const SUB: bool>(a: [T; 4], c0: &[T], c1: &[T], c2: &[T], c3: &[T], y: &mut [T]);
    /// `c -= w · x` (single-column rank-1 update).
    fn rank1_1(x: &[T], w: T, c: &mut [T]);
    /// Rank-1 fan-out: `ci -= wi · x` for four columns per load of `x`.
    fn rank1_4(x: &[T], w: [T; 4], c0: &mut [T], c1: &mut [T], c2: &mut [T], c3: &mut [T]);
}

// ---------------------------------------------------------------------------
// Blocking skeletons, generic over the register core. These fix the strip
// and column-block structure once so both backends share it exactly.
// ---------------------------------------------------------------------------

/// `out[j] = dot(x, col_j)` for `n` equal-length columns (`col_j =
/// ys[j*ld .. j*ld + x.len()]`), strip-blocked over the length.
#[inline(always)]
fn dotf_impl<T: Scalar, C: Core<T>>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    let len = x.len();
    debug_assert!(out.len() >= n);
    debug_assert!(n == 0 || ys.len() >= (n - 1) * ld + len);
    let mut r0 = 0;
    let mut first = true;
    loop {
        let r1 = (r0 + KC).min(len);
        let xs = &x[r0..r1];
        let sl = r1 - r0;
        let mut j = 0;
        while j + NR <= n {
            let b = j * ld + r0;
            let d = C::dot4(
                xs,
                &ys[b..b + sl],
                &ys[b + ld..b + ld + sl],
                &ys[b + 2 * ld..b + 2 * ld + sl],
                &ys[b + 3 * ld..b + 3 * ld + sl],
            );
            if first {
                out[j..j + NR].copy_from_slice(&d);
            } else {
                for (o, v) in out[j..j + NR].iter_mut().zip(d) {
                    *o += v;
                }
            }
            j += NR;
        }
        while j < n {
            let b = j * ld + r0;
            let d = C::dot1(xs, &ys[b..b + sl]);
            if first {
                out[j] = d;
            } else {
                out[j] += d;
            }
            j += 1;
        }
        first = false;
        r0 = r1;
        if r0 >= len {
            break;
        }
    }
}

/// Prefix-column (upper-trapezoid) fused dots: column `j` has length
/// `len0 + j`; `out[j] = dot(x[..len0+j], col_j)`. Blocks of [`NR`]
/// columns share the dense common prefix; the ragged tail of each column
/// is folded in scalar-wise. Operands are tile-bounded (TT shapes), so
/// no strip loop is needed.
#[inline(always)]
fn dotf_tri_impl<T: Scalar, C: Core<T>>(
    x: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    out: &mut [T],
) {
    debug_assert!(out.len() >= n);
    debug_assert!(n == 0 || x.len() >= len0 + n - 1);
    let mut j = 0;
    while j + NR <= n {
        let d = len0 + j;
        let b = j * ld;
        let c0 = &ys[b..b + d];
        let c1 = &ys[b + ld..b + ld + d + 1];
        let c2 = &ys[b + 2 * ld..b + 2 * ld + d + 2];
        let c3 = &ys[b + 3 * ld..b + 3 * ld + d + 3];
        let mut v = C::dot4(&x[..d], c0, &c1[..d], &c2[..d], &c3[..d]);
        v[1] += x[d] * c1[d];
        v[2] += x[d] * c2[d];
        v[2] += x[d + 1] * c2[d + 1];
        v[3] += x[d] * c3[d];
        v[3] += x[d + 1] * c3[d + 1];
        v[3] += x[d + 2] * c3[d + 2];
        out[j..j + NR].copy_from_slice(&v);
        j += NR;
    }
    while j < n {
        let d = len0 + j;
        out[j] = C::dot1(&x[..d], &ys[j * ld..j * ld + d]);
        j += 1;
    }
}

/// Strict-lower-trapezoid fused dots: column `j` is valid on rows
/// `[j+1, x.len())` (the unit diagonal is the caller's to add).
/// `out[j] = dot(x[j+1..], col_j[j+1..])`.
#[inline(always)]
fn dotf_lo_impl<T: Scalar, C: Core<T>>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    let len = x.len();
    debug_assert!(out.len() >= n);
    let mut j = 0;
    while j + NR <= n {
        let b = j * ld;
        let h = (j + NR).min(len);
        let mut v = [T::ZERO; NR];
        for (t, vt) in v.iter_mut().enumerate() {
            let c = &ys[b + t * ld..b + t * ld + len];
            let mut acc = T::ZERO;
            for r in (j + t + 1)..h {
                acc += x[r] * c[r];
            }
            *vt = acc;
        }
        if h < len {
            let d = C::dot4(
                &x[h..],
                &ys[b + h..b + len],
                &ys[b + ld + h..b + ld + len],
                &ys[b + 2 * ld + h..b + 2 * ld + len],
                &ys[b + 3 * ld + h..b + 3 * ld + len],
            );
            for (vt, dt) in v.iter_mut().zip(d) {
                *vt += dt;
            }
        }
        out[j..j + NR].copy_from_slice(&v);
        j += NR;
    }
    while j < n {
        out[j] = if j + 1 < len {
            C::dot1(&x[j + 1..], &ys[j * ld + j + 1..j * ld + len])
        } else {
            T::ZERO
        };
        j += 1;
    }
}

/// Dense fused axpy: `y ∓= Σ_j alphas[j] · col_j`, strip-blocked so each
/// `y` strip stays L1-resident across all column blocks. The strip loop
/// partitions rows, so per-element operation order is unchanged by it.
#[inline(always)]
fn axpyf_impl<T: Scalar, C: Core<T>, const SUB: bool>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    y: &mut [T],
) {
    let len = y.len();
    debug_assert!(alphas.len() >= n);
    debug_assert!(n == 0 || ys.len() >= (n - 1) * ld + len);
    let mut r0 = 0;
    while r0 < len {
        let r1 = (r0 + KC).min(len);
        let sl = r1 - r0;
        let yw = &mut y[r0..r1];
        let mut j = 0;
        while j + NR <= n {
            let b = j * ld + r0;
            C::axpy4::<SUB>(
                [alphas[j], alphas[j + 1], alphas[j + 2], alphas[j + 3]],
                &ys[b..b + sl],
                &ys[b + ld..b + ld + sl],
                &ys[b + 2 * ld..b + 2 * ld + sl],
                &ys[b + 3 * ld..b + 3 * ld + sl],
                yw,
            );
            j += NR;
        }
        while j < n {
            let b = j * ld + r0;
            C::axpy1::<SUB>(alphas[j], &ys[b..b + sl], yw);
            j += 1;
        }
        r0 = r1;
    }
}

/// Prefix-column fused axpy: column `j` has length `len0 + j` and updates
/// `y[..len0+j]`. Dense common prefix per column block, ragged tails as
/// short single-column axpys.
#[inline(always)]
fn axpyf_tri_impl<T: Scalar, C: Core<T>, const SUB: bool>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    debug_assert!(alphas.len() >= n);
    debug_assert!(n == 0 || y.len() >= len0 + n - 1);
    let mut j = 0;
    while j + NR <= n {
        let d = len0 + j;
        let b = j * ld;
        C::axpy4::<SUB>(
            [alphas[j], alphas[j + 1], alphas[j + 2], alphas[j + 3]],
            &ys[b..b + d],
            &ys[b + ld..b + ld + d],
            &ys[b + 2 * ld..b + 2 * ld + d],
            &ys[b + 3 * ld..b + 3 * ld + d],
            &mut y[..d],
        );
        for t in 1..NR {
            let c = &ys[b + t * ld..b + t * ld + d + t];
            C::axpy1::<SUB>(alphas[j + t], &c[d..], &mut y[d..d + t]);
        }
        j += NR;
    }
    while j < n {
        let d = len0 + j;
        C::axpy1::<SUB>(alphas[j], &ys[j * ld..j * ld + d], &mut y[..d]);
        j += 1;
    }
}

/// Strict-lower-trapezoid fused axpy: column `j` is valid on rows
/// `[j+1, y.len())`; `y[j+1..] ∓= alphas[j] · col_j[j+1..]` (unit
/// diagonal peeled by the caller).
#[inline(always)]
fn axpyf_lo_impl<T: Scalar, C: Core<T>, const SUB: bool>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    y: &mut [T],
) {
    let len = y.len();
    debug_assert!(alphas.len() >= n);
    let mut j = 0;
    while j + NR <= n {
        let b = j * ld;
        let h = (j + NR).min(len);
        for t in 0..NR {
            let lo = j + t + 1;
            if lo < h {
                C::axpy1::<SUB>(
                    alphas[j + t],
                    &ys[b + t * ld + lo..b + t * ld + h],
                    &mut y[lo..h],
                );
            }
        }
        if h < len {
            C::axpy4::<SUB>(
                [alphas[j], alphas[j + 1], alphas[j + 2], alphas[j + 3]],
                &ys[b + h..b + len],
                &ys[b + ld + h..b + ld + len],
                &ys[b + 2 * ld + h..b + 2 * ld + len],
                &ys[b + 3 * ld + h..b + 3 * ld + len],
                &mut y[h..],
            );
        }
        j += NR;
    }
    while j < n {
        if j + 1 < len {
            C::axpy1::<SUB>(
                alphas[j],
                &ys[j * ld + j + 1..j * ld + len],
                &mut y[j + 1..],
            );
        }
        j += 1;
    }
}

/// Rank-1 fan-out: `col_j[..len] -= w[j] · x[..len]` for `n` columns,
/// sharing each load of `x` across [`NR`] columns.
#[inline(always)]
fn rank1f_impl<T: Scalar, C: Core<T>>(
    x: &[T],
    w: &[T],
    ys: &mut [T],
    ld: usize,
    len: usize,
    n: usize,
) {
    debug_assert!(w.len() >= n);
    debug_assert!(x.len() >= len);
    debug_assert!(
        ld >= len || n <= 1,
        "columns would alias (ld {ld} < len {len})"
    );
    let x = &x[..len];
    let mut j = 0;
    while j + NR <= n {
        let buf = &mut ys[j * ld..];
        let (c0, rest) = buf.split_at_mut(ld);
        let (c1, rest) = rest.split_at_mut(ld);
        let (c2, rest) = rest.split_at_mut(ld);
        C::rank1_4(
            x,
            [w[j], w[j + 1], w[j + 2], w[j + 3]],
            &mut c0[..len],
            &mut c1[..len],
            &mut c2[..len],
            &mut rest[..len],
        );
        j += NR;
    }
    while j < n {
        C::rank1_1(x, w[j], &mut ys[j * ld..j * ld + len]);
        j += 1;
    }
}

/// Fused single-reflector trailing update (the GEQRT inner loop): each
/// column is `[head; tail]` of length `1 + vk.len()` starting at
/// `cols[j * ld]`. Per column: `w = (head + dot(vk, tail)) · tau`,
/// `head -= w`, `tail -= w · vk` — with dots and the rank-1 fan-out
/// fused over [`NR`] columns.
#[inline(always)]
fn larf_head_impl<T: Scalar, C: Core<T>>(vk: &[T], tau: T, cols: &mut [T], ld: usize, n: usize) {
    let mt = vk.len();
    let cl = mt + 1;
    debug_assert!(n == 0 || cols.len() >= (n - 1) * ld + cl);
    let mut j = 0;
    while j + NR <= n {
        let buf = &mut cols[j * ld..];
        let (c0, rest) = buf.split_at_mut(ld);
        let (c1, rest) = rest.split_at_mut(ld);
        let (c2, rest) = rest.split_at_mut(ld);
        let c0 = &mut c0[..cl];
        let c1 = &mut c1[..cl];
        let c2 = &mut c2[..cl];
        let c3 = &mut rest[..cl];
        let mut w = C::dot4(vk, &c0[1..], &c1[1..], &c2[1..], &c3[1..]);
        w[0] = (c0[0] + w[0]) * tau;
        w[1] = (c1[0] + w[1]) * tau;
        w[2] = (c2[0] + w[2]) * tau;
        w[3] = (c3[0] + w[3]) * tau;
        c0[0] -= w[0];
        c1[0] -= w[1];
        c2[0] -= w[2];
        c3[0] -= w[3];
        C::rank1_4(
            vk,
            w,
            &mut c0[1..],
            &mut c1[1..],
            &mut c2[1..],
            &mut c3[1..],
        );
        j += NR;
    }
    while j < n {
        let c = &mut cols[j * ld..j * ld + cl];
        let mut w = C::dot1(vk, &c[1..]);
        w = (c[0] + w) * tau;
        c[0] -= w;
        C::rank1_1(vk, w, &mut c[1..]);
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// Public primitives: one dispatch point per shape. The simd path engages
// only for `f64` with the `simd` feature compiled in and AVX2+FMA present
// at runtime; everything else takes the safe scalar-blocked backend.
// ---------------------------------------------------------------------------

/// Below this many touched elements a primitive runs a plain sequential
/// per-column loop instead of the blocked skeleton. At ~100 flops the
/// register-blocking machinery (group/tail selection, lane reductions,
/// out-of-line calls) costs more than the latency chains it breaks — the
/// GEQRT trailing update and `T`-factor extension at `b = 8` are the
/// canonical victims (the b = 8 trailing `larf_head` touches ~98
/// elements). The tier is selected purely by argument shape, so results
/// stay a deterministic function of shape (see the module-level
/// contract).
const NAIVE_MAX_WORK: usize = 128;

/// Minimum number of touched elements before a primitive is worth routing
/// through the runtime-detected vector paths. `#[target_feature]` functions
/// cannot inline into their SSE2 callers, so each vector-path call pays a
/// real function-call + slice-cast toll; below this much work the fully
/// inlined scalar block path wins. The cutoff only picks between
/// bit-identical implementations of the `Blocked` backend (and trims the
/// `Simd` backend's small-shape overhead the same way), so it affects
/// speed, never results.
const VECTOR_MIN_WORK: usize = 512;

/// Sequential dot for the naive small-shape tier.
#[inline(always)]
fn seq_dot<T: Scalar>(x: &[T], c: &[T]) -> T {
    let mut s = T::ZERO;
    for (&xi, &ci) in x.iter().zip(c) {
        s += xi * ci;
    }
    s
}

/// Sequential axpy for the naive small-shape tier.
#[inline(always)]
fn seq_axpy<T: Scalar, const SUB: bool>(a: T, c: &[T], y: &mut [T]) {
    for (yi, &ci) in y.iter_mut().zip(c) {
        if SUB {
            *yi -= a * ci;
        } else {
            *yi += a * ci;
        }
    }
}

macro_rules! dispatch {
    ($work:expr, $naive:expr, $simd_call:expr, $auto_call:expr, $block_call:expr) => {{
        let work = $work;
        // Tiny shapes: run the inlined sequential loops; the blocked
        // skeleton's overhead dominates at this size.
        if work < NAIVE_MAX_WORK {
            $naive;
            return;
        }
        if work >= VECTOR_MIN_WORK {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if simd::enabled::<T>() {
                $simd_call;
                return;
            }
            // AVX2 compilation of the same scalar-blocked skeleton —
            // bit-identical to the plain build (see `autovec`), so this is
            // still the `Blocked` backend, not a third behaviour.
            #[cfg(target_arch = "x86_64")]
            if autovec::enabled::<T>() {
                $auto_call;
                return;
            }
        }
        $block_call
    }};
}

/// `out[j] = dot(x, ys[j*ld .. j*ld + x.len()])` for `j < n`.
#[inline]
pub fn dotf<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    dispatch!(
        x.len() * n,
        for (j, o) in out[..n].iter_mut().enumerate() {
            *o = seq_dot(x, &ys[j * ld..j * ld + x.len()]);
        },
        simd::dotf(x, ys, ld, n, out),
        autovec::dotf(x, ys, ld, n, out),
        dotf_impl::<T, block::ScalarCore>(x, ys, ld, n, out)
    );
}

/// Prefix-column dots: `out[j] = dot(x[..len0+j], ys[j*ld .. j*ld+len0+j])`.
#[inline]
pub fn dotf_tri<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, len0: usize, out: &mut [T]) {
    dispatch!(
        n * len0 + n * n / 2,
        for (j, o) in out[..n].iter_mut().enumerate() {
            let d = len0 + j;
            *o = seq_dot(&x[..d], &ys[j * ld..j * ld + d]);
        },
        simd::dotf_tri(x, ys, ld, n, len0, out),
        autovec::dotf_tri(x, ys, ld, n, len0, out),
        dotf_tri_impl::<T, block::ScalarCore>(x, ys, ld, n, len0, out)
    );
}

/// Strict-lower dots: `out[j] = dot(x[j+1..], col_j[j+1..])`, unit
/// diagonal left to the caller.
#[inline]
pub fn dotf_lo<T: Scalar>(x: &[T], ys: &[T], ld: usize, n: usize, out: &mut [T]) {
    dispatch!(
        (x.len() * n).saturating_sub(n * n / 2),
        for (j, o) in out[..n].iter_mut().enumerate() {
            *o = if j + 1 < x.len() {
                seq_dot(&x[j + 1..], &ys[j * ld + j + 1..j * ld + x.len()])
            } else {
                T::ZERO
            };
        },
        simd::dotf_lo(x, ys, ld, n, out),
        autovec::dotf_lo(x, ys, ld, n, out),
        dotf_lo_impl::<T, block::ScalarCore>(x, ys, ld, n, out)
    );
}

/// `y -= Σ_j alphas[j] · col_j` over `y.len()` rows.
#[inline]
pub fn axpyf_sub<T: Scalar>(alphas: &[T], ys: &[T], ld: usize, n: usize, y: &mut [T]) {
    dispatch!(
        y.len() * n,
        for (j, &aj) in alphas[..n].iter().enumerate() {
            seq_axpy::<T, true>(aj, &ys[j * ld..j * ld + y.len()], y);
        },
        simd::axpyf_sub(alphas, ys, ld, n, y),
        autovec::axpyf_sub(alphas, ys, ld, n, y),
        axpyf_impl::<T, block::ScalarCore, true>(alphas, ys, ld, n, y)
    );
}

/// `y[..len0+j] += alphas[j] · col_j` for prefix columns of length `len0+j`.
#[inline]
pub fn axpyf_tri_add<T: Scalar>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    dispatch!(
        n * len0 + n * n / 2,
        for (j, &aj) in alphas[..n].iter().enumerate() {
            let d = len0 + j;
            seq_axpy::<T, false>(aj, &ys[j * ld..j * ld + d], &mut y[..d]);
        },
        simd::axpyf_tri_add(alphas, ys, ld, n, len0, y),
        autovec::axpyf_tri_add(alphas, ys, ld, n, len0, y),
        axpyf_tri_impl::<T, block::ScalarCore, false>(alphas, ys, ld, n, len0, y)
    );
}

/// `y[..len0+j] -= alphas[j] · col_j` for prefix columns of length `len0+j`.
#[inline]
pub fn axpyf_tri_sub<T: Scalar>(
    alphas: &[T],
    ys: &[T],
    ld: usize,
    n: usize,
    len0: usize,
    y: &mut [T],
) {
    dispatch!(
        n * len0 + n * n / 2,
        for (j, &aj) in alphas[..n].iter().enumerate() {
            let d = len0 + j;
            seq_axpy::<T, true>(aj, &ys[j * ld..j * ld + d], &mut y[..d]);
        },
        simd::axpyf_tri_sub(alphas, ys, ld, n, len0, y),
        autovec::axpyf_tri_sub(alphas, ys, ld, n, len0, y),
        axpyf_tri_impl::<T, block::ScalarCore, true>(alphas, ys, ld, n, len0, y)
    );
}

/// `y[j+1..] -= alphas[j] · col_j[j+1..]` for strict-lower columns.
#[inline]
pub fn axpyf_lo_sub<T: Scalar>(alphas: &[T], ys: &[T], ld: usize, n: usize, y: &mut [T]) {
    dispatch!(
        (y.len() * n).saturating_sub(n * n / 2),
        for (j, &aj) in alphas[..n].iter().enumerate() {
            if j + 1 < y.len() {
                let c = &ys[j * ld + j + 1..j * ld + y.len()];
                seq_axpy::<T, true>(aj, c, &mut y[j + 1..]);
            }
        },
        simd::axpyf_lo_sub(alphas, ys, ld, n, y),
        autovec::axpyf_lo_sub(alphas, ys, ld, n, y),
        axpyf_lo_impl::<T, block::ScalarCore, true>(alphas, ys, ld, n, y)
    );
}

/// `col_j[..len] -= w[j] · x[..len]` for `n` columns at stride `ld`.
#[inline]
pub fn rank1f_sub<T: Scalar>(x: &[T], w: &[T], ys: &mut [T], ld: usize, len: usize, n: usize) {
    dispatch!(
        len * n,
        for (j, &wj) in w[..n].iter().enumerate() {
            seq_axpy::<T, true>(wj, &x[..len], &mut ys[j * ld..j * ld + len]);
        },
        simd::rank1f_sub(x, w, ys, ld, len, n),
        autovec::rank1f_sub(x, w, ys, ld, len, n),
        rank1f_impl::<T, block::ScalarCore>(x, w, ys, ld, len, n)
    );
}

/// Fused Householder trailing update over `n` columns (see
/// [`larf_head_impl`] for the per-column contract).
#[inline]
pub fn larf_head<T: Scalar>(vk: &[T], tau: T, cols: &mut [T], ld: usize, n: usize) {
    dispatch!(
        vk.len() * n * 2,
        for j in 0..n {
            let c = &mut cols[j * ld..j * ld + vk.len() + 1];
            let mut w = c[0] + seq_dot(vk, &c[1..]);
            w *= tau;
            c[0] -= w;
            seq_axpy::<T, true>(w, vk, &mut c[1..]);
        },
        simd::larf_head(vk, tau, cols, ld, n),
        autovec::larf_head(vk, tau, cols, ld, n),
        larf_head_impl::<T, block::ScalarCore>(vk, tau, cols, ld, n)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, k: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.37 + k).sin()).collect()
    }

    #[test]
    fn dotf_matches_naive_all_widths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 11] {
            for len in [0usize, 1, 3, 4, 5, 16, 17] {
                let ld = len + 2;
                let x = seq(len, 1.0);
                let ys = seq(n.saturating_sub(1) * ld + len, 2.0);
                let mut out = vec![f64::NAN; n];
                dotf(&x, &ys, ld, n, &mut out);
                for j in 0..n {
                    let naive: f64 = (0..len).map(|r| x[r] * ys[j * ld + r]).sum();
                    assert!((out[j] - naive).abs() < 1e-12, "n={n} len={len} j={j}");
                }
            }
        }
    }

    #[test]
    fn dotf_strips_are_pure_tiling() {
        // A length crossing the strip boundary still matches naive.
        let len = KC + 37;
        let n = 6;
        let ld = len;
        let x = seq(len, 0.5);
        let ys = seq(n * ld, 1.5);
        let mut out = vec![0.0; n];
        dotf(&x, &ys, ld, n, &mut out);
        for j in 0..n {
            let naive: f64 = (0..len).map(|r| x[r] * ys[j * ld + r]).sum();
            assert!((out[j] - naive).abs() < 1e-9 * naive.abs().max(1.0));
        }
    }

    #[test]
    fn rank1f_matches_naive() {
        for n in [1usize, 3, 4, 6, 9] {
            for len in [1usize, 2, 5, 8] {
                let ld = len + 1;
                let x = seq(len, 3.0);
                let w = seq(n, 4.0);
                let mut ys = seq(n * ld, 5.0);
                let mut naive = ys.clone();
                rank1f_sub(&x, &w, &mut ys, ld, len, n);
                for j in 0..n {
                    for r in 0..len {
                        naive[j * ld + r] -= w[j] * x[r];
                    }
                }
                for (a, b) in ys.iter().zip(&naive) {
                    assert!((a - b).abs() < 1e-13);
                }
            }
        }
    }
}
