//! Safe scalar register-blocked backend.
//!
//! Every loop here is written so LLVM's autovectorizer can keep the
//! element type's native width busy under the default x86-64 target
//! (SSE2): dots carry [`LANES`](super::LANES) independent accumulators
//! (the dependent-add chain of a naive `iter().sum()` dot is the thing
//! strict FP semantics forbid LLVM from breaking up), and the axpy /
//! rank-1 bodies are single-assignment per element with no cross-iteration
//! dependence. Slices are pre-truncated to the trip count so bounds
//! checks vanish from the inner loops.
//!
//! The accumulation order is fixed by this file alone: lane `i % LANES`
//! takes element `i`, tails land in lane 0, and lanes reduce as
//! `(a0+a1)+(a2+a3)`. That order is what the determinism contract of
//! [`crate::micro`] promises for the default backend.

use super::{Core, LANES};
use tileqr_matrix::Scalar;

/// The default backend: safe, autovectorization-friendly scalar blocks.
pub(crate) struct ScalarCore;

impl<T: Scalar> Core<T> for ScalarCore {
    #[inline(always)]
    fn dot1(x: &[T], c: &[T]) -> T {
        let n = x.len();
        let c = &c[..n];
        let mut a = [T::ZERO; LANES];
        let mut xc = x.chunks_exact(LANES);
        let mut cc = c.chunks_exact(LANES);
        for (xs, cs) in (&mut xc).zip(&mut cc) {
            for l in 0..LANES {
                a[l] += xs[l] * cs[l];
            }
        }
        for (&xv, &cv) in xc.remainder().iter().zip(cc.remainder()) {
            a[0] += xv * cv;
        }
        (a[0] + a[1]) + (a[2] + a[3])
    }

    #[inline(always)]
    fn dot4(x: &[T], c0: &[T], c1: &[T], c2: &[T], c3: &[T]) -> [T; 4] {
        let n = x.len();
        let (c0, c1, c2, c3) = (&c0[..n], &c1[..n], &c2[..n], &c3[..n]);
        let mut a0 = [T::ZERO; LANES];
        let mut a1 = [T::ZERO; LANES];
        let mut a2 = [T::ZERO; LANES];
        let mut a3 = [T::ZERO; LANES];
        // One contiguous LANES-wide strip per column, each in its own
        // lane loop: this is the shape the vectorizer maps onto a single
        // vector load + mul + add per column. Interleaving the columns
        // inside the lane loop instead makes SLP transpose the problem
        // into per-row gathers across the four columns — ~3x slower.
        // Per-accumulator the operation sequence is identical either
        // way, so the blocked results stay bit-for-bit the same.
        let mut i = 0;
        while i + LANES <= n {
            let xs = &x[i..i + LANES];
            let y0 = &c0[i..i + LANES];
            let y1 = &c1[i..i + LANES];
            let y2 = &c2[i..i + LANES];
            let y3 = &c3[i..i + LANES];
            for l in 0..LANES {
                a0[l] += xs[l] * y0[l];
            }
            for l in 0..LANES {
                a1[l] += xs[l] * y1[l];
            }
            for l in 0..LANES {
                a2[l] += xs[l] * y2[l];
            }
            for l in 0..LANES {
                a3[l] += xs[l] * y3[l];
            }
            i += LANES;
        }
        while i < n {
            let xv = x[i];
            a0[0] += xv * c0[i];
            a1[0] += xv * c1[i];
            a2[0] += xv * c2[i];
            a3[0] += xv * c3[i];
            i += 1;
        }
        [
            (a0[0] + a0[1]) + (a0[2] + a0[3]),
            (a1[0] + a1[1]) + (a1[2] + a1[3]),
            (a2[0] + a2[1]) + (a2[2] + a2[3]),
            (a3[0] + a3[1]) + (a3[2] + a3[3]),
        ]
    }

    #[inline(always)]
    fn axpy1<const SUB: bool>(a: T, c: &[T], y: &mut [T]) {
        let c = &c[..y.len()];
        for (yi, &ci) in y.iter_mut().zip(c) {
            if SUB {
                *yi -= a * ci;
            } else {
                *yi += a * ci;
            }
        }
    }

    #[inline(always)]
    fn axpy4<const SUB: bool>(a: [T; 4], c0: &[T], c1: &[T], c2: &[T], c3: &[T], y: &mut [T]) {
        let n = y.len();
        let (c0, c1, c2, c3) = (&c0[..n], &c1[..n], &c2[..n], &c3[..n]);
        for (i, yi) in y.iter_mut().enumerate() {
            let t = (a[0] * c0[i] + a[1] * c1[i]) + (a[2] * c2[i] + a[3] * c3[i]);
            if SUB {
                *yi -= t;
            } else {
                *yi += t;
            }
        }
    }

    #[inline(always)]
    fn rank1_1(x: &[T], w: T, c: &mut [T]) {
        let x = &x[..c.len()];
        for (ci, &xi) in c.iter_mut().zip(x) {
            *ci -= w * xi;
        }
    }

    #[inline(always)]
    fn rank1_4(x: &[T], w: [T; 4], c0: &mut [T], c1: &mut [T], c2: &mut [T], c3: &mut [T]) {
        let n = c0.len();
        let x = &x[..n];
        let (c1, c2, c3) = (&mut c1[..n], &mut c2[..n], &mut c3[..n]);
        for (i, &xv) in x.iter().enumerate() {
            c0[i] -= w[0] * xv;
            c1[i] -= w[1] * xv;
            c2[i] -= w[2] * xv;
            c3[i] -= w[3] * xv;
        }
    }
}
