//! Tile kernels for tiled QR decomposition.
//!
//! Implements, from scratch and in pure safe Rust, the four kernel families
//! of the paper (§II-B):
//!
//! | Paper step                 | LAPACK/PLASMA name | Function        |
//! |----------------------------|--------------------|-----------------|
//! | Triangulation (T)          | `GEQRT`            | [`geqrt`]       |
//! | Update for triangulation (UT) | `UNMQR`         | [`unmqr`]       |
//! | Elimination (E), TS flavour   | `TSQRT`         | [`tsqrt`]       |
//! | Update for elimination (UE), TS flavour | `TSMQR` | [`tsmqr`]     |
//! | Elimination (E), TT flavour   | `TTQRT`         | [`ttqrt`]       |
//! | Update for elimination (UE), TT flavour | `TTMQR` | [`ttmqr`]     |
//!
//! Conventions follow LAPACK's compact-WY representation: each elementary
//! reflector is `H = I − τ v vᵀ` with `v₀ = 1` stored implicitly, and a
//! block of `k` reflectors is `Q = I − V T Vᵀ` with `T` upper triangular
//! (the output of [`geqrt`]/[`tsqrt`]/[`ttqrt`]).
//!
//! Every kernel has two entry points: the allocating legacy signature
//! (`geqrt`, `tsmqr_apply`, …) and a `*_ws` variant that borrows all
//! scratch from a reusable [`Workspace`] arena and allocates nothing on
//! the heap. The legacy wrappers call straight into the `*_ws` code with
//! a grow-on-demand workspace, so the two paths cannot drift apart.
//!
//! The crate also ships the paper's Algorithm 1 — plain unblocked
//! Householder QR — in [`mod@reference`], used as the ground truth by the test
//! suite, plus flop models ([`flops`]) and factorization validators
//! ([`validate`]).

// `deny` instead of `forbid`: the kernels are safe code except for the
// narrowly scoped, documented allows inside `micro/autovec.rs` (AVX2
// multiversioning of the safe scalar backend) and `micro/simd.rs`
// (AVX2+FMA intrinsics behind the `simd` cargo feature). Everything else
// in the crate still refuses `unsafe` at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod flops;
mod geqrt;
mod geqrt_ib;
mod householder;
pub mod micro;
pub mod reference;
mod tsqrt;
mod ttqrt;
pub mod validate;
mod workspace;

pub use geqrt::{geqrt, geqrt_apply, geqrt_apply_ws, geqrt_ws, unmqr, unmqr_ws};
pub use geqrt_ib::{geqrt_ib, geqrt_ib_apply, geqrt_ib_apply_ws, geqrt_ib_ws};
pub use householder::{larfg, HouseholderReflector};
pub use tsqrt::{tsmqr, tsmqr_apply, tsmqr_apply_ws, tsqrt, tsqrt_ws};
pub use ttqrt::{ttmqr, ttmqr_apply, ttmqr_apply_ws, ttqrt, ttqrt_ws};
pub use workspace::{Workspace, WorkspacePolicy};

/// Which orthogonal factor to apply in an update kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplySide {
    /// Apply `Qᵀ` (used during factorization to push `A ← QᵀA`).
    Transpose,
    /// Apply `Q` (used when reconstructing `Q` or computing `Q·X`).
    NoTranspose,
}
