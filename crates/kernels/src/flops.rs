//! Floating-point operation models for the tile kernels.
//!
//! Leading-order flop counts for the kernels as implemented in this crate
//! (compact-WY with inner block size equal to the tile size `b`). These are
//! used for GFLOP/s reporting in the benches and as arithmetic-intensity
//! inputs to the device timing models — the simulator's calibrated curves
//! (see `tileqr-sim`) are fitted per device on top of these shapes.

/// Flops of `GEQRT` on a `b x b` tile: the `(4/3)b³` factorization plus
/// roughly `(1/3)b³` for building the `T` factor.
pub fn geqrt_flops(b: usize) -> u64 {
    let b = b as u64;
    (5 * b * b * b) / 3
}

/// Flops of `UNMQR` applying a `b`-reflector block to one `b x b` tile:
/// `W = VᵀC` (~`b³`), `TᵀW` (~`b³/2`), `C -= VW` (~`b³`).
pub fn unmqr_flops(b: usize) -> u64 {
    let b = b as u64;
    (5 * b * b * b) / 2
}

/// Flops of `TSQRT` eliminating a full `b x b` tile against a triangle:
/// dense reflector per column over the bottom tile (~`2b³`) plus `T`
/// construction (~`b³`).
pub fn tsqrt_flops(b: usize) -> u64 {
    let b = b as u64;
    3 * b * b * b
}

/// Flops of `TSMQR` updating a stacked tile pair: `W = A1 + V2ᵀA2`
/// (~`2b³`), `op(T)W` (~`b³/2`), subtraction sweep (~`2b³`).
pub fn tsmqr_flops(b: usize) -> u64 {
    let b = b as u64;
    (9 * b * b * b) / 2
}

/// Flops of `TTQRT`: the triangular structure halves the reflector work of
/// [`tsqrt_flops`].
pub fn ttqrt_flops(b: usize) -> u64 {
    tsqrt_flops(b) / 2
}

/// Flops of `TTMQR`: triangular `V2` halves the two `V2` sweeps of
/// [`tsmqr_flops`].
pub fn ttmqr_flops(b: usize) -> u64 {
    let b = b as u64;
    (11 * b * b * b) / 4
}

/// Total flops of a full QR factorization of an `m x n` matrix
/// (`2mn² − (2/3)n³`, the textbook Householder count).
pub fn qr_flops(m: usize, n: usize) -> u64 {
    let (m, n) = (m as u64, n as u64);
    2 * m * n * n - (2 * n * n * n) / 3
}

/// Total kernel-level flops of a tiled QR on an `mt x nt` grid of `b x b`
/// tiles using TS (flat) elimination.
pub fn tiled_qr_flops(mt: usize, nt: usize, b: usize) -> u64 {
    let kmax = mt.min(nt);
    let mut total = 0u64;
    for k in 0..kmax {
        let rows_below = (mt - k - 1) as u64;
        let cols_right = (nt - k - 1) as u64;
        total += geqrt_flops(b);
        total += cols_right * unmqr_flops(b);
        total += rows_below * tsqrt_flops(b);
        total += rows_below * cols_right * tsmqr_flops(b);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_cubically() {
        for f in [geqrt_flops, unmqr_flops, tsqrt_flops, tsmqr_flops] {
            let r = f(32) as f64 / f(16) as f64;
            assert!((r - 8.0).abs() < 0.2, "not cubic: ratio {r}");
        }
    }

    #[test]
    fn tt_cheaper_than_ts() {
        assert!(ttqrt_flops(16) < tsqrt_flops(16));
        assert!(ttmqr_flops(16) < tsmqr_flops(16));
    }

    #[test]
    fn qr_flops_square() {
        // 2n^3 - (2/3)n^3 = (4/3)n^3.
        let n = 300;
        let expect = (4.0 / 3.0) * (n as f64).powi(3);
        let got = qr_flops(n, n) as f64;
        assert!((got - expect).abs() / expect < 0.01);
    }

    #[test]
    fn tiled_total_close_to_dense_total() {
        // Tiled QR does ~constant-factor more flops than dense QR, but the
        // totals must agree to within that small factor (< 4x) and scale
        // identically with problem size.
        let b = 16;
        let t1 = tiled_qr_flops(8, 8, b) as f64;
        let dense1 = qr_flops(8 * b, 8 * b) as f64;
        assert!(
            t1 > dense1 * 0.9 && t1 < dense1 * 4.0,
            "t={t1} dense={dense1}"
        );

        let t2 = tiled_qr_flops(16, 16, b) as f64;
        let ratio = t2 / t1;
        assert!(ratio > 6.0 && ratio < 9.0, "bad cubic scaling: {ratio}");
    }

    #[test]
    fn single_tile_grid_is_just_geqrt() {
        assert_eq!(tiled_qr_flops(1, 1, 16), geqrt_flops(16));
    }
}
