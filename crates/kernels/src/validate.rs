//! Factorization quality checks used by tests, examples and the harness.

use tileqr_matrix::{ops, Matrix, Result, Scalar};

/// Quality report for a computed QR factorization.
#[derive(Debug, Clone, Copy)]
pub struct QrReport<T> {
    /// Backward error `‖A − QR‖_F / (‖A‖_F · max(m,n))`.
    pub residual: T,
    /// Orthogonality defect `‖QᵀQ − I‖_F / n`.
    pub orthogonality: T,
    /// Largest absolute element found strictly below the diagonal of `R`.
    pub max_below_diagonal: T,
}

impl<T: Scalar> QrReport<T> {
    /// `true` when all three metrics are at or below `tol`.
    pub fn passes(&self, tol: T) -> bool {
        self.residual <= tol && self.orthogonality <= tol && self.max_below_diagonal <= tol
    }
}

/// Validate a factorization `A ≈ Q R`.
pub fn check_qr<T: Scalar>(a: &Matrix<T>, q: &Matrix<T>, r: &Matrix<T>) -> Result<QrReport<T>> {
    let residual = ops::relative_residual(a, q, r)?;
    let orthogonality = ops::orthogonality_defect(q)?;
    let mut max_below = T::ZERO;
    for (i, j, v) in r.iter_indexed() {
        if i > j {
            max_below = Scalar::max(max_below, v.abs());
        }
    }
    Ok(QrReport {
        residual,
        orthogonality,
        max_below_diagonal: max_below,
    })
}

/// Tolerance scaled to the problem: `k · ε · sqrt(max dim)`, the usual
/// backward-stability budget for Householder QR.
pub fn qr_tolerance<T: Scalar>(m: usize, n: usize) -> T {
    let dim = m.max(n).max(1) as f64;
    T::from_f64(100.0 * T::EPSILON.to_f64() * dim.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::householder_qr;
    use tileqr_matrix::gen::random_matrix;

    #[test]
    fn good_factorization_passes() {
        let a = random_matrix::<f64>(20, 20, 1);
        let (q, r) = householder_qr(&a).unwrap();
        let report = check_qr(&a, &q, &r).unwrap();
        assert!(report.passes(qr_tolerance::<f64>(20, 20)), "{report:?}");
    }

    #[test]
    fn bad_factorization_fails() {
        let a = random_matrix::<f64>(10, 10, 2);
        let (q, mut r) = householder_qr(&a).unwrap();
        r[(5, 5)] += 1.0;
        let report = check_qr(&a, &q, &r).unwrap();
        assert!(!report.passes(qr_tolerance::<f64>(10, 10)));
    }

    #[test]
    fn below_diagonal_detected() {
        let a = Matrix::<f64>::identity(4);
        let q = Matrix::<f64>::identity(4);
        let mut r = Matrix::<f64>::identity(4);
        r[(2, 0)] = 0.5;
        let report = check_qr(&a, &q, &r).unwrap();
        assert_eq!(report.max_below_diagonal, 0.5);
        assert!(!report.passes(1e-10));
    }

    #[test]
    fn tolerance_grows_with_size() {
        assert!(qr_tolerance::<f64>(10_000, 10_000) > qr_tolerance::<f64>(10, 10));
        assert!(qr_tolerance::<f32>(10, 10) > qr_tolerance::<f64>(10, 10) as f32);
    }
}
