//! `GEQRT` with inner blocking (PLASMA-style `ib`).
//!
//! The crate's default [`geqrt`](crate::geqrt) uses inner block size equal
//! to the tile size — one `T` factor for the whole tile, maximal BLAS-3
//! fraction in the updates but `O(b³)` extra work building `T`. PLASMA's
//! kernels instead factor the tile in panels of `ib` columns with one
//! small `T` per panel, trading update efficiency against factor cost.
//! This module implements that variant so the trade-off the paper
//! inherits from PLASMA can be measured (see
//! `benches/elimination_trees.rs` and the DESIGN.md ablation list).

use crate::geqrt::extend_tfac_col;
use crate::householder::larfg;
use crate::micro;
use crate::workspace::Workspace;
use crate::ApplySide;
use tileqr_matrix::{Matrix, MatrixError, Result, Scalar};

/// QR-factor a tile in place with inner block size `ib`.
///
/// `a` is `m x n`, `m >= n`; on exit it holds `R` above the diagonal and
/// the Householder vectors below, exactly like [`crate::geqrt`]. Returns
/// one upper-triangular `T` factor per column panel (each at most
/// `ib x ib`; the last may be smaller).
///
/// Allocating convenience wrapper over [`geqrt_ib_ws`].
pub fn geqrt_ib<T: Scalar>(a: &mut Matrix<T>, ib: usize) -> Result<Vec<Matrix<T>>> {
    geqrt_ib_ws(a, ib, &mut Workspace::minimal())
}

/// [`geqrt_ib`] borrowing all scratch from `ws`. The per-panel `T`
/// factors are outputs and still allocated; the panel-application scratch
/// (packed panel, `W` block, `op(T)` buffer) comes from the arena.
pub fn geqrt_ib_ws<T: Scalar>(
    a: &mut Matrix<T>,
    ib: usize,
    ws: &mut Workspace<T>,
) -> Result<Vec<Matrix<T>>> {
    let (m, n) = a.dims();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt_ib (needs m >= n)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if ib == 0 {
        return Err(MatrixError::BadTileSize { tile: 0 });
    }
    let mut tfacs = Vec::with_capacity(n.div_ceil(ib));
    let mut s = 0;
    while s < n {
        let e = (s + ib).min(n); // panel columns [s, e)
        let pw = e - s;
        let mut tfac = Matrix::zeros(pw, pw);

        for k in s..e {
            // Reflector annihilating a[k+1.., k].
            let tau = {
                let ck = a.col_mut(k);
                let alpha = ck[k];
                let (head, tail) = ck.split_at_mut(k + 1);
                let h = larfg(alpha, tail);
                head[k] = h.beta;
                h.tau
            };

            // Apply H_k to the remaining panel columns only, as one fused
            // register-blocked sweep (dots and rank-1 fan-out share each
            // load of v_k).
            if tau != T::ZERO && k + 1 < e {
                let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * m + k);
                let vk = &head[k * m + k + 1..k * m + m];
                micro::larf_head(vk, tau, tail, m, e - k - 1);
            }

            // Extend this panel's T factor.
            let lk = k - s;
            tfac[(lk, lk)] = tau;
            if tau != T::ZERO && lk > 0 {
                let (z, acc) = ws.factor_scratch(pw);
                {
                    // z = V_panelᵀ v_k over the strictly-below-diagonal
                    // rows; the row-k heads (v_i's tail vs v_k's implicit
                    // unit) are folded in after the fused dots.
                    let vk = &a.col(k)[k + 1..];
                    micro::dotf(vk, &a.as_slice()[s * m + k + 1..], m, lk, &mut z[..lk]);
                }
                for (li, zi) in z.iter_mut().enumerate().take(lk) {
                    *zi += a[(k, s + li)];
                }
                extend_tfac_col(&mut tfac, lk, tau, z, acc);
            }
        }

        // Apply the finished panel's block reflector to trailing columns.
        if e < n {
            apply_panel(a, s, e, &tfac, e, n, ApplySide::Transpose, ws)?;
        }
        tfacs.push(tfac);
        s = e;
    }
    Ok(tfacs)
}

/// Apply the block reflector of panel columns `[s, e)` of `vr` to the
/// column range `[c0, c1)` of the same matrix, in place.
///
/// The unit-lower-trapezoidal panel is consumed straight out of `a` by the
/// strict-lower microkernel primitives (unit diagonal peeled by this
/// caller) — at tile sizes the panel columns are contiguous and
/// L1-resident, so the seed's explicit pack pass was pure overhead.
#[allow(clippy::too_many_arguments)]
fn apply_panel<T: Scalar>(
    a: &mut Matrix<T>,
    s: usize,
    e: usize,
    tfac: &Matrix<T>,
    c0: usize,
    c1: usize,
    side: ApplySide,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let m = a.rows();
    let pw = e - s;
    let nc = c1 - c0;
    let (mut w, tmp) = ws.apply_scratch(pw, nc);
    // W = V^T C: fused strict-lower column dots off the panel in place;
    // the implicit unit diagonal contributes C's row s+li, folded in after.
    for (jc, wj) in (c0..c1).zip(0..nc) {
        let cc = &a.col(jc)[s..];
        let wc = w.col_mut(wj);
        micro::dotf_lo(cc, &a.as_slice()[s * m + s..], m, pw, wc);
        for (li, wi) in wc.iter_mut().enumerate() {
            *wi += cc[li];
        }
    }
    crate::geqrt::apply_tfac_in_place(tfac, &mut w, tmp, side);
    // C -= V W: unit-diagonal rows peeled, then one fused multi-column
    // axpy sweep per column. The split keeps the panel (left of c0)
    // immutably borrowable while the trailing columns are updated.
    let (left, right) = a.as_mut_slice().split_at_mut(c0 * m);
    let vbase = &left[s * m + s..];
    for (jc, wj) in (c0..c1).zip(0..nc) {
        let cc = &mut right[(jc - c0) * m + s..(jc - c0 + 1) * m];
        let wc = w.col(wj);
        for (li, &wi) in wc.iter().enumerate() {
            cc[li] -= wi;
        }
        micro::axpyf_lo_sub(wc, vbase, m, pw, cc);
    }
    Ok(())
}

/// Apply `Q` or `Qᵀ` from a [`geqrt_ib`] factorization to a dense `c`
/// (`c.rows() == vr.rows()`).
///
/// Allocating convenience wrapper over [`geqrt_ib_apply_ws`].
pub fn geqrt_ib_apply<T: Scalar>(
    vr: &Matrix<T>,
    tfacs: &[Matrix<T>],
    ib: usize,
    c: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    geqrt_ib_apply_ws(vr, tfacs, ib, c, side, &mut Workspace::minimal())
}

/// [`geqrt_ib_apply`] borrowing all scratch from `ws` — no heap
/// allocation when the workspace is presized. Each panel is consumed in
/// place by the strict-lower microkernel primitives (no pack pass).
pub fn geqrt_ib_apply_ws<T: Scalar>(
    vr: &Matrix<T>,
    tfacs: &[Matrix<T>],
    ib: usize,
    c: &mut Matrix<T>,
    side: ApplySide,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let (m, n) = vr.dims();
    if c.rows() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt_ib_apply (C rows)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }
    let expected = n.div_ceil(ib.max(1));
    if ib == 0 || tfacs.len() != expected {
        return Err(MatrixError::BadTileSize { tile: ib });
    }
    let nc = c.cols();
    let np = tfacs.len();
    for idx in 0..np {
        // Qᵀ applies panels first-to-last, Q last-to-first.
        let p = match side {
            ApplySide::Transpose => idx,
            ApplySide::NoTranspose => np - 1 - idx,
        };
        let s = p * ib;
        let e = (s + ib).min(n);
        let pw = e - s;
        let tfac = &tfacs[p];
        let (mut w, tmp) = ws.apply_scratch(pw, nc);
        let vbase = &vr.as_slice()[s * m + s..];
        // W = V_p^T C: fused strict-lower column dots, unit diagonal
        // (C's row s+li) folded in after.
        for jc in 0..nc {
            let cc = &c.col(jc)[s..];
            let wc = w.col_mut(jc);
            micro::dotf_lo(cc, vbase, m, pw, wc);
            for (li, wi) in wc.iter_mut().enumerate() {
                *wi += cc[li];
            }
        }
        crate::geqrt::apply_tfac_in_place(tfac, &mut w, tmp, side);
        // C -= V_p W: unit-diagonal rows peeled, then one fused
        // multi-column axpy sweep per column.
        for jc in 0..nc {
            let cc = &mut c.col_mut(jc)[s..];
            let wc = w.col(jc);
            for (li, &wi) in wc.iter().enumerate() {
                cc[li] -= wi;
            }
            micro::axpyf_lo_sub(wc, vbase, m, pw, cc);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geqrt;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::{matmul, orthogonality_defect, relative_residual};

    fn form_q(vr: &Matrix<f64>, tfacs: &[Matrix<f64>], ib: usize) -> Matrix<f64> {
        let mut q = Matrix::identity(vr.rows());
        geqrt_ib_apply(vr, tfacs, ib, &mut q, ApplySide::NoTranspose).unwrap();
        q
    }

    #[test]
    fn ib_equal_to_n_matches_plain_geqrt() {
        let a0 = random_matrix::<f64>(8, 8, 1);
        let mut a1 = a0.clone();
        let t1 = geqrt(&mut a1).unwrap();
        let mut a2 = a0.clone();
        let t2 = geqrt_ib(&mut a2, 8).unwrap();
        assert_eq!(t2.len(), 1);
        assert!(a1.approx_eq(&a2, 1e-13));
        assert!(t1.approx_eq(&t2[0], 1e-13));
    }

    #[test]
    fn every_ib_reconstructs() {
        let a0 = random_matrix::<f64>(12, 12, 2);
        for ib in [1usize, 2, 3, 4, 5, 6, 12] {
            let mut a = a0.clone();
            let ts = geqrt_ib(&mut a, ib).unwrap();
            assert_eq!(ts.len(), 12usize.div_ceil(ib));
            let q = form_q(&a, &ts, ib);
            let r = a.upper_triangular();
            assert!(relative_residual(&a0, &q, &r).unwrap() < 1e-13, "ib={ib}");
            assert!(orthogonality_defect(&q).unwrap() < 1e-13, "ib={ib}");
        }
    }

    #[test]
    fn r_identical_across_inner_blockings() {
        // R is determined by A alone (same sign convention), so every ib
        // must produce the same R bit-for-bit-ish.
        let a0 = random_matrix::<f64>(10, 10, 3);
        let mut a_full = a0.clone();
        let _ = geqrt(&mut a_full).unwrap();
        for ib in [1usize, 3, 5] {
            let mut a = a0.clone();
            let _ = geqrt_ib(&mut a, ib).unwrap();
            assert!(
                a.upper_triangular()
                    .approx_eq(&a_full.upper_triangular(), 1e-12),
                "ib={ib}"
            );
        }
    }

    #[test]
    fn tall_tiles_supported() {
        let a0 = random_matrix::<f64>(16, 6, 4);
        let mut a = a0.clone();
        let ts = geqrt_ib(&mut a, 4).unwrap();
        let q = form_q(&a, &ts, 4);
        let mut r = Matrix::zeros(16, 6);
        for j in 0..6 {
            for i in 0..=j {
                r[(i, j)] = a[(i, j)];
            }
        }
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a0, 1e-12));
    }

    #[test]
    fn apply_qt_then_q_round_trips() {
        let mut a = random_matrix::<f64>(9, 9, 5);
        let ts = geqrt_ib(&mut a, 3).unwrap();
        let c0 = random_matrix::<f64>(9, 4, 6);
        let mut c = c0.clone();
        geqrt_ib_apply(&a, &ts, 3, &mut c, ApplySide::Transpose).unwrap();
        geqrt_ib_apply(&a, &ts, 3, &mut c, ApplySide::NoTranspose).unwrap();
        assert!(c.approx_eq(&c0, 1e-12));
    }

    #[test]
    fn ws_variants_bit_identical_with_dirty_reuse() {
        let mut ws = Workspace::new(12, 4);
        for seed in 0..4 {
            let a0 = random_matrix::<f64>(12, 12, 300 + seed);
            let mut a_ref = a0.clone();
            let ts_ref = geqrt_ib(&mut a_ref, 4).unwrap();

            let mut a = a0.clone();
            let ts = geqrt_ib_ws(&mut a, 4, &mut ws).unwrap();
            assert_eq!(a, a_ref);
            assert_eq!(ts, ts_ref);

            let c0 = random_matrix::<f64>(12, 6, 400 + seed);
            let mut c_ref = c0.clone();
            geqrt_ib_apply(&a_ref, &ts_ref, 4, &mut c_ref, ApplySide::Transpose).unwrap();
            let mut c = c0.clone();
            geqrt_ib_apply_ws(&a, &ts, 4, &mut c, ApplySide::Transpose, &mut ws).unwrap();
            assert_eq!(c, c_ref);
        }
        assert_eq!(ws.resizes(), 0, "tile-sized workspace must not grow");
    }

    #[test]
    fn bad_arguments_rejected() {
        let mut wide = Matrix::<f64>::zeros(3, 5);
        assert!(geqrt_ib(&mut wide, 2).is_err());
        let mut sq = random_matrix::<f64>(4, 4, 7);
        assert!(geqrt_ib(&mut sq, 0).is_err());
        let ts = geqrt_ib(&mut sq, 2).unwrap();
        let mut c = Matrix::<f64>::zeros(4, 2);
        assert!(geqrt_ib_apply(&sq, &ts[..1], 2, &mut c, ApplySide::Transpose).is_err());
        let mut bad_rows = Matrix::<f64>::zeros(5, 2);
        assert!(geqrt_ib_apply(&sq, &ts, 2, &mut bad_rows, ApplySide::Transpose).is_err());
    }
}
