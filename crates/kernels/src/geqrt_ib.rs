//! `GEQRT` with inner blocking (PLASMA-style `ib`).
//!
//! The crate's default [`geqrt`](crate::geqrt) uses inner block size equal
//! to the tile size — one `T` factor for the whole tile, maximal BLAS-3
//! fraction in the updates but `O(b³)` extra work building `T`. PLASMA's
//! kernels instead factor the tile in panels of `ib` columns with one
//! small `T` per panel, trading update efficiency against factor cost.
//! This module implements that variant so the trade-off the paper
//! inherits from PLASMA can be measured (see
//! `benches/elimination_trees.rs` and the DESIGN.md ablation list).

use crate::householder::larfg;
use crate::ApplySide;
use tileqr_matrix::{ops, Matrix, MatrixError, Result, Scalar};

/// QR-factor a tile in place with inner block size `ib`.
///
/// `a` is `m x n`, `m >= n`; on exit it holds `R` above the diagonal and
/// the Householder vectors below, exactly like [`crate::geqrt`]. Returns
/// one upper-triangular `T` factor per column panel (each at most
/// `ib x ib`; the last may be smaller).
pub fn geqrt_ib<T: Scalar>(a: &mut Matrix<T>, ib: usize) -> Result<Vec<Matrix<T>>> {
    let (m, n) = a.dims();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt_ib (needs m >= n)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if ib == 0 {
        return Err(MatrixError::BadTileSize { tile: 0 });
    }
    let mut tfacs = Vec::with_capacity(n.div_ceil(ib));
    let mut s = 0;
    while s < n {
        let e = (s + ib).min(n); // panel columns [s, e)
        let pw = e - s;
        let mut tfac = Matrix::zeros(pw, pw);
        let mut z = vec![T::ZERO; pw];

        for k in s..e {
            // Reflector annihilating a[k+1.., k].
            let tau = {
                let ck = a.col_mut(k);
                let alpha = ck[k];
                let (head, tail) = ck.split_at_mut(k + 1);
                let h = larfg(alpha, tail);
                head[k] = h.beta;
                h.tau
            };

            // Apply H_k to the remaining panel columns only.
            if tau != T::ZERO {
                for j in k + 1..e {
                    let (ck, cj) = a.two_cols_mut(k, j);
                    let mut w = cj[k] + ops::dot(&ck[k + 1..], &cj[k + 1..]);
                    w *= tau;
                    cj[k] -= w;
                    ops::axpy(-w, &ck[k + 1..], &mut cj[k + 1..]);
                }
            }

            // Extend this panel's T factor.
            let lk = k - s;
            tfac[(lk, lk)] = tau;
            if tau != T::ZERO {
                for (li, zi) in z.iter_mut().enumerate().take(lk) {
                    let i = s + li;
                    let mut acc = a[(k, i)];
                    for r in k + 1..m {
                        acc += a[(r, i)] * a[(r, k)];
                    }
                    *zi = acc;
                }
                for li in 0..lk {
                    let mut acc = T::ZERO;
                    for p in li..lk {
                        acc += tfac[(li, p)] * z[p];
                    }
                    tfac[(li, lk)] = -tau * acc;
                }
            }
        }

        // Apply the finished panel's block reflector to trailing columns.
        if e < n {
            apply_panel(a, s, e, &tfac, e, n, ApplySide::Transpose)?;
        }
        tfacs.push(tfac);
        s = e;
    }
    Ok(tfacs)
}

/// Apply the block reflector of panel columns `[s, e)` of `vr` to the
/// column range `[c0, c1)` of the same matrix, in place.
fn apply_panel<T: Scalar>(
    a: &mut Matrix<T>,
    s: usize,
    e: usize,
    tfac: &Matrix<T>,
    c0: usize,
    c1: usize,
    side: ApplySide,
) -> Result<()> {
    let m = a.rows();
    let pw = e - s;
    let nc = c1 - c0;
    // W = V^T C with V unit lower trapezoidal in columns s..e, rows s..m.
    let mut w = Matrix::zeros(pw, nc);
    for (jc, wj) in (c0..c1).zip(0..nc) {
        for li in 0..pw {
            let i = s + li;
            let mut acc = a[(i, jc)];
            for r in i + 1..m {
                acc += a[(r, s + li)] * a[(r, jc)];
            }
            w[(li, wj)] = acc;
        }
    }
    crate::geqrt::apply_tfac_in_place(tfac, &mut w, side);
    // C -= V W.
    for (jc, wj) in (c0..c1).zip(0..nc) {
        for r in s..m {
            let lim = (r + 1 - s).min(pw);
            let mut acc = T::ZERO;
            for li in 0..lim {
                let v = if s + li == r { T::ONE } else { a[(r, s + li)] };
                acc += v * w[(li, wj)];
            }
            a[(r, jc)] -= acc;
        }
    }
    Ok(())
}

/// Apply `Q` or `Qᵀ` from a [`geqrt_ib`] factorization to a dense `c`
/// (`c.rows() == vr.rows()`).
pub fn geqrt_ib_apply<T: Scalar>(
    vr: &Matrix<T>,
    tfacs: &[Matrix<T>],
    ib: usize,
    c: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    let (m, n) = vr.dims();
    if c.rows() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt_ib_apply (C rows)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }
    let expected = n.div_ceil(ib.max(1));
    if ib == 0 || tfacs.len() != expected {
        return Err(MatrixError::BadTileSize { tile: ib });
    }
    let nc = c.cols();
    let panels: Vec<usize> = (0..tfacs.len()).collect();
    let order: Box<dyn Iterator<Item = usize>> = match side {
        ApplySide::Transpose => Box::new(panels.into_iter()),
        ApplySide::NoTranspose => Box::new(panels.into_iter().rev()),
    };
    for p in order {
        let s = p * ib;
        let e = (s + ib).min(n);
        let pw = e - s;
        let tfac = &tfacs[p];
        // W = V_p^T C.
        let mut w = Matrix::zeros(pw, nc);
        for jc in 0..nc {
            for li in 0..pw {
                let i = s + li;
                let mut acc = c[(i, jc)];
                for r in i + 1..m {
                    acc += vr[(r, s + li)] * c[(r, jc)];
                }
                w[(li, jc)] = acc;
            }
        }
        crate::geqrt::apply_tfac_in_place(tfac, &mut w, side);
        for jc in 0..nc {
            for r in s..m {
                let lim = (r + 1 - s).min(pw);
                let mut acc = T::ZERO;
                for li in 0..lim {
                    let v = if s + li == r { T::ONE } else { vr[(r, s + li)] };
                    acc += v * w[(li, jc)];
                }
                c[(r, jc)] -= acc;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geqrt;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::{matmul, orthogonality_defect, relative_residual};

    fn form_q(vr: &Matrix<f64>, tfacs: &[Matrix<f64>], ib: usize) -> Matrix<f64> {
        let mut q = Matrix::identity(vr.rows());
        geqrt_ib_apply(vr, tfacs, ib, &mut q, ApplySide::NoTranspose).unwrap();
        q
    }

    #[test]
    fn ib_equal_to_n_matches_plain_geqrt() {
        let a0 = random_matrix::<f64>(8, 8, 1);
        let mut a1 = a0.clone();
        let t1 = geqrt(&mut a1).unwrap();
        let mut a2 = a0.clone();
        let t2 = geqrt_ib(&mut a2, 8).unwrap();
        assert_eq!(t2.len(), 1);
        assert!(a1.approx_eq(&a2, 1e-13));
        assert!(t1.approx_eq(&t2[0], 1e-13));
    }

    #[test]
    fn every_ib_reconstructs() {
        let a0 = random_matrix::<f64>(12, 12, 2);
        for ib in [1usize, 2, 3, 4, 5, 6, 12] {
            let mut a = a0.clone();
            let ts = geqrt_ib(&mut a, ib).unwrap();
            assert_eq!(ts.len(), 12usize.div_ceil(ib));
            let q = form_q(&a, &ts, ib);
            let r = a.upper_triangular();
            assert!(relative_residual(&a0, &q, &r).unwrap() < 1e-13, "ib={ib}");
            assert!(orthogonality_defect(&q).unwrap() < 1e-13, "ib={ib}");
        }
    }

    #[test]
    fn r_identical_across_inner_blockings() {
        // R is determined by A alone (same sign convention), so every ib
        // must produce the same R bit-for-bit-ish.
        let a0 = random_matrix::<f64>(10, 10, 3);
        let mut a_full = a0.clone();
        let _ = geqrt(&mut a_full).unwrap();
        for ib in [1usize, 3, 5] {
            let mut a = a0.clone();
            let _ = geqrt_ib(&mut a, ib).unwrap();
            assert!(
                a.upper_triangular()
                    .approx_eq(&a_full.upper_triangular(), 1e-12),
                "ib={ib}"
            );
        }
    }

    #[test]
    fn tall_tiles_supported() {
        let a0 = random_matrix::<f64>(16, 6, 4);
        let mut a = a0.clone();
        let ts = geqrt_ib(&mut a, 4).unwrap();
        let q = form_q(&a, &ts, 4);
        let mut r = Matrix::zeros(16, 6);
        for j in 0..6 {
            for i in 0..=j {
                r[(i, j)] = a[(i, j)];
            }
        }
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a0, 1e-12));
    }

    #[test]
    fn apply_qt_then_q_round_trips() {
        let mut a = random_matrix::<f64>(9, 9, 5);
        let ts = geqrt_ib(&mut a, 3).unwrap();
        let c0 = random_matrix::<f64>(9, 4, 6);
        let mut c = c0.clone();
        geqrt_ib_apply(&a, &ts, 3, &mut c, ApplySide::Transpose).unwrap();
        geqrt_ib_apply(&a, &ts, 3, &mut c, ApplySide::NoTranspose).unwrap();
        assert!(c.approx_eq(&c0, 1e-12));
    }

    #[test]
    fn bad_arguments_rejected() {
        let mut wide = Matrix::<f64>::zeros(3, 5);
        assert!(geqrt_ib(&mut wide, 2).is_err());
        let mut sq = random_matrix::<f64>(4, 4, 7);
        assert!(geqrt_ib(&mut sq, 0).is_err());
        let ts = geqrt_ib(&mut sq, 2).unwrap();
        let mut c = Matrix::<f64>::zeros(4, 2);
        assert!(geqrt_ib_apply(&sq, &ts[..1], 2, &mut c, ApplySide::Transpose).is_err());
        let mut bad_rows = Matrix::<f64>::zeros(5, 2);
        assert!(geqrt_ib_apply(&sq, &ts, 2, &mut bad_rows, ApplySide::Transpose).is_err());
    }
}
