//! Elementary Householder reflector generation (LAPACK `larfg`).

use tileqr_matrix::{ops, Scalar};

/// Result of generating an elementary reflector.
///
/// The reflector is `H = I − τ v vᵀ` with `v = [1, tail]ᵀ`; applying it to
/// the original vector `[alpha, x]ᵀ` yields `[beta, 0, …, 0]ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HouseholderReflector<T> {
    /// Value that replaces the leading element after reflection.
    pub beta: T,
    /// Reflector scale `τ`; `τ = 0` means `H = I`.
    pub tau: T,
}

/// Generate an elementary Householder reflector (LAPACK `dlarfg`).
///
/// On entry `alpha` is the leading element and `tail` the remaining
/// elements of the vector to annihilate. On exit `tail` holds `v[1..]`
/// (with `v[0] = 1` implicit) and the returned [`HouseholderReflector`]
/// carries `beta` (the new leading element) and `τ`.
///
/// `beta` takes the sign opposite to `alpha` (the numerically stable
/// choice, matching Algorithm 1's `αₖ = −sgn(aₖₖ)‖aₖ‖`), so the divisor
/// `alpha − beta` never suffers cancellation.
pub fn larfg<T: Scalar>(alpha: T, tail: &mut [T]) -> HouseholderReflector<T> {
    let xnorm = ops::nrm2(tail);
    if xnorm == T::ZERO {
        // Nothing to annihilate: H = I.
        return HouseholderReflector {
            beta: alpha,
            tau: T::ZERO,
        };
    }
    let beta = -Scalar::hypot(alpha, xnorm).copysign(alpha);
    let tau = (beta - alpha) / beta;
    let inv = T::ONE / (alpha - beta);
    for v in tail.iter_mut() {
        *v *= inv;
    }
    HouseholderReflector { beta, tau }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::ops::nrm2;

    /// Apply H = I - tau v v^T to [alpha, tail_orig] and return the result.
    fn apply_reflector(alpha: f64, tail_orig: &[f64], v_tail: &[f64], tau: f64) -> Vec<f64> {
        let mut x = vec![alpha];
        x.extend_from_slice(tail_orig);
        let mut v = vec![1.0];
        v.extend_from_slice(v_tail);
        let w: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
        x.iter().zip(&v).map(|(xi, vi)| xi - tau * w * vi).collect()
    }

    #[test]
    fn annihilates_tail() {
        let alpha = 3.0;
        let orig = vec![1.0, -2.0, 0.5];
        let mut tail = orig.clone();
        let h = larfg(alpha, &mut tail);
        let reflected = apply_reflector(alpha, &orig, &tail, h.tau);
        assert!((reflected[0] - h.beta).abs() < 1e-14);
        for &r in &reflected[1..] {
            assert!(r.abs() < 1e-14, "tail not annihilated: {r}");
        }
    }

    #[test]
    fn preserves_norm() {
        let alpha = -1.5;
        let orig = vec![2.0, 4.0];
        let mut tail = orig.clone();
        let h = larfg(alpha, &mut tail);
        let full_norm = nrm2(&[alpha, 2.0, 4.0]);
        assert!((h.beta.abs() - full_norm).abs() < 1e-14);
    }

    #[test]
    fn beta_opposes_alpha_sign() {
        let mut tail = vec![1.0];
        let h = larfg(5.0, &mut tail);
        assert!(h.beta < 0.0);
        let mut tail = vec![1.0];
        let h = larfg(-5.0, &mut tail);
        assert!(h.beta > 0.0);
    }

    #[test]
    fn zero_tail_gives_identity() {
        let mut tail = vec![0.0, 0.0];
        let h = larfg(7.0, &mut tail);
        assert_eq!(h.tau, 0.0);
        assert_eq!(h.beta, 7.0);
        assert_eq!(tail, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_tail_gives_identity() {
        let mut tail: Vec<f64> = vec![];
        let h = larfg(-2.0, &mut tail);
        assert_eq!(h.tau, 0.0);
        assert_eq!(h.beta, -2.0);
    }

    #[test]
    fn tau_in_stable_range() {
        // For the sign convention used, tau is always in [1, 2].
        for seed in 0..20 {
            let alpha = (seed as f64 - 10.0) * 0.7 + 0.1;
            let mut tail = vec![0.3 * seed as f64 + 0.1, -0.2];
            let h = larfg(alpha, &mut tail);
            assert!((1.0..=2.0).contains(&h.tau), "tau {} out of range", h.tau);
        }
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut tail = vec![1e200, -1e200];
        let h = larfg(1e200, &mut tail);
        assert!(h.beta.is_finite());
        assert!(tail.iter().all(|v| v.is_finite()));
    }
}
