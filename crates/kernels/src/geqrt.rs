//! Triangulation kernel `GEQRT` and its update `UNMQR`.
//!
//! `GEQRT` computes the QR factorization of a single tile (paper Eq. 4–5):
//! on exit the tile holds `R` in its upper triangle and the Householder
//! vectors `V` (unit lower trapezoidal, unit diagonal implicit) below it,
//! and the returned `T` factor encodes the block reflector
//! `Q = I − V T Vᵀ`.
//!
//! `UNMQR` applies `Qᵀ` from such a factorization to a tile on the right of
//! the diagonal (paper Eq. 6, the "update for triangulation" step).

use crate::householder::larfg;
use crate::micro;
use crate::workspace::Workspace;
use crate::ApplySide;
use tileqr_matrix::{Matrix, MatrixError, MatrixViewMut, Result, Scalar};

/// QR-factor one tile in place (PLASMA `CORE_geqrt` with inner block = n).
///
/// `a` is `m x n` with `m >= n`. On exit the upper triangle of `a` is `R`
/// and the strict lower part stores the Householder vectors. Returns the
/// `n x n` upper-triangular block-reflector factor `T`.
///
/// Allocating convenience wrapper over [`geqrt_ws`].
pub fn geqrt<T: Scalar>(a: &mut Matrix<T>) -> Result<Matrix<T>> {
    let n = a.cols();
    let mut tfac = Matrix::zeros(n, n);
    geqrt_ws(a, &mut tfac, &mut Workspace::minimal())?;
    Ok(tfac)
}

/// [`geqrt`] with caller-provided output and scratch: writes the `T`
/// factor into `tfac` (shape `n x n`, overwritten) and borrows the
/// reflector-accumulation vector from `ws` — no heap allocation.
pub fn geqrt_ws<T: Scalar>(
    a: &mut Matrix<T>,
    tfac: &mut Matrix<T>,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let (m, n) = a.dims();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt (needs m >= n)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    if tfac.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt (T factor shape)",
            lhs: (n, n),
            rhs: tfac.dims(),
        });
    }
    tfac.as_mut_slice().fill(T::ZERO);
    let (z, acc) = ws.factor_scratch(n);

    for k in 0..n {
        // Generate reflector H_k annihilating a[k+1.., k].
        let tau = {
            let ck = a.col_mut(k);
            let alpha = ck[k];
            let (head, tail) = ck.split_at_mut(k + 1);
            let h = larfg(alpha, tail);
            head[k] = h.beta;
            h.tau
        };

        // Apply H_k to the trailing columns k+1..n: one fused
        // register-blocked sweep over the [head; tail] column slices
        // starting at row k (column j of the sweep is a[(k.., j)]).
        if tau != T::ZERO && k + 1 < n {
            let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * m + k);
            let vk = &head[k * m + k + 1..k * m + m];
            micro::larf_head(vk, tau, tail, m, n - k - 1);
        }

        // Incrementally extend the T factor:
        //   T[k,k]    = tau_k
        //   T[0..k,k] = -tau_k * T[0..k,0..k] * (V[:,0..k]^T v_k)
        tfac[(k, k)] = tau;
        if tau != T::ZERO && k > 0 {
            // z_i = V[:,i]^T v_k with both unit diagonals implicit: fused
            // column dots over the stored entries (rows k+1..m), then the
            // row-k term V[k,i] * 1 folded in.
            {
                let vk = &a.col(k)[k + 1..];
                micro::dotf(vk, &a.as_slice()[k + 1..], m, k, &mut z[..k]);
            }
            for (i, zi) in z.iter_mut().enumerate().take(k) {
                *zi += a[(k, i)];
            }
            extend_tfac_col(tfac, k, tau, z, acc);
        }
    }
    Ok(())
}

/// Write column `k` of a factor kernel's `T`:
/// `T[0..k, k] = -tau * T[0..k, 0..k] * z[0..k]` with `T` upper
/// triangular, computed as fused prefix-column axpys over `T`'s stored
/// columns (`acc` is caller scratch of length >= `k`). Shared by
/// GEQRT/TSQRT/TTQRT and the inner-blocked panels.
pub(crate) fn extend_tfac_col<T: Scalar>(
    tfac: &mut Matrix<T>,
    k: usize,
    tau: T,
    z: &[T],
    acc: &mut [T],
) {
    let ld = tfac.rows();
    let acc = &mut acc[..k];
    acc.fill(T::ZERO);
    micro::axpyf_tri_add(&z[..k], tfac.as_slice(), ld, k, 1, acc);
    for (i, &ai) in acc.iter().enumerate() {
        tfac[(i, k)] = -tau * ai;
    }
}

/// Apply the block reflector from [`geqrt`] to `c`.
///
/// `vr` is the factored tile (V below the diagonal), `tfac` its `T` factor.
/// Computes `c ← Qᵀ c` ([`ApplySide::Transpose`]) or `c ← Q c`
/// ([`ApplySide::NoTranspose`]) where `Q = I − V T Vᵀ`.
///
/// Allocating convenience wrapper over [`geqrt_apply_ws`].
pub fn geqrt_apply<T: Scalar>(
    vr: &Matrix<T>,
    tfac: &Matrix<T>,
    c: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    geqrt_apply_ws(vr, tfac, c, side, &mut Workspace::minimal())
}

/// [`geqrt_apply`] borrowing the `W` block and `op(T)` column buffer from
/// `ws` — no heap allocation when the workspace is presized.
pub fn geqrt_apply_ws<T: Scalar>(
    vr: &Matrix<T>,
    tfac: &Matrix<T>,
    c: &mut Matrix<T>,
    side: ApplySide,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let (m, n) = vr.dims();
    if tfac.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt_apply (T factor)",
            lhs: (n, n),
            rhs: tfac.dims(),
        });
    }
    if c.rows() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "geqrt_apply (C rows)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }
    let nc = c.cols();
    let (mut w, tmp) = ws.apply_scratch(n, nc);

    // W = V^T C  (V unit lower trapezoidal): fused strict-lower column
    // dots straight off the tile storage (no packing — the columns are
    // already contiguous and L1-resident), then the implicit
    // unit-diagonal term added on top. Every element of W is written
    // before it is read, so the recycled scratch needs no zeroing.
    for jc in 0..nc {
        let cc = c.col(jc);
        let wc = w.col_mut(jc);
        micro::dotf_lo(cc, vr.as_slice(), m, n, wc);
        for (wi, &ci) in wc.iter_mut().zip(cc) {
            *wi += ci;
        }
    }

    // W = op(T) W with T upper triangular.
    apply_tfac_in_place(tfac, &mut w, tmp, side);

    // C -= V W: unit diagonal peeled, then one fused lower-trapezoid
    // sweep per column.
    for jc in 0..nc {
        let wc = w.col(jc);
        let cc = c.col_mut(jc);
        for (ci, &wi) in cc.iter_mut().zip(wc) {
            *ci -= wi;
        }
        micro::axpyf_lo_sub(wc, vr.as_slice(), m, n, cc);
    }
    Ok(())
}

/// Multiply `w ← op(T) w` for upper-triangular `T`, in place, column by
/// column. Shared by the GEQRT/TSQRT/TTQRT apply paths; `tmp` is the
/// caller's length-`n` column buffer (workspace-owned, so the apply paths
/// cannot drift apart in their scratch sizing).
pub(crate) fn apply_tfac_in_place<T: Scalar>(
    tfac: &Matrix<T>,
    w: &mut MatrixViewMut<'_, T>,
    tmp: &mut [T],
    side: ApplySide,
) {
    let n = tfac.rows();
    let nc = w.cols();
    let tmp = &mut tmp[..n];
    for jc in 0..nc {
        {
            let wc = w.col(jc);
            match side {
                ApplySide::Transpose => {
                    // (T^T w)[i] = sum_{p <= i} T[p,i] w[p]: fused dots
                    // over the stored prefixes of T's columns.
                    micro::dotf_tri(wc, tfac.as_slice(), n, n, 1, tmp);
                }
                ApplySide::NoTranspose => {
                    // (T w)[i] = sum_{p >= i} T[i,p] w[p]: fused axpys of
                    // T's column prefixes scaled by w.
                    tmp.fill(T::ZERO);
                    micro::axpyf_tri_add(wc, tfac.as_slice(), n, n, 1, tmp);
                }
            }
        }
        w.col_mut(jc).copy_from_slice(tmp);
    }
}

/// Update-for-triangulation step (paper Eq. 6): `c ← Qᵀ c` using the
/// factorization produced by [`geqrt`] on the diagonal tile.
pub fn unmqr<T: Scalar>(vr: &Matrix<T>, tfac: &Matrix<T>, c: &mut Matrix<T>) -> Result<()> {
    geqrt_apply(vr, tfac, c, ApplySide::Transpose)
}

/// [`unmqr`] borrowing scratch from `ws` — no heap allocation.
pub fn unmqr_ws<T: Scalar>(
    vr: &Matrix<T>,
    tfac: &Matrix<T>,
    c: &mut Matrix<T>,
    ws: &mut Workspace<T>,
) -> Result<()> {
    geqrt_apply_ws(vr, tfac, c, ApplySide::Transpose, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::{frobenius_norm, matmul, orthogonality_defect};

    /// Explicitly form Q = I - V T V^T from a factored tile.
    fn form_q(vr: &Matrix<f64>, tfac: &Matrix<f64>) -> Matrix<f64> {
        let m = vr.rows();
        let mut q = Matrix::identity(m);
        geqrt_apply(vr, tfac, &mut q, ApplySide::NoTranspose).unwrap();
        q
    }

    #[test]
    fn factorizes_square_tile() {
        let a0 = random_matrix::<f64>(8, 8, 1);
        let mut a = a0.clone();
        let t = geqrt(&mut a).unwrap();
        let r = a.upper_triangular();
        let q = form_q(&a, &t);
        let qr = matmul(&q, &r).unwrap();
        assert!(
            qr.approx_eq(&a0, 1e-12),
            "residual {}",
            frobenius_norm(&qr.sub(&a0).unwrap())
        );
        assert!(orthogonality_defect(&q).unwrap() < 1e-13);
    }

    #[test]
    fn factorizes_tall_tile() {
        let a0 = random_matrix::<f64>(12, 5, 2);
        let mut a = a0.clone();
        let t = geqrt(&mut a).unwrap();
        assert_eq!(t.dims(), (5, 5));
        let q = form_q(&a, &t); // 12x12
                                // R is the 12x5 upper trapezoid.
        let mut r = Matrix::zeros(12, 5);
        for j in 0..5 {
            for i in 0..=j {
                r[(i, j)] = a[(i, j)];
            }
        }
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a0, 1e-12));
    }

    #[test]
    fn rejects_wide_tile() {
        let mut a = Matrix::<f64>::zeros(3, 5);
        assert!(geqrt(&mut a).is_err());
    }

    #[test]
    fn tfac_is_upper_triangular() {
        let mut a = random_matrix::<f64>(6, 6, 3);
        let t = geqrt(&mut a).unwrap();
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(t[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn unmqr_matches_explicit_qt() {
        let a0 = random_matrix::<f64>(6, 6, 4);
        let mut a = a0.clone();
        let t = geqrt(&mut a).unwrap();
        let q = form_q(&a, &t);

        let c0 = random_matrix::<f64>(6, 4, 5);
        let mut c = c0.clone();
        unmqr(&a, &t, &mut c).unwrap();
        let expect = matmul(&q.transpose(), &c0).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn apply_q_then_qt_is_identity() {
        let mut a = random_matrix::<f64>(7, 7, 6);
        let t = geqrt(&mut a).unwrap();
        let c0 = random_matrix::<f64>(7, 3, 7);
        let mut c = c0.clone();
        geqrt_apply(&a, &t, &mut c, ApplySide::NoTranspose).unwrap();
        geqrt_apply(&a, &t, &mut c, ApplySide::Transpose).unwrap();
        assert!(c.approx_eq(&c0, 1e-12));
    }

    #[test]
    fn qt_a_equals_r() {
        // Applying Q^T to the original tile must reproduce R.
        let a0 = random_matrix::<f64>(5, 5, 8);
        let mut a = a0.clone();
        let t = geqrt(&mut a).unwrap();
        let mut c = a0.clone();
        unmqr(&a, &t, &mut c).unwrap();
        assert!(c.approx_eq(&a.upper_triangular(), 1e-12));
    }

    #[test]
    fn apply_shape_errors() {
        let mut a = random_matrix::<f64>(4, 4, 9);
        let t = geqrt(&mut a).unwrap();
        let mut bad_rows = Matrix::<f64>::zeros(5, 2);
        assert!(unmqr(&a, &t, &mut bad_rows).is_err());
        let bad_t = Matrix::<f64>::zeros(3, 3);
        let mut c = Matrix::<f64>::zeros(4, 2);
        assert!(unmqr(&a, &bad_t, &mut c).is_err());
    }

    #[test]
    fn identity_tile_factorizes_trivially() {
        let mut a = Matrix::<f64>::identity(4);
        let t = geqrt(&mut a).unwrap();
        // Identity is already triangular: V = 0, R = I (taus all zero).
        assert!(a.approx_eq(&Matrix::identity(4), 1e-15));
        for i in 0..4 {
            assert_eq!(t[(i, i)], 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let mut a1 = random_matrix::<f64>(8, 8, 10);
        let mut a2 = a1.clone();
        let t1 = geqrt(&mut a1).unwrap();
        let t2 = geqrt(&mut a2).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn ws_variant_bit_identical_and_reusable_dirty() {
        // One reused (never-zeroed) workspace across many tiles must give
        // byte-identical results to the allocating wrapper: every scratch
        // read is preceded by a write in the same invocation.
        let mut ws = Workspace::new(8, 8);
        for seed in 0..6 {
            let a0 = random_matrix::<f64>(8, 8, 100 + seed);
            let mut a_ref = a0.clone();
            let t_ref = geqrt(&mut a_ref).unwrap();

            let mut a = a0.clone();
            let mut t = Matrix::filled(8, 8, f64::NAN); // poison the output
            geqrt_ws(&mut a, &mut t, &mut ws).unwrap();
            assert_eq!(a, a_ref);
            assert_eq!(t, t_ref);

            let c0 = random_matrix::<f64>(8, 5, 200 + seed);
            let mut c_ref = c0.clone();
            geqrt_apply(&a_ref, &t_ref, &mut c_ref, ApplySide::Transpose).unwrap();
            let mut c = c0.clone();
            geqrt_apply_ws(&a, &t, &mut c, ApplySide::Transpose, &mut ws).unwrap();
            assert_eq!(c, c_ref);
        }
        assert_eq!(ws.resizes(), 0, "tile-sized workspace must not grow");
    }

    #[test]
    fn ws_variant_rejects_wrong_tfac_shape() {
        let mut a = random_matrix::<f64>(4, 4, 11);
        let mut bad = Matrix::<f64>::zeros(3, 3);
        assert!(geqrt_ws(&mut a, &mut bad, &mut Workspace::minimal()).is_err());
    }
}
