//! Unit suite for the register-blocked microkernel primitives.
//!
//! Every public primitive in [`tileqr_kernels::micro`] is held against an
//! independent naive sequential reference over a grid of odd shapes:
//! empty inputs, lengths straddling the `LANES` tail, the `NR` column
//! tail, the naive/blocked and blocked/vector work thresholds, and the
//! `KC` L1 strip boundary. Comparisons use summation-order-aware error
//! bounds (any two orderings of an `L`-term sum differ by at most
//! `O(L·ε)` times the absolute-value sum), so the same suite passes
//! whichever backend — scalar-blocked, AVX2-autovec, or the `simd`
//! feature's intrinsics — the dispatcher picks for a given shape.
//!
//! The backend-agreement test pins each backend in turn through the
//! `force_backend` hook and checks (a) bit-determinism of repeated calls
//! within one backend and (b) cross-backend agreement within the same
//! rounding budgets. In a default build forcing `Simd` is a no-op and the
//! test degenerates to the (still useful) determinism check.

use std::sync::Mutex;
use tileqr_kernels::micro::{
    self, active_backend, dotf, dotf_lo, dotf_tri, force_backend, larf_head, rank1f_sub, Backend,
    KC, LANES, NR,
};

/// Serializes tests that touch the process-global backend override.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic fill in [-1, 1): splitmix64 mapped to the unit interval.
fn fill(seed: u64, out: &mut [f64]) {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for v in out.iter_mut() {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        *v = (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0;
    }
}

fn vec_of(seed: u64, len: usize) -> Vec<f64> {
    let mut v = vec![0.0; len];
    fill(seed, &mut v);
    v
}

/// Error budget for one output value assembled from `terms` products whose
/// absolute values sum to `abs`: any two summation orders agree to
/// `O(terms·ε·abs)`; the constant is generous so the suite never flakes
/// while still failing loudly on indexing bugs (which err at `O(1)`).
fn budget(terms: usize, abs: f64) -> f64 {
    32.0 * (terms as f64 + 8.0) * f64::EPSILON * abs
}

fn assert_close(got: f64, want: f64, terms: usize, abs: f64, ctx: &str) {
    let tol = budget(terms, abs);
    assert!(
        (got - want).abs() <= tol,
        "{ctx}: got {got}, want {want}, tol {tol}"
    );
}

/// Lengths that straddle every boundary the blocking machinery cares
/// about: the `LANES` tail, the `NR` group tail, the naive→blocked and
/// blocked→vector work thresholds, and the `KC` strip edge.
fn lens() -> Vec<usize> {
    vec![
        0,
        1,
        2,
        3,
        LANES,
        LANES + 1,
        7,
        8,
        11,
        13,
        31,
        40,
        127,
        130,
        600,
        KC + 13,
    ]
}

fn widths() -> Vec<usize> {
    vec![0, 1, 2, 3, NR, NR + 1, 7, 8, 13]
}

#[test]
fn dotf_matches_naive_over_odd_shapes() {
    for &len in &lens() {
        for &n in &widths() {
            for pad in [0usize, 3] {
                let ld = len + pad;
                let x = vec_of(1 + len as u64, len);
                let ys = vec_of(2 + n as u64, ld * n + len);
                let mut out = vec![f64::NAN; n];
                dotf(&x, &ys, ld, n, &mut out);
                for j in 0..n {
                    let c = &ys[j * ld..j * ld + len];
                    let want: f64 = x.iter().zip(c).map(|(a, b)| a * b).sum();
                    let abs: f64 = x.iter().zip(c).map(|(a, b)| (a * b).abs()).sum();
                    assert_close(
                        out[j],
                        want,
                        len,
                        abs,
                        &format!("dotf len={len} n={n} j={j}"),
                    );
                }
            }
        }
    }
}

#[test]
fn dotf_tri_matches_naive_over_trapezoids() {
    for &len0 in &[0usize, 1, 3, 5, 17, 40, 129] {
        for &n in &widths() {
            let maxlen = len0 + n.saturating_sub(1);
            let ld = maxlen + 2;
            let x = vec_of(7, maxlen);
            let ys = vec_of(8, ld * n.max(1));
            let mut out = vec![f64::NAN; n];
            dotf_tri(&x, &ys, ld, n, len0, &mut out);
            for j in 0..n {
                let d = len0 + j;
                let c = &ys[j * ld..j * ld + d];
                let want: f64 = x[..d].iter().zip(c).map(|(a, b)| a * b).sum();
                let abs: f64 = x[..d].iter().zip(c).map(|(a, b)| (a * b).abs()).sum();
                assert_close(
                    out[j],
                    want,
                    d,
                    abs,
                    &format!("dotf_tri len0={len0} n={n} j={j}"),
                );
            }
        }
    }
}

#[test]
fn dotf_lo_matches_naive_below_the_diagonal() {
    for &len in &lens() {
        for &n in &widths() {
            if n > len {
                continue;
            }
            let ld = len + 1;
            let x = vec_of(11, len);
            let ys = vec_of(12, ld * n.max(1));
            let mut out = vec![f64::NAN; n];
            dotf_lo(&x, &ys, ld, n, &mut out);
            for j in 0..n {
                let want: f64 = if j + 1 < len {
                    x[j + 1..]
                        .iter()
                        .zip(&ys[j * ld + j + 1..j * ld + len])
                        .map(|(a, b)| a * b)
                        .sum()
                } else {
                    0.0
                };
                let abs = len as f64;
                assert_close(
                    out[j],
                    want,
                    len,
                    abs,
                    &format!("dotf_lo len={len} n={n} j={j}"),
                );
            }
        }
    }
}

#[test]
fn axpyf_variants_match_naive() {
    for &len in &lens() {
        for &n in &widths() {
            let ld = len + 2;
            let alphas = vec_of(21, n);
            let ys = vec_of(22, ld * n.max(1));
            let y0 = vec_of(23, len);

            let mut y = y0.clone();
            micro::axpyf_sub(&alphas, &ys, ld, n, &mut y);
            for i in 0..len {
                let mut want = y0[i];
                let mut abs = y0[i].abs();
                for j in 0..n {
                    want -= alphas[j] * ys[j * ld + i];
                    abs += (alphas[j] * ys[j * ld + i]).abs();
                }
                assert_close(
                    y[i],
                    want,
                    n + 1,
                    abs,
                    &format!("axpyf_sub len={len} n={n} i={i}"),
                );
            }

            // Strict-lower flavour: column j only touches rows j+1.. .
            if n <= len {
                let mut y = y0.clone();
                micro::axpyf_lo_sub(&alphas, &ys, ld, n, &mut y);
                for i in 0..len {
                    let mut want = y0[i];
                    let mut abs = y0[i].abs();
                    for j in 0..n.min(i) {
                        want -= alphas[j] * ys[j * ld + i];
                        abs += (alphas[j] * ys[j * ld + i]).abs();
                    }
                    assert_close(
                        y[i],
                        want,
                        n + 1,
                        abs,
                        &format!("axpyf_lo_sub len={len} n={n} i={i}"),
                    );
                }
            }
        }
    }
}

#[test]
fn axpyf_tri_variants_match_naive() {
    for &len0 in &[0usize, 1, 4, 9, 33, 140] {
        for &n in &widths() {
            let maxlen = len0 + n.saturating_sub(1);
            let ld = maxlen + 1;
            let alphas = vec_of(31, n);
            let ys = vec_of(32, ld * n.max(1));
            let y0 = vec_of(33, maxlen);

            for sub in [false, true] {
                let mut y = y0.clone();
                if sub {
                    micro::axpyf_tri_sub(&alphas, &ys, ld, n, len0, &mut y);
                } else {
                    micro::axpyf_tri_add(&alphas, &ys, ld, n, len0, &mut y);
                }
                for i in 0..maxlen {
                    let mut want = y0[i];
                    let mut abs = y0[i].abs();
                    for j in 0..n {
                        if i < len0 + j {
                            let t = alphas[j] * ys[j * ld + i];
                            want += if sub { -t } else { t };
                            abs += t.abs();
                        }
                    }
                    assert_close(
                        y[i],
                        want,
                        n + 1,
                        abs,
                        &format!("axpyf_tri sub={sub} len0={len0} n={n} i={i}"),
                    );
                }
            }
        }
    }
}

#[test]
fn rank1f_matches_naive() {
    for &len in &lens() {
        for &n in &widths() {
            let ld = len + 3;
            let x = vec_of(41, len);
            let w = vec_of(42, n);
            let ys0 = vec_of(43, ld * n.max(1));
            let mut ys = ys0.clone();
            rank1f_sub(&x, &w, &mut ys, ld, len, n);
            for j in 0..n {
                for i in 0..len {
                    let want = ys0[j * ld + i] - w[j] * x[i];
                    if active_backend() == Backend::Blocked {
                        // One multiply and one subtract per element, no
                        // reassociation anywhere: the scalar-blocked
                        // backend (including its AVX2-autovec build) must
                        // be bit-exact against the naive reference.
                        assert_eq!(
                            ys[j * ld + i].to_bits(),
                            want.to_bits(),
                            "rank1f_sub len={len} n={n} j={j} i={i}"
                        );
                    } else {
                        // The simd backend contracts the pair into an FMA
                        // (one rounding instead of two).
                        assert_close(
                            ys[j * ld + i],
                            want,
                            2,
                            want.abs() + (w[j] * x[i]).abs(),
                            &format!("rank1f_sub len={len} n={n} j={j} i={i}"),
                        );
                    }
                }
            }
            // Padding rows between columns must stay untouched.
            for j in 0..n {
                for i in len..ld {
                    assert_eq!(ys[j * ld + i], ys0[j * ld + i], "rank1f pad j={j} i={i}");
                }
            }
        }
    }
}

#[test]
fn larf_head_matches_naive_reflector_application() {
    for &vlen in &[0usize, 1, 3, 7, 12, 31, 63, 200] {
        for &n in &widths() {
            let ld = vlen + 1 + 2;
            let vk = vec_of(51, vlen);
            let tau = 0.7318;
            let cols0 = vec_of(52, ld * n.max(1));
            let mut cols = cols0.clone();
            larf_head(&vk, tau, &mut cols, ld, n);
            for j in 0..n {
                let c0 = &cols0[j * ld..j * ld + vlen + 1];
                let mut w = c0[0];
                let mut abs = c0[0].abs();
                for i in 0..vlen {
                    w += vk[i] * c0[1 + i];
                    abs += (vk[i] * c0[1 + i]).abs();
                }
                w *= tau;
                let got = &cols[j * ld..j * ld + vlen + 1];
                assert_close(
                    got[0],
                    c0[0] - w,
                    vlen + 2,
                    abs,
                    &format!("larf_head head vlen={vlen} n={n} j={j}"),
                );
                for i in 0..vlen {
                    assert_close(
                        got[1 + i],
                        c0[1 + i] - w * vk[i],
                        vlen + 3,
                        abs + (w * vk[i]).abs(),
                        &format!("larf_head tail vlen={vlen} n={n} j={j} i={i}"),
                    );
                }
            }
        }
    }
}

/// In rank1f terms the `w`-vector side: a simd backend must agree with the
/// scalar-blocked backend within the same rounding budgets, and each
/// backend must be bit-deterministic call to call.
#[test]
fn backends_agree_and_are_deterministic() {
    let _guard = BACKEND_LOCK.lock().unwrap();

    // Shapes spanning all three dispatch tiers.
    let shapes: Vec<(usize, usize)> = vec![(3, 2), (13, 5), (40, 8), (130, 7), (KC + 13, 8)];

    let run = |len: usize, n: usize| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let ld = len + 1;
        let x = vec_of(61, len);
        let ys = vec_of(62, ld * n);
        let alphas = vec_of(63, n);
        let mut out = vec![0.0; n];
        dotf(&x, &ys, ld, n, &mut out);
        let mut y = vec_of(64, len);
        micro::axpyf_sub(&alphas, &ys, ld, n, &mut y);
        let mut cols = vec_of(65, ld * n);
        larf_head(&x[..len.saturating_sub(1)], 0.83, &mut cols, ld, n);
        (out, y, cols)
    };

    for &(len, n) in &shapes {
        force_backend(Some(Backend::Blocked));
        assert_eq!(active_backend(), Backend::Blocked);
        let a1 = run(len, n);
        let a2 = run(len, n);
        assert_eq!(a1, a2, "blocked backend must be deterministic ({len},{n})");

        force_backend(Some(Backend::Simd));
        let b1 = run(len, n);
        let b2 = run(len, n);
        assert_eq!(b1, b2, "simd backend must be deterministic ({len},{n})");

        // Cross-backend: same values within the rounding budget. (In a
        // default build Simd is a no-op force and these are identical.)
        for (g, w) in b1.0.iter().zip(&a1.0) {
            assert_close(
                *g,
                *w,
                len,
                len as f64,
                &format!("x-backend dotf ({len},{n})"),
            );
        }
        for (g, w) in b1.1.iter().zip(&a1.1) {
            assert_close(
                *g,
                *w,
                n + 1,
                n as f64 + 1.0,
                &format!("x-backend axpyf ({len},{n})"),
            );
        }
        for (g, w) in b1.2.iter().zip(&a1.2) {
            assert_close(
                *g,
                *w,
                len + 2,
                len as f64,
                &format!("x-backend larf ({len},{n})"),
            );
        }
    }
    force_backend(None);
}

/// The dispatcher must pick tiers by shape alone — calling the same shape
/// twice through any amount of interleaved other-shape traffic yields
/// bit-identical results.
#[test]
fn tier_selection_is_a_pure_function_of_shape() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let probe = |seed: u64| -> Vec<f64> {
        let (len, n) = (37, 6);
        let ld = len;
        let x = vec_of(seed, len);
        let ys = vec_of(seed + 1, ld * n);
        let mut out = vec![0.0; n];
        dotf(&x, &ys, ld, n, &mut out);
        out
    };
    let first = probe(99);
    // Interleave traffic across the naive/blocked/vector tiers.
    for &(len, n) in &[(2usize, 1usize), (60, 4), (KC + 40, 8)] {
        let x = vec_of(5, len);
        let ys = vec_of(6, len * n);
        let mut out = vec![0.0; n];
        dotf(&x, &ys, len, n, &mut out);
    }
    let again = probe(99);
    for (a, b) in first.iter().zip(&again) {
        assert_eq!(a.to_bits(), b.to_bits(), "same shape, same bits");
    }
}
