//! Property-style tests of the individual tile kernels: every kernel must
//! preserve the invariants that make tiled QR correct, across a sweep of
//! deterministic seeded random inputs (48 cases per property, matching the
//! breadth of the previous proptest suite without the external dependency).

use tileqr_kernels::{
    geqrt, geqrt_apply, larfg, tsmqr_apply, tsqrt, ttmqr_apply, ttqrt, ApplySide,
};
use tileqr_matrix::ops::{frobenius_norm, matmul, nrm2};
use tileqr_matrix::{Matrix, Rng64};

const CASES: u64 = 48;

/// `n x n` matrix with entries in `[-10, 10)`, deterministic in `(seed, n)`.
fn seeded_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(n as u64));
    Matrix::from_fn(n, n, |_, _| rng.range_f64(-10.0, 10.0))
}

fn vstack(top: &Matrix<f64>, bot: &Matrix<f64>) -> Matrix<f64> {
    Matrix::from_fn(top.rows() + bot.rows(), top.cols(), |i, j| {
        if i < top.rows() {
            top[(i, j)]
        } else {
            bot[(i - top.rows(), j)]
        }
    })
}

#[test]
fn larfg_always_annihilates() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(1000 + case);
        let alpha = rng.range_f64(-50.0, 50.0);
        let len = rng.range_i64(0, 11) as usize;
        let tail: Vec<f64> = (0..len).map(|_| rng.range_f64(-50.0, 50.0)).collect();

        let orig_norm = {
            let mut full = vec![alpha];
            full.extend_from_slice(&tail);
            nrm2(&full)
        };
        let mut v = tail.clone();
        let h = larfg(alpha, &mut v);
        // Norm preservation: |beta| == ||[alpha, tail]||.
        assert!(
            (h.beta.abs() - orig_norm).abs() <= 1e-10 * orig_norm.max(1.0),
            "case {case}"
        );
        // tau in the stable range (or 0 for the identity case).
        assert!(h.tau == 0.0 || (1.0..=2.0).contains(&h.tau), "case {case}");
    }
}

#[test]
fn geqrt_preserves_column_norms_of_r() {
    for case in 0..CASES {
        // QR preserves each leading-column norm: ||R[..,0]|| == ||A[..,0]||.
        let a = seeded_matrix(6, 2000 + case);
        let mut work = a.clone();
        let _ = geqrt(&mut work).unwrap();
        let r0 = work[(0, 0)].abs();
        assert!(
            (r0 - nrm2(a.col(0))).abs() <= 1e-10 * nrm2(a.col(0)).max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn geqrt_apply_is_orthogonal() {
    for case in 0..CASES {
        // Applying Q^T then Q must be the identity, and it must preserve
        // Frobenius norm.
        let a = seeded_matrix(5, 3000 + case);
        let mut vr = a.clone();
        let t = geqrt(&mut vr).unwrap();
        let c0 = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 - 7.0);
        let mut c = c0.clone();
        geqrt_apply(&vr, &t, &mut c, ApplySide::Transpose).unwrap();
        assert!(
            (frobenius_norm(&c) - frobenius_norm(&c0)).abs() <= 1e-9 * frobenius_norm(&c0).max(1.0),
            "case {case}"
        );
        geqrt_apply(&vr, &t, &mut c, ApplySide::NoTranspose).unwrap();
        assert!(c.approx_eq(&c0, 1e-9), "case {case}");
    }
}

#[test]
fn tsqrt_preserves_stacked_norm() {
    for case in 0..CASES {
        let top = seeded_matrix(4, 4000 + case);
        let bot = seeded_matrix(4, 4100 + case);
        let r1_0 = top.upper_triangular();
        let mut r1 = r1_0.clone();
        let mut a2 = bot.clone();
        let _ = tsqrt(&mut r1, &mut a2).unwrap();
        // Orthogonal transform: per-column norms of [R1; A2] preserved in R1.
        for j in 0..4 {
            let before = {
                let mut v: Vec<f64> = r1_0.col(j).to_vec();
                v.extend_from_slice(bot.col(j));
                nrm2(&v)
            };
            let after = nrm2(&r1.col(j)[..=j]);
            assert!(
                (before - after).abs() <= 1e-9 * before.max(1.0),
                "case {case}, col {j}: {before} vs {after}"
            );
        }
    }
}

#[test]
fn tsmqr_apply_round_trips() {
    for case in 0..CASES {
        let top = seeded_matrix(4, 5000 + case);
        let bot = seeded_matrix(4, 5100 + case);
        let c1 = seeded_matrix(4, 5200 + case);
        let c2 = seeded_matrix(4, 5300 + case);
        let mut r1 = top.upper_triangular();
        let mut v2 = bot.clone();
        let t = tsqrt(&mut r1, &mut v2).unwrap();
        let mut x1 = c1.clone();
        let mut x2 = c2.clone();
        tsmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::Transpose).unwrap();
        // Norm of the stack preserved.
        let before = frobenius_norm(&vstack(&c1, &c2));
        let after = frobenius_norm(&vstack(&x1, &x2));
        assert!(
            (before - after).abs() <= 1e-9 * before.max(1.0),
            "case {case}"
        );
        tsmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::NoTranspose).unwrap();
        assert!(x1.approx_eq(&c1, 1e-9), "case {case}");
        assert!(x2.approx_eq(&c2, 1e-9), "case {case}");
    }
}

#[test]
fn ttqrt_keeps_triangular_structure() {
    for case in 0..CASES {
        let top = seeded_matrix(5, 6000 + case);
        let bot = seeded_matrix(5, 6100 + case);
        let mut r1 = top.upper_triangular();
        let mut r2 = bot.upper_triangular();
        let _ = ttqrt(&mut r1, &mut r2).unwrap();
        for j in 0..5 {
            for i in j + 1..5 {
                assert_eq!(r1[(i, j)], 0.0, "case {case} at ({i},{j})");
                assert_eq!(r2[(i, j)], 0.0, "case {case} at ({i},{j})");
            }
        }
    }
}

#[test]
fn ttmqr_is_orthogonal() {
    for case in 0..CASES {
        let top = seeded_matrix(4, 7000 + case);
        let bot = seeded_matrix(4, 7100 + case);
        let c1 = seeded_matrix(4, 7200 + case);
        let c2 = seeded_matrix(4, 7300 + case);
        let mut r1 = top.upper_triangular();
        let mut v2 = bot.upper_triangular();
        let t = ttqrt(&mut r1, &mut v2).unwrap();
        let mut x1 = c1.clone();
        let mut x2 = c2.clone();
        ttmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::Transpose).unwrap();
        ttmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::NoTranspose).unwrap();
        assert!(x1.approx_eq(&c1, 1e-9), "case {case}");
        assert!(x2.approx_eq(&c2, 1e-9), "case {case}");
    }
}

#[test]
fn full_tile_qr_reconstructs() {
    for case in 0..CASES {
        // QR of [A] via GEQRT + explicit Q: ||A - QR|| tiny.
        let a = seeded_matrix(6, 8000 + case);
        let mut vr = a.clone();
        let t = geqrt(&mut vr).unwrap();
        let mut q = Matrix::identity(6);
        geqrt_apply(&vr, &t, &mut q, ApplySide::NoTranspose).unwrap();
        let r = vr.upper_triangular();
        let qr = matmul(&q, &r).unwrap();
        let scale = frobenius_norm(&a).max(1.0);
        assert!(
            frobenius_norm(&qr.sub(&a).unwrap()) <= 1e-10 * scale,
            "case {case}: residual too large"
        );
    }
}
