//! Property-based tests of the individual tile kernels: every kernel must
//! preserve the invariants that make tiled QR correct, for arbitrary
//! well-formed inputs.

use proptest::prelude::*;
use tileqr_kernels::{
    geqrt, geqrt_apply, larfg, tsmqr_apply, tsqrt, ttmqr_apply, ttqrt, ApplySide,
};
use tileqr_matrix::ops::{frobenius_norm, matmul, nrm2};
use tileqr_matrix::Matrix;

fn matrix_strategy(n: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |v| Matrix::from_col_major(n, n, v).unwrap())
}

fn vstack(top: &Matrix<f64>, bot: &Matrix<f64>) -> Matrix<f64> {
    Matrix::from_fn(top.rows() + bot.rows(), top.cols(), |i, j| {
        if i < top.rows() {
            top[(i, j)]
        } else {
            bot[(i - top.rows(), j)]
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn larfg_always_annihilates(
        alpha in -50.0f64..50.0,
        tail in proptest::collection::vec(-50.0f64..50.0, 0..12),
    ) {
        let orig_norm = {
            let mut full = vec![alpha];
            full.extend_from_slice(&tail);
            nrm2(&full)
        };
        let mut v = tail.clone();
        let h = larfg(alpha, &mut v);
        // Norm preservation: |beta| == ||[alpha, tail]||.
        prop_assert!((h.beta.abs() - orig_norm).abs() <= 1e-10 * orig_norm.max(1.0));
        // tau in the stable range (or 0 for the identity case).
        prop_assert!(h.tau == 0.0 || (1.0..=2.0).contains(&h.tau));
    }

    #[test]
    fn geqrt_preserves_column_norms_of_r(a in matrix_strategy(6)) {
        // QR preserves each leading-column norm: ||R[..,0]|| == ||A[..,0]||.
        let mut work = a.clone();
        let _ = geqrt(&mut work).unwrap();
        let r0: f64 = (0..1).map(|_| work[(0, 0)].abs()).sum();
        prop_assert!((r0 - nrm2(a.col(0))).abs() <= 1e-10 * nrm2(a.col(0)).max(1.0));
    }

    #[test]
    fn geqrt_apply_is_orthogonal(a in matrix_strategy(5)) {
        // Applying Q^T then Q must be the identity, and it must preserve
        // Frobenius norm.
        let mut vr = a.clone();
        let t = geqrt(&mut vr).unwrap();
        let c0 = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 - 7.0);
        let mut c = c0.clone();
        geqrt_apply(&vr, &t, &mut c, ApplySide::Transpose).unwrap();
        prop_assert!(
            (frobenius_norm(&c) - frobenius_norm(&c0)).abs()
                <= 1e-9 * frobenius_norm(&c0).max(1.0)
        );
        geqrt_apply(&vr, &t, &mut c, ApplySide::NoTranspose).unwrap();
        prop_assert!(c.approx_eq(&c0, 1e-9));
    }

    #[test]
    fn tsqrt_preserves_stacked_norm(
        top in matrix_strategy(4),
        bot in matrix_strategy(4),
    ) {
        let r1_0 = top.upper_triangular();
        let mut r1 = r1_0.clone();
        let mut a2 = bot.clone();
        let _ = tsqrt(&mut r1, &mut a2).unwrap();
        // Orthogonal transform: per-column norms of [R1; A2] preserved in R1.
        for j in 0..4 {
            let before = {
                let mut v: Vec<f64> = r1_0.col(j).to_vec();
                v.extend_from_slice(bot.col(j));
                nrm2(&v)
            };
            let after = nrm2(&r1.col(j)[..=j]);
            prop_assert!(
                (before - after).abs() <= 1e-9 * before.max(1.0),
                "col {j}: {before} vs {after}"
            );
        }
    }

    #[test]
    fn tsmqr_apply_round_trips(
        top in matrix_strategy(4),
        bot in matrix_strategy(4),
        c1 in matrix_strategy(4),
        c2 in matrix_strategy(4),
    ) {
        let mut r1 = top.upper_triangular();
        let mut v2 = bot.clone();
        let t = tsqrt(&mut r1, &mut v2).unwrap();
        let mut x1 = c1.clone();
        let mut x2 = c2.clone();
        tsmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::Transpose).unwrap();
        // Norm of the stack preserved.
        let before = frobenius_norm(&vstack(&c1, &c2));
        let after = frobenius_norm(&vstack(&x1, &x2));
        prop_assert!((before - after).abs() <= 1e-9 * before.max(1.0));
        tsmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::NoTranspose).unwrap();
        prop_assert!(x1.approx_eq(&c1, 1e-9));
        prop_assert!(x2.approx_eq(&c2, 1e-9));
    }

    #[test]
    fn ttqrt_keeps_triangular_structure(
        top in matrix_strategy(5),
        bot in matrix_strategy(5),
    ) {
        let mut r1 = top.upper_triangular();
        let mut r2 = bot.upper_triangular();
        let _ = ttqrt(&mut r1, &mut r2).unwrap();
        for j in 0..5 {
            for i in j + 1..5 {
                prop_assert_eq!(r1[(i, j)], 0.0);
                prop_assert_eq!(r2[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn ttmqr_is_orthogonal(
        top in matrix_strategy(4),
        bot in matrix_strategy(4),
        c1 in matrix_strategy(4),
        c2 in matrix_strategy(4),
    ) {
        let mut r1 = top.upper_triangular();
        let mut v2 = bot.upper_triangular();
        let t = ttqrt(&mut r1, &mut v2).unwrap();
        let mut x1 = c1.clone();
        let mut x2 = c2.clone();
        ttmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::Transpose).unwrap();
        ttmqr_apply(&v2, &t, &mut x1, &mut x2, ApplySide::NoTranspose).unwrap();
        prop_assert!(x1.approx_eq(&c1, 1e-9));
        prop_assert!(x2.approx_eq(&c2, 1e-9));
    }

    #[test]
    fn full_tile_qr_reconstructs(a in matrix_strategy(6)) {
        // QR of [A] via GEQRT + explicit Q: ||A - QR|| tiny.
        let mut vr = a.clone();
        let t = geqrt(&mut vr).unwrap();
        let mut q = Matrix::identity(6);
        geqrt_apply(&vr, &t, &mut q, ApplySide::NoTranspose).unwrap();
        let r = vr.upper_triangular();
        let qr = matmul(&q, &r).unwrap();
        let scale = frobenius_norm(&a).max(1.0);
        prop_assert!(
            frobenius_norm(&qr.sub(&a).unwrap()) <= 1e-10 * scale,
            "residual too large"
        );
    }
}
