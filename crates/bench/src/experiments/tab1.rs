//! Table I: the number of tiles operated per step for a remaining
//! `M x N` panel — the paper's coarse accounting, cross-checked against
//! exact DAG counts.

use crate::experiments::print_table;
use tileqr::dag::counts;

/// One row of the reproduced table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Remaining panel rows.
    pub m: usize,
    /// Remaining panel columns.
    pub n: usize,
    /// Paper's `(T, E, UT, UE)` counts.
    pub paper: (usize, usize, usize, usize),
    /// Exact kernel counts `(GEQRT, TSQRT, UNMQR, TSMQR)` from the DAG.
    pub exact: counts::PanelCounts,
    /// Whether the paper's sums reconcile with the exact counts.
    pub consistent: bool,
}

/// Evaluate the table over a sweep of panel shapes.
pub fn run() -> Vec<Row> {
    [(2, 2), (4, 4), (8, 8), (16, 16), (10, 5), (5, 10), (50, 50)]
        .into_iter()
        .map(|(m, n)| Row {
            m,
            n,
            paper: counts::paper_table1(m, n),
            exact: counts::panel_counts_from_dag(m, n),
            consistent: counts::table1_consistent(m, n),
        })
        .collect()
}

/// Print the table.
pub fn print() {
    let rows = run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.m, r.n),
                r.paper.0.to_string(),
                r.paper.1.to_string(),
                r.paper.2.to_string(),
                r.paper.3.to_string(),
                format!(
                    "{}+{}={}, {}+{}={}",
                    r.exact.geqrt,
                    r.exact.tsqrt,
                    r.exact.geqrt + r.exact.tsqrt,
                    r.exact.unmqr,
                    r.exact.tsmqr,
                    r.exact.unmqr + r.exact.tsmqr
                ),
                if r.consistent { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table I — tiles operated per step for a remaining M x N panel",
        &[
            "M x N",
            "T(=M)",
            "E(=M)",
            "UT(=M(N-1))",
            "UE(=M(N-1))",
            "exact (T+E, UT+UE)",
            "consistent",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_consistent() {
        assert!(run().iter().all(|r| r.consistent));
    }

    #[test]
    fn paper_values_match_formula() {
        for r in run() {
            assert_eq!(r.paper, (r.m, r.m, r.m * (r.n - 1), r.m * (r.n - 1)));
        }
    }
}
