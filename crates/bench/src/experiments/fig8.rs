//! Fig. 8: scalability — whole-QR time versus the number of parallel
//! cores (4 = CPU, 516 = +GTX580, 2052 = +GTX680, 3588 = +GTX680) for
//! matrix sizes 3200–16000.

use crate::experiments::{print_table, simulate, TILE};
use tileqr::hetero::{profiles, DistributionStrategy, MainDevicePolicy};

/// One curve point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Matrix size.
    pub n: usize,
    /// Total parallel cores of the configuration.
    pub cores: usize,
    /// Simulated seconds.
    pub seconds: f64,
}

/// Matrix sizes of the paper's curves.
pub const SIZES: [usize; 5] = [3200, 6400, 9600, 12800, 16000];

/// Run all four configurations for all five sizes.
pub fn run() -> Vec<Point> {
    let mut out = Vec::new();
    for n in SIZES {
        for n_gpus in 0..=3usize {
            let platform = profiles::testbed_subset(n_gpus, true, TILE);
            let stats = simulate(
                &platform,
                n,
                MainDevicePolicy::Auto,
                DistributionStrategy::GuideArray,
                Some(platform.num_devices()),
            );
            out.push(Point {
                n,
                cores: platform.total_cores(),
                seconds: stats.makespan_s(),
            });
        }
    }
    out
}

/// Print the figure as a table (one row per size, one column per config).
pub fn print() {
    let points = run();
    let mut table = Vec::new();
    for n in SIZES {
        let mut row = vec![n.to_string()];
        for p in points.iter().filter(|p| p.n == n) {
            row.push(format!("{:.3}", p.seconds));
        }
        table.push(row);
    }
    print_table(
        "Fig. 8 — QR time (s) vs parallel cores (4 / 516 / 2052 / 3588)",
        &[
            "size",
            "CPU (4)",
            "+GTX580 (516)",
            "+GTX680 (2052)",
            "+GTX680 (3588)",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_curve_decreases() {
        let points = run();
        for n in SIZES {
            let curve: Vec<f64> = points
                .iter()
                .filter(|p| p.n == n)
                .map(|p| p.seconds)
                .collect();
            assert_eq!(curve.len(), 4);
            for w in curve.windows(2) {
                assert!(w[1] < w[0], "size {n}: {w:?} not decreasing");
            }
        }
    }

    #[test]
    fn cpu_to_full_speedup_is_large() {
        // The paper reports 19.9 s -> 0.28 s at 3200² (71x). Our calibrated
        // substrate compresses this, but the speedup must still be an
        // order of magnitude or more.
        let points = run();
        let cpu = points.iter().find(|p| p.n == 3200 && p.cores == 4).unwrap();
        let full = points
            .iter()
            .find(|p| p.n == 3200 && p.cores == 3588)
            .unwrap();
        assert!(
            cpu.seconds / full.seconds > 10.0,
            "speedup {}",
            cpu.seconds / full.seconds
        );
    }

    #[test]
    fn core_counts_match_paper() {
        let points = run();
        let counts: Vec<usize> = points.iter().take(4).map(|p| p.cores).collect();
        assert_eq!(counts, vec![4, 516, 2052, 3588]);
    }
}
