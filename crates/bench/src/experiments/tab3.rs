//! Table III: the number-of-devices optimization — predicted
//! `T(p) = Top(p) + Tcomm(p)` versus actual (simulated) time for 1, 2 and
//! 3 GPUs, normalized to the fastest, for matrix sizes 160–4000.

use crate::experiments::{simulate, TILE};
use tileqr::hetero::{device_count, profiles, DistributionStrategy, MainDevicePolicy};

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Matrix size.
    pub n: usize,
    /// Predicted `T(p)` normalized to the smallest, for p = 1, 2, 3.
    pub predicted: [f64; 3],
    /// Actual (simulated) time normalized to the smallest, for p = 1, 2, 3.
    pub actual: [f64; 3],
}

impl Row {
    /// Index (0-based) of the predicted optimum.
    pub fn predicted_best(&self) -> usize {
        argmin(&self.predicted)
    }

    /// Index (0-based) of the actual optimum.
    pub fn actual_best(&self) -> usize {
        argmin(&self.actual)
    }
}

fn argmin(v: &[f64; 3]) -> usize {
    (0..3).min_by(|&a, &b| v[a].total_cmp(&v[b])).unwrap()
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    [v[0] / min, v[1] / min, v[2] / min]
}

/// Matrix sizes of the paper's table.
pub fn sizes() -> Vec<usize> {
    (160..=4000).step_by(160).collect()
}

/// Run the table (GPU-only platform, GTX580 as main, as in the paper:
/// "We only consider the number of GPUs").
pub fn run() -> Vec<Row> {
    let platform = profiles::testbed_subset(3, false, TILE);
    sizes()
        .into_iter()
        .map(|n| {
            let nt = n.div_ceil(TILE);
            let sel = device_count::select_device_count(&platform, 0, nt, nt);
            let mut predicted = [0.0; 3];
            for pred in &sel.predictions {
                predicted[pred.p - 1] = pred.total_us();
            }
            let mut actual = [0.0; 3];
            for p in 1..=3 {
                actual[p - 1] = simulate(
                    &platform,
                    n,
                    MainDevicePolicy::Fixed(0),
                    DistributionStrategy::GuideArray,
                    Some(p),
                )
                .makespan_us;
            }
            Row {
                n,
                predicted: normalize(predicted),
                actual: normalize(actual),
            }
        })
        .collect()
}

/// Print the table in the paper's normalized format.
pub fn print() {
    let rows = run();
    println!("\n=== Table III — device-count optimization: predicted vs actual (normalized) ===");
    println!(
        "{:>6}  {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}   {:>4} {:>4}",
        "size", "p1G", "p2G", "p3G", "a1G", "a2G", "a3G", "pred", "act"
    );
    for r in &rows {
        println!(
            "{:>6}  {:>8.2} {:>8.2} {:>8.2}   {:>8.2} {:>8.2} {:>8.2}   {:>3}G {:>3}G",
            r.n,
            r.predicted[0],
            r.predicted[1],
            r.predicted[2],
            r.actual[0],
            r.actual[1],
            r.actual[2],
            r.predicted_best() + 1,
            r.actual_best() + 1
        );
    }
    let agree = rows
        .iter()
        .filter(|r| r.predicted_best() == r.actual_best())
        .count();
    println!(
        "prediction matches actual optimum on {agree}/{} sizes",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_minimum_is_one() {
        for r in run() {
            let pmin = r.predicted.iter().cloned().fold(f64::INFINITY, f64::min);
            let amin = r.actual.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((pmin - 1.0).abs() < 1e-12);
            assert!((amin - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prediction_matches_actual_on_most_sizes() {
        let rows = run();
        let agree = rows
            .iter()
            .filter(|r| r.predicted_best() == r.actual_best())
            .count();
        assert!(
            agree * 4 >= rows.len() * 3,
            "agreement only {agree}/{}",
            rows.len()
        );
    }

    #[test]
    fn three_bands_like_the_paper() {
        let rows = run();
        assert_eq!(rows.first().unwrap().actual_best(), 0, "small: 1 GPU");
        assert_eq!(rows.last().unwrap().actual_best(), 2, "large: 3 GPUs");
        assert!(
            rows.iter().any(|r| r.actual_best() == 1),
            "a 2-GPU band must exist"
        );
    }
}
