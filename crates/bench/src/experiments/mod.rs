//! One module per reproduced table/figure.

pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod tab1;
pub mod tab3;

use tileqr::hetero::{fastsim, plan, DistributionStrategy, MainDevicePolicy, Platform, SimStats};

/// The paper's tile size.
pub const TILE: usize = 16;

/// Simulate one square tiled QR of matrix size `n` on `platform` with the
/// given knobs — the shared entry point of the figure experiments.
pub fn simulate(
    platform: &Platform,
    n: usize,
    policy: MainDevicePolicy,
    strategy: DistributionStrategy,
    force_p: Option<usize>,
) -> SimStats {
    let nt = n.div_ceil(TILE).max(1);
    let hp = plan::plan_with(platform, nt, nt, policy, strategy, force_p);
    fastsim::simulate_fast(platform, &hp, nt, nt)
}

/// Render a header + rows as an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, w) in widths.iter().enumerate().take(ncols) {
            s.push_str(&format!(
                "{:>w$}  ",
                cells.get(i).map_or("", |c| c.as_str()),
                w = w
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}
