//! Fig. 10: whole-QR time by tile-distribution strategy — the paper's
//! distribution guide array versus cores-proportional and even
//! distributions, for matrix sizes 3200–16000.

use crate::experiments::{print_table, simulate, TILE};
use tileqr::hetero::{profiles, DistributionStrategy, MainDevicePolicy};

/// One x-position of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Matrix size.
    pub n: usize,
    /// Seconds with the distribution guide array (the paper's method).
    pub guide_s: f64,
    /// Seconds with cores-proportional shares.
    pub cores_s: f64,
    /// Seconds with even shares (CPU scaled by cores, per the paper).
    pub even_s: f64,
    /// Seconds with the boustrophedon guide array (our extension, not in
    /// the paper — cancels Eq. 12's positional bias).
    pub balanced_s: f64,
}

/// Matrix sizes of the paper's x-axis.
pub const SIZES: [usize; 5] = [3200, 6400, 9600, 12800, 16000];

/// Run all three strategies for all sizes (full CPU + 3 GPU platform).
pub fn run() -> Vec<Row> {
    let platform = profiles::paper_testbed(TILE);
    SIZES
        .iter()
        .map(|&n| {
            let t = |strategy| {
                simulate(&platform, n, MainDevicePolicy::Fixed(0), strategy, Some(4)).makespan_s()
            };
            Row {
                n,
                guide_s: t(DistributionStrategy::GuideArray),
                cores_s: t(DistributionStrategy::CoresProportional),
                even_s: t(DistributionStrategy::Even),
                balanced_s: t(DistributionStrategy::GuideArrayBalanced),
            }
        })
        .collect()
}

/// Print the figure as a table.
pub fn print() {
    let rows = run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.3}", r.guide_s),
                format!("{:.3}", r.cores_s),
                format!("{:.3}", r.even_s),
                format!("{:.3}", r.balanced_s),
                format!("{:+.1}%", 100.0 * (r.even_s / r.guide_s - 1.0)),
                format!("{:+.1}%", 100.0 * (r.cores_s / r.guide_s - 1.0)),
            ]
        })
        .collect();
    print_table(
        "Fig. 10 — QR time (s) by tile distribution",
        &[
            "size",
            "guide array",
            "by cores",
            "even",
            "balanced (ext)",
            "even vs guide",
            "cores vs guide",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_clearly_loses_at_large_sizes() {
        let rows = run();
        let r = rows.last().unwrap();
        assert!(
            r.even_s > r.guide_s * 1.15,
            "even {} vs guide {}",
            r.even_s,
            r.guide_s
        );
    }

    #[test]
    fn guide_never_loses_materially() {
        for r in run() {
            // Eq. 12's positional bias costs the guide array a few percent
            // at some sizes (see EXPERIMENTS.md and the GuideArrayBalanced
            // extension); near-parity with cores-based is the contract.
            assert!(
                r.guide_s <= r.cores_s * 1.05,
                "size {}: guide {} vs cores {}",
                r.n,
                r.guide_s,
                r.cores_s
            );
            assert!(r.guide_s <= r.even_s * 1.02);
        }
    }

    #[test]
    fn balanced_extension_recovers_the_win() {
        // The boustrophedon mapping should match or beat both baselines.
        let r = run().into_iter().last().unwrap();
        assert!(
            r.balanced_s <= r.cores_s * 1.01,
            "balanced {} vs cores {}",
            r.balanced_s,
            r.cores_s
        );
        assert!(r.balanced_s <= r.guide_s * 1.01);
    }

    #[test]
    fn gaps_grow_with_size() {
        // "For smaller matrix sizes, the distribution method does not have
        // much effect … as the matrix size becomes larger, each method
        // shows different increasing speed."
        let rows = run();
        let first_gap = rows.first().unwrap().even_s / rows.first().unwrap().guide_s;
        let last_gap = rows.last().unwrap().even_s / rows.last().unwrap().guide_s;
        assert!(last_gap >= first_gap * 0.95, "{first_gap} -> {last_gap}");
    }
}
