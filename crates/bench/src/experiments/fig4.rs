//! Fig. 4: per-kernel time (T, E, UT/UE) per device versus tile size.
//!
//! The paper measures single-tile kernel latency on each device for tile
//! sizes 4–28; our device profiles are *calibrated to those curves*, so
//! this experiment prints the model and doubles as the calibration audit.
//! (Real measured host-kernel latencies — the same experiment run on the
//! hardware we actually have — live in `benches/kernels.rs`.)

use crate::experiments::print_table;
use tileqr::hetero::{profiles, DeviceProfile, KernelClass};

/// One row: device, kernel class, per-tile-size latencies.
#[derive(Debug, Clone)]
pub struct Row {
    /// Device name.
    pub device: String,
    /// Kernel class label ("T", "E" or "UT/UE").
    pub class: &'static str,
    /// Latency in µs per tile size in [`TILE_SIZES`].
    pub times_us: Vec<f64>,
}

/// The tile sizes on the paper's x-axis.
pub const TILE_SIZES: [usize; 7] = [4, 8, 12, 16, 20, 24, 28];

/// Compute all rows.
pub fn run() -> Vec<Row> {
    let devices: Vec<DeviceProfile> = vec![
        profiles::gtx580(),
        profiles::gtx680(),
        profiles::cpu_i7_3820(),
    ];
    let classes = [
        (KernelClass::Triangulation, "T"),
        (KernelClass::Elimination, "E"),
        (KernelClass::Update, "UT/UE"),
    ];
    let mut rows = Vec::new();
    for dev in &devices {
        for (class, label) in classes {
            rows.push(Row {
                device: dev.name.clone(),
                class: label,
                times_us: TILE_SIZES
                    .iter()
                    .map(|&b| dev.kernel_time_us(class, b))
                    .collect(),
            });
        }
    }
    rows
}

/// Print the figure as a table.
pub fn print() {
    let rows = run();
    let mut header = vec!["device", "step"];
    let size_labels: Vec<String> = TILE_SIZES.iter().map(|b| format!("b={b}")).collect();
    header.extend(size_labels.iter().map(|s| s.as_str()));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.device.clone(), r.class.to_string()];
            row.extend(r.times_us.iter().map(|t| format!("{t:.1}us")));
            row
        })
        .collect();
    print_table(
        "Fig. 4 — QR time for each step on each device (calibrated model)",
        &header,
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_three_devices() {
        let rows = run();
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn curves_increase_with_tile_size() {
        for r in run() {
            for w in r.times_us.windows(2) {
                assert!(w[1] > w[0], "{} {} not increasing", r.device, r.class);
            }
        }
    }

    #[test]
    fn update_curve_is_lowest_per_device() {
        let rows = run();
        for chunk in rows.chunks(3) {
            let (t, e, u) = (&chunk[0], &chunk[1], &chunk[2]);
            for i in 0..TILE_SIZES.len() {
                assert!(t.times_us[i] > e.times_us[i]);
                assert!(e.times_us[i] > u.times_us[i]);
            }
        }
    }
}
