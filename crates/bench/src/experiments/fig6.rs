//! Fig. 6: whole-QR time for 1, 2 and 3 GPUs over matrix sizes 160–4000
//! (the paper shows one full view plus two zoomed views of the same data).

use crate::experiments::{print_table, simulate};
use tileqr::hetero::{profiles, DistributionStrategy, MainDevicePolicy};

/// One x-position of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Matrix size.
    pub n: usize,
    /// Seconds for 1 GPU (GTX580).
    pub one_gpu_s: f64,
    /// Seconds for 2 GPUs (GTX580 + GTX680).
    pub two_gpus_s: f64,
    /// Seconds for 3 GPUs.
    pub three_gpus_s: f64,
}

impl Row {
    /// Which device count was fastest (1, 2 or 3).
    pub fn fastest(&self) -> usize {
        let ts = [self.one_gpu_s, self.two_gpus_s, self.three_gpus_s];
        (0..3).min_by(|&a, &b| ts[a].total_cmp(&ts[b])).unwrap() + 1
    }
}

/// Matrix sizes of the paper's x-axis.
pub fn sizes() -> Vec<usize> {
    (160..=4000).step_by(160).collect()
}

/// Run the sweep on the GPU-only platform (GTX580 main, as selected).
pub fn run() -> Vec<Row> {
    let platform = profiles::testbed_subset(3, false, crate::experiments::TILE);
    sizes()
        .into_iter()
        .map(|n| {
            let t = |p: usize| {
                simulate(
                    &platform,
                    n,
                    MainDevicePolicy::Fixed(0),
                    DistributionStrategy::GuideArray,
                    Some(p),
                )
                .makespan_s()
            };
            Row {
                n,
                one_gpu_s: t(1),
                two_gpus_s: t(2),
                three_gpus_s: t(3),
            }
        })
        .collect()
}

/// Print the figure as a table.
pub fn print() {
    let rows = run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.4}", r.one_gpu_s),
                format!("{:.4}", r.two_gpus_s),
                format!("{:.4}", r.three_gpus_s),
                format!("{}G", r.fastest()),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — QR time (s) for 1/2/3 GPUs vs matrix size",
        &["size", "1 GPU", "2 GPUs", "3 GPUs", "fastest"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_regimes_appear_in_order() {
        let rows = run();
        let firsts = rows.first().unwrap().fastest();
        let lasts = rows.last().unwrap().fastest();
        assert_eq!(firsts, 1, "smallest sizes favour one GPU");
        assert_eq!(lasts, 3, "largest sizes favour three GPUs");
        // Fastest count never decreases with size.
        let mut prev = 0;
        for r in &rows {
            let f = r.fastest();
            assert!(f >= prev, "regression at {}", r.n);
            prev = f;
        }
    }

    #[test]
    fn times_grow_with_size() {
        let rows = run();
        assert!(rows.last().unwrap().three_gpus_s > rows.first().unwrap().three_gpus_s);
    }
}
