//! Fig. 5: proportion of calculation vs communication time, normalized by
//! their sum, on the 4-core CPU + three GPUs, for matrix sizes 160–3840.

use crate::experiments::{print_table, simulate, TILE};
use tileqr::hetero::{profiles, DistributionStrategy, MainDevicePolicy};

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Matrix size.
    pub n: usize,
    /// Calculation share of `calc + comm`.
    pub calc_fraction: f64,
    /// Communication share of `calc + comm`.
    pub comm_fraction: f64,
}

/// Matrix sizes of the paper's x-axis.
pub fn sizes() -> Vec<usize> {
    (160..=3840).step_by(160).collect()
}

/// Run the sweep (all four devices participate, as in the paper).
pub fn run() -> Vec<Row> {
    let platform = profiles::paper_testbed(TILE);
    sizes()
        .into_iter()
        .map(|n| {
            let stats = simulate(
                &platform,
                n,
                MainDevicePolicy::Auto,
                DistributionStrategy::GuideArray,
                Some(4),
            );
            let comm = stats.comm_fraction();
            Row {
                n,
                calc_fraction: 1.0 - comm,
                comm_fraction: comm,
            }
        })
        .collect()
}

/// Print the figure as a table.
pub fn print() {
    let rows = run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}%", 100.0 * r.calc_fraction),
                format!("{:.1}%", 100.0 * r.comm_fraction),
            ]
        })
        .collect();
    print_table(
        "Fig. 5 — calculation vs communication share (CPU + 3 GPUs)",
        &["size", "calculation", "communication"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for r in run() {
            assert!((r.calc_fraction + r.comm_fraction - 1.0).abs() < 1e-12);
            assert!(r.comm_fraction >= 0.0 && r.comm_fraction <= 1.0);
        }
    }

    #[test]
    fn comm_share_falls_with_size() {
        let rows = run();
        let small = rows.first().unwrap().comm_fraction;
        let large = rows.last().unwrap().comm_fraction;
        assert!(
            small > 2.0 * large,
            "expected a clear decrease: {small:.4} -> {large:.4}"
        );
    }
}
