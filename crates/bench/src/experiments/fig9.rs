//! Fig. 9: whole-QR time depending on the main-computing-device choice:
//! GTX580 (the paper's selection), GTX680, no specific main device, and
//! CPU, for matrix sizes 3200–16000.

use crate::experiments::{print_table, simulate, TILE};
use tileqr::hetero::{main_select, profiles, DistributionStrategy, MainDevicePolicy};

/// One x-position of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Matrix size.
    pub n: usize,
    /// Seconds with the GTX580 as main (the paper's selection).
    pub gtx580_s: f64,
    /// Seconds with a GTX680 as main.
    pub gtx680_s: f64,
    /// Seconds with no specific main device.
    pub none_s: f64,
    /// Seconds with the CPU as main.
    pub cpu_s: f64,
}

/// Matrix sizes of the paper's x-axis.
pub const SIZES: [usize; 5] = [3200, 6400, 9600, 12800, 16000];

/// Run all four policies for all sizes.
pub fn run() -> Vec<Row> {
    let platform = profiles::paper_testbed(TILE);
    SIZES
        .iter()
        .map(|&n| {
            let t = |policy| {
                simulate(
                    &platform,
                    n,
                    policy,
                    DistributionStrategy::GuideArray,
                    Some(4),
                )
                .makespan_s()
            };
            Row {
                n,
                gtx580_s: t(MainDevicePolicy::Fixed(0)),
                gtx680_s: t(MainDevicePolicy::Fixed(1)),
                none_s: t(MainDevicePolicy::None),
                cpu_s: t(MainDevicePolicy::Fixed(3)),
            }
        })
        .collect()
}

/// Print the figure as a table.
pub fn print() {
    let platform = profiles::paper_testbed(TILE);
    let rows = run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.3}", r.gtx580_s),
                format!("{:.3}", r.gtx680_s),
                format!("{:.3}", r.none_s),
                format!("{:.3}", r.cpu_s),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — QR time (s) by main computing device",
        &["size", "GTX580 (ours)", "GTX680", "None", "CPU"],
        &table,
    );
    let sel = main_select::select_main_device(&platform, 1000, 1000);
    println!(
        "Algorithm 2 selects: {} (device {})",
        platform.device(sel.device).name,
        sel.device
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_as_main_is_worst_by_far() {
        for r in run() {
            assert!(r.cpu_s > 3.0 * r.gtx580_s, "size {}: {r:?}", r.n);
            assert!(r.cpu_s > r.gtx680_s && r.cpu_s > r.none_s);
        }
    }

    #[test]
    fn gtx580_at_least_competitive() {
        // The paper reports a 13% win over GTX680-as-main; our calibration
        // compresses the margin to low single digits (see EXPERIMENTS.md),
        // so assert near-parity-or-better.
        for r in run() {
            assert!(
                r.gtx580_s <= r.gtx680_s * 1.05,
                "size {}: 580 {} vs 680 {}",
                r.n,
                r.gtx580_s,
                r.gtx680_s
            );
        }
    }

    #[test]
    fn algorithm2_picks_gtx580() {
        let platform = profiles::paper_testbed(TILE);
        for &n in &SIZES {
            let nt = n / TILE;
            assert_eq!(main_select::select_main_device(&platform, nt, nt).device, 0);
        }
    }
}
