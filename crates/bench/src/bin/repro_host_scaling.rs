//! Real-thread analogue of the paper's Fig. 8 on the machine we actually
//! have: tiled QR wall time versus computing-thread count, with per-worker
//! load balance from the manager/worker runtime (paper Fig. 7), under both
//! dispatch policies.
//!
//! Usage: `repro_host_scaling [n] [b] [--json out.json]`

use std::fmt::Write as _;
use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::kernels::{flops, FactorState};
use tileqr::runtime::{parallel_factor_traced, PoolConfig, SchedulePolicy};
use tileqr::TiledMatrix;

fn main() {
    let mut n: usize = 768;
    let mut b: usize = 64;
    let mut json_path: Option<String> = None;
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json_path = Some(args.next().unwrap_or_else(|| "host_scaling.json".into()));
        } else if let Ok(v) = arg.parse() {
            match positional {
                0 => n = v,
                _ => b = v,
            }
            positional += 1;
        }
    }

    let a = random_matrix::<f64>(n, n, 11);
    let tiled = TiledMatrix::from_matrix(&a, b).expect("tiling");
    let graph = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let gflop = flops::qr_flops(n, n) as f64 / 1e9;
    let max = std::thread::available_parallelism().map_or(1, |v| v.get());

    println!(
        "host scaling: {n}x{n}, tile {b} ({} tasks, {:.2} GFLOP), up to {max} worker(s)\n",
        graph.len(),
        gflop
    );
    println!(
        "{:>14}  {:>8}  {:>10}  {:>8}  {:>10}  {:>10}  {:>10}",
        "policy", "workers", "seconds", "speedup", "GFLOP/s", "imbalance", "lock-wait"
    );

    let mut json_rows = String::new();
    for policy in [SchedulePolicy::Fifo, SchedulePolicy::CriticalPath] {
        let mut baseline = 0.0f64;
        let mut w = 1usize;
        while w <= max {
            let (_, report) = parallel_factor_traced(
                FactorState::new(tiled.clone()),
                &graph,
                PoolConfig {
                    workers: w,
                    policy,
                    ..PoolConfig::default()
                },
            )
            .expect("factorization");
            let secs = report.elapsed.as_secs_f64();
            if w == 1 {
                baseline = secs;
            }
            let lock_wait = report.stage_wait.as_secs_f64() + report.commit_wait.as_secs_f64();
            println!(
                "{:>14}  {:>8}  {:>10.4}  {:>7.2}x  {:>10.2}  {:>10.2}  {:>9.2}ms",
                policy.name(),
                w,
                secs,
                baseline / secs,
                gflop / secs,
                report.imbalance(),
                lock_wait * 1e3
            );
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let _ = write!(
                json_rows,
                "    {{\"policy\": \"{}\", \"workers\": {w}, \"seconds\": {secs:.6}, \"gflops\": {:.3}, \"imbalance\": {:.4}, \"lock_wait_s\": {lock_wait:.6}, \"max_ready_depth\": {}}}",
                policy.name(),
                gflop / secs,
                report.imbalance(),
                report.max_ready_depth
            );
            w *= 2;
        }
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"n\": {n},\n  \"tile_size\": {b},\n  \"tasks\": {},\n  \"gflop\": {gflop:.4},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
            graph.len()
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => {
                eprintln!("\nerror: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\n(compare: the simulated heterogeneous scaling is repro_fig8)");
}
