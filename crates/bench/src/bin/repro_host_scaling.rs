//! Real-thread analogue of the paper's Fig. 8 on the machine we actually
//! have: tiled QR wall time versus computing-thread count, with per-worker
//! load balance from the manager/worker runtime (paper Fig. 7).

use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::kernels::{flops, FactorState};
use tileqr::runtime::{parallel_factor_traced, PoolConfig};
use tileqr::TiledMatrix;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(768);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let a = random_matrix::<f64>(n, n, 11);
    let tiled = TiledMatrix::from_matrix(&a, b).expect("tiling");
    let graph = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), EliminationOrder::FlatTs);
    let gflop = flops::qr_flops(n, n) as f64 / 1e9;
    let max = std::thread::available_parallelism().map_or(1, |v| v.get());

    println!(
        "host scaling: {n}x{n}, tile {b} ({} tasks, {:.2} GFLOP), up to {max} worker(s)\n",
        graph.len(),
        gflop
    );
    println!("{:>8}  {:>10}  {:>8}  {:>10}  {:>10}", "workers", "seconds", "speedup", "GFLOP/s", "imbalance");

    let mut baseline = 0.0f64;
    let mut w = 1usize;
    while w <= max {
        let (_, report) = parallel_factor_traced(
            FactorState::new(tiled.clone()),
            &graph,
            PoolConfig { workers: w },
        )
        .expect("factorization");
        let secs = report.elapsed.as_secs_f64();
        if w == 1 {
            baseline = secs;
        }
        println!(
            "{:>8}  {:>10.4}  {:>7.2}x  {:>10.2}  {:>10.2}",
            w,
            secs,
            baseline / secs,
            gflop / secs,
            report.imbalance()
        );
        w *= 2;
    }
    println!("\n(compare: the simulated heterogeneous scaling is repro_fig8)");
}
