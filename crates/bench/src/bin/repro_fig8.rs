//! Regenerate the paper's Fig8 (see `tileqr_bench::experiments::fig8`).
fn main() {
    tileqr_bench::fig8::print();
}
