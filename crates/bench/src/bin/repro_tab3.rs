//! Regenerate the paper's Tab3 (see `tileqr_bench::experiments::tab3`).
fn main() {
    tileqr_bench::tab3::print();
}
