//! Regenerate the paper's Fig10 (see `tileqr_bench::experiments::fig10`).
fn main() {
    tileqr_bench::fig10::print();
}
