//! Regenerate every table and figure of the paper's evaluation section.
fn main() {
    tileqr_bench::fig4::print();
    tileqr_bench::tab1::print();
    tileqr_bench::fig5::print();
    tileqr_bench::fig6::print();
    tileqr_bench::fig8::print();
    tileqr_bench::fig9::print();
    tileqr_bench::tab3::print();
    tileqr_bench::fig10::print();
}
