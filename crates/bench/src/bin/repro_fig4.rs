//! Regenerate the paper's Fig4 (see `tileqr_bench::experiments::fig4`).
fn main() {
    tileqr_bench::fig4::print();
}
