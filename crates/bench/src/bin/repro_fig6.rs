//! Regenerate the paper's Fig6 (see `tileqr_bench::experiments::fig6`).
fn main() {
    tileqr_bench::fig6::print();
}
