//! Regenerate the paper's Fig5 (see `tileqr_bench::experiments::fig5`).
fn main() {
    tileqr_bench::fig5::print();
}
