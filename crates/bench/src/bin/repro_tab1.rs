//! Regenerate the paper's Tab1 (see `tileqr_bench::experiments::tab1`).
fn main() {
    tileqr_bench::tab1::print();
}
