//! Regenerate the paper's Fig9 (see `tileqr_bench::experiments::fig9`).
fn main() {
    tileqr_bench::fig9::print();
}
