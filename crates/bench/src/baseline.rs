//! The *seed* runtime, preserved as an A/B baseline: one global mutex
//! around the whole factorization state, `O(b²)` deep copies to stage
//! every task, and FIFO dispatch from a shared worklist.
//!
//! The production runtime (`tileqr::runtime`) replaced all three of these
//! — per-tile slots, `Arc`-shared reads, and critical-path priorities —
//! so this module is what the `runtime_scaling` bench measures the new
//! runtime *against*. It is deliberately written the straightforward way
//! a first worklist runtime would be; do not optimize it.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use tileqr::dag::{TaskGraph, TaskId, TaskKind};
use tileqr::kernels::{geqrt, geqrt_apply, tsmqr_apply, tsqrt, ttmqr_apply, ttqrt, ApplySide};
use tileqr::{Matrix, MatrixError, TiledMatrix};

type Result<T> = std::result::Result<T, MatrixError>;

/// Factorization state as the seed kept it: tiles plus hash-mapped `T`
/// factors, all behind one lock.
struct State {
    tiles: TiledMatrix<f64>,
    geqrt_t: HashMap<(usize, usize), Matrix<f64>>,
    elim_t: HashMap<(usize, usize, usize), Matrix<f64>>,
}

/// Everything shared between baseline workers, behind the single mutex.
struct Shared {
    state: State,
    fifo: VecDeque<TaskId>,
    remaining_preds: Vec<usize>,
    completed: usize,
    failed: bool,
}

/// Deep-copied task inputs (the seed's staging: `O(b²)` clones under the
/// global lock).
enum Staged {
    Factor {
        tile: Matrix<f64>,
    },
    Update {
        vr: Matrix<f64>,
        tfac: Matrix<f64>,
        c: Matrix<f64>,
    },
    Elim {
        r1: Matrix<f64>,
        a2: Matrix<f64>,
    },
    PairUpdate {
        v2: Matrix<f64>,
        tfac: Matrix<f64>,
        a1: Matrix<f64>,
        a2: Matrix<f64>,
    },
}

enum Done {
    Factor {
        tile: Matrix<f64>,
        tfac: Matrix<f64>,
    },
    Update {
        c: Matrix<f64>,
    },
    Elim {
        r1: Matrix<f64>,
        a2: Matrix<f64>,
        tfac: Matrix<f64>,
    },
    PairUpdate {
        a1: Matrix<f64>,
        a2: Matrix<f64>,
    },
}

fn stage(state: &State, task: TaskKind) -> Staged {
    let t = &state.tiles;
    match task {
        TaskKind::Geqrt { i, k } => Staged::Factor {
            tile: t.tile(i, k).clone(),
        },
        TaskKind::Unmqr { i, j, k } => Staged::Update {
            vr: t.tile(i, k).clone(),
            tfac: state.geqrt_t[&(i, k)].clone(),
            c: t.tile(i, j).clone(),
        },
        TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k } => Staged::Elim {
            r1: t.tile(p, k).clone(),
            a2: t.tile(i, k).clone(),
        },
        TaskKind::Tsmqr { p, i, j, k } | TaskKind::Ttmqr { p, i, j, k } => Staged::PairUpdate {
            v2: t.tile(i, k).clone(),
            tfac: state.elim_t[&(p, i, k)].clone(),
            a1: t.tile(p, j).clone(),
            a2: t.tile(i, j).clone(),
        },
    }
}

fn compute(task: TaskKind, staged: Staged) -> Result<Done> {
    Ok(match (task, staged) {
        (TaskKind::Geqrt { .. }, Staged::Factor { mut tile }) => {
            let tfac = geqrt(&mut tile)?;
            Done::Factor { tile, tfac }
        }
        (TaskKind::Unmqr { .. }, Staged::Update { vr, tfac, mut c }) => {
            geqrt_apply(&vr, &tfac, &mut c, ApplySide::Transpose)?;
            Done::Update { c }
        }
        (TaskKind::Tsqrt { .. }, Staged::Elim { mut r1, mut a2 }) => {
            let tfac = tsqrt(&mut r1, &mut a2)?;
            Done::Elim { r1, a2, tfac }
        }
        (TaskKind::Ttqrt { .. }, Staged::Elim { mut r1, mut a2 }) => {
            let tfac = ttqrt(&mut r1, &mut a2)?;
            Done::Elim { r1, a2, tfac }
        }
        (
            TaskKind::Tsmqr { .. },
            Staged::PairUpdate {
                v2,
                tfac,
                mut a1,
                mut a2,
            },
        ) => {
            tsmqr_apply(&v2, &tfac, &mut a1, &mut a2, ApplySide::Transpose)?;
            Done::PairUpdate { a1, a2 }
        }
        (
            TaskKind::Ttmqr { .. },
            Staged::PairUpdate {
                v2,
                tfac,
                mut a1,
                mut a2,
            },
        ) => {
            ttmqr_apply(&v2, &tfac, &mut a1, &mut a2, ApplySide::Transpose)?;
            Done::PairUpdate { a1, a2 }
        }
        _ => unreachable!("task/staged kind mismatch"),
    })
}

fn commit(state: &mut State, task: TaskKind, done: Done) {
    match (task, done) {
        (TaskKind::Geqrt { i, k }, Done::Factor { tile, tfac }) => {
            state.tiles.set_tile(i, k, tile);
            state.geqrt_t.insert((i, k), tfac);
        }
        (TaskKind::Unmqr { i, j, .. }, Done::Update { c }) => {
            state.tiles.set_tile(i, j, c);
        }
        (
            TaskKind::Tsqrt { p, i, k } | TaskKind::Ttqrt { p, i, k },
            Done::Elim { r1, a2, tfac },
        ) => {
            state.tiles.set_tile(p, k, r1);
            state.tiles.set_tile(i, k, a2);
            state.elim_t.insert((p, i, k), tfac);
        }
        (
            TaskKind::Tsmqr { p, i, j, .. } | TaskKind::Ttmqr { p, i, j, .. },
            Done::PairUpdate { a1, a2 },
        ) => {
            state.tiles.set_tile(p, j, a1);
            state.tiles.set_tile(i, j, a2);
        }
        _ => unreachable!("task/done kind mismatch"),
    }
}

/// Factor `tiled` over `graph` with `workers` threads, global-lock style.
/// Returns the factored tiles.
pub fn global_lock_factor(
    tiled: TiledMatrix<f64>,
    graph: &TaskGraph,
    workers: usize,
) -> Result<TiledMatrix<f64>> {
    let workers = workers.max(1);
    let shared = Mutex::new(Shared {
        state: State {
            tiles: tiled,
            geqrt_t: HashMap::new(),
            elim_t: HashMap::new(),
        },
        fifo: graph.sources().into(),
        remaining_preds: graph.indegrees(),
        completed: 0,
        failed: false,
    });
    let work_ready = Condvar::new();
    let total = graph.len();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Pop + stage under the one big lock, exactly like the seed.
                let (tid, task, staged) = {
                    let mut sh = shared.lock().expect("baseline lock");
                    loop {
                        if sh.completed == total || sh.failed {
                            return;
                        }
                        if let Some(tid) = sh.fifo.pop_front() {
                            let task = graph.task(tid);
                            let staged = stage(&sh.state, task);
                            break (tid, task, staged);
                        }
                        sh = work_ready.wait(sh).expect("baseline lock");
                    }
                };
                let done = compute(task, staged);
                let mut sh = shared.lock().expect("baseline lock");
                match done {
                    Ok(done) => {
                        commit(&mut sh.state, task, done);
                        sh.completed += 1;
                        for &s in graph.succs(tid) {
                            sh.remaining_preds[s] -= 1;
                            if sh.remaining_preds[s] == 0 {
                                sh.fifo.push_back(s);
                            }
                        }
                    }
                    Err(_) => sh.failed = true,
                }
                work_ready.notify_all();
            });
        }
    });

    let sh = shared.into_inner().expect("baseline lock");
    if sh.failed {
        Err(MatrixError::DimensionMismatch {
            op: "baseline factorization failed",
            lhs: (0, 0),
            rhs: (0, 0),
        })
    } else {
        Ok(sh.state.tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr::dag::EliminationOrder;
    use tileqr::gen::random_matrix;
    use tileqr::kernels::FactorState;

    #[test]
    fn baseline_matches_sequential() {
        let a = random_matrix::<f64>(32, 32, 31);
        let tiled = TiledMatrix::from_matrix(&a, 8).unwrap();
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();
        let base = global_lock_factor(tiled, &g, 4).unwrap();
        assert_eq!(base.to_matrix(), seq.tiles().to_matrix());
    }
}
