//! The *seed* kernel implementations, frozen as the A/B baseline for the
//! zero-allocation hot path.
//!
//! These are byte-for-byte the allocating kernels the crate shipped before
//! the [`Workspace`](tileqr::kernels::Workspace) arena landed: every call
//! allocates its reflector scratch (`z`), its apply workspace (`W`), and a
//! per-column temporary inside the `T`-factor multiply. The production
//! kernels (`tileqr::kernels::*_ws`) borrow all of that from a reusable
//! arena instead; `cargo bench --bench kernel_hotpath` measures the two
//! side by side and counts their allocations.
//!
//! Like [`baseline`](crate::baseline), this module is deliberately not
//! kept in sync with kernel improvements — it is the fixed reference
//! point. Do not optimize it.

use tileqr::kernels::{larfg, ApplySide};
use tileqr::ops;
use tileqr::{Matrix, MatrixError, Scalar};

type Result<T> = std::result::Result<T, MatrixError>;

/// Seed `GEQRT`: QR-factor one tile in place, allocating the `T` factor
/// and an `n`-vector of scratch per call.
pub fn legacy_geqrt<T: Scalar>(a: &mut Matrix<T>) -> Result<Matrix<T>> {
    let (m, n) = a.dims();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_geqrt (needs m >= n)",
            lhs: (m, n),
            rhs: (n, n),
        });
    }
    let mut tfac = Matrix::zeros(n, n);
    let mut z = vec![T::ZERO; n];

    for k in 0..n {
        let tau = {
            let ck = a.col_mut(k);
            let alpha = ck[k];
            let (head, tail) = ck.split_at_mut(k + 1);
            let h = larfg(alpha, tail);
            head[k] = h.beta;
            h.tau
        };

        if tau != T::ZERO {
            for j in k + 1..n {
                let (ck, cj) = a.two_cols_mut(k, j);
                let mut w = cj[k] + ops::dot(&ck[k + 1..], &cj[k + 1..]);
                w *= tau;
                cj[k] -= w;
                ops::axpy(-w, &ck[k + 1..], &mut cj[k + 1..]);
            }
        }

        tfac[(k, k)] = tau;
        if tau != T::ZERO {
            let vk = &a.col(k)[k + 1..];
            for (i, zi) in z.iter_mut().enumerate().take(k) {
                let ci = a.col(i);
                *zi = ci[k] + ops::dot(&ci[k + 1..], vk);
            }
            for i in 0..k {
                let mut acc = T::ZERO;
                for p in i..k {
                    acc += tfac[(i, p)] * z[p];
                }
                tfac[(i, k)] = -tau * acc;
            }
        }
    }
    Ok(tfac)
}

/// Seed `UNMQR`/`GEQRT` apply: allocates the full `n x nc` workspace `W`
/// per call.
pub fn legacy_geqrt_apply<T: Scalar>(
    vr: &Matrix<T>,
    tfac: &Matrix<T>,
    c: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    let (m, n) = vr.dims();
    if tfac.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_geqrt_apply (T factor)",
            lhs: (n, n),
            rhs: tfac.dims(),
        });
    }
    if c.rows() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_geqrt_apply (C rows)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }
    let nc = c.cols();
    let mut w = Matrix::zeros(n, nc);

    for jc in 0..nc {
        let cc = c.col(jc);
        let wc = w.col_mut(jc);
        for (i, wi) in wc.iter_mut().enumerate() {
            *wi = cc[i] + ops::dot(&vr.col(i)[i + 1..], &cc[i + 1..]);
        }
    }

    legacy_apply_tfac_in_place(tfac, &mut w, side);

    for jc in 0..nc {
        let wc = w.col(jc);
        let cc = c.col_mut(jc);
        for (i, &wi) in wc.iter().enumerate() {
            cc[i] -= wi;
            ops::axpy(-wi, &vr.col(i)[i + 1..], &mut cc[i + 1..]);
        }
    }
    Ok(())
}

/// Seed `w ← op(T) w`: allocates an `n`-vector temporary per call.
fn legacy_apply_tfac_in_place<T: Scalar>(tfac: &Matrix<T>, w: &mut Matrix<T>, side: ApplySide) {
    let n = tfac.rows();
    let nc = w.cols();
    let mut tmp = vec![T::ZERO; n];
    for jc in 0..nc {
        {
            let wc = w.col(jc);
            match side {
                ApplySide::Transpose => {
                    for (i, t) in tmp.iter_mut().enumerate() {
                        *t = ops::dot(&tfac.col(i)[..=i], &wc[..=i]);
                    }
                }
                ApplySide::NoTranspose => {
                    tmp.fill(T::ZERO);
                    for (p, &wp) in wc.iter().enumerate() {
                        ops::axpy(wp, &tfac.col(p)[..=p], &mut tmp[..=p]);
                    }
                }
            }
        }
        w.col_mut(jc).copy_from_slice(&tmp);
    }
}

/// Seed `TSQRT`: allocates `T` factor and scratch per call.
pub fn legacy_tsqrt<T: Scalar>(r1: &mut Matrix<T>, a2: &mut Matrix<T>) -> Result<Matrix<T>> {
    let n = r1.rows();
    if !r1.is_square() {
        return Err(MatrixError::NotSquare { dims: r1.dims() });
    }
    if a2.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_tsqrt (column count)",
            lhs: r1.dims(),
            rhs: a2.dims(),
        });
    }
    let mut tfac = Matrix::zeros(n, n);
    let mut z = vec![T::ZERO; n];

    for k in 0..n {
        let alpha = r1[(k, k)];
        let tau = {
            let ck = a2.col_mut(k);
            let h = larfg(alpha, ck);
            r1[(k, k)] = h.beta;
            h.tau
        };

        if tau != T::ZERO {
            for j in k + 1..n {
                let (vk, cj) = a2.two_cols_mut(k, j);
                let mut w = r1[(k, j)] + ops::dot(vk, cj);
                w *= tau;
                r1[(k, j)] -= w;
                ops::axpy(-w, vk, cj);
            }
        }

        tfac[(k, k)] = tau;
        if tau != T::ZERO {
            let vk = a2.col(k);
            for (i, zi) in z.iter_mut().enumerate().take(k) {
                *zi = ops::dot(a2.col(i), vk);
            }
            for i in 0..k {
                let mut acc = T::ZERO;
                for p in i..k {
                    acc += tfac[(i, p)] * z[p];
                }
                tfac[(i, k)] = -tau * acc;
            }
        }
    }
    Ok(tfac)
}

/// Seed `TSMQR`: clones `A1` into a fresh workspace per call and reads
/// `V2` columns strided per element.
pub fn legacy_tsmqr_apply<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    let n = tfac.rows();
    if v2.cols() != n || a1.rows() != n || a2.rows() != v2.rows() || a1.cols() != a2.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_tsmqr (shapes)",
            lhs: v2.dims(),
            rhs: a1.dims(),
        });
    }
    let nc = a1.cols();

    let mut w = a1.clone();
    for jc in 0..nc {
        let a2c = a2.col(jc);
        let wc = w.col_mut(jc);
        for (i, wi) in wc.iter_mut().enumerate() {
            *wi += ops::dot(v2.col(i), a2c);
        }
    }

    legacy_apply_tfac_in_place(tfac, &mut w, side);

    for jc in 0..nc {
        let wc = w.col(jc);
        ops::axpy(-T::ONE, wc, a1.col_mut(jc));
        let a2c = a2.col_mut(jc);
        for (i, &wi) in wc.iter().enumerate() {
            ops::axpy(-wi, v2.col(i), a2c);
        }
    }
    Ok(())
}

/// Seed `TTQRT`: allocates `T` factor and scratch per call.
pub fn legacy_ttqrt<T: Scalar>(r1: &mut Matrix<T>, r2: &mut Matrix<T>) -> Result<Matrix<T>> {
    let n = r1.rows();
    if !r1.is_square() {
        return Err(MatrixError::NotSquare { dims: r1.dims() });
    }
    if r2.dims() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_ttqrt (tile pair)",
            lhs: r1.dims(),
            rhs: r2.dims(),
        });
    }
    let mut tfac = Matrix::zeros(n, n);
    let mut z = vec![T::ZERO; n];

    for k in 0..n {
        let alpha = r1[(k, k)];
        let tau = {
            let ck = &mut r2.col_mut(k)[..=k];
            let h = larfg(alpha, ck);
            r1[(k, k)] = h.beta;
            h.tau
        };

        if tau != T::ZERO {
            for j in k + 1..n {
                let (vk, cj) = r2.two_cols_mut(k, j);
                let vk = &vk[..=k];
                let mut w = r1[(k, j)] + ops::dot(vk, &cj[..=k]);
                w *= tau;
                r1[(k, j)] -= w;
                ops::axpy(-w, vk, &mut cj[..=k]);
            }
        }

        tfac[(k, k)] = tau;
        if tau != T::ZERO {
            let vk = r2.col(k);
            for (i, zi) in z.iter_mut().enumerate().take(k) {
                *zi = ops::dot(&r2.col(i)[..=i], &vk[..=i]);
            }
            for i in 0..k {
                let mut acc = T::ZERO;
                for p in i..k {
                    acc += tfac[(i, p)] * z[p];
                }
                tfac[(i, k)] = -tau * acc;
            }
        }
    }
    Ok(tfac)
}

/// Seed `TTMQR`: clones `A1` into a fresh workspace per call.
pub fn legacy_ttmqr_apply<T: Scalar>(
    v2: &Matrix<T>,
    tfac: &Matrix<T>,
    a1: &mut Matrix<T>,
    a2: &mut Matrix<T>,
    side: ApplySide,
) -> Result<()> {
    let n = tfac.rows();
    if v2.dims() != (n, n) || a1.rows() != n || a2.rows() != n || a1.cols() != a2.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "legacy_ttmqr (shapes)",
            lhs: v2.dims(),
            rhs: a1.dims(),
        });
    }
    let nc = a1.cols();

    let mut w = a1.clone();
    for jc in 0..nc {
        let a2c = a2.col(jc);
        let wc = w.col_mut(jc);
        for (i, wi) in wc.iter_mut().enumerate() {
            *wi += ops::dot(&v2.col(i)[..=i], &a2c[..=i]);
        }
    }

    legacy_apply_tfac_in_place(tfac, &mut w, side);

    for jc in 0..nc {
        let wc = w.col(jc);
        ops::axpy(-T::ONE, wc, a1.col_mut(jc));
        let a2c = a2.col_mut(jc);
        for (i, &wi) in wc.iter().enumerate() {
            ops::axpy(-wi, &v2.col(i)[..=i], &mut a2c[..=i]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr::gen::random_matrix;
    use tileqr::kernels::{geqrt, tsqrt, ttqrt};

    /// The frozen copies must agree with the production kernels on the
    /// factorization path to tight tolerance. The comparison used to be
    /// bitwise, but the register-blocked microkernels (crate `micro`)
    /// deliberately use a different — still deterministic — accumulation
    /// order (multi-lane dots, fused multi-column sweeps), so the two
    /// implementations now differ by rounding only.
    #[test]
    fn legacy_factor_kernels_match_production_numerically() {
        const TOL: f64 = 1e-12;
        let b = 16;
        let mut a_new = random_matrix::<f64>(b, b, 5);
        let mut a_old = a_new.clone();
        let t_new = geqrt(&mut a_new).unwrap();
        let t_old = legacy_geqrt(&mut a_old).unwrap();
        assert!(a_new.approx_eq(&a_old, TOL));
        assert!(t_new.approx_eq(&t_old, TOL));

        let mut r1_new = random_matrix::<f64>(b, b, 6).upper_triangular();
        let mut a2_new = random_matrix::<f64>(b, b, 7);
        let mut r1_old = r1_new.clone();
        let mut a2_old = a2_new.clone();
        let t_new = tsqrt(&mut r1_new, &mut a2_new).unwrap();
        let t_old = legacy_tsqrt(&mut r1_old, &mut a2_old).unwrap();
        assert!(r1_new.approx_eq(&r1_old, TOL));
        assert!(a2_new.approx_eq(&a2_old, TOL));
        assert!(t_new.approx_eq(&t_old, TOL));

        let mut p_new = random_matrix::<f64>(b, b, 8).upper_triangular();
        let mut q_new = random_matrix::<f64>(b, b, 9).upper_triangular();
        let mut p_old = p_new.clone();
        let mut q_old = q_new.clone();
        let t_new = ttqrt(&mut p_new, &mut q_new).unwrap();
        let t_old = legacy_ttqrt(&mut p_old, &mut q_old).unwrap();
        assert!(p_new.approx_eq(&p_old, TOL));
        assert!(q_new.approx_eq(&q_old, TOL));
        assert!(t_new.approx_eq(&t_old, TOL));
    }

    /// Apply kernels may differ in accumulation order (the packed rewrite
    /// changed the W accumulation), so they are compared to tolerance.
    #[test]
    fn legacy_apply_kernels_match_production_numerically() {
        use tileqr::kernels::{geqrt_apply, tsmqr_apply, ttmqr_apply};
        let b = 16;
        let mut vr = random_matrix::<f64>(b, b, 10);
        let t = legacy_geqrt(&mut vr).unwrap();
        let c0 = random_matrix::<f64>(b, b, 11);

        let mut c_new = c0.clone();
        let mut c_old = c0.clone();
        geqrt_apply(&vr, &t, &mut c_new, ApplySide::Transpose).unwrap();
        legacy_geqrt_apply(&vr, &t, &mut c_old, ApplySide::Transpose).unwrap();
        assert!(c_new.approx_eq(&c_old, 1e-12));

        let mut r1 = random_matrix::<f64>(b, b, 12).upper_triangular();
        let mut v2 = random_matrix::<f64>(b, b, 13);
        let t = legacy_tsqrt(&mut r1, &mut v2).unwrap();
        let a1_0 = random_matrix::<f64>(b, b, 14);
        let a2_0 = random_matrix::<f64>(b, b, 15);
        let (mut a1_new, mut a2_new) = (a1_0.clone(), a2_0.clone());
        let (mut a1_old, mut a2_old) = (a1_0.clone(), a2_0.clone());
        tsmqr_apply(&v2, &t, &mut a1_new, &mut a2_new, ApplySide::Transpose).unwrap();
        legacy_tsmqr_apply(&v2, &t, &mut a1_old, &mut a2_old, ApplySide::Transpose).unwrap();
        assert!(a1_new.approx_eq(&a1_old, 1e-12));
        assert!(a2_new.approx_eq(&a2_old, 1e-12));

        let mut p = random_matrix::<f64>(b, b, 16).upper_triangular();
        let mut q = random_matrix::<f64>(b, b, 17).upper_triangular();
        let t = legacy_ttqrt(&mut p, &mut q).unwrap();
        let (mut a1_new, mut a2_new) = (a1_0.clone(), a2_0.clone());
        let (mut a1_old, mut a2_old) = (a1_0, a2_0);
        ttmqr_apply(&q, &t, &mut a1_new, &mut a2_new, ApplySide::Transpose).unwrap();
        legacy_ttmqr_apply(&q, &t, &mut a1_old, &mut a2_old, ApplySide::Transpose).unwrap();
        assert!(a1_new.approx_eq(&a1_old, 1e-12));
        assert!(a2_new.approx_eq(&a2_old, 1e-12));
    }
}
