//! Experiment harness for the paper's evaluation section.
//!
//! One module per table/figure; each exposes a `run()` returning the rows
//! it printed so tests can assert on the reproduced shapes. The `repro_*`
//! binaries are thin wrappers; `repro_all` regenerates everything (this is
//! what fills `EXPERIMENTS.md`).
//!
//! | Paper artifact | Module       | Binary        |
//! |----------------|--------------|---------------|
//! | Fig. 4         | [`fig4`]     | `repro_fig4`  |
//! | Table I        | [`tab1`]     | `repro_tab1`  |
//! | Fig. 5         | [`fig5`]     | `repro_fig5`  |
//! | Fig. 6         | [`fig6`]     | `repro_fig6`  |
//! | Fig. 8         | [`fig8`]     | `repro_fig8`  |
//! | Fig. 9         | [`fig9`]     | `repro_fig9`  |
//! | Table III      | [`tab3`]     | `repro_tab3`  |
//! | Fig. 10        | [`fig10`]    | `repro_fig10` |
//!
//! All heterogeneous experiments run on the calibrated simulator of the
//! paper's testbed (`tileqr_sim::profiles::paper_testbed`); shapes — who
//! wins, by what factor, where crossovers fall — are the reproduction
//! target, not absolute 2013 wall-clock numbers (see `EXPERIMENTS.md`).

pub mod alloc_counter;
pub mod baseline;
pub mod experiments;
pub mod harness;
pub mod legacy_kernels;

pub use experiments::*;
