//! Counting wrapper around the system allocator, for the hot-path benches.
//!
//! A bench binary registers it with
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: tileqr_bench::alloc_counter::CountingAlloc = CountingAlloc;
//! ```
//!
//! and then wraps the region of interest in [`count`] to learn how many
//! heap allocations it performed. Only acquisitions (`alloc`, `realloc`,
//! `alloc_zeroed`) are counted — the zero-allocation claim for the
//! workspace hot path is about *acquiring* memory in steady state, and
//! ignoring frees keeps regions that drop pre-existing buffers from
//! muddying the number.
//!
//! The bench crate is the one place in the workspace allowed to hold this
//! `unsafe impl`: the kernel crates all `#![forbid(unsafe_code)]`, and the
//! instrumentation only needs to exist where the A/B evidence is produced.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator that bumps a process-wide counter on every
/// allocation. Zero-cost when nobody reads the counter: one relaxed
/// atomic increment per `malloc`.
pub struct CountingAlloc;

// SAFETY: every operation defers directly to `System`; the only addition
// is a relaxed counter increment with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total heap allocations observed so far in this process.
pub fn total() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap allocations performed while running `f`.
///
/// Meaningful only in a binary that registered [`CountingAlloc`] as its
/// `#[global_allocator]`; elsewhere it always returns 0. Keep printing and
/// collection out of `f` — the counter is process-wide.
pub fn count<F: FnOnce()>(f: F) -> u64 {
    let before = total();
    f();
    total() - before
}
