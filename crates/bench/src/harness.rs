//! Minimal timing harness for the `cargo bench` targets.
//!
//! The container has no external benchmarking framework, so each bench
//! target is a plain `fn main()` that calls [`bench`] / [`bench_with_flops`]
//! and prints one formatted row per case: median / min over a fixed number
//! of timed runs after a warmup. Medians of wall-clock runs are noisy
//! compared to a statistical harness, but entirely adequate for the
//! order-of-magnitude shapes these benches exist to show.

use std::time::Instant;

/// Timing summary of one benchmark case, in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest run.
    pub min: f64,
    /// Median run (the headline number).
    pub median: f64,
    /// Mean over all timed runs.
    pub mean: f64,
    /// Number of timed runs.
    pub samples: usize,
}

/// Time `f` for `samples` runs (after one untimed warmup) and return the
/// summary.
pub fn measure<F: FnMut()>(samples: usize, mut f: F) -> Stats {
    let samples = samples.max(1);
    f(); // warmup
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    Stats {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<f64>() / times.len() as f64,
        samples,
    }
}

/// Like [`measure`], but each timed sample repeats `f` enough times to
/// fill roughly [`CALIBRATION_TARGET_SECS`] (calibrated on the warmup
/// call) and reports per-call statistics. A single sub-microsecond call
/// is dominated by timer granularity and scheduler jitter; batching makes
/// small-kernel medians reproducible run to run.
pub fn measure_calibrated<F: FnMut()>(samples: usize, mut f: F) -> Stats {
    const CALIBRATION_TARGET_SECS: f64 = 20e-6;
    let samples = samples.max(1);
    f(); // warmup: first call pays cold-cache/page-fault costs
         // Calibrate from warm calls; the cold first call overestimates the
         // per-call time and would leave each sample under-batched.
    let t0 = Instant::now();
    f();
    f();
    let once = t0.elapsed().as_secs_f64() / 2.0;
    let iters = if once > 0.0 {
        ((CALIBRATION_TARGET_SECS / once).ceil() as usize).clamp(1, 4096)
    } else {
        4096
    };
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        times.push(t0.elapsed().as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    Stats {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<f64>() / times.len() as f64,
        samples,
    }
}

/// Run and print one benchmark case: `group/case  median  min`.
pub fn bench<F: FnMut()>(group: &str, case: &str, samples: usize, f: F) -> Stats {
    let stats = measure(samples, f);
    println!(
        "{:<40} {:>12} {:>12}",
        format!("{group}/{case}"),
        format_secs(stats.median),
        format_secs(stats.min),
    );
    stats
}

/// Like [`bench`], also printing throughput from a flop count.
pub fn bench_with_flops<F: FnMut()>(
    group: &str,
    case: &str,
    samples: usize,
    flops: u64,
    f: F,
) -> Stats {
    let stats = measure(samples, f);
    println!(
        "{:<40} {:>12} {:>12} {:>10.2} GFLOP/s",
        format!("{group}/{case}"),
        format_secs(stats.median),
        format_secs(stats.min),
        flops as f64 / stats.median / 1e9,
    );
    stats
}

/// Print the column header matching [`bench`]'s rows.
pub fn header(title: &str) {
    println!("\n== {title} ==");
    println!("{:<40} {:>12} {:>12}", "case", "median", "min");
}

/// Host-parallelism guard shared by every bench artifact writer: the
/// detected core count plus, on single-core hosts, the standard warning
/// that parallelism-sensitive numbers are not meaningful there.
#[derive(Debug, Clone)]
pub struct CoresGuard {
    /// Detected hardware parallelism (1 when detection fails).
    pub cores: usize,
    /// The single-core warning, `None` on multi-core hosts.
    pub warning: Option<String>,
}

/// Detect host parallelism and build the single-core guard for the
/// given subject (e.g. `"worker-scaling and speedup-vs-baseline
/// numbers"`). When it applies, the warning is printed to stdout so it
/// shows in bench logs as well as in the JSON artifact.
pub fn cores_guard(subject: &str) -> CoresGuard {
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    let warning = (cores == 1)
        .then(|| format!("host has a single core: {subject} are not meaningful at cores == 1"));
    if let Some(w) = &warning {
        println!("WARNING: {w}");
    }
    CoresGuard { cores, warning }
}

impl CoresGuard {
    /// The shared `"cores"` and (single-core only) `"warning"` JSON
    /// keys, each line trailing-comma'd and prefixed with `indent` —
    /// callers splice this ahead of their remaining keys.
    pub fn json_fields(&self, indent: &str) -> String {
        let mut s = format!("{indent}\"cores\": {},\n", self.cores);
        if let Some(w) = &self.warning {
            s.push_str(&format!("{indent}\"warning\": \"{w}\",\n"));
        }
        s
    }

    /// Render a parallelism-sensitive headline value for JSON: the
    /// number (4 decimal places) on multi-core hosts, the literal
    /// `null` on single-core hosts where the measurement is
    /// meaningless — so artifact consumers never mistake a degenerate
    /// 1-core "speedup" for a real one.
    pub fn gate_f64(&self, v: f64) -> String {
        if self.cores == 1 || !v.is_finite() {
            "null".to_string()
        } else {
            format!("{v:.4}")
        }
    }
}

/// Human-readable seconds with an adaptive unit.
pub fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_stats() {
        let mut x = 0u64;
        let s = measure(5, || {
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
        });
        assert_eq!(s.samples, 5);
        assert!(s.min <= s.median);
        assert!(s.min > 0.0);
    }

    #[test]
    fn cores_guard_warns_only_on_single_core() {
        let g = CoresGuard {
            cores: 1,
            warning: Some("host has a single core: X are not meaningful at cores == 1".into()),
        };
        let fields = g.json_fields("  ");
        assert!(fields.contains("\"cores\": 1,"));
        assert!(fields.contains("\"warning\": \"host has a single core"));
        let multi = cores_guard("X");
        assert_eq!(multi.warning.is_some(), multi.cores == 1);
        assert!(multi.json_fields("").starts_with("\"cores\": "));
    }

    #[test]
    fn gate_nulls_headline_on_single_core() {
        let single = CoresGuard {
            cores: 1,
            warning: Some("w".into()),
        };
        assert_eq!(single.gate_f64(3.5), "null");
        let multi = CoresGuard {
            cores: 8,
            warning: None,
        };
        assert_eq!(multi.gate_f64(3.5), "3.5000");
        assert_eq!(multi.gate_f64(f64::NAN), "null");
    }

    #[test]
    fn formats_adapt_units() {
        assert!(format_secs(2.5).ends_with(" s"));
        assert!(format_secs(2.5e-3).ends_with(" ms"));
        assert!(format_secs(2.5e-6).ends_with(" µs"));
    }
}
