//! Host-measured analogue of the paper's Fig. 4: time of each tile kernel
//! (GEQRT = T, TSQRT = E, UNMQR/TSMQR = UT/UE) versus tile size, on the
//! CPU we actually have. The shapes — cubic growth, updates cheapest,
//! eliminations between — mirror the published curves.

use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::{flops, geqrt, tsmqr, tsqrt, unmqr};
use tileqr::Matrix;
use tileqr_bench::harness;

const TILE_SIZES: [usize; 5] = [8, 16, 32, 64, 128];
const SAMPLES: usize = 20;

fn factored_tile(b: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let mut a = random_matrix::<f64>(b, b, seed);
    let t = geqrt(&mut a).unwrap();
    (a, t)
}

fn eliminated_pair(b: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let mut r1 = random_matrix::<f64>(b, b, seed).upper_triangular();
    let mut v2 = random_matrix::<f64>(b, b, seed + 1);
    let t = tsqrt(&mut r1, &mut v2).unwrap();
    (v2, t)
}

fn main() {
    harness::header("fig4_host/geqrt");
    for b in TILE_SIZES {
        let a = random_matrix::<f64>(b, b, 1);
        harness::bench_with_flops(
            "fig4_host/geqrt",
            &b.to_string(),
            SAMPLES,
            flops::geqrt_flops(b),
            || {
                let mut work = a.clone();
                black_box(geqrt(&mut work).unwrap());
            },
        );
    }

    harness::header("fig4_host/tsqrt");
    for b in TILE_SIZES {
        let r1 = random_matrix::<f64>(b, b, 2).upper_triangular();
        let a2 = random_matrix::<f64>(b, b, 3);
        harness::bench_with_flops(
            "fig4_host/tsqrt",
            &b.to_string(),
            SAMPLES,
            flops::tsqrt_flops(b),
            || {
                let mut r = r1.clone();
                let mut a = a2.clone();
                black_box(tsqrt(&mut r, &mut a).unwrap());
            },
        );
    }

    harness::header("fig4_host/unmqr");
    for b in TILE_SIZES {
        let (vr, t) = factored_tile(b, 4);
        let c0 = random_matrix::<f64>(b, b, 5);
        harness::bench_with_flops(
            "fig4_host/unmqr",
            &b.to_string(),
            SAMPLES,
            flops::unmqr_flops(b),
            || {
                let mut c = c0.clone();
                unmqr(&vr, &t, &mut c).unwrap();
                black_box(&c);
            },
        );
    }

    harness::header("fig4_host/tsmqr");
    for b in TILE_SIZES {
        let (v2, t) = eliminated_pair(b, 6);
        let a1 = random_matrix::<f64>(b, b, 7);
        let a2 = random_matrix::<f64>(b, b, 8);
        harness::bench_with_flops(
            "fig4_host/tsmqr",
            &b.to_string(),
            SAMPLES,
            flops::tsmqr_flops(b),
            || {
                let mut x1 = a1.clone();
                let mut x2 = a2.clone();
                tsmqr(&v2, &t, &mut x1, &mut x2).unwrap();
                black_box((&x1, &x2));
            },
        );
    }
}
