//! Host-measured analogue of the paper's Fig. 4: time of each tile kernel
//! (GEQRT = T, TSQRT = E, UNMQR/TSMQR = UT/UE) versus tile size, on the
//! CPU we actually have. The shapes — cubic growth, updates cheapest,
//! eliminations between — mirror the published curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::{flops, geqrt, tsmqr, tsqrt, unmqr};
use tileqr::Matrix;

const TILE_SIZES: [usize; 5] = [8, 16, 32, 64, 128];

fn factored_tile(b: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let mut a = random_matrix::<f64>(b, b, seed);
    let t = geqrt(&mut a).unwrap();
    (a, t)
}

fn eliminated_pair(b: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let mut r1 = random_matrix::<f64>(b, b, seed).upper_triangular();
    let mut v2 = random_matrix::<f64>(b, b, seed + 1);
    let t = tsqrt(&mut r1, &mut v2).unwrap();
    (v2, t)
}

fn bench_geqrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_host/geqrt");
    for b in TILE_SIZES {
        group.throughput(Throughput::Elements(flops::geqrt_flops(b)));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let a = random_matrix::<f64>(b, b, 1);
            bench.iter(|| {
                let mut work = a.clone();
                black_box(geqrt(&mut work).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_tsqrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_host/tsqrt");
    for b in TILE_SIZES {
        group.throughput(Throughput::Elements(flops::tsqrt_flops(b)));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let r1 = random_matrix::<f64>(b, b, 2).upper_triangular();
            let a2 = random_matrix::<f64>(b, b, 3);
            bench.iter(|| {
                let mut r = r1.clone();
                let mut a = a2.clone();
                black_box(tsqrt(&mut r, &mut a).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_unmqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_host/unmqr");
    for b in TILE_SIZES {
        group.throughput(Throughput::Elements(flops::unmqr_flops(b)));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let (vr, t) = factored_tile(b, 4);
            let c0 = random_matrix::<f64>(b, b, 5);
            bench.iter(|| {
                let mut c = c0.clone();
                unmqr(&vr, &t, &mut c).unwrap();
                black_box(&c);
            });
        });
    }
    group.finish();
}

fn bench_tsmqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_host/tsmqr");
    for b in TILE_SIZES {
        group.throughput(Throughput::Elements(flops::tsmqr_flops(b)));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let (v2, t) = eliminated_pair(b, 6);
            let a1 = random_matrix::<f64>(b, b, 7);
            let a2 = random_matrix::<f64>(b, b, 8);
            bench.iter(|| {
                let mut x1 = a1.clone();
                let mut x2 = a2.clone();
                tsmqr(&v2, &t, &mut x1, &mut x2).unwrap();
                black_box((&x1, &x2));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_geqrt, bench_tsqrt, bench_unmqr, bench_tsmqr
}
criterion_main!(benches);
