//! Elimination-tree geometry sweep: makespan per tree across
//! tall-skinny / square / wide tile grids, plus the auto-selector's pick
//! against the measured best (`BENCH_trees.json`).
//!
//! For each geometry the full candidate zoo (flat, binary, Fibonacci,
//! greedy, plateau, and — on tall-skinny grids — the TSQR fast path) is
//! built, its DAG metrics recorded (task count, unit critical path), its
//! makespan predicted by the discrete-event simulator under a profile
//! *calibrated from this host's own traced kernels*, and — where the
//! geometry is factorable (`rows >= cols`) — its wall-clock measured
//! through the real runtime. The selector's predicted winner is then
//! scored against the measured-best tree: the `selector_gap_pct` field
//! is the headline (0 = the selector picked the measured optimum).
//!
//! Usage: `cargo bench --bench tree_geometry [-- --smoke]`.

use std::fmt::Write as _;
use tileqr::dag::critical_path::critical_path_length;
use tileqr::dag::{TaskGraph, TreePolicy};
use tileqr::gen::random_matrix;
use tileqr::hetero::select::{candidate_trees, select_candidates};
use tileqr::hetero::{profiles, DeviceKind, DeviceProfile};
use tileqr::kernels::flops;
use tileqr::obs::{fit_step_times, fitted_profile, samples_from_trace, KernelSample};
use tileqr::runtime::TraceConfig;
use tileqr::{QrOptions, TiledQr};
use tileqr_bench::harness;

struct TreeRow {
    tree: String,
    tasks: usize,
    critical_path: usize,
    predicted_us: f64,
    measured_s: Option<f64>,
    gflops: Option<f64>,
}

struct GeometryBlock {
    label: &'static str,
    rows: usize,
    cols: usize,
    b: usize,
    grid: (usize, usize),
    trees: Vec<TreeRow>,
    selector_pick: String,
    predicted_best: String,
    measured_best: Option<String>,
    selector_gap_pct: Option<f64>,
}

/// Calibrate a [`DeviceProfile`] from this host's own kernels: traced
/// factorizations at three tile sizes feed the least-squares fit of the
/// simulator timing curves. Falls back to the paper's CPU profile when
/// the fit is under-determined (it needs ≥ 3 distinct tile sizes).
fn calibrate_host(cores: usize) -> (DeviceProfile, bool) {
    let mut samples: Vec<KernelSample> = Vec::new();
    for b in [8usize, 16, 32] {
        let n = 4 * b;
        let a = random_matrix::<f64>(n, n, 0xCA1 + b as u64);
        let opts = QrOptions::new()
            .tile_size(b)
            .workers(2)
            .tracing(TraceConfig::enabled());
        if let Ok((_, report)) = TiledQr::factor_traced(&a, &opts) {
            if let Some(trace) = &report.trace {
                samples.extend(samples_from_trace(trace, b));
            }
        }
    }
    match fit_step_times(&samples) {
        Some(times) => (
            fitted_profile("calibrated-host", DeviceKind::Cpu, cores, times),
            true,
        ),
        None => {
            let mut p = profiles::cpu_i7_3820();
            p.cores = cores;
            (p, false)
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = if smoke { 1 } else { 3 };
    let guard = harness::cores_guard("per-tree makespans and the selector-vs-oracle gap");
    let workers = guard.cores;

    // Tall-skinny (the TSQR fast path's home turf), square, a wide panel
    // (factorable: rows > cols but nearly square), and a wide tile grid
    // (rows < cols: DAG/sim metrics only — QR needs rows >= cols).
    let geometries: Vec<(&'static str, usize, usize, usize)> = if smoke {
        vec![
            ("tall-skinny", 256, 32, 16),
            ("square", 128, 128, 16),
            ("wide-panel", 96, 80, 16),
            ("wide", 48, 128, 16),
        ]
    } else {
        vec![
            ("tall-skinny", 1024, 64, 32),
            ("square", 512, 512, 32),
            ("wide-panel", 288, 256, 32),
            ("wide", 128, 512, 32),
        ]
    };

    let (profile, calibrated) = calibrate_host(workers);
    println!(
        "tree geometry sweep: {} geometries, {workers} worker(s), profile {} ({})",
        geometries.len(),
        profile.name,
        if calibrated {
            "fitted from host traces"
        } else {
            "paper fallback"
        }
    );

    let mut blocks: Vec<GeometryBlock> = Vec::new();
    for (label, rows, cols, b) in geometries {
        let (mt, nt) = (rows.div_ceil(b), cols.div_ceil(b));
        let trees = candidate_trees(mt, nt);
        let selection = select_candidates(&profile, mt, nt, b, &trees);
        let factorable = rows >= cols;
        let gflop = flops::qr_flops(rows, cols) as f64 / 1e9;
        let a = factorable.then(|| random_matrix::<f64>(rows, cols, 0xBE));

        harness::header(&format!(
            "tree_geometry/{label} ({rows}x{cols}, b={b}, grid {mt}x{nt})"
        ));
        let mut rows_out: Vec<TreeRow> = Vec::new();
        for &tree in &trees {
            let g = TaskGraph::build_tree(mt, nt, tree);
            let cp = critical_path_length(&g, |_| 1.0).round() as usize;
            let predicted_us = selection
                .ranked
                .iter()
                .find(|s| s.tree == tree)
                .map_or(f64::NAN, |s| s.makespan_us);
            let measured = a.as_ref().map(|a| {
                harness::bench(label, &tree.label(), samples, || {
                    TiledQr::factor(
                        a,
                        &QrOptions::new()
                            .tile_size(b)
                            .workers(workers)
                            .tree(TreePolicy::Fixed(tree)),
                    )
                    .expect("factorization");
                })
                .median
            });
            rows_out.push(TreeRow {
                tree: tree.label(),
                tasks: g.len(),
                critical_path: cp,
                predicted_us,
                measured_s: measured,
                gflops: measured.map(|s| gflop / s),
            });
        }

        let measured_best = rows_out
            .iter()
            .filter_map(|r| r.measured_s.map(|s| (s, r.tree.clone())))
            .min_by(|x, y| x.0.total_cmp(&y.0));
        let pick = selection.best.tree.label();
        let gap = measured_best.as_ref().and_then(|(best_s, _)| {
            rows_out
                .iter()
                .find(|r| r.tree == pick)
                .and_then(|r| r.measured_s)
                .map(|picked_s| (picked_s / best_s - 1.0) * 100.0)
        });
        if let Some((s, best)) = &measured_best {
            println!(
                "  selector picked {pick}; measured best {best} at {} (gap {})",
                harness::format_secs(*s),
                gap.map_or("n/a".to_string(), |g| format!("{g:+.1}%")),
            );
        } else {
            println!("  selector picked {pick} (sim-only geometry: rows < cols)");
        }
        blocks.push(GeometryBlock {
            label,
            rows,
            cols,
            b,
            grid: (mt, nt),
            trees: rows_out,
            selector_pick: pick,
            predicted_best: selection.best.tree.label(),
            measured_best: measured_best.map(|(_, t)| t),
            selector_gap_pct: gap,
        });
    }

    // --- Artifact. -------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str(&guard.json_fields("  "));
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"profile\": \"{}\",", profile.name);
    let _ = writeln!(json, "  \"profile_calibrated\": {calibrated},");
    let _ = writeln!(json, "  \"geometries\": [");
    for (gi, blk) in blocks.iter().enumerate() {
        let gsep = if gi + 1 == blocks.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"label\": \"{}\",", blk.label);
        let _ = writeln!(
            json,
            "      \"rows\": {}, \"cols\": {}, \"tile_size\": {},",
            blk.rows, blk.cols, blk.b
        );
        let _ = writeln!(json, "      \"grid\": [{}, {}],", blk.grid.0, blk.grid.1);
        let _ = writeln!(json, "      \"selector_pick\": \"{}\",", blk.selector_pick);
        let _ = writeln!(
            json,
            "      \"predicted_best\": \"{}\",",
            blk.predicted_best
        );
        let _ = writeln!(
            json,
            "      \"measured_best\": {},",
            blk.measured_best
                .as_ref()
                .map_or("null".to_string(), |t| format!("\"{t}\""))
        );
        let _ = writeln!(
            json,
            "      \"selector_gap_pct\": {},",
            blk.selector_gap_pct
                .map_or("null".to_string(), |g| format!("{g:.2}"))
        );
        let _ = writeln!(json, "      \"trees\": [");
        for (ti, r) in blk.trees.iter().enumerate() {
            let tsep = if ti + 1 == blk.trees.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "        {{\"tree\": \"{}\", \"tasks\": {}, \"critical_path\": {}, \
                 \"predicted_makespan_us\": {:.1}, \"measured_seconds\": {}, \"gflops\": {}}}{tsep}",
                r.tree,
                r.tasks,
                r.critical_path,
                r.predicted_us,
                r.measured_s
                    .map_or("null".to_string(), |s| format!("{s:.6}")),
                r.gflops.map_or("null".to_string(), |g| format!("{g:.3}")),
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{gsep}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    // cargo runs benches with cwd = the package dir; anchor the artifact at
    // the workspace root regardless.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trees.json");
    std::fs::write(out, &json).expect("write BENCH_trees.json");
    println!("wrote {out}");
}
