//! Ablation: GEQRT inner block size (`ib`).
//!
//! The workspace's default GEQRT uses `ib = b` (one T factor per tile —
//! maximal BLAS-3 updates, cubic T-construction cost); PLASMA uses small
//! `ib`. This bench measures the real host trade-off on a single tile and
//! on an apply-heavy workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::{geqrt_ib, geqrt_ib_apply, ApplySide};

fn bench_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_blocking/factor_b128");
    let b = 128;
    for ib in [4usize, 16, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(ib), &ib, |bench, &ib| {
            let a = random_matrix::<f64>(b, b, 1);
            bench.iter(|| {
                let mut work = a.clone();
                black_box(geqrt_ib(&mut work, ib).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    // Factor once, apply to a wide C many times — the regime where a
    // single big T factor (large ib) should win.
    let mut group = c.benchmark_group("inner_blocking/apply_b128_c512");
    let b = 128;
    for ib in [4usize, 16, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(ib), &ib, |bench, &ib| {
            let mut vr = random_matrix::<f64>(b, b, 2);
            let ts = geqrt_ib(&mut vr, ib).unwrap();
            let c0 = random_matrix::<f64>(b, 512, 3);
            bench.iter(|| {
                let mut cc = c0.clone();
                geqrt_ib_apply(&vr, &ts, ib, &mut cc, ApplySide::Transpose).unwrap();
                black_box(&cc);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_factor, bench_apply
}
criterion_main!(benches);
