//! Ablation: GEQRT inner block size (`ib`).
//!
//! The workspace's default GEQRT uses `ib = b` (one T factor per tile —
//! maximal BLAS-3 updates, cubic T-construction cost); PLASMA uses small
//! `ib`. This bench measures the real host trade-off on a single tile and
//! on an apply-heavy workload.

use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::{geqrt_ib, geqrt_ib_apply, ApplySide};
use tileqr_bench::harness;

const SAMPLES: usize = 10;

fn main() {
    harness::header("inner_blocking/factor_b128");
    let b = 128;
    for ib in [4usize, 16, 32, 128] {
        let a = random_matrix::<f64>(b, b, 1);
        harness::bench(
            "inner_blocking/factor_b128",
            &ib.to_string(),
            SAMPLES,
            || {
                let mut work = a.clone();
                black_box(geqrt_ib(&mut work, ib).unwrap());
            },
        );
    }

    // Factor once, apply to a wide C many times — the regime where a
    // single big T factor (large ib) should win.
    harness::header("inner_blocking/apply_b128_c512");
    for ib in [4usize, 16, 32, 128] {
        let mut vr = random_matrix::<f64>(b, b, 2);
        let ts = geqrt_ib(&mut vr, ib).unwrap();
        let c0 = random_matrix::<f64>(b, 512, 3);
        harness::bench(
            "inner_blocking/apply_b128_c512",
            &ib.to_string(),
            SAMPLES,
            || {
                let mut cc = c0.clone();
                geqrt_ib_apply(&vr, &ts, ib, &mut cc, ApplySide::Transpose).unwrap();
                black_box(&cc);
            },
        );
    }
}
