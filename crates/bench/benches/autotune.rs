//! The calibration loop, A/B'd end to end: flop-model priorities vs
//! measured-cost priorities in the deterministic list scheduler, the
//! online service tuner's probe → tuned transition on real jobs, and the
//! drift re-weighting path under a deliberately mis-scaled profile.
//!
//! Three sections, all recorded in `BENCH_autotune.json`:
//!
//! 1. `sim_ab` — [`tileqr::dag::list_makespan`] replays of reference
//!    grids (8×8 square and 32×2 tall-skinny) at 4 and 16 workers, under
//!    FIFO, critical-path-by-flops, and critical-path-by-measured-µs
//!    priorities, with task durations drawn from the calibrated curves
//!    (the scheduling claim, isolated from kernel noise).
//! 2. `service` — a [`tileqr::TunedQrService`] fed a stream of
//!    same-shape jobs: the first three probe tile sizes, the rest run
//!    selector-chosen plans; per-phase wall-clock and the probe/tuned
//!    counters from [`ServiceStats`] make the payoff measurable.
//! 3. `drift` — a real pool run whose calibrated cost model is scaled
//!    1000× off, forcing the drift detector to fire and re-rank
//!    mid-run; `drift_reweights` proves the loop closes online.
//!
//! Usage: `cargo bench --bench autotune [-- --smoke]`.

use std::fmt::Write as _;
use std::time::Instant;
use tileqr::dag::{
    bottom_levels, list_makespan, ClassCosts, CostCurve, CostModel, EliminationOrder, ListOrder,
    TaskGraph, TaskKind,
};
use tileqr::gen::random_matrix;
use tileqr::kernels::flops;
use tileqr::runtime::{DriftConfig, SchedulePolicy, ServiceConfig};
use tileqr::{JobPlan, QrOptions, TiledQr, TunedQrService, TunerConfig};
use tileqr_bench::harness;

/// The synthetic measured profile the sim A/B runs on: per-class cubic
/// curves where updates are far cheaper per flop than panel kernels
/// (the GPU-like regime the paper measures) — exactly the situation
/// where flop-weighted priorities misjudge the critical path.
fn measured_costs() -> ClassCosts {
    let c = |c0: f64, c2: f64| CostCurve { c0, c1: 0.0, c2 };
    ClassCosts {
        triangulation: c(4.0, 0.012),
        elimination: c(4.0, 0.012),
        update: c(2.0, 0.001),
    }
}

fn flop_weight(b: usize) -> impl Fn(TaskKind) -> f64 + Copy {
    move |t| match t {
        TaskKind::Geqrt { .. } => flops::geqrt_flops(b) as f64,
        TaskKind::Unmqr { .. } => flops::unmqr_flops(b) as f64,
        TaskKind::Tsqrt { .. } => flops::tsqrt_flops(b) as f64,
        TaskKind::Tsmqr { .. } => flops::tsmqr_flops(b) as f64,
        TaskKind::Ttqrt { .. } => flops::ttqrt_flops(b) as f64,
        TaskKind::Ttmqr { .. } => flops::ttmqr_flops(b) as f64,
    }
}

struct SimRow {
    grid: (usize, usize),
    workers: usize,
    fifo_us: f64,
    cp_flops_us: f64,
    cp_measured_us: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let guard = harness::cores_guard("service-tuning latencies and drift timings");
    println!(
        "calibration-loop A/B{} on {} core(s)",
        if smoke { " [smoke]" } else { "" },
        guard.cores
    );

    // ---- 1. Simulated A/B: flop vs measured priorities. ----
    let b = 16usize;
    let costs = measured_costs();
    let dur = |k: TaskKind| costs.cost_us(k, b);
    let mut sim_rows: Vec<SimRow> = Vec::new();
    harness::header("listsim/policy");
    for (mt, nt) in [(8usize, 8usize), (32, 2)] {
        let graph = TaskGraph::build(mt, nt, EliminationOrder::FlatTs);
        let flop_pri = bottom_levels(&graph, flop_weight(b));
        let cal_pri = bottom_levels(&graph, dur);
        for workers in [4usize, 16] {
            let fifo_us = list_makespan(&graph, workers, ListOrder::Fifo, dur);
            let cp_flops_us = list_makespan(&graph, workers, ListOrder::Priority(&flop_pri), dur);
            let cp_measured_us = list_makespan(&graph, workers, ListOrder::Priority(&cal_pri), dur);
            println!(
                "{:<40} fifo {fifo_us:>9.1}µs  cp-flops {cp_flops_us:>9.1}µs  cp-measured {cp_measured_us:>9.1}µs",
                format!("{mt}x{nt}/{workers}w"),
            );
            sim_rows.push(SimRow {
                grid: (mt, nt),
                workers,
                fifo_us,
                cp_flops_us,
                cp_measured_us,
            });
        }
    }

    // ---- 2. Online service tuner: probes, then tuned plans. ----
    let n = if smoke { 64 } else { 128 };
    let tuned_jobs = if smoke { 2 } else { 4 };
    let a = random_matrix::<f64>(n, n, 7);
    let svc: TunedQrService<f64> = TunedQrService::start_with(
        ServiceConfig {
            workers: guard.cores.clamp(2, 4),
            policy: SchedulePolicy::CriticalPath,
            ..ServiceConfig::default()
        },
        TunerConfig {
            probe_tiles: vec![8, 16, 32],
            profile_path: None, // in-memory only: benches must not leak state
        },
    );
    harness::header("service/tuning");
    let mut probe_secs = 0.0f64;
    let mut probe_count = 0usize;
    loop {
        let t0 = Instant::now();
        let (_, _, plan) = svc.factor(&a).expect("probe job");
        let dt = t0.elapsed().as_secs_f64();
        match plan {
            JobPlan::Probe { tile_size } => {
                probe_secs += dt;
                probe_count += 1;
                println!(
                    "{:<40} {:>12}",
                    format!("probe/b{tile_size}"),
                    harness::format_secs(dt)
                );
            }
            _ => panic!("expected probes first, got {plan:?}"),
        }
        if svc.profile_for(n, n).is_some() {
            break;
        }
        assert!(probe_count < 8, "tuner failed to converge");
    }
    let selection = svc.selection_for(n, n).expect("calibrated");
    let mut tuned_secs = 0.0f64;
    for _ in 0..tuned_jobs {
        let t0 = Instant::now();
        let (_, _, plan) = svc.factor(&a).expect("tuned job");
        tuned_secs += t0.elapsed().as_secs_f64();
        assert!(matches!(plan, JobPlan::Tuned { .. }), "got {plan:?}");
    }
    println!(
        "{:<40} {:>12}  (plan: b{} {})",
        format!("tuned/x{tuned_jobs}"),
        harness::format_secs(tuned_secs / tuned_jobs as f64),
        selection.best.tile_size,
        selection.best.tree.label(),
    );
    let svc_stats = svc.shutdown();

    // ---- 3. Drift re-weighting on a mis-scaled profile. ----
    // A calibrated model 1000x slower than reality guarantees the
    // detector sees the discrepancy and re-ranks (recovery direction).
    let drift_n = if smoke { 96 } else { 160 };
    let ad = random_matrix::<f64>(drift_n, drift_n, 11);
    let mis_scaled = CostModel::Calibrated(costs.scaled([1000.0, 1000.0, 1000.0]));
    let t0 = Instant::now();
    let (_, report) = TiledQr::factor_traced(
        &ad,
        &QrOptions::new()
            .tile_size(16)
            .workers(guard.cores.clamp(2, 4))
            .schedule(SchedulePolicy::CriticalPath)
            .cost_model(mis_scaled)
            .drift(DriftConfig::on()),
    )
    .expect("drift run");
    let drift_secs = t0.elapsed().as_secs_f64();
    println!(
        "\ndrift: {} re-weight(s) over a {drift_n}x{drift_n} run in {}",
        report.drift_reweights,
        harness::format_secs(drift_secs)
    );

    // ---- Artifact. ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    json.push_str(&guard.json_fields("  "));
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"tile_size\": {b},");
    let _ = writeln!(json, "  \"sim_ab\": [");
    for (i, r) in sim_rows.iter().enumerate() {
        let sep = if i + 1 == sim_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"grid\": \"{}x{}\", \"workers\": {}, \"fifo_us\": {:.3}, \"cp_flops_us\": {:.3}, \"cp_measured_us\": {:.3}}}{sep}",
            r.grid.0, r.grid.1, r.workers, r.fifo_us, r.cp_flops_us, r.cp_measured_us
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"probe_jobs\": {},", svc_stats.probe_jobs);
    let _ = writeln!(json, "    \"tuned_jobs\": {},", svc_stats.tuned_jobs);
    let _ = writeln!(
        json,
        "    \"probe_seconds_mean\": {:.6},",
        probe_secs / probe_count.max(1) as f64
    );
    let _ = writeln!(
        json,
        "    \"tuned_seconds_mean\": {:.6},",
        tuned_secs / tuned_jobs as f64
    );
    let _ = writeln!(json, "    \"selected_tile\": {},", selection.best.tile_size);
    let _ = writeln!(
        json,
        "    \"selected_tree\": \"{}\",",
        selection.best.tree.label()
    );
    // Tuned-vs-probe wall-clock is parallelism- and noise-sensitive:
    // null it out on single-core hosts like every other headline.
    let _ = writeln!(
        json,
        "    \"tuned_speedup_vs_probe_mean\": {}",
        guard.gate_f64((probe_secs / probe_count.max(1) as f64) / (tuned_secs / tuned_jobs as f64))
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"drift\": {{");
    let _ = writeln!(json, "    \"n\": {drift_n},");
    let _ = writeln!(json, "    \"reweights\": {},", report.drift_reweights);
    let _ = writeln!(json, "    \"seconds\": {drift_secs:.6}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_autotune.json");
    std::fs::write(out, &json).expect("write BENCH_autotune.json");
    println!("wrote {out}");
}
