//! Load-generator benchmark for the resident [`QrService`]: a seeded
//! open-loop arrival process (exponential inter-arrivals via [`Rng64`])
//! offers a mixed-size job stream at several multiples of the measured
//! service capacity and records the p50/p95/p99 job latency at each
//! offered load, plus a saturation-throughput A/B against the serial
//! spin-up-a-pool-per-matrix baseline, plus a **shedding** phase: the
//! same stream at 2x capacity with per-job deadlines, recording how
//! many jobs the service shed (`jobs_shed`) and the p99 latency of the
//! jobs that still completed under shedding. Every row lands in
//! `BENCH_service.json` (workspace root) so the throughput claim is
//! reproducible from a committed artifact.
//!
//! Usage: `cargo bench --bench service_load [-- --smoke]`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::kernels::FactorState;
use tileqr::obs::LatencyHistogram;
use tileqr::runtime::{
    parallel_factor, JobSpec, PoolConfig, QrService, SchedulePolicy, ServiceConfig,
};
use tileqr::{Matrix, Rng64, TiledMatrix};
use tileqr_bench::harness;

/// One offered-load level's latency summary.
struct Level {
    offered: f64,
    rate_jobs_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_queue_wait_us: f64,
    jobs: usize,
}

/// Mixed-size workload: job `i` cycles through three shapes so the
/// stream carries both deep DAGs and near-instant single-panel jobs.
fn job_matrix(i: u64, smoke: bool) -> (Matrix<f64>, usize) {
    let shapes: &[(usize, usize)] = if smoke {
        &[(48, 48), (64, 32), (32, 32)]
    } else {
        &[(128, 128), (192, 128), (64, 64)]
    };
    let (m, n) = shapes[(i % 3) as usize];
    (random_matrix::<f64>(m, n, 10_000 + i), 16)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let jobs: u64 = if smoke { 9 } else { 33 };
    let b = 16usize;
    let guard = harness::cores_guard(
        "service concurrency, fair-share interleaving, and throughput-vs-spin-up numbers",
    );
    let cores = guard.cores;
    let config = ServiceConfig {
        workers: 0, // all cores
        policy: SchedulePolicy::CriticalPath,
        max_in_flight: 0, // open-loop: arrivals must never block on admission
        ..ServiceConfig::default()
    };
    let workers = config.effective_workers();

    println!(
        "service load: {jobs} mixed-size jobs, tile {b}, {workers} worker(s), {cores} core(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    // --- Baseline: spin up a fresh pool per matrix, serially. -----------
    let specs: Vec<(Matrix<f64>, usize)> = (0..jobs).map(|i| job_matrix(i, smoke)).collect();
    let t0 = Instant::now();
    for (a, b) in &specs {
        let tiled = TiledMatrix::from_matrix(a, *b).expect("tiling");
        let graph = TaskGraph::build(
            tiled.tile_rows(),
            tiled.tile_cols(),
            EliminationOrder::FlatTs,
        );
        parallel_factor(
            FactorState::new(tiled),
            &graph,
            PoolConfig {
                workers,
                policy: SchedulePolicy::CriticalPath,
                ..PoolConfig::default()
            },
        )
        .expect("baseline factor");
    }
    let baseline_s = t0.elapsed().as_secs_f64();

    // --- Saturation: all jobs at once through one resident service. -----
    let svc = QrService::<f64>::start(config);
    let t0 = Instant::now();
    let handles: Vec<_> = specs
        .iter()
        .map(|(a, b)| {
            svc.submit(JobSpec::factor(a.clone()).tile_size(*b))
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().expect("saturation job");
    }
    let saturation_s = t0.elapsed().as_secs_f64();
    svc.shutdown();
    let capacity = jobs as f64 / saturation_s;
    let speedup = baseline_s / saturation_s;

    harness::header("service/phase");
    println!(
        "{:<40} {:>12} {:>12} {:>10.1} jobs/s",
        "baseline_spinup_per_matrix",
        harness::format_secs(baseline_s),
        harness::format_secs(baseline_s),
        jobs as f64 / baseline_s
    );
    println!(
        "{:<40} {:>12} {:>12} {:>10.1} jobs/s  ({speedup:.2}x vs spin-up)",
        "service_saturation",
        harness::format_secs(saturation_s),
        harness::format_secs(saturation_s),
        capacity
    );

    // --- Open-loop offered-load sweep: 0.5x, 1x, 2x capacity. -----------
    let mut levels: Vec<Level> = Vec::new();
    for (li, &offered) in [0.5f64, 1.0, 2.0].iter().enumerate() {
        let lambda = offered * capacity; // jobs per second
        let mut rng = Rng64::seed_from_u64(0xB0A7 + li as u64);
        let svc = QrService::<f64>::start(config);
        let mut handles = Vec::new();
        for (i, (a, b)) in specs.iter().enumerate() {
            // Exponential inter-arrival: -ln(1 - u) / lambda.
            if i > 0 {
                let u = rng.next_f64();
                let gap = -(1.0 - u).ln() / lambda;
                std::thread::sleep(Duration::from_secs_f64(gap.min(2.0)));
            }
            handles.push(
                svc.submit(JobSpec::factor(a.clone()).tile_size(*b))
                    .unwrap(),
            );
        }
        let mut lat = LatencyHistogram::new();
        let mut queue_wait_us = 0.0f64;
        let n = handles.len();
        for h in handles {
            let res = h.wait().expect("load job");
            lat.record_ns(res.latency.as_nanos().min(u128::from(u64::MAX)) as u64);
            queue_wait_us += res.queue_wait.as_secs_f64() * 1e6;
        }
        svc.shutdown();
        let lv = Level {
            offered,
            rate_jobs_per_s: lambda,
            p50_us: lat.p50_us().unwrap_or(0.0),
            p95_us: lat.p95_us().unwrap_or(0.0),
            p99_us: lat.p99_us().unwrap_or(0.0),
            mean_queue_wait_us: queue_wait_us / n as f64,
            jobs: n,
        };
        println!(
            "{:<40} {:>12} {:>12} {:>10}  (p50 {:.0} us, p95 {:.0} us, p99 {:.0} us)",
            format!("open_loop/{offered}x"),
            format!("{:.1}/s", lv.rate_jobs_per_s),
            format!("{n} jobs"),
            "",
            lv.p50_us,
            lv.p95_us,
            lv.p99_us
        );
        levels.push(lv);
    }

    // --- Shedding: 2x capacity, every job deadline-bound. ----------------
    // The deadline is the 1x-load p95 sojourn: comfortably met when the
    // service keeps up, routinely blown once the backlog from 2x load
    // builds — so the service sheds the overflow instead of letting the
    // whole stream's latency collapse.
    let deadline = Duration::from_secs_f64((levels[1].p95_us * 1e-6).max(1e-4));
    let lambda = 2.0 * capacity;
    let mut rng = Rng64::seed_from_u64(0x5EED);
    let svc = QrService::<f64>::start(config);
    let mut handles = Vec::new();
    for (i, (a, b)) in specs.iter().enumerate() {
        if i > 0 {
            let u = rng.next_f64();
            let gap = -(1.0 - u).ln() / lambda;
            std::thread::sleep(Duration::from_secs_f64(gap.min(2.0)));
        }
        handles.push(
            svc.submit(JobSpec::factor(a.clone()).tile_size(*b).deadline(deadline))
                .unwrap(),
        );
    }
    let mut shed_lat = LatencyHistogram::new();
    let mut shed_completed = 0usize;
    let shed_offered = handles.len();
    for h in handles {
        match h.wait() {
            Ok(res) => {
                shed_lat.record_ns(res.latency.as_nanos().min(u128::from(u64::MAX)) as u64);
                shed_completed += 1;
            }
            Err(tileqr::runtime::ServiceError::DeadlineExceeded { .. }) => {}
            Err(e) => panic!("shedding job failed unexpectedly: {e}"),
        }
    }
    let shed_stats = svc.shutdown();
    let jobs_shed = shed_stats.lifecycle.jobs_shed;
    let shed_p99_us = shed_lat.p99_us().unwrap_or(0.0);
    println!(
        "{:<40} {:>12} {:>12} {:>10}  ({} shed, p99-completed {:.0} us, deadline {:.0} us)",
        "shedding/2.0x",
        format!("{lambda:.1}/s"),
        format!("{shed_offered} jobs"),
        "",
        jobs_shed,
        shed_p99_us,
        deadline.as_secs_f64() * 1e6
    );

    // --- Artifact. -------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"tile_size\": {b},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str(&guard.json_fields("  "));
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"baseline_spinup_seconds\": {baseline_s:.6},");
    let _ = writeln!(json, "  \"service_saturation_seconds\": {saturation_s:.6},");
    let _ = writeln!(json, "  \"service_capacity_jobs_per_s\": {capacity:.3},");
    let _ = writeln!(json, "  \"service_speedup_vs_spinup\": {speedup:.4},");
    let _ = writeln!(json, "  \"levels\": [");
    for (idx, l) in levels.iter().enumerate() {
        let sep = if idx + 1 == levels.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"offered_load\": {}, \"arrival_rate_jobs_per_s\": {:.3}, \"jobs\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_queue_wait_us\": {:.1}}}{sep}",
            l.offered, l.rate_jobs_per_s, l.jobs, l.p50_us, l.p95_us, l.p99_us, l.mean_queue_wait_us,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"shedding\": {{\"offered_load\": 2.0, \"deadline_us\": {:.1}, \"jobs\": {shed_offered}, \"jobs_shed\": {jobs_shed}, \"completed\": {shed_completed}, \"p99_completed_us\": {shed_p99_us:.1}}}",
        deadline.as_secs_f64() * 1e6
    );
    let _ = writeln!(json, "}}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(out, &json).expect("write BENCH_service.json");
    println!("wrote {out}");
}
