//! Ablation: TS flat-chain elimination (the paper's order) versus TT tree
//! orders (Bouwmeester et al.) — both as real host factorizations on tall
//! matrices (where trees shorten the critical path) and as simulated
//! critical-path lengths.

use std::hint::black_box;
use tileqr::dag::{critical_path, EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::prelude::*;
use tileqr_bench::harness;

const SAMPLES: usize = 5;

fn main() {
    harness::header("elimination/tall_parallel");
    let (m, n, b) = (1024usize, 128usize, 32usize);
    for (label, order) in [
        ("flat_ts", EliminationOrder::FlatTs),
        ("flat_tt", EliminationOrder::FlatTt),
        ("binary_tt", EliminationOrder::BinaryTt),
    ] {
        let a = random_matrix::<f64>(m, n, 3);
        let opts = QrOptions::new().tile_size(b).order(order).workers(0);
        harness::bench("elimination/tall_parallel", label, SAMPLES, || {
            black_box(TiledQr::factor(&a, &opts).unwrap());
        });
    }

    // Not a timing bench of kernels but of the DAG analysis itself — and
    // its output (printed once) is the ablation's headline number.
    harness::header("elimination/critical_path");
    for (label, order) in [
        ("flat_ts", EliminationOrder::FlatTs),
        ("binary_tt", EliminationOrder::BinaryTt),
    ] {
        let g = TaskGraph::build(64, 8, order);
        let depth = critical_path::critical_path_length(&g, |_| 1.0);
        println!("{label}: {} tasks, unit critical path {depth}", g.len());
        harness::bench("elimination/critical_path", label, SAMPLES, || {
            let g = TaskGraph::build(64, 8, order);
            black_box(critical_path::critical_path_length(&g, |_| 1.0));
        });
    }
}
