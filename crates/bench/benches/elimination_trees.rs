//! Ablation: TS flat-chain elimination (the paper's order) versus TT tree
//! orders (Bouwmeester et al.) — both as real host factorizations on tall
//! matrices (where trees shorten the critical path) and as simulated
//! critical-path lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tileqr::dag::{critical_path, EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::prelude::*;

fn bench_orders_tall(c: &mut Criterion) {
    let mut group = c.benchmark_group("elimination/tall_parallel");
    let (m, n, b) = (1024usize, 128usize, 32usize);
    for (label, order) in [
        ("flat_ts", EliminationOrder::FlatTs),
        ("flat_tt", EliminationOrder::FlatTt),
        ("binary_tt", EliminationOrder::BinaryTt),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |bench, &order| {
            let a = random_matrix::<f64>(m, n, 3);
            let opts = QrOptions::new().tile_size(b).order(order).workers(0);
            bench.iter(|| black_box(TiledQr::factor(&a, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_critical_path_analysis(c: &mut Criterion) {
    // Not a timing bench of kernels but of the DAG analysis itself — and
    // its output (printed once) is the ablation's headline number.
    let mut group = c.benchmark_group("elimination/critical_path");
    for (label, order) in [
        ("flat_ts", EliminationOrder::FlatTs),
        ("binary_tt", EliminationOrder::BinaryTt),
    ] {
        let g = TaskGraph::build(64, 8, order);
        let depth = critical_path::critical_path_length(&g, |_| 1.0);
        println!("{label}: {} tasks, unit critical path {depth}", g.len());
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |bench, &order| {
            bench.iter(|| {
                let g = TaskGraph::build(64, 8, order);
                black_box(critical_path::critical_path_length(&g, |_| 1.0))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_orders_tall, bench_critical_path_analysis
}
criterion_main!(benches);
