//! End-to-end tiled QR factorization throughput on the host, across
//! matrix sizes and tile sizes — the single-device baseline every
//! heterogeneous result builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::flops;
use tileqr::prelude::*;

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_qr/size");
    for n in [128usize, 256, 512] {
        group.throughput(Throughput::Elements(flops::qr_flops(n, n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let a = random_matrix::<f64>(n, n, 42);
            let opts = QrOptions::new().tile_size(64);
            bench.iter(|| black_box(TiledQr::factor(&a, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_tile_sizes(c: &mut Criterion) {
    // The paper fixes b = 16 for core-count reasons; on a host CPU larger
    // tiles amortize per-kernel overhead — this sweep shows the tradeoff.
    let mut group = c.benchmark_group("tiled_qr/tile_size");
    let n = 256;
    for b in [16usize, 32, 64, 128] {
        group.throughput(Throughput::Elements(flops::qr_flops(n, n)));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let a = random_matrix::<f64>(n, n, 42);
            let opts = QrOptions::new().tile_size(b);
            bench.iter(|| black_box(TiledQr::factor(&a, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    // The paper's Algorithm 1 as a baseline for the tiled algorithm.
    let mut group = c.benchmark_group("tiled_qr/vs_reference");
    let n = 256;
    group.throughput(Throughput::Elements(flops::qr_flops(n, n)));
    group.bench_function("unblocked_householder", |bench| {
        let a = random_matrix::<f64>(n, n, 42);
        bench.iter(|| {
            let mut work = a.clone();
            black_box(tileqr::kernels::reference::geqrf(&mut work).unwrap())
        });
    });
    group.bench_function("tiled_b64", |bench| {
        let a = random_matrix::<f64>(n, n, 42);
        let opts = QrOptions::new().tile_size(64);
        bench.iter(|| black_box(TiledQr::factor(&a, &opts).unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sizes, bench_tile_sizes, bench_reference
}
criterion_main!(benches);
