//! End-to-end tiled QR factorization throughput on the host, across
//! matrix sizes and tile sizes — the single-device baseline every
//! heterogeneous result builds on.

use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::flops;
use tileqr::prelude::*;
use tileqr_bench::harness;

const SAMPLES: usize = 10;

fn main() {
    harness::header("tiled_qr/size");
    for n in [128usize, 256, 512] {
        let a = random_matrix::<f64>(n, n, 42);
        let opts = QrOptions::new().tile_size(64);
        harness::bench_with_flops(
            "tiled_qr/size",
            &n.to_string(),
            SAMPLES,
            flops::qr_flops(n, n),
            || {
                black_box(TiledQr::factor(&a, &opts).unwrap());
            },
        );
    }

    // The paper fixes b = 16 for core-count reasons; on a host CPU larger
    // tiles amortize per-kernel overhead — this sweep shows the tradeoff.
    harness::header("tiled_qr/tile_size");
    let n = 256;
    for b in [16usize, 32, 64, 128] {
        let a = random_matrix::<f64>(n, n, 42);
        let opts = QrOptions::new().tile_size(b);
        harness::bench_with_flops(
            "tiled_qr/tile_size",
            &b.to_string(),
            SAMPLES,
            flops::qr_flops(n, n),
            || {
                black_box(TiledQr::factor(&a, &opts).unwrap());
            },
        );
    }

    // The paper's Algorithm 1 as a baseline for the tiled algorithm.
    harness::header("tiled_qr/vs_reference");
    let a = random_matrix::<f64>(n, n, 42);
    harness::bench_with_flops(
        "tiled_qr/vs_reference",
        "unblocked_householder",
        SAMPLES,
        flops::qr_flops(n, n),
        || {
            let mut work = a.clone();
            black_box(tileqr::kernels::reference::geqrf(&mut work).unwrap());
        },
    );
    let opts = QrOptions::new().tile_size(64);
    harness::bench_with_flops(
        "tiled_qr/vs_reference",
        "tiled_b64",
        SAMPLES,
        flops::qr_flops(n, n),
        || {
            black_box(TiledQr::factor(&a, &opts).unwrap());
        },
    );
}
