//! Real-thread scalability of the manager/worker runtime (the host-side
//! analogue of the paper's Fig. 8), A/B'd against the seed's global-lock
//! FIFO runtime ([`tileqr_bench::baseline`]).
//!
//! Sweeps worker counts over three executors — baseline (global lock,
//! deep-copy staging, FIFO), the per-tile runtime under FIFO, and the
//! per-tile runtime under critical-path priorities — and records every
//! row in `BENCH_runtime.json` (written to the current directory) so the
//! speedup claim is reproducible from a committed artifact.
//!
//! Each row also records the memory discipline of the executor: heap
//! allocations per task (counted by a [`CountingAlloc`] global allocator
//! over one untimed run with a uniquely-owned input) and, for the
//! per-tile runtime, the hot-path counters from the run report
//! (`cow_clones`, `workspace_resizes` — both 0 when the arena plumbing is
//! healthy).
//!
//! Usage: `cargo bench --bench runtime_scaling [-- n b]` (default 1024 32).

use std::fmt::Write as _;
use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::kernels::{flops, FactorState};
use tileqr::runtime::{parallel_factor_traced, PoolConfig, SchedulePolicy};
use tileqr::TiledMatrix;
use tileqr_bench::alloc_counter::{self, CountingAlloc};
use tileqr_bench::{baseline, harness};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Row {
    executor: &'static str,
    policy: &'static str,
    workers: usize,
    seconds: f64,
    gflops: f64,
    imbalance: f64,
    stage_wait_s: f64,
    commit_wait_s: f64,
    max_ready_depth: usize,
    allocs_per_task: f64,
    cow_clones: Option<u64>,
    workspace_resizes: Option<u64>,
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| a != "--bench");
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let samples = 3;

    let a = random_matrix::<f64>(n, n, 7);
    let tiled = TiledMatrix::from_matrix(&a, b).expect("tiling");
    let graph = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let gflop = flops::qr_flops(n, n) as f64 / 1e9;
    let max = std::thread::available_parallelism().map_or(4, |v| v.get());
    let mut counts = vec![1usize, 2, 4, 8];
    if max > 8 {
        counts.push(max);
    }
    counts.retain(|&w| w <= max.max(8)); // keep 8 even on smaller hosts: oversubscription is part of the A/B

    println!(
        "runtime scaling A/B: {n}x{n}, tile {b} ({} tasks, {gflop:.2} GFLOP), host has {max} core(s)",
        graph.len()
    );
    harness::header("runtime/workers");
    let mut rows: Vec<Row> = Vec::new();

    for &w in &counts {
        let stats = harness::measure(samples, || {
            baseline::global_lock_factor(tiled.clone(), &graph, w).expect("baseline");
        });
        // Allocation discipline is measured on a separate untimed run with
        // a uniquely-owned input, so the number reflects the executor, not
        // the bench's reuse of `tiled` across samples.
        let fresh = TiledMatrix::from_matrix(&a, b).expect("tiling");
        let allocs = alloc_counter::count(|| {
            baseline::global_lock_factor(fresh, &graph, w).expect("baseline");
        });
        let allocs_per_task = allocs as f64 / graph.len() as f64;
        println!(
            "{:<40} {:>12} {:>12} {:>10.2} GFLOP/s  ({allocs_per_task:.1} allocs/task)",
            format!("global_lock_fifo/{w}"),
            harness::format_secs(stats.median),
            harness::format_secs(stats.min),
            gflop / stats.median
        );
        rows.push(Row {
            executor: "global_lock",
            policy: "fifo",
            workers: w,
            seconds: stats.median,
            gflops: gflop / stats.median,
            imbalance: f64::NAN,
            stage_wait_s: f64::NAN,
            commit_wait_s: f64::NAN,
            max_ready_depth: 0,
            allocs_per_task,
            cow_clones: None,
            workspace_resizes: None,
        });
    }

    for policy in [SchedulePolicy::Fifo, SchedulePolicy::CriticalPath] {
        for &w in &counts {
            let mut last_report = None;
            let stats = harness::measure(samples, || {
                let (_, report) = parallel_factor_traced(
                    FactorState::new(tiled.clone()),
                    &graph,
                    PoolConfig {
                        workers: w,
                        policy,
                        ..PoolConfig::default()
                    },
                )
                .expect("factorization");
                last_report = Some(report);
            });
            let report = last_report.expect("at least one run");
            // Memory discipline on a uniquely-owned input: cow_clones must
            // be 0 here (nobody else holds tile handles), and the
            // pre-sized per-worker arenas must never regrow.
            let fresh = TiledMatrix::from_matrix(&a, b).expect("tiling");
            let mut counted_report = None;
            let allocs = alloc_counter::count(|| {
                let (_, rep) = parallel_factor_traced(
                    FactorState::new(fresh),
                    &graph,
                    PoolConfig {
                        workers: w,
                        policy,
                        ..PoolConfig::default()
                    },
                )
                .expect("factorization");
                counted_report = Some(rep);
            });
            let counted = counted_report.expect("counted run");
            let allocs_per_task = allocs as f64 / graph.len() as f64;
            println!(
                "{:<40} {:>12} {:>12} {:>10.2} GFLOP/s  (imb {:.2}, {allocs_per_task:.1} allocs/task, cow {})",
                format!("per_tile_{}/{w}", policy.name()),
                harness::format_secs(stats.median),
                harness::format_secs(stats.min),
                gflop / stats.median,
                report.imbalance(),
                counted.cow_clones()
            );
            rows.push(Row {
                executor: "per_tile",
                policy: policy.name(),
                workers: w,
                seconds: stats.median,
                gflops: gflop / stats.median,
                imbalance: report.imbalance(),
                stage_wait_s: report.stage_wait.as_secs_f64(),
                commit_wait_s: report.commit_wait.as_secs_f64(),
                max_ready_depth: report.max_ready_depth,
                allocs_per_task,
                cow_clones: Some(counted.cow_clones()),
                workspace_resizes: Some(counted.counters.workspace_resizes),
            });
        }
    }

    // Headline: new runtime (best policy) vs the seed baseline at the
    // highest common worker count.
    let w_head = *counts
        .iter()
        .rev()
        .find(|&&w| w >= 8)
        .unwrap_or(counts.last().unwrap());
    let base = rows
        .iter()
        .find(|r| r.executor == "global_lock" && r.workers == w_head)
        .expect("baseline row");
    let best = rows
        .iter()
        .filter(|r| r.executor == "per_tile" && r.workers == w_head)
        .min_by(|x, y| x.seconds.total_cmp(&y.seconds))
        .expect("per-tile row");
    println!(
        "\nheadline @ {w_head} workers: per_tile_{} {} vs global_lock {} -> {:.2}x",
        best.policy,
        harness::format_secs(best.seconds),
        harness::format_secs(base.seconds),
        base.seconds / best.seconds
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"tile_size\": {b},");
    let _ = writeln!(json, "  \"tasks\": {},", graph.len());
    let _ = writeln!(json, "  \"gflop\": {gflop:.4},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"host_cores\": {max},");
    let guard = harness::cores_guard("worker-scaling and speedup-vs-baseline numbers");
    json.push_str(&guard.json_fields("  "));
    // Single-core hosts have no meaningful speedup headline: report null
    // (the guard's warning key explains why) instead of a degenerate 1x.
    let _ = writeln!(
        json,
        "  \"headline_speedup_vs_global_lock\": {},",
        guard.gate_f64(base.seconds / best.seconds)
    );
    let _ = writeln!(json, "  \"rows\": [");
    for (idx, r) in rows.iter().enumerate() {
        let sep = if idx + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"executor\": \"{}\", \"policy\": \"{}\", \"workers\": {}, \"seconds\": {:.6}, \"gflops\": {:.3}, \"imbalance\": {}, \"stage_wait_s\": {}, \"commit_wait_s\": {}, \"max_ready_depth\": {}, \"allocs_per_task\": {:.2}, \"cow_clones\": {}, \"workspace_resizes\": {}}}{sep}",
            r.executor,
            r.policy,
            r.workers,
            r.seconds,
            r.gflops,
            json_f64(r.imbalance),
            json_f64(r.stage_wait_s),
            json_f64(r.commit_wait_s),
            r.max_ready_depth,
            r.allocs_per_task,
            json_u64(r.cow_clones),
            json_u64(r.workspace_resizes),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    // cargo runs benches with cwd = the package dir; anchor the artifact at
    // the workspace root regardless.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(out, &json).expect("write BENCH_runtime.json");
    println!("wrote {out}");
}

/// JSON has no NaN; emit `null` for rows where a field does not apply.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// `null` for executors that do not expose a given counter.
fn json_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}
