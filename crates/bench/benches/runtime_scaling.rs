//! Real-thread scalability of the manager/worker runtime (the host-side
//! analogue of the paper's Fig. 8): tiled QR wall time versus the number
//! of computing threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::flops;
use tileqr::prelude::*;

fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/workers");
    let n = 512;
    let b = 64;
    let max = std::thread::available_parallelism().map_or(4, |v| v.get());
    let mut counts = vec![1usize, 2, 4];
    if max > 4 {
        counts.push(max);
    }
    counts.dedup();
    for workers in counts {
        group.throughput(Throughput::Elements(flops::qr_flops(n, n)));
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bench, &workers| {
                let a = random_matrix::<f64>(n, n, 7);
                let opts = QrOptions::new().tile_size(b).workers(workers);
                bench.iter(|| black_box(TiledQr::factor(&a, &opts).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workers
}
criterion_main!(benches);
