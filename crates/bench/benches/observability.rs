//! Overhead regression bench for the observability layer: factor the
//! same matrix with tracing disabled and enabled and record both, so a
//! future change that puts allocation or locking back on the hot path
//! shows up as a number, not a vibe.
//!
//! The disabled configuration must price at zero (it takes the exact
//! code path of the pre-observability runtime); the enabled
//! configuration budgets < 5% on the 8x8-tile reference case. Results
//! land in `BENCH_obs.json` at the workspace root.
//!
//! Usage: `cargo bench --bench observability [-- n b workers]`
//! (default 256 32 4 → the 8x8-tile reference case).

use std::fmt::Write as _;
use tileqr::dag::{EliminationOrder, TaskGraph};
use tileqr::gen::random_matrix;
use tileqr::kernels::{flops, FactorState};
use tileqr::obs::chrome;
use tileqr::runtime::{parallel_factor_traced, PoolConfig, TraceConfig};
use tileqr::TiledMatrix;
use tileqr_bench::harness;

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| a != "--bench");
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples = 5;

    let a = random_matrix::<f64>(n, n, 11);
    let tiled = TiledMatrix::from_matrix(&a, b).expect("tiling");
    let graph = TaskGraph::build(
        tiled.tile_rows(),
        tiled.tile_cols(),
        EliminationOrder::FlatTs,
    );
    let gflop = flops::qr_flops(n, n) as f64 / 1e9;

    println!(
        "observability overhead: {n}x{n}, tile {b} ({}x{} tiles, {} tasks), {workers} workers",
        tiled.tile_rows(),
        tiled.tile_cols(),
        graph.len()
    );
    harness::header("obs/config");

    let run = |trace: TraceConfig| {
        let mut last = None;
        let stats = harness::measure(samples, || {
            let (_, report) = parallel_factor_traced(
                FactorState::new(tiled.clone()),
                &graph,
                PoolConfig {
                    workers,
                    trace,
                    ..PoolConfig::default()
                },
            )
            .expect("factorization");
            last = Some(report);
        });
        (stats, last.expect("at least one run"))
    };

    let (off, off_report) = run(TraceConfig::default());
    assert!(
        off_report.trace.is_none(),
        "disabled run must record nothing"
    );
    println!(
        "{:<40} {:>12} {:>12} {:>10.2} GFLOP/s",
        "tracing_disabled",
        harness::format_secs(off.median),
        harness::format_secs(off.min),
        gflop / off.median
    );

    let (on, on_report) = run(TraceConfig::enabled());
    let trace = on_report.trace.as_ref().expect("enabled run records");
    assert_eq!(trace.compute_span_count(), graph.len());
    assert_eq!(
        trace.hot_path_reallocations, 0,
        "recording must never allocate on the hot path"
    );
    assert_eq!(trace.dropped, 0, "default ring capacity must suffice here");
    println!(
        "{:<40} {:>12} {:>12} {:>10.2} GFLOP/s",
        "tracing_enabled",
        harness::format_secs(on.median),
        harness::format_secs(on.min),
        gflop / on.median
    );

    let overhead = on.median / off.median - 1.0;
    println!(
        "\nenabled overhead: {:+.2}% (budget < 5% on the 8x8-tile case)",
        overhead * 100.0
    );
    // Exporting is off the factorization path; time it separately so the
    // artifact records the full cost of getting a trace onto disk.
    let export_stats = harness::measure(samples, || {
        let json = chrome::export(trace);
        std::hint::black_box(json.len());
    });
    println!(
        "{:<40} {:>12} ({} spans, {} events)",
        "chrome_export",
        harness::format_secs(export_stats.median),
        trace.spans.len(),
        trace.events.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"tile_size\": {b},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"tasks\": {},", graph.len());
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"disabled_seconds\": {:.6},", off.median);
    let _ = writeln!(json, "  \"enabled_seconds\": {:.6},", on.median);
    let _ = writeln!(json, "  \"enabled_overhead\": {:.6},", overhead);
    let _ = writeln!(json, "  \"export_seconds\": {:.6},", export_stats.median);
    let _ = writeln!(json, "  \"spans\": {},", trace.spans.len());
    let _ = writeln!(json, "  \"events\": {},", trace.events.len());
    let _ = writeln!(
        json,
        "  \"hot_path_reallocations\": {}",
        trace.hot_path_reallocations
    );
    let _ = writeln!(json, "}}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out, &json).expect("write BENCH_obs.json");
    println!("wrote {out}");
}
