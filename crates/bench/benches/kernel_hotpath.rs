//! Zero-allocation hot-path A/B: the seed's allocating kernels
//! ([`tileqr_bench::legacy_kernels`]) against the workspace-arena kernels
//! (`tileqr::kernels::*_ws`).
//!
//! For every kernel and tile size this records two things side by side:
//! wall time per call (minimum over batched timed samples — the robust
//! estimator on a shared host, see `harness::measure_calibrated`) and
//! heap allocations
//! per call, counted by a [`CountingAlloc`] global allocator. The
//! workspace path is *asserted* to allocate zero times in steady state —
//! a regression here fails the bench, not just a number in a report.
//!
//! The headline case replays the full flat-TS kernel sequence of an
//! 8x8-tile factorization (n = 128, b = 16, 204 tasks) with each kernel
//! set: the legacy replay allocates scratch in every task, the workspace
//! replay reuses one pre-sized arena plus two `T`-factor tiles for the
//! whole sweep. Results land in `BENCH_kernels.json` at the workspace
//! root.
//!
//! Usage: `cargo bench --bench kernel_hotpath [-- --smoke]`
//! (`--smoke` shrinks samples/sizes for CI; the reference case and the
//! zero-allocation assertions still run).

use std::fmt::Write as _;
use std::hint::black_box;
use tileqr::gen::random_matrix;
use tileqr::kernels::{
    geqrt_apply_ws, geqrt_ws, tsmqr_apply_ws, tsqrt_ws, ttmqr_apply_ws, ttqrt_ws, ApplySide,
    Workspace,
};
use tileqr::Matrix;
use tileqr_bench::alloc_counter::{self, CountingAlloc};
use tileqr_bench::harness;
use tileqr_bench::legacy_kernels::{
    legacy_geqrt, legacy_geqrt_apply, legacy_tsmqr_apply, legacy_tsqrt, legacy_ttmqr_apply,
    legacy_ttqrt,
};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One kernel/size comparison for the JSON artifact.
struct Row {
    kernel: &'static str,
    b: usize,
    legacy_ns: f64,
    ws_ns: f64,
    legacy_allocs: u64,
    ws_allocs: u64,
}

fn improvement_pct(legacy_ns: f64, ws_ns: f64) -> f64 {
    (legacy_ns - ws_ns) / legacy_ns * 100.0
}

/// Flop model for one call of `kernel` at tile size `b` (the crate's
/// leading-order counts from `tileqr::kernels::flops`).
fn kernel_flops(kernel: &str, b: usize) -> u64 {
    use tileqr::kernels::flops;
    match kernel {
        "geqrt" => flops::geqrt_flops(b),
        "unmqr" => flops::unmqr_flops(b),
        "tsqrt" => flops::tsqrt_flops(b),
        "tsmqr" => flops::tsmqr_flops(b),
        "ttqrt" => flops::ttqrt_flops(b),
        "ttmqr" => flops::ttmqr_flops(b),
        other => unreachable!("no flop model for kernel {other}"),
    }
}

fn gflops(kernel: &str, b: usize, ns: f64) -> f64 {
    kernel_flops(kernel, b) as f64 / ns
}

fn reset(dst: &mut Matrix<f64>, src: &Matrix<f64>) {
    dst.as_mut_slice().copy_from_slice(src.as_slice());
}

fn record(rows: &mut Vec<Row>, kernel: &'static str, b: usize, row: Row) {
    println!(
        "{:<24} {:>11.0} ns {:>11.0} ns {:>+7.1}%  {:>6.2} GF/s  allocs/call {} -> {}",
        format!("{kernel}/b{b}"),
        row.legacy_ns,
        row.ws_ns,
        improvement_pct(row.legacy_ns, row.ws_ns),
        gflops(kernel, b, row.ws_ns),
        row.legacy_allocs,
        row.ws_allocs,
    );
    assert_eq!(
        row.ws_allocs, 0,
        "workspace path of {kernel} (b = {b}) allocated in steady state"
    );
    rows.push(row);
}

/// A/B every kernel at one tile size.
fn micro(b: usize, samples: usize, rows: &mut Vec<Row>) {
    let mut ws = Workspace::<f64>::new(b, b);
    let mut tfac = Matrix::<f64>::zeros(b, b);

    // GEQRT: panel factorization of one square tile.
    let a0 = random_matrix::<f64>(b, b, 21);
    let mut a = a0.clone();
    let legacy = harness::measure_calibrated(samples, || {
        reset(&mut a, &a0);
        black_box(legacy_geqrt(&mut a).unwrap());
    });
    let new = harness::measure_calibrated(samples, || {
        reset(&mut a, &a0);
        geqrt_ws(&mut a, &mut tfac, &mut ws).unwrap();
    });
    let la = alloc_counter::count(|| {
        reset(&mut a, &a0);
        black_box(legacy_geqrt(&mut a).unwrap());
    });
    let wa = alloc_counter::count(|| {
        reset(&mut a, &a0);
        geqrt_ws(&mut a, &mut tfac, &mut ws).unwrap();
    });
    record(
        rows,
        "geqrt",
        b,
        Row {
            kernel: "geqrt",
            b,
            legacy_ns: legacy.min * 1e9,
            ws_ns: new.min * 1e9,
            legacy_allocs: la,
            ws_allocs: wa,
        },
    );

    // UNMQR: apply a panel's reflectors to one tile.
    let mut vr = random_matrix::<f64>(b, b, 22);
    let t_apply = legacy_geqrt(&mut vr).unwrap();
    let c0 = random_matrix::<f64>(b, b, 23);
    let mut c = c0.clone();
    let legacy = harness::measure_calibrated(samples, || {
        reset(&mut c, &c0);
        legacy_geqrt_apply(&vr, &t_apply, &mut c, ApplySide::Transpose).unwrap();
    });
    let new = harness::measure_calibrated(samples, || {
        reset(&mut c, &c0);
        geqrt_apply_ws(&vr, &t_apply, &mut c, ApplySide::Transpose, &mut ws).unwrap();
    });
    let la = alloc_counter::count(|| {
        reset(&mut c, &c0);
        legacy_geqrt_apply(&vr, &t_apply, &mut c, ApplySide::Transpose).unwrap();
    });
    let wa = alloc_counter::count(|| {
        reset(&mut c, &c0);
        geqrt_apply_ws(&vr, &t_apply, &mut c, ApplySide::Transpose, &mut ws).unwrap();
    });
    record(
        rows,
        "unmqr",
        b,
        Row {
            kernel: "unmqr",
            b,
            legacy_ns: legacy.min * 1e9,
            ws_ns: new.min * 1e9,
            legacy_allocs: la,
            ws_allocs: wa,
        },
    );

    // TSQRT: couple a triangle with a square tile below it.
    let r0 = random_matrix::<f64>(b, b, 24).upper_triangular();
    let a2_0 = random_matrix::<f64>(b, b, 25);
    let mut r1 = r0.clone();
    let mut a2 = a2_0.clone();
    let legacy = harness::measure_calibrated(samples, || {
        reset(&mut r1, &r0);
        reset(&mut a2, &a2_0);
        black_box(legacy_tsqrt(&mut r1, &mut a2).unwrap());
    });
    let new = harness::measure_calibrated(samples, || {
        reset(&mut r1, &r0);
        reset(&mut a2, &a2_0);
        tsqrt_ws(&mut r1, &mut a2, &mut tfac, &mut ws).unwrap();
    });
    let la = alloc_counter::count(|| {
        reset(&mut r1, &r0);
        reset(&mut a2, &a2_0);
        black_box(legacy_tsqrt(&mut r1, &mut a2).unwrap());
    });
    let wa = alloc_counter::count(|| {
        reset(&mut r1, &r0);
        reset(&mut a2, &a2_0);
        tsqrt_ws(&mut r1, &mut a2, &mut tfac, &mut ws).unwrap();
    });
    record(
        rows,
        "tsqrt",
        b,
        Row {
            kernel: "tsqrt",
            b,
            legacy_ns: legacy.min * 1e9,
            ws_ns: new.min * 1e9,
            legacy_allocs: la,
            ws_allocs: wa,
        },
    );

    // TSMQR: apply a TSQRT coupling to a tile pair.
    let mut r1v = r0.clone();
    let mut v2 = a2_0.clone();
    let t_ts = legacy_tsqrt(&mut r1v, &mut v2).unwrap();
    let a1_0 = random_matrix::<f64>(b, b, 26);
    let a2b_0 = random_matrix::<f64>(b, b, 27);
    let mut pair_a1 = a1_0.clone();
    let mut pair_a2 = a2b_0.clone();
    let legacy = harness::measure_calibrated(samples, || {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        legacy_tsmqr_apply(&v2, &t_ts, &mut pair_a1, &mut pair_a2, ApplySide::Transpose).unwrap();
    });
    let new = harness::measure_calibrated(samples, || {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        tsmqr_apply_ws(
            &v2,
            &t_ts,
            &mut pair_a1,
            &mut pair_a2,
            ApplySide::Transpose,
            &mut ws,
        )
        .unwrap();
    });
    let la = alloc_counter::count(|| {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        legacy_tsmqr_apply(&v2, &t_ts, &mut pair_a1, &mut pair_a2, ApplySide::Transpose).unwrap();
    });
    let wa = alloc_counter::count(|| {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        tsmqr_apply_ws(
            &v2,
            &t_ts,
            &mut pair_a1,
            &mut pair_a2,
            ApplySide::Transpose,
            &mut ws,
        )
        .unwrap();
    });
    record(
        rows,
        "tsmqr",
        b,
        Row {
            kernel: "tsmqr",
            b,
            legacy_ns: legacy.min * 1e9,
            ws_ns: new.min * 1e9,
            legacy_allocs: la,
            ws_allocs: wa,
        },
    );

    // TTQRT: couple two triangles.
    let p0 = random_matrix::<f64>(b, b, 28).upper_triangular();
    let q0 = random_matrix::<f64>(b, b, 29).upper_triangular();
    let mut p = p0.clone();
    let mut q = q0.clone();
    let legacy = harness::measure_calibrated(samples, || {
        reset(&mut p, &p0);
        reset(&mut q, &q0);
        black_box(legacy_ttqrt(&mut p, &mut q).unwrap());
    });
    let new = harness::measure_calibrated(samples, || {
        reset(&mut p, &p0);
        reset(&mut q, &q0);
        ttqrt_ws(&mut p, &mut q, &mut tfac, &mut ws).unwrap();
    });
    let la = alloc_counter::count(|| {
        reset(&mut p, &p0);
        reset(&mut q, &q0);
        black_box(legacy_ttqrt(&mut p, &mut q).unwrap());
    });
    let wa = alloc_counter::count(|| {
        reset(&mut p, &p0);
        reset(&mut q, &q0);
        ttqrt_ws(&mut p, &mut q, &mut tfac, &mut ws).unwrap();
    });
    record(
        rows,
        "ttqrt",
        b,
        Row {
            kernel: "ttqrt",
            b,
            legacy_ns: legacy.min * 1e9,
            ws_ns: new.min * 1e9,
            legacy_allocs: la,
            ws_allocs: wa,
        },
    );

    // TTMQR: apply a TTQRT coupling to a tile pair.
    let mut pv = p0.clone();
    let mut qv = q0.clone();
    let t_tt = legacy_ttqrt(&mut pv, &mut qv).unwrap();
    let legacy = harness::measure_calibrated(samples, || {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        legacy_ttmqr_apply(&qv, &t_tt, &mut pair_a1, &mut pair_a2, ApplySide::Transpose).unwrap();
    });
    let new = harness::measure_calibrated(samples, || {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        ttmqr_apply_ws(
            &qv,
            &t_tt,
            &mut pair_a1,
            &mut pair_a2,
            ApplySide::Transpose,
            &mut ws,
        )
        .unwrap();
    });
    let la = alloc_counter::count(|| {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        legacy_ttmqr_apply(&qv, &t_tt, &mut pair_a1, &mut pair_a2, ApplySide::Transpose).unwrap();
    });
    let wa = alloc_counter::count(|| {
        reset(&mut pair_a1, &a1_0);
        reset(&mut pair_a2, &a2b_0);
        ttmqr_apply_ws(
            &qv,
            &t_tt,
            &mut pair_a1,
            &mut pair_a2,
            ApplySide::Transpose,
            &mut ws,
        )
        .unwrap();
    });
    record(
        rows,
        "ttmqr",
        b,
        Row {
            kernel: "ttmqr",
            b,
            legacy_ns: legacy.min * 1e9,
            ws_ns: new.min * 1e9,
            legacy_allocs: la,
            ws_allocs: wa,
        },
    );
}

/// Split out `(&mut tiles[lo], &mut tiles[hi])`, `lo < hi`.
fn two_tiles_mut(
    tiles: &mut [Matrix<f64>],
    lo: usize,
    hi: usize,
) -> (&mut Matrix<f64>, &mut Matrix<f64>) {
    assert!(lo < hi);
    let (left, right) = tiles.split_at_mut(hi);
    (&mut left[lo], &mut right[0])
}

/// Split out three distinct tiles in index order, `lo < mid < hi`.
fn three_tiles_mut(
    tiles: &mut [Matrix<f64>],
    lo: usize,
    mid: usize,
    hi: usize,
) -> (&mut Matrix<f64>, &mut Matrix<f64>, &mut Matrix<f64>) {
    assert!(lo < mid && mid < hi);
    let (left, rest) = tiles.split_at_mut(mid);
    let (middle, right) = rest.split_at_mut(hi - mid);
    (&mut left[lo], &mut middle[0], &mut right[0])
}

/// Flat-TS kernel sequence of an `nt x nt` tile factorization, seed
/// kernels: every task allocates its own scratch (and `T` factors are
/// fresh heap matrices).
fn legacy_sweep(tiles: &mut [Matrix<f64>], nt: usize) {
    for k in 0..nt {
        let kk = k * nt + k;
        let t_panel = legacy_geqrt(&mut tiles[kk]).unwrap();
        for j in k + 1..nt {
            let (vr, c) = two_tiles_mut(tiles, kk, k * nt + j);
            legacy_geqrt_apply(vr, &t_panel, c, ApplySide::Transpose).unwrap();
        }
        for i in k + 1..nt {
            let (r1, a2) = two_tiles_mut(tiles, kk, i * nt + k);
            let t_elim = legacy_tsqrt(r1, a2).unwrap();
            for j in k + 1..nt {
                let (a1, v2, a2j) = three_tiles_mut(tiles, k * nt + j, i * nt + k, i * nt + j);
                legacy_tsmqr_apply(v2, &t_elim, a1, a2j, ApplySide::Transpose).unwrap();
            }
        }
    }
}

/// The same kernel sequence on the workspace path: one pre-sized arena and
/// two reusable `T`-factor tiles for the entire sweep — zero steady-state
/// heap allocations (asserted by the caller).
fn ws_sweep(
    tiles: &mut [Matrix<f64>],
    nt: usize,
    t_panel: &mut Matrix<f64>,
    t_elim: &mut Matrix<f64>,
    ws: &mut Workspace<f64>,
) {
    for k in 0..nt {
        let kk = k * nt + k;
        geqrt_ws(&mut tiles[kk], t_panel, ws).unwrap();
        for j in k + 1..nt {
            let (vr, c) = two_tiles_mut(tiles, kk, k * nt + j);
            geqrt_apply_ws(vr, t_panel, c, ApplySide::Transpose, ws).unwrap();
        }
        for i in k + 1..nt {
            let (r1, a2) = two_tiles_mut(tiles, kk, i * nt + k);
            tsqrt_ws(r1, a2, t_elim, ws).unwrap();
            for j in k + 1..nt {
                let (a1, v2, a2j) = three_tiles_mut(tiles, k * nt + j, i * nt + k, i * nt + j);
                tsmqr_apply_ws(v2, t_elim, a1, a2j, ApplySide::Transpose, ws).unwrap();
            }
        }
    }
}

fn main() {
    let smoke = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .any(|a| a == "--smoke");
    let samples = if smoke { 3 } else { 20 };
    let sizes: &[usize] = if smoke { &[8, 16] } else { &[8, 16, 32, 64] };

    println!(
        "kernel hot path A/B: seed allocating kernels vs workspace arenas \
         (samples {samples}{})",
        if smoke { ", smoke" } else { "" }
    );
    println!(
        "\n{:<24} {:>14} {:>14} {:>8}",
        "kernel", "legacy", "workspace", "delta"
    );
    let mut rows: Vec<Row> = Vec::new();
    for &b in sizes {
        micro(b, samples, &mut rows);
    }

    // Reference case: full 8x8-tile flat-TS replay, n = 128, b = 16.
    let nt = 8;
    let b = 16;
    let ref_samples = if smoke { 2 } else { 5 };
    let tasks: usize = (0..nt)
        .map(|k| {
            let m = nt - 1 - k;
            1 + 2 * m + m * m
        })
        .sum();
    let pristine: Vec<Matrix<f64>> = (0..nt * nt)
        .map(|t| random_matrix::<f64>(b, b, 100 + t as u64))
        .collect();
    let mut tiles: Vec<Matrix<f64>> = pristine.clone();
    let reset_all = |tiles: &mut [Matrix<f64>], pristine: &[Matrix<f64>]| {
        for (t, p) in tiles.iter_mut().zip(pristine) {
            t.as_mut_slice().copy_from_slice(p.as_slice());
        }
    };

    let legacy = harness::measure(ref_samples, || {
        reset_all(&mut tiles, &pristine);
        legacy_sweep(&mut tiles, nt);
    });
    let legacy_allocs = alloc_counter::count(|| {
        reset_all(&mut tiles, &pristine);
        legacy_sweep(&mut tiles, nt);
    });

    let mut ws = Workspace::<f64>::new(b, b);
    let mut t_panel = Matrix::<f64>::zeros(b, b);
    let mut t_elim = Matrix::<f64>::zeros(b, b);
    let new = harness::measure(ref_samples, || {
        reset_all(&mut tiles, &pristine);
        ws_sweep(&mut tiles, nt, &mut t_panel, &mut t_elim, &mut ws);
    });
    let ws_allocs = alloc_counter::count(|| {
        reset_all(&mut tiles, &pristine);
        ws_sweep(&mut tiles, nt, &mut t_panel, &mut t_elim, &mut ws);
    });
    assert_eq!(
        ws_allocs, 0,
        "workspace replay of the 8x8 reference case allocated in steady state"
    );

    let legacy_ns_per_task = legacy.median * 1e9 / tasks as f64;
    let ws_ns_per_task = new.median * 1e9 / tasks as f64;
    let ref_improvement = improvement_pct(legacy_ns_per_task, ws_ns_per_task);
    println!(
        "\nreference 8x8 tiles (n = {}, b = {b}, {tasks} tasks):",
        nt * b
    );
    println!(
        "  legacy    {} ({:.0} ns/task, {:.1} allocs/task)",
        harness::format_secs(legacy.median),
        legacy_ns_per_task,
        legacy_allocs as f64 / tasks as f64,
    );
    println!(
        "  workspace {} ({:.0} ns/task, 0 allocs steady-state)",
        harness::format_secs(new.median),
        ws_ns_per_task,
    );
    println!("  improvement {ref_improvement:+.1}% ns/task");

    // Host provenance: GFLOP/s numbers are meaningless without knowing
    // what machine and backend produced them.
    let guard = harness::cores_guard("kernel-throughput comparisons against multi-core baselines");
    let cores = guard.cores;
    let backend = format!("{:?}", tileqr::kernels::micro::active_backend()).to_lowercase();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str(&guard.json_fields("  "));
    let _ = writeln!(json, "  \"host\": {{");
    let _ = writeln!(json, "    \"cores\": {cores},");
    let _ = writeln!(json, "    \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(json, "    \"simd_feature\": {},", cfg!(feature = "simd"));
    let _ = writeln!(json, "    \"backend\": \"{backend}\"");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"kernels\": [");
    for (idx, r) in rows.iter().enumerate() {
        let sep = if idx + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"b\": {}, \"legacy_ns\": {:.1}, \"ws_ns\": {:.1}, \
             \"improvement_pct\": {:.2}, \"legacy_gflops\": {:.3}, \"ws_gflops\": {:.3}, \
             \"legacy_allocs_per_call\": {}, \"ws_allocs_per_call\": {}}}{sep}",
            r.kernel,
            r.b,
            r.legacy_ns,
            r.ws_ns,
            improvement_pct(r.legacy_ns, r.ws_ns),
            gflops(r.kernel, r.b, r.legacy_ns),
            gflops(r.kernel, r.b, r.ws_ns),
            r.legacy_allocs,
            r.ws_allocs,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"reference_8x8\": {{");
    let _ = writeln!(json, "    \"n\": {}, \"tile_size\": {b},", nt * b);
    let _ = writeln!(json, "    \"tile_grid\": {nt}, \"tasks\": {tasks},");
    let _ = writeln!(json, "    \"legacy_seconds\": {:.6},", legacy.median);
    let _ = writeln!(json, "    \"ws_seconds\": {:.6},", new.median);
    let _ = writeln!(json, "    \"legacy_ns_per_task\": {legacy_ns_per_task:.1},");
    let _ = writeln!(json, "    \"ws_ns_per_task\": {ws_ns_per_task:.1},");
    let _ = writeln!(json, "    \"improvement_pct\": {ref_improvement:.2},");
    let _ = writeln!(
        json,
        "    \"legacy_allocs_per_task\": {:.2},",
        legacy_allocs as f64 / tasks as f64
    );
    let _ = writeln!(json, "    \"ws_steady_state_allocs\": {ws_allocs}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    // cargo runs benches with cwd = the package dir; anchor the artifact at
    // the workspace root regardless.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(out, &json).expect("write BENCH_kernels.json");
    println!("wrote {out}");
}
