//! Dev probe: phase-level ablation of the GEQRT b=8 hot path.
//!
//! Compares the legacy seed kernel against hybrids that swap one phase at
//! a time onto the micro primitives, to locate small-tile overhead.
//! Not part of the benchmark suite; run with
//! `cargo run --release -p tileqr-bench --example b8_probe`.

use std::hint::black_box;
use std::time::Instant;
use tileqr::kernels::micro;
use tileqr::kernels::{geqrt_ws, larfg, Workspace};
use tileqr::ops;
use tileqr::Matrix;
use tileqr_bench::legacy_kernels::legacy_geqrt;

const B: usize = 8;
const ITERS: usize = 200_000;

fn time<F: FnMut(&mut Matrix<f64>)>(label: &str, mut f: F) {
    let a0 = tileqr::gen::random_matrix::<f64>(B, B, 42);
    // Warm up.
    for _ in 0..1000 {
        let mut a = a0.clone();
        f(&mut a);
        black_box(&a);
    }
    let mut tiles: Vec<Matrix<f64>> = (0..ITERS).map(|_| a0.clone()).collect();
    let t0 = Instant::now();
    for a in tiles.iter_mut() {
        f(a);
    }
    let dt = t0.elapsed();
    black_box(&tiles);
    println!(
        "{label:28} {:7.1} ns/call",
        dt.as_nanos() as f64 / ITERS as f64
    );
}

/// Trailing update done legacy-style (per-column dot+axpy), T phase legacy.
fn hybrid(a: &mut Matrix<f64>, micro_trailing: bool, micro_z: bool, micro_t: bool) {
    let (m, n) = a.dims();
    let mut tfac = Matrix::<f64>::zeros(n, n);
    let mut z = [0.0f64; B];
    let mut acc = [0.0f64; B];
    for k in 0..n {
        let tau = {
            let ck = a.col_mut(k);
            let alpha = ck[k];
            let (head, tail) = ck.split_at_mut(k + 1);
            let h = larfg(alpha, tail);
            head[k] = h.beta;
            h.tau
        };
        if tau != 0.0 && k + 1 < n {
            if micro_trailing {
                let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * m + k);
                let vk = &head[k * m + k + 1..k * m + m];
                micro::larf_head(vk, tau, tail, m, n - k - 1);
            } else {
                for j in k + 1..n {
                    let (ck, cj) = a.two_cols_mut(k, j);
                    let mut w = cj[k] + ops::dot(&ck[k + 1..], &cj[k + 1..]);
                    w *= tau;
                    cj[k] -= w;
                    ops::axpy(-w, &ck[k + 1..], &mut cj[k + 1..]);
                }
            }
        }
        tfac[(k, k)] = tau;
        if tau != 0.0 && k > 0 {
            if micro_z {
                {
                    let vk = &a.col(k)[k + 1..];
                    micro::dotf(vk, &a.as_slice()[k + 1..], m, k, &mut z[..k]);
                }
                for (i, zi) in z.iter_mut().enumerate().take(k) {
                    *zi += a[(k, i)];
                }
            } else {
                let vk = &a.col(k)[k + 1..];
                for (i, zi) in z.iter_mut().enumerate().take(k) {
                    let ci = a.col(i);
                    *zi = ci[k] + ops::dot(&ci[k + 1..], vk);
                }
            }
            if micro_t {
                let ld = tfac.rows();
                let acc = &mut acc[..k];
                acc.fill(0.0);
                micro::axpyf_tri_add(&z[..k], tfac.as_slice(), ld, k, 1, acc);
                for (i, &ai) in acc.iter().enumerate() {
                    tfac[(i, k)] = -tau * ai;
                }
            } else {
                for i in 0..k {
                    let mut s = 0.0;
                    for p in i..k {
                        s += tfac[(i, p)] * z[p];
                    }
                    tfac[(i, k)] = -tau * s;
                }
            }
        }
    }
    black_box(&tfac);
}

fn main() {
    time("legacy_geqrt", |a| {
        black_box(legacy_geqrt(a).unwrap());
    });
    time("hybrid all-legacy phases", |a| {
        hybrid(a, false, false, false)
    });
    time("hybrid micro trailing", |a| hybrid(a, true, false, false));
    time("hybrid micro z", |a| hybrid(a, false, true, false));
    time("hybrid micro T-extend", |a| hybrid(a, false, false, true));
    time("hybrid micro all", |a| hybrid(a, true, true, true));
    let mut ws = Workspace::new(B, B);
    let mut tfac = Matrix::<f64>::zeros(B, B);
    time("geqrt_ws (production)", |a| {
        geqrt_ws(a, &mut tfac, &mut ws).unwrap();
        black_box(&tfac);
    });
}
