//! Performance-drift detection against a calibrated cost model.
//!
//! A calibrated profile is a snapshot: thermal throttling, a co-tenant
//! stealing cores, or a frequency governor change can make the live
//! kernels run at a different speed than the fit predicts, at which point
//! the critical-path priorities computed from the profile mislead the
//! scheduler. The [`DriftDetector`] watches per-class compute durations
//! as the run progresses and, at panel boundaries, decides whether the
//! observed means have moved far enough from the model to justify
//! re-weighting the remaining DAG.
//!
//! The trigger is *damped* the same way the fault re-planner's is
//! (`sched::replan`): after a firing, the observed ratio becomes the new
//! baseline, so persistent-but-stable drift fires once instead of every
//! panel, and single-task noise is diluted by the running mean before it
//! can reach the threshold.

/// Configuration of the drift trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Master switch; disabled detectors never fire.
    pub enabled: bool,
    /// Relative change (vs the damped baseline) that fires the trigger:
    /// a class's observed/expected ratio must grow by at least this
    /// factor — or shrink below its inverse — since the last firing.
    /// Must be `> 1`.
    pub threshold: f64,
    /// Minimum samples a class needs in the window before its ratio is
    /// trusted (noise damping: one slow task cannot re-weight a DAG).
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            enabled: false,
            threshold: 2.0,
            min_samples: 8,
        }
    }
}

impl DriftConfig {
    /// Enabled config with the default threshold and sample floor.
    pub fn on() -> Self {
        DriftConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Accumulates per-class compute durations and compares their means
/// against expected latencies from the active cost model.
///
/// Classes are the three timing-curve slots of the paper's Fig. 4
/// (`dag::class_slot`): 0 triangulation, 1 elimination, 2 update.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    /// Expected per-task latency per class, µs (from the calibrated
    /// model at the run's tile size).
    expected_us: [f64; 3],
    /// Damping baseline: the observed/expected ratio at the last firing
    /// (1.0 initially, i.e. "running exactly as calibrated").
    baseline: [f64; 3],
    sum_us: [f64; 3],
    count: [u64; 3],
    fires: u64,
}

impl DriftDetector {
    /// Detector for a run whose model predicts `expected_us` per class
    /// (`ClassCosts::expected_us(b)`).
    pub fn new(cfg: DriftConfig, expected_us: [f64; 3]) -> Self {
        DriftDetector {
            cfg,
            expected_us,
            baseline: [1.0; 3],
            sum_us: [0.0; 3],
            count: [0; 3],
            fires: 0,
        }
    }

    /// Record one measured compute duration for class slot `class`.
    pub fn record(&mut self, class: usize, us: f64) {
        if !self.cfg.enabled {
            return;
        }
        self.sum_us[class] += us.max(0.0);
        self.count[class] += 1;
    }

    /// Observed/expected ratio of one class over the current window
    /// (`None` until the class has any samples or when its expectation
    /// is non-positive).
    pub fn observed_ratio(&self, class: usize) -> Option<f64> {
        if self.count[class] == 0 || self.expected_us[class] <= 0.0 {
            return None;
        }
        Some(self.sum_us[class] / self.count[class] as f64 / self.expected_us[class])
    }

    /// Panel-boundary check. Returns the absolute per-class ratios
    /// (observed/expected vs the *original* calibration) when drift past
    /// the damped threshold is detected, `None` otherwise. On a firing
    /// the ratios become the new baseline and the window resets, so a
    /// stable new regime fires exactly once. Classes below the sample
    /// floor keep their previous baseline ratio.
    pub fn check(&mut self) -> Option<[f64; 3]> {
        if !self.cfg.enabled {
            return None;
        }
        let mut fired = false;
        let mut ratios = self.baseline;
        for (c, slot) in ratios.iter_mut().enumerate() {
            if self.count[c] < self.cfg.min_samples {
                continue;
            }
            let Some(r) = self.observed_ratio(c) else {
                continue;
            };
            *slot = r;
            let rel = r / self.baseline[c];
            if rel >= self.cfg.threshold || rel * self.cfg.threshold <= 1.0 {
                fired = true;
            }
        }
        if !fired {
            return None;
        }
        self.baseline = ratios;
        self.sum_us = [0.0; 3];
        self.count = [0; 3];
        self.fires += 1;
        Some(ratios)
    }

    /// How many times the trigger has fired.
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// Samples currently accumulated per class.
    pub fn window_counts(&self) -> [u64; 3] {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPECTED: [f64; 3] = [10.0, 10.0, 20.0];

    fn cfg() -> DriftConfig {
        DriftConfig {
            enabled: true,
            threshold: 2.0,
            min_samples: 4,
        }
    }

    fn feed(d: &mut DriftDetector, class: usize, us: f64, n: usize) {
        for _ in 0..n {
            d.record(class, us);
        }
    }

    #[test]
    fn clean_run_never_fires() {
        let mut d = DriftDetector::new(cfg(), EXPECTED);
        for _ in 0..5 {
            feed(&mut d, 0, 10.0, 10);
            feed(&mut d, 1, 10.4, 10);
            feed(&mut d, 2, 19.5, 10);
            assert_eq!(d.check(), None);
        }
        assert_eq!(d.fires(), 0);
    }

    #[test]
    fn real_drift_fires_once_then_damps() {
        let mut d = DriftDetector::new(cfg(), EXPECTED);
        // 4x slowdown across the board.
        feed(&mut d, 0, 40.0, 8);
        feed(&mut d, 1, 40.0, 8);
        feed(&mut d, 2, 80.0, 8);
        let ratios = d.check().expect("4x drift must fire");
        for r in ratios {
            assert!((r - 4.0).abs() < 1e-9, "{ratios:?}");
        }
        // Same regime continues: baseline moved, no re-fire.
        feed(&mut d, 0, 40.0, 8);
        feed(&mut d, 1, 40.0, 8);
        feed(&mut d, 2, 80.0, 8);
        assert_eq!(d.check(), None, "damped: stable regime fires once");
        assert_eq!(d.fires(), 1);
    }

    #[test]
    fn recovery_fires_in_the_other_direction() {
        let mut d = DriftDetector::new(cfg(), EXPECTED);
        feed(&mut d, 0, 40.0, 8);
        feed(&mut d, 1, 40.0, 8);
        feed(&mut d, 2, 80.0, 8);
        assert!(d.check().is_some());
        // Back to calibrated speed: ratio 4 -> 1 is a 4x relative change.
        feed(&mut d, 0, 10.0, 8);
        feed(&mut d, 1, 10.0, 8);
        feed(&mut d, 2, 20.0, 8);
        let ratios = d.check().expect("recovery re-fires");
        for r in ratios {
            assert!((r - 1.0).abs() < 1e-9, "{ratios:?}");
        }
    }

    #[test]
    fn single_outlier_is_damped_by_the_mean() {
        let mut d = DriftDetector::new(cfg(), EXPECTED);
        // One 20x-slow task among 19 normal ones: mean ratio ~1.95 < 2.
        d.record(0, 200.0);
        feed(&mut d, 0, 10.0, 19);
        feed(&mut d, 1, 10.0, 19);
        feed(&mut d, 2, 20.0, 19);
        assert_eq!(d.check(), None, "one outlier must not re-weight");
    }

    #[test]
    fn below_sample_floor_never_fires() {
        let mut d = DriftDetector::new(cfg(), EXPECTED);
        feed(&mut d, 0, 1000.0, 3); // 100x but only 3 samples < 4
        assert_eq!(d.check(), None);
        // The window keeps accumulating; one more sample crosses the floor.
        d.record(0, 1000.0);
        assert!(d.check().is_some());
    }

    #[test]
    fn disabled_detector_is_inert() {
        let mut d = DriftDetector::new(
            DriftConfig {
                enabled: false,
                ..cfg()
            },
            EXPECTED,
        );
        feed(&mut d, 0, 1e6, 100);
        assert_eq!(d.check(), None);
        assert_eq!(d.window_counts(), [0; 3], "records dropped when off");
    }
}
