//! Unified observability for the tiled-QR system.
//!
//! One span model ([`Span`]/[`Trace`]) covers both execution engines: the
//! real thread pool records per-worker ring buffers of task lifecycle
//! events ([`WorkerRecorder`], merged at join by [`merge_recorders`]),
//! and the simulator's [`tileqr_sim::Timeline`] converts losslessly via
//! [`Trace::from_timeline`]. On top of the shared model sit three
//! consumers:
//!
//! * [`chrome`] — Chrome `trace_event` JSON export (one lane per
//!   worker/device, loadable in Perfetto / `chrome://tracing`),
//! * [`hist`] — log-bucketed per-kernel latency histograms
//!   (p50/p95/p99 per [`tileqr_dag::TaskKind`]),
//! * [`calibrate`] — least-squares fits of the paper's
//!   `t(b) = c0 + c1·b² + c2·b³` kernel curves from measured spans, and
//!   sim-vs-real makespan error reports.
//!
//! Everything is allocation-free on the recording hot path and entirely
//! inert when [`TraceConfig::enabled`] is false.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod chrome;
pub mod counters;
pub mod drift;
pub mod hist;
pub mod profile_json;
pub mod recorder;
pub mod span;

pub use calibrate::{
    class_costs, cost_model, fit_step_times, fitted_profile, profile_error, samples_from_trace,
    sim_vs_real, step_times_of, KernelSample, SimVsReal,
};
pub use counters::{HotPathCounters, LifecycleCounters};
pub use drift::{DriftConfig, DriftDetector};
pub use hist::{bucket_bounds, bucket_of, KernelHistograms, LatencyHistogram, NUM_BUCKETS};
pub use profile_json::{
    default_profile_path, profile_from_json, profile_to_json, ProfileStore, PROFILE_ENV,
};
pub use recorder::{
    merge_recorders, RawEvent, RawKind, TraceConfig, WorkerRecorder, DEFAULT_CAPACITY_PER_LANE,
};
pub use span::{kind_index, EventKind, Phase, Span, Trace, TraceEvent, KIND_NAMES, NUM_KINDS};
